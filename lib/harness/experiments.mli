(** The paper's evaluation, experiment by experiment.

    Each function runs a set of (benchmark × memory-system) simulations and
    returns rows the report layer renders.  Figure 2 is Stencil (static and
    dynamic) under the three systems; Figure 3 is Adaptive (static and
    dynamic), Threshold and Unstructured; Table 1's miss/clean-copy
    counters come from the same runs.  The ablations cover the paper's
    §7 extensions and the design choices DESIGN.md calls out.

    Every family is also exposed as {e cells} — independent
    [(label, thunk)] simulations that share no mutable state — so
    {!Sweep} can run them across domains; executing the cells in list
    order reproduces the sequential functions bit-for-bit. *)

type scale = Tiny | Quick | Paper
(** [Tiny] is for the test suite (seconds); [Quick] shrinks problem sizes
    so the whole suite runs in about a minute; [Paper] uses the paper's
    parameters (1024×1024 meshes etc. — tens of minutes of host time).
    For ablations, [Quick] keeps the historical fixed sizes and [Paper]
    is an alias for [Quick] (their conclusions are scale-insensitive). *)

val scale_to_string : scale -> string
val scale_of_string : string -> (scale, string) result

type row = {
  experiment : string;  (** e.g. ["stencil-stat"] *)
  system : string;  (** e.g. ["LCM-mcc"] *)
  result : Lcm_apps.Bench_result.t;
}

type cells = (string * (unit -> row)) list
(** Independent simulation cells: [(label, thunk)], label
    ["<experiment>/<system>"].  Each thunk builds its own machine, runs
    one simulation, checks protocol invariants (raising [Failure] on
    violation) and returns its row. *)

val run_cells : cells -> row list
(** Execute cells sequentially in list order — the reference semantics
    every parallel sweep must match. *)

val figure2 : ?scale:scale -> Config.machine -> row list
(** Stencil execution time: static and dynamic partitioning × LCM-scc,
    LCM-mcc, Stache+copy. *)

val figure2_cells : ?scale:scale -> Config.machine -> cells

val figure3 : ?scale:scale -> Config.machine -> row list
(** Adaptive (static & dynamic), Threshold, Unstructured × the three
    systems. *)

val figure3_cells : ?scale:scale -> Config.machine -> cells

val group_by_experiment : row list -> (string * row list) list
(** Rows grouped by experiment, preserving first-appearance order. *)

val verify_agreement : row list -> (string * bool) list
(** For each experiment, whether all systems produced the same checksum —
    the differential guarantee behind every comparison. *)

(** {1 Claim checks (paper §6.3 prose)} *)

type claim = {
  id : string;
  description : string;
  paper : string;  (** the paper's reported number, as prose *)
  measured : float;  (** our measured ratio *)
  holds : bool;  (** does the measured direction match the paper's? *)
}

val claims : row list -> claim list
(** Evaluate every quantitative §6.3 claim against rows from {!figure2}
    and {!figure3}. *)

(** {1 Ablations} *)

val ablation_reduction : Config.machine -> row list
(** §7.1: RSM-reconciled vs hand-coded vs serialized global sum. *)

val ablation_reduction_cells : ?scale:scale -> Config.machine -> cells

val ablation_false_sharing : Config.machine -> row list
(** §7.4: falsely-shared blocks under Stache vs LCM. *)

val ablation_false_sharing_cells : ?scale:scale -> Config.machine -> cells

val ablation_stale : Config.machine -> row list
(** §7.5: N-body with fresh vs increasingly stale remote data. *)

val ablation_stale_cells : ?scale:scale -> Config.machine -> cells

val ablation_block_reuse : Config.machine -> row list
(** scc vs mcc as words-per-block (spatial reuse per block) varies — the
    clean-copy-placement design choice. *)

val ablation_block_reuse_cells : ?scale:scale -> Config.machine -> cells

val ablation_schedule : Config.machine -> row list
(** Stencil under static / rotating / random scheduling for LCM-mcc and
    Stache — scheduling sensitivity. *)

val ablation_schedule_cells : ?scale:scale -> Config.machine -> cells

val ablation_topology : Config.machine -> row list
(** Dynamic stencil across crossbar / 2-D mesh / fat-tree interconnects. *)

val ablation_topology_cells : ?scale:scale -> Config.machine -> cells

val ablation_scaling : Config.machine -> row list
(** Weak scaling: fixed per-node stencil band while the machine grows from
    4 to 32 nodes. *)

val ablation_scaling_cells : ?scale:scale -> Config.machine -> cells

val dir_vs_snoop : Config.machine -> row list
(** Directory-vs-snooping-bus crossover: the weak-scaling stencil on
    Stache (point-to-point fat tree, home blocks local) and MESI (shared
    arbitrated bus, every miss broadcast).  A bus miss is individually
    cheap — one transaction, no directory round trips — but the single
    medium serializes them all, so the cycle ratio widens with P as
    [bus.arb_stall_cycles] takes over the critical path.  Both engines
    are coherent, so the checksums agree cell-for-cell. *)

val dir_vs_snoop_cells : ?scale:scale -> Config.machine -> cells

val ablation_cost_sensitivity : Config.machine -> row list
(** Stencil comparisons under communication costs scaled ×0.5/×1/×2 —
    checks that who-wins conclusions are robust to the cost constants. *)

val ablation_cost_sensitivity_cells : ?scale:scale -> Config.machine -> cells

val ablation_detection : Config.machine -> row list
(** Cost of run-time violation detection: off, reconcile-time only, and
    strict (§7.2–7.3's "flush all read-only blocks" mode). *)

val ablation_detection_cells : ?scale:scale -> Config.machine -> cells

val ablation_update : Config.machine -> row list
(** Invalidate- vs update-based reconciliation (the other end of the RSM
    reconcile-policy axis) on the stencil. *)

val ablation_update_cells : ?scale:scale -> Config.machine -> cells

val ablation_barrier : Config.machine -> row list
(** Reconciliation barrier organised as a constant-cost network, a flat
    central coordinator, or a combining tree (paper §5.1), at 8 and 32
    nodes. *)

val ablation_barrier_cells : ?scale:scale -> Config.machine -> cells

val ablation_capacity : Config.machine -> row list
(** Stencil-stat under Stache with an unbounded vs small cache — the
    paper's "on a machine with a limited cache" remark (see EXPERIMENTS.md
    for why this model shows no slowdown). *)

val ablation_capacity_cells : ?scale:scale -> Config.machine -> cells

val families : (string * (scale:scale -> Config.machine -> cells)) list
(** Every experiment family by name — the figures plus all ablations —
    for sweep drivers and the parallel-equivalence tests. *)
