(** Export typed trace rings to Chrome trace_event JSON, plus a small
    self-contained JSON reader used to validate the output.

    The exporter maps events to the [trace_event] format understood by
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}: handler
    occupancy becomes complete ("X") slices per node, message
    send/receive, faults, directives and barrier entries become instants
    ("i") on the acting node's track, and epoch advances become a counter
    ("C") series.  Simulated cycles are written as microseconds — absolute
    units don't matter to the viewers. *)

val to_chrome_json : (int * Lcm_sim.Trace.event) list -> string
(** Render events (as returned by {!Lcm_tempest.Machine.trace_events}) as
    a complete JSON document.  Events are stably sorted by timestamp —
    node clocks run ahead of the engine, so ring order alone is not
    monotone. *)

val export_file : path:string -> (int * Lcm_sim.Trace.event) list -> unit
(** Write {!to_chrome_json} output to [path]. *)

(** {1 Minimal JSON reader} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Parse a JSON document (strings, numbers, literals, arrays, objects).
    [Error] carries a message with the byte offset of the problem. *)

val member : string -> json -> json option
(** Field lookup in an [Obj]; [None] on other constructors. *)

(** {1 Validation} *)

val validate_chrome : string -> (int, string) result
(** Check that [text] parses, has a non-empty ["traceEvents"] array, every
    event carries [name]/[ph]/[ts], and timestamps are monotone.  Returns
    the event count. *)

val validate_file : string -> (int, string) result
(** {!validate_chrome} over a file's contents; [Error] on I/O failure. *)
