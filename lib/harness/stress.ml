(* Differential stress harness: seeded random programs executed against
   the full simulated protocol stack (machine + network + RSM engine) and
   checked word-for-word against a network-free golden model of the
   paper's per-epoch semantics.  See the .mli for the model's contract
   and the limits of load-value checking. *)

module Machine = Lcm_tempest.Machine
module Memeff = Lcm_tempest.Memeff
module Gmem = Lcm_mem.Gmem
module Proto = Lcm_core.Proto
module Policy = Lcm_core.Policy
module Barrier = Lcm_core.Barrier
module Reduction = Lcm_core.Reduction
module Topology = Lcm_net.Topology
module Rng = Lcm_util.Rng

type op =
  | Load of int  (* word index within the region *)
  | Store of int * int
  | Rmw of int * int  (* fetch-and-add of the given delta *)
  | Accum of int * int  (* reduction accumulate: rmw with the region's op *)
  | Mark of int  (* mark_modification of the word's block *)
  | Flush
  | Work of int
  | Yield

type segment = Sequential of op list array | Parallel of op list array

type prog = {
  seed : int;
  case : int;
  policy : Policy.t;
  nnodes : int;
  words_per_block : int;
  nblocks : int;
  dist : Gmem.dist;
  topology : Topology.t;
  barrier : Barrier.style;
  capacity_blocks : int option;
  hw_cache_blocks : int option;
  reductions : (int * Reduction.t) list;  (* region block index -> operator *)
  init : (int * int) list;  (* word index -> initial value *)
  segments : segment list;
}

let nwords_of prog = prog.nblocks * prog.words_per_block
let red_of prog w = List.assoc_opt (w / prog.words_per_block) prog.reductions

(* ------------------------------------------------------------------ *)
(* Pretty-printing (the shrunk reproducer is printed, not re-generated) *)
(* ------------------------------------------------------------------ *)

let op_to_string = function
  | Load w -> Printf.sprintf "load w%d" w
  | Store (w, v) -> Printf.sprintf "store w%d=%d" w v
  | Rmw (w, k) -> Printf.sprintf "rmw w%d+=%d" w k
  | Accum (w, k) -> Printf.sprintf "accum w%d,%d" w k
  | Mark w -> Printf.sprintf "mark w%d" w
  | Flush -> "flush"
  | Work n -> Printf.sprintf "work %d" n
  | Yield -> "yield"

let dist_to_string = function
  | Gmem.On n -> Printf.sprintf "on:%d" n
  | Gmem.Interleaved -> "interleaved"
  | Gmem.Chunked -> "chunked"

let pp_prog ppf p =
  Format.fprintf ppf
    "policy=%s nnodes=%d words_per_block=%d nblocks=%d dist=%s topo=%s \
     barrier=%s capacity=%s hw_cache=%s@."
    p.policy.Policy.name p.nnodes p.words_per_block p.nblocks
    (dist_to_string p.dist)
    (Topology.to_string p.topology)
    (Barrier.to_string p.barrier)
    (match p.capacity_blocks with Some c -> string_of_int c | None -> "-")
    (match p.hw_cache_blocks with Some c -> string_of_int c | None -> "-");
  List.iter
    (fun (b, r) ->
      Format.fprintf ppf "reduction: block %d = %s@." b r.Reduction.name)
    p.reductions;
  (match p.init with
  | [] -> ()
  | init ->
    Format.fprintf ppf "init:";
    List.iter (fun (w, v) -> Format.fprintf ppf " w%d=%d" w v) init;
    Format.fprintf ppf "@.");
  List.iteri
    (fun si seg ->
      let kind, ops =
        match seg with
        | Sequential ops -> ("sequential", ops)
        | Parallel ops -> ("parallel", ops)
      in
      Format.fprintf ppf "segment %d (%s):@." si kind;
      Array.iteri
        (fun nid opl ->
          if opl <> [] then
            Format.fprintf ppf "  node %d: %s@." nid
              (String.concat "; " (List.map op_to_string opl)))
        ops)
    p.segments

(* ------------------------------------------------------------------ *)
(* The golden reference model                                          *)
(* ------------------------------------------------------------------ *)

(* Which nodes write each word in a segment (used to decide which load
   values are deterministic under coherent (Stache) semantics). *)
let writers_of nwords ops =
  let writers = Array.make nwords [] in
  Array.iteri
    (fun nid opl ->
      List.iter
        (function
          | Store (w, _) | Rmw (w, _) | Accum (w, _) ->
            if not (List.mem nid writers.(w)) then
              writers.(w) <- nid :: writers.(w)
          | Load _ | Mark _ | Flush | Work _ | Yield -> ())
        opl)
    ops;
  writers

(* Sequential segments: every node touches only its own word partition, so
   the final state is the per-word program-order result regardless of the
   interleaving the simulator chooses.  Mutates [master] to the post-state
   and returns, per node, the value each load must observe (coherence
   guarantees the latest value of a word only this node writes). *)
let golden_sequential master ops =
  Array.map
    (fun opl ->
      List.map
        (fun op ->
          match op with
          | Load w -> Some master.(w)
          | Store (w, v) ->
            master.(w) <- v;
            None
          | Rmw (w, k) ->
            master.(w) <- master.(w) + k;
            None
          | Accum _ | Mark _ | Flush | Work _ | Yield -> None)
        opl)
    ops

(* Parallel phases: the paper's per-epoch semantics.  Each node's writes
   land in a private copy whose baseline is the phase-start master; reads
   see the private copy for words this node wrote, the phase-start value
   otherwise.  [Flush] (and the implicit flush at reconcile) merges the
   private dirty words into the pending copy: last-writer for plain words
   (the generator guarantees a unique writer), the registered reduction
   operator for reduction words.  Returns (expected load values, pending):
   the caller promotes [pending] to the new master after the reconcile.

   Load values are only predicted where they are schedule-independent:
   under LCM with unbounded capacity every load sees either the private
   copy or the phase-start master; a mid-phase capacity eviction silently
   resets a node's private view, so with bounded capacity load values are
   unchecked (the final merged state is still checked — flush order per
   word is FIFO per channel, so the last store wins regardless of interim
   evictions).  Under Stache, parallel loads are coherent and only
   deterministic for words no other node writes. *)
let golden_parallel prog master ops =
  let nwords = Array.length master in
  let pending = Array.copy master in
  let lcm = Policy.is_lcm prog.policy in
  let writers = writers_of nwords ops in
  let expected =
    Array.mapi
      (fun nid opl ->
        let priv = Hashtbl.create 8 in
        let dirty = Hashtbl.create 8 in
        let view w =
          match Hashtbl.find_opt priv w with Some v -> v | None -> master.(w)
        in
        let flush () =
          Hashtbl.iter
            (fun w () ->
              let v = view w in
              match red_of prog w with
              | Some rop ->
                pending.(w) <-
                  rop.Reduction.combine ~clean:master.(w) ~current:pending.(w)
                    ~incoming:v
              | None -> pending.(w) <- v)
            dirty;
          Hashtbl.reset dirty;
          (* Under LCM a flush returns the modified copies to their homes:
             the next read refetches the clean phase-start version, so the
             private view resets.  Under a coherent policy a flush is only
             a writeback — the writer keeps observing its own stores. *)
          if lcm then Hashtbl.reset priv
        in
        let checkable w =
          if lcm then prog.capacity_blocks = None
          else match writers.(w) with [] -> true | [ n ] -> n = nid | _ -> false
        in
        let exp =
          List.map
            (fun op ->
              match op with
              | Load w -> if checkable w then Some (view w) else None
              | Store (w, v) ->
                Hashtbl.replace priv w v;
                Hashtbl.replace dirty w ();
                None
              | Rmw (w, k) ->
                Hashtbl.replace priv w (view w + k);
                Hashtbl.replace dirty w ();
                None
              | Accum (w, k) -> (
                match red_of prog w with
                | Some rop ->
                  Hashtbl.replace priv w (rop.Reduction.apply (view w) k);
                  Hashtbl.replace dirty w ();
                  None
                | None ->
                  failwith
                    (Printf.sprintf
                       "Stress: accum targets word %d outside every \
                        registered reduction region"
                       w))
              | Flush ->
                flush ();
                None
              | Mark _ | Work _ | Yield -> None)
            opl
        in
        flush ();
        exp)
      ops
  in
  (expected, pending)

(* The whole-program view of the model above: fold the segments from the
   initial state, snapshotting the expected load values and the
   post-segment master for each.  [run_case] below interleaves the same
   two functions with real execution; this entry point exists so an
   independent specification (Lcm_check.Spec) can be pinned against the
   oracle word-for-word. *)
let golden prog =
  let nwords = nwords_of prog in
  let master = Array.make nwords 0 in
  List.iter (fun (w, v) -> master.(w) <- v) prog.init;
  List.map
    (function
      | Sequential ops ->
        let expected = golden_sequential master ops in
        (expected, Array.copy master)
      | Parallel ops ->
        let expected, pending = golden_parallel prog master ops in
        Array.blit pending 0 master 0 nwords;
        (expected, Array.copy master))
    prog.segments

(* ------------------------------------------------------------------ *)
(* Running a program against the real stack                            *)
(* ------------------------------------------------------------------ *)

exception Stress_failure of string list

let event_limit = 3_000_000

let exec_ops prog base mism si nid ops expected () =
  List.iter2
    (fun op exp ->
      match op with
      | Load w -> (
        let got = Memeff.load (base + w) in
        match exp with
        | Some want when got <> want ->
          mism :=
            Printf.sprintf
              "segment %d node %d: load of word %d saw %d, golden model \
               expects %d"
              si nid w got want
            :: !mism
        | Some _ | None -> ())
      | Store (w, v) -> Memeff.store (base + w) v
      | Rmw (w, k) -> ignore (Memeff.rmw (base + w) (fun x -> x + k))
      | Accum (w, k) -> (
        match red_of prog w with
        | Some rop -> ignore (Memeff.rmw (base + w) (fun x -> rop.Reduction.apply x k))
        | None ->
          failwith
            (Printf.sprintf
               "Stress: accum targets word %d outside every registered \
                reduction region"
               w))
      | Mark w -> Memeff.directive (Memeff.Mark_modification (base + w))
      | Flush -> Memeff.directive Memeff.Flush_copies
      | Work n -> Memeff.work n
      | Yield -> Memeff.yield ())
    ops expected

let run_case ?faults prog =
  let nwords = nwords_of prog in
  try
    let m =
      Machine.create ?capacity_blocks:prog.capacity_blocks
        ?hw_cache_blocks:prog.hw_cache_blocks ?faults ~nnodes:prog.nnodes
        ~words_per_block:prog.words_per_block ~topology:prog.topology ~seed:17
        ()
    in
    let p = Proto.install ~barrier:prog.barrier ~policy:prog.policy m in
    let base = Gmem.alloc (Machine.gmem m) ~dist:prog.dist ~nwords in
    List.iter
      (fun (bi, rop) ->
        Proto.register_reduction p
          ~base:(base + (bi * prog.words_per_block))
          ~nwords:prog.words_per_block rop)
      prog.reductions;
    let master = Array.make nwords 0 in
    List.iter
      (fun (w, v) ->
        master.(w) <- v;
        Proto.poke p (base + w) v)
      prog.init;
    let mism = ref [] in
    let run_segment si expected ops =
      Array.iteri
        (fun nid opl ->
          Machine.spawn m (Machine.node m nid)
            (exec_ops prog base mism si nid opl expected.(nid)))
        ops;
      Machine.run_to_quiescence ~limit:event_limit m
    in
    let check_words si what golden =
      for w = 0 to nwords - 1 do
        let got = Proto.peek p (base + w) in
        if got <> golden.(w) then
          mism :=
            Printf.sprintf
              "segment %d (%s): word %d is %d, golden model expects %d" si
              what w got golden.(w)
            :: !mism
      done
    in
    let check_invariants si =
      match Proto.check_invariants p with
      | Ok () -> ()
      | Error msgs ->
        mism :=
          List.map (Printf.sprintf "segment %d: invariant: %s" si) msgs
          @ !mism
    in
    List.iteri
      (fun si seg ->
        (match seg with
        | Sequential ops ->
          let expected = golden_sequential master ops in
          run_segment si expected ops;
          check_words si "sequential" master
        | Parallel ops ->
          let expected, pending = golden_parallel prog master ops in
          Proto.begin_parallel p;
          run_segment si expected ops;
          Proto.reconcile p;
          Array.blit pending 0 master 0 nwords;
          check_words si "post-reconcile" master);
        check_invariants si;
        (* Stop at the first diverging segment: once the states differ,
           later segments only produce cascading noise. *)
        if !mism <> [] then raise (Stress_failure (List.rev !mism)))
      prog.segments;
    Ok ()
  with
  | Stress_failure msgs -> Error (String.concat "\n" msgs)
  | Failure msg -> Error ("exception: " ^ msg)
  | Invalid_argument msg -> Error ("invalid argument: " ^ msg)
  | Lcm_sim.Engine.Stalled { clock; pending } ->
    Error
      (Printf.sprintf "stalled: no delivery progress at clock %d (%d pending)"
         clock pending)
  | Lcm_net.Network.Net_unreachable { src; dst; tag; attempts } ->
    Error
      (Printf.sprintf
         "net unreachable: %s %d->%d gave up after %d attempts" tag src dst
         attempts)

(* ------------------------------------------------------------------ *)
(* Program generation                                                  *)
(* ------------------------------------------------------------------ *)

let all_policies = Policy.policies

let int_reductions =
  (* Exact integer operators only: float reductions reassociate across
     flush-arrival orders, so their results are not schedule-independent. *)
  Reduction.[ int_sum; int_min; int_max; band; bor; bxor ]

let pick rng arr = arr.(Rng.int rng (Array.length arr))

let gen ~seed ~case ?policy () =
  let rng = Rng.create ~seed:(1 + seed + (case * 1_000_003)) in
  let policy =
    match policy with
    | Some p -> p
    | None -> pick rng (Array.of_list all_policies)
  in
  let lcm = Policy.is_lcm policy in
  let nnodes = 2 + Rng.int rng 5 in
  let words_per_block = [| 2; 4; 8 |].(Rng.int rng 3) in
  let nblocks = 2 + Rng.int rng 10 in
  let nwords = nblocks * words_per_block in
  let dist =
    match Rng.int rng 3 with
    | 0 -> Gmem.On (Rng.int rng nnodes)
    | 1 -> Gmem.Interleaved
    | _ -> Gmem.Chunked
  in
  let topology =
    match Rng.int rng 3 with
    | 0 -> Topology.Crossbar
    | 1 -> Topology.Mesh2d { cols = 2 + Rng.int rng 3 }
    | _ -> Topology.Fat_tree { arity = 2 + Rng.int rng 3 }
  in
  let barrier =
    match Rng.int rng 3 with
    | 0 -> Barrier.Constant
    | 1 -> Barrier.Flat
    | _ -> Barrier.Tree (2 + Rng.int rng 3)
  in
  let capacity_blocks =
    if Rng.int rng 3 = 0 then Some (2 + Rng.int rng 3) else None
  in
  let hw_cache_blocks =
    if Rng.int rng 4 = 0 then Some (2 + Rng.int rng 6) else None
  in
  let reductions =
    let rec add acc k =
      if k = 0 then acc
      else
        let b = Rng.int rng nblocks in
        if List.mem_assoc b acc then add acc (k - 1)
        else add ((b, pick rng (Array.of_list int_reductions)) :: acc) (k - 1)
    in
    add [] (Rng.int rng 3)
  in
  let is_red w = List.mem_assoc (w / words_per_block) reductions in
  (* Query the real home mapping on a scratch address space so the
     generator knows when an implicit (fault-driven) mark is equivalent to
     an explicit one. *)
  let home_of_word =
    let g = Gmem.create ~nnodes ~words_per_block in
    let base = Gmem.alloc g ~dist ~nwords in
    fun w -> Gmem.home_of_addr g (base + w)
  in
  let init =
    List.filter_map
      (fun w -> if Rng.bool rng then Some (w, Rng.int rng 1_000_000) else None)
      (List.init nwords Fun.id)
  in
  let all_words = List.init nwords Fun.id in
  (* Blocks a node has written under coherent (exclusive) semantics: such a
     node may still hold a writable copy, so its later parallel-phase
     writes MUST be explicitly marked — an unmarked write would hit the
     writable line and silently bypass LCM (the paper's contract makes
     this a program error: the compiler marks all parallel writes, and the
     implicit mark only backstops writes that actually fault). *)
  let seq_written = Hashtbl.create 32 in
  let gen_sequential () =
    Array.init nnodes (fun nid ->
        let own =
          Array.of_list (List.filter (fun w -> w mod nnodes = nid) all_words)
        in
        if Array.length own = 0 then []
        else
          List.init (Rng.int rng 7) (fun _ ->
              match Rng.int rng 5 with
              | 0 -> Load (pick rng own)
              | 1 | 2 ->
                let w = pick rng own in
                Hashtbl.replace seq_written (nid, w / words_per_block) ();
                Store (w, Rng.int rng 1_000_000)
              | 3 ->
                let w = pick rng own in
                Hashtbl.replace seq_written (nid, w / words_per_block) ();
                Rmw (w, 1 + Rng.int rng 100)
              | _ -> if Rng.bool rng then Work (Rng.int rng 30) else Yield))
  in
  (* Plain read-modify-writes in LCM parallel phases are only predictable
     with unbounded capacity: a mid-phase eviction flushes the private
     copy home, so the next rmw re-marks from the clean (phase-start)
     value and the accumulation chain is lost.  That is inherent to the
     design — the paper's compiler writes each plain location at most once
     per phase and uses reduction operators for accumulation (whose merge
     subtracts the clean baseline, making them eviction-stable). *)
  let rmw_ok = (not lcm) || capacity_blocks = None in
  let gen_parallel () =
    (* at most one writer per non-reduction word: LCM merges concurrent
       writers per word last-writer-wins, which is only deterministic for
       race-free programs — the equivalence the harness checks. *)
    let writer =
      Array.init nwords (fun w ->
          if is_red w then None
          else if Rng.int rng 2 = 0 then Some (Rng.int rng nnodes)
          else None)
    in
    let red_words = Array.of_list (List.filter is_red all_words) in
    Array.init nnodes (fun nid ->
        let owned =
          Array.of_list
            (List.filter (fun w -> writer.(w) = Some nid) all_words)
        in
        let marked = Hashtbl.create 8 in
        let ensure_marked w acc =
          let b = w / words_per_block in
          if (not lcm) || Hashtbl.mem marked b then acc
          else begin
            Hashtbl.replace marked b ();
            let must_mark =
              home_of_word w = nid || Hashtbl.mem seq_written (nid, b)
            in
            if must_mark || Rng.bool rng then Mark w :: acc else acc
          end
        in
        let rec build k acc =
          if k = 0 then List.rev acc
          else
            let acc =
              match Rng.int rng 8 with
              | 0 | 1 -> Load (Rng.int rng nwords) :: acc
              | 2 | 3 when Array.length owned > 0 ->
                let w = pick rng owned in
                Store (w, Rng.int rng 1_000_000) :: ensure_marked w acc
              | 4 when Array.length owned > 0 && rmw_ok ->
                let w = pick rng owned in
                Rmw (w, 1 + Rng.int rng 100) :: ensure_marked w acc
              | 5 when Array.length red_words > 0 ->
                let w = pick rng red_words in
                Accum (w, 1 + Rng.int rng 100) :: ensure_marked w acc
              | 6 when lcm ->
                Hashtbl.reset marked;
                Flush :: acc
              | _ -> (if Rng.bool rng then Work (Rng.int rng 30) else Yield) :: acc
            in
            build (k - 1) acc
        in
        build (Rng.int rng 11) [])
  in
  let nseg = 1 + Rng.int rng 4 in
  let segments = ref [] in
  for _ = 1 to nseg do
    let seg =
      if Rng.int rng 4 = 0 then Sequential (gen_sequential ())
      else Parallel (gen_parallel ())
    in
    segments := seg :: !segments
  done;
  {
    seed;
    case;
    policy;
    nnodes;
    words_per_block;
    nblocks;
    dist;
    topology;
    barrier;
    capacity_blocks;
    hw_cache_blocks;
    reductions;
    init;
    segments = List.rev !segments;
  }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let remove_nth l i = List.filteri (fun j _ -> j <> i) l

(* Strictly-smaller variants, most aggressive first.  Individual [Mark]
   ops are never dropped on their own: removing a mark can turn a
   well-formed program into one with unmarked parallel writes, whose
   divergence would be a program error rather than a protocol bug. *)
let candidates prog =
  let segs = Array.of_list prog.segments in
  let nseg = Array.length segs in
  let with_segments segments = { prog with segments } in
  let drop_segment =
    List.init nseg (fun i -> with_segments (remove_nth prog.segments i))
  in
  (* A reduction region may only be dropped together with every accum that
     targets it: an accum on a region-less word is a program error (the
     typed failure in the golden model / executor), and a shrink that
     introduced one would chase that artifact instead of the original
     bug — op retention is conditional on the region surviving. *)
  let drop_reduction =
    List.map
      (fun (bi, _) ->
        let in_region w = w / prog.words_per_block = bi in
        let strip ops =
          Array.map
            (List.filter (function
              | Accum (w, _) -> not (in_region w)
              | _ -> true))
            ops
        in
        {
          prog with
          reductions = List.remove_assoc bi prog.reductions;
          segments =
            List.map
              (function
                | Sequential ops -> Sequential (strip ops)
                | Parallel ops -> Parallel (strip ops))
              prog.segments;
        })
      prog.reductions
  in
  let map_segment i f =
    with_segments
      (List.mapi (fun j s -> if j = i then f s else s) prog.segments)
  in
  let ops_of = function Sequential ops | Parallel ops -> ops in
  let rebuild seg ops =
    match seg with Sequential _ -> Sequential ops | Parallel _ -> Parallel ops
  in
  let clear_node =
    List.concat
      (List.init nseg (fun i ->
           let ops = ops_of segs.(i) in
           List.filter_map
             (fun nid ->
               if ops.(nid) = [] then None
               else
                 Some
                   (map_segment i (fun s ->
                        let ops' = Array.copy (ops_of s) in
                        ops'.(nid) <- [];
                        rebuild s ops')))
             (List.init (Array.length ops) Fun.id)))
  in
  let drop_op =
    List.concat
      (List.init nseg (fun i ->
           let ops = ops_of segs.(i) in
           List.concat
             (List.init (Array.length ops) (fun nid ->
                  List.filter_map
                    (fun k ->
                      match List.nth ops.(nid) k with
                      | Mark _ -> None
                      | _ ->
                        Some
                          (map_segment i (fun s ->
                               let ops' = Array.copy (ops_of s) in
                               ops'.(nid) <- remove_nth ops'.(nid) k;
                               rebuild s ops')))
                    (List.init (List.length ops.(nid)) Fun.id)))))
  in
  drop_segment @ drop_reduction @ clear_node @ drop_op

let shrink_with ?(max_tries = 300) still_fails prog =
  let budget = ref max_tries in
  let check p =
    !budget > 0
    && begin
         decr budget;
         still_fails p
       end
  in
  let rec go p =
    match List.find_opt check (candidates p) with
    | Some p' -> go p'
    | None -> p
  in
  go prog

let shrink ?(max_runs = 300) ?faults prog =
  shrink_with ~max_tries:max_runs
    (fun p -> Result.is_error (run_case ?faults p))
    prog

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

let report_failure ?faults prog err =
  let small = shrink ?faults prog in
  let small_err =
    match run_case ?faults small with Error e -> e | Ok () -> err
  in
  let fault_note =
    match faults with
    | None -> ""
    | Some plan -> Printf.sprintf " faults=[%s]" (Lcm_net.Faults.to_string plan)
  in
  Format.asprintf
    "stress case failed: seed=%d case=%d policy=%s%s@.%s@.@.minimal \
     reproducer (regenerate with: lcm_sim stress --seed %d --cases %d \
     --policy %s):@.%a@.minimal failure:@.%s"
    prog.seed prog.case prog.policy.Policy.name fault_note err prog.seed
    (prog.case + 1) prog.policy.Policy.name pp_prog small small_err

let check_case ~seed ~case ?policy ?faults () =
  let prog = gen ~seed ~case ?policy () in
  match run_case ?faults prog with
  | Ok () -> Ok ()
  | Error err -> Error (report_failure ?faults prog err)

let run ?policy ?faults ?(progress = fun _ -> ()) ?(jobs = 1) ~cases ~seed () =
  let jobs = Lcm_fleet.Fleet.resolve_jobs jobs in
  if jobs <= 1 then
    (* sequential semantics: stop at the first failing case *)
    let rec go i =
      if i >= cases then Ok ()
      else begin
        progress i;
        match check_case ~seed ~case:i ?policy ?faults () with
        | Ok () -> go (i + 1)
        | Error _ as e -> e
      end
    in
    go 0
  else begin
    (* Parallel cases can't stop early, but every case is independent and
       deterministic, so running them all and reporting the lowest-index
       failure matches the sequential result on that case exactly (the
       shrunk reproducer inside check_case depends only on the case). *)
    let cells =
      Array.init cases (fun i ->
          ( Printf.sprintf "stress case %d (seed %d)" i seed,
            fun () ->
              progress i;
              check_case ~seed ~case:i ?policy ?faults () ))
    in
    let results = Lcm_fleet.Fleet.Pool.run ~jobs cells in
    let first_problem =
      Array.to_list results
      |> List.find_map (fun (r : _ Lcm_fleet.Fleet.cell_result) ->
             match r.Lcm_fleet.Fleet.outcome with
             | Lcm_fleet.Fleet.Done (Ok ()) -> None
             | Lcm_fleet.Fleet.Done (Error e) -> Some e
             | outcome ->
               Some
                 (Printf.sprintf "%s: %s" r.Lcm_fleet.Fleet.label
                    (Lcm_fleet.Fleet.outcome_string outcome)))
    in
    match first_problem with None -> Ok () | Some e -> Error e
  end
