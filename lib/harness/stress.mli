(** Differential protocol stress harness.

    The paper's central claim (§3–§4) is that LCM's copy-on-write,
    merge-on-reconcile semantics are, for race-free programs, equivalent
    to executing each parallel phase against the phase-start state and
    applying all writes at once.  This module checks the protocol engine
    against that contract: it generates seeded random programs, runs them
    through the full simulated stack (machine, network, protocol,
    barriers, capacity evictions), and compares every outcome against a
    {e golden model} — a direct, network-free OCaml implementation of the
    per-epoch semantics:

    - reads during a parallel phase observe the phase-start value, or the
      reader's own private copy for blocks it has marked;
    - at reconcile, each word's new value is its unique writer's last
      store (last-writer-wins per word), or the registered reduction
      operator's combination of all contributions;
    - sequential segments are ordinary coherent memory.

    After every segment the checker asserts golden-model equality
    word-for-word (via {!Lcm_core.Proto.peek}) plus
    {!Lcm_core.Proto.check_invariants}; predicted load values are also
    asserted inside the running fibers wherever they are
    schedule-independent (always in sequential segments; in parallel
    phases under LCM only with unbounded capacity — an eviction resets a
    node's private view — and under Stache only for words no other node
    writes).

    Generated programs are race-free by construction (at most one writer
    per non-reduction word per phase; reductions restricted to exact
    integer operators so results do not depend on flush arrival order)
    and well-formed per the paper's compiler contract: a parallel write
    is explicitly marked whenever the writer might still hold a writable
    copy (its own home blocks, or blocks it wrote in an earlier
    sequential segment); other writes randomly rely on the implicit-mark
    backstop.

    On failure the harness shrinks the program (dropping segments, whole
    per-node op lists, then single ops) to a minimal reproducer and
    prints it together with the generating seed and case number. *)

(** One memory operation of a generated program.  Word indices are
    region-relative (the runner allocates one region and adds the base). *)
type op =
  | Load of int
  | Store of int * int
  | Rmw of int * int  (** fetch-and-add of the given delta *)
  | Accum of int * int  (** reduction accumulate with the region's operator *)
  | Mark of int  (** mark_modification of the word's block *)
  | Flush
  | Work of int
  | Yield

type segment = Sequential of op list array | Parallel of op list array
(** Per-node op lists; index = node id. *)

type prog = {
  seed : int;
  case : int;
  policy : Lcm_core.Policy.t;
  nnodes : int;
  words_per_block : int;
  nblocks : int;
  dist : Lcm_mem.Gmem.dist;
  topology : Lcm_net.Topology.t;
  barrier : Lcm_core.Barrier.style;
  capacity_blocks : int option;
  hw_cache_blocks : int option;
  reductions : (int * Lcm_core.Reduction.t) list;
      (** region block index -> operator *)
  init : (int * int) list;  (** word index -> initial value *)
  segments : segment list;
}
(** A generated program: machine shape (nodes, block size, distribution,
    topology, barrier style, capacity), reduction regions, initial
    values, and a list of sequential/parallel segments of per-node op
    lists.  The record is concrete so the model checker
    ({!Lcm_check.Check}) can build bounded configurations directly and
    its spec-agreement tests can construct micro-programs by hand;
    hand-built programs must respect the well-formedness contract above
    (unique writer per non-reduction word per phase, marks on writes that
    may hit a writable copy). *)

val gen : seed:int -> case:int -> ?policy:Lcm_core.Policy.t -> unit -> prog
(** Deterministically generate case [case] of stream [seed].  [policy]
    forces the memory-system policy; otherwise each case draws one of
    stache / lcm-scc / lcm-mcc / lcm-mcc-update. *)

val run_case : ?faults:Lcm_net.Faults.t -> prog -> (unit, string) result
(** Execute a program against the real stack and check it against the
    golden model.  [Error] carries every divergence found in the first
    diverging segment (load values, post-segment state, protocol
    invariants), or the protocol exception (e.g. deadlock, a typed
    {!Lcm_sim.Engine.Stalled} quiescence failure, or
    {!Lcm_net.Network.Net_unreachable}).  [faults] runs the case over an
    unreliable interconnect per the plan; because the golden model is
    network-free, this is exactly the paper's fault-tolerance claim: with
    retransmission enabled the final semantic state must be identical to
    the fault-free run. *)

val golden : prog -> (int option list array * int array) list
(** The golden model's verdict on a whole program, one entry per segment:
    the expected load values per node ([None] where the value is
    schedule-dependent and unchecked — see the module preamble) and a
    snapshot of the master state after the segment (post-reconcile for
    parallel segments).  This is {e exactly} the oracle {!run_case}
    checks against; it is exported so {!Lcm_check.Spec} — an independent
    abstract-state-machine formulation of the same semantics — can be
    pinned against it word-for-word. *)

val shrink : ?max_runs:int -> ?faults:Lcm_net.Faults.t -> prog -> prog
(** Greedily minimize a failing program: repeatedly drop segments, then
    reduction regions (together with every accum targeting them — op
    retention is conditional on the region surviving, so shrinking never
    manufactures an accum outside any region), then whole per-node op
    lists, then single ops, keeping each candidate only if it still
    fails; stops at a fixpoint or after [max_runs] (default 300)
    re-executions.  Individual marks are never dropped alone — that
    could turn a well-formed program into one with unmarked parallel
    writes, which the paper's contract does not cover. *)

val shrink_with : ?max_tries:int -> (prog -> bool) -> prog -> prog
(** {!shrink} with a caller-supplied failure predicate — the model
    checker minimizes against "re-exploration still finds a violation"
    rather than a single re-execution.  [max_tries] (default 300) bounds
    predicate evaluations. *)

val pp_prog : Format.formatter -> prog -> unit

val check_case :
  seed:int -> case:int -> ?policy:Lcm_core.Policy.t ->
  ?faults:Lcm_net.Faults.t -> unit ->
  (unit, string) result
(** {!gen} + {!run_case}; on failure, shrink and return a report with the
    seed/case provenance, the original failure, the printed minimal
    reproducer and its failure. *)

val run :
  ?policy:Lcm_core.Policy.t ->
  ?faults:Lcm_net.Faults.t ->
  ?progress:(int -> unit) ->
  ?jobs:int ->
  cases:int ->
  seed:int ->
  unit ->
  (unit, string) result
(** Run cases [0 .. cases-1] of stream [seed], stopping at the first
    failure with its shrunk report.  [progress] is called with each case
    index before it runs.  [jobs] (default 1; 0 = auto) spreads cases over
    worker domains: all cases then run to completion and the {e
    lowest-index} failure is reported, so the reported reproducer matches
    the sequential run's.  With [jobs > 1], [progress] may be called from
    worker domains, out of order. *)

val all_policies : Lcm_core.Policy.t list
(** Every policy the harness covers — {!Lcm_core.Policy.policies}, i.e.
    the registry: the directory family and the snooping-bus family. *)
