(** Deterministic run digests for before/after equivalence checking.

    Host-performance work on the simulator (hot-path caches, pre-resolved
    counters, flat channel tables) must never change what a simulation
    {e computes}.  A {!t} condenses everything observable about a finished
    run — the final memory image, every counter/gauge/sample, the full
    retained trace event sequence, and the final clock — into FNV-1a
    digests that are independent of hash-table iteration order.  Tests
    record the digests of fixed-seed workloads once and assert later
    builds reproduce them bit-for-bit. *)

type t = {
  cycles : int;  (** final [Machine.max_clock] *)
  mem : int64;  (** digest of every allocated word, in address order *)
  counters : int64;
      (** digest of all counters, gauges and samples, in sorted-name order *)
  trace : int64;  (** digest of the retained trace event sequence *)
  trace_events : int;  (** number of retained trace events *)
}

val of_proto : Lcm_core.Proto.t -> t
(** Digest a quiescent protocol instance (reads memory via
    {!Lcm_core.Proto.peek}, so outstanding exclusive copies are followed). *)

val of_runtime : Lcm_cstar.Runtime.t -> t

val to_string : t -> string
(** ["cycles=%d mem=%Lx counters=%Lx trace=%Lx/%d"] — the format the
    equivalence tests record. *)

val equal : t -> t -> bool
