(** Experiment configuration: machines and memory systems.

    The paper's testbed is a 32-processor CM-5 running Blizzard-E; the
    measured systems are Stache with compiler-emitted explicit copying,
    LCM-scc and LCM-mcc.  A {!system} bundles a protocol policy with the
    matching C\*\* compilation strategy; {!systems} lists the three in the
    paper's order. *)

type system = {
  label : string;
  policy : Lcm_core.Policy.t;
  strategy : Lcm_cstar.Runtime.strategy;
}

val stache : system
val lcm_scc : system
val lcm_mcc : system

val lcm_mcc_update : system
(** The update-based RSM member (not in the paper's measurements; used by
    the update ablation). *)

val msi : system
val mesi : system

val moesi : system
(** The snooping-bus family rides {!Lcm_core.Proto_snoop}; C\*\* code runs
    with the explicit-copy strategy, like Stache. *)

val systems : system list
(** [\[lcm_scc; lcm_mcc; stache\]] — the order of the paper's figures. *)

val all_systems : system list
(** One system per registered policy, in {!Lcm_core.Policy.all} order —
    labels and strategies derive from the registry. *)

val system_of_string : string -> (system, string) result
(** Case-insensitive lookup by policy name, alias, or system label (plus
    the historical spellings ["copy"] for Stache and ["lcm"] for
    LCM-mcc).  The error message enumerates every accepted spelling. *)

type machine = {
  nnodes : int;
  words_per_block : int;
  topology : Lcm_net.Topology.t;
  costs : Lcm_sim.Costs.t;
  capacity_blocks : int option;
  hw_cache_blocks : int option;
  seed : int;
  faults : Lcm_net.Faults.t option;
      (** interconnect fault plan; [None] = reliable transport *)
}

val default_machine : machine
(** 32 nodes, 8-word (32-byte) blocks, arity-4 fat tree — the CM-5 shape,
    with a reliable interconnect ([faults = None]). *)

val make_runtime :
  ?detect:bool ->
  ?barrier:Lcm_core.Barrier.style ->
  machine ->
  system ->
  schedule:Lcm_cstar.Schedule.t ->
  Lcm_cstar.Runtime.t
(** Build a fresh machine, install the system's protocol and return its
    runtime. *)
