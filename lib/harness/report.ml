open Lcm_apps
module Tablefmt = Lcm_util.Tablefmt

(* ------------------------------------------------------------------ *)
(* Shared machine-readable serialization                               *)
(* ------------------------------------------------------------------ *)

(* Every machine-readable artefact the repo writes — out/lcm_results.csv, the
   bench/perf JSON, sweep summaries — goes through these two writers, so
   escaping rules live in exactly one place. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* %.9g carries every figure our metrics have (wall seconds, speedups,
     checksums) and never emits an exponent JSON can't parse; non-finite
     floats have no JSON spelling, so they serialize as null. *)
  let float_repr f =
    if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

  let rec write buf ~indent ~level v =
    let pad n = String.make (n * indent) ' ' in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          write buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write buf ~indent ~level:(level + 1) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf '}'

  let to_string ?(indent = 2) v =
    let buf = Buffer.create 1024 in
    write buf ~indent ~level:0 v;
    Buffer.contents buf
end

let csv_field s =
  let needs_quoting =
    String.exists (function '"' | ',' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_line fields = String.concat "," (List.map csv_field fields) ^ "\n"

let kilo n =
  if n >= 1000 then Printf.sprintf "%.1fk" (float_of_int n /. 1000.0)
  else string_of_int n

let execution_times ~title rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
  List.iter
    (fun (experiment, rows) ->
      let fastest =
        List.fold_left
          (fun acc (r : Experiments.row) -> min acc r.result.Bench_result.cycles)
          max_int rows
      in
      Buffer.add_string buf (Printf.sprintf "-- %s --\n" experiment);
      Buffer.add_string buf
        (Tablefmt.render
           ~header:[ "system"; "cycles"; "slowdown" ]
           (List.map
              (fun (r : Experiments.row) ->
                [
                  r.system;
                  string_of_int r.result.Bench_result.cycles;
                  Printf.sprintf "%.2fx"
                    (float_of_int r.result.Bench_result.cycles
                    /. float_of_int fastest);
                ])
              rows)))
    (Experiments.group_by_experiment rows);
  Buffer.contents buf

let table1 rows =
  let header =
    [ "benchmark"; "system"; "misses"; "remote"; "clean copies"; "msgs" ]
  in
  let body =
    List.map
      (fun (r : Experiments.row) ->
        [
          r.experiment;
          r.system;
          kilo r.result.Bench_result.faults;
          kilo r.result.Bench_result.remote_fetches;
          kilo r.result.Bench_result.clean_copies;
          kilo r.result.Bench_result.messages;
        ])
      rows
  in
  "== Table 1: cache misses and clean copies ==\n" ^ Tablefmt.render ~header body

let agreement rows =
  let checks = Experiments.verify_agreement rows in
  "== Differential check: all systems compute identical results ==\n"
  ^ Tablefmt.render
      ~header:[ "experiment"; "agreement" ]
      (List.map (fun (e, ok) -> [ e; (if ok then "OK" else "MISMATCH") ]) checks)

let all_agree rows = List.for_all snd (Experiments.verify_agreement rows)

let claims cs =
  "== Paper claims (Section 6.3) ==\n"
  ^ Tablefmt.render
      ~align:[ Lcm_util.Tablefmt.Left; Left; Right; Right; Right ]
      ~header:[ "claim"; "paper"; "measured"; "verdict" ]
      (List.map
         (fun (c : Experiments.claim) ->
           [
             c.description;
             c.paper;
             Printf.sprintf "%.2fx" c.measured;
             (if c.holds then "HOLDS" else "DIFFERS");
           ])
         cs)

let memory_usage rows =
  let counter r name =
    Option.value (List.assoc_opt name r.Experiments.result.Bench_result.counters)
      ~default:0
  in
  let gauge r name =
    Option.value (List.assoc_opt name r.Experiments.result.Bench_result.gauges)
      ~default:0
  in
  "== Clean-copy memory usage (Section 5.1) ==\n"
  ^ Tablefmt.render
      ~header:[ "benchmark"; "system"; "created"; "peak alive"; "blocks reconciled" ]
      (List.filter_map
         (fun (r : Experiments.row) ->
           if r.result.Bench_result.clean_copies = 0 then None
           else
             Some
               [
                 r.experiment;
                 r.system;
                 kilo (counter r "lcm.clean_copies");
                 kilo (gauge r "lcm.peak_clean_copies");
                 kilo (counter r "lcm.reconciled_blocks");
               ])
         rows)

let message_breakdown rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "== Message breakdown ==\n";
  List.iter
    (fun (r : Experiments.row) ->
      let parts =
        Bench_result.message_breakdown r.result
        |> List.map (fun (tag, n) -> Printf.sprintf "%s=%s" tag (kilo n))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-16s %-14s %s\n" r.experiment r.system
           (String.concat " " parts)))
    rows;
  Buffer.contents buf

let samples rows =
  "== Observation series (count/mean/min/max) ==\n"
  ^ Tablefmt.render
      ~header:[ "experiment"; "system"; "sample"; "count"; "mean"; "min"; "max" ]
      (List.concat_map
         (fun (r : Experiments.row) ->
           List.map
             (fun (name, (sm : Lcm_util.Stats.summary)) ->
               [
                 r.experiment;
                 r.system;
                 name;
                 string_of_int sm.count;
                 Printf.sprintf "%.4g" sm.mean;
                 Printf.sprintf "%.4g" sm.min;
                 Printf.sprintf "%.4g" sm.max;
               ])
             r.result.Bench_result.samples)
         rows)

let to_csv rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (csv_line
       [ "experiment"; "system"; "cycles"; "faults"; "remote_fetches";
         "clean_copies"; "messages"; "checksum" ]);
  List.iter
    (fun (r : Experiments.row) ->
      Buffer.add_string buf
        (csv_line
           [
             r.experiment;
             r.system;
             string_of_int r.result.Bench_result.cycles;
             string_of_int r.result.Bench_result.faults;
             string_of_int r.result.Bench_result.remote_fetches;
             string_of_int r.result.Bench_result.clean_copies;
             string_of_int r.result.Bench_result.messages;
             Printf.sprintf "%.9g" r.result.Bench_result.checksum;
           ]))
    rows;
  Buffer.contents buf

let generic ~title rows =
  Printf.sprintf "== %s ==\n" title
  ^ Tablefmt.render
      ~header:[ "experiment"; "system"; "cycles"; "misses"; "remote"; "clean"; "msgs"; "checksum" ]
      (List.map
         (fun (r : Experiments.row) ->
           [
             r.experiment;
             r.system;
             string_of_int r.result.Bench_result.cycles;
             kilo r.result.Bench_result.faults;
             kilo r.result.Bench_result.remote_fetches;
             kilo r.result.Bench_result.clean_copies;
             kilo r.result.Bench_result.messages;
             Printf.sprintf "%.5g" r.result.Bench_result.checksum;
           ])
         rows)
