open Lcm_apps
module Tablefmt = Lcm_util.Tablefmt

let kilo n =
  if n >= 1000 then Printf.sprintf "%.1fk" (float_of_int n /. 1000.0)
  else string_of_int n

let execution_times ~title rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
  List.iter
    (fun (experiment, rows) ->
      let fastest =
        List.fold_left
          (fun acc (r : Experiments.row) -> min acc r.result.Bench_result.cycles)
          max_int rows
      in
      Buffer.add_string buf (Printf.sprintf "-- %s --\n" experiment);
      Buffer.add_string buf
        (Tablefmt.render
           ~header:[ "system"; "cycles"; "slowdown" ]
           (List.map
              (fun (r : Experiments.row) ->
                [
                  r.system;
                  string_of_int r.result.Bench_result.cycles;
                  Printf.sprintf "%.2fx"
                    (float_of_int r.result.Bench_result.cycles
                    /. float_of_int fastest);
                ])
              rows)))
    (Experiments.group_by_experiment rows);
  Buffer.contents buf

let table1 rows =
  let header =
    [ "benchmark"; "system"; "misses"; "remote"; "clean copies"; "msgs" ]
  in
  let body =
    List.map
      (fun (r : Experiments.row) ->
        [
          r.experiment;
          r.system;
          kilo r.result.Bench_result.faults;
          kilo r.result.Bench_result.remote_fetches;
          kilo r.result.Bench_result.clean_copies;
          kilo r.result.Bench_result.messages;
        ])
      rows
  in
  "== Table 1: cache misses and clean copies ==\n" ^ Tablefmt.render ~header body

let agreement rows =
  let checks = Experiments.verify_agreement rows in
  "== Differential check: all systems compute identical results ==\n"
  ^ Tablefmt.render
      ~header:[ "experiment"; "agreement" ]
      (List.map (fun (e, ok) -> [ e; (if ok then "OK" else "MISMATCH") ]) checks)

let all_agree rows = List.for_all snd (Experiments.verify_agreement rows)

let claims cs =
  "== Paper claims (Section 6.3) ==\n"
  ^ Tablefmt.render
      ~align:[ Lcm_util.Tablefmt.Left; Left; Right; Right; Right ]
      ~header:[ "claim"; "paper"; "measured"; "verdict" ]
      (List.map
         (fun (c : Experiments.claim) ->
           [
             c.description;
             c.paper;
             Printf.sprintf "%.2fx" c.measured;
             (if c.holds then "HOLDS" else "DIFFERS");
           ])
         cs)

let memory_usage rows =
  let counter r name =
    Option.value (List.assoc_opt name r.Experiments.result.Bench_result.counters)
      ~default:0
  in
  let gauge r name =
    Option.value (List.assoc_opt name r.Experiments.result.Bench_result.gauges)
      ~default:0
  in
  "== Clean-copy memory usage (Section 5.1) ==\n"
  ^ Tablefmt.render
      ~header:[ "benchmark"; "system"; "created"; "peak alive"; "blocks reconciled" ]
      (List.filter_map
         (fun (r : Experiments.row) ->
           if r.result.Bench_result.clean_copies = 0 then None
           else
             Some
               [
                 r.experiment;
                 r.system;
                 kilo (counter r "lcm.clean_copies");
                 kilo (gauge r "lcm.peak_clean_copies");
                 kilo (counter r "lcm.reconciled_blocks");
               ])
         rows)

let message_breakdown rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "== Message breakdown ==\n";
  List.iter
    (fun (r : Experiments.row) ->
      let parts =
        Bench_result.message_breakdown r.result
        |> List.map (fun (tag, n) -> Printf.sprintf "%s=%s" tag (kilo n))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-16s %-14s %s\n" r.experiment r.system
           (String.concat " " parts)))
    rows;
  Buffer.contents buf

let samples rows =
  "== Observation series (count/mean/min/max) ==\n"
  ^ Tablefmt.render
      ~header:[ "experiment"; "system"; "sample"; "count"; "mean"; "min"; "max" ]
      (List.concat_map
         (fun (r : Experiments.row) ->
           List.map
             (fun (name, (sm : Lcm_util.Stats.summary)) ->
               [
                 r.experiment;
                 r.system;
                 name;
                 string_of_int sm.count;
                 Printf.sprintf "%.4g" sm.mean;
                 Printf.sprintf "%.4g" sm.min;
                 Printf.sprintf "%.4g" sm.max;
               ])
             r.result.Bench_result.samples)
         rows)

let to_csv rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "experiment,system,cycles,faults,remote_fetches,clean_copies,messages,checksum\n";
  List.iter
    (fun (r : Experiments.row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%d,%d,%d,%.9g\n" r.experiment r.system
           r.result.Bench_result.cycles r.result.Bench_result.faults
           r.result.Bench_result.remote_fetches r.result.Bench_result.clean_copies
           r.result.Bench_result.messages r.result.Bench_result.checksum))
    rows;
  Buffer.contents buf

let generic ~title rows =
  Printf.sprintf "== %s ==\n" title
  ^ Tablefmt.render
      ~header:[ "experiment"; "system"; "cycles"; "misses"; "remote"; "clean"; "msgs"; "checksum" ]
      (List.map
         (fun (r : Experiments.row) ->
           [
             r.experiment;
             r.system;
             string_of_int r.result.Bench_result.cycles;
             kilo r.result.Bench_result.faults;
             kilo r.result.Bench_result.remote_fetches;
             kilo r.result.Bench_result.clean_copies;
             kilo r.result.Bench_result.messages;
             Printf.sprintf "%.5g" r.result.Bench_result.checksum;
           ])
         rows)
