type system = {
  label : string;
  policy : Lcm_core.Policy.t;
  strategy : Lcm_cstar.Runtime.strategy;
}

let stache =
  {
    label = "Stache+copy";
    policy = Lcm_core.Policy.stache;
    strategy = Lcm_cstar.Runtime.Explicit_copy;
  }

let lcm_scc =
  {
    label = "LCM-scc";
    policy = Lcm_core.Policy.lcm_scc;
    strategy = Lcm_cstar.Runtime.Lcm_directives;
  }

let lcm_mcc =
  {
    label = "LCM-mcc";
    policy = Lcm_core.Policy.lcm_mcc;
    strategy = Lcm_cstar.Runtime.Lcm_directives;
  }

let lcm_mcc_update =
  {
    label = "LCM-mcc-update";
    policy = Lcm_core.Policy.lcm_mcc_update;
    strategy = Lcm_cstar.Runtime.Lcm_directives;
  }

let systems = [ lcm_scc; lcm_mcc; stache ]

let system_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "stache" | "copy" | "stache+copy" -> Ok stache
  | "lcm-scc" | "scc" -> Ok lcm_scc
  | "lcm-mcc" | "mcc" | "lcm" -> Ok lcm_mcc
  | "lcm-mcc-update" | "mcc-update" | "update" -> Ok lcm_mcc_update
  | other -> Error (Printf.sprintf "unknown system %S" other)

type machine = {
  nnodes : int;
  words_per_block : int;
  topology : Lcm_net.Topology.t;
  costs : Lcm_sim.Costs.t;
  capacity_blocks : int option;
  hw_cache_blocks : int option;
  seed : int;
  faults : Lcm_net.Faults.t option;
}

let default_machine =
  {
    nnodes = 32;
    words_per_block = 8;
    topology = Lcm_net.Topology.Fat_tree { arity = 4 };
    costs = Lcm_sim.Costs.default;
    capacity_blocks = None;
    hw_cache_blocks = None;
    seed = 42;
    faults = None;
  }

let make_runtime ?detect ?barrier m system ~schedule =
  let mach =
    Lcm_tempest.Machine.create ~costs:m.costs ~topology:m.topology ~seed:m.seed
      ?capacity_blocks:m.capacity_blocks ?hw_cache_blocks:m.hw_cache_blocks
      ?faults:m.faults ~nnodes:m.nnodes
      ~words_per_block:m.words_per_block ()
  in
  let proto = Lcm_core.Proto.install ?detect ?barrier ~policy:system.policy mach in
  Lcm_cstar.Runtime.create proto ~strategy:system.strategy ~schedule ()
