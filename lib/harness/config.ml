module Policy = Lcm_core.Policy

type system = {
  label : string;
  policy : Policy.t;
  strategy : Lcm_cstar.Runtime.strategy;
}

(* Systems derive from the policy registry: label from the registry entry,
   execution strategy from the family — LCM policies run C* code through
   the marking/flushing directives; everything coherent (Stache, the bus
   family) runs the same code with explicit copies. *)
let system_of_info (i : Policy.info) =
  {
    label = i.Policy.label;
    policy = i.Policy.policy;
    strategy =
      (if Policy.is_lcm i.Policy.policy then Lcm_cstar.Runtime.Lcm_directives
       else Lcm_cstar.Runtime.Explicit_copy);
  }

let all_systems = List.map system_of_info Policy.all

let by_name name =
  List.find (fun s -> s.policy.Policy.name = name) all_systems

let stache = by_name "stache"
let lcm_scc = by_name "lcm-scc"
let lcm_mcc = by_name "lcm-mcc"
let lcm_mcc_update = by_name "lcm-mcc-update"
let msi = by_name "msi"
let mesi = by_name "mesi"
let moesi = by_name "moesi"

let systems = [ lcm_scc; lcm_mcc; stache ]

(* Historical spellings that name a *system* rather than a policy, kept
   out of Policy.of_string: "copy" is the explicit-copy execution
   strategy, "lcm" the headline LCM system. *)
let extra_aliases = [ ("copy", "stache"); ("lcm", "lcm-mcc") ]

let system_spellings =
  List.map
    (fun (i : Policy.info) ->
      let extras =
        List.filter_map
          (fun (alias, name) ->
            if name = i.Policy.policy.Policy.name then Some alias else None)
          extra_aliases
      in
      let all =
        (i.Policy.policy.Policy.name :: String.lowercase_ascii i.Policy.label
         :: i.Policy.aliases)
        @ extras
      in
      let deduped =
        List.fold_left
          (fun acc s -> if List.mem s acc then acc else s :: acc)
          [] all
      in
      String.concat "|" (List.rev deduped))
    Policy.all

let system_of_string s =
  let key = String.lowercase_ascii (String.trim s) in
  let matches (i : Policy.info) =
    i.Policy.policy.Policy.name = key
    || String.lowercase_ascii i.Policy.label = key
    || List.mem key i.Policy.aliases
  in
  match List.find_opt matches Policy.all with
  | Some i -> Ok (system_of_info i)
  | None -> (
    match List.assoc_opt key extra_aliases with
    | Some name -> Ok (by_name name)
    | None ->
      Error
        (Printf.sprintf "unknown system %S (expected one of: %s)" key
           (String.concat ", " system_spellings)))

type machine = {
  nnodes : int;
  words_per_block : int;
  topology : Lcm_net.Topology.t;
  costs : Lcm_sim.Costs.t;
  capacity_blocks : int option;
  hw_cache_blocks : int option;
  seed : int;
  faults : Lcm_net.Faults.t option;
}

let default_machine =
  {
    nnodes = 32;
    words_per_block = 8;
    topology = Lcm_net.Topology.Fat_tree { arity = 4 };
    costs = Lcm_sim.Costs.default;
    capacity_blocks = None;
    hw_cache_blocks = None;
    seed = 42;
    faults = None;
  }

let make_runtime ?detect ?barrier m system ~schedule =
  let mach =
    Lcm_tempest.Machine.create ~costs:m.costs ~topology:m.topology ~seed:m.seed
      ?capacity_blocks:m.capacity_blocks ?hw_cache_blocks:m.hw_cache_blocks
      ?faults:m.faults ~nnodes:m.nnodes
      ~words_per_block:m.words_per_block ()
  in
  let proto = Lcm_core.Proto.install ?detect ?barrier ~policy:system.policy mach in
  Lcm_cstar.Runtime.create proto ~strategy:system.strategy ~schedule ()
