(** Render experiment rows as the paper's figures and tables.

    All output is plain text meant to be read next to the paper: execution
    times with a slowdown column normalised to the fastest system per
    experiment (the figures), a miss/clean-copy table (Table 1), the §6.3
    claim checklist, and generic tables for ablations. *)

(** {1 Shared machine-readable serialization}

    Every machine-readable artefact the repo writes ([out/lcm_results.csv],
    the bench/perf JSON, fleet sweep summaries) is built from these two
    writers, so escaping lives in one place. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite values serialize as [null] *)
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val escape : string -> string
  (** JSON string-body escaping (quotes, backslash, control characters);
      no surrounding quotes. *)

  val to_string : ?indent:int -> t -> string
  (** Pretty-print with [indent] spaces per level (default 2).  Parses
      back with {!Traceview.parse}. *)
end

val csv_field : string -> string
(** RFC-4180 field escaping: quoted (with doubled inner quotes) only when
    the field contains a comma, quote or newline — plain fields pass
    through unchanged. *)

val csv_line : string list -> string
(** One comma-joined, newline-terminated record of escaped fields. *)

(** {1 Paper tables and figures} *)

val execution_times : title:string -> Experiments.row list -> string
(** One block per experiment: per-system simulated cycles and relative
    slowdown vs the fastest system (reproduces Figures 2/3 as numbers). *)

val table1 : Experiments.row list -> string
(** Cache misses (access faults), remote fetches and clean copies per
    benchmark × system, in thousands — the paper's Table 1 with our
    counters broken out. *)

val agreement : Experiments.row list -> string
(** The differential check: per experiment, whether all systems computed
    identical results. *)

val claims : Experiments.claim list -> string
(** Paper-claim checklist: claim, the paper's number, our measured ratio,
    verdict. *)

val generic : title:string -> Experiments.row list -> string
(** Cycles/faults/messages table for ablation row sets. *)

val all_agree : Experiments.row list -> bool

val memory_usage : Experiments.row list -> string
(** Clean-copy memory accounting (paper §5.1): copies created vs the peak
    simultaneously alive, per run. *)

val samples : Experiments.row list -> string
(** Observation-series table: one line per (experiment, system, series)
    with count, mean, min and max — e.g. ["cstar.phase_cycles"], the
    per-parallel-call cycle distribution. *)

val message_breakdown : Experiments.row list -> string
(** Per-message-class counts for each row — which protocol actions a
    workload actually consists of. *)

val to_csv : Experiments.row list -> string
(** Machine-readable export: one line per (experiment, system) with
    cycles, faults, remote fetches, clean copies, messages and checksum.
    Header included. *)
