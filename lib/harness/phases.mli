(** Per-phase metric deltas from a runtime phase log.

    {!Lcm_cstar.Runtime.enable_phase_log} captures every counter before
    and after each [parallel_apply]; this module turns those snapshots
    into per-phase increments and renders them as a table, giving a
    phase-resolved view of where an application's misses, messages and
    barrier wait go. *)

type row = {
  label : string;  (** ["parallel#N"] *)
  cycles : int;  (** phase duration, including reconciliation *)
  deltas : (string * int) list;
      (** counters that changed during the phase, with their increment *)
}

val counter : row -> string -> int
(** A counter's increment during the phase (0 when unchanged). *)

val of_snapshot : Lcm_cstar.Runtime.phase_snapshot -> row

val of_log : Lcm_cstar.Runtime.phase_snapshot list -> row list

val render : row list -> string
(** A table of phase, cycles, misses (read+write faults), remote fetches,
    messages, flushed blocks and barrier-wait cycles. *)
