open Lcm_apps
module Schedule = Lcm_cstar.Schedule

type scale = Tiny | Quick | Paper

type row = { experiment : string; system : string; result : Bench_result.t }

type cells = (string * (unit -> row)) list

let dyn_seed = 5

let scale_to_string = function
  | Tiny -> "tiny"
  | Quick -> "quick"
  | Paper -> "paper"

let scale_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "tiny" -> Ok Tiny
  | "quick" -> Ok Quick
  | "paper" -> Ok Paper
  | other -> Error (Printf.sprintf "unknown scale %S" other)

(* Every experiment is a {e cell}: an independent, self-contained thunk
   that builds its own runtime, runs one (benchmark × system) simulation
   and returns a row.  Cells never share mutable state, which is what lets
   {!Sweep} run them across domains; executing them in list order
   ([run_cells]) reproduces the original sequential harness exactly. *)

let run_cells cells = List.map (fun (_, f) -> f ()) cells

let label ~experiment ~system = experiment ^ "/" ^ system

let checked_cell ~experiment ~system mk_rt run =
  ( label ~experiment ~system,
    fun () ->
      let rt = mk_rt () in
      let result = run rt in
      (* every harness run is audited: a protocol-state violation fails the
         whole reproduction rather than silently skewing numbers *)
      (match Lcm_core.Proto.check_invariants (Lcm_cstar.Runtime.proto rt) with
      | Ok () -> ()
      | Error es ->
        failwith
          (Printf.sprintf "%s/%s: protocol invariants violated:\n  %s" experiment
             system (String.concat "\n  " es)));
      { experiment; system; result } )

let stencil_params = function
  | Tiny -> { Stencil.n = 24; iters = 3; work_per_cell = 4 }
  | Quick -> { Stencil.n = 96; iters = 6; work_per_cell = 4 }
  | Paper -> { Stencil.n = 1024; iters = 50; work_per_cell = 4 }

let adaptive_params = function
  | Tiny ->
    {
      Adaptive.n = 12;
      iters = 4;
      max_depth = 2;
      subdiv_threshold = 2.0;
      arena_per_node = 512;
      work_per_cell = 6;
    }
  | Quick ->
    {
      Adaptive.n = 24;
      iters = 12;
      max_depth = 3;
      subdiv_threshold = 2.0;
      arena_per_node = 2048;
      work_per_cell = 6;
    }
  | Paper -> Adaptive.paper

let threshold_params = function
  | Tiny -> { Threshold.n = 24; iters = 3; threshold = 0.5; work_per_cell = 4 }
  | Quick -> { Threshold.n = 96; iters = 8; threshold = 0.5; work_per_cell = 4 }
  | Paper -> Threshold.paper

let unstructured_params = function
  | Tiny -> { Unstructured.nodes = 64; edges = 256; iters = 6; seed = 11; work_per_node = 6 }
  | Quick -> { Unstructured.nodes = 256; edges = 1024; iters = 24; seed = 11; work_per_node = 6 }
  | Paper -> Unstructured.paper

let run_systems_cells machine ~experiment ~schedule run =
  List.map
    (fun system ->
      checked_cell ~experiment ~system:system.Config.label
        (fun () -> Config.make_runtime machine system ~schedule)
        run)
    Config.systems

let figure2_cells ?(scale = Quick) machine =
  let p = stencil_params scale in
  run_systems_cells machine ~experiment:"stencil-stat" ~schedule:Schedule.Static
    (fun rt -> Stencil.run rt p)
  @ run_systems_cells machine ~experiment:"stencil-dyn"
      ~schedule:(Schedule.Dynamic_random dyn_seed) (fun rt -> Stencil.run rt p)

let figure2 ?scale machine = run_cells (figure2_cells ?scale machine)

let figure3_cells ?(scale = Quick) machine =
  let ap = adaptive_params scale in
  let tp = threshold_params scale in
  let up = unstructured_params scale in
  run_systems_cells machine ~experiment:"adaptive-stat" ~schedule:Schedule.Static
    (fun rt -> Adaptive.run rt ap)
  @ run_systems_cells machine ~experiment:"adaptive-dyn"
      ~schedule:(Schedule.Dynamic_random dyn_seed) (fun rt -> Adaptive.run rt ap)
  @ run_systems_cells machine ~experiment:"threshold" ~schedule:Schedule.Static
      (fun rt -> Threshold.run rt tp)
  @ run_systems_cells machine ~experiment:"unstructured" ~schedule:Schedule.Static
      (fun rt -> Unstructured.run rt up)

let figure3 ?scale machine = run_cells (figure3_cells ?scale machine)

let group_by_experiment rows =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun row ->
      if not (Hashtbl.mem tbl row.experiment) then begin
        order := row.experiment :: !order;
        Hashtbl.add tbl row.experiment []
      end;
      Hashtbl.replace tbl row.experiment (row :: Hashtbl.find tbl row.experiment))
    rows;
  List.rev_map (fun e -> (e, List.rev (Hashtbl.find tbl e))) !order

let verify_agreement rows =
  List.map
    (fun (experiment, rows) ->
      let ok =
        match rows with
        | [] -> true
        | first :: rest ->
          List.for_all (fun r -> Bench_result.close first.result r.result) rest
      in
      (experiment, ok))
    (group_by_experiment rows)

(* ------------------------------------------------------------------ *)
(* Claims                                                              *)
(* ------------------------------------------------------------------ *)

type claim = {
  id : string;
  description : string;
  paper : string;
  measured : float;
  holds : bool;
}

let find rows experiment system =
  List.find_opt (fun r -> r.experiment = experiment && r.system = system) rows

let cycles rows experiment system =
  match find rows experiment system with
  | Some r -> float_of_int r.result.Bench_result.cycles
  | None -> nan

let ratio_claim rows ~id ~description ~paper ~slower ~faster ~ok =
  let m = cycles rows (fst slower) (snd slower) /. cycles rows (fst faster) (snd faster) in
  { id; description; paper; measured = m; holds = ok m }

let claims rows =
  [
    ratio_claim rows ~id:"stencil-stat/stache-wins"
      ~description:"Stencil-stat: Stache faster than LCM (static partition keeps interiors local)"
      ~paper:"~5x"
      ~slower:("stencil-stat", "LCM-mcc")
      ~faster:("stencil-stat", "Stache+copy")
      ~ok:(fun m -> m > 1.2);
    ratio_claim rows ~id:"stencil/mcc-over-scc"
      ~description:"Stencil: LCM-mcc faster than LCM-scc (spatial block reuse)" ~paper:"~4x"
      ~slower:("stencil-stat", "LCM-scc")
      ~faster:("stencil-stat", "LCM-mcc")
      ~ok:(fun m -> m > 1.5);
    ratio_claim rows ~id:"stencil-dyn/comparable"
      ~description:"Stencil-dyn: LCM-mcc comparable to Stache (within 25%)"
      ~paper:"mcc ~2% faster"
      ~slower:("stencil-dyn", "LCM-mcc")
      ~faster:("stencil-dyn", "Stache+copy")
      ~ok:(fun m -> m < 1.25);
    (* Direction check only: LCM pays overhead on statically-analysable
       adaptive code, but far less than Stache's stencil-stat advantage.
       Our flush/copy cost constants make the overhead larger than the
       paper's 13% — see EXPERIMENTS.md. *)
    ratio_claim rows ~id:"adaptive-stat/lcm-overhead"
      ~description:"Adaptive-stat: LCM slower than Stache (but scc beats mcc, as in the paper)"
      ~paper:"LCM 13% slower"
      ~slower:("adaptive-stat", "LCM-mcc")
      ~faster:("adaptive-stat", "Stache+copy")
      ~ok:(fun m -> m > 1.0 && m < 3.2);
    ratio_claim rows ~id:"adaptive-dyn/lcm-wins"
      ~description:"Adaptive-dyn: LCM-mcc beats Stache (fine-grain copy-on-write vs full copy)"
      ~paper:"~1.9x"
      ~slower:("adaptive-dyn", "Stache+copy")
      ~faster:("adaptive-dyn", "LCM-mcc")
      ~ok:(fun m -> m > 1.2);
    ratio_claim rows ~id:"threshold/mcc-wins"
      ~description:"Threshold: LCM-mcc beats Stache (copies only ~2% of cells)"
      ~paper:"~1.97x"
      ~slower:("threshold", "Stache+copy")
      ~faster:("threshold", "LCM-mcc")
      ~ok:(fun m -> m > 1.2);
    ratio_claim rows ~id:"threshold/scc-wins"
      ~description:"Threshold: LCM-scc also beats Stache" ~paper:"~1.74x"
      ~slower:("threshold", "Stache+copy")
      ~faster:("threshold", "LCM-scc")
      ~ok:(fun m -> m > 1.1);
    ratio_claim rows ~id:"unstructured/lcm-wins"
      ~description:"Unstructured: LCM-mcc beats Stache (irregular cross-processor edges)"
      ~paper:"19-28%"
      ~slower:("unstructured", "Stache+copy")
      ~faster:("unstructured", "LCM-mcc")
      ~ok:(fun m -> m > 1.0);
    ratio_claim rows ~id:"unstructured/mcc-over-scc"
      ~description:"Unstructured: LCM-mcc modestly beats LCM-scc" ~paper:"8%"
      ~slower:("unstructured", "LCM-scc")
      ~faster:("unstructured", "LCM-mcc")
      ~ok:(fun m -> m > 1.0);
  ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* Ablations historically ran at one fixed (Quick-ish) size; the [?scale]
   parameter keeps those exact constants as the [Quick] default (so the
   bench harness output is unchanged) and adds [Tiny] shrinks so the test
   suite can sweep every family in seconds.  [Paper] falls back to the
   Quick constants — the ablations' conclusions are scale-insensitive. *)

let ablation_reduction_cells ?(scale = Quick) machine =
  let p =
    match scale with
    | Tiny -> { Reduce_demo.n = 512; per_add_work = 2 }
    | Quick | Paper -> { Reduce_demo.n = 8192; per_add_work = 2 }
  in
  let cell system variant =
    checked_cell ~experiment:"reduction" ~system:(Reduce_demo.variant_name variant)
      (fun () -> Config.make_runtime machine system ~schedule:Schedule.Static)
      (fun rt -> Reduce_demo.run rt variant p)
  in
  [
    cell Config.lcm_mcc `Rsm_reconcile;
    cell Config.stache `Manual_partials;
    cell Config.stache `Serialized;
  ]

let ablation_reduction machine = run_cells (ablation_reduction_cells machine)

let ablation_false_sharing_cells ?(scale = Quick) machine =
  let p =
    match scale with
    | Tiny -> { False_sharing.blocks = 16; rounds = 4 }
    | Quick | Paper -> { False_sharing.blocks = 64; rounds = 20 }
  in
  List.map
    (fun system ->
      checked_cell ~experiment:"false-sharing" ~system:system.Config.label
        (fun () -> Config.make_runtime machine system ~schedule:Schedule.Static)
        (fun rt -> False_sharing.run rt p))
    [ Config.stache; Config.lcm_scc; Config.lcm_mcc ]

let ablation_false_sharing machine =
  run_cells (ablation_false_sharing_cells machine)

let ablation_stale_cells ?(scale = Quick) machine =
  let p =
    match scale with
    | Tiny -> { Nbody_stale.bodies = 64; iters = 3; work_per_body = 2 }
    | Quick | Paper -> { Nbody_stale.bodies = 512; iters = 12; work_per_body = 2 }
  in
  List.map
    (fun mode ->
      checked_cell ~experiment:"nbody-stale" ~system:(Nbody_stale.mode_name mode)
        (fun () -> Config.make_runtime machine Config.lcm_mcc ~schedule:Schedule.Static)
        (fun rt -> Nbody_stale.run rt mode p))
    [ `Fresh; `Stale 2; `Stale 4; `Stale 8 ]

let ablation_stale machine = run_cells (ablation_stale_cells machine)

let ablation_block_reuse_cells ?(scale = Quick) machine =
  let p =
    match scale with
    | Tiny -> { Stencil.n = 16; iters = 2; work_per_cell = 4 }
    | Quick | Paper -> { Stencil.n = 64; iters = 4; work_per_cell = 4 }
  in
  List.concat_map
    (fun wpb ->
      let machine = { machine with Config.words_per_block = wpb } in
      List.map
        (fun system ->
          checked_cell
            ~experiment:(Printf.sprintf "stencil wpb=%d" wpb)
            ~system:system.Config.label
            (fun () -> Config.make_runtime machine system ~schedule:Schedule.Static)
            (fun rt -> Stencil.run rt p))
        [ Config.lcm_scc; Config.lcm_mcc ])
    [ 2; 4; 8; 16 ]

let ablation_block_reuse machine = run_cells (ablation_block_reuse_cells machine)

let small_stencil_params = function
  | Tiny -> { Stencil.n = 24; iters = 2; work_per_cell = 4 }
  | Quick | Paper -> { Stencil.n = 96; iters = 6; work_per_cell = 4 }

let ablation_schedule_cells ?(scale = Quick) machine =
  let p = small_stencil_params scale in
  List.concat_map
    (fun (sname, schedule) ->
      List.map
        (fun system ->
          checked_cell
            ~experiment:("stencil sched=" ^ sname)
            ~system:system.Config.label
            (fun () -> Config.make_runtime machine system ~schedule)
            (fun rt -> Stencil.run rt p))
        [ Config.stache; Config.lcm_mcc ])
    [
      ("static", Schedule.Static);
      ("rotate", Schedule.Dynamic_rotate);
      ("random", Schedule.Dynamic_random dyn_seed);
    ]

let ablation_schedule machine = run_cells (ablation_schedule_cells machine)

let ablation_topology_cells ?(scale = Quick) machine =
  (* interconnect sensitivity: hop latencies across a crossbar, a 2-D mesh
     and the CM-5's fat tree *)
  let p = small_stencil_params scale in
  List.concat_map
    (fun (tname, topology) ->
      let machine = { machine with Config.topology } in
      List.map
        (fun system ->
          checked_cell
            ~experiment:("stencil-dyn topo=" ^ tname)
            ~system:system.Config.label
            (fun () ->
              Config.make_runtime machine system
                ~schedule:(Schedule.Dynamic_random dyn_seed))
            (fun rt -> Stencil.run rt p))
        [ Config.stache; Config.lcm_mcc ])
    [
      ("crossbar", Lcm_net.Topology.Crossbar);
      ("mesh8", Lcm_net.Topology.Mesh2d { cols = 8 });
      ("fattree4", Lcm_net.Topology.Fat_tree { arity = 4 });
    ]

let ablation_topology machine = run_cells (ablation_topology_cells machine)

let ablation_scaling_cells ?(scale = Quick) machine =
  (* weak scaling: per-node work held constant (a fixed-height band each)
     while the machine grows; reconciliation and boundary traffic grow
     with P *)
  let band, iters, sizes =
    match scale with
    | Tiny -> (12, 2, [ 4; 8 ])
    | Quick | Paper -> (24, 3, [ 4; 8; 16; 32 ])
  in
  List.concat_map
    (fun nnodes ->
      let machine = { machine with Config.nnodes } in
      let p = { Stencil.n = band * nnodes; iters; work_per_cell = 4 } in
      List.map
        (fun system ->
          checked_cell
            ~experiment:(Printf.sprintf "stencil weak-scaling P=%d" nnodes)
            ~system:system.Config.label
            (fun () -> Config.make_runtime machine system ~schedule:Schedule.Static)
            (fun rt -> Stencil.run rt p))
        [ Config.stache; Config.lcm_mcc ])
    sizes

let ablation_scaling machine = run_cells (ablation_scaling_cells machine)

let dir_vs_snoop_cells ?(scale = Quick) machine =
  (* the crossover family: the same weak-scaling stencil on the directory
     engine (point-to-point fat tree, bandwidth grows with P, home blocks
     are local memory) and the snooping-bus engine (one arbitrated
     broadcast medium, bandwidth constant, every miss takes the bus).
     A bus miss is individually cheap — one transaction, no directory
     round trips — but the single wire serializes all of them, so the
     directory/bus cycle ratio widens with P as bus.arb_stall_cycles
     takes over the critical path: the classic why-buses-don't-scale
     crossover.  Both systems are coherent, so verify_agreement holds
     across the engines — same checksums, different cycle counts. *)
  let band, iters, sizes =
    match scale with
    | Tiny -> (12, 2, [ 2; 4; 8 ])
    | Quick | Paper -> (24, 3, [ 2; 4; 8; 16; 32 ])
  in
  List.concat_map
    (fun nnodes ->
      let machine = { machine with Config.nnodes } in
      let p = { Stencil.n = band * nnodes; iters; work_per_cell = 4 } in
      List.map
        (fun system ->
          checked_cell
            ~experiment:(Printf.sprintf "dir-vs-snoop P=%d" nnodes)
            ~system:system.Config.label
            (fun () -> Config.make_runtime machine system ~schedule:Schedule.Static)
            (fun rt -> Stencil.run rt p))
        [ Config.stache; Config.mesi ])
    sizes

let dir_vs_snoop machine = run_cells (dir_vs_snoop_cells machine)

let ablation_cost_sensitivity_cells ?(scale = Quick) machine =
  (* robustness: the headline comparisons should not depend on the exact
     communication-cost constants — sweep them x0.5 / x1 / x2 *)
  let p = small_stencil_params scale in
  List.concat_map
    (fun cost_scale ->
      let machine =
        { machine with Config.costs = Lcm_sim.Costs.scale machine.Config.costs cost_scale }
      in
      List.concat_map
        (fun (sname, schedule) ->
          List.map
            (fun system ->
              checked_cell
                ~experiment:
                  (Printf.sprintf "stencil-%s costs x%.1f" sname cost_scale)
                ~system:system.Config.label
                (fun () -> Config.make_runtime machine system ~schedule)
                (fun rt -> Stencil.run rt p))
            [ Config.stache; Config.lcm_mcc ])
        [ ("stat", Schedule.Static); ("dyn", Schedule.Dynamic_random dyn_seed) ])
    [ 0.5; 1.0; 2.0 ]

let ablation_cost_sensitivity machine =
  run_cells (ablation_cost_sensitivity_cells machine)

let ablation_detection_cells ?(scale = Quick) machine =
  (* cost of run-time semantic-violation detection (§7.2-7.3): off,
     reconcile-time only, and strict (all read-only copies flushed at sync
     points, catching actual races).  Threshold leaves ~98% of blocks
     unmodified per phase, so strict mode's flush of their read-only copies
     is visible — the paper's "loss in performance is less critical [since]
     used only while debugging". *)
  let p =
    match scale with
    | Tiny -> { Threshold.n = 24; iters = 3; threshold = 0.5; work_per_cell = 4 }
    | Quick | Paper ->
      { Threshold.n = 96; iters = 8; threshold = 0.5; work_per_cell = 4 }
  in
  List.map
    (fun (detect_label, detect, strict) ->
      checked_cell ~experiment:"threshold detection" ~system:detect_label
        (fun () ->
          let mach =
            Lcm_tempest.Machine.create ~costs:machine.Config.costs
              ~topology:machine.Config.topology ~seed:machine.Config.seed
              ~nnodes:machine.Config.nnodes
              ~words_per_block:machine.Config.words_per_block ()
          in
          let proto =
            Lcm_core.Proto.install ~detect ~strict_detection:strict
              ~policy:Lcm_core.Policy.lcm_mcc mach
          in
          Lcm_cstar.Runtime.create proto ~strategy:Lcm_cstar.Runtime.Lcm_directives
            ~schedule:Schedule.Static ())
        (fun rt -> Threshold.run rt p))
    [ ("off", false, false); ("reconcile-time", true, false); ("strict", true, true) ]

let ablation_detection machine = run_cells (ablation_detection_cells machine)

let ablation_update_cells ?(scale = Quick) machine =
  (* invalidate- vs update-based reconciliation (Policy.lcm_mcc_update):
     stencil consumers re-reference neighbour blocks every iteration, so
     refreshing copies in place saves their re-fetches *)
  let p = small_stencil_params scale in
  List.concat_map
    (fun (sname, schedule) ->
      List.map
        (fun system ->
          checked_cell ~experiment:("stencil " ^ sname) ~system:system.Config.label
            (fun () -> Config.make_runtime machine system ~schedule)
            (fun rt -> Stencil.run rt p))
        [ Config.lcm_mcc; Config.lcm_mcc_update ])
    [ ("static", Schedule.Static); ("dyn", Schedule.Dynamic_random dyn_seed) ]

let ablation_update machine = run_cells (ablation_update_cells machine)

let ablation_barrier_cells ?(scale = Quick) machine =
  (* Reconciliation organised as a central coordinator vs a combining tree
     (paper §5.1), at two machine sizes.  Many short phases make barrier
     cost visible. *)
  let p, sizes =
    match scale with
    | Tiny -> ({ Stencil.n = 16; iters = 6; work_per_cell = 4 }, [ 8; 32 ])
    | Quick | Paper ->
      ({ Stencil.n = 32; iters = 24; work_per_cell = 4 }, [ 32; 128 ])
  in
  List.concat_map
    (fun nnodes ->
      let machine = { machine with Config.nnodes } in
      List.map
        (fun style ->
          checked_cell
            ~experiment:(Printf.sprintf "stencil P=%d" nnodes)
            ~system:("barrier " ^ Lcm_core.Barrier.to_string style)
            (fun () ->
              Config.make_runtime ~barrier:style machine Config.lcm_mcc
                ~schedule:Schedule.Static)
            (fun rt -> Stencil.run rt p))
        [ Lcm_core.Barrier.Constant; Lcm_core.Barrier.Flat; Lcm_core.Barrier.Tree 4 ])
    sizes

let ablation_barrier machine = run_cells (ablation_barrier_cells machine)

let ablation_capacity_cells ?(scale = Quick) machine =
  (* The paper's "on a machine with a limited cache ... the first
     [dynamic] version's performance is likely to be more typical": a
     small hardware cache above node memory erodes Stache-stat's advantage
     because its fast path (pure local hits) now pays miss penalties,
     while LCM's time is dominated by protocol work either way. *)
  let p = small_stencil_params scale in
  List.concat_map
    (fun (cap_label, hw_cache_blocks) ->
      let machine = { machine with Config.hw_cache_blocks } in
      List.map
        (fun system ->
          checked_cell
            ~experiment:("stencil-stat hw-cache " ^ cap_label)
            ~system:system.Config.label
            (fun () -> Config.make_runtime machine system ~schedule:Schedule.Static)
            (fun rt -> Stencil.run rt p))
        [ Config.stache; Config.lcm_mcc ])
    [ ("none", None); ("64 blocks", Some 64); ("16 blocks", Some 16) ]

let ablation_capacity machine = run_cells (ablation_capacity_cells machine)

(* ------------------------------------------------------------------ *)
(* Family registry                                                     *)
(* ------------------------------------------------------------------ *)

let families =
  [
    ("figure2", fun ~scale machine -> figure2_cells ~scale machine);
    ("figure3", fun ~scale machine -> figure3_cells ~scale machine);
    ("reduction", fun ~scale machine -> ablation_reduction_cells ~scale machine);
    ( "false-sharing",
      fun ~scale machine -> ablation_false_sharing_cells ~scale machine );
    ("stale", fun ~scale machine -> ablation_stale_cells ~scale machine);
    ("block-reuse", fun ~scale machine -> ablation_block_reuse_cells ~scale machine);
    ("schedule", fun ~scale machine -> ablation_schedule_cells ~scale machine);
    ("topology", fun ~scale machine -> ablation_topology_cells ~scale machine);
    ("scaling", fun ~scale machine -> ablation_scaling_cells ~scale machine);
    ("dir-vs-snoop", fun ~scale machine -> dir_vs_snoop_cells ~scale machine);
    ( "cost-sensitivity",
      fun ~scale machine -> ablation_cost_sensitivity_cells ~scale machine );
    ("detection", fun ~scale machine -> ablation_detection_cells ~scale machine);
    ("update", fun ~scale machine -> ablation_update_cells ~scale machine);
    ("barrier", fun ~scale machine -> ablation_barrier_cells ~scale machine);
    ("capacity", fun ~scale machine -> ablation_capacity_cells ~scale machine);
  ]
