(* Deterministic digests of a finished simulation, for before/after
   equivalence checks.  The hash is FNV-1a over explicitly serialized
   bytes — independent of Hashtbl.hash and of hash-table iteration order
   (counters/gauges/samples are digested in sorted-name order, memory in
   address order, traces in emission order), so two builds of the
   simulator agree on the digest iff they agree on the observable run. *)

module Machine = Lcm_tempest.Machine
module Stats = Lcm_util.Stats

type t = {
  cycles : int;  (** final [Machine.max_clock] *)
  mem : int64;  (** digest of every allocated word, by address *)
  counters : int64;  (** digest of all counters, gauges and samples *)
  trace : int64;  (** digest of the retained trace event sequence *)
  trace_events : int;  (** number of retained trace events *)
}

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let mix_int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := mix_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !h

let mix_int h i = mix_int64 h (Int64.of_int i)

let mix_float h f = mix_int64 h (Int64.bits_of_float f)

let mix_string h s =
  let h = ref (mix_int h (String.length s)) in
  String.iter (fun c -> h := mix_byte !h (Char.code c)) s;
  !h

let mem_digest proto =
  let mach = Lcm_core.Proto.machine proto in
  let g = Machine.gmem mach in
  let n = Lcm_mem.Gmem.allocated_words g in
  let h = ref fnv_offset in
  for a = 0 to n - 1 do
    h := mix_int !h (Lcm_core.Proto.peek proto a)
  done;
  !h

let counters_digest stats =
  let h = ref fnv_offset in
  List.iter
    (fun (name, v) ->
      h := mix_int (mix_string !h name) v)
    (Stats.counters stats);
  List.iter
    (fun (name, v) ->
      h := mix_int (mix_string !h name) v)
    (Stats.gauges stats);
  List.iter
    (fun (name, (sm : Stats.summary)) ->
      h :=
        mix_float
          (mix_float
             (mix_float (mix_int (mix_string !h name) sm.Stats.count) sm.Stats.mean)
             sm.Stats.min)
          sm.Stats.max)
    (Stats.samples stats);
  !h

let trace_digest mach =
  let h = ref fnv_offset in
  let n = ref 0 in
  List.iter
    (fun (time, ev) ->
      incr n;
      h := mix_string (mix_int !h time) (Lcm_sim.Trace.render ev))
    (Machine.trace_events mach);
  (!h, !n)

let of_proto proto =
  let mach = Lcm_core.Proto.machine proto in
  let trace, trace_events = trace_digest mach in
  {
    cycles = Machine.max_clock mach;
    mem = mem_digest proto;
    counters = counters_digest (Machine.stats mach);
    trace;
    trace_events;
  }

let of_runtime rt = of_proto (Lcm_cstar.Runtime.proto rt)

let to_string f =
  Printf.sprintf "cycles=%d mem=%Lx counters=%Lx trace=%Lx/%d" f.cycles f.mem
    f.counters f.trace f.trace_events

let equal a b =
  a.cycles = b.cycles && a.mem = b.mem && a.counters = b.counters
  && a.trace = b.trace && a.trace_events = b.trace_events
