module Trace = Lcm_sim.Trace

(* ------------------------------------------------------------------ *)
(* JSON writing                                                        *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One Chrome trace_event object.  [ph] is the phase letter: "X" complete
   (needs [dur]), "i" instant (needs scope [s]), "C" counter. *)
let event_obj ~name ~ph ~ts ~tid ?dur ?scope ~args () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%d"
       (escape_string name) ph tid ts);
  (match dur with
  | Some d -> Buffer.add_string buf (Printf.sprintf ",\"dur\":%d" d)
  | None -> ());
  (match scope with
  | Some s -> Buffer.add_string buf (Printf.sprintf ",\"s\":\"%s\"" s)
  | None -> ());
  (match args with
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (escape_string k) v))
      args;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Buffer.contents buf

let instant ~name ~ts ~tid ~args =
  event_obj ~name ~ph:"i" ~ts ~tid ~scope:"t" ~args ()

let render_event (ts, ev) =
  match ev with
  | Trace.Msg_send { tag; src; dst; words } ->
    instant ~name:("send " ^ tag) ~ts ~tid:src
      ~args:[ ("dst", dst); ("words", words) ]
  | Trace.Msg_recv { tag; src; dst; words } ->
    instant ~name:("recv " ^ tag) ~ts ~tid:dst
      ~args:[ ("src", src); ("words", words) ]
  | Trace.Msg_drop { tag; src; dst; words } ->
    instant ~name:("drop " ^ tag) ~ts ~tid:src
      ~args:[ ("dst", dst); ("words", words) ]
  | Trace.Msg_retx { tag; src; dst; words; attempt } ->
    instant ~name:("retx " ^ tag) ~ts ~tid:src
      ~args:[ ("dst", dst); ("words", words); ("attempt", attempt) ]
  | Trace.Fault { kind; node; addr; block } ->
    let name =
      match kind with
      | Trace.Read -> "read fault"
      | Trace.Write -> "write fault"
    in
    instant ~name ~ts ~tid:node ~args:[ ("addr", addr); ("block", block) ]
  | Trace.Directive { node; name } ->
    instant ~name:("directive " ^ name) ~ts ~tid:node ~args:[]
  | Trace.Barrier_enter { node } ->
    instant ~name:"barrier enter" ~ts ~tid:node ~args:[]
  | Trace.Barrier_release { nnodes } ->
    instant ~name:"barrier release" ~ts ~tid:0 ~args:[ ("nnodes", nnodes) ]
  | Trace.Epoch_advance { epoch } ->
    event_obj ~name:"epoch" ~ph:"C" ~ts ~tid:0 ~args:[ ("epoch", epoch) ] ()
  | Trace.Handler { node; finish } ->
    event_obj ~name:"handler" ~ph:"X" ~ts ~tid:node ~dur:(max 0 (finish - ts))
      ~args:[] ()
  | Trace.Note s -> instant ~name:s ~ts ~tid:0 ~args:[]

let to_chrome_json events =
  (* Node clocks run ahead of the engine, so ring order is not globally
     time-ordered; viewers want monotone ts.  Stable sort keeps the
     emission order of equal-time events. *)
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) events in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (render_event ev))
    sorted;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf

let export_file ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json events))

(* ------------------------------------------------------------------ *)
(* JSON reading — a minimal recursive-descent parser, enough to         *)
(* validate what we emit (the container has no JSON library).           *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let unescape c =
      match c with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'u' ->
        if !pos + 4 > n then fail "truncated \\u escape";
        let hex = String.sub s !pos 4 in
        pos := !pos + 4;
        let code =
          match int_of_string_opt ("0x" ^ hex) with
          | Some code -> code
          | None -> fail "bad \\u escape"
        in
        (* ASCII range only; we never emit beyond it *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else Buffer.add_char buf '?'
      | _ -> fail "unknown escape"
    in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          unescape c);
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Bad msg -> Error msg

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate_chrome text =
  match parse text with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok doc -> (
    match member "traceEvents" doc with
    | None -> Error "missing \"traceEvents\" key"
    | Some (Arr []) -> Error "empty traceEvents array"
    | Some (Arr events) ->
      let bad = ref None in
      let last_ts = ref min_int in
      List.iteri
        (fun i ev ->
          if !bad = None then
            match (member "name" ev, member "ph" ev, member "ts" ev) with
            | Some (Str _), Some (Str _), Some (Num ts) ->
              if ts < float_of_int !last_ts then
                bad :=
                  Some (Printf.sprintf "event %d: timestamps not monotone" i)
              else last_ts := int_of_float ts
            | _ ->
              bad :=
                Some (Printf.sprintf "event %d: missing name/ph/ts field" i))
        events;
      (match !bad with
      | Some e -> Error e
      | None -> Ok (List.length events))
    | Some _ -> Error "\"traceEvents\" is not an array")

let validate_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> validate_chrome text
