module Fleet = Lcm_fleet.Fleet

let run ?jobs ?budget ?progress (cells : Experiments.cells) =
  Fleet.Pool.run ?jobs ?budget ?progress (Array.of_list cells)

let rows results =
  Array.to_list results
  |> List.filter_map (fun (r : _ Fleet.cell_result) ->
         match r.Fleet.outcome with Fleet.Done row -> Some row | _ -> None)

let failures results =
  Array.to_list results
  |> List.filter (fun (r : _ Fleet.cell_result) ->
         match r.Fleet.outcome with Fleet.Done _ -> false | _ -> true)

let rows_exn results =
  (match failures results with
  | [] -> ()
  | f :: _ ->
    failwith
      (Printf.sprintf "sweep: cell %d (%s) did not complete: %s" f.Fleet.index
         f.Fleet.label
         (Fleet.outcome_string f.Fleet.outcome)));
  rows results

(* ------------------------------------------------------------------ *)
(* Machine-readable sweep summaries                                    *)
(* ------------------------------------------------------------------ *)

let outcome_tag (r : _ Fleet.cell_result) =
  match r.Fleet.outcome with
  | Fleet.Done _ -> "done"
  | Fleet.Failed _ -> "failed"
  | Fleet.Timed_out _ -> "timed-out"

let error_text (r : _ Fleet.cell_result) =
  match r.Fleet.outcome with
  | Fleet.Done _ -> None
  | outcome -> Some (Fleet.outcome_string outcome)

let count tag results =
  Array.to_list results
  |> List.filter (fun r -> outcome_tag r = tag)
  |> List.length

let summary_json ?(suite = "custom") ?(scale = "custom") ?(jobs = 1) results =
  let open Report.Json in
  let cell (r : Experiments.row Fleet.cell_result) =
    let base =
      [
        ("index", Int r.Fleet.index);
        ("label", Str r.Fleet.label);
        ("outcome", Str (outcome_tag r));
        ("host_s", Float r.Fleet.host_s);
        ("events", Int r.Fleet.events);
      ]
    in
    let extra =
      match r.Fleet.outcome with
      | Fleet.Done row ->
        [
          ("cycles", Int row.Experiments.result.Lcm_apps.Bench_result.cycles);
          ( "checksum",
            Float row.Experiments.result.Lcm_apps.Bench_result.checksum );
        ]
      | _ -> [ ("error", Str (Option.value (error_text r) ~default:"")) ]
    in
    Obj (base @ extra)
  in
  let total_host_s =
    Array.fold_left (fun acc r -> acc +. r.Fleet.host_s) 0.0 results
  in
  to_string
    (Obj
       [
         ("schema", Str "lcm-sweep/1");
         ("suite", Str suite);
         ("scale", Str scale);
         ("jobs", Int jobs);
         ("cells", Arr (Array.to_list results |> List.map cell));
         ("done", Int (count "done" results));
         ("failed", Int (count "failed" results));
         ("timed_out", Int (count "timed-out" results));
         ("total_host_s", Float total_host_s);
       ])
  ^ "\n"

let summary_csv results =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Report.csv_line
       [ "index"; "label"; "outcome"; "host_s"; "events"; "cycles"; "error" ]);
  Array.iter
    (fun (r : Experiments.row Fleet.cell_result) ->
      let cycles =
        match r.Fleet.outcome with
        | Fleet.Done row ->
          string_of_int row.Experiments.result.Lcm_apps.Bench_result.cycles
        | _ -> ""
      in
      Buffer.add_string buf
        (Report.csv_line
           [
             string_of_int r.Fleet.index;
             r.Fleet.label;
             outcome_tag r;
             Printf.sprintf "%.6f" r.Fleet.host_s;
             string_of_int r.Fleet.events;
             cycles;
             Option.value (error_text r) ~default:"";
           ]))
    results;
  Buffer.contents buf
