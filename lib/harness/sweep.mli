(** Domain-parallel experiment sweeps.

    Runs {!Experiments.cells} through {!Lcm_fleet.Fleet.Pool} and turns
    the outcome array back into report-layer rows plus machine-readable
    summaries.  Results are keyed by cell index, so a sweep's rows are
    bit-identical to {!Experiments.run_cells} at any job count (enforced
    by the parallel-equivalence test suite). *)

module Fleet = Lcm_fleet.Fleet

val run :
  ?jobs:int ->
  ?budget:Fleet.Budget.t ->
  ?progress:Fleet.Progress.t ->
  Experiments.cells ->
  Experiments.row Fleet.cell_result array
(** Execute a cell list on the pool ([jobs] defaults to 1 =
    deterministic-sequential; [0] = auto).  Crashing or over-budget cells
    become [Failed]/[Timed_out] results; the sweep always completes. *)

val rows : Experiments.row Fleet.cell_result array -> Experiments.row list
(** The [Done] rows in cell-index order — what the report layer consumes.
    Failed and timed-out cells are silently dropped; check {!failures}. *)

val rows_exn : Experiments.row Fleet.cell_result array -> Experiments.row list
(** Like {!rows} but raises [Failure] describing the first non-[Done]
    cell — for drivers (bench harness) that must fail hard. *)

val failures :
  Experiments.row Fleet.cell_result array ->
  Experiments.row Fleet.cell_result list
(** Cells that did not complete, in index order. *)

val summary_json :
  ?suite:string -> ?scale:string -> ?jobs:int ->
  Experiments.row Fleet.cell_result array -> string
(** ["lcm-sweep/1"] JSON document: per-cell label, outcome, host seconds,
    simulated events, cycles/checksum (done cells) or error text, plus
    done/failed/timed-out tallies.  Host timings here are {e host-side
    observability}, not simulated counters (see COUNTERS.md). *)

val summary_csv : Experiments.row Fleet.cell_result array -> string
(** The same summary as CSV (header included), one line per cell. *)
