module Runtime = Lcm_cstar.Runtime
module Tablefmt = Lcm_util.Tablefmt

type row = {
  label : string;
  cycles : int;
  deltas : (string * int) list; (* counter increments during the phase *)
}

let counter row name = Option.value (List.assoc_opt name row.deltas) ~default:0

let of_snapshot (s : Runtime.phase_snapshot) =
  let before name =
    Option.value (List.assoc_opt name s.Runtime.before) ~default:0
  in
  let deltas =
    List.filter_map
      (fun (name, v) ->
        let d = v - before name in
        if d <> 0 then Some (name, d) else None)
      s.Runtime.after
  in
  {
    label = s.Runtime.label;
    cycles = s.Runtime.finished - s.Runtime.started;
    deltas;
  }

let of_log log = List.map of_snapshot log

let render rows =
  let cell row name = string_of_int (counter row name) in
  Tablefmt.render
    ~header:
      [ "phase"; "cycles"; "misses"; "remote"; "msgs"; "flushed"; "barrier wait" ]
    (List.map
       (fun r ->
         [
           r.label;
           string_of_int r.cycles;
           string_of_int (counter r "fault.read" + counter r "fault.write");
           cell r "proto.fetch_remote";
           cell r "net.msgs";
           cell r "lcm.flush_blocks";
           cell r "lcm.barrier_wait_cycles";
         ])
       rows)
