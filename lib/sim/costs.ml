type t = {
  cpu_op : int;
  compute_unit : int;
  fault_trap : int;
  handler_occupancy : int;
  msg_fixed : int;
  msg_per_hop : int;
  msg_per_word : int;
  block_install : int;
  hw_miss : int;
  local_copy : int;
  barrier_base : int;
  barrier_per_node : int;
  sched_dequeue : int;
  invocation_overhead : int;
}

let default =
  {
    cpu_op = 1;
    compute_unit = 1;
    fault_trap = 50;
    handler_occupancy = 100;
    msg_fixed = 100;
    msg_per_hop = 8;
    msg_per_word = 4;
    block_install = 20;
    hw_miss = 6;
    local_copy = 50;
    barrier_base = 200;
    barrier_per_node = 10;
    sched_dequeue = 150;
    invocation_overhead = 20;
  }

let free =
  {
    cpu_op = 0;
    compute_unit = 0;
    fault_trap = 0;
    handler_occupancy = 0;
    msg_fixed = 0;
    msg_per_hop = 0;
    msg_per_word = 0;
    block_install = 0;
    hw_miss = 0;
    local_copy = 0;
    barrier_base = 0;
    barrier_per_node = 0;
    sched_dequeue = 0;
    invocation_overhead = 0;
  }

let scale c k =
  let s v = int_of_float (ceil (float_of_int v *. k)) in
  {
    c with
    fault_trap = s c.fault_trap;
    handler_occupancy = s c.handler_occupancy;
    msg_fixed = s c.msg_fixed;
    msg_per_hop = s c.msg_per_hop;
    msg_per_word = s c.msg_per_word;
    block_install = s c.block_install;
    hw_miss = c.hw_miss;
    local_copy = s c.local_copy;
    barrier_base = s c.barrier_base;
    barrier_per_node = s c.barrier_per_node;
    sched_dequeue = s c.sched_dequeue;
  }
