type t = {
  queue : (unit -> unit) Lcm_util.Heap.t;
  mutable now : int;
  mutable processed : int;
}

let create () = { queue = Lcm_util.Heap.create (); now = 0; processed = 0 }

(* Process-wide event tally across every engine ever created: benchmark
   harnesses that build machines internally (e.g. the stress batch) can
   still report simulated-events/sec by sampling this before and after. *)
let total = ref 0

let total_events () = !total

let now e = e.now

let schedule e ~at f =
  if at < e.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is before now=%d" at e.now);
  Lcm_util.Heap.add e.queue ~key:at f

let after e ~delay f =
  let delay = max 0 delay in
  schedule e ~at:(e.now + delay) f

let step e =
  if Lcm_util.Heap.is_empty e.queue then false
  else begin
    let t = Lcm_util.Heap.top_key e.queue in
    let f = Lcm_util.Heap.pop_exn e.queue in
    e.now <- t;
    e.processed <- e.processed + 1;
    incr total;
    f ();
    true
  end

let run ?limit e =
  let budget = match limit with None -> max_int | Some n -> n in
  let rec loop remaining =
    if remaining = 0 then begin
      (* An exhausted budget over an already-empty queue is a completed
         run, not a failure — only pending work makes the limit an error. *)
      if Lcm_util.Heap.length e.queue > 0 then
        failwith
          (Printf.sprintf
             "Engine.run: event limit exhausted at t=%d (%d pending)" e.now
             (Lcm_util.Heap.length e.queue))
    end
    else if step e then loop (remaining - 1)
  in
  loop budget

let pending e = Lcm_util.Heap.length e.queue

let events_processed e = e.processed
