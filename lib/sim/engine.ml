type t = {
  queue : (unit -> unit) Lcm_util.Heap.t;
  mutable now : int;
  mutable processed : int;
}

let create () = { queue = Lcm_util.Heap.create (); now = 0; processed = 0 }

let now e = e.now

let schedule e ~at f =
  if at < e.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is before now=%d" at e.now);
  Lcm_util.Heap.add e.queue ~key:at f

let after e ~delay f =
  let delay = max 0 delay in
  schedule e ~at:(e.now + delay) f

let step e =
  match Lcm_util.Heap.pop e.queue with
  | None -> false
  | Some (t, f) ->
    e.now <- t;
    e.processed <- e.processed + 1;
    f ();
    true

let run ?limit e =
  let budget = match limit with None -> max_int | Some n -> n in
  let rec loop remaining =
    if remaining = 0 then begin
      (* An exhausted budget over an already-empty queue is a completed
         run, not a failure — only pending work makes the limit an error. *)
      if Lcm_util.Heap.length e.queue > 0 then
        failwith
          (Printf.sprintf
             "Engine.run: event limit exhausted at t=%d (%d pending)" e.now
             (Lcm_util.Heap.length e.queue))
    end
    else if step e then loop (remaining - 1)
  in
  loop budget

let pending e = Lcm_util.Heap.length e.queue

let events_processed e = e.processed
