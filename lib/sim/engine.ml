type budget = {
  mutable events_left : int;  (* events remaining before Budget_exhausted *)
  max_events : int option;
  guard : (unit -> unit) option;  (* host-side check, called every [guard_stride] *)
  mutable until_guard : int;
}

exception Budget_exhausted of { events : int; now : int }
exception Wall_clock_exceeded of { limit_s : float }
exception Stalled of { clock : int; pending : int }

(* How many events run between calls to the wall-clock guard.  The guard
   costs a system call (gettimeofday), so it is amortized; the stride is
   small enough that a runaway cell is caught within milliseconds. *)
let guard_stride = 4096

(* The ambient budget is domain-local: a fleet worker installs one around a
   cell, and every engine the cell creates — benchmarks and the stress
   harness build machines internally — charges against the same budget.
   Engines snapshot the ambient budget at creation, so the per-event check
   is a field read, not a DLS lookup. *)
let ambient_budget : budget option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_budget ?max_events ?guard f =
  (match max_events with
  | Some n when n < 0 -> invalid_arg "Engine.with_budget: max_events < 0"
  | Some _ | None -> ());
  let cell = Domain.DLS.get ambient_budget in
  let saved = !cell in
  let b =
    {
      events_left = (match max_events with Some n -> n | None -> max_int);
      max_events;
      guard;
      until_guard = guard_stride;
    }
  in
  cell := Some b;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* Per-domain event tallies.  Each domain owns one Atomic cell (no
   cross-domain contention on the hot path); [total_events] sums every
   domain's cell, so on a single domain it behaves exactly like the old
   process-wide counter.  Cells are registered once per domain and never
   removed — a few words per domain ever spawned. *)
let totals_mu = Mutex.create ()
let totals : int Atomic.t list ref = ref []

let domain_total : int Atomic.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = Atomic.make 0 in
      Mutex.protect totals_mu (fun () -> totals := c :: !totals);
      c)

let total_events () =
  let cells = Mutex.protect totals_mu (fun () -> !totals) in
  List.fold_left (fun acc c -> acc + Atomic.get c) 0 cells

let domain_events () = Atomic.get (Domain.DLS.get domain_total)

(* Typed event representation.  The queue used to hold bare closures —
   one fresh closure per scheduled event, which made the event loop
   itself the simulator's biggest minor-heap customer.  An event is now
   a pooled mutable record dispatched on an int opcode:

     op_thunk  cold fallback: run a caller-supplied closure.  Anything
               that schedules a closure still works, it just pays the
               closure allocation it always paid (plus nothing: the
               record comes from the free list).
     op_call   hot path: apply a *preallocated* handler to a payload and
               two int arguments carried in unboxed slots.  The handler
               and payload are stored as [Obj.t]: [schedule_call] pairs
               them under one type variable at the call site, so the
               cast back in [run_event] recombines exactly the pair that
               was type-checked together — the classic existential
               encoding, never exposed to callers.
     op_free   poison state between release and re-acquire; executing a
               free event is a use-after-release bug and fails loudly.

   Records cycle through a per-engine free list (Lcm_util.Pool), so the
   steady state allocates nothing per event. *)

type ev = {
  mutable op : int;
  mutable fn : unit -> unit;  (* op_thunk *)
  mutable hnd : Obj.t;  (* op_call handler: 'a -> int -> int -> unit *)
  mutable pay : Obj.t;  (* op_call payload: the handler's 'a *)
  mutable i1 : int;
  mutable i2 : int;
  mutable own : int;  (* ownership hint from the scheduler; -1 = unknown *)
}

type event = ev

let op_free = 0
let op_thunk = 1
let op_call = 2
let unit_obj = Obj.repr ()
let dead_fn () = failwith "Engine: event used after release"

let make_ev () =
  {
    op = op_free;
    fn = dead_fn;
    hnd = unit_obj;
    pay = unit_obj;
    i1 = 0;
    i2 = 0;
    own = -1;
  }

(* Shared inert sentinel: fills dead array slots in PDES window batches. *)
let null_event = make_ev ()

let poison_ev ev =
  ev.op <- op_free;
  ev.fn <- dead_fn;
  ev.hnd <- unit_obj;
  ev.pay <- unit_obj

type t = {
  queue : ev Lcm_util.Heap.t;
  pool : ev Lcm_util.Pool.t;
  mutable now : int;
  mutable processed : int;
  tally : int Atomic.t;  (* this domain's event cell, snapshotted at create *)
  budget : budget option;  (* ambient cell budget at creation time, if any *)
  mutable router : (owner:int option -> at:int -> ev -> unit) option;
      (* sharded mode: insertions divert to the PDES coordinator's
         per-shard queues instead of [queue]; [owner] is the simulated
         node the event belongs to when the caller knows it (message
         deliveries), None for ambient attribution *)
  mutable driver : (limit:int option -> unit) option;
      (* sharded mode: [run] hands the whole drain loop to the
         coordinator's windowed driver *)
  mutable aux_pending : (unit -> int) option;
      (* sharded mode: events parked outside [queue] (shard heaps and
         in-flight window batches), so [pending] and the Stalled payload
         stay truthful *)
  mutable stall_limit : int option;
      (* quiescence watchdog: raise Stalled when events have *executed*
         more than this many cycles past the last notify_progress —
         catches livelocks where events keep firing (e.g. retransmission
         timers) but nothing semantically advances.  Judged on [now], not
         on the next pending timestamp, and only once [stall_min_events]
         events have run without progress: a sparse schedule (one long
         compute phase followed by a burst of sends) is not a stall. *)
  mutable last_progress : int;
  mutable quiet_events : int;  (* events executed since last_progress *)
  mutable chooser : ((int * int) array -> int) option;
      (* model-checker hook: when several events tie at the minimal
         timestamp, the hook picks which one commits next.  Candidates
         are presented as [(stamp, owner)] pairs in FIFO (stamp) order;
         the hook returns an index.  It is consulted on *every* commit —
         including sole candidates — so a controller can observe the
         committed order, not just the branch points.  Mutually
         exclusive with the PDES sharding hooks below. *)
}

(* Cycle distance alone cannot tell a livelock from a legitimate silent
   jump — a node computing locally for longer than the stall limit, then
   injecting its next messages.  A livelock also keeps *executing* events
   (timers re-arming), so the watchdog additionally requires this many
   events since the last progress mark.  Far below any real livelock's
   event count, far above a phase boundary's burst of non-delivery events. *)
let stall_min_events = 64

let create ?(hint = 1024) () =
  {
    queue = Lcm_util.Heap.create ~hint ();
    pool = Lcm_util.Pool.create ~poison:poison_ev ~make:make_ev ();
    now = 0;
    processed = 0;
    tally = Domain.DLS.get domain_total;
    budget = !(Domain.DLS.get ambient_budget);
    router = None;
    driver = None;
    aux_pending = None;
    stall_limit = None;
    last_progress = 0;
    quiet_events = 0;
    chooser = None;
  }

let now e = e.now

let check_at e at =
  if at < e.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is before now=%d" at e.now)

let enqueue e ~owner ~at ev =
  ev.own <- (match owner with Some o -> o | None -> -1);
  match e.router with
  | None -> Lcm_util.Heap.add e.queue ~key:at ev
  | Some route -> route ~owner ~at ev

let schedule e ~at f =
  check_at e at;
  let ev = Lcm_util.Pool.acquire e.pool in
  ev.op <- op_thunk;
  ev.fn <- f;
  enqueue e ~owner:None ~at ev

let schedule_owned e ~owner ~at f =
  check_at e at;
  let ev = Lcm_util.Pool.acquire e.pool in
  ev.op <- op_thunk;
  ev.fn <- f;
  enqueue e ~owner:(Some owner) ~at ev

let schedule_call (type a) e ?owner ~at (h : a -> int -> int -> unit) (p : a)
    i1 i2 =
  check_at e at;
  let ev = Lcm_util.Pool.acquire e.pool in
  ev.op <- op_call;
  ev.hnd <- Obj.repr h;
  ev.pay <- Obj.repr p;
  ev.i1 <- i1;
  ev.i2 <- i2;
  enqueue e ~owner ~at ev

(* Release before run: the record is back on the free list while the
   body executes, so a body that schedules new events can recycle it
   immediately, and a body that raises has still consumed its event —
   exactly the sequential-engine contract, with no Fun.protect closure
   on the hot path. *)
let run_event e ev =
  let op = ev.op in
  if op = op_thunk then begin
    let f = ev.fn in
    poison_ev ev;
    Lcm_util.Pool.release e.pool ev;
    f ()
  end
  else if op = op_call then begin
    let h : Obj.t -> int -> int -> unit = Obj.obj ev.hnd in
    let p = ev.pay and a = ev.i1 and b = ev.i2 in
    poison_ev ev;
    Lcm_util.Pool.release e.pool ev;
    h p a b
  end
  else failwith "Engine: released event reached execution (pool misuse)"

let after e ~delay f =
  let delay = max 0 delay in
  schedule e ~at:(e.now + delay) f

let set_router e r =
  if r <> None && e.chooser <> None then
    invalid_arg "Engine.set_router: engine has a choice hook installed";
  e.router <- r

let set_driver e d =
  if d <> None && e.chooser <> None then
    invalid_arg "Engine.set_driver: engine has a choice hook installed";
  e.driver <- d

let set_aux_pending e p = e.aux_pending <- p

let set_choice_hook e hook =
  (match hook with
  | Some _ when e.driver <> None || e.router <> None ->
    invalid_arg
      "Engine.set_choice_hook: sharded engine (PDES) — choice hooks \
       require the sequential drain loop"
  | Some _ | None -> ());
  e.chooser <- hook

(* Budget enforcement happens before the event is popped, so a raise leaves
   the engine consistent (clock unmoved, event still queued) and fires at a
   deterministic point: the same simulated event count and clock regardless
   of how many sibling cells run on other domains. *)
let check_budget e =
  match e.budget with
  | None -> ()
  | Some b ->
    if b.events_left <= 0 then
      raise
        (Budget_exhausted
           {
             events = (match b.max_events with Some n -> n | None -> max_int);
             now = e.now;
           });
    b.events_left <- b.events_left - 1;
    (match b.guard with
    | None -> ()
    | Some g ->
      b.until_guard <- b.until_guard - 1;
      if b.until_guard <= 0 then begin
        b.until_guard <- guard_stride;
        g ()
      end)

let set_stall_limit e limit =
  (match limit with
  | Some n when n <= 0 -> invalid_arg "Engine.set_stall_limit: limit must be positive"
  | Some _ | None -> ());
  e.stall_limit <- limit;
  e.last_progress <- e.now;
  e.quiet_events <- 0

let notify_progress e =
  e.last_progress <- e.now;
  e.quiet_events <- 0

let pending e =
  Lcm_util.Heap.length e.queue
  + (match e.aux_pending with None -> 0 | Some f -> f ())

(* Pre-event checks, run while the event is still queued so a raise leaves
   the engine consistent (clock unmoved, event recoverable).  The watchdog
   fires *before* the budget is charged: a Stalled raise reports an event
   that never executed, so it must not consume a budget event or tick the
   wall-clock guard — the stall trips at the same remaining-budget count
   whether or not a budget is armed (satellite regression: test_sim). *)
let pre_event_checks e =
  (* The watchdog compares the *executed* clock against the last progress
     mark and requires a run of [stall_min_events] progress-free events:
     only sustained event activity with nothing semantically advancing —
     e.g. retransmission timers re-arming forever — trips it. *)
  (match e.stall_limit with
  | Some limit
    when e.now - e.last_progress > limit
         && e.quiet_events >= stall_min_events ->
    raise (Stalled { clock = e.now; pending = pending e })
  | Some _ | None -> ());
  check_budget e

(* Commit one already-dequeued event: advance the clock, account it, run
   the body.  Shared verbatim between the sequential [step] and the PDES
   coordinator's window commit, so Budget_exhausted/Stalled fire at
   identical (event count, clock) points at any shard count. *)
let commit_event e ~at ev =
  e.now <- at;
  e.processed <- e.processed + 1;
  e.quiet_events <- e.quiet_events + 1;
  Atomic.incr e.tally;
  run_event e ev

(* One step under a choice hook: pop every event tied at the minimal
   timestamp, let the hook pick which commits, and re-insert the rest
   with their original stamps ([add_stamped]) so the FIFO default order
   is preserved for later steps.  Stamps are deterministic for a given
   schedule prefix, which is what makes a recorded choice string
   replayable.  This path allocates per step — it exists for the model
   checker, not for benchmarked runs. *)
let step_choice e choose =
  pre_event_checks e;
  let q = e.queue in
  let t0 = Lcm_util.Heap.top_key q in
  let ties = ref [] in
  while (not (Lcm_util.Heap.is_empty q)) && Lcm_util.Heap.top_key q = t0 do
    let seq = Lcm_util.Heap.top_seq q in
    let ev = Lcm_util.Heap.pop_exn q in
    ties := (seq, ev) :: !ties
  done;
  let ties = Array.of_list (List.rev !ties) in
  let cands = Array.map (fun (seq, ev) -> (seq, ev.own)) ties in
  let k = choose cands in
  let n = Array.length ties in
  if k < 0 || k >= n then
    invalid_arg
      (Printf.sprintf "Engine: choice hook returned %d with %d candidates" k n);
  Array.iteri
    (fun i (seq, ev) ->
      if i <> k then Lcm_util.Heap.add_stamped q ~key:t0 ~seq ev)
    ties;
  commit_event e ~at:t0 (snd ties.(k))

let step e =
  if e.driver <> None then
    invalid_arg "Engine.step: sharded engine — drive it with Engine.run";
  if Lcm_util.Heap.is_empty e.queue then false
  else begin
    (match e.chooser with
    | Some choose -> step_choice e choose
    | None ->
      pre_event_checks e;
      let t = Lcm_util.Heap.top_key e.queue in
      let ev = Lcm_util.Heap.pop_exn e.queue in
      commit_event e ~at:t ev);
    true
  end

let run ?limit e =
  (match limit with
  | Some n when n < 0 -> invalid_arg "Engine.run: limit < 0"
  | Some _ | None -> ());
  match e.driver with
  | Some drive -> drive ~limit
  | None ->
    let budget = match limit with None -> max_int | Some n -> n in
    let rec loop remaining =
      if remaining = 0 then begin
        (* An exhausted budget over an already-empty queue is a completed
           run, not a failure — only pending work makes the limit an error. *)
        if Lcm_util.Heap.length e.queue > 0 then
          failwith
            (Printf.sprintf
               "Engine.run: event limit exhausted at t=%d (%d pending)" e.now
               (Lcm_util.Heap.length e.queue))
      end
      else if step e then loop (remaining - 1)
    in
    loop budget

let events_processed e = e.processed
