(** Cycle-cost model of the simulated machine.

    All values are in CPU cycles of the simulated node processors.  The
    defaults are flavoured after Blizzard-E on a 33 MHz CM-5: a fine-grain
    access fault costs tens of cycles to detect and vector to a user-level
    handler, a remote block fetch costs several hundred cycles end to end,
    and a local hit costs one cycle.  Absolute values are not calibrated to
    the original hardware — only the relative magnitudes matter for
    reproducing the paper's comparisons (see DESIGN.md §1). *)

type t = {
  cpu_op : int;  (** cycles per simulated memory instruction that hits *)
  compute_unit : int;  (** cycles charged per unit of pure compute work *)
  fault_trap : int;  (** access-fault detection + dispatch to user handler *)
  handler_occupancy : int;  (** protocol-handler time per received message *)
  msg_fixed : int;  (** fixed per-message network interface overhead *)
  msg_per_hop : int;  (** switch latency per network hop *)
  msg_per_word : int;  (** serialisation cost per payload word *)
  block_install : int;  (** install/tag a block received from the network *)
  hw_miss : int;
      (** extra cycles when an access misses the (optional) hardware cache
          and falls through to node memory *)
  local_copy : int;  (** snapshot or restore a block-sized local copy *)
  barrier_base : int;  (** fixed barrier cost *)
  barrier_per_node : int;  (** barrier cost component linear in nodes *)
  sched_dequeue : int;  (** dynamic-scheduling shared-queue access *)
  invocation_overhead : int;  (** start-up cost per parallel invocation *)
}

val default : t

val free : t
(** All costs zero — useful in unit tests that check protocol state
    transitions without caring about timing. *)

val scale : t -> float -> t
(** [scale c k] multiplies every communication-related cost by [k] (cpu_op
    and compute_unit are left unchanged).  Used by sensitivity ablations. *)
