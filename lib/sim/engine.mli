(** Discrete-event simulation core.

    The engine owns the simulated clock and a queue of timestamped events.
    Every cross-node interaction in the simulator — message delivery,
    barrier release, scheduled callbacks — flows through this queue, which
    makes runs fully deterministic: events at equal times fire in the order
    they were scheduled. *)

type t

val create : unit -> t
(** A fresh engine with the clock at cycle 0 and no pending events. *)

val now : t -> int
(** Current simulated time, in cycles. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** [schedule e ~at f] runs [f] when the clock reaches [at].
    @raise Invalid_argument if [at] is in the past. *)

val after : t -> delay:int -> (unit -> unit) -> unit
(** [after e ~delay f] is [schedule e ~at:(now e + delay) f].
    A negative [delay] is treated as 0. *)

val step : t -> bool
(** Process the single earliest pending event, advancing the clock to its
    timestamp.  Returns [false] when no event is pending. *)

val run : ?limit:int -> t -> unit
(** [run e] processes events until the queue drains.  [limit] bounds the
    number of events processed (default: unlimited); exhausting it while
    events remain pending raises [Failure], which flags runaway
    simulations in tests.  A budget that runs out exactly as the queue
    empties (including [~limit:0] on an idle engine) returns normally. *)

val pending : t -> int
(** Number of events waiting in the queue. *)

val events_processed : t -> int
(** Total events processed since creation. *)

val total_events : unit -> int
(** Process-wide total of events processed across {e all} engines since
    program start.  Monotone; sample before/after a workload to attribute
    events to it even when the workload constructs machines internally. *)
