(** Discrete-event simulation core.

    The engine owns the simulated clock and a queue of timestamped events.
    Every cross-node interaction in the simulator — message delivery,
    barrier release, scheduled callbacks — flows through this queue, which
    makes runs fully deterministic: events at equal times fire in the order
    they were scheduled. *)

type t

exception Budget_exhausted of { events : int; now : int }
(** Raised by {!step} when the ambient cell budget's simulated-event cap is
    hit: [events] is the cap, [now] the clock of the engine being stepped.
    Deterministic — a given cell raises at the same event count and clock
    no matter what runs on other domains. *)

exception Wall_clock_exceeded of { limit_s : float }
(** Raised by the wall-clock guard a fleet installs via {!with_budget}
    (the engine itself never reads host time). *)

exception Stalled of { clock : int; pending : int }
(** Raised by {!step} when a quiescence watchdog is armed (see
    {!set_stall_limit}) and a sustained run of events has {e executed}
    more than the limit past the last {!notify_progress}: [clock] is the
    executed clock at the trip point, [pending] the number of still-queued
    events.  Turns a lost-message livelock — retransmission timers firing
    forever with no semantic progress — into a diagnosable, deterministic
    failure instead of an unbounded run. *)

val with_budget :
  ?max_events:int -> ?guard:(unit -> unit) -> (unit -> 'a) -> 'a
(** [with_budget ?max_events ?guard f] runs [f] with an ambient,
    domain-local budget charged by {e every} engine created inside [f] —
    workloads that build machines internally are still covered.
    [max_events] caps the total simulated events processed; exceeding it
    raises {!Budget_exhausted} before the offending event runs, leaving the
    engine consistent.  [guard] is called every few thousand events and may
    raise (e.g. {!Wall_clock_exceeded}) to abort on host-side criteria.
    Budgets nest; the previous ambient budget is restored on exit.  Engines
    created {e before} the call are not charged.
    @raise Invalid_argument if [max_events] is negative. *)

val create : ?hint:int -> unit -> t
(** A fresh engine with the clock at cycle 0 and no pending events.
    [hint] (default 1024) sizes the event queue's first backing
    allocation (see {!Lcm_util.Heap.create}).  If an ambient
    {!with_budget} scope is active on this domain, the engine charges
    that budget for every event it processes. *)

val now : t -> int
(** Current simulated time, in cycles. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** [schedule e ~at f] runs [f] when the clock reaches [at].  The event
    record itself is pooled; the closure [f] is the caller's own
    allocation — hot paths that want to avoid it use {!schedule_call}.
    @raise Invalid_argument if [at] is in the past. *)

val schedule_call :
  t -> ?owner:int -> at:int -> ('a -> int -> int -> unit) -> 'a -> int -> int
  -> unit
(** [schedule_call e ?owner ~at h p i1 i2] runs [h p i1 i2] when the
    clock reaches [at] — the allocation-free scheduling path.  [h] is
    meant to be a {e preallocated} handler (one closure per network /
    machine, not per event); [p] is its payload and [i1]/[i2] ride in
    unboxed int slots (an arrival time, a node id).  With a pooled
    event record carrying all four, nothing is allocated per call.
    [owner] is the shard-routing hint of {!schedule_owned}.  Ordering,
    budgets and watchdog semantics are identical to {!schedule}.
    @raise Invalid_argument if [at] is in the past. *)

val schedule_owned : t -> owner:int -> at:int -> (unit -> unit) -> unit
(** [schedule_owned e ~owner ~at f] is {!schedule} with an ownership hint:
    [owner] is the simulated node the event belongs to (a message's
    destination, a timer's node).  On a plain engine the hint is dropped;
    on a sharded engine (see {!Pdes}) it routes the event to the owner's
    shard queue — a send whose destination lives on another shard is a
    cross-shard mailbox deposit.  Ownership only affects shard
    accounting and drain parallelism, never execution order. *)

val after : t -> delay:int -> (unit -> unit) -> unit
(** [after e ~delay f] is [schedule e ~at:(now e + delay) f].
    A negative [delay] is treated as 0. *)

val set_stall_limit : t -> int option -> unit
(** Arm ([Some limit]) or disarm ([None]) the quiescence watchdog; arming
    also counts as progress.  While armed, {!step} raises {!Stalled} once
    events have {e executed} more than [limit] cycles past the last
    {!notify_progress} — and at least a few dozen of them have run since
    it — with another event still pending.  The check is on the executed
    clock, never on the next pending timestamp, and a lone silent jump
    does not satisfy the event-count arm, so a sparse schedule — one long
    compute phase followed by a burst of sends — is not mistaken for a
    stall.  The network's reliable path notifies on every application
    delivery and every ack, so the watchdog only fires when events keep
    firing without the simulation advancing (e.g. every copy of a message
    being dropped faster than it is retransmitted).
    @raise Invalid_argument if the limit is not positive. *)

val notify_progress : t -> unit
(** Record that the simulation made semantic progress now (see
    {!set_stall_limit}).  Cheap; safe to call with no watchdog armed. *)

val step : t -> bool
(** Process the single earliest pending event, advancing the clock to its
    timestamp.  Returns [false] when no event is pending.  A budget or
    watchdog raise happens {e before} the event is dequeued and charges
    nothing: the event is still queued, the clock unmoved, and — for
    {!Stalled} specifically — no budget event or wall-clock guard tick has
    been consumed for an event that never executed.
    @raise Invalid_argument on a sharded engine (one driven by {!Pdes});
    sharded engines are drained with {!run}. *)

val run : ?limit:int -> t -> unit
(** [run e] processes events until the queue drains.  [limit] bounds the
    number of events processed (default: unlimited); exhausting it while
    events remain pending raises [Failure], which flags runaway
    simulations in tests.  A budget that runs out exactly as the queue
    empties (including [~limit:0] on an idle engine) returns normally.
    On a sharded engine (see {!Pdes}) the drain is delegated to the
    conservative windowed driver, with identical semantics and identical
    event order.
    @raise Invalid_argument if [limit] is negative (matching
    {!with_budget}; a negative limit used to behave as unlimited). *)

(** {1 Choice-point hook (used by {!Lcm_check} — model checking)} *)

val set_choice_hook : t -> ((int * int) array -> int) option -> unit
(** [set_choice_hook e (Some pick)] makes {!step} consult [pick] for the
    commit order of events that tie at the minimal timestamp — the only
    nondeterminism a deterministic-seed simulation has left, and hence
    the complete interleaving space a model checker must enumerate.

    At each step, every event tied at the minimal key is dequeued and
    presented as an array of [(stamp, owner)] pairs in FIFO (stamp)
    order: [stamp] is the heap's tie-break sequence number — stable and
    deterministic for a given schedule prefix, so it can key sleep sets
    across replays — and [owner] is the scheduling ownership hint (a
    delivery's destination node, a timer's node; [-1] when the scheduler
    had none).  [pick] returns the index of the event to commit; the
    rest are re-inserted with their original stamps, so choosing index 0
    everywhere reproduces the default FIFO run exactly.  The hook is
    called on {e every} commit, including sole candidates, so a
    controller can track the committed owner sequence (sleep-set
    wake-ups), not just the branch points.

    The hook path allocates per step; install it for checking, never for
    benchmarked runs.  Mutually exclusive with PDES sharding.
    @raise Invalid_argument when installing on a sharded engine, or (from
    {!step}) if [pick] returns an out-of-range index. *)

(** {1 Sharding hooks (used by {!Pdes} — not a public scheduling API)}

    A PDES coordinator installs a {e router} (insertions divert to its
    per-shard queues), a {e driver} ({!run} delegates the drain loop), and
    an {e aux-pending} thermometer (events parked in shard queues and
    in-flight window batches still count in {!pending} and in the
    {!Stalled} payload).  {!pre_event_checks} and {!commit_event} are the
    two halves of {!step}: checks run while the event is still recoverable,
    commit advances the clock and runs the body — the coordinator calls
    them around its own dequeue so budgets, watchdogs and tallies behave
    identically at any shard count. *)

type event
(** A queued event: a pooled record the engine recycles on commit.
    Opaque outside the engine; {!Pdes} moves them between shard heaps
    and window batches without looking inside. *)

val null_event : event
(** An inert sentinel for dead array slots (PDES batch storage).  Never
    executed; executing it is a loud failure. *)

val set_router :
  t -> (owner:int option -> at:int -> event -> unit) option -> unit

val set_driver : t -> (limit:int option -> unit) option -> unit

val set_aux_pending : t -> (unit -> int) option -> unit

val pre_event_checks : t -> unit
(** Watchdog then budget, in that order; may raise {!Stalled} /
    {!Budget_exhausted} / a guard exception with the next event still
    queued and nothing charged for it. *)

val commit_event : t -> at:int -> event -> unit
(** Advance the clock to [at], account one processed event, release the
    event record back to the pool and run its body.  Release happens
    before the body runs, so a raising body has still consumed its
    event. *)

val pending : t -> int
(** Number of events waiting in the queue. *)

val events_processed : t -> int
(** Total events processed since creation. *)

val total_events : unit -> int
(** Process-wide total of events processed across {e all} engines since
    program start.  Monotone; sample before/after a workload to attribute
    events to it even when the workload constructs machines internally.
    Domain-safe: each domain tallies into its own cell ({!domain_events})
    and this sums them, so concurrent fleet workers never contend. *)

val domain_events : unit -> int
(** Events processed by engines created on {e this} domain.  Sample
    before/after a cell inside a fleet worker to attribute events to it
    without seeing sibling cells on other domains.  Equal to
    {!total_events} in a single-domain program. *)
