(** Bounded ring of typed simulation events.

    Every layer of the simulator (network, Tempest machine, protocol)
    emits structured events into the same ring when tracing is enabled:
    message sends/receipts with tag, size and channel; access faults;
    directive executions; barrier joins and releases; epoch advances;
    protocol-handler occupancy intervals.  The ring has fixed capacity and
    evicts the oldest events, so it is cheap enough to leave on for
    post-mortem debugging (a deadlocked simulation dumps the tail) and
    rich enough to export as a Chrome [trace_event] timeline
    (see {!Lcm_harness.Traceview}).  Disabled by default. *)

type fault_kind = Read | Write

type event =
  | Msg_send of { tag : string; src : int; dst : int; words : int }
      (** Message injected on channel [(src, dst)]. *)
  | Msg_recv of { tag : string; src : int; dst : int; words : int }
      (** Message delivered; recorded at its arrival time. *)
  | Msg_drop of { tag : string; src : int; dst : int; words : int }
      (** Message lost to fault injection (random drop or link-down window);
          recorded at the time the loss was decided. *)
  | Msg_retx of { tag : string; src : int; dst : int; words : int; attempt : int }
      (** Reliable-transport retransmission: attempt number [attempt] (2 =
          first retransmit) of an unacknowledged message. *)
  | Fault of { kind : fault_kind; node : int; addr : int; block : int }
      (** Access-control violation trapped on [node]. *)
  | Directive of { node : int; name : string }
      (** Memory-system directive executed ([mark_modification], ...). *)
  | Barrier_enter of { node : int }
      (** [node] joined the reconciliation barrier. *)
  | Barrier_release of { nnodes : int }
      (** The reconciliation barrier released all [nnodes] nodes. *)
  | Epoch_advance of { epoch : int }  (** The phase epoch advanced to [epoch]. *)
  | Handler of { node : int; finish : int }
      (** Protocol-handler occupancy on [node] from the record time to
          [finish]. *)
  | Note of string  (** Freeform annotation (see {!Lcm_tempest.Machine.tracef}). *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val emit : t -> time:int -> event -> unit
(** Append an event, evicting the oldest when full. *)

val record : t -> time:int -> string -> unit
(** [record t ~time s] is [emit t ~time (Note s)]. *)

val recorded : t -> int
(** Total events ever recorded (including evicted ones). *)

val events : t -> (int * event) list
(** The retained [(time, event)] pairs, oldest first. *)

val render : event -> string
(** One-line human rendering (used by {!dump}). *)

val dump : t -> string list
(** The retained events, oldest first, each as ["\[t=<time>\] <event>"]. *)

val clear : t -> unit
