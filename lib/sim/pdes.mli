(** Conservative parallel discrete-event coordination for one simulation.

    Shards an engine's event queue by owning node and drives the run in
    conservative time windows: each window's horizon is the earliest
    pending timestamp plus the {e lookahead} — the minimum cross-shard
    message latency, below which no not-yet-queued event can arrive from
    another shard.  Shards drain their below-horizon events concurrently
    on a shared domain pool (disjoint heaps); the window then {e commits}
    by a k-way merge in exact global [(timestamp, seq)] order, which
    reproduces — stamp for stamp — the pop order of the sequential
    engine's single FIFO heap.  [--jobs 1] and [--jobs N] are therefore
    bit-identical under the fingerprint oracle {e by construction}, the
    refinement discipline this parallel engine is built around; see
    DESIGN.md §8 for the protocol, the refinement argument, and what
    still confines event {e bodies} to the driving domain. *)

type t
(** A coordinator attached to one engine. *)

val attach :
  engine:Engine.t ->
  shards:int ->
  lookahead:int ->
  shard_of:(int -> int) ->
  unit ->
  t
(** [attach ~engine ~shards ~lookahead ~shard_of ()] puts [engine] into
    sharded mode: insertions route to [shards] per-shard queues
    ([shard_of node] maps an event's owning node to its shard; events
    with no owner attribute to the shard of the event being committed),
    and {!Engine.run} drains through the conservative windowed driver.
    [lookahead] is the horizon slack in cycles — sound when it is at most
    the minimum cross-shard message latency, but {e never} trusted for
    ordering: a violating deposit is counted, not reordered.  Attach
    before scheduling; events already in the engine's own queue are not
    migrated.  [Engine.step] refuses sharded engines ([run] only).
    @raise Invalid_argument if [shards] or [lookahead] is not positive. *)

val shards : t -> int
val lookahead : t -> int

(** {1 Ambient job count}

    Workloads build machines internally, so the CLI's [--jobs] cannot be
    threaded as an argument; instead it is carried as a domain-local
    ambient (the same pattern as {!Engine.with_budget}) that
    [Machine.create] reads. *)

val with_jobs : jobs:int -> (unit -> 'a) -> 'a
(** [with_jobs ~jobs f] runs [f] with the ambient job count set to
    [jobs]; [0] resolves to [Domain.recommended_domain_count ()].
    Machines created inside [f] shard their engines across
    [min jobs nodes] shards when the resolved count exceeds 1 — at
    [jobs = 1] the sequential path is untouched, byte for byte.  Nests;
    restored on exit.
    @raise Invalid_argument if [jobs] is negative. *)

val ambient_jobs : unit -> int
(** The ambient job count on this domain; [1] outside {!with_jobs}.
    Already resolved — never [0]. *)

val resolve_jobs : int -> int
(** [resolve_jobs 0] is [Domain.recommended_domain_count ()]; positive
    values pass through.
    @raise Invalid_argument on a negative count. *)

(** {1 Drain-pool control} *)

val reserve_drain_workers : int -> unit
(** Grow the process-wide drain pool to at least [n] worker domains even
    beyond the host's spare cores.  The pool is otherwise sized lazily to
    [recommended_domain_count - 1] (empty on a 1-core host: draining
    inline beats paying domain handoff with no parallelism to gain);
    tests use this to exercise the cross-domain drain protocol
    regardless of host shape.  Workers are joined at exit. *)

(** {1 Accounting}

    Window-shape counters are a property of the host-side execution
    strategy, not of the simulated machine, so they are deliberately kept
    {e out} of the run's {!Lcm_util.Stats} registry: the fingerprint
    suite pins counter digests bit-identical across shard counts.  See
    COUNTERS.md "pdes.*". *)

type counters = {
  mutable windows : int;
  mutable null_msgs : int;
  mutable cross_shard_msgs : int;
  mutable lookahead_violations : int;
  mutable horizon_stalls : int;
  mutable window_events_total : int;
  mutable max_window_events : int;
}

val counters : t -> counters
(** A snapshot of the coordinator's accounting (mutating it does not
    affect the coordinator). *)
