type fault_kind = Read | Write

type event =
  | Msg_send of { tag : string; src : int; dst : int; words : int }
  | Msg_recv of { tag : string; src : int; dst : int; words : int }
  | Msg_drop of { tag : string; src : int; dst : int; words : int }
  | Msg_retx of { tag : string; src : int; dst : int; words : int; attempt : int }
  | Fault of { kind : fault_kind; node : int; addr : int; block : int }
  | Directive of { node : int; name : string }
  | Barrier_enter of { node : int }
  | Barrier_release of { nnodes : int }
  | Epoch_advance of { epoch : int }
  | Handler of { node : int; finish : int }
  | Note of string

type t = {
  events : (int * event) array;
  capacity : int;
  mutable next : int;  (* total recorded; next slot = next mod capacity *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { events = Array.make capacity (0, Note ""); capacity; next = 0 }

let emit t ~time event =
  t.events.(t.next mod t.capacity) <- (time, event);
  t.next <- t.next + 1

let record t ~time s = emit t ~time (Note s)

let recorded t = t.next

let retained t f =
  let n = min t.next t.capacity in
  let first = t.next - n in
  List.init n (fun i -> f t.events.((first + i) mod t.capacity))

let events t = retained t Fun.id

let render = function
  | Msg_send { tag; src; dst; words } ->
    Printf.sprintf "msg %s %d->%d (%dw)" tag src dst words
  | Msg_recv { tag; src; dst; words } ->
    Printf.sprintf "recv %s %d->%d (%dw)" tag src dst words
  | Msg_drop { tag; src; dst; words } ->
    Printf.sprintf "drop %s %d->%d (%dw)" tag src dst words
  | Msg_retx { tag; src; dst; words; attempt } ->
    Printf.sprintf "retx#%d %s %d->%d (%dw)" attempt tag src dst words
  | Fault { kind; node; addr; block } ->
    Printf.sprintf "%s fault node %d addr %d (block %d)"
      (match kind with Read -> "read" | Write -> "write")
      node addr block
  | Directive { node; name } -> Printf.sprintf "directive %s node %d" name node
  | Barrier_enter { node } -> Printf.sprintf "barrier enter node %d" node
  | Barrier_release { nnodes } ->
    Printf.sprintf "barrier release (%d nodes)" nnodes
  | Epoch_advance { epoch } -> Printf.sprintf "epoch -> %d" epoch
  | Handler { node; finish } ->
    Printf.sprintf "handler node %d busy until %d" node finish
  | Note s -> s

let dump t =
  retained t (fun (time, event) ->
      Printf.sprintf "[t=%d] %s" time (render event))

let clear t = t.next <- 0
