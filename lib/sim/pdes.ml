(* Conservative parallel discrete-event coordination for one simulation.

   The sequential engine owns a single FIFO-stable heap; this module
   shards that queue by *owning node* across [shards] sub-queues and
   drives the run in conservative time windows:

     window:  horizon := (earliest pending timestamp) + lookahead
     drain:   every shard extracts its events below the horizon — disjoint
              heaps, so shards drain concurrently on the domain pool
     commit:  events execute in exact global (timestamp, seq) order — the
              k-way merge over shard queues reproduces, stamp for stamp,
              the pop order of the sequential engine's single heap

   The lookahead is the minimum cross-shard message latency (msg_fixed +
   min-hop cost + one payload word, computed by the network layer from
   the topology): below the horizon, no event that is not yet queued can
   be scheduled onto another shard by the conservative argument, so each
   window is a closed unit of work.  Where the argument is violated — a
   sender whose local clock lags the engine clamps an arrival under the
   horizon — the violation is *counted* ([lookahead_violations]), never
   trusted: commit order is decided by the merge alone.

   Refinement discipline (Schewe et al., "Concurrent Computing with
   Shared Replicated Memory"): the parallel engine is built as a provable
   refinement of the sequential one.  The machine model behind the events
   (stats registry, trace ring, master-copy table, node tables reached
   through lazy home materialisation) is shared mutable state, so event
   *bodies* commit on the driving domain in sequential order — that is
   what makes `--jobs 1` and `--jobs N` bit-identical under the
   fingerprint oracle — while shard queue maintenance (the heap drain)
   runs on worker domains.  Moving bodies onto the workers requires
   domain-confining that shared state; [lookahead_violations] = 0 over a
   workload is the certificate that its event traffic would tolerate it.
   See DESIGN.md §8. *)

module Heap = Lcm_util.Heap

(* ------------------------------------------------------------------ *)
(* Per-shard window batches                                            *)
(* ------------------------------------------------------------------ *)

(* A drained window slice, in (key, seq) pop order.  Parallel arrays like
   the heap itself; reused across windows (len/cursor reset, capacity
   kept). *)
type batch = {
  mutable bkeys : int array;
  mutable bseqs : int array;
  mutable bvals : Engine.event array;
  mutable blen : int;
  mutable bcursor : int;
}

let nop = Engine.null_event

let batch_create () =
  { bkeys = [||]; bseqs = [||]; bvals = [||]; blen = 0; bcursor = 0 }

let batch_push b ~key ~seq v =
  let cap = Array.length b.bkeys in
  if b.blen = cap then begin
    let new_cap = max 16 (2 * cap) in
    let grow_int a = Array.append a (Array.make (new_cap - cap) 0) in
    b.bkeys <- grow_int b.bkeys;
    b.bseqs <- grow_int b.bseqs;
    b.bvals <- Array.append b.bvals (Array.make (new_cap - cap) nop)
  end;
  b.bkeys.(b.blen) <- key;
  b.bseqs.(b.blen) <- seq;
  b.bvals.(b.blen) <- v;
  b.blen <- b.blen + 1

let batch_reset b =
  (* Drop committed event references so a long run does not retain a
     whole window of dead events; stale slots past [blen] are overwritten
     before they are ever read. *)
  for i = 0 to b.blen - 1 do
    b.bvals.(i) <- nop
  done;
  b.blen <- 0;
  b.bcursor <- 0

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

(* Deliberately *not* registered in the run's Stats registry: the
   fingerprint suite pins counter digests bit-identical across shard
   counts, and window shapes are a property of the host-side execution
   strategy, not of the simulated machine.  Reported separately (perf
   rig, tests) via [counters]. *)
type counters = {
  mutable windows : int;  (** conservative windows driven *)
  mutable null_msgs : int;  (** horizon announcements (shards x windows) *)
  mutable cross_shard_msgs : int;  (** mailbox deposits onto another shard *)
  mutable lookahead_violations : int;
      (** cross-shard deposits under the current horizon — events a
          distributed implementation would have to treat as causality
          errors; here they only feed the merge like everything else *)
  mutable horizon_stalls : int;
      (** windows whose drained events all shared one timestamp — no
          overlap was available to a parallel commit *)
  mutable window_events_total : int;  (** committed events, all windows *)
  mutable max_window_events : int;  (** largest single window *)
}

(* ------------------------------------------------------------------ *)
(* Coordinator state                                                   *)
(* ------------------------------------------------------------------ *)

type t = {
  engine : Engine.t;
  nshards : int;
  lookahead : int;
  shard_of : int -> int;
  heaps : Engine.event Heap.t array;
  batches : batch array;
  mutable next_seq : int;
  mutable current_shard : int;  (* shard of the committing event; -1 outside *)
  mutable horizon : int;
  c : counters;
}

let shards t = t.nshards
let lookahead t = t.lookahead

let counters t =
  (* snapshot copy: callers must not mutate coordinator accounting *)
  {
    windows = t.c.windows;
    null_msgs = t.c.null_msgs;
    cross_shard_msgs = t.c.cross_shard_msgs;
    lookahead_violations = t.c.lookahead_violations;
    horizon_stalls = t.c.horizon_stalls;
    window_events_total = t.c.window_events_total;
    max_window_events = t.c.max_window_events;
  }

(* ------------------------------------------------------------------ *)
(* Ambient job count (mirrors Engine.with_budget's DLS pattern)        *)
(* ------------------------------------------------------------------ *)

let ambient : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 1)

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Pdes.with_jobs: jobs < 0"
  else if jobs = 0 then Domain.recommended_domain_count ()
  else jobs

let with_jobs ~jobs f =
  let jobs = resolve_jobs jobs in
  let cell = Domain.DLS.get ambient in
  let saved = !cell in
  cell := jobs;
  Fun.protect ~finally:(fun () -> cell := saved) f

let ambient_jobs () = !(Domain.DLS.get ambient)

(* ------------------------------------------------------------------ *)
(* The shared drain pool                                               *)
(* ------------------------------------------------------------------ *)

(* One process-wide pool of worker domains for the parallel drain phase.
   Created lazily on the first multi-shard drive, grown on demand, never
   larger than the host has spare cores for (a 1-core container gets an
   empty pool and drains inline — spawning domains there is pure
   overhead).  A drive holds [pool_mu] across each drain phase, so
   concurrent sharded drives (e.g. fleet cells that each asked for PDES)
   serialize their drains but interleave their windows. *)

type job = {
  slots : int;
  run_slot : int -> unit;
  next_slot : int Atomic.t;
  finished : int Atomic.t;
  mutable failed : exn option;
}

type pool = {
  mu : Mutex.t;
  go : Condition.t;
  done_ : Condition.t;
  mutable workers : unit Domain.t list;
  mutable nworkers : int;
  mutable job : job option;
  mutable gen : int;
  mutable quit : bool;
}

let pool =
  {
    mu = Mutex.create ();
    go = Condition.create ();
    done_ = Condition.create ();
    workers = [];
    nworkers = 0;
    job = None;
    gen = 0;
    quit = false;
  }

let pool_mu = Mutex.create ()  (* serializes whole drain phases *)

let run_slots (j : job) =
  let rec pull () =
    let s = Atomic.fetch_and_add j.next_slot 1 in
    if s < j.slots then begin
      (try j.run_slot s
       with exn -> if j.failed = None then j.failed <- Some exn);
      ignore (Atomic.fetch_and_add j.finished 1);
      pull ()
    end
  in
  pull ()

let worker_loop () =
  let my_gen = ref 0 in
  Mutex.lock pool.mu;
  let rec loop () =
    while pool.gen = !my_gen && not pool.quit do
      Condition.wait pool.go pool.mu
    done;
    if pool.quit then Mutex.unlock pool.mu
    else begin
      my_gen := pool.gen;
      let j = pool.job in
      Mutex.unlock pool.mu;
      (match j with
      | Some j ->
        run_slots j;
        Mutex.lock pool.mu;
        if Atomic.get j.finished >= j.slots then Condition.broadcast pool.done_;
        Mutex.unlock pool.mu
      | None -> ());
      Mutex.lock pool.mu;
      loop ()
    end
  in
  loop ()

let shutdown_pool () =
  Mutex.lock pool.mu;
  pool.quit <- true;
  Condition.broadcast pool.go;
  let ws = pool.workers in
  pool.workers <- [];
  pool.nworkers <- 0;
  Mutex.unlock pool.mu;
  List.iter Domain.join ws

let () = at_exit shutdown_pool

(* Grow the pool toward [want] workers, bounded by the host's spare
   cores unless the caller explicitly reserves more (tests exercising
   the cross-domain protocol on a 1-core host). *)
let grow_pool ~forced want =
  let cap =
    if forced then want else min want (Domain.recommended_domain_count () - 1)
  in
  Mutex.lock pool.mu;
  (if not pool.quit then
     while pool.nworkers < cap do
       pool.workers <- Domain.spawn worker_loop :: pool.workers;
       pool.nworkers <- pool.nworkers + 1
     done);
  let n = pool.nworkers in
  Mutex.unlock pool.mu;
  n

let reserve_drain_workers n =
  if n < 0 then invalid_arg "Pdes.reserve_drain_workers: n < 0";
  ignore (grow_pool ~forced:true n)

(* Run [run_slot] for every slot in [0, slots): on worker domains plus
   the calling one when the pool has workers, inline otherwise.  Mutexes
   establish the happens-before edges: slot effects (shard heap pops,
   batch writes) are visible to the caller when this returns. *)
let drain_parallel ~slots run_slot =
  let nworkers = grow_pool ~forced:false (slots - 1) in
  if nworkers = 0 then
    for s = 0 to slots - 1 do
      run_slot s
    done
  else begin
    Mutex.lock pool_mu;
    let j =
      {
        slots;
        run_slot;
        next_slot = Atomic.make 0;
        finished = Atomic.make 0;
        failed = None;
      }
    in
    Mutex.lock pool.mu;
    pool.job <- Some j;
    pool.gen <- pool.gen + 1;
    Condition.broadcast pool.go;
    Mutex.unlock pool.mu;
    run_slots j;  (* the coordinator pulls slots too *)
    Mutex.lock pool.mu;
    while Atomic.get j.finished < j.slots do
      Condition.wait pool.done_ pool.mu
    done;
    pool.job <- None;
    Mutex.unlock pool.mu;
    Mutex.unlock pool_mu;
    match j.failed with Some exn -> raise exn | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let route t ~owner ~at f =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let shard =
    match owner with
    | Some node -> t.shard_of node
    | None -> if t.current_shard >= 0 then t.current_shard else 0
  in
  (* A deposit onto another shard is the mailbox path of the conservative
     scheme.  One under the horizon is a lookahead violation: the clamp
     in Network.inject can pull an arrival below [at + latency] when the
     sender's local clock lags the engine.  Both are accounting only —
     the commit merge orders every event by (key, seq) regardless. *)
  if t.current_shard >= 0 && shard <> t.current_shard then begin
    t.c.cross_shard_msgs <- t.c.cross_shard_msgs + 1;
    if at < t.horizon then
      t.c.lookahead_violations <- t.c.lookahead_violations + 1
  end;
  Heap.add_stamped t.heaps.(shard) ~key:at ~seq f

let total_pending t =
  let n = ref 0 in
  Array.iter (fun h -> n := !n + Heap.length h) t.heaps;
  Array.iter (fun b -> n := !n + (b.blen - b.bcursor)) t.batches;
  !n

(* Push every undrained batch entry back into its shard heap (stamps
   preserved, so a later drive pops them in the same global order) —
   called when a raise aborts a window so the engine stays consistent:
   the failing point sees exactly the events the sequential engine would
   still have queued. *)
let restore t =
  for s = 0 to t.nshards - 1 do
    let b = t.batches.(s) in
    for i = b.bcursor to b.blen - 1 do
      Heap.add_stamped t.heaps.(s) ~key:b.bkeys.(i) ~seq:b.bseqs.(i)
        b.bvals.(i)
    done;
    b.blen <- b.bcursor;
    batch_reset b
  done;
  t.current_shard <- -1;
  t.horizon <- min_int

(* ------------------------------------------------------------------ *)
(* The windowed driver                                                 *)
(* ------------------------------------------------------------------ *)

(* The earliest pending timestamp across shard heaps (batches are empty
   between windows). *)
let min_next t =
  let best = ref max_int and found = ref false in
  Array.iter
    (fun h ->
      if not (Heap.is_empty h) then begin
        found := true;
        let k = Heap.top_key h in
        if k < !best then best := k
      end)
    t.heaps;
  if !found then Some !best else None

(* Next candidate of shard [s]: the smaller of the batch head and the
   shard heap's under-horizon top.  The heap can undercut the batch even
   while the batch is non-empty: an event scheduled *during* this
   window's commit (a same-shard child) lands in the heap, possibly at a
   key below the batch's remaining entries, and must run in its (key,
   seq) place exactly as the sequential engine would pop it. *)
let heap_candidate t s =
  let h = t.heaps.(s) in
  if (not (Heap.is_empty h)) && Heap.top_key h < t.horizon then
    Some (Heap.top_key h, Heap.top_seq h)
  else None

let candidate t s =
  let b = t.batches.(s) in
  if b.bcursor >= b.blen then heap_candidate t s
  else
    let bk = b.bkeys.(b.bcursor) and bs = b.bseqs.(b.bcursor) in
    match heap_candidate t s with
    | Some (hk, hs) when hk < bk || (hk = bk && hs < bs) -> Some (hk, hs)
    | Some _ | None -> Some (bk, bs)

(* Pop the candidate [candidate] just chose for shard [s] (same
   comparison, so the two always agree). *)
let pop_candidate t s =
  let b = t.batches.(s) in
  let from_batch =
    b.bcursor < b.blen
    &&
    match heap_candidate t s with
    | None -> true
    | Some (hk, hs) ->
      let bk = b.bkeys.(b.bcursor) and bs = b.bseqs.(b.bcursor) in
      bk < hk || (bk = hk && bs < hs)
  in
  if from_batch then begin
    let f = b.bvals.(b.bcursor) in
    let key = b.bkeys.(b.bcursor) in
    b.bvals.(b.bcursor) <- nop;
    b.bcursor <- b.bcursor + 1;
    if b.bcursor = b.blen then batch_reset b;
    (key, f)
  end
  else
    let key = Heap.top_key t.heaps.(s) in
    (key, Heap.pop_exn t.heaps.(s))

let drain_shard t horizon s =
  let h = t.heaps.(s) and b = t.batches.(s) in
  let rec go () =
    if (not (Heap.is_empty h)) && Heap.top_key h < horizon then begin
      let key = Heap.top_key h and seq = Heap.top_seq h in
      let f = Heap.pop_exn h in
      batch_push b ~key ~seq f;
      go ()
    end
  in
  go ()

let drive t ~limit =
  let e = t.engine in
  let remaining = ref (match limit with None -> max_int | Some n -> n) in
  let exhausted () =
    restore t;
    failwith
      (Printf.sprintf "Engine.run: event limit exhausted at t=%d (%d pending)"
         (Engine.now e) (total_pending t))
  in
  let rec window () =
    match min_next t with
    | None -> ()  (* drained; like the sequential loop, limit 0 here is fine *)
    | Some earliest ->
      t.c.windows <- t.c.windows + 1;
      (* each shard announces its horizon bound: null messages in the
         Chandy–Misra–Bryant sense, one per shard per window *)
      t.c.null_msgs <- t.c.null_msgs + t.nshards;
      let horizon = earliest + t.lookahead in
      t.horizon <- horizon;
      (* Parallel drain: shard heaps are disjoint, one slot per shard. *)
      if t.nshards > 1 then
        drain_parallel ~slots:t.nshards (fun s -> drain_shard t horizon s)
      else drain_shard t horizon 0;
      (* Window span accounting from the drained slices (per-shard slices
         are sorted, so min/max are the ends). *)
      let span_min = ref max_int and span_max = ref min_int in
      Array.iter
        (fun b ->
          if b.blen > 0 then begin
            span_min := min !span_min b.bkeys.(0);
            span_max := max !span_max b.bkeys.(b.blen - 1)
          end)
        t.batches;
      if !span_max = !span_min then
        t.c.horizon_stalls <- t.c.horizon_stalls + 1;
      (* Commit in global (key, seq) order: k-way merge over batch heads
         and under-horizon heap tops. *)
      let committed = ref 0 in
      let rec commit () =
        let best = ref (-1) and bk = ref max_int and bs = ref max_int in
        for s = 0 to t.nshards - 1 do
          match candidate t s with
          | Some (k, q) when k < !bk || (k = !bk && q < !bs) ->
            best := s;
            bk := k;
            bs := q
          | Some _ | None -> ()
        done;
        if !best >= 0 then begin
          if !remaining = 0 then exhausted ();
          (* checks run with the event still recoverable: a budget or
             watchdog raise restores the window and leaves the engine
             exactly where the sequential engine would stop *)
          (try Engine.pre_event_checks e
           with exn ->
             restore t;
             raise exn);
          decr remaining;
          let at, f = pop_candidate t !best in
          t.current_shard <- !best;
          incr committed;
          (try Engine.commit_event e ~at f
           with exn ->
             (* the committed event is consumed (as in the sequential
                engine); everything uncommitted goes back to its shard *)
             restore t;
             raise exn);
          commit ()
        end
      in
      commit ();
      t.current_shard <- -1;
      t.horizon <- min_int;
      t.c.window_events_total <- t.c.window_events_total + !committed;
      if !committed > t.c.max_window_events then
        t.c.max_window_events <- !committed;
      window ()
  in
  window ()

(* ------------------------------------------------------------------ *)
(* Attach                                                              *)
(* ------------------------------------------------------------------ *)

let attach ~engine ~shards ~lookahead ~shard_of () =
  if shards < 1 then invalid_arg "Pdes.attach: shards must be positive";
  if lookahead < 1 then invalid_arg "Pdes.attach: lookahead must be positive";
  let t =
    {
      engine;
      nshards = shards;
      lookahead;
      shard_of;
      heaps =
        Array.init shards (fun _ ->
            Heap.create ~hint:(max 64 (1024 / shards)) ());
      batches = Array.init shards (fun _ -> batch_create ());
      next_seq = 0;
      current_shard = -1;
      horizon = min_int;
      c =
        {
          windows = 0;
          null_msgs = 0;
          cross_shard_msgs = 0;
          lookahead_violations = 0;
          horizon_stalls = 0;
          window_events_total = 0;
          max_window_events = 0;
        };
    }
  in
  Engine.set_router engine (Some (fun ~owner ~at f -> route t ~owner ~at f));
  Engine.set_driver engine (Some (fun ~limit -> drive t ~limit));
  Engine.set_aux_pending engine (Some (fun () -> total_pending t));
  t
