(** The RSM design space, as the paper frames it.

    Section 3 defines Reconcilable Shared Memory as a {e family} of
    protocols that differ in two program-controlled decisions: the
    response to a request for a location, and the way returned copies
    reconcile.  This module exposes those two axes literally and maps any
    point in the space onto a runnable {!Policy.t}:

    - {b request axis}: does a write request receive the single writable
      copy (invalidating all others — conventional coherence), or a
      private copy that coexists with other writable copies (LCM)?
    - {b reconcile axis}: where do clean copies live (home only, or on
      every caching node), and do outstanding read-only copies get
      invalidated or updated when reconciliation produces a new value?

    The paper's measured systems are three points in this space; the
    corner cases compose freely ([instantiate] accepts all eight). *)

type request_policy =
  | Exclusive_writer
      (** sequentially-consistent: one writable copy at a time *)
  | Private_copies
      (** loosely-coherent: writers get private copies, reconciled later *)

type clean_copy_placement =
  | Home_only  (** LCM-scc *)
  | All_caching_nodes  (** LCM-mcc *)

type outstanding_copies =
  | Invalidate  (** reconciliation invalidates read-only copies *)
  | Update  (** reconciliation refreshes them in place *)

type reconcile_policy = {
  placement : clean_copy_placement;
  outstanding : outstanding_copies;
}

val instantiate : request:request_policy -> reconcile:reconcile_policy -> Policy.t
(** A runnable policy for any point in the space.  Note the placement and
    update knobs only take effect under [Private_copies]; with
    [Exclusive_writer] reconciliation degenerates to overwrite-at-home, as
    Section 3 observes of conventional shared memory. *)

val classify : Policy.t -> request_policy * reconcile_policy
(** The coordinates of an existing policy in the RSM space.
    @raise Invalid_argument on a snooping-bus policy — the bus family lies
    outside the RSM design space. *)

val stache : Policy.t
(** [instantiate Exclusive_writer {Home_only; Invalidate}] =
    {!Policy.stache}. *)

val lcm_scc : Policy.t
val lcm_mcc : Policy.t
val lcm_mcc_update : Policy.t
