(** The directory-family RSM protocol engine — the paper's primary
    contribution.  Use {!Proto} unless you specifically need this engine:
    the facade dispatches on the policy's family and presents one type for
    directory and snooping policies alike.

    One generic home-directory protocol engine, parameterised by a
    directory-family {!Policy.t}, implements all three memory systems the
    paper measures:

    - {b Stache} — sequentially-consistent user-level directory protocol:
      single-writer invalidation coherence, home-based full directory, the
      node's memory as a large cache for remote blocks;
    - {b LCM-scc} — loosely-coherent memory with a single clean copy at the
      home node;
    - {b LCM-mcc} — LCM with clean copies on every caching node.

    The engine installs itself on a {!Lcm_tempest.Machine.t}: it owns the
    read-fault, write-fault, directive and eviction hooks, and consists of
    message-driven state machines at each block's home plus a thin
    requester side.

    {2 LCM operation (Section 5.1 of the paper)}

    The three directives are [mark_modification(addr)] (the
    {!Lcm_tempest.Memeff.Mark_modification} directive — or an implicit mark
    when unannotated code write-faults during a parallel phase),
    [flush_copies()] ({!Lcm_tempest.Memeff.Flush_copies}), and
    [reconcile_copies()] ({!reconcile}, invoked by the language runtime at
    the end of a parallel call).

    During a parallel phase the master copy of every block is immutable:
    writes land in private [Lcm_modified] copies that track per-word dirty
    masks, and flushed copies merge into a {e pending} shadow copy at the
    home.  Reads served during the phase therefore always observe the
    phase-start global state, which is exactly C\*\*'s "atomic and
    simultaneous" semantics.  [reconcile] completes the phase: every node
    flushes, a barrier waits for all flush acknowledgements, each home
    promotes its shadow to master, and outstanding read-only copies of
    modified blocks are invalidated system-wide. *)

type t

val install :
  ?detect:bool ->
  ?strict_detection:bool ->
  ?capacity_evictions:bool ->
  ?barrier:Barrier.style ->
  policy:Policy.t ->
  Lcm_tempest.Machine.t ->
  t
(** [install ~policy machine] registers the protocol on [machine] and
    returns the instance handle.  [policy] must belong to the
    [Policy.Directory] family ([Invalid_argument] otherwise — snooping
    policies ride {!Proto_snoop}).  [detect] enables reconcile-time
    write/write-conflict and read/write-race recording (default false).
    [strict_detection] additionally flushes {e every} outstanding read-only
    copy at each reconciliation, so that races involving reads cached in an
    earlier phase are also caught — "to catch actual violations, all
    read-only cache blocks must be flushed from the caches at
    synchronization points" (§7.2); it costs extra invalidation traffic and
    re-fetches, which is why the paper reserves it for debugging.  Requires
    [detect].  [capacity_evictions] registers the eviction hook (default
    true; only matters when the machine was created with a finite cache).
    [barrier] selects the reconciliation-barrier timing model (default
    {!Barrier.Constant}). *)

val policy : t -> Policy.t

val machine : t -> Lcm_tempest.Machine.t

val register_reduction : t -> base:int -> nwords:int -> Reduction.t -> unit
(** Declare that the region [\[base, base+nwords)] holds reduction
    locations: reconciliation combines flushed values with the operator
    instead of last-writer-wins.  Applies at block granularity — the
    region is rounded out to whole blocks. *)

val begin_parallel : t -> unit
(** Enter a parallel phase: subsequent write faults follow the policy's
    [parallel_write_grant].  The caller (the C\*\* runtime) must be
    quiescent. *)

val reconcile : t -> unit
(** The [reconcile_copies()] directive: flush every node's modified
    copies, wait for all of them to reach their homes, promote pending
    copies to the new global state, invalidate outstanding read-only
    copies of modified blocks, advance the epoch and return to the
    sequential phase.  Runs the simulation to quiescence internally; on
    return all node clocks equal the barrier release time. *)

val conflicts : t -> Detect.conflict list
(** Write/write conflicts recorded so far (empty unless [detect]). *)

val races : t -> Detect.race list
(** Read/write races recorded so far (empty unless [detect]). *)

val dump_block : t -> int -> string
(** One-line description of a block's directory and cached-copy state,
    for debugging: home, directory state, LCM holders, pending shadow,
    and every node's cached tag. *)

val touch_entry : t -> int -> unit
(** Materialise the directory entry for a block, validating the block
    number: an unallocated block raises a typed [Failure] naming it —
    the same guard every message handler's entry lookup goes through,
    so a corrupt block number in a message fails loudly instead of
    minting a ghost entry.  White-box probe for tests and debugging. *)

val check_invariants : t -> (unit, string list) result
(** Audit the global protocol state; intended for tests and debugging
    (call when the simulation is quiescent).  Checked invariants:

    - directory/line consistency: a remote exclusive owner actually holds a
      writable line, and nobody else holds any copy of that block; every
      recorded sharer's copy (if still cached) is read-only and — outside a
      parallel phase — equal to the master;
    - no transaction is stuck ([busy]/queued waiters when quiescent);
    - sequential phases have no [Lcm_modified] lines, no pending shadow
      copies and no LCM holders;
    - the home's backing line, when present and not a private LCM copy,
      holds the master's contents.

    Returns [Error messages] listing every violation found. *)

val peek : t -> int -> int
(** [peek t addr] reads the current coherent value of a word, bypassing
    the simulation (consults the exclusive owner's copy if one exists).
    For initialisation, result extraction and tests only. *)

val poke : t -> int -> int -> unit
(** [poke t addr v] writes a word directly into the master copy.  Only
    sound while no node caches the block (e.g. before the program starts);
    raises [Failure] if a remote copy exists. *)
