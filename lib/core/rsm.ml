type request_policy = Exclusive_writer | Private_copies

type clean_copy_placement = Home_only | All_caching_nodes

type outstanding_copies = Invalidate | Update

type reconcile_policy = {
  placement : clean_copy_placement;
  outstanding : outstanding_copies;
}

let instantiate ~request ~reconcile =
  let grant =
    match request with
    | Exclusive_writer -> Policy.Exclusive
    | Private_copies -> Policy.Lcm_copy
  in
  let local = reconcile.placement = All_caching_nodes in
  let update = reconcile.outstanding = Update in
  let name =
    match (request, reconcile.placement, reconcile.outstanding) with
    | Exclusive_writer, Home_only, Invalidate -> "stache"
    | Private_copies, Home_only, Invalidate -> "lcm-scc"
    | Private_copies, All_caching_nodes, Invalidate -> "lcm-mcc"
    | Private_copies, All_caching_nodes, Update -> "lcm-mcc-update"
    | Private_copies, Home_only, Update -> "lcm-scc-update"
    | Exclusive_writer, _, _ -> "stache-variant"
  in
  {
    Policy.name;
    family =
      Policy.Directory
        {
          parallel_write_grant = grant;
          local_clean_copies = local;
          update_on_reconcile = update;
        };
  }

let classify (p : Policy.t) =
  let d =
    match p.Policy.family with
    | Policy.Directory d -> d
    | Policy.Snoop _ ->
      invalid_arg "Rsm.classify: snooping policies are not RSM points"
  in
  let request =
    match d.Policy.parallel_write_grant with
    | Policy.Exclusive -> Exclusive_writer
    | Policy.Lcm_copy -> Private_copies
  in
  let placement =
    if d.Policy.local_clean_copies then All_caching_nodes else Home_only
  in
  let outstanding = if d.Policy.update_on_reconcile then Update else Invalidate in
  (request, { placement; outstanding })

let stache =
  instantiate ~request:Exclusive_writer
    ~reconcile:{ placement = Home_only; outstanding = Invalidate }

let lcm_scc =
  instantiate ~request:Private_copies
    ~reconcile:{ placement = Home_only; outstanding = Invalidate }

let lcm_mcc =
  instantiate ~request:Private_copies
    ~reconcile:{ placement = All_caching_nodes; outstanding = Invalidate }

let lcm_mcc_update =
  instantiate ~request:Private_copies
    ~reconcile:{ placement = All_caching_nodes; outstanding = Update }
