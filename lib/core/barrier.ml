type style = Constant | Flat | Tree of int

(* One barrier message: fixed network cost plus the receiver's handler
   occupancy.  Hop counts are ignored — barrier traffic is latency-bound
   on the fixed overheads. *)
let msg_cost (c : Lcm_sim.Costs.t) = c.msg_fixed + c.handler_occupancy

let release_time ~costs ~style ~join_times =
  let n = Array.length join_times in
  if n = 0 then invalid_arg "Barrier.release_time: no nodes";
  let latest = Array.fold_left max 0 join_times in
  match style with
  | Constant ->
    latest + costs.Lcm_sim.Costs.barrier_base
    + (n * costs.Lcm_sim.Costs.barrier_per_node)
  | Flat ->
    (* Joins arrive at the coordinator and are handled serially: the k-th
       arrival (in time order) completes no earlier than both its own
       arrival and the previous handler's completion. *)
    let arrivals =
      Array.map (fun t -> t + costs.Lcm_sim.Costs.msg_fixed) join_times
    in
    Array.sort compare arrivals;
    let finish =
      Array.fold_left
        (fun busy arrival ->
          max busy arrival + costs.Lcm_sim.Costs.handler_occupancy)
        0 arrivals
    in
    (* release broadcast: one message out (the coordinator sends P-1
       messages back-to-back; the last leaves after P-1 injections) *)
    finish + ((n - 1) * costs.Lcm_sim.Costs.msg_per_word) + msg_cost costs
  | Tree arity ->
    if arity < 2 then invalid_arg "Barrier.release_time: arity must be >= 2";
    (* Combine up the tree: each level-k combiner fires when all its
       children have, plus one message + handler per level. *)
    let rec combine times =
      if Array.length times = 1 then times.(0)
      else
        let groups = (Array.length times + arity - 1) / arity in
        let next =
          Array.init groups (fun g ->
              let lo = g * arity in
              let hi = min (Array.length times) (lo + arity) in
              let worst = ref 0 in
              for i = lo to hi - 1 do
                if times.(i) > !worst then worst := times.(i)
              done;
              !worst + msg_cost costs)
        in
        combine next
    in
    let joined = combine (Array.copy join_times) in
    (* release broadcasts back down the same depth *)
    let rec depth n = if n <= 1 then 0 else 1 + depth ((n + arity - 1) / arity) in
    joined + (depth n * msg_cost costs)

let spellings = "constant, flat or tree:<arity>"

let of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "constant" ] -> Ok Constant
  | [ "flat" ] -> Ok Flat
  | [ "tree"; a ] -> (
    match int_of_string_opt a with
    | Some arity when arity >= 2 -> Ok (Tree arity)
    | Some _ | None -> Error "tree: expected arity >= 2")
  | _ ->
    Error
      (Printf.sprintf "unknown barrier style %S (expected %s)" s spellings)

let to_string = function
  | Constant -> "constant"
  | Flat -> "flat"
  | Tree a -> Printf.sprintf "tree:%d" a
