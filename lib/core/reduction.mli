(** Reconciliation functions for reduction assignments.

    C\*\*'s reduction assignments ([total %+= x]) combine values written
    into a location by many invocations with a binary associative operator
    (Section 4.2 of the paper).  Under LCM each invocation accumulates into
    its private copy, whose initial value is the phase-start ("clean")
    value; at reconciliation the home combines each returned copy into the
    pending global value.

    [combine ~clean ~current ~incoming] merges one returned word:
    - [clean] is the phase-start value of the word (the accumulation
      baseline every private copy started from);
    - [current] is the value accumulated at the home so far;
    - [incoming] is the word arriving in a flushed copy.

    For non-idempotent operators (sum, xor) the contribution is recovered
    by "subtracting" [clean] from [incoming]; for idempotent lattice
    operators (min, max, and, or) [incoming] can be combined directly. *)

type t = {
  name : string;
  identity : Lcm_mem.Word.t;
      (** the operator's identity element — the initial value of a private
          accumulator in the hand-coded (explicit-copy) baseline *)
  apply : Lcm_mem.Word.t -> Lcm_mem.Word.t -> Lcm_mem.Word.t;
      (** the plain binary operator, used by baseline code that folds
          per-processor partial results *)
  combine : clean:Lcm_mem.Word.t -> current:Lcm_mem.Word.t -> incoming:Lcm_mem.Word.t -> Lcm_mem.Word.t;
}

val int_sum : t
(** 32-bit integer sum. *)

val f32_sum : t
(** Single-precision float sum (values encoded with {!Lcm_mem.Word.of_float}). *)

val int_min : t
val int_max : t
val f32_min : t
val f32_max : t
val band : t
(** Bitwise and. *)

val bor : t
(** Bitwise or. *)

val bxor : t
(** Bitwise exclusive-or (non-idempotent: uses the clean baseline). *)

val of_string : string -> (t, string) result
(** Lookup by [name]; accepts the names of all operators above. *)

val all : t list
