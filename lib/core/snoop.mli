(** Pure transition tables for the snooping-bus protocol family.

    {!Proto_snoop} owns transport (the {!Lcm_net.Bus}), waiter queues and
    barrier bookkeeping; this module is the policy layer — total functions
    from (policy knobs, observed state) to next state, free of engine
    state, so each table reads directly against a textbook MSI/MESI/MOESI
    description.  {!Policy.snoop}'s two knobs select the family member:
    [exclusive_state] admits E (MESI), [owned_state] admits O (MOESI). *)

type state = I | S | E | O | M

val state_to_string : state -> string

val valid : Policy.snoop -> state -> bool
(** Whether the policy admits the state (E needs [exclusive_state], O
    needs [owned_state]). *)

val tag_of_state : state -> Lcm_tempest.Tag.t
(** The machine-level tag of a cached copy: only [M] is [Writable], so
    stores to S/E/O fault into the protocol; [E]'s upgrade then costs only
    the fault trap — no bus transaction — which is MESI's advantage. *)

val readable : state -> bool

val fill_on_read : Policy.snoop -> others_present:bool -> state
(** State a read miss installs, given whether the snoop found any other
    cached copy: [E] when alone under MESI/MOESI, else [S]. *)

val fill_on_write : state
(** [M] — a write miss or completed upgrade always fills Modified. *)

val silent_upgrade_ok : state -> bool
(** Only [E] may upgrade to [M] without a bus transaction. *)

type supply = From_memory | Cache_to_cache

type reaction = {
  next : state;
  supplies : bool;  (** this snooper puts the line on the bus *)
  writes_memory : bool;  (** and also updates the master copy *)
}

val on_bus_rd : Policy.snoop -> state -> reaction
(** Snooper response to an observed BUS_RD.  [M] supplies cache-to-cache
    and either writes memory back and downgrades to [S] (MSI/MESI) or
    downgrades to [O] leaving memory stale (MOESI); [O] keeps supplying;
    [E] downgrades to [S]. *)

val on_bus_rdx : state -> reaction
(** Snooper response to BUS_RDX (and the invalidation half of BUS_UPGR):
    dirty holders supply the current value, every copy invalidates; memory
    may stay stale because the requester becomes the new [M] owner. *)

val writeback_on_evict : state -> bool
(** [M] and [O] lines owe memory a writeback when evicted; [S]/[E] drop
    silently. *)
