(* The protocol facade: one handle over the two coherence engines.

   A Policy.t's family picks the engine at install time — Directory
   policies (stache and the LCM variants) ride the home-directory engine
   in Proto_dir; Snoop policies (MSI/MESI/MOESI) ride the shared-bus
   engine in Proto_snoop.  Everything above this layer (the harness, the
   C* runtime, the CLI) talks to Proto and is engine-agnostic.

   The dispatch is a plain variant rather than a first-class module
   because the two engines agree on every operation's type; keeping the
   facade dumb keeps the engines honest about their shared contract. *)

type t =
  | Dir of Proto_dir.t
  | Snoop_engine of Proto_snoop.t

let install ?detect ?strict_detection ?capacity_evictions ?barrier ~policy
    mach =
  match policy.Policy.family with
  | Policy.Directory _ ->
    Dir
      (Proto_dir.install ?detect ?strict_detection ?capacity_evictions
         ?barrier ~policy mach)
  | Policy.Snoop _ ->
    (* detection is an LCM reconciliation feature; a coherent bus has no
       reconcile sweep to record conflicts in, so the flags are inert *)
    ignore detect;
    ignore strict_detection;
    Snoop_engine (Proto_snoop.install ?capacity_evictions ?barrier ~policy mach)

let policy = function
  | Dir p -> Proto_dir.policy p
  | Snoop_engine p -> Proto_snoop.policy p

let machine = function
  | Dir p -> Proto_dir.machine p
  | Snoop_engine p -> Proto_snoop.machine p

let register_reduction t ~base ~nwords op =
  match t with
  | Dir p -> Proto_dir.register_reduction p ~base ~nwords op
  | Snoop_engine p -> Proto_snoop.register_reduction p ~base ~nwords op

let begin_parallel = function
  | Dir p -> Proto_dir.begin_parallel p
  | Snoop_engine p -> Proto_snoop.begin_parallel p

let reconcile = function
  | Dir p -> Proto_dir.reconcile p
  | Snoop_engine p -> Proto_snoop.reconcile p

let conflicts = function
  | Dir p -> Proto_dir.conflicts p
  | Snoop_engine p -> Proto_snoop.conflicts p

let races = function
  | Dir p -> Proto_dir.races p
  | Snoop_engine p -> Proto_snoop.races p

let dump_block t b =
  match t with
  | Dir p -> Proto_dir.dump_block p b
  | Snoop_engine p -> Proto_snoop.dump_block p b

let check_invariants = function
  | Dir p -> Proto_dir.check_invariants p
  | Snoop_engine p -> Proto_snoop.check_invariants p

let peek t addr =
  match t with
  | Dir p -> Proto_dir.peek p addr
  | Snoop_engine p -> Proto_snoop.peek p addr

let poke t addr v =
  match t with
  | Dir p -> Proto_dir.poke p addr v
  | Snoop_engine p -> Proto_snoop.poke p addr v
