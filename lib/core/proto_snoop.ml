(* The snooping-bus protocol engine: MSI/MESI/MOESI over Lcm_net.Bus.

   Division of labour: Snoop holds the pure per-policy transition tables;
   this engine owns transport (bus transactions and their arbitration),
   waiter queues (per-node pending fault retries), the writeback buffer,
   and barrier bookkeeping.  Every bus transaction's state changes happen
   atomically in its completion callback, so the engine needs no "busy"
   directory states: concurrent requests simply serialize through bus
   arbitration.

   Memory model: the machine's master copies are the (centralized) memory
   image.  Home backing lines are disabled (Machine.set_home_backing
   false) — a node's accesses to blocks homed locally fault and arbitrate
   for the bus exactly like everyone else's; only the fetch counters
   distinguish local from remote homes, for comparability with the
   directory engine.  A node's locally-homed cached lines are exempt from
   capacity eviction (the machine treats them as that node's share of
   memory), which mirrors the directory engine's home-line exemption.

   The writeback race the tables cannot express: evicting an M or O line
   removes the line now but its FLUSH transaction only reaches memory at
   a later bus grant.  The evicted data sits in a writeback buffer that
   every intervening transaction snoops first — a BUS_RD/BUS_RDX granted
   between the eviction and the FLUSH is supplied from the buffer, and
   the FLUSH itself becomes a no-op if the buffer entry was consumed. *)

module Machine = Lcm_tempest.Machine
module Memeff = Lcm_tempest.Memeff
module Tag = Lcm_tempest.Tag
module Block = Lcm_mem.Block
module Gmem = Lcm_mem.Gmem
module Stats = Lcm_util.Stats
module Bus = Lcm_net.Bus

type handles = {
  h_fetch_local : Stats.Handle.counter;
  h_fetch_remote : Stats.Handle.counter;
  h_writebacks : Stats.Handle.counter;
  h_barrier_wait : Stats.Handle.counter;
  h_snoop_hits : Stats.Handle.counter;
  h_c2c : Stats.Handle.counter;
  h_upgr_races : Stats.Handle.counter;
  h_wb_supplies : Stats.Handle.counter;
}

let resolve_handles s =
  {
    h_fetch_local = Stats.counter s "proto.fetch_local";
    h_fetch_remote = Stats.counter s "proto.fetch_remote";
    h_writebacks = Stats.counter s "proto.writebacks";
    h_barrier_wait = Stats.counter s "lcm.barrier_wait_cycles";
    h_snoop_hits = Stats.counter s "bus.snoop_hits";
    h_c2c = Stats.counter s "bus.c2c_transfers";
    h_upgr_races = Stats.counter s "bus.upgr_races";
    h_wb_supplies = Stats.counter s "bus.wb_supplies";
  }

type t = {
  mach : Machine.t;
  pol : Policy.t;
  sp : Policy.snoop;
  hs : handles;
  bus : Bus.t;
  barrier : Barrier.style;
  states : (int, Snoop.state array) Hashtbl.t;  (* block -> per-node state *)
  wb : (int, Block.t) Hashtbl.t;  (* in-flight evicted dirty data *)
  reductions : (int, Reduction.t) Hashtbl.t;
      (* accepted for API parity; reductions execute as coherent rmws, so
         the operator table is not consulted by this engine *)
  pending_retries : (int, (unit -> unit) list) Hashtbl.t array;  (* per node *)
}

let policy t = t.pol
let machine t = t.mach

let wpb t = Gmem.words_per_block (Machine.gmem t.mach)
let home_of t b = Gmem.home_of_block (Machine.gmem t.mach) b

let ctrl_words = 2
let data_words t = wpb t + 2

let states_of t b =
  match Hashtbl.find_opt t.states b with
  | Some sts -> sts
  | None ->
    let sts = Array.make (Machine.nnodes t.mach) Snoop.I in
    Hashtbl.add t.states b sts;
    sts

let state t b nid = (states_of t b).(nid)

(* Transition one cache: keep the state table and the machine's line table
   in lockstep.  [data] refreshes (or provides, for installs) the line
   contents; installs always carry a private copy, never an alias of the
   master. *)
let set_state t b nid st ?data () =
  (states_of t b).(nid) <- st;
  let node = Machine.node t.mach nid in
  match st with
  | Snoop.I -> Machine.drop_line node b
  | st -> (
    let tag = Snoop.tag_of_state st in
    match Machine.find_line node b with
    | Some line ->
      line.Machine.tag <- tag;
      (match data with
      | Some d -> Block.blit ~src:d ~dst:line.Machine.data
      | None -> ())
    | None ->
      let data =
        match data with Some d -> d | None -> assert false (* install needs data *)
      in
      ignore (Machine.install_line node b ~data ~tag))

(* Consume the writeback buffer: the evicted dirty value is the freshest
   copy of the block, so any transaction touching the block retires it to
   memory first.  The still-queued FLUSH then finds nothing and no-ops. *)
let drain_wb t b ~consumed_by_transaction =
  match Hashtbl.find_opt t.wb b with
  | Some data ->
    Block.blit ~src:data ~dst:(Machine.master t.mach b);
    Hashtbl.remove t.wb b;
    if consumed_by_transaction then Stats.Handle.incr t.hs.h_wb_supplies
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Bus transactions (each body runs atomically at grant completion)    *)
(* ------------------------------------------------------------------ *)

let resume_waiters t b nid ~now =
  let retries =
    match Hashtbl.find_opt t.pending_retries.(nid) b with
    | Some rs -> List.rev rs
    | None -> []
  in
  Hashtbl.remove t.pending_retries.(nid) b;
  Machine.resume (Machine.node t.mach nid) ~now
    ~cost:(Machine.costs t.mach).Lcm_sim.Costs.block_install (fun () ->
      List.iter (fun retry -> retry ()) retries)

let do_bus_rd t b nid ~now =
  drain_wb t b ~consumed_by_transaction:true;
  let sts = states_of t b in
  let supplier = ref None in
  let others_present = ref false in
  Array.iteri
    (fun m st ->
      if m <> nid && st <> Snoop.I then begin
        others_present := true;
        Stats.Handle.incr t.hs.h_snoop_hits;
        let r = Snoop.on_bus_rd t.sp st in
        let line =
          match Machine.find_line (Machine.node t.mach m) b with
          | Some l -> l
          | None -> failwith "Proto_snoop: snooped state without a line"
        in
        if r.Snoop.supplies && !supplier = None then
          supplier := Some (Block.copy line.Machine.data);
        if r.Snoop.writes_memory then
          Block.blit ~src:line.Machine.data ~dst:(Machine.master t.mach b);
        set_state t b m r.Snoop.next ()
      end)
    sts;
  let data =
    match !supplier with
    | Some d ->
      Stats.Handle.incr t.hs.h_c2c;
      d
    | None -> Block.copy (Machine.master t.mach b)
  in
  let st = Snoop.fill_on_read t.sp ~others_present:!others_present in
  set_state t b nid st ~data ();
  Machine.tracef t.mach ~time:now "bus_rd node=%d block=%d fill=%s" nid b
    (Snoop.state_to_string st);
  resume_waiters t b nid ~now

(* Core of BUS_RDX, shared with the upgrade-miss conversion: collect the
   dirty holder's data (if any), invalidate every other copy, install the
   requester Modified.  Memory may stay stale — the requester is the new
   single owner. *)
let do_bus_rdx t b nid ~now =
  drain_wb t b ~consumed_by_transaction:true;
  let sts = states_of t b in
  let supplier = ref None in
  Array.iteri
    (fun m st ->
      if m <> nid && st <> Snoop.I then begin
        Stats.Handle.incr t.hs.h_snoop_hits;
        let r = Snoop.on_bus_rdx st in
        (if r.Snoop.supplies && !supplier = None then
           match Machine.find_line (Machine.node t.mach m) b with
           | Some line -> supplier := Some (Block.copy line.Machine.data)
           | None -> failwith "Proto_snoop: snooped state without a line");
        set_state t b m r.Snoop.next ()
      end)
    sts;
  let data =
    match !supplier with
    | Some d ->
      Stats.Handle.incr t.hs.h_c2c;
      d
    | None -> Block.copy (Machine.master t.mach b)
  in
  set_state t b nid Snoop.fill_on_write ~data ();
  Machine.tracef t.mach ~time:now "bus_rdx node=%d block=%d" nid b;
  resume_waiters t b nid ~now

let do_bus_upgr t b nid ~now =
  match state t b nid with
  | Snoop.I ->
    (* Our shared copy was invalidated while we arbitrated: the upgrade
       has nothing to upgrade and converts to a full read-exclusive in
       the same bus slot. *)
    Stats.Handle.incr t.hs.h_upgr_races;
    do_bus_rdx t b nid ~now
  | Snoop.S | Snoop.O ->
    drain_wb t b ~consumed_by_transaction:true;
    let sts = states_of t b in
    Array.iteri
      (fun m st ->
        if m <> nid && st <> Snoop.I then begin
          Stats.Handle.incr t.hs.h_snoop_hits;
          set_state t b m (Snoop.on_bus_rdx st).Snoop.next ()
        end)
      sts;
    set_state t b nid Snoop.fill_on_write ();
    Machine.tracef t.mach ~time:now "bus_upgr node=%d block=%d" nid b;
    resume_waiters t b nid ~now
  | Snoop.E | Snoop.M ->
    (* already exclusive (e.g. a racing transaction's supplier bookkeeping
       upgraded us); just complete *)
    set_state t b nid Snoop.fill_on_write ();
    resume_waiters t b nid ~now

let do_bus_flush t b ~now =
  (match Hashtbl.find_opt t.wb b with
  | Some data ->
    Block.blit ~src:data ~dst:(Machine.master t.mach b);
    Hashtbl.remove t.wb b
  | None -> () (* consumed by an intervening transaction *));
  Machine.tracef t.mach ~time:now "bus_flush block=%d" b

(* ------------------------------------------------------------------ *)
(* Fault handling                                                      *)
(* ------------------------------------------------------------------ *)

(* Static grant handlers: preallocated once and delivered through
   {!Bus.transact_call}'s pooled grant cells, so a steady-state snooping
   transaction allocates nothing host-side.  The rider packs
   [(nid lsl 40) lor b] — block numbers stay far below 2^40. *)
let grant_rd_m t now x = do_bus_rd t (x land ((1 lsl 40) - 1)) (x lsr 40) ~now
let grant_rdx_m t now x = do_bus_rdx t (x land ((1 lsl 40) - 1)) (x lsr 40) ~now
let grant_upgr_m t now x = do_bus_upgr t (x land ((1 lsl 40) - 1)) (x lsr 40) ~now
let grant_flush_m t now b = do_bus_flush t b ~now

(* One in-flight transaction per (node, block): later faults pile their
   retries onto the pending entry and resume with the grant.  Returns
   whether the caller should issue the bus transaction (no transaction
   for this block is already arbitrating). *)
let request t node b ~retry =
  let nid = Machine.id node in
  let pending = Hashtbl.find_opt t.pending_retries.(nid) b in
  Hashtbl.replace t.pending_retries.(nid) b
    (retry :: Option.value pending ~default:[]);
  match pending with
  | Some _ -> false (* a transaction for this block is already arbitrating *)
  | None ->
    Stats.Handle.incr
      (if home_of t b = nid then t.hs.h_fetch_local else t.hs.h_fetch_remote);
    true

let read_fault t node ~addr ~retry =
  let b = Gmem.block_of_addr (Machine.gmem t.mach) addr in
  let nid = Machine.id node in
  if request t node b ~retry then
    Bus.transact_call t.bus ~kind:Bus.Rd ~at:(Machine.clock node)
      ~words:(data_words t) grant_rd_m t ((nid lsl 40) lor b)

let write_fault t node ~addr ~retry =
  let b = Gmem.block_of_addr (Machine.gmem t.mach) addr in
  let nid = Machine.id node in
  match state t b nid with
  | st when Snoop.silent_upgrade_ok st ->
    (* MESI/MOESI: the Exclusive holder upgrades without a transaction —
       the fault trap already charged is the whole cost. *)
    set_state t b nid Snoop.fill_on_write ();
    Machine.resume node ~now:(Machine.clock node) ~cost:0 retry
  | Snoop.S | Snoop.O ->
    if request t node b ~retry then
      Bus.transact_call t.bus ~kind:Bus.Upgr ~at:(Machine.clock node)
        ~words:ctrl_words grant_upgr_m t ((nid lsl 40) lor b)
  | Snoop.M ->
    (* the line is writable; the fault raced a concurrent install *)
    Machine.resume node ~now:(Machine.clock node) ~cost:0 retry
  | Snoop.I | Snoop.E ->
    if request t node b ~retry then
      Bus.transact_call t.bus ~kind:Bus.Rdx ~at:(Machine.clock node)
        ~words:(data_words t) grant_rdx_m t ((nid lsl 40) lor b)

(* Capacity eviction: dirty states stage their data in the writeback
   buffer and arbitrate for a FLUSH slot; clean states drop silently. *)
let evict t node b (line : Machine.line) =
  let nid = Machine.id node in
  let st = state t b nid in
  (states_of t b).(nid) <- Snoop.I;
  (* the machine removes the line after this handler returns *)
  if Snoop.writeback_on_evict st then begin
    Stats.Handle.incr t.hs.h_writebacks;
    Hashtbl.replace t.wb b (Block.copy line.Machine.data);
    Bus.transact_call t.bus ~kind:Bus.Flush ~at:(Machine.clock node)
      ~words:(data_words t) grant_flush_m t b
  end

let note_directive t node name =
  Machine.trace_emit t.mach ~time:(Machine.clock node)
    (Machine.Trace.Directive { node = Machine.id node; name })

(* LCM and stale-data directives are memory-system hints with no meaning
   under a coherent bus: programs compiled for LCM run unchanged (the
   paper's portability argument), so every directive degrades to a no-op
   rather than an error. *)
let directive t node d ~retry =
  (match d with
  | Memeff.Mark_modification _ -> note_directive t node "mark_modification"
  | Memeff.Flush_copies -> note_directive t node "flush_copies"
  | Stale.Pin_stale _ -> note_directive t node "pin_stale"
  | Stale.Refresh _ -> note_directive t node "refresh"
  | _ -> failwith "Proto_snoop: unknown memory-system directive");
  retry ()

(* ------------------------------------------------------------------ *)
(* Phases                                                              *)
(* ------------------------------------------------------------------ *)

let begin_parallel t =
  if Machine.active_fibers t.mach > 0 then
    failwith "Proto.begin_parallel: fibers still running";
  Machine.set_phase t.mach `Parallel

(* Bus protocols are coherent: reconciliation is just the end-of-phase
   barrier (drain, synchronize clocks, advance the epoch).  The same
   Barrier timing models price it, so directory-vs-snoop comparisons use
   identical barrier costs. *)
let reconcile t =
  if Machine.active_fibers t.mach > 0 then
    failwith "Proto.reconcile: fibers still running";
  Machine.run_to_quiescence t.mach;
  let nnodes = Machine.nnodes t.mach in
  let join_times =
    Array.init nnodes (fun i -> Machine.clock (Machine.node t.mach i))
  in
  Array.iteri
    (fun i jt ->
      Machine.trace_emit t.mach ~time:jt (Machine.Trace.Barrier_enter { node = i }))
    join_times;
  let release =
    Barrier.release_time ~costs:(Machine.costs t.mach) ~style:t.barrier
      ~join_times
  in
  Array.iter
    (fun jt -> Stats.Handle.add t.hs.h_barrier_wait (release - jt))
    join_times;
  Machine.set_all_clocks t.mach release;
  Machine.incr_epoch t.mach;
  Machine.trace_emit t.mach ~time:release
    (Machine.Trace.Barrier_release { nnodes });
  Machine.trace_emit t.mach ~time:release
    (Machine.Trace.Epoch_advance { epoch = Machine.epoch t.mach });
  Machine.set_phase t.mach `Sequential

let register_reduction t ~base ~nwords op =
  List.iter
    (fun b -> Hashtbl.replace t.reductions b op)
    (Gmem.region_blocks (Machine.gmem t.mach) base ~nwords)

let conflicts _ = []
let races _ = []

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let dump_block t b =
  match home_of t b with
  | exception Invalid_argument _ -> Printf.sprintf "block %d: unallocated" b
  | home ->
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "block %d (home %d, %s):" b home t.pol.Policy.name);
    (match Hashtbl.find_opt t.states b with
    | None -> Buffer.add_string buf " untouched"
    | Some sts ->
      Array.iteri
        (fun nid st ->
          if st <> Snoop.I then
            Buffer.add_string buf
              (Printf.sprintf " %d:%s" nid (Snoop.state_to_string st)))
        sts);
    if Hashtbl.mem t.wb b then Buffer.add_string buf " WB-PENDING";
    Buffer.contents buf

let owner_state = function Snoop.M | Snoop.O | Snoop.E -> true | _ -> false

let check_invariants t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if Hashtbl.length t.wb > 0 then
    Hashtbl.iter
      (fun b _ -> err "block %d: writeback buffered while quiescent" b)
      t.wb;
  Array.iteri
    (fun nid tbl ->
      Hashtbl.iter
        (fun b _ -> err "block %d: node %d has a pending retry while quiescent" b nid)
        tbl)
    t.pending_retries;
  Hashtbl.iter
    (fun b sts ->
      let master = Machine.master t.mach b in
      let owners = ref [] and sharers = ref [] in
      Array.iteri
        (fun nid st ->
          if not (Snoop.valid t.sp st) then
            err "block %d: node %d in state %s, invalid under %s" b nid
              (Snoop.state_to_string st) t.pol.Policy.name;
          (match st with
          | Snoop.M | Snoop.O | Snoop.E -> owners := (nid, st) :: !owners
          | Snoop.S -> sharers := nid :: !sharers
          | Snoop.I -> ());
          match st with
          | Snoop.I -> (
            match Machine.find_line (Machine.node t.mach nid) b with
            | Some line when line.Machine.tag <> Tag.Invalid ->
              err "block %d: node %d caches a line in state I" b nid
            | Some _ | None -> ())
          | st -> (
            match Machine.find_line (Machine.node t.mach nid) b with
            | None -> err "block %d: node %d in state %s holds no line" b nid
                        (Snoop.state_to_string st)
            | Some line when line.Machine.tag <> Snoop.tag_of_state st ->
              err "block %d: node %d state %s but tag %s" b nid
                (Snoop.state_to_string st)
                (Tag.to_string line.Machine.tag)
            | Some _ -> ()))
        sts;
      (match !owners with
      | [] | [ _ ] -> ()
      | os ->
        err "block %d: multiple owner states: %s" b
          (String.concat ", "
             (List.map
                (fun (n, s) -> Printf.sprintf "%d:%s" n (Snoop.state_to_string s))
                os)));
      (match !owners with
      | [ (onid, (Snoop.M | Snoop.E)) ] when !sharers <> [] ->
        err "block %d: sharers coexist with node %d's exclusive state" b onid
      | _ -> ());
      (* data: with no dirty owner, every copy equals memory; with an
         Owned holder, the sharers equal the owner (memory may be stale) *)
      let truth =
        match !owners with
        | [ (onid, (Snoop.M | Snoop.O)) ] -> (
          match Machine.find_line (Machine.node t.mach onid) b with
          | Some line -> line.Machine.data
          | None -> master)
        | _ -> master
      in
      Array.iteri
        (fun nid st ->
          if st <> Snoop.I && not (owner_state st) then
            match Machine.find_line (Machine.node t.mach nid) b with
            | Some line when not (Block.equal line.Machine.data truth) ->
              err "block %d: node %d's %s copy diverges from %s" b nid
                (Snoop.state_to_string st)
                (match !owners with
                | [ (_, (Snoop.M | Snoop.O)) ] -> "the owner"
                | _ -> "memory")
            | Some _ | None -> ())
        sts;
      (* E is clean: it must equal memory *)
      List.iter
        (fun (nid, st) ->
          if st = Snoop.E then
            match Machine.find_line (Machine.node t.mach nid) b with
            | Some line when not (Block.equal line.Machine.data master) ->
              err "block %d: node %d's Exclusive copy diverges from memory" b nid
            | Some _ | None -> ())
        !owners)
    t.states;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let peek t addr =
  let g = Machine.gmem t.mach in
  let b = Gmem.block_of_addr g addr in
  let off = Gmem.offset_in_block g addr in
  let from_owner () =
    match Hashtbl.find_opt t.states b with
    | None -> None
    | Some sts ->
      let found = ref None in
      Array.iteri
        (fun nid st ->
          if !found = None && owner_state st then
            match Machine.find_line (Machine.node t.mach nid) b with
            | Some line -> found := Some line.Machine.data.(off)
            | None -> ())
        sts;
      !found
  in
  (* an in-flight writeback is fresher than memory *)
  match from_owner () with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt t.wb b with
    | Some data -> data.(off)
    | None -> (Machine.master t.mach b).(off))

let poke t addr v =
  let g = Machine.gmem t.mach in
  let b = Gmem.block_of_addr g addr in
  let off = Gmem.offset_in_block g addr in
  (match Hashtbl.find_opt t.states b with
  | Some sts ->
    Array.iteri
      (fun nid st ->
        if st <> Snoop.I then
          failwith
            (Printf.sprintf "Proto.poke: block %d cached at node %d" b nid))
      sts
  | None -> ());
  (Machine.master t.mach b).(off) <- v

let install ?(capacity_evictions = true) ?(barrier = Barrier.Constant)
    ~policy:pol mach =
  let sp =
    match pol.Policy.family with
    | Policy.Snoop sp -> sp
    | Policy.Directory _ ->
      invalid_arg "Proto_snoop.install: directory policies ride Proto_dir"
  in
  Machine.set_home_backing mach false;
  let nnodes = Machine.nnodes mach in
  let t =
    {
      mach;
      pol;
      sp;
      hs = resolve_handles (Machine.stats mach);
      bus =
        Bus.create ~engine:(Machine.engine mach) ~costs:(Machine.costs mach)
          ~stats:(Machine.stats mach) ();
      barrier;
      states = Hashtbl.create 4096;
      wb = Hashtbl.create 16;
      reductions = Hashtbl.create 64;
      pending_retries = Array.init nnodes (fun _ -> Hashtbl.create 16);
    }
  in
  Machine.set_handlers mach
    ~read_fault:(fun node ~addr ~retry -> read_fault t node ~addr ~retry)
    ~write_fault:(fun node ~addr ~retry -> write_fault t node ~addr ~retry)
    ~directive:(fun node d ~retry -> directive t node d ~retry);
  if capacity_evictions then
    Machine.set_evict_handler mach (fun node b line -> evict t node b line);
  t
