(** Reconcilable Shared Memory policies.

    Section 3 of the paper defines RSM as a family of protocols that differ
    in exactly two program-controlled decisions:

    + the action taken in response to a {e request} for a location — in
      particular, whether a write request receives an exclusive copy (after
      invalidating all others, as in conventional coherent memory) or an
      {e LCM copy} that is private, writable and allowed to coexist with
      other writable copies; and
    + how multiple returned copies are {e reconciled} at the home —
      overwrite for exclusive copies, per-word last-writer-wins or a
      registered {!Reduction.t} for LCM copies.

    A {!t} captures the request-side decisions; the reconcile side is the
    per-region reduction registry held by the protocol engine.  The three
    systems measured in the paper are {!stache}, {!lcm_scc} and
    {!lcm_mcc}. *)

type write_grant =
  | Exclusive
      (** sequentially-consistent behaviour: one writable copy at a time *)
  | Lcm_copy
      (** loosely-coherent behaviour: a private inconsistent copy;
          memory reconciles at the next [reconcile_copies] *)

type t = {
  name : string;
  parallel_write_grant : write_grant;
      (** what a write fault during a parallel phase receives *)
  local_clean_copies : bool;
      (** LCM-mcc: marking nodes snapshot a local clean copy and restore
          from it after a flush, preserving locality; LCM-scc and Stache
          keep clean copies only at the home *)
  update_on_reconcile : bool;
      (** reconciliation pushes the new value to outstanding read-only
          copies instead of invalidating them — the update-based member of
          the RSM family ("update-based systems reconcile ... by assigning
          the new value to all copies", §3).  Costs a data message per copy
          at reconcile time but saves the re-fetch when consumers
          re-reference. *)
}

val stache : t
(** The baseline: user-level sequentially-consistent directory protocol
    (Reinhardt et al.'s Stache), expressed as the degenerate RSM policy. *)

val lcm_scc : t
(** LCM with a single clean copy at the block's home node. *)

val lcm_mcc : t
(** LCM with clean copies on every node that obtains a marked block. *)

val lcm_mcc_update : t
(** LCM-mcc with update-based reconciliation: outstanding read-only copies
    of modified blocks are refreshed in place at [reconcile_copies] rather
    than invalidated. *)

val of_string : string -> (t, string) result
(** Accepts ["stache"], ["lcm-scc"], ["lcm-mcc"], ["lcm-mcc-update"]. *)

val is_lcm : t -> bool
