(** Coherence-policy descriptions and the policy registry.

    A {!t} is pure data naming a point in the protocol design space; the
    engine that interprets it lives in {!Proto}.  Two families exist:

    - {b Directory} — the paper's RSM family (Section 3): a home-node
      full-directory protocol whose members differ in exactly two
      program-controlled decisions: whether a write request receives an
      exclusive copy (after invalidating all others, as in conventional
      coherent memory) or an {e LCM copy} that is private, writable and
      allowed to coexist with other writable copies; and how returned
      copies reconcile at the home.
    - {b Snoop} — conventional snooping-bus invalidation protocols
      (MSI/MESI/MOESI) riding the shared-bus interconnect model
      ({!Lcm_net.Bus}); the comparison baseline for the directory-vs-bus
      crossover experiments.

    The {!all} registry is the single source of truth for which policies
    exist: the stress harness, the harness [Config] systems and the
    [lcm_sim] CLI choices all derive their lists from it. *)

type write_grant =
  | Exclusive
      (** sequentially-consistent behaviour: one writable copy at a time *)
  | Lcm_copy
      (** loosely-coherent behaviour: a private inconsistent copy;
          memory reconciles at the next [reconcile_copies] *)

type directory = {
  parallel_write_grant : write_grant;
      (** what a write fault during a parallel phase receives *)
  local_clean_copies : bool;
      (** LCM-mcc: marking nodes snapshot a local clean copy and restore
          from it after a flush, preserving locality; LCM-scc and Stache
          keep clean copies only at the home *)
  update_on_reconcile : bool;
      (** reconciliation pushes the new value to outstanding read-only
          copies instead of invalidating them — the update-based member of
          the RSM family ("update-based systems reconcile ... by assigning
          the new value to all copies", §3).  Costs a data message per copy
          at reconcile time but saves the re-fetch when consumers
          re-reference. *)
}

type snoop = {
  exclusive_state : bool;
      (** MESI/MOESI: a read miss with no other cached copy fills
          Exclusive, so the first store upgrades silently (no bus
          transaction) *)
  owned_state : bool;
      (** MOESI: a Modified line hit by a bus read downgrades to Owned and
          keeps supplying the dirty data cache-to-cache instead of writing
          memory back *)
}

type family = Directory of directory | Snoop of snoop

type t = { name : string; family : family }

val stache : t
(** The baseline: user-level sequentially-consistent directory protocol
    (Reinhardt et al.'s Stache), expressed as the degenerate RSM policy. *)

val lcm_scc : t
(** LCM with a single clean copy at the block's home node. *)

val lcm_mcc : t
(** LCM with clean copies on every node that obtains a marked block. *)

val lcm_mcc_update : t
(** LCM-mcc with update-based reconciliation: outstanding read-only copies
    of modified blocks are refreshed in place at [reconcile_copies] rather
    than invalidated. *)

val msi : t
(** Snooping-bus invalidation protocol with Modified/Shared/Invalid line
    states. *)

val mesi : t
(** MSI plus the Exclusive state: unshared read fills upgrade to Modified
    without a bus transaction. *)

val moesi : t
(** MESI plus the Owned state: dirty data is shared cache-to-cache without
    a memory writeback until the owner evicts. *)

(** {1 The registry} *)

type info = {
  policy : t;
  label : string;
      (** presentation label (e.g. "Stache+copy", "MESI") — the harness
          Config system labels and figure legends derive from it *)
  aliases : string list;  (** accepted [of_string] spellings besides [name] *)
  summary : string;  (** one-line description for [--help] and docs *)
}

val all : info list
(** Every registered policy, in presentation order (the four directory
    policies, then MSI/MESI/MOESI). *)

val policies : t list
(** [List.map (fun i -> i.policy) all]. *)

val names : string list
(** Canonical names, in registry order. *)

val spellings : string list
(** Every accepted spelling per policy, canonical name first, joined with
    ["|"] (e.g. ["lcm-mcc-update|mcc-update|update"]) — the vocabulary the
    parse error and the CLI help enumerate. *)

val of_string : string -> (t, string) result
(** Case-insensitive lookup by canonical name or alias.  The error message
    enumerates every accepted spelling. *)

val is_lcm : t -> bool
(** Whether parallel-phase writes receive private LCM copies (the
    directory family with [Lcm_copy] grants). *)

val is_snoop : t -> bool
