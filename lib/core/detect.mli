(** Records produced by reconcile-time semantic-violation detection.

    Sections 7.2–7.3 of the paper: because LCM already tracks which words
    each processor modified, reconciliation can detect (a) two invocations
    writing the same word — a write/write conflict that violates C\*\*'s
    "exactly one modified value" guarantee or Steele's no-conflicting-
    side-effects semantics — and (b) a block both read and written during
    the same parallel phase — a read/write race under more traditional
    semantics.

    {b Limitation}: accesses a node makes to blocks homed on itself hit
    local memory without raising a protocol request, so reads by the home
    node are invisible to race detection (write/write detection is
    unaffected — every modified copy flushes through reconciliation).  The
    paper's scheme has the same property unless home pages are also tagged
    to fault locally. *)

type conflict = {
  block : int;  (** global block number *)
  words : Lcm_util.Mask.t;  (** word indices written by more than one copy *)
  writer : int;  (** the node whose flush collided *)
}

type race = {
  block : int;
  readers : int list;  (** nodes that read the block during the phase *)
}

val pp_conflict : Format.formatter -> conflict -> unit

val pp_race : Format.formatter -> race -> unit
