(* Pure transition tables for the snooping-bus family, in the ASM style of
   protocol specification: every rule is a total function from (policy
   knobs, observed state) to the next state, with no engine state in
   sight.  Proto_snoop owns transport (the bus), waiter queues and barrier
   bookkeeping; everything protocol-specific lives here, so the tables can
   be read against a textbook MSI/MESI/MOESI description directly. *)

module Tag = Lcm_tempest.Tag

type state = I | S | E | O | M

let state_to_string = function
  | I -> "I"
  | S -> "S"
  | E -> "E"
  | O -> "O"
  | M -> "M"

let valid (sp : Policy.snoop) = function
  | I | S | M -> true
  | E -> sp.Policy.exclusive_state
  | O -> sp.Policy.owned_state

(* A cached copy's machine-level tag.  Only M maps to Writable: stores to
   S/E/O lines must fault so the protocol sees the write intent — E's
   upgrade is then free (no bus transaction), which is exactly MESI's
   advantage, charged only the fault trap. *)
let tag_of_state = function
  | M -> Tag.Writable
  | S | E | O -> Tag.Read_only
  | I -> Tag.Invalid

let readable = function S | E | O | M -> true | I -> false

(* ------------------------------------------------------------------ *)
(* Requester-side fill states                                          *)
(* ------------------------------------------------------------------ *)

(* State a read miss fills, given whether any other cache holds a copy
   after the snoop. *)
let fill_on_read (sp : Policy.snoop) ~others_present =
  if (not others_present) && sp.Policy.exclusive_state then E else S

(* A write miss (BUS_RDX) or completed upgrade always fills Modified. *)
let fill_on_write = M

(* Only a silent (bus-free) upgrade is allowed from E; S and O must
   broadcast BUS_UPGR so other copies invalidate. *)
let silent_upgrade_ok = function E -> true | I | S | O | M -> false

(* ------------------------------------------------------------------ *)
(* Snooper-side responses                                              *)
(* ------------------------------------------------------------------ *)

type supply =
  | From_memory  (* memory (the master copy) provides the data *)
  | Cache_to_cache  (* this snooper supplies the line on the bus *)

type reaction = {
  next : state;
  supplies : bool;  (* this snooper puts the data on the bus *)
  writes_memory : bool;  (* and also updates the master copy *)
}

(* What a snooper holding [st] does when it observes a BUS_RD.  MOESI
   keeps dirty data cache-to-cache (M -> O, memory stays stale); MSI/MESI
   write memory back and downgrade to S. *)
let on_bus_rd (sp : Policy.snoop) st =
  match st with
  | M ->
    if sp.Policy.owned_state then
      { next = O; supplies = true; writes_memory = false }
    else { next = S; supplies = true; writes_memory = true }
  | O -> { next = O; supplies = true; writes_memory = false }
  | E -> { next = S; supplies = true; writes_memory = false }
  | S -> { next = S; supplies = false; writes_memory = false }
  | I -> { next = I; supplies = false; writes_memory = false }

(* What a snooper does on BUS_RDX (or the invalidation half of BUS_UPGR):
   a dirty holder supplies the current value to the requester — who
   becomes the new Modified owner, so memory can stay stale — and every
   copy invalidates. *)
let on_bus_rdx st =
  match st with
  | M | O | E -> { next = I; supplies = true; writes_memory = false }
  | S -> { next = I; supplies = false; writes_memory = false }
  | I -> { next = I; supplies = false; writes_memory = false }

(* Eviction: which states owe memory a writeback when dropped.  E and S
   are clean (memory or the Owned holder is current); M always, O because
   the Owned holder is the only up-to-date copy of a dirty line. *)
let writeback_on_evict = function M | O -> true | I | S | E -> false
