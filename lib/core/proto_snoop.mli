(** The snooping-bus protocol engine for the MSI/MESI/MOESI family.

    The counterpart of {!Proto_dir}: where the directory engine coheres
    through per-block home directories and point-to-point messages, this
    engine broadcasts every miss on a single arbitrated {!Lcm_net.Bus}
    and lets every cache snoop it.  {!Snoop} holds the pure per-policy
    transition tables; this module owns only transport, waiter queues,
    the writeback buffer and barrier bookkeeping — the same division of
    labour as the directory side.  Use {!Proto} unless you specifically
    need the concrete engine type.

    Transactions (BUS_RD, BUS_RDX, BUS_UPGR, FLUSH) serialize through bus
    arbitration and apply their state changes atomically at completion,
    so the engine needs no transient directory states.  Dirty snoopers
    supply requested lines cache-to-cache; evicted dirty lines wait in a
    writeback buffer that intervening transactions consult (and consume)
    before memory, resolving the Owned/Modified-writeback-versus-BUS_RDX
    race.  Home backing lines are disabled: every node arbitrates for the
    bus regardless of where a block is homed.

    Because bus protocols are coherent, {!reconcile} is only the
    end-of-phase barrier, and LCM/stale-data directives degrade to no-ops
    — programs compiled for LCM run unchanged (the paper's portability
    argument, mirrored from the Stache behaviour).

    The bus is a reliable medium: {!Lcm_net.Faults} plans shape the
    point-to-point network and do not apply to bus transactions. *)

type t

val install :
  ?capacity_evictions:bool ->
  ?barrier:Barrier.style ->
  policy:Policy.t ->
  Lcm_tempest.Machine.t ->
  t
(** [install ~policy machine] registers the engine: claims the fault,
    directive and (when [capacity_evictions], default true) eviction
    hooks, creates the shared bus, and disables home backing lines — so
    it must run before any block of [machine] is touched.
    @raise Invalid_argument if [policy] is not in the snooping family. *)

val policy : t -> Policy.t
val machine : t -> Lcm_tempest.Machine.t

val register_reduction : t -> base:int -> nwords:int -> Reduction.t -> unit
(** Accepted for API parity with the directory engine.  Reductions under
    a coherent bus execute as ordinary atomic read-modify-writes, so the
    operator table is recorded but never consulted. *)

val begin_parallel : t -> unit

val reconcile : t -> unit
(** End-of-phase barrier: drain the machine, synchronize all node clocks
    to the {!Barrier.release_time} of their join times, advance the
    epoch.  No data movement — the bus kept memory coherent throughout. *)

val conflicts : t -> Detect.conflict list
(** Always empty: conflict detection is an LCM reconciliation feature. *)

val races : t -> Detect.race list
(** Always empty. *)

val dump_block : t -> int -> string
(** One-line description of a block's per-node MOESI states and whether
    a writeback is buffered for it. *)

val check_invariants : t -> (unit, string list) result
(** Audit the global protocol state when quiescent:

    - every recorded state is admitted by the policy (no E under MSI, no
      O under MSI/MESI), and matches the machine's line table (state and
      tag agree; I holds no line);
    - at most one owner-state (M/E/O) holder per block, and M/E exclude
      all other copies;
    - with no dirty owner every cached copy equals memory; with an Owned
      holder every Shared copy equals the owner's data (memory may be
      stale); Exclusive copies equal memory;
    - the writeback buffer and all waiter queues are empty. *)

val peek : t -> int -> int
(** Coherent read bypassing the simulation: the M/E/O holder's copy if
    one exists, else a buffered writeback, else memory. *)

val poke : t -> int -> int -> unit
(** Direct write to memory; raises [Failure] if any node caches the
    block. *)
