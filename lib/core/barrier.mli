(** Reconciliation-barrier timing models.

    [reconcile_copies()] ends with a global barrier: every node joins once
    its flushes are acknowledged, and all nodes release together.  The
    paper notes that reconciliation "could be organized as a tree-
    structured reduction" if the barrier became a bottleneck on large
    systems (§5.1).  This module prices both organisations:

    - [Constant]: an abstract barrier costing
      [barrier_base + nnodes * barrier_per_node] cycles after the last
      join — the default, calibrated like a hardware barrier network (the
      CM-5 had one);
    - [Flat]: every node sends a join message to a coordinator whose
      protocol processor handles them serially, then broadcasts release —
      linear in [P];
    - [Tree arity]: joins combine up an [arity]-ary tree and the release
      broadcasts back down — logarithmic depth, the paper's suggestion.

    The models are analytic (they map join times to a release time) so
    they can be swapped without re-running the event simulation. *)

type style = Constant | Flat | Tree of int

val release_time :
  costs:Lcm_sim.Costs.t -> style:style -> join_times:int array -> int
(** [release_time ~costs ~style ~join_times] is the cycle at which every
    node resumes, given each node's join time.
    @raise Invalid_argument on an empty array or [Tree arity] with
    [arity < 2]. *)

val of_string : string -> (style, string) result
(** ["constant"], ["flat"], ["tree:<arity>"]. *)

val to_string : style -> string
