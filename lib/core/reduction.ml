open Lcm_mem

type t = {
  name : string;
  identity : Word.t;
  apply : Word.t -> Word.t -> Word.t;
  combine : clean:Word.t -> current:Word.t -> incoming:Word.t -> Word.t;
}

let int_sum =
  {
    name = "int_sum";
    identity = Word.of_int 0;
    apply = (fun a b -> Word.of_int (Word.to_int a + Word.to_int b));
    combine =
      (fun ~clean ~current ~incoming ->
        let contribution = Word.to_int incoming - Word.to_int clean in
        Word.of_int (Word.to_int current + contribution));
  }

let f32_sum =
  {
    name = "f32_sum";
    identity = Word.of_float 0.0;
    apply = Word.float_add;
    combine =
      (fun ~clean ~current ~incoming ->
        let contribution = Word.to_float incoming -. Word.to_float clean in
        Word.of_float (Word.to_float current +. contribution));
  }

let int_min =
  {
    name = "int_min";
    identity = Word.of_int 0x7FFFFFFF;
    apply = (fun a b -> Word.of_int (min (Word.to_int a) (Word.to_int b)));
    combine =
      (fun ~clean:_ ~current ~incoming ->
        Word.of_int (min (Word.to_int current) (Word.to_int incoming)));
  }

let int_max =
  {
    name = "int_max";
    identity = Word.of_int (-0x80000000);
    apply = (fun a b -> Word.of_int (max (Word.to_int a) (Word.to_int b)));
    combine =
      (fun ~clean:_ ~current ~incoming ->
        Word.of_int (max (Word.to_int current) (Word.to_int incoming)));
  }

let f32_min =
  {
    name = "f32_min";
    identity = Word.of_float infinity;
    apply = Word.float_min;
    combine = (fun ~clean:_ ~current ~incoming -> Word.float_min current incoming);
  }

let f32_max =
  {
    name = "f32_max";
    identity = Word.of_float neg_infinity;
    apply = Word.float_max;
    combine = (fun ~clean:_ ~current ~incoming -> Word.float_max current incoming);
  }

let band =
  {
    name = "band";
    identity = Word.of_int (-1);
    apply = (fun a b -> a land b);
    combine = (fun ~clean:_ ~current ~incoming -> current land incoming);
  }

let bor =
  {
    name = "bor";
    identity = Word.of_int 0;
    apply = (fun a b -> a lor b);
    combine = (fun ~clean:_ ~current ~incoming -> current lor incoming);
  }

let bxor =
  {
    name = "bxor";
    identity = Word.of_int 0;
    apply = (fun a b -> Word.of_int (Word.to_int a lxor Word.to_int b));
    combine =
      (fun ~clean ~current ~incoming ->
        (* the contribution is incoming xor clean *)
        Word.of_int (Word.to_int current lxor (Word.to_int incoming lxor Word.to_int clean)));
  }

let all = [ int_sum; f32_sum; int_min; int_max; f32_min; f32_max; band; bor; bxor ]

let of_string name =
  match List.find_opt (fun op -> op.name = name) all with
  | Some op -> Ok op
  | None -> Error (Printf.sprintf "unknown reduction %S" name)
