type Lcm_tempest.Memeff.dir += Pin_stale of int | Refresh of int

let pin addr = Lcm_tempest.Memeff.directive (Pin_stale addr)

let refresh addr = Lcm_tempest.Memeff.directive (Refresh addr)
