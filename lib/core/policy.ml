type write_grant = Exclusive | Lcm_copy

type t = {
  name : string;
  parallel_write_grant : write_grant;
  local_clean_copies : bool;
  update_on_reconcile : bool;
}

let stache =
  {
    name = "stache";
    parallel_write_grant = Exclusive;
    local_clean_copies = false;
    update_on_reconcile = false;
  }

let lcm_scc =
  {
    name = "lcm-scc";
    parallel_write_grant = Lcm_copy;
    local_clean_copies = false;
    update_on_reconcile = false;
  }

let lcm_mcc =
  {
    name = "lcm-mcc";
    parallel_write_grant = Lcm_copy;
    local_clean_copies = true;
    update_on_reconcile = false;
  }

let lcm_mcc_update = { lcm_mcc with name = "lcm-mcc-update"; update_on_reconcile = true }

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "stache" -> Ok stache
  | "lcm-scc" | "scc" -> Ok lcm_scc
  | "lcm-mcc" | "mcc" -> Ok lcm_mcc
  | "lcm-mcc-update" | "mcc-update" | "update" -> Ok lcm_mcc_update
  | other -> Error (Printf.sprintf "unknown protocol %S" other)

let is_lcm p = p.parallel_write_grant = Lcm_copy
