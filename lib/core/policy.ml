type write_grant = Exclusive | Lcm_copy

type directory = {
  parallel_write_grant : write_grant;
  local_clean_copies : bool;
  update_on_reconcile : bool;
}

type snoop = { exclusive_state : bool; owned_state : bool }

type family = Directory of directory | Snoop of snoop

type t = { name : string; family : family }

let stache =
  {
    name = "stache";
    family =
      Directory
        {
          parallel_write_grant = Exclusive;
          local_clean_copies = false;
          update_on_reconcile = false;
        };
  }

let lcm_scc =
  {
    name = "lcm-scc";
    family =
      Directory
        {
          parallel_write_grant = Lcm_copy;
          local_clean_copies = false;
          update_on_reconcile = false;
        };
  }

let lcm_mcc =
  {
    name = "lcm-mcc";
    family =
      Directory
        {
          parallel_write_grant = Lcm_copy;
          local_clean_copies = true;
          update_on_reconcile = false;
        };
  }

let lcm_mcc_update =
  {
    name = "lcm-mcc-update";
    family =
      Directory
        {
          parallel_write_grant = Lcm_copy;
          local_clean_copies = true;
          update_on_reconcile = true;
        };
  }

let msi =
  { name = "msi"; family = Snoop { exclusive_state = false; owned_state = false } }

let mesi =
  { name = "mesi"; family = Snoop { exclusive_state = true; owned_state = false } }

let moesi =
  { name = "moesi"; family = Snoop { exclusive_state = true; owned_state = true } }

(* ------------------------------------------------------------------ *)
(* The registry: the single source of truth for which policies exist.  *)
(* Every other list of policies (the stress harness, the harness       *)
(* Config systems, the lcm_sim CLI choices) derives from [all].        *)
(* ------------------------------------------------------------------ *)

type info = { policy : t; label : string; aliases : string list; summary : string }

let all =
  [
    {
      policy = stache;
      label = "Stache+copy";
      aliases = [];
      summary = "directory; sequentially-consistent single-writer (baseline)";
    };
    {
      policy = lcm_scc;
      label = "LCM-scc";
      aliases = [ "scc" ];
      summary = "directory; LCM, single clean copy at the home";
    };
    {
      policy = lcm_mcc;
      label = "LCM-mcc";
      aliases = [ "mcc" ];
      summary = "directory; LCM, clean copies on every caching node";
    };
    {
      policy = lcm_mcc_update;
      label = "LCM-mcc-update";
      aliases = [ "mcc-update"; "update" ];
      summary = "directory; LCM-mcc with update-based reconciliation";
    };
    {
      policy = msi;
      label = "MSI";
      aliases = [];
      summary = "snooping bus; Modified/Shared/Invalid";
    };
    {
      policy = mesi;
      label = "MESI";
      aliases = [];
      summary = "snooping bus; MSI plus a silent-upgrade Exclusive state";
    };
    {
      policy = moesi;
      label = "MOESI";
      aliases = [];
      summary = "snooping bus; MESI plus an Owned dirty-sharing state";
    };
  ]

let policies = List.map (fun i -> i.policy) all

let names = List.map (fun i -> i.policy.name) all

let spellings =
  (* every accepted spelling, canonical name first — the vocabulary the
     parse error enumerates *)
  List.map (fun i -> String.concat "|" (i.policy.name :: i.aliases)) all

let of_string s =
  let key = String.lowercase_ascii (String.trim s) in
  match
    List.find_opt (fun i -> i.policy.name = key || List.mem key i.aliases) all
  with
  | Some i -> Ok i.policy
  | None ->
    Error
      (Printf.sprintf "unknown protocol %S (expected one of: %s)" key
         (String.concat ", " spellings))

let is_lcm p =
  match p.family with
  | Directory d -> d.parallel_write_grant = Lcm_copy
  | Snoop _ -> false

let is_snoop p = match p.family with Snoop _ -> true | Directory _ -> false
