type conflict = { block : int; words : Lcm_util.Mask.t; writer : int }

type race = { block : int; readers : int list }

let pp_conflict ppf (c : conflict) =
  Format.fprintf ppf "write/write conflict: block %d words %a (writer %d)" c.block
    Lcm_util.Mask.pp c.words c.writer

let pp_race ppf (r : race) =
  Format.fprintf ppf "read/write race: block %d readers [%s]" r.block
    (String.concat ";" (List.map string_of_int r.readers))
