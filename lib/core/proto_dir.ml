module ISet = Lcm_util.Nodeset
module Machine = Lcm_tempest.Machine
module Memeff = Lcm_tempest.Memeff
module Tag = Lcm_tempest.Tag
module Block = Lcm_mem.Block
module Gmem = Lcm_mem.Gmem
module Mask = Lcm_util.Mask
module Stats = Lcm_util.Stats

(* ------------------------------------------------------------------ *)
(* Directory state                                                     *)
(* ------------------------------------------------------------------ *)

type dstate =
  | Home_owned  (* master valid at home; no remote copies *)
  | Shared of ISet.t  (* read-only copies at these remote nodes *)
  | Exclusive of int  (* one remote writable copy; master stale *)

type want = Want_ro | Want_rw | Want_lcm

let want_code = function Want_ro -> 0 | Want_rw -> 1 | Want_lcm -> 2
let want_of_code = function 0 -> Want_ro | 1 -> Want_rw | _ -> Want_lcm

(* A queued request at the home: pooled (see [wpool]) — cells are
   acquired only when a request must park (busy entry, pending recall or
   invalidation) and recycled the moment it is served, so the grant fast
   path touches no waiter cell at all. *)
type waiter = { mutable want : want; mutable requester : int }

type busy =
  | Recalling of waiter
  | Invalidating of { mutable acks_left : int; waiter : waiter }

type entry = {
  block : int;
  mutable dstate : dstate;
  mutable busy : busy option;
  waiting : waiter Queue.t;
  mutable lcm_holders : ISet.t;  (* nodes granted an LCM copy this epoch *)
  mutable shadow : Block.t option;  (* pending reconciled value *)
  mutable shadow_mask : Mask.t;  (* words merged into the shadow *)
  mutable shadow_epoch : int;
  mutable readers : ISet.t;  (* parallel-phase readers (detection only) *)
  mutable readers_epoch : int;
}

(* Reconciliation barrier bookkeeping. *)
type rstate = {
  mutable joined : int;
  mutable join_time : int;
  join_times : int array;  (* per-node join instants *)
  done_times : int array;
      (* per-node completion instants: the join, raised by any sweep
         invalidation acks the node's homes receive — the inputs to the
         barrier-release model *)
  mutable inval_acks_left : int;
  mutable last_ack_time : int;
  mutable finished : bool;
}

(* Counters on the protocol fast paths, resolved once at [install] so the
   handlers never hash a counter name (see Stats.Handle).  Names are
   unchanged — these are aliases, not new counters. *)
type handles = {
  h_fetch_local : Stats.Handle.counter;
  h_fetch_remote : Stats.Handle.counter;
  h_recalls : Stats.Handle.counter;
  h_invals : Stats.Handle.counter;
  h_writebacks : Stats.Handle.counter;
  h_marks : Stats.Handle.counter;
  h_mark_local : Stats.Handle.counter;
  h_mark_remote : Stats.Handle.counter;
  h_implicit_marks : Stats.Handle.counter;
  h_flush_blocks : Stats.Handle.counter;
  h_flushes_received : Stats.Handle.counter;
  h_conflicts : Stats.Handle.counter;
  h_snapshot_refreshes : Stats.Handle.counter;
  h_local_restores : Stats.Handle.counter;
  h_clean_copies : Stats.Handle.counter;
  h_live_clean_copies : Stats.Handle.counter;
  h_peak_clean_copies : Stats.Handle.gauge;
  h_reconcile_invals : Stats.Handle.counter;
  h_reconcile_updates : Stats.Handle.counter;
  h_reconciled_blocks : Stats.Handle.counter;
  h_barrier_wait : Stats.Handle.counter;
  h_strict_invals : Stats.Handle.counter;
  h_survived_invals : Stats.Handle.counter;
  h_stale_pins : Stats.Handle.counter;
  h_stale_refreshes : Stats.Handle.counter;
}

let resolve_handles s =
  {
    h_fetch_local = Stats.counter s "proto.fetch_local";
    h_fetch_remote = Stats.counter s "proto.fetch_remote";
    h_recalls = Stats.counter s "proto.recalls";
    h_invals = Stats.counter s "proto.invals";
    h_writebacks = Stats.counter s "proto.writebacks";
    h_marks = Stats.counter s "lcm.marks";
    h_mark_local = Stats.counter s "lcm.mark_local";
    h_mark_remote = Stats.counter s "lcm.mark_remote";
    h_implicit_marks = Stats.counter s "lcm.implicit_marks";
    h_flush_blocks = Stats.counter s "lcm.flush_blocks";
    h_flushes_received = Stats.counter s "lcm.flushes_received";
    h_conflicts = Stats.counter s "lcm.conflicts";
    h_snapshot_refreshes = Stats.counter s "lcm.snapshot_refreshes";
    h_local_restores = Stats.counter s "lcm.local_restores";
    h_clean_copies = Stats.counter s "lcm.clean_copies";
    h_live_clean_copies = Stats.counter s "lcm.live_clean_copies";
    h_peak_clean_copies = Stats.gauge s "lcm.peak_clean_copies";
    h_reconcile_invals = Stats.counter s "lcm.reconcile_invals";
    h_reconcile_updates = Stats.counter s "lcm.reconcile_updates";
    h_reconciled_blocks = Stats.counter s "lcm.reconciled_blocks";
    h_barrier_wait = Stats.counter s "lcm.barrier_wait_cycles";
    h_strict_invals = Stats.counter s "detect.strict_invals";
    h_survived_invals = Stats.counter s "stale.survived_invals";
    h_stale_pins = Stats.counter s "stale.pins";
    h_stale_refreshes = Stats.counter s "stale.refreshes";
  }

type t = {
  mach : Machine.t;
  pol : Policy.t;
  dp : Policy.directory;  (* the directory-family knobs of [pol] *)
  hs : handles;
  barrier : Barrier.style;
  detect : bool;
  strict_detection : bool;
  entries : (int, entry) Hashtbl.t;
  reductions : (int, Reduction.t) Hashtbl.t;  (* block -> operator *)
  pending_retries : (int, (unit -> unit) list) Hashtbl.t array;  (* per node *)
  pending_marks : int list ref array;
      (* per node: blocks marked Lcm_modified since the last flush — so
         flush_copies touches only marked blocks instead of scanning the
         whole line table (which is quadratic at scale) *)
  pending_flush_acks : int array;
  awaiting_join : bool array;
  stale_pins : (int, unit) Hashtbl.t array;
  mutable conflicts : Detect.conflict list;
  mutable races : Detect.race list;
  mutable rec_state : rstate option;
  wpool : waiter Lcm_util.Pool.t;  (* parked-request cells, recycled on serve *)
  mutable h_data_m : Block.t -> Machine.node -> int -> int -> int -> unit;
      (* preallocated [Machine.send_call] delivery handler for data
         grants: payload = the granted copy, riders = (block, want code).
         A closure over [t], built once at [create]; the t-only handlers
         of the other hot messages are static functions instead. *)
}

let policy t = t.pol
let machine t = t.mach

let wpb t = Gmem.words_per_block (Machine.gmem t.mach)
let home_of t b = Gmem.home_of_block (Machine.gmem t.mach) b

let ctrl_words = 2
let data_words t = wpb t + 2

let get_entry t b =
  match Hashtbl.find t.entries b with
  | e -> e
  | exception Not_found ->
    (* A directory entry materialises on first touch, but only for a block
       inside allocated memory: a corrupt block number (a mangled message,
       an out-of-range probe) must fail naming the block here, not mint a
       ghost entry and surface as an anonymous Not_found downstream.  An
       existing entry implies the master copy (and the home backing line)
       already exist — entries are only created below, after [master] —
       so the hit path skips both lookups. *)
    if not (Lcm_mem.Gmem.is_allocated (Machine.gmem t.mach) b) then
      failwith
        (Printf.sprintf "Proto_dir.get_entry: block %d is not an allocated \
                         block" b);
    ignore (Machine.master t.mach b);
    let e =
      {
        block = b;
        dstate = Home_owned;
        busy = None;
        waiting = Queue.create ();
        lcm_holders = ISet.empty;
        shadow = None;
        shadow_mask = Mask.empty;
        shadow_epoch = -1;
        readers = ISet.empty;
        readers_epoch = -1;
      }
    in
    Hashtbl.add t.entries b e;
    e

(* Record a parallel-phase reader for race detection (§7.2); readers sets
   left over from earlier epochs are lazily reset.  Called both from
   [serve] (remote reads fault and reach the home) and from the machine's
   read observer (the home's own reads hit its always-readable backing
   line and never fault). *)
let note_reader t e node =
  if t.detect && Machine.phase t.mach = `Parallel then begin
    if e.readers_epoch <> Machine.epoch t.mach then begin
      e.readers <- ISet.empty;
      e.readers_epoch <- Machine.epoch t.mach
    end;
    e.readers <- ISet.add node e.readers
  end

(* §5.1 memory accounting: clean copies (home pending copies and mcc local
   snapshots) exist only during a parallel call; track the live gauge and
   its high-water mark.  Decrements for local snapshots happen in
   Machine.drop_line / install_line when their lines disappear. *)
let clean_copy_created t =
  Stats.Handle.incr t.hs.h_clean_copies;
  Stats.Handle.add t.hs.h_live_clean_copies 1;
  Stats.Handle.set_max t.hs.h_peak_clean_copies
    (Stats.Handle.value t.hs.h_live_clean_copies)

(* The home's backing line mirrors the directory state so that the home
   CPU's own accesses obey coherence: Writable when home-owned, Read_only
   when shared, Invalid when a remote node holds the block exclusively. *)
let set_home_tag t b tag =
  let home = Machine.node t.mach (home_of t b) in
  match Machine.find_line home b with
  | Some line when line.Machine.tag = Tag.Lcm_modified ->
    (* The home's line is currently a private LCM copy (the home CPU marked
       its own block); the backing-store role is suspended until the flush
       returns it.  Master reads at the home still go via [master]. *)
    ()
  | Some line -> line.Machine.tag <- tag
  | None ->
    ignore (Machine.install_line home b ~data:(Machine.master t.mach b) ~tag)

(* Re-install the home backing line as an alias of the master copy (unless
   the home CPU currently holds a private LCM copy of its own block). *)
let realias_home_line t b ~tag =
  let home = Machine.node t.mach (home_of t b) in
  match Machine.find_line home b with
  | Some line when line.Machine.tag = Tag.Lcm_modified -> ()
  | Some _ | None ->
    Machine.drop_line home b;
    ignore (Machine.install_line home b ~data:(Machine.master t.mach b) ~tag)

let sharers_of = function
  | Shared s -> s
  | Home_owned | Exclusive _ -> ISet.empty

(* ------------------------------------------------------------------ *)
(* Requester side                                                      *)
(* ------------------------------------------------------------------ *)

let want_tag = function
  | Want_ro -> "get_ro"
  | Want_rw -> "get_rw"
  | Want_lcm -> "get_lcm"

let note_mark t nid b =
  t.pending_marks.(nid) := b :: !(t.pending_marks.(nid))

(* Install a granted copy and resume any fibers waiting on the block. *)
let recv_data t node b data tag ~now =
  let line = Machine.install_line node b ~data ~tag in
  if tag = Tag.Lcm_modified then begin
    note_mark t (Machine.id node) b;
    if t.dp.Policy.local_clean_copies then begin
      line.Machine.local_clean <- Some (Block.copy data);
      clean_copy_created t
    end
  end;
  let nid = Machine.id node in
  let retries =
    match Hashtbl.find_opt t.pending_retries.(nid) b with
    | Some rs -> List.rev rs
    | None -> []
  in
  Hashtbl.remove t.pending_retries.(nid) b;
  Machine.resume node ~now
    ~cost:(Machine.costs t.mach).Lcm_sim.Costs.block_install (fun () ->
      List.iter (fun retry -> retry ()) retries)

let rec request t node b want ~retry =
  let nid = Machine.id node in
  let pending = Hashtbl.find_opt t.pending_retries.(nid) b in
  Hashtbl.replace t.pending_retries.(nid) b
    (retry :: Option.value pending ~default:[]);
  match pending with
  | Some _ -> () (* a request for this block is already in flight *)
  | None ->
    let home = home_of t b in
    Stats.Handle.incr
      (if home = nid then t.hs.h_fetch_local else t.hs.h_fetch_remote);
    (* the want and requester pack into the rider, so the request rides
       the pooled message cell with no per-message closure *)
    Machine.send_call t.mach ~src:nid ~dst:home ~words:ctrl_words
      ~tag:(want_tag want) ~at:(Machine.clock node) recv_get_m t b
      ((want_code want lsl 20) lor nid)

(* ------------------------------------------------------------------ *)
(* Home side                                                           *)
(* ------------------------------------------------------------------ *)

and recv_get_m t _hnode now b x =
  home_recv_get t b ~want:(want_of_code (x lsr 20)) ~requester:(x land 0xfffff)
    ~now

and home_recv_get t b ~want ~requester ~now =
  let e = get_entry t b in
  match e.busy with
  | Some _ ->
    let w = Lcm_util.Pool.acquire t.wpool in
    w.want <- want;
    w.requester <- requester;
    Queue.add w e.waiting
  | None -> serve t e ~want ~requester ~now

(* Reply with a copy of the master under the given tag.  When the
   requester IS the home the grant completes synchronously with the
   directory transition (the home's memory is the master: non-LCM grants
   re-alias the backing line rather than copying).  A deferred self-message
   would leave a window in which a later remote grant invalidates the home
   line only for the in-flight install to resurrect it. *)
and reply_data t e requester kind ~now =
  let b = e.block in
  let home = home_of t b in
  let master = Machine.master t.mach b in
  let tag, mtag =
    match kind with
    | Want_ro -> (Tag.Read_only, "data_ro")
    | Want_rw -> (Tag.Writable, "data_rw")
    | Want_lcm -> (Tag.Lcm_modified, "data_lcm")
  in
  if requester = home then
    let data = if kind = Want_lcm then Block.copy master else master in
    recv_data t (Machine.node t.mach home) b data tag ~now
  else
    let data = Block.copy master in
    Machine.send_call t.mach ~src:home ~dst:requester ~words:(data_words t)
      ~tag:mtag ~at:now t.h_data_m data b (want_code kind)

and serve t e ~want ~requester ~now =
  let b = e.block in
  match (e.dstate, want) with
  | Exclusive owner, _ when owner <> requester ->
    (* Recall the remote writable copy before serving anyone. *)
    let w = Lcm_util.Pool.acquire t.wpool in
    w.want <- want;
    w.requester <- requester;
    e.busy <- Some (Recalling w);
    Stats.Handle.incr t.hs.h_recalls;
    let home = home_of t b in
    Machine.send_call t.mach ~src:home ~dst:owner ~words:ctrl_words
      ~tag:"recall" ~at:now recv_recall_m t b 0
  | Exclusive owner, (Want_ro | Want_rw | Want_lcm) ->
    (* A request from the recorded owner cannot happen: an owner only loses
       its copy by eviction or recall, and the corresponding Put travels
       the same FIFO channel ahead of any new request, clearing the
       exclusive state first.  Serving the (stale) master here would be a
       silent corruption — fail loudly instead. *)
    failwith
      (Printf.sprintf
         "Proto: block %d: request from recorded exclusive owner %d" b owner)
  | (Home_owned | Shared _), Want_ro ->
    (* the home itself is never listed as a sharer: its line re-aliases *)
    (if requester <> home_of t b then begin
       e.dstate <- Shared (ISet.add requester (sharers_of e.dstate));
       set_home_tag t b Tag.Read_only
     end);
    note_reader t e requester;
    reply_data t e requester Want_ro ~now
  | (Home_owned | Shared _), Want_rw ->
    let home = home_of t b in
    let others = ISet.remove requester (sharers_of e.dstate) in
    if ISet.is_empty others then begin
      (* The home owning the master IS exclusive ownership: no directory
         state change, just a writable re-alias of the backing line. *)
      if requester = home then e.dstate <- Home_owned
      else begin
        e.dstate <- Exclusive requester;
        set_home_tag t b Tag.Invalid
      end;
      reply_data t e requester Want_rw ~now
    end
    else begin
      let w = Lcm_util.Pool.acquire t.wpool in
      w.want <- want;
      w.requester <- requester;
      e.busy <- Some (Invalidating { acks_left = ISet.cardinal others; waiter = w });
      let home = home_of t b in
      ISet.iter
        (fun sharer ->
          Stats.Handle.incr t.hs.h_invals;
          Machine.send_call t.mach ~src:home ~dst:sharer ~words:ctrl_words
            ~tag:"inval" ~at:now recv_inval_serve_m t b home)
        others
    end
  | (Home_owned | Shared _), Want_lcm ->
    (* Grant a private, inconsistent copy of the phase-start value.  A
       remote requester also registers as a sharer so that the
       post-reconcile invalidation sweep (and any later exclusive grant)
       reaches the restored read-only copy LCM-mcc keeps. *)
    (if requester <> home_of t b then begin
       e.dstate <- Shared (ISet.add requester (sharers_of e.dstate));
       set_home_tag t b Tag.Read_only
     end);
    e.lcm_holders <- ISet.add requester e.lcm_holders;
    reply_data t e requester Want_lcm ~now

and drain t e ~now =
  if e.busy = None && not (Queue.is_empty e.waiting) then begin
    let w = Queue.pop e.waiting in
    let want = w.want and requester = w.requester in
    Lcm_util.Pool.release t.wpool w;
    serve t e ~want ~requester ~now;
    drain t e ~now
  end

(* Static message handlers: preallocated once, delivered through
   {!Machine.send_call}'s pooled cells, so the recall / serve-invalidate
   control traffic allocates nothing per message. *)
and recv_recall_m t onode now b _x = owner_recv_recall t b onode ~now

and recv_inval_serve_m t snode now b home =
  sharer_do_inval t b snode;
  Machine.send_call t.mach ~src:(Machine.id snode) ~dst:home ~words:ctrl_words
    ~tag:"inval_ack" ~at:now recv_inval_ack_serve_m t b 0

and recv_inval_ack_serve_m t _hnode now b _x = home_recv_inval_ack t b ~now

and owner_recv_recall t b onode ~now =
  let home = home_of t b in
  let nid = Machine.id onode in
  match Machine.find_line onode b with
  | Some line when line.Machine.tag = Tag.Writable ->
    let data = Block.copy line.Machine.data in
    Machine.drop_line onode b;
    Stats.Handle.incr t.hs.h_writebacks;
    Machine.send t.mach ~src:nid ~dst:home ~words:(data_words t) ~tag:"put"
      ~at:now (fun _ ~now -> home_recv_put t b (Some data) ~from:nid ~mark:false ~now)
  | Some _ | None ->
    (* Already evicted or marked: the corresponding Put travelled first on
       this FIFO channel, so the home's master is already current. *)
    Machine.send t.mach ~src:nid ~dst:home ~words:ctrl_words ~tag:"recall_nack"
      ~at:now (fun _ ~now -> home_recv_recall_nack t b ~now)

and home_recv_put t b data ~from ~mark ~now =
  let e = get_entry t b in
  let master = Machine.master t.mach b in
  (match data with Some d -> Block.blit ~src:d ~dst:master | None -> ());
  (match e.dstate with
  | Exclusive o when o = from ->
    e.dstate <- Home_owned;
    realias_home_line t b ~tag:Tag.Writable
  | Exclusive _ | Home_owned | Shared _ -> ());
  if mark then e.lcm_holders <- ISet.add from e.lcm_holders;
  (match e.busy with
  | Some (Recalling w) ->
    e.busy <- None;
    let want = w.want and requester = w.requester in
    Lcm_util.Pool.release t.wpool w;
    serve t e ~want ~requester ~now;
    drain t e ~now
  | Some (Invalidating _) | None -> ())

and home_recv_recall_nack t b ~now =
  let e = get_entry t b in
  match e.busy with
  | Some (Recalling w) ->
    e.busy <- None;
    let want = w.want and requester = w.requester in
    Lcm_util.Pool.release t.wpool w;
    serve t e ~want ~requester ~now;
    drain t e ~now
  | Some (Invalidating _) | None -> ()

and home_recv_inval_ack t b ~now =
  let e = get_entry t b in
  match e.busy with
  | Some (Invalidating i) ->
    i.acks_left <- i.acks_left - 1;
    if i.acks_left = 0 then begin
      let requester = i.waiter.requester in
      Lcm_util.Pool.release t.wpool i.waiter;
      if requester = home_of t b then e.dstate <- Home_owned
      else begin
        e.dstate <- Exclusive requester;
        set_home_tag t b Tag.Invalid
      end;
      reply_data t e requester Want_rw ~now;
      e.busy <- None;
      drain t e ~now
    end
  | Some (Recalling _) | None -> ()

and sharer_do_inval t b snode =
  let nid = Machine.id snode in
  if Hashtbl.mem t.stale_pins.(nid) b then
    Stats.Handle.incr t.hs.h_survived_invals
  else
    match Machine.find_line snode b with
    | Some line when not line.Lcm_tempest.Machine.is_home_line ->
      Machine.drop_line snode b
    | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let read_fault t node ~addr ~retry =
  let b = Gmem.block_of_addr (Machine.gmem t.mach) addr in
  request t node b Want_ro ~retry

(* Helpers of [mark_parallel], hoisted so the hot path allocates no
   closures. *)
let snapshot_clean t node (line : Machine.line) ~costs =
  if t.dp.Policy.local_clean_copies then begin
    (match line.Machine.local_clean with
    | Some clean -> Block.blit ~src:line.Machine.data ~dst:clean
    | None ->
      line.Machine.local_clean <- Some (Block.copy line.Machine.data);
      clean_copy_created t);
    Stats.Handle.incr t.hs.h_snapshot_refreshes;
    Machine.advance_clock node costs.Lcm_sim.Costs.local_copy
  end

let unalias_if_home t (line : Machine.line) ~home ~nid ~b =
  if home = nid && line.Machine.data == Machine.master t.mach b then
    line.Machine.data <- Block.copy line.Machine.data

(* mark_modification: obtain (or upgrade to) a private writable copy of the
   block holding [addr].  Local upgrades need no communication except for a
   remotely-owned exclusive block, whose current value must first reach the
   home so that reconciliation baselines are correct. *)
let rec mark t node ~addr ~retry =
  let g = Machine.gmem t.mach in
  let b = Gmem.block_of_addr g addr in
  if Machine.phase t.mach = `Sequential then
    (* mark_modification outside a parallel call degrades to an ordinary
       coherent write acquire: there is nothing to reconcile against. *)
    match Machine.find_line node b with
    | Some line when Tag.writable line.Lcm_tempest.Machine.tag -> retry ()
    | Some _ | None -> request t node b Want_rw ~retry
  else mark_parallel t node ~addr ~retry

and mark_parallel t node ~addr ~retry =
  Stats.Handle.incr t.hs.h_marks;
  let g = Machine.gmem t.mach in
  let b = Gmem.block_of_addr g addr in
  let nid = Machine.id node in
  let home = home_of t b in
  if home = nid then ignore (Machine.master t.mach b);
  let costs = Machine.costs t.mach in
  match Machine.find_line node b with
  | Some line when line.Machine.tag = Tag.Lcm_modified -> retry ()
  | Some line when line.Machine.tag = Tag.Writable ->
    Stats.Handle.incr t.hs.h_mark_local;
    if home = nid then begin
      unalias_if_home t line ~home ~nid ~b;
      let e = get_entry t b in
      e.lcm_holders <- ISet.add nid e.lcm_holders
    end
    else begin
      (* Remote exclusive owner: push the current value home (it is the
         phase-start value) and keep a private copy.  FIFO ordering
         guarantees the Put precedes any flush from this node. *)
      let data = Block.copy line.Machine.data in
      Machine.send t.mach ~src:nid ~dst:home ~words:(data_words t)
        ~tag:"put_mark" ~at:(Machine.clock node) (fun _ ~now ->
          home_recv_put t b (Some data) ~from:nid ~mark:true ~now)
    end;
    line.Machine.tag <- Tag.Lcm_modified;
    line.Machine.dirty <- Mask.empty;
    note_mark t nid b;
    snapshot_clean t node line ~costs;
    Machine.advance_clock node costs.Lcm_sim.Costs.block_install;
    retry ()
  | Some line when line.Machine.tag = Tag.Read_only ->
    Stats.Handle.incr t.hs.h_mark_local;
    unalias_if_home t line ~home ~nid ~b;
    (if home = nid then
       let e = get_entry t b in
       e.lcm_holders <- ISet.add nid e.lcm_holders);
    line.Machine.tag <- Tag.Lcm_modified;
    line.Machine.dirty <- Mask.empty;
    note_mark t nid b;
    snapshot_clean t node line ~costs;
    Machine.advance_clock node costs.Lcm_sim.Costs.block_install;
    retry ()
  | Some _ | None ->
    Stats.Handle.incr t.hs.h_mark_remote;
    request t node b Want_lcm ~retry

let write_fault t node ~addr ~retry =
  let b = Gmem.block_of_addr (Machine.gmem t.mach) addr in
  match (Machine.phase t.mach, t.dp.Policy.parallel_write_grant) with
  | `Parallel, Policy.Lcm_copy ->
    (* Unannotated write during a parallel phase: LCM detects the unusual
       case and handles it as an implicit mark_modification. *)
    Stats.Handle.incr t.hs.h_implicit_marks;
    mark t node ~addr ~retry
  | (`Sequential | `Parallel), (Policy.Exclusive | Policy.Lcm_copy) ->
    request t node b Want_rw ~retry

(* ------------------------------------------------------------------ *)
(* Flushing and reconciliation                                         *)
(* ------------------------------------------------------------------ *)

(* A node joined the reconcile barrier once all its flushes are acked. *)
let try_finish_reconcile t ~now:_ =
  match t.rec_state with
  | Some r when (not r.finished) && r.joined = Machine.nnodes t.mach
                && r.inval_acks_left = 0 ->
    r.finished <- true;
    let barrier_release =
      Barrier.release_time ~costs:(Machine.costs t.mach) ~style:t.barrier
        ~join_times:r.done_times
    in
    let release = max barrier_release r.last_ack_time in
    (* Per-node wait: each node idles from when it finished its own work
       (done_times) until the collective release. *)
    Array.iter
      (fun done_t ->
        Stats.Handle.add t.hs.h_barrier_wait (release - done_t))
      r.done_times;
    Machine.set_all_clocks t.mach release;
    Machine.incr_epoch t.mach;
    Machine.trace_emit t.mach ~time:release
      (Machine.Trace.Barrier_release { nnodes = Machine.nnodes t.mach });
    Machine.trace_emit t.mach ~time:release
      (Machine.Trace.Epoch_advance { epoch = Machine.epoch t.mach });
    Machine.set_phase t.mach `Sequential
  | Some _ | None -> ()

(* Merge one returned copy into the block's pending (shadow) value: the
   reconciliation point of RSM.  Creates the epoch's clean copy on first
   touch; applies the registered reduction operator or per-word
   last-writer-wins with conflict detection. *)
let merge_flush t b data mask ~from ~epoch =
  let e = get_entry t b in
  if epoch <> Machine.epoch t.mach then
    failwith "Proto: flush from a stale epoch";
  let master = Machine.master t.mach b in
  (match e.shadow with
  | Some _ when e.shadow_epoch = epoch -> ()
  | Some _ | None ->
    e.shadow <- Some (Block.copy master);
    e.shadow_mask <- Mask.empty;
    e.shadow_epoch <- epoch;
    clean_copy_created t);
  let shadow = match e.shadow with Some s -> s | None -> assert false in
  (match Hashtbl.find_opt t.reductions b with
  | Some op ->
    Mask.iter mask (fun i ->
        shadow.(i) <-
          op.Reduction.combine ~clean:master.(i) ~current:shadow.(i)
            ~incoming:data.(i))
  | None ->
    let overlap = Mask.inter mask e.shadow_mask in
    if not (Mask.is_empty overlap) then begin
      Stats.Handle.incr t.hs.h_conflicts;
      if t.detect then
        t.conflicts <- { Detect.block = b; words = overlap; writer = from } :: t.conflicts
    end;
    Block.merge_masked ~src:data ~dst:shadow ~mask);
  e.shadow_mask <- Mask.union e.shadow_mask mask;
  e.lcm_holders <- ISet.remove from e.lcm_holders;
  (if t.dp.Policy.local_clean_copies && from <> home_of t b then
     e.dstate <- Shared (ISet.add from (sharers_of e.dstate)));
  Stats.Handle.incr t.hs.h_flushes_received

(* Sweep-invalidation handlers, shared by the strict-detection and
   reconcile sweeps: preallocated once and delivered through
   {!Machine.send_call}'s pooled cells, because the sweep sends one
   invalidation per (modified block, outstanding copy) — the dominant
   message class of write-heavy reconciliations. *)
let recv_sweep_ack_m t _hnode now b _x =
  (match t.rec_state with
  | Some r ->
    let home = home_of t b in
    r.inval_acks_left <- r.inval_acks_left - 1;
    r.last_ack_time <- max r.last_ack_time now;
    r.done_times.(home) <- max r.done_times.(home) now
  | None -> assert false);
  try_finish_reconcile t ~now

let recv_inval_sweep_m t snode now b home =
  sharer_do_inval t b snode;
  Machine.send_call t.mach ~src:(Machine.id snode) ~dst:home ~words:ctrl_words
    ~tag:"inval_ack" ~at:now recv_sweep_ack_m t b 0

let rec home_recv_flush t b data mask ~from ~epoch ~now =
  merge_flush t b data mask ~from ~epoch;
  let home = home_of t b in
  Machine.send t.mach ~src:home ~dst:from ~words:ctrl_words ~tag:"flush_ack"
    ~at:now (fun fnode ~now ->
      let nid = Machine.id fnode in
      t.pending_flush_acks.(nid) <- t.pending_flush_acks.(nid) - 1;
      if t.awaiting_join.(nid) && t.pending_flush_acks.(nid) = 0 then begin
        t.awaiting_join.(nid) <- false;
        match t.rec_state with
        | Some r ->
          r.joined <- r.joined + 1;
          r.join_time <- max r.join_time now;
          r.join_times.(nid) <- now;
          r.done_times.(nid) <- max r.done_times.(nid) now;
          Machine.trace_emit t.mach ~time:now
            (Machine.Trace.Barrier_enter { node = nid });
          if r.joined = Machine.nnodes t.mach then start_sweep t ~now
        | None -> ()
      end)

(* flush_copies(): return every locally-modified LCM block to its home.
   scc drops the local copy (the next access refetches the clean value);
   mcc reinitialises it from the local clean copy and keeps it readable. *)
and flush_node t node =
  let costs = Machine.costs t.mach in
  let nid = Machine.id node in
  let epoch = Machine.epoch t.mach in
  let blocks = List.sort_uniq Int.compare !(t.pending_marks.(nid)) in
  t.pending_marks.(nid) := [];
  List.iter
    (fun b ->
      match Machine.find_line node b with
      | None -> () (* evicted mid-phase: its flush already went home *)
      | Some line when line.Machine.tag <> Tag.Lcm_modified -> ()
      | Some line ->
        if Mask.is_empty line.Machine.dirty then begin
          (* Marked but never written: the copy still equals the clean
             value, so it can simply revert to a read-only copy. *)
          line.Machine.tag <- Tag.Read_only
        end
        else begin
          Stats.Handle.incr t.hs.h_flush_blocks;
          let mask = line.Machine.dirty in
          Machine.advance_clock node costs.Lcm_sim.Costs.local_copy;
          let home = home_of t b in
          if home = nid then begin
            (* flushing a locally-homed block is a local memory operation:
               merge into the pending copy on the spot.  The live line is
               merged in place — [merge_flush] only reads [data], and the
               local-clean restore below happens after it returns, so the
               host-side copy a remote flush needs is pure waste here. *)
            Machine.advance_clock node costs.Lcm_sim.Costs.local_copy;
            merge_flush t b line.Machine.data mask ~from:nid ~epoch
          end
          else begin
            let data = Block.copy line.Machine.data in
            t.pending_flush_acks.(nid) <- t.pending_flush_acks.(nid) + 1;
            Machine.send t.mach ~src:nid ~dst:home ~words:(data_words t + 1)
              ~tag:"flush" ~at:(Machine.clock node) (fun _ ~now ->
                home_recv_flush t b data mask ~from:nid ~epoch ~now)
          end;
          if t.dp.Policy.local_clean_copies then begin
            (match line.Machine.local_clean with
            | Some clean -> Block.blit ~src:clean ~dst:line.Machine.data
            | None ->
              (* An implicit mark on a block fetched before the policy took
                 effect cannot happen: mcc snapshots at every mark/fill. *)
              assert false);
            line.Machine.tag <- Tag.Read_only;
            line.Machine.dirty <- Mask.empty;
            Stats.Handle.incr t.hs.h_local_restores;
            Machine.advance_clock node costs.Lcm_sim.Costs.local_copy
          end
          else Machine.drop_line node b
        end)
    blocks

(* Promote shadows to the new global state and invalidate outstanding
   copies of every modified block. *)
and start_sweep t ~now =
  let r = match t.rec_state with Some r -> r | None -> assert false in
  let epoch = Machine.epoch t.mach in
  let sweep_time = max r.join_time now in
  let blocks =
    Hashtbl.fold (fun b _ acc -> b :: acc) t.entries [] |> List.sort Int.compare
  in
  List.iter
    (fun b ->
      let e = match Hashtbl.find_opt t.entries b with Some e -> e | None -> assert false in
      (* Strict detection (§7.3): actual races need every read-only copy
         flushed at synchronization points, so that the next phase's reads
         fault and register — otherwise a copy cached in an earlier phase
         satisfies reads invisibly. *)
      let modified_this_epoch =
        match e.shadow with Some _ -> e.shadow_epoch = epoch | None -> false
      in
      (if t.strict_detection && not modified_this_epoch then begin
         let home = home_of t b in
         let targets = ISet.remove home (sharers_of e.dstate) in
         ISet.iter
           (fun target ->
             r.inval_acks_left <- r.inval_acks_left + 1;
             Stats.Handle.incr t.hs.h_strict_invals;
             Machine.send_call t.mach ~src:home ~dst:target ~words:ctrl_words
               ~tag:"inval" ~at:sweep_time recv_inval_sweep_m t b home)
           targets;
         if not (ISet.is_empty targets) then begin
           e.dstate <- Home_owned;
           realias_home_line t b ~tag:Tag.Writable
         end
       end);
      (match e.shadow with
      | Some shadow when e.shadow_epoch = epoch ->
        Block.blit ~src:shadow ~dst:(Machine.master t.mach b);
        e.shadow <- None;
        Stats.Handle.add t.hs.h_live_clean_copies (-1);
        Stats.Handle.incr t.hs.h_reconciled_blocks;
        if t.detect && e.readers_epoch = epoch && not (ISet.is_empty e.readers)
        then
          t.races <-
            { Detect.block = b; readers = ISet.elements e.readers } :: t.races;
        (* Invalidate every outstanding copy; the home line re-aliases the
           new master. *)
        let home = home_of t b in
        let targets =
          ISet.remove home (ISet.union (sharers_of e.dstate) e.lcm_holders)
        in
        let ack_from snode ~now =
          Machine.send t.mach ~src:(Machine.id snode) ~dst:home
            ~words:ctrl_words ~tag:"inval_ack" ~at:now (fun _ ~now ->
              r.inval_acks_left <- r.inval_acks_left - 1;
              r.last_ack_time <- max r.last_ack_time now;
              r.done_times.(home) <- max r.done_times.(home) now;
              try_finish_reconcile t ~now)
        in
        if t.dp.Policy.update_on_reconcile then begin
          (* update-based reconciliation: push the new value into every
             outstanding read-only copy instead of invalidating it *)
          let fresh = Block.copy (Machine.master t.mach b) in
          ISet.iter
            (fun target ->
              r.inval_acks_left <- r.inval_acks_left + 1;
              Stats.Handle.incr t.hs.h_reconcile_updates;
              Machine.send t.mach ~src:home ~dst:target ~words:(data_words t)
                ~tag:"update" ~at:sweep_time (fun snode ~now ->
                  (match Machine.find_line snode b with
                  | Some line
                    when line.Machine.tag = Tag.Read_only
                         && not (Hashtbl.mem t.stale_pins.(Machine.id snode) b)
                    ->
                    Block.blit ~src:fresh ~dst:line.Machine.data
                  | Some _ | None -> () (* dropped, pinned or upgraded *));
                  ack_from snode ~now))
            targets;
          (* copies stay valid: the sharer set survives reconciliation *)
          if ISet.is_empty targets then begin
            e.dstate <- Home_owned;
            realias_home_line t b ~tag:Tag.Writable
          end
          else begin
            e.dstate <- Shared targets;
            realias_home_line t b ~tag:Tag.Read_only
          end
        end
        else begin
          ISet.iter
            (fun target ->
              r.inval_acks_left <- r.inval_acks_left + 1;
              Stats.Handle.incr t.hs.h_reconcile_invals;
              Machine.send_call t.mach ~src:home ~dst:target ~words:ctrl_words
                ~tag:"inval" ~at:sweep_time recv_inval_sweep_m t b home)
            targets;
          e.dstate <- Home_owned;
          realias_home_line t b ~tag:Tag.Writable
        end
      | Some _ | None -> ());
      e.lcm_holders <- ISet.empty;
      e.readers <- ISet.empty)
    blocks;
  try_finish_reconcile t ~now

let reconcile t =
  if Machine.active_fibers t.mach > 0 then
    failwith "Proto.reconcile: fibers still running";
  let nnodes = Machine.nnodes t.mach in
  let r =
    {
      joined = 0;
      join_time = 0;
      join_times = Array.make nnodes 0;
      done_times = Array.make nnodes 0;
      inval_acks_left = 0;
      last_ack_time = 0;
      finished = false;
    }
  in
  t.rec_state <- Some r;
  for i = 0 to nnodes - 1 do
    t.awaiting_join.(i) <- true
  done;
  for i = 0 to nnodes - 1 do
    let node = Machine.node t.mach i in
    flush_node t node;
    if t.pending_flush_acks.(i) = 0 then begin
      t.awaiting_join.(i) <- false;
      r.joined <- r.joined + 1;
      r.join_time <- max r.join_time (Machine.clock node);
      r.join_times.(i) <- Machine.clock node;
      r.done_times.(i) <- max r.done_times.(i) (Machine.clock node);
      Machine.trace_emit t.mach ~time:(Machine.clock node)
        (Machine.Trace.Barrier_enter { node = i })
    end
  done;
  if r.joined = nnodes then
    start_sweep t ~now:(Lcm_sim.Engine.now (Machine.engine t.mach));
  Machine.run_to_quiescence t.mach;
  (match t.rec_state with
  | Some r when r.finished -> ()
  | Some _ | None -> failwith "Proto.reconcile: barrier did not complete");
  t.rec_state <- None

let begin_parallel t =
  if Machine.active_fibers t.mach > 0 then
    failwith "Proto.begin_parallel: fibers still running";
  Machine.set_phase t.mach `Parallel

(* ------------------------------------------------------------------ *)
(* Directives, eviction, installation                                  *)
(* ------------------------------------------------------------------ *)

let note_directive t node name =
  Machine.trace_emit t.mach ~time:(Machine.clock node)
    (Machine.Trace.Directive { node = Machine.id node; name })

let directive t node d ~retry =
  match d with
  | Memeff.Mark_modification addr ->
    note_directive t node "mark_modification";
    if Policy.is_lcm t.pol then mark t node ~addr ~retry
    else retry () (* Stache: C** code compiled for LCM run unchanged *)
  | Memeff.Flush_copies ->
    note_directive t node "flush_copies";
    if Policy.is_lcm t.pol then flush_node t node;
    retry ()
  | Stale.Pin_stale addr ->
    note_directive t node "pin_stale";
    let b = Gmem.block_of_addr (Machine.gmem t.mach) addr in
    Hashtbl.replace t.stale_pins.(Machine.id node) b ();
    Stats.Handle.incr t.hs.h_stale_pins;
    retry ()
  | Stale.Refresh addr ->
    note_directive t node "refresh";
    let b = Gmem.block_of_addr (Machine.gmem t.mach) addr in
    let nid = Machine.id node in
    Hashtbl.remove t.stale_pins.(nid) b;
    (match Machine.find_line node b with
    | Some line when not line.Machine.is_home_line ->
      Machine.drop_line node b;
      Stats.Handle.incr t.hs.h_stale_refreshes
    | Some _ | None -> ());
    retry ()
  | _ -> failwith "Proto: unknown memory-system directive"

let evict t node b line =
  let nid = Machine.id node in
  let home = home_of t b in
  match line.Machine.tag with
  | Tag.Invalid -> ()
  | Tag.Read_only ->
    Machine.send t.mach ~src:nid ~dst:home ~words:ctrl_words ~tag:"evict_ro"
      ~at:(Machine.clock node) (fun _ ~now:_ ->
        let e = get_entry t b in
        match e.dstate with
        | Shared s -> e.dstate <- Shared (ISet.remove nid s)
        | Home_owned | Exclusive _ -> ())
  | Tag.Writable ->
    let data = Block.copy line.Machine.data in
    Stats.Handle.incr t.hs.h_writebacks;
    Machine.send t.mach ~src:nid ~dst:home ~words:(data_words t) ~tag:"put"
      ~at:(Machine.clock node) (fun _ ~now ->
        home_recv_put t b (Some data) ~from:nid ~mark:false ~now)
  | Tag.Lcm_modified ->
    if not (Mask.is_empty line.Machine.dirty) then begin
      let mask = line.Machine.dirty in
      let epoch = Machine.epoch t.mach in
      Stats.Handle.incr t.hs.h_flush_blocks;
      (* local home: merge the evicted line's data in place (read-only
         use, and the line is dropped right after) — no copy *)
      if home = nid then merge_flush t b line.Machine.data mask ~from:nid ~epoch
      else begin
        let data = Block.copy line.Machine.data in
        t.pending_flush_acks.(nid) <- t.pending_flush_acks.(nid) + 1;
        Machine.send t.mach ~src:nid ~dst:home ~words:(data_words t + 1)
          ~tag:"flush" ~at:(Machine.clock node) (fun _ ~now ->
            home_recv_flush t b data mask ~from:nid ~epoch ~now)
      end
    end

let touch_entry t b = ignore (get_entry t b)

let register_reduction t ~base ~nwords op =
  List.iter
    (fun b -> Hashtbl.replace t.reductions b op)
    (Gmem.region_blocks (Machine.gmem t.mach) base ~nwords)

let conflicts t = List.rev t.conflicts
let races t = List.rev t.races

let rec dump_block t b =
  match home_of t b with
  | exception Invalid_argument _ -> Printf.sprintf "block %d: unallocated" b
  | home -> dump_block_at t b ~home

and dump_block_at t b ~home =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "block %d (home %d): " b home);
  (match Hashtbl.find_opt t.entries b with
  | None -> Buffer.add_string buf "no directory entry"
  | Some e ->
    (match e.dstate with
    | Home_owned -> Buffer.add_string buf "home-owned"
    | Exclusive o -> Buffer.add_string buf (Printf.sprintf "exclusive@%d" o)
    | Shared s ->
      Buffer.add_string buf
        (Printf.sprintf "shared{%s}"
           (String.concat "," (List.map string_of_int (ISet.elements s)))));
    if not (ISet.is_empty e.lcm_holders) then
      Buffer.add_string buf
        (Printf.sprintf " lcm{%s}"
           (String.concat "," (List.map string_of_int (ISet.elements e.lcm_holders))));
    (match e.shadow with
    | Some _ when e.shadow_epoch = Machine.epoch t.mach ->
      Buffer.add_string buf
        (Printf.sprintf " shadow%s" (Format.asprintf "%a" Mask.pp e.shadow_mask))
    | Some _ | None -> ());
    if e.busy <> None then Buffer.add_string buf " BUSY";
    if not (Queue.is_empty e.waiting) then
      Buffer.add_string buf (Printf.sprintf " %d-waiting" (Queue.length e.waiting)));
  Buffer.add_string buf "; copies:";
  Array.iter
    (fun node ->
      match Machine.find_line node b with
      | Some line ->
        Buffer.add_string buf
          (Printf.sprintf " %d:%s" (Machine.id node) (Tag.to_string line.Machine.tag))
      | None -> ())
    (Machine.nodes t.mach);
  Buffer.contents buf

let check_invariants t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let nnodes = Machine.nnodes t.mach in
  let parallel = Machine.phase t.mach = `Parallel in
  Hashtbl.iter
    (fun b (e : entry) ->
      let home = home_of t b in
      let master = Machine.master t.mach b in
      (if e.busy <> None then err "block %d: busy transaction while quiescent" b);
      (if not (Queue.is_empty e.waiting) then
         err "block %d: %d queued waiters while quiescent" b
           (Queue.length e.waiting));
      (if (not parallel) && e.shadow <> None && e.shadow_epoch = Machine.epoch t.mach
       then err "block %d: pending shadow outside a parallel phase" b);
      (if (not parallel) && not (ISet.is_empty e.lcm_holders) then
         err "block %d: LCM holders outside a parallel phase" b);
      (match e.dstate with
      | Exclusive owner ->
        (if owner = home then err "block %d: home listed as remote owner" b);
        (match Machine.find_line (Machine.node t.mach owner) b with
        | Some line when line.Machine.tag = Tag.Writable -> ()
        | Some line ->
          err "block %d: owner %d holds a %s line, not Writable" b owner
            (Tag.to_string line.Machine.tag)
        | None -> err "block %d: owner %d holds no line" b owner);
        for nid = 0 to nnodes - 1 do
          if nid <> owner then
            match Machine.find_line (Machine.node t.mach nid) b with
            | Some line when Tag.readable line.Machine.tag ->
              err "block %d: node %d holds a copy while %d is exclusive" b nid
                owner
            | Some _ | None -> ()
        done
      | Shared sharers ->
        ISet.iter
          (fun nid ->
            if nid < 0 || nid >= nnodes then
              err "block %d: sharer %d out of range" b nid
            else
              match Machine.find_line (Machine.node t.mach nid) b with
              | Some line when line.Machine.tag = Tag.Writable ->
                err "block %d: sharer %d holds a Writable line" b nid
              | Some line
                when line.Machine.tag = Tag.Read_only && (not parallel)
                     && not (Block.equal line.Machine.data master) ->
                err "block %d: sharer %d's read-only copy differs from master"
                  b nid
              | Some _ | None -> () (* dropped/evicted copies are fine *))
          sharers
      | Home_owned -> ());
      (* the home backing line, unless privately marked, mirrors the master *)
      (match Machine.find_line (Machine.node t.mach home) b with
      | Some line
        when line.Machine.tag <> Tag.Lcm_modified
             && Tag.readable line.Machine.tag
             && not (Block.equal line.Machine.data master) ->
        err "block %d: home backing line differs from master" b
      | Some _ | None -> ());
      (* no node but the home may hold an unmarked Writable copy unless the
         directory says so *)
      for nid = 0 to nnodes - 1 do
        if nid <> home then
          match Machine.find_line (Machine.node t.mach nid) b with
          | Some line when line.Machine.tag = Tag.Writable -> (
            match e.dstate with
            | Exclusive o when o = nid -> ()
            | _ -> err "block %d: node %d holds Writable without ownership" b nid)
          | Some line
            when line.Machine.tag = Tag.Lcm_modified && not parallel ->
            err "block %d: node %d holds an LCM copy outside a parallel phase" b
              nid
          | Some _ | None -> ()
      done)
    t.entries;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let peek t addr =
  let g = Machine.gmem t.mach in
  let b = Gmem.block_of_addr g addr in
  let off = Gmem.offset_in_block g addr in
  match Hashtbl.find_opt t.entries b with
  | Some { dstate = Exclusive owner; _ } -> (
    match Machine.find_line (Machine.node t.mach owner) b with
    | Some line -> line.Machine.data.(off)
    | None -> (Machine.master t.mach b).(off))
  | Some _ | None -> (Machine.master t.mach b).(off)

let poke t addr v =
  let g = Machine.gmem t.mach in
  let b = Gmem.block_of_addr g addr in
  let off = Gmem.offset_in_block g addr in
  (match Hashtbl.find_opt t.entries b with
  | Some e -> (
    match (e.dstate, e.shadow) with
    | Home_owned, None -> ()
    | _ -> failwith "Proto.poke: block has outstanding copies")
  | None -> ());
  (Machine.master t.mach b).(off) <- v

let install ?(detect = false) ?(strict_detection = false)
    ?(capacity_evictions = true) ?(barrier = Barrier.Constant) ~policy:pol
    mach =
  let dp =
    match pol.Policy.family with
    | Policy.Directory d -> d
    | Policy.Snoop _ ->
      invalid_arg "Proto_dir.install: snooping policies ride the bus engine"
  in
  if strict_detection && not detect then
    invalid_arg "Proto.install: strict_detection requires detect";
  if strict_detection && dp.Policy.update_on_reconcile then
    invalid_arg
      "Proto.install: strict detection is incompatible with update-based \
       reconciliation (updated copies satisfy reads without faulting, so \
       races would go unrecorded)";
  let nnodes = Machine.nnodes mach in
  let t =
    {
      mach;
      pol;
      dp;
      hs = resolve_handles (Machine.stats mach);
      barrier;
      detect;
      strict_detection;
      entries = Hashtbl.create 4096;
      reductions = Hashtbl.create 64;
      pending_retries = Array.init nnodes (fun _ -> Hashtbl.create 16);
      pending_marks = Array.init nnodes (fun _ -> ref []);
      pending_flush_acks = Array.make nnodes 0;
      awaiting_join = Array.make nnodes false;
      stale_pins = Array.init nnodes (fun _ -> Hashtbl.create 8);
      conflicts = [];
      races = [];
      rec_state = None;
      wpool =
        Lcm_util.Pool.create
          ~poison:(fun w ->
            w.want <- Want_ro;
            w.requester <- min_int)
          ~make:(fun () -> { want = Want_ro; requester = min_int })
          ();
      h_data_m = (fun _ _ _ _ _ -> assert false);
    }
  in
  (* The data-grant handler closes over [t] once, here — every grant then
     rides a pooled message cell carrying only (data, block, want code). *)
  t.h_data_m <-
    (fun data rnode now b x ->
      let tag =
        match want_of_code x with
        | Want_ro -> Tag.Read_only
        | Want_rw -> Tag.Writable
        | Want_lcm -> Tag.Lcm_modified
      in
      recv_data t rnode b data tag ~now);
  Machine.set_handlers mach
    ~read_fault:(fun node ~addr ~retry -> read_fault t node ~addr ~retry)
    ~write_fault:(fun node ~addr ~retry -> write_fault t node ~addr ~retry)
    ~directive:(fun node d ~retry -> directive t node d ~retry);
  if capacity_evictions then
    Machine.set_evict_handler mach (fun node b line -> evict t node b line);
  if detect then
    (* Home reads hit the always-readable backing line and never fault, so
       they are invisible to [serve]; without this observer a race where
       the home reads a block another node LCM-modifies in the same phase
       goes unreported.  The tag filter keeps the home's own
       mark-and-write accesses (its line re-aliased as Lcm_modified) from
       counting the writer as its own reader. *)
    Machine.set_read_observer mach
      (Some
         (fun node b line ->
           if
             line.Machine.is_home_line
             && line.Machine.tag <> Tag.Lcm_modified
             && Machine.id node = home_of t b
           then note_reader t (get_entry t b) (Machine.id node)));
  t
