(** Stale-data directives (Section 7.5 of the paper).

    In applications like N-body simulation, a consumer can tolerate old
    values of remote data for many iterations.  [pin addr] asks the memory
    system to keep the local read-only copy of the containing block even
    when reconciliation would invalidate it; reads keep hitting the stale
    copy at full speed.  [refresh addr] drops the pinned copy, so the next
    reference fetches the producer's latest reconciled value ("the consumer
    can simply flush the block; the next reference will bring its latest
    value back into the cache"). *)

type Lcm_tempest.Memeff.dir +=
  | Pin_stale of int
      (** Keep the local copy of the block containing this address across
          invalidations until refreshed. *)
  | Refresh of int
      (** Drop the local (possibly pinned and stale) copy of the block
          containing this address. *)

val pin : int -> unit
(** Perform the {!Pin_stale} directive from fiber code. *)

val refresh : int -> unit
(** Perform the {!Refresh} directive from fiber code. *)
