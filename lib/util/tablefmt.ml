type align = Left | Right

let normalise pad_cell ncols row =
  let len = List.length row in
  if len = ncols then row
  else if len > ncols then List.filteri (fun i _ -> i < ncols) row
  else row @ List.init (ncols - len) (fun _ -> pad_cell)

let render ?align ~header rows =
  let ncols = List.length header in
  let rows = List.map (normalise "" ncols) rows in
  let aligns =
    match align with
    | Some a -> normalise Right ncols a
    | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths =
    let update w row = List.map2 (fun w cell -> max w (String.length cell)) w row in
    List.fold_left update (List.map String.length header) rows
  in
  let pad align width cell =
    let n = width - String.length cell in
    if n <= 0 then cell
    else
      match align with
      | Left -> cell ^ String.make n ' '
      | Right -> String.make n ' ' ^ cell
  in
  let line ch =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) widths) ^ "+"
  in
  let row_str cells =
    let padded =
      List.map2 (fun (a, w) c -> pad a w c) (List.combine aligns widths) cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (row_str header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (row_str r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)
