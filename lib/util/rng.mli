(** Deterministic pseudo-random number generator (SplitMix64).

    Every simulation draws randomness exclusively through values of this
    type, so a fixed seed reproduces event-for-event identical runs on any
    platform. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a generator whose stream is fully determined by
    [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Useful for giving each simulated node its own stream. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)
