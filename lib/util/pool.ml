(* Free-list object pool for high-churn records on the simulator's hot
   paths (engine events, reliable-transport state, protocol waiter
   cells).  [acquire] pops a recycled record or makes a fresh one;
   [release] pushes it back.  Neither allocates on the steady state: the
   free list is a plain growable array of already-live records, so a
   workload that churns N records in flight allocates N records total,
   not N per delivery.

   The pool trusts its callers: a released record must not be used again
   until re-acquired.  [debug] mode makes that trust checkable — every
   release runs the client's poison action (clients overwrite fields
   with values that fail loudly on use) and scans the free list for a
   double release.  The scan is O(free), which is why it is a debug mode
   and not the default. *)

type 'a t = {
  make : unit -> 'a;
  poison : ('a -> unit) option;
  mutable free : 'a array;
  mutable nfree : int;
  mutable live : int;  (* acquired and not yet released *)
  mutable created : int;  (* ever constructed via [make] *)
}

let debug = ref false

let create ?poison ~make () =
  { make; poison; free = [||]; nfree = 0; live = 0; created = 0 }

let live p = p.live
let free_count p = p.nfree
let created p = p.created

let acquire p =
  p.live <- p.live + 1;
  if p.nfree = 0 then begin
    p.created <- p.created + 1;
    p.make ()
  end
  else begin
    let n = p.nfree - 1 in
    p.nfree <- n;
    Array.unsafe_get p.free n
  end

let release p x =
  if !debug then begin
    for i = 0 to p.nfree - 1 do
      if p.free.(i) == x then
        invalid_arg "Pool.release: value is already on the free list"
    done;
    match p.poison with None -> () | Some f -> f x
  end;
  if p.live <= 0 then invalid_arg "Pool.release: more releases than acquires";
  p.live <- p.live - 1;
  let cap = Array.length p.free in
  if p.nfree = cap then begin
    let next = Array.make (max 16 (2 * cap)) x in
    Array.blit p.free 0 next 0 cap;
    p.free <- next
  end;
  p.free.(p.nfree) <- x;
  p.nfree <- p.nfree + 1
