type t = int

let max_words = 62

let empty = 0

let full n =
  if n < 0 || n > max_words then invalid_arg "Mask.full";
  if n = 0 then 0 else (1 lsl n) - 1

let check i =
  if i < 0 || i >= max_words then invalid_arg "Mask: word index out of range"

let singleton i =
  check i;
  1 lsl i

let set m i =
  check i;
  m lor (1 lsl i)

let mem m i =
  check i;
  m land (1 lsl i) <> 0

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let is_empty m = m = 0

let overlaps a b = a land b <> 0

let cardinal m =
  let rec count acc m = if m = 0 then acc else count (acc + (m land 1)) (m lsr 1) in
  count 0 m

let iter m f =
  (* Shift-based: terminates at the highest set bit instead of walking all
     [max_words] positions — masks cover one block, so usually < 8 bits. *)
  let rec go m i =
    if m <> 0 then begin
      if m land 1 <> 0 then f i;
      go (m lsr 1) (i + 1)
    end
  in
  go m 0

let fold m ~init ~f =
  let acc = ref init in
  iter m (fun i -> acc := f !acc i);
  !acc

let to_list m = List.rev (fold m ~init:[] ~f:(fun acc i -> i :: acc))

let of_list is = List.fold_left set empty is

let equal (a : t) b = a = b

let pp ppf m =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (to_list m)))
