(** Named integer counters and scalar observations for simulation metrics.

    A {!t} is a registry local to one simulation run; protocols, the
    network and the runtime all bump counters through it, and the harness
    reads them out to build the paper's tables. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** [incr s name] adds 1 to counter [name], creating it at 0 if needed. *)

val add : t -> string -> int -> unit
(** [add s name n] adds [n] to counter [name]. *)

val get : t -> string -> int
(** [get s name] is the current value of [name] (0 if never touched). *)

val set_max : t -> string -> int -> unit
(** [set_max s name v] raises counter [name] to [v] if [v] is larger. *)

val observe : t -> string -> float -> unit
(** [observe s name x] records scalar sample [x] under [name] (count, sum,
    min, max retained). *)

val sample_count : t -> string -> int
val sample_sum : t -> string -> float
val sample_mean : t -> string -> float
(** Mean of observations under a name; 0 when empty. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds every counter and every sample of [src] into
    [dst]. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
(** Render all counters, one per line, sorted by name. *)
