(** Named integer counters, max-gauges and scalar observations for
    simulation metrics.

    A {!t} is a registry local to one simulation run; protocols, the
    network and the runtime all bump counters through it, and the harness
    reads them out to build the paper's tables.  Counters accumulate by
    addition; {e gauges} are high-water marks written with {!set_max} and
    kept in a separate table so that merging two registries takes their
    [max] instead of (nonsensically) summing peaks.

    {b Two write paths.}  The string-keyed functions ({!incr}, {!add},
    {!set_max}, {!observe}) hash the name on every call; they are the cold
    path and remain the source of truth for reporting.  Hot call sites
    resolve a {{!Handle}handle} once ({!counter}, {!gauge}, {!sample}) and
    update through it in O(1) with no hashing or allocation.  Handle
    registration is lazy: resolving a handle leaves no trace in
    {!counters}/{!gauges}/{!samples} until its first write, so a
    pre-resolved counter that never fires is indistinguishable from one
    never mentioned — reports are unchanged by the handle migration.
    Counter {e names} are likewise unchanged: a handle is just a
    pre-hashed alias for its name (see COUNTERS.md). *)

type t

val create : unit -> t

(** {1 Pre-resolved handles (hot path)} *)

module Handle : sig
  type counter
  type gauge
  type sample

  val incr : counter -> unit
  (** O(1) equivalent of {!val-incr} on the resolved name. *)

  val add : counter -> int -> unit

  val value : counter -> int
  (** Current value of the counter behind the handle (0 if never written). *)

  val set_max : gauge -> int -> unit

  val observe : sample -> float -> unit
end

val counter : t -> string -> Handle.counter
(** [counter s name] resolves a handle for counter [name].  Handles
    resolved for the same name share one cell with each other and with the
    string API.  Handles are invalidated by {!reset}: updates through a
    stale handle are lost — re-resolve after resetting. *)

val gauge : t -> string -> Handle.gauge
(** Resolve a gauge handle (the value is read with {!gauge_value} or
    {!gauges}). *)

val sample : t -> string -> Handle.sample
(** Resolve an observation-series handle. *)

(** {1 String-keyed API (cold path, reporting)} *)

val incr : t -> string -> unit
(** [incr s name] adds 1 to counter [name], creating it at 0 if needed. *)

val add : t -> string -> int -> unit
(** [add s name n] adds [n] to counter [name]. *)

val get : t -> string -> int
(** [get s name] is the current value of counter [name] (0 if never
    touched).  Gauges are read with {!gauge_value}. *)

val set_max : t -> string -> int -> unit
(** [set_max s name v] raises gauge [name] to [v] if [v] is larger. *)

val gauge_value : t -> string -> int
(** [gauge_value s name] is the current value of gauge [name] (0 if never
    set). *)

val observe : t -> string -> float -> unit
(** [observe s name x] records scalar sample [x] under [name] (count, sum,
    min, max retained). *)

val sample_count : t -> string -> int
val sample_sum : t -> string -> float
val sample_mean : t -> string -> float
(** Mean of observations under a name; 0 when empty. *)

val counters : t -> (string * int) list
(** All counters, sorted by name (gauges excluded — see {!gauges}). *)

val gauges : t -> (string * int) list
(** All gauges, sorted by name. *)

type summary = { count : int; mean : float; min : float; max : float }
(** Digest of one non-empty observation series ([count > 0] always —
    empty series have no meaningful min/max and are never summarized). *)

val summary : t -> string -> summary option
(** [summary s name] digests series [name], or [None] if it was never
    observed — distinguishable from a real all-zero sample, which reports
    [Some { count; mean = 0.; min = 0.; max = 0. }]. *)

val samples : t -> (string * summary) list
(** All {e observed} series, summarized, sorted by name; series that were
    never observed (e.g. only resolved as handles) are omitted. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds every counter and every sample of [src]
    into [dst], and raises each of [dst]'s gauges to [src]'s value where
    larger.  When [dst == src] this is a checked no-op — self-merging
    would double-count counters and corrupt samples mid-iteration. *)

val reset : t -> unit
(** Forget every counter, gauge and sample.  Also invalidates all
    outstanding handles (their subsequent updates are lost). *)

val pp : Format.formatter -> t -> unit
(** Render all counters, then all gauges, then all samples
    ([count]/[mean]/[min]/[max]), one per line, sorted by name. *)
