(** Named integer counters, max-gauges and scalar observations for
    simulation metrics.

    A {!t} is a registry local to one simulation run; protocols, the
    network and the runtime all bump counters through it, and the harness
    reads them out to build the paper's tables.  Counters accumulate by
    addition; {e gauges} are high-water marks written with {!set_max} and
    kept in a separate table so that merging two registries takes their
    [max] instead of (nonsensically) summing peaks. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** [incr s name] adds 1 to counter [name], creating it at 0 if needed. *)

val add : t -> string -> int -> unit
(** [add s name n] adds [n] to counter [name]. *)

val get : t -> string -> int
(** [get s name] is the current value of counter [name] (0 if never
    touched).  Gauges are read with {!gauge}. *)

val set_max : t -> string -> int -> unit
(** [set_max s name v] raises gauge [name] to [v] if [v] is larger. *)

val gauge : t -> string -> int
(** [gauge s name] is the current value of gauge [name] (0 if never set). *)

val observe : t -> string -> float -> unit
(** [observe s name x] records scalar sample [x] under [name] (count, sum,
    min, max retained). *)

val sample_count : t -> string -> int
val sample_sum : t -> string -> float
val sample_mean : t -> string -> float
(** Mean of observations under a name; 0 when empty. *)

val counters : t -> (string * int) list
(** All counters, sorted by name (gauges excluded — see {!gauges}). *)

val gauges : t -> (string * int) list
(** All gauges, sorted by name. *)

type summary = { count : int; mean : float; min : float; max : float }
(** Digest of one observation series.  [mean]/[min]/[max] are 0 when the
    series is empty (rather than the internal ±infinity sentinels). *)

val samples : t -> (string * summary) list
(** All observation series, summarized, sorted by name. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds every counter and every sample of [src]
    into [dst], and raises each of [dst]'s gauges to [src]'s value where
    larger. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
(** Render all counters, then all gauges, then all samples
    ([count]/[mean]/[min]/[max]), one per line, sorted by name. *)
