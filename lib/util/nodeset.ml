(* Immutable sets of node ids.  Directory sharer sets and LCM holder sets
   are updated on every remote fault, so for realistic machine sizes the
   representation is a single bitmask: one boxed word per update instead
   of O(log n) AVL nodes.  Ids that do not fit the mask (>= [max_direct],
   i.e. machines wider than the host word) spill the whole set into a
   tree.  The representation is canonical: every operation that can
   shrink a set ([remove], [inter]) collapses a tree whose members all
   fit back into a mask, so a set's representation depends only on its
   members — Bits iff they all fit — never on the history of operations
   that produced it.  Argument orders match [Set.Make(Int)] so this
   module is a drop-in alias. *)

module ISet = Set.Make (Int)

let max_direct = Sys.int_size - 1

type t = Bits of int | Tree of ISet.t

let empty = Bits 0

let direct x = x >= 0 && x < max_direct

let to_tree = function
  | Tree s -> s
  | Bits m ->
    let rec go m i acc =
      if m = 0 then acc
      else
        go (m lsr 1) (i + 1) (if m land 1 <> 0 then ISet.add i acc else acc)
    in
    go m 0 ISet.empty

(* Restore canonical form after a shrinking operation: a tree whose
   members all fit the mask becomes the mask again. *)
let normalize = function
  | Bits _ as t -> t
  | Tree s as t ->
    if ISet.is_empty s then empty
    else if ISet.for_all direct s then
      Bits (ISet.fold (fun x m -> m lor (1 lsl x)) s 0)
    else t

let is_direct = function Bits _ -> true | Tree _ -> false

let add x t =
  match t with
  | Bits m when direct x ->
    let m' = m lor (1 lsl x) in
    if m' = m then t else Bits m'
  | Bits _ -> Tree (ISet.add x (to_tree t))
  | Tree s -> Tree (ISet.add x s)

let remove x t =
  match t with
  | Bits m when direct x ->
    let m' = m land lnot (1 lsl x) in
    if m' = m then t else Bits m'
  | Bits _ -> t (* an id outside the mask range is never a Bits member *)
  | Tree s -> normalize (Tree (ISet.remove x s))

let mem x t =
  match t with
  | Bits m -> direct x && m land (1 lsl x) <> 0
  | Tree s -> ISet.mem x s

let is_empty = function Bits m -> m = 0 | Tree s -> ISet.is_empty s

let cardinal = function
  | Bits m ->
    let rec pop m acc = if m = 0 then acc else pop (m land (m - 1)) (acc + 1) in
    pop m 0
  | Tree s -> ISet.cardinal s

let iter f = function
  | Bits m ->
    let rec go m i =
      if m <> 0 then begin
        if m land 1 <> 0 then f i;
        go (m lsr 1) (i + 1)
      end
    in
    go m 0
  | Tree s -> ISet.iter f s

let elements = function
  | Bits m ->
    let rec go m i acc =
      if m = 0 then List.rev acc
      else go (m lsr 1) (i + 1) (if m land 1 <> 0 then i :: acc else acc)
    in
    go m 0 []
  | Tree s -> ISet.elements s

let union a b =
  match (a, b) with
  | Bits x, Bits y -> Bits (x lor y)
  | _ -> Tree (ISet.union (to_tree a) (to_tree b))

let inter a b =
  match (a, b) with
  | Bits x, Bits y -> Bits (x land y)
  | _ -> normalize (Tree (ISet.inter (to_tree a) (to_tree b)))

let equal a b =
  match (a, b) with
  | Bits x, Bits y -> x = y
  | _ -> ISet.equal (to_tree a) (to_tree b)

let of_list xs = List.fold_left (fun acc x -> add x acc) empty xs
