type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* [before a b] decides whether entry [a] must pop before entry [b]:
   smaller key first, insertion order breaking ties. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let cap = Array.length h.arr in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* The dummy element is never read: slots >= size are dead. *)
  let dummy = h.arr.(0) in
  let arr = Array.make new_cap dummy in
  Array.blit h.arr 0 arr 0 h.size;
  h.arr <- arr

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.arr.(i) h.arr.(parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && before h.arr.(l) h.arr.(!smallest) then smallest := l;
  if r < h.size && before h.arr.(r) h.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h ~key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.size = 0 && Array.length h.arr = 0 then h.arr <- Array.make 16 entry;
  if h.size = Array.length h.arr then grow h;
  h.arr.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min_key h = if h.size = 0 then None else Some h.arr.(0).key

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      sift_down h 0
    end;
    Some (top.key, top.value)
  end

let clear h =
  h.size <- 0;
  h.arr <- [||]

let iter_unordered h f =
  for i = 0 to h.size - 1 do
    let e = h.arr.(i) in
    f ~key:e.key e.value
  done
