(* Entries live in three parallel arrays rather than an array of records:
   sift operations then read int keys straight out of flat unboxed arrays
   (no pointer chase per comparison), and [add] allocates nothing.  This
   heap is the simulator's event queue, so every event passes through
   here twice. *)
type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
  hint : int;  (* first-allocation capacity; arrays stay [||] until needed *)
}

let create ?(hint = 16) () =
  if hint < 1 then invalid_arg "Heap.create: hint must be positive";
  { keys = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0; hint }

let length h = h.size

let is_empty h = h.size = 0

(* [before h i j] decides whether entry [i] must pop before entry [j]:
   smaller key first, insertion order breaking ties. *)
let before h i j =
  let ki = Array.unsafe_get h.keys i and kj = Array.unsafe_get h.keys j in
  ki < kj
  || (ki = kj && Array.unsafe_get h.seqs i < Array.unsafe_get h.seqs j)

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let grow h value =
  let cap = Array.length h.keys in
  if cap = 0 then begin
    h.keys <- Array.make h.hint 0;
    h.seqs <- Array.make h.hint 0;
    h.vals <- Array.make h.hint value
  end
  else begin
    let new_cap = cap * 2 in
    let keys = Array.make new_cap 0 in
    Array.blit h.keys 0 keys 0 h.size;
    h.keys <- keys;
    let seqs = Array.make new_cap 0 in
    Array.blit h.seqs 0 seqs 0 h.size;
    h.seqs <- seqs;
    (* The fill element is never read: slots >= size are dead. *)
    let vals = Array.make new_cap h.vals.(0) in
    Array.blit h.vals 0 vals 0 h.size;
    h.vals <- vals
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && before h l i then l else i in
  let smallest = if r < h.size && before h r smallest then r else smallest in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let add h ~key value =
  if h.size = Array.length h.keys then grow h value;
  let i = h.size in
  h.keys.(i) <- key;
  h.seqs.(i) <- h.next_seq;
  h.vals.(i) <- value;
  h.next_seq <- h.next_seq + 1;
  h.size <- i + 1;
  sift_up h i

(* Caller-stamped insertion for the PDES shard queues: one coordinator
   allocates seqs across several heaps so that a k-way merge by
   (key, seq) reproduces the pop order a single FIFO heap would give.
   next_seq is kept strictly above every explicit stamp so a later plain
   [add] can never collide with (and tie ambiguously against) a
   caller-provided stamp. *)
let add_stamped h ~key ~seq value =
  if h.size = Array.length h.keys then grow h value;
  let i = h.size in
  h.keys.(i) <- key;
  h.seqs.(i) <- seq;
  h.vals.(i) <- value;
  if seq >= h.next_seq then h.next_seq <- seq + 1;
  h.size <- i + 1;
  sift_up h i

let top_seq h =
  if h.size = 0 then invalid_arg "Heap.top_seq: empty heap";
  Array.unsafe_get h.seqs 0

let min_key h = if h.size = 0 then None else Some h.keys.(0)

let top_key h =
  if h.size = 0 then invalid_arg "Heap.top_key: empty heap";
  Array.unsafe_get h.keys 0

let pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let v = h.vals.(0) in
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then begin
    h.keys.(0) <- h.keys.(last);
    h.seqs.(0) <- h.seqs.(last);
    h.vals.(0) <- h.vals.(last);
    sift_down h 0
  end;
  (* Drop the dead slot's reference so popped values can be collected. *)
  h.vals.(last) <- h.vals.(0);
  v

let pop h =
  if h.size = 0 then None
  else
    let key = h.keys.(0) in
    Some (key, pop_exn h)

let clear h =
  (* Keep the arrays: a heap that is cleared is about to be refilled (the
     eviction-order lookaside rebuilds its heap this way), and reallocating
     from 16 up on every rebuild is pure churn.  Dead value slots keep
     their last occupant alive until overwritten — acceptable for the int
     and closure payloads this heap carries. *)
  h.size <- 0

let iter_unordered h f =
  for i = 0 to h.size - 1 do
    f ~key:h.keys.(i) h.vals.(i)
  done
