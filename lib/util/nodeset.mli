(** Immutable sets of node ids, bitmask-backed.

    A drop-in replacement for [Set.Make(Int)] restricted to the operations
    the coherence directory needs.  Sets whose members all fit in a host
    word (ids [0 .. Sys.int_size - 2], i.e. any realistic machine size)
    are a single immutable bitmask, so updates allocate one box instead of
    O(log n) tree nodes; larger ids transparently spill to a tree, and
    shrinking operations ([remove], [inter]) collapse back to the bitmask
    once every remaining member fits — the representation is canonical in
    the members, never in the operation history.  Negative ids are
    accepted only via the tree path semantics of [Set.Make(Int)] — node
    ids in this simulator are non-negative. *)

type t

val empty : t

val add : int -> t -> t

val remove : int -> t -> t

val mem : int -> t -> bool

val is_empty : t -> bool

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Members are visited in increasing order, as with [Set.Make(Int)]. *)

val elements : t -> int list
(** Members in increasing order. *)

val union : t -> t -> t

val inter : t -> t -> t

val equal : t -> t -> bool

val of_list : int list -> t

val is_direct : t -> bool
(** Whether the set is currently bitmask-backed.  Exposed so tests can pin
    the canonical-representation invariant: [is_direct s] iff every member
    is below [Sys.int_size - 1]. *)
