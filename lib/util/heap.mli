(** Binary min-heap keyed by integer priorities, with stable FIFO order
    among equal keys.

    Used as the event queue of the discrete-event simulator: events scheduled
    for the same simulated time are delivered in insertion order, which keeps
    simulations deterministic. *)

type 'a t
(** A mutable min-heap holding values of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key].  Smaller keys pop
    first; among equal keys, values pop in the order they were added. *)

val min_key : 'a t -> int option
(** [min_key h] is the smallest key in [h], if any. *)

val pop : 'a t -> (int * 'a) option
(** [pop h] removes and returns the minimum-key element, or [None] if the
    heap is empty. *)

val top_key : 'a t -> int
(** [top_key h] is the smallest key in [h].
    @raise Invalid_argument if [h] is empty. *)

val pop_exn : 'a t -> 'a
(** [pop_exn h] removes and returns the minimum-key element's value
    without allocating.  Use [top_key] first to read its key.
    @raise Invalid_argument if [h] is empty. *)

val clear : 'a t -> unit
(** [clear h] removes every element.  The heap's internal capacity is
    retained, so a clear-then-refill cycle does not reallocate. *)

val iter_unordered : 'a t -> (key:int -> 'a -> unit) -> unit
(** [iter_unordered h f] applies [f] to every element in unspecified order,
    without modifying the heap. *)
