(** Binary min-heap keyed by integer priorities, with stable FIFO order
    among equal keys.

    Used as the event queue of the discrete-event simulator: events scheduled
    for the same simulated time are delivered in insertion order, which keeps
    simulations deterministic. *)

type 'a t
(** A mutable min-heap holding values of type ['a]. *)

val create : ?hint:int -> unit -> 'a t
(** [create ?hint ()] is a fresh empty heap.  [hint] (default 16) is the
    capacity of the first backing allocation — a caller that knows its
    steady-state occupancy (the engine's event queue, a PDES shard)
    skips the grow-and-copy ladder from 16 upward.  Arrays are not
    allocated until the first {!add}, so an over-hinted heap that stays
    empty costs nothing.  Growth past the hint still doubles.
    @raise Invalid_argument if [hint] is not positive. *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key].  Smaller keys pop
    first; among equal keys, values pop in the order they were added
    (each insertion is stamped with an internal sequence number and ties
    break on it — FIFO among equals is a guarantee, not an accident of
    sift order). *)

val add_stamped : 'a t -> key:int -> seq:int -> 'a -> unit
(** [add_stamped h ~key ~seq v] inserts [v] with an explicit tie-break
    stamp instead of the internal counter.  Used by the parallel engine's
    shard queues: one coordinator allocates stamps across several heaps so
    that merging them by [(key, seq)] reproduces exactly the order a
    single heap fed by {!add} would pop.  The caller owns stamp
    uniqueness; the internal counter is advanced past [seq] so later
    {!add}s never collide. *)

val top_seq : 'a t -> int
(** [top_seq h] is the tie-break stamp of the minimum element — the value
    compared against other heaps' tops in a k-way merge.
    @raise Invalid_argument if [h] is empty. *)

val min_key : 'a t -> int option
(** [min_key h] is the smallest key in [h], if any. *)

val pop : 'a t -> (int * 'a) option
(** [pop h] removes and returns the minimum-key element, or [None] if the
    heap is empty. *)

val top_key : 'a t -> int
(** [top_key h] is the smallest key in [h].
    @raise Invalid_argument if [h] is empty. *)

val pop_exn : 'a t -> 'a
(** [pop_exn h] removes and returns the minimum-key element's value
    without allocating.  Use [top_key] first to read its key.
    @raise Invalid_argument if [h] is empty. *)

val clear : 'a t -> unit
(** [clear h] removes every element.  The heap's internal capacity is
    retained, so a clear-then-refill cycle does not reallocate. *)

val iter_unordered : 'a t -> (key:int -> 'a -> unit) -> unit
(** [iter_unordered h f] applies [f] to every element in unspecified order,
    without modifying the heap. *)
