(** Small bit masks over word indices within a cache block.

    LCM tracks, for every locally-modified (marked) block, exactly which
    words the running invocation has stored to.  Reconciliation then merges
    only masked words and detects conflicts as overlapping masks.  Blocks in
    this code base hold at most {!max_words} words, so a mask fits in a
    native [int]. *)

type t = private int
(** A set of word indices in [\[0, max_words)]. *)

val max_words : int
(** Largest supported block size, in words. *)

val empty : t
(** The empty mask. *)

val full : int -> t
(** [full n] has bits [0 .. n-1] set.  @raise Invalid_argument if [n] is
    not in [\[0, max_words\]]. *)

val singleton : int -> t
(** [singleton i] has only bit [i] set. *)

val set : t -> int -> t
(** [set m i] is [m] with bit [i] added. *)

val mem : t -> int -> bool
(** [mem m i] tests bit [i]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool

val overlaps : t -> t -> bool
(** [overlaps a b] is [not (is_empty (inter a b))]. *)

val cardinal : t -> int
(** Number of set bits. *)

val iter : t -> (int -> unit) -> unit
(** [iter m f] applies [f] to each set bit index in increasing order. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val to_list : t -> int list
(** Set bit indices in increasing order. *)

val of_list : int list -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders e.g. [{0,3,7}]. *)
