type sample = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  samples : (string, sample) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; samples = Hashtbl.create 16 }

let counter_ref s name =
  match Hashtbl.find_opt s.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add s.counters name r;
    r

let incr s name =
  let r = counter_ref s name in
  incr r

let add s name n =
  let r = counter_ref s name in
  r := !r + n

let get s name = match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0

let set_max s name v =
  let r = counter_ref s name in
  if v > !r then r := v

let sample_rec s name =
  match Hashtbl.find_opt s.samples name with
  | Some x -> x
  | None ->
    let x = { count = 0; sum = 0.0; min = infinity; max = neg_infinity } in
    Hashtbl.add s.samples name x;
    x

let observe s name x =
  let r = sample_rec s name in
  r.count <- r.count + 1;
  r.sum <- r.sum +. x;
  if x < r.min then r.min <- x;
  if x > r.max then r.max <- x

let sample_count s name =
  match Hashtbl.find_opt s.samples name with Some r -> r.count | None -> 0

let sample_sum s name =
  match Hashtbl.find_opt s.samples name with Some r -> r.sum | None -> 0.0

let sample_mean s name =
  match Hashtbl.find_opt s.samples name with
  | Some r when r.count > 0 -> r.sum /. float_of_int r.count
  | Some _ | None -> 0.0

let counters s =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) s.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst src =
  Hashtbl.iter (fun name r -> add dst name !r) src.counters;
  Hashtbl.iter
    (fun name r ->
      let d = sample_rec dst name in
      d.count <- d.count + r.count;
      d.sum <- d.sum +. r.sum;
      if r.min < d.min then d.min <- r.min;
      if r.max > d.max then d.max <- r.max)
    src.samples

let reset s =
  Hashtbl.reset s.counters;
  Hashtbl.reset s.samples

let pp ppf s =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (counters s)
