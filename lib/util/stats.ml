type sample = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

(* Handles wrap the mutable cell together with enough context to register
   the name in the owning registry on first write.  Registration is lazy so
   that resolving a handle for a counter that never fires leaves no trace:
   [counters]/[gauges]/[samples] list exactly the names that were actually
   written, the same set the pure string API produces.  [kind] is a phantom
   distinguishing counters from gauges at the type level. *)
type 'kind num_handle = {
  cell : int ref;
  num_name : string;
  num_table : (string, int ref) Hashtbl.t;
  mutable num_linked : bool;
}

type sample_handle = {
  rec_ : sample;
  s_name : string;
  s_table : (string, sample) Hashtbl.t;
  mutable s_linked : bool;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  samples : (string, sample) Hashtbl.t;
  (* unregistered handles by name, so two resolutions of a never-written
     name still share one cell *)
  pending_counters : (string, [ `Counter ] num_handle) Hashtbl.t;
  pending_gauges : (string, [ `Gauge ] num_handle) Hashtbl.t;
  pending_samples : (string, sample_handle) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    samples = Hashtbl.create 16;
    pending_counters = Hashtbl.create 16;
    pending_gauges = Hashtbl.create 8;
    pending_samples = Hashtbl.create 8;
  }

module Handle = struct
  type counter = [ `Counter ] num_handle
  type gauge = [ `Gauge ] num_handle
  type sample = sample_handle

  let link h =
    if not h.num_linked then begin
      Hashtbl.replace h.num_table h.num_name h.cell;
      h.num_linked <- true
    end

  let incr h =
    link h;
    Stdlib.incr h.cell

  let add h n =
    link h;
    h.cell := !(h.cell) + n

  let value h = !(h.cell)

  let set_max h v =
    link h;
    if v > !(h.cell) then h.cell := v

  let link_sample h =
    if not h.s_linked then begin
      Hashtbl.replace h.s_table h.s_name h.rec_;
      h.s_linked <- true
    end

  let observe h x =
    link_sample h;
    let r = h.rec_ in
    r.count <- r.count + 1;
    r.sum <- r.sum +. x;
    if x < r.min then r.min <- x;
    if x > r.max then r.max <- x
end

let resolve_num table pending name =
  match Hashtbl.find_opt table name with
  | Some cell -> { cell; num_name = name; num_table = table; num_linked = true }
  | None -> (
    match Hashtbl.find_opt pending name with
    | Some h -> h
    | None ->
      let h =
        { cell = ref 0; num_name = name; num_table = table; num_linked = false }
      in
      Hashtbl.add pending name h;
      h)

let counter s name = resolve_num s.counters s.pending_counters name

let gauge s name = resolve_num s.gauges s.pending_gauges name

let fresh_sample () = { count = 0; sum = 0.0; min = infinity; max = neg_infinity }

let sample s name =
  match Hashtbl.find_opt s.samples name with
  | Some rec_ -> { rec_; s_name = name; s_table = s.samples; s_linked = true }
  | None -> (
    match Hashtbl.find_opt s.pending_samples name with
    | Some h -> h
    | None ->
      let h =
        { rec_ = fresh_sample (); s_name = name; s_table = s.samples;
          s_linked = false }
      in
      Hashtbl.add s.pending_samples name h;
      h)

(* The string API is the cold path: it resolves a fresh handle per call. *)

let incr s name = Handle.incr (counter s name)

let add s name n = Handle.add (counter s name) n

let get s name = match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0

(* Gauges live in their own table: a gauge is a high-water mark, not an
   accumulation, so merging runs must take the max — summing would report
   impossible peaks (see merge_into). *)
let set_max s name v = Handle.set_max (gauge s name) v

let gauge_value s name =
  match Hashtbl.find_opt s.gauges name with Some r -> !r | None -> 0

let observe s name x = Handle.observe (sample s name) x

let sample_count s name =
  match Hashtbl.find_opt s.samples name with Some r -> r.count | None -> 0

let sample_sum s name =
  match Hashtbl.find_opt s.samples name with Some r -> r.sum | None -> 0.0

let sample_mean s name =
  match Hashtbl.find_opt s.samples name with
  | Some r when r.count > 0 -> r.sum /. float_of_int r.count
  | Some _ | None -> 0.0

type summary = { count : int; mean : float; min : float; max : float }

(* Only called on observed series (count > 0): an empty series has no
   min/max, so summarizing it would have to invent values (the old 0.0
   placeholder was indistinguishable from a real all-zero sample).
   Empty series are instead omitted from [samples] and [None] from
   [summary]. *)
let summarize (r : sample) =
  { count = r.count; mean = r.sum /. float_of_int r.count; min = r.min;
    max = r.max }

let summary s name =
  match Hashtbl.find_opt s.samples name with
  | Some r when r.count > 0 -> Some (summarize r)
  | Some _ | None -> None

let samples s =
  Hashtbl.fold
    (fun name (r : sample) acc ->
      if r.count > 0 then (name, summarize r) :: acc else acc)
    s.samples []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sorted_bindings table =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters s = sorted_bindings s.counters

let gauges s = sorted_bindings s.gauges

let merge_into ~dst src =
  (* Merging a registry into itself would double-count every counter and
     mutate the sample records mid-iteration; it can only arise by
     accident, so make it an explicit no-op. *)
  if dst != src then begin
    Hashtbl.iter (fun name r -> add dst name !r) src.counters;
    Hashtbl.iter (fun name r -> set_max dst name !r) src.gauges;
    Hashtbl.iter
      (fun name (r : sample) ->
        let dh = sample dst name in
        Handle.link_sample dh;
        let d = dh.rec_ in
        d.count <- d.count + r.count;
        d.sum <- d.sum +. r.sum;
        if r.min < d.min then d.min <- r.min;
        if r.max > d.max then d.max <- r.max)
      src.samples
  end

let reset s =
  Hashtbl.reset s.counters;
  Hashtbl.reset s.gauges;
  Hashtbl.reset s.samples;
  Hashtbl.reset s.pending_counters;
  Hashtbl.reset s.pending_gauges;
  Hashtbl.reset s.pending_samples

let pp ppf s =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (counters s);
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%s = %d (gauge)@." name v)
    (gauges s);
  List.iter
    (fun (name, sm) ->
      Format.fprintf ppf "%s = count=%d mean=%g min=%g max=%g (sample)@." name
        sm.count sm.mean sm.min sm.max)
    (samples s)
