type sample = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  samples : (string, sample) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    samples = Hashtbl.create 16;
  }

let ref_in table name =
  match Hashtbl.find_opt table name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add table name r;
    r

let counter_ref s name = ref_in s.counters name

let incr s name =
  let r = counter_ref s name in
  incr r

let add s name n =
  let r = counter_ref s name in
  r := !r + n

let get s name = match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0

(* Gauges live in their own table: a gauge is a high-water mark, not an
   accumulation, so merging runs must take the max — summing would report
   impossible peaks (see merge_into). *)
let set_max s name v =
  let r = ref_in s.gauges name in
  if v > !r then r := v

let gauge s name =
  match Hashtbl.find_opt s.gauges name with Some r -> !r | None -> 0

let sample_rec s name =
  match Hashtbl.find_opt s.samples name with
  | Some x -> x
  | None ->
    let x = { count = 0; sum = 0.0; min = infinity; max = neg_infinity } in
    Hashtbl.add s.samples name x;
    x

let observe s name x =
  let r = sample_rec s name in
  r.count <- r.count + 1;
  r.sum <- r.sum +. x;
  if x < r.min then r.min <- x;
  if x > r.max then r.max <- x

let sample_count s name =
  match Hashtbl.find_opt s.samples name with Some r -> r.count | None -> 0

let sample_sum s name =
  match Hashtbl.find_opt s.samples name with Some r -> r.sum | None -> 0.0

let sample_mean s name =
  match Hashtbl.find_opt s.samples name with
  | Some r when r.count > 0 -> r.sum /. float_of_int r.count
  | Some _ | None -> 0.0

type summary = { count : int; mean : float; min : float; max : float }

let summarize (r : sample) =
  let mean = if r.count > 0 then r.sum /. float_of_int r.count else 0.0 in
  let min = if r.count > 0 then r.min else 0.0 in
  let max = if r.count > 0 then r.max else 0.0 in
  { count = r.count; mean; min; max }

let samples s =
  Hashtbl.fold (fun name r acc -> (name, summarize r) :: acc) s.samples []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sorted_bindings table =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters s = sorted_bindings s.counters

let gauges s = sorted_bindings s.gauges

let merge_into ~dst src =
  Hashtbl.iter (fun name r -> add dst name !r) src.counters;
  Hashtbl.iter (fun name r -> set_max dst name !r) src.gauges;
  Hashtbl.iter
    (fun name (r : sample) ->
      let d = sample_rec dst name in
      d.count <- d.count + r.count;
      d.sum <- d.sum +. r.sum;
      if r.min < d.min then d.min <- r.min;
      if r.max > d.max then d.max <- r.max)
    src.samples

let reset s =
  Hashtbl.reset s.counters;
  Hashtbl.reset s.gauges;
  Hashtbl.reset s.samples

let pp ppf s =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (counters s);
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%s = %d (gauge)@." name v)
    (gauges s);
  List.iter
    (fun (name, sm) ->
      Format.fprintf ppf "%s = count=%d mean=%g min=%g max=%g (sample)@." name
        sm.count sm.mean sm.min sm.max)
    (samples s)
