(** Plain-text table rendering for the benchmark harness.

    Produces aligned, boxed ASCII tables similar in spirit to the paper's
    Table 1, so the harness output can be eyeballed next to the paper. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out [rows] under [header] with columns padded
    to the widest cell.  [align] gives per-column alignment (default: first
    column left, the rest right).  Rows shorter than the header are padded
    with empty cells; longer rows are truncated. *)

val print :
  ?align:align list ->
  header:string list ->
  string list list ->
  unit
(** [print] is [render] followed by [print_string]. *)
