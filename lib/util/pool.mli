(** Free-list object pool for high-churn mutable records.

    The simulator's steady state recycles a small working set of records
    (engine events, reliable-transport envelopes, protocol waiter cells)
    instead of allocating a fresh one per operation — the allocation
    discipline described in DESIGN.md §"Host allocation discipline".

    A pool never shrinks: records released at peak churn stay cached for
    the rest of the run.  Pools are single-domain objects, like the
    engine that owns them. *)

type 'a t

val debug : bool ref
(** When set, every {!release} poisons the record (via the pool's
    [poison] action) and scans the free list to reject double releases
    with [Invalid_argument].  Off by default: the scan is O(free-list).
    Tests flip this to catch use-after-release aliasing. *)

val create : ?poison:('a -> unit) -> make:(unit -> 'a) -> unit -> 'a t
(** [create ?poison ~make ()] is an empty pool.  [make] constructs a
    fresh record when the free list is empty; [poison] (debug mode only)
    overwrites a released record's fields with values that fail loudly
    if the old reference is used again. *)

val acquire : 'a t -> 'a
(** Pop a recycled record, or construct one if the free list is empty.
    The record's fields hold whatever the previous user left (or the
    poison values, in debug mode): the caller initialises every field it
    reads. *)

val release : 'a t -> 'a -> unit
(** Return a record to the free list.  The caller must not touch it
    again until it is re-acquired.
    @raise Invalid_argument on double release (checked in debug mode) or
    when releases outnumber acquires. *)

val live : 'a t -> int
(** Records currently acquired.  A quiescent simulator should be back to
    a small steady count — the pool tests assert round-trip balance. *)

val free_count : 'a t -> int
(** Records currently cached on the free list. *)

val created : 'a t -> int
(** Records ever constructed — the pool's total allocation footprint.
    A pooled hot path shows [created] plateauing at the peak in-flight
    count while acquire/release churn grows unbounded. *)
