(** A miniature C\*\* kernel language and its compiler.

    The paper's division of labour has the compiler analyse a parallel
    function, decide which memory accesses may conflict with other
    invocations, and insert [mark_modification] / [flush_copies]
    directives (or fall back to conservative explicit copying).  This
    module makes that concrete: kernels are a small deep-embedded AST over
    2-D aggregates, {!analyze} performs the conflict analysis, and
    {!compile} emits an invocation function with the directives (or the
    double-buffering) the runtime strategy requires.

    The index language deliberately covers the paper's workloads: an
    invocation at [(i, j)] may reference aggregates at constant offsets
    from its own coordinates — enough to express stencils, thresholds and
    whole-array maps, and enough for the analysis to be exact. *)

(** {1 Abstract syntax} *)

type idx = Self | Off of int
(** An index coordinate: this invocation's own ([Self] = [#0]/[#1]) or at a
    constant offset from it. *)

type expr =
  | Const of float
  | Ivar  (** [#0] as a float *)
  | Jvar  (** [#1] as a float *)
  | Read of string * idx * idx  (** [A\[i+di\]\[j+dj\]] *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Abs of expr
  | Min of expr * expr
  | Max of expr * expr

type icmp = Lt | Le | Eq | Ne | Ge | Gt

type iatom =
  | I
  | J
  | Rows
  | Cols
  | IConst of int
  | IAddc of iatom * int
  | IAdd of iatom * iatom
  | IMod of iatom * int  (** modulo a positive constant (e.g. parity) *)

type cond =
  | ICmp of icmp * iatom * iatom
  | FCmp of icmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Interior  (** shorthand: 0 < i < rows-1 and 0 < j < cols-1 *)

type stmt =
  | Assign of string * idx * idx * expr  (** [A\[i+di\]\[j+dj\] = e] *)
  | Reduce of string * expr  (** [r %op= e] — reduction assignment *)
  | If of cond * stmt list * stmt list
  | Work of int  (** charge explicit compute cycles *)

type t = { name : string; body : stmt list }

(** {1 Analysis} *)

type decision = {
  marked_aggs : string list;
      (** aggregates whose writes get a [mark_modification]: some other
          invocation may access the written elements *)
  unmarked_aggs : string list;
      (** written aggregates proven private per-invocation: the compiler
          emits plain stores and relies on the memory system to catch the
          unexpected (the paper's "expected case" optimisation) *)
  flush_between : bool;
      (** true iff an invocation may read elements of an aggregate that
          another invocation on the same node wrote — flush_copies must
          separate invocations *)
  double_buffered : string list;
      (** under explicit copying: aggregates needing the two-copy scheme
          (read old / write new / swap) *)
  precopied : string list;
      (** under explicit copying: double-buffered aggregates whose
          elements are not all provably written each call, so every value
          must be conservatively copied to the new buffer first (the
          expensive case the paper's Threshold avoids by writing every
          element by hand) *)
}

val analyze : t -> decision
(** Static conflict analysis.  A write to [A] at [(Self, Self)] conflicts
    iff the kernel elsewhere references [A] at a non-[Self] offset; a write
    at a non-[Self] offset always conflicts.  Reductions always combine and
    never need flushes of their own. *)

val validate : t -> (unit, string) result
(** Reject kernels that read aggregates they never declare, divide by a
    constant zero, etc. (best-effort sanity checks). *)

(** {1 Compilation and execution} *)

type env = {
  aggs : (string * Agg.t) list;  (** aggregate bindings *)
  reducers : (string * Reducer.t) list;  (** reduction variable bindings *)
}

val compile :
  Runtime.t -> t -> env -> over:string -> (?iter:int -> unit -> unit)
(** [compile rt k env ~over] type-checks the kernel against [env] and
    returns a function that applies it in parallel over every element of
    aggregate [over], with marks/flushes (LCM strategy) or double-buffered
    access plus post-call swaps (explicit-copy strategy) exactly as
    {!analyze} decided.

    @raise Invalid_argument if the kernel references unbound names, or if
    [over] is unbound. *)

val pp_decision : Format.formatter -> decision -> unit

val pp : Format.formatter -> t -> unit
(** Pretty-print the kernel source, C\*\*-style. *)

val pp_compiled : Runtime.t -> Format.formatter -> t -> unit
(** Pretty-print the code the compiler conceptually emits for the
    runtime's strategy — kernel statements interleaved with the inserted
    directives, like the paper's Section 6.1 listing. *)
