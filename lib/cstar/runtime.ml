module Proto = Lcm_core.Proto
module Machine = Lcm_tempest.Machine
module Memeff = Lcm_tempest.Memeff

type strategy = Lcm_directives | Explicit_copy

type phase_snapshot = {
  label : string;
  started : int;
  finished : int;
  before : (string * int) list;
  after : (string * int) list;
}

type t = {
  proto : Proto.t;
  strategy : strategy;
  (* per-phase counters, resolved once at create (names unchanged) *)
  h_parallel_calls : Lcm_util.Stats.Handle.counter;
  h_invocations : Lcm_util.Stats.Handle.counter;
  h_phase_cycles : Lcm_util.Stats.Handle.sample;
  schedule : Schedule.t;
  flush_between : bool;
  chunks_per_node : int;
  mutable phase_log : phase_snapshot list; (* newest first *)
  mutable log_phases : bool;
}

let create proto ~strategy ~schedule ?(flush_between = true)
    ?(chunks_per_node = 1) () =
  if chunks_per_node <= 0 then
    invalid_arg "Runtime.create: chunks_per_node must be positive";
  let s = Machine.stats (Proto.machine proto) in
  {
    proto;
    strategy;
    h_parallel_calls = Lcm_util.Stats.counter s "cstar.parallel_calls";
    h_invocations = Lcm_util.Stats.counter s "cstar.invocations";
    h_phase_cycles = Lcm_util.Stats.sample s "cstar.phase_cycles";
    schedule;
    flush_between;
    chunks_per_node;
    phase_log = [];
    log_phases = false;
  }

let enable_phase_log t = t.log_phases <- true
let phase_log t = List.rev t.phase_log

let proto t = t.proto
let machine t = Proto.machine t.proto
let strategy t = t.strategy

let agg_strategy t =
  match t.strategy with
  | Lcm_directives -> Agg.Lcm
  | Explicit_copy -> Agg.Double_buffered

let alloc2d t ~rows ~cols ~dist =
  Agg.create t.proto ~strategy:(agg_strategy t) ~rows ~cols ~dist

let alloc1d t ~n ~dist = Agg.create1d t.proto ~strategy:(agg_strategy t) ~n ~dist

let reducer t ~op ~init = Reducer.create t.proto ~strategy:(agg_strategy t) ~op ~init

let stats t = Machine.stats (machine t)

let elapsed t = Machine.max_clock (machine t)

let sequential t ?(node = 0) f =
  let mach = machine t in
  Machine.spawn mach (Machine.node mach node) f;
  Machine.run_to_quiescence mach;
  Machine.set_all_clocks mach (Machine.max_clock mach)

let parallel_apply t ?(iter = 0) ?(reducers = []) ?flush_between ?schedule ~n
    body =
  let mach = machine t in
  let nnodes = Machine.nnodes mach in
  let costs = Machine.costs mach in
  let started = Machine.max_clock mach in
  let before = if t.log_phases then Lcm_util.Stats.counters (stats t) else [] in
  Proto.begin_parallel t.proto;
  let schedule = Option.value schedule ~default:t.schedule in
  let nchunks = max 1 (min n (nnodes * t.chunks_per_node)) in
  let ranges = Schedule.chunks ~n ~nchunks in
  let assignment = Schedule.assign schedule ~iter ~nnodes ~nchunks in
  let dynamic = Schedule.is_dynamic schedule in
  let emit_flush =
    Option.value flush_between ~default:t.flush_between
    && t.strategy = Lcm_directives
  in
  for nid = 0 to nnodes - 1 do
    let my_chunks =
      List.filter (fun c -> assignment.(c) = nid) (List.init nchunks Fun.id)
    in
    if my_chunks <> [] then
      Machine.spawn mach (Machine.node mach nid) (fun () ->
          List.iter
            (fun c ->
              if dynamic then Memeff.work costs.Lcm_sim.Costs.sched_dequeue;
              let lo, hi = ranges.(c) in
              for index = lo to hi - 1 do
                Memeff.yield ();
                Memeff.work costs.Lcm_sim.Costs.invocation_overhead;
                body (Ctx.make ~index ~node:nid ~iter);
                if emit_flush then Memeff.directive Memeff.Flush_copies
              done)
            my_chunks)
  done;
  Machine.run_to_quiescence mach;
  Proto.reconcile t.proto;
  (* The explicit-copy strategy folds reduction partials sequentially, as
     hand-written code would after the parallel loop. *)
  (match t.strategy with
  | Explicit_copy when reducers <> [] ->
    sequential t (fun () -> List.iter Reducer.finalize reducers)
  | Explicit_copy | Lcm_directives -> ());
  let finished = Machine.max_clock mach in
  Lcm_util.Stats.Handle.incr t.h_parallel_calls;
  Lcm_util.Stats.Handle.add t.h_invocations n;
  Lcm_util.Stats.Handle.observe t.h_phase_cycles
    (float_of_int (finished - started));
  if t.log_phases then begin
    let label =
      Printf.sprintf "parallel#%d"
        (Lcm_util.Stats.Handle.value t.h_parallel_calls)
    in
    let after = Lcm_util.Stats.counters (stats t) in
    t.phase_log <- { label; started; finished; before; after } :: t.phase_log
  end

let parallel_apply_2d t ?iter ?reducers ?flush_between ?schedule ~rows ~cols
    body =
  parallel_apply t ?iter ?reducers ?flush_between ?schedule ~n:(rows * cols)
    (fun ctx ->
      let i = ctx.Ctx.index / cols and j = ctx.Ctx.index mod cols in
      body ctx i j)
