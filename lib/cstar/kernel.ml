type idx = Self | Off of int

type expr =
  | Const of float
  | Ivar
  | Jvar
  | Read of string * idx * idx
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Abs of expr
  | Min of expr * expr
  | Max of expr * expr

type icmp = Lt | Le | Eq | Ne | Ge | Gt

type iatom =
  | I
  | J
  | Rows
  | Cols
  | IConst of int
  | IAddc of iatom * int
  | IAdd of iatom * iatom
  | IMod of iatom * int

type cond =
  | ICmp of icmp * iatom * iatom
  | FCmp of icmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Interior

type stmt =
  | Assign of string * idx * idx * expr
  | Reduce of string * expr
  | If of cond * stmt list * stmt list
  | Work of int

type t = { name : string; body : stmt list }

(* ------------------------------------------------------------------ *)
(* Footprints                                                          *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

type access = { agg : string; di : idx; dj : idx }

let rec expr_reads acc = function
  | Const _ | Ivar | Jvar -> acc
  | Read (agg, di, dj) -> { agg; di; dj } :: acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b) ->
    expr_reads (expr_reads acc a) b
  | Neg a | Abs a -> expr_reads acc a

let rec cond_reads acc = function
  | ICmp _ | Interior -> acc
  | FCmp (_, a, b) -> expr_reads (expr_reads acc a) b
  | And (a, b) | Or (a, b) -> cond_reads (cond_reads acc a) b
  | Not a -> cond_reads acc a

let rec stmt_accesses (reads, writes) = function
  | Assign (agg, di, dj, e) -> (expr_reads reads e, { agg; di; dj } :: writes)
  | Reduce (_, e) -> (expr_reads reads e, writes)
  | Work _ -> (reads, writes)
  | If (c, t, f) ->
    let acc = (cond_reads reads c, writes) in
    let acc = List.fold_left stmt_accesses acc t in
    List.fold_left stmt_accesses acc f

let accesses body = List.fold_left stmt_accesses ([], []) body

let rec stmt_reducers acc = function
  | Reduce (name, _) -> SSet.add name acc
  | Assign _ | Work _ -> acc
  | If (_, t, f) ->
    List.fold_left stmt_reducers (List.fold_left stmt_reducers acc t) f

let is_self = function Self | Off 0 -> true | Off _ -> false

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

type decision = {
  marked_aggs : string list;
  unmarked_aggs : string list;
  flush_between : bool;
  double_buffered : string list;
  precopied : string list;
}

(* [definitely_assigns agg stmts]: every invocation surely writes its own
   element of [agg] (needed to elide the conservative pre-copy under
   explicit copying). *)
let rec definitely_assigns agg stmts =
  List.exists
    (function
      | Assign (a, di, dj, _) -> a = agg && is_self di && is_self dj
      | If (_, t, f) -> definitely_assigns agg t && definitely_assigns agg f
      | Reduce _ | Work _ -> false)
    stmts

let analyze { body; _ } =
  let reads, writes = accesses body in
  let written = List.fold_left (fun s a -> SSet.add a.agg s) SSet.empty writes in
  (* A written aggregate conflicts when some invocation may touch another
     invocation's written element: any non-self read or write of it. *)
  let conflicting agg =
    List.exists (fun a -> a.agg = agg && not (is_self a.di && is_self a.dj)) reads
    || List.exists
         (fun a -> a.agg = agg && not (is_self a.di && is_self a.dj))
         writes
  in
  let marked, unmarked = SSet.partition conflicting written in
  (* An invocation can observe a same-node predecessor's write only if the
     kernel reads an aggregate it also writes. *)
  let flush_between = List.exists (fun a -> SSet.mem a.agg written) reads in
  (* Explicit copying: a double-buffered aggregate whose elements are not
     all surely written needs its unwritten values moved to the new buffer
     by a conservative pre-copy phase. *)
  let precopied = SSet.filter (fun a -> not (definitely_assigns a body)) marked in
  {
    marked_aggs = SSet.elements marked;
    unmarked_aggs = SSet.elements unmarked;
    flush_between;
    double_buffered = SSet.elements marked;
    precopied = SSet.elements precopied;
  }

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate { body; name } =
  let rec check_expr = function
    | Div (_, Const 0.0) -> Error (name ^ ": division by constant zero")
    | Div (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b) | Min (a, b) | Max (a, b) -> (
      match check_expr a with Ok () -> check_expr b | e -> e)
    | Neg a | Abs a -> check_expr a
    | Const _ | Ivar | Jvar | Read _ -> Ok ()
  in
  let rec check_stmt = function
    | Assign (_, _, _, e) | Reduce (_, e) -> check_expr e
    | Work n -> if n < 0 then Error (name ^ ": negative work") else Ok ()
    | If (_, t, f) -> check_stmts (t @ f)
  and check_stmts = function
    | [] -> Ok ()
    | s :: rest -> ( match check_stmt s with Ok () -> check_stmts rest | e -> e)
  in
  check_stmts body

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type env = {
  aggs : (string * Agg.t) list;
  reducers : (string * Reducer.t) list;
}

let lookup_agg env name =
  match List.assoc_opt name env.aggs with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Kernel: unbound aggregate %S" name)

let lookup_reducer env name =
  match List.assoc_opt name env.reducers with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Kernel: unbound reduction variable %S" name)

let coord base = function Self -> base | Off d -> base + d

(* Clamped aggregate access: out-of-range offsets read/write the border
   element, so kernels can omit border guards when they do not care. *)
let clamp v lo hi = if v < lo then lo else if v > hi then hi else v

let compile rt ({ body; _ } as k) env ~over =
  (match validate k with Ok () -> () | Error e -> invalid_arg e);
  let d = analyze k in
  let over_agg = lookup_agg env over in
  let rows = Agg.rows over_agg and cols = Agg.cols over_agg in
  (* Pre-resolve names once, at "compile time". *)
  let agg name = lookup_agg env name in
  let lcm = Runtime.strategy rt = Runtime.Lcm_directives in
  let rec ieval ~i ~j = function
    | I -> i
    | J -> j
    | Rows -> rows
    | Cols -> cols
    | IConst n -> n
    | IAddc (a, n) -> ieval ~i ~j a + n
    | IAdd (a, b) -> ieval ~i ~j a + ieval ~i ~j b
    | IMod (a, n) ->
      if n <= 0 then invalid_arg "Kernel: IMod by non-positive constant";
      ((ieval ~i ~j a mod n) + n) mod n
  in
  let cmp_int op (a : int) b =
    match op with
    | Lt -> a < b
    | Le -> a <= b
    | Eq -> a = b
    | Ne -> a <> b
    | Ge -> a >= b
    | Gt -> a > b
  in
  let cmp_float op (a : float) b =
    match op with
    | Lt -> a < b
    | Le -> a <= b
    | Eq -> a = b
    | Ne -> a <> b
    | Ge -> a >= b
    | Gt -> a > b
  in
  let read name di dj ~i ~j =
    let a = agg name in
    let ri = clamp (coord i di) 0 (Agg.rows a - 1) in
    let rj = clamp (coord j dj) 0 (Agg.cols a - 1) in
    Agg.getf a ri rj
  in
  let rec eval ~i ~j = function
    | Const c -> c
    | Ivar -> float_of_int i
    | Jvar -> float_of_int j
    | Read (name, di, dj) -> read name di dj ~i ~j
    | Add (a, b) -> eval ~i ~j a +. eval ~i ~j b
    | Sub (a, b) -> eval ~i ~j a -. eval ~i ~j b
    | Mul (a, b) -> eval ~i ~j a *. eval ~i ~j b
    | Div (a, b) -> eval ~i ~j a /. eval ~i ~j b
    | Neg a -> -.eval ~i ~j a
    | Abs a -> abs_float (eval ~i ~j a)
    | Min (a, b) -> Float.min (eval ~i ~j a) (eval ~i ~j b)
    | Max (a, b) -> Float.max (eval ~i ~j a) (eval ~i ~j b)
  in
  let rec test ~i ~j = function
    | ICmp (op, a, b) -> cmp_int op (ieval ~i ~j a) (ieval ~i ~j b)
    | FCmp (op, a, b) -> cmp_float op (eval ~i ~j a) (eval ~i ~j b)
    | And (a, b) -> test ~i ~j a && test ~i ~j b
    | Or (a, b) -> test ~i ~j a || test ~i ~j b
    | Not a -> not (test ~i ~j a)
    | Interior -> i > 0 && j > 0 && i < rows - 1 && j < cols - 1
  in
  let rec exec ~ctx ~i ~j = function
    | Work n -> Lcm_tempest.Memeff.work n
    | Assign (name, di, dj, e) ->
      let a = agg name in
      let wi = clamp (coord i di) 0 (Agg.rows a - 1) in
      let wj = clamp (coord j dj) 0 (Agg.cols a - 1) in
      let v = eval ~i ~j e in
      (* The compiler — not the aggregate accessor — decides marking and
         buffering.  Conflicting writes go to the write buffer (the back
         copy under explicit copying) with a mark under LCM; writes proven
         private update in place — under LCM the memory system still
         backstops them with implicit marks if they touch shared blocks. *)
      let conflicting = List.mem name d.marked_aggs in
      let addr =
        if conflicting then Agg.write_addr a wi wj else Agg.read_addr a wi wj
      in
      if lcm && conflicting then
        Lcm_tempest.Memeff.directive (Lcm_tempest.Memeff.Mark_modification addr);
      Lcm_tempest.Memeff.store addr (Lcm_mem.Word.of_float v)
    | Reduce (name, e) ->
      let r = lookup_reducer env name in
      Reducer.addf ctx r (eval ~i ~j e)
    | If (c, t, f) ->
      if test ~i ~j c then List.iter (exec ~ctx ~i ~j) t
      else List.iter (exec ~ctx ~i ~j) f
  in
  let reducers =
    SSet.elements (List.fold_left stmt_reducers SSet.empty body)
    |> List.map (lookup_reducer env)
  in
  let swap_targets =
    if lcm then []
    else List.map agg (List.sort_uniq compare d.double_buffered)
  in
  let precopy_targets = if lcm then [] else List.map agg d.precopied in
  fun ?(iter = 0) () ->
    (* conservative pre-copy: move every element of the partially-written
       aggregates into the new buffer before the parallel call *)
    List.iter
      (fun a ->
        Runtime.parallel_apply_2d rt ~iter ~schedule:Schedule.Static
          ~rows:(Agg.rows a) ~cols:(Agg.cols a) (fun _ctx i j ->
            Agg.set a i j (Agg.get a i j)))
      precopy_targets;
    Runtime.parallel_apply_2d rt ~iter ~reducers
      ~flush_between:d.flush_between ~rows ~cols (fun ctx i j ->
        List.iter (exec ~ctx ~i ~j) body);
    List.iter Agg.swap swap_targets

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_idx var ppf = function
  | Self | Off 0 -> Format.pp_print_string ppf var
  | Off d when d > 0 -> Format.fprintf ppf "%s+%d" var d
  | Off d -> Format.fprintf ppf "%s-%d" var (-d)

let rec pp_expr ppf = function
  | Const c -> Format.fprintf ppf "%g" c
  | Ivar -> Format.pp_print_string ppf "#0"
  | Jvar -> Format.pp_print_string ppf "#1"
  | Read (a, di, dj) ->
    Format.fprintf ppf "%s[%a][%a]" a (pp_idx "#0") di (pp_idx "#1") dj
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_expr a pp_expr b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp_expr a pp_expr b
  | Neg a -> Format.fprintf ppf "(-%a)" pp_expr a
  | Abs a -> Format.fprintf ppf "fabs(%a)" pp_expr a
  | Min (a, b) -> Format.fprintf ppf "min(%a, %a)" pp_expr a pp_expr b
  | Max (a, b) -> Format.fprintf ppf "max(%a, %a)" pp_expr a pp_expr b

let string_of_icmp = function
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "=="
  | Ne -> "!="
  | Ge -> ">="
  | Gt -> ">"

let rec pp_iatom ppf = function
  | I -> Format.pp_print_string ppf "#0"
  | J -> Format.pp_print_string ppf "#1"
  | Rows -> Format.pp_print_string ppf "rows"
  | Cols -> Format.pp_print_string ppf "cols"
  | IConst n -> Format.pp_print_int ppf n
  | IAddc (a, n) -> Format.fprintf ppf "%a+%d" pp_iatom a n
  | IAdd (a, b) -> Format.fprintf ppf "(%a + %a)" pp_iatom a pp_iatom b
  | IMod (a, n) -> Format.fprintf ppf "(%a %% %d)" pp_iatom a n

let rec pp_cond ppf = function
  | ICmp (op, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_iatom a (string_of_icmp op) pp_iatom b
  | FCmp (op, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_expr a (string_of_icmp op) pp_expr b
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_cond a pp_cond b
  | Not a -> Format.fprintf ppf "!(%a)" pp_cond a
  | Interior -> Format.pp_print_string ppf "interior(#0, #1)"

let rec pp_stmt ?(directives = []) indent ppf stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Assign (a, di, dj, e) ->
    if List.mem a directives then
      Format.fprintf ppf "%smark_modification(&%s[%a][%a]);@." pad a
        (pp_idx "#0") di (pp_idx "#1") dj;
    Format.fprintf ppf "%s%s[%a][%a] = %a;@." pad a (pp_idx "#0") di
      (pp_idx "#1") dj pp_expr e
  | Reduce (r, e) -> Format.fprintf ppf "%s%s %%+= %a;@." pad r pp_expr e
  | Work n -> Format.fprintf ppf "%s/* %d cycles of computation */@." pad n
  | If (c, t, f) ->
    Format.fprintf ppf "%sif (%a) {@." pad pp_cond c;
    List.iter (pp_stmt ~directives (indent + 2) ppf) t;
    if f <> [] then begin
      Format.fprintf ppf "%s} else {@." pad;
      List.iter (pp_stmt ~directives (indent + 2) ppf) f
    end;
    Format.fprintf ppf "%s}@." pad

let pp ppf { name; body } =
  Format.fprintf ppf "void %s(...) parallel {@." name;
  List.iter (pp_stmt 2 ppf) body;
  Format.fprintf ppf "}@."

let pp_decision ppf d =
  Format.fprintf ppf
    "marked: [%s]; unmarked: [%s]; flush_between: %b; double-buffered: [%s]; \
     pre-copied: [%s]"
    (String.concat ", " d.marked_aggs)
    (String.concat ", " d.unmarked_aggs)
    d.flush_between
    (String.concat ", " d.double_buffered)
    (String.concat ", " d.precopied)

let pp_compiled rt ppf ({ name; body } as k) =
  let d = analyze k in
  match Runtime.strategy rt with
  | Runtime.Lcm_directives ->
    Format.fprintf ppf "/* compiled for LCM: %a */@." pp_decision d;
    Format.fprintf ppf "void %s(...) parallel {@." name;
    List.iter (pp_stmt ~directives:d.marked_aggs 2 ppf) body;
    if d.flush_between then Format.fprintf ppf "  flush_copies();@.";
    Format.fprintf ppf "}@.";
    Format.fprintf ppf "/* runtime: reconcile_copies() after the last invocation */@."
  | Runtime.Explicit_copy ->
    Format.fprintf ppf "/* compiled with explicit copying: %a */@." pp_decision d;
    List.iter
      (fun a ->
        Format.fprintf ppf
          "/* runtime: conservative pre-copy %s_new[*][*] = %s[*][*] */@." a a)
      d.precopied;
    Format.fprintf ppf "void %s(...) parallel {@." name;
    Format.fprintf ppf "  /* reads from old copies of: %s */@."
      (String.concat ", " d.double_buffered);
    List.iter (pp_stmt 2 ppf) body;
    Format.fprintf ppf "}@.";
    List.iter
      (fun a -> Format.fprintf ppf "/* runtime: swap(%s, %s_new) */@." a a)
      d.double_buffered
