(** The C\*\* language runtime: parallel function application.

    A C\*\* program alternates sequential phases with parallel calls.  The
    runtime drives both against a machine with an installed protocol:

    - {!parallel_apply} creates one invocation per aggregate element,
      schedules them onto nodes per the {!Schedule.t}, runs them as fibers
      (issuing [flush_copies] between invocations when the compiler cannot
      prove they touch distinct locations), and ends the phase with
      [reconcile_copies] — a plain barrier under the Stache policy;
    - {!sequential} runs ordinary code on one node.

    The {e strategy} selects what the C\*\* compiler emitted:
    [Lcm_directives] relies on the memory system (marks + reconcile);
    [Explicit_copy] is the conservative baseline that double-buffers
    aggregates and hand-codes reductions. *)

type strategy = Lcm_directives | Explicit_copy

type t

val create :
  Lcm_core.Proto.t ->
  strategy:strategy ->
  schedule:Schedule.t ->
  ?flush_between:bool ->
  ?chunks_per_node:int ->
  unit ->
  t
(** [flush_between] (default [true]) issues [flush_copies] between
    consecutive invocations on a node under [Lcm_directives] — required
    unless the compiler proves invocations access distinct locations.
    [chunks_per_node] (default 1) oversubscribes the schedule. *)

val proto : t -> Lcm_core.Proto.t
val machine : t -> Lcm_tempest.Machine.t
val strategy : t -> strategy

val agg_strategy : t -> Agg.strategy
(** The aggregate representation matching this runtime's strategy. *)

val alloc2d : t -> rows:int -> cols:int -> dist:Lcm_mem.Gmem.dist -> Agg.t
(** Allocate an aggregate with the runtime's strategy. *)

val alloc1d : t -> n:int -> dist:Lcm_mem.Gmem.dist -> Agg.t

val reducer : t -> op:Lcm_core.Reduction.t -> init:int -> Reducer.t

val parallel_apply :
  t ->
  ?iter:int ->
  ?reducers:Reducer.t list ->
  ?flush_between:bool ->
  ?schedule:Schedule.t ->
  n:int ->
  (Ctx.t -> unit) ->
  unit
(** Apply a parallel function over indices [\[0, n)].  [reducers] names the
    reduction variables the function updates, so the explicit-copy strategy
    can fold their partials afterwards.  [flush_between] overrides the
    runtime default for this call — the compiler omits inter-invocation
    flushes when analysis shows no invocation reads a location another may
    have marked (e.g. pure reductions).  [schedule] overrides the runtime's
    schedule for this call — e.g. a hand-written copy loop stays statically
    partitioned even when the parallel function is dynamically scheduled.
    On return the phase is complete, memory is reconciled and all node
    clocks equal the release time. *)

val parallel_apply_2d :
  t ->
  ?iter:int ->
  ?reducers:Reducer.t list ->
  ?flush_between:bool ->
  ?schedule:Schedule.t ->
  rows:int ->
  cols:int ->
  (Ctx.t -> int -> int -> unit) ->
  unit
(** Row-major 2-D apply; the body receives [(ctx, i, j)] with [i]/[j] as
    C\*\*'s [#0]/[#1]. *)

val sequential : t -> ?node:int -> (unit -> unit) -> unit
(** Run a sequential phase (fiber code) on [node] (default 0); on return
    all node clocks are synchronised to its completion time. *)

val elapsed : t -> int
(** Current simulated time: the maximum node clock. *)

val stats : t -> Lcm_util.Stats.t

(** {1 Per-phase metrics} *)

type phase_snapshot = {
  label : string;  (** ["parallel#N"], N counting from 1 *)
  started : int;  (** max node clock when the parallel call began *)
  finished : int;  (** max node clock after reconciliation *)
  before : (string * int) list;  (** counter values at phase start *)
  after : (string * int) list;  (** counter values at phase end *)
}

val enable_phase_log : t -> unit
(** Start capturing a {!phase_snapshot} around every {!parallel_apply};
    off by default (snapshotting copies every counter twice per phase). *)

val phase_log : t -> phase_snapshot list
(** Captured snapshots, oldest first ([[]] when logging is off).  Feed to
    {!Lcm_harness.Phases} for per-phase deltas and rendering. *)
