type t = Static | Dynamic_rotate | Dynamic_random of int

let chunks ~n ~nchunks =
  if nchunks <= 0 then invalid_arg "Schedule.chunks: nchunks must be positive";
  if n < 0 then invalid_arg "Schedule.chunks: n must be non-negative";
  let q = n / nchunks and r = n mod nchunks in
  let ranges = Array.make nchunks (0, 0) in
  let lo = ref 0 in
  for c = 0 to nchunks - 1 do
    let len = q + if c < r then 1 else 0 in
    ranges.(c) <- (!lo, !lo + len);
    lo := !lo + len
  done;
  ranges

let assign t ~iter ~nnodes ~nchunks =
  let base = Array.init nchunks (fun c -> c mod nnodes) in
  match t with
  | Static -> base
  | Dynamic_rotate -> Array.map (fun node -> (node + iter) mod nnodes) base
  | Dynamic_random seed ->
    (* A fresh node permutation per iteration: chunk c goes to the node the
       permutation sends (c mod nnodes) to. *)
    let rng = Lcm_util.Rng.create ~seed:(seed + (iter * 0x9E37)) in
    let perm = Array.init nnodes (fun i -> i) in
    for i = nnodes - 1 downto 1 do
      let j = Lcm_util.Rng.int rng (i + 1) in
      let tmp = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- tmp
    done;
    Array.map (fun node -> perm.(node)) base

let is_dynamic = function
  | Static -> false
  | Dynamic_rotate | Dynamic_random _ -> true

let of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "static" ] -> Ok Static
  | [ "rotate" ] -> Ok Dynamic_rotate
  | [ "random"; seed ] -> (
    match int_of_string_opt seed with
    | Some seed -> Ok (Dynamic_random seed)
    | None -> Error "random: expected integer seed")
  | _ -> Error (Printf.sprintf "unknown schedule %S" s)

let to_string = function
  | Static -> "static"
  | Dynamic_rotate -> "rotate"
  | Dynamic_random seed -> Printf.sprintf "random:%d" seed
