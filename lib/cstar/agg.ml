module Proto = Lcm_core.Proto
module Memeff = Lcm_tempest.Memeff
module Word = Lcm_mem.Word

type strategy = Lcm | Double_buffered

type t = {
  proto : Proto.t;
  strategy : strategy;
  rows : int;
  cols : int;
  mutable front : int;  (* base address of the read buffer *)
  mutable back : int;  (* base address of the write buffer (= front for Lcm) *)
}

let create proto ~strategy ~rows ~cols ~dist =
  if rows <= 0 || cols <= 0 then invalid_arg "Agg.create: empty aggregate";
  let gmem = Lcm_tempest.Machine.gmem (Proto.machine proto) in
  let nwords = rows * cols in
  let front = Lcm_mem.Gmem.alloc gmem ~dist ~nwords in
  let back =
    match strategy with
    | Lcm -> front
    | Double_buffered -> Lcm_mem.Gmem.alloc gmem ~dist ~nwords
  in
  { proto; strategy; rows; cols; front; back }

let create1d proto ~strategy ~n ~dist = create proto ~strategy ~rows:1 ~cols:n ~dist

let rows t = t.rows
let cols t = t.cols
let size t = t.rows * t.cols
let strategy t = t.strategy

let offset t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg
      (Printf.sprintf "Agg: index (%d,%d) out of bounds %dx%d" i j t.rows t.cols);
  (i * t.cols) + j

let read_addr t i j = t.front + offset t i j

let write_addr t i j = t.back + offset t i j

let get t i j = Memeff.load (read_addr t i j)

let set t i j v =
  let addr = write_addr t i j in
  (match t.strategy with
  | Lcm -> Memeff.directive (Memeff.Mark_modification addr)
  | Double_buffered -> ());
  Memeff.store addr v

let getf t i j = Word.to_float (get t i j)
let setf t i j v = set t i j (Word.of_float v)

let get1 t j = get t 0 j
let set1 t j v = set t 0 j v
let getf1 t j = getf t 0 j
let setf1 t j v = setf t 0 j v

let swap t =
  match t.strategy with
  | Lcm -> ()
  | Double_buffered ->
    let f = t.front in
    t.front <- t.back;
    t.back <- f

let peek t i j = Proto.peek t.proto (t.front + offset t i j)

let poke t i j v =
  Proto.poke t.proto (t.front + offset t i j) v;
  if t.back <> t.front then Proto.poke t.proto (t.back + offset t i j) v

let peekf t i j = Word.to_float (peek t i j)
let pokef t i j v = poke t i j (Word.of_float v)

let to_matrix t = Array.init t.rows (fun i -> Array.init t.cols (fun j -> peekf t i j))
