(** Partitioning of parallel-function invocations onto nodes.

    The paper measures two scheduling regimes for each benchmark:

    - {e static}: the aggregate is partitioned once, at the start of the
      computation — every iteration assigns chunk [c] to node [c mod P],
      so a protocol like Stache can keep a chunk's interior resident in
      its node's memory across iterations;
    - {e dynamic}: the mesh is re-partitioned into chunks at the beginning
      of every iteration ("less repeatable scheduling techniques"), so
      locality across iterations is lost.  [Dynamic_rotate] shifts the
      assignment by one node per iteration; [Dynamic_random] draws a fresh
      permutation per iteration from a seed.

    Dynamic schedules additionally pay a work-queue access cost per chunk
    (see {!Lcm_sim.Costs.sched_dequeue}). *)

type t = Static | Dynamic_rotate | Dynamic_random of int

val chunks : n:int -> nchunks:int -> (int * int) array
(** [chunks ~n ~nchunks] splits the index space [\[0, n)] into [nchunks]
    contiguous, balanced, half-open ranges.
    @raise Invalid_argument if [nchunks <= 0] or [n < 0]. *)

val assign : t -> iter:int -> nnodes:int -> nchunks:int -> int array
(** [assign t ~iter ~nnodes ~nchunks] maps each chunk to a node for the
    given iteration.  Deterministic in all arguments. *)

val is_dynamic : t -> bool

val of_string : string -> (t, string) result
(** Accepts ["static"], ["rotate"], ["random:<seed>"]. *)

val to_string : t -> string
