(** C\*\* aggregates: distributed arrays that parallel functions apply over.

    An aggregate's accessors adapt to the compilation strategy:

    - [Lcm]: one buffer; {!set} issues a [mark_modification] directive
      before the store, exactly as the C\*\* compiler does for potentially
      conflicting writes, so the memory system makes the copy;
    - [Double_buffered]: the explicit-copying baseline — two buffers, reads
      from the front, writes to the back, {!swap} exchanges them after the
      parallel call ("all reads come from the old copy of A and all writes
      go to the new copy of A ... the code exchanges the two arrays with a
      pointer swap").

    {!get}/{!set} perform memory-system effects and may only be called from
    fiber code; {!peek}/{!poke} bypass the simulation for initialisation
    and result extraction. *)

type strategy = Lcm | Double_buffered

type t

val create :
  Lcm_core.Proto.t ->
  strategy:strategy ->
  rows:int ->
  cols:int ->
  dist:Lcm_mem.Gmem.dist ->
  t
(** Allocates the aggregate's storage ([rows * cols] words; twice that when
    double-buffered; both buffers share the same distribution). *)

val create1d :
  Lcm_core.Proto.t -> strategy:strategy -> n:int -> dist:Lcm_mem.Gmem.dist -> t
(** A 1-row aggregate. *)

val rows : t -> int
val cols : t -> int
val size : t -> int
val strategy : t -> strategy

val read_addr : t -> int -> int -> int
(** Global address of element [(i, j)] in the front (read) buffer.
    @raise Invalid_argument when out of bounds. *)

val write_addr : t -> int -> int -> int
(** Address in the back (write) buffer — same as {!read_addr} under [Lcm]. *)

val get : t -> int -> int -> int
(** Effectful read of element [(i, j)] (front buffer). *)

val set : t -> int -> int -> int -> unit
(** Effectful write of element [(i, j)]; marks the block first under
    [Lcm]. *)

val getf : t -> int -> int -> float
val setf : t -> int -> int -> float -> unit

val get1 : t -> int -> int
(** 1-D accessors (row 0). *)

val set1 : t -> int -> int -> unit
val getf1 : t -> int -> float
val setf1 : t -> int -> float -> unit

val swap : t -> unit
(** Exchange front and back buffers; no-op under [Lcm].  Only sound between
    phases. *)

val peek : t -> int -> int -> int
(** Non-effectful read of the front buffer (via {!Lcm_core.Proto.peek}). *)

val poke : t -> int -> int -> int -> unit
(** Non-effectful write to {e both} buffers (so a subsequent [swap] does not
    un-initialise data).  Only sound while no node caches the blocks. *)

val peekf : t -> int -> int -> float
val pokef : t -> int -> int -> float -> unit

val to_matrix : t -> float array array
(** Snapshot of the front buffer as floats, via {!peekf}. *)
