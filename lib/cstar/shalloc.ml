module Proto = Lcm_core.Proto
module Machine = Lcm_tempest.Machine
module Memeff = Lcm_tempest.Memeff
module Gmem = Lcm_mem.Gmem

type t = {
  proto : Proto.t;
  wpb : int;
  blocks_per_node : int;
  heads : int array;  (* per-node free-list head word address *)
  arenas : int array;  (* per-node arena base address *)
}

let create proto ~blocks_per_node =
  if blocks_per_node <= 0 then
    invalid_arg "Shalloc.create: blocks_per_node must be positive";
  let mach = Proto.machine proto in
  let gmem = Machine.gmem mach in
  let wpb = Gmem.words_per_block gmem in
  let nnodes = Machine.nnodes mach in
  let heads = Array.make nnodes 0 and arenas = Array.make nnodes 0 in
  for nid = 0 to nnodes - 1 do
    let head = Gmem.alloc gmem ~dist:(Gmem.On nid) ~nwords:wpb in
    let arena = Gmem.alloc gmem ~dist:(Gmem.On nid) ~nwords:(blocks_per_node * wpb) in
    heads.(nid) <- head;
    arenas.(nid) <- arena;
    (* chain every object through its link word; 0 terminates (address 0 is
       block 0 of the address space, never an arena object) *)
    for k = 0 to blocks_per_node - 1 do
      let base = arena + (k * wpb) in
      let next = if k = blocks_per_node - 1 then 0 else base + wpb in
      Proto.poke proto base next
    done;
    Proto.poke proto head arena
  done;
  { proto; wpb; blocks_per_node; heads; arenas }

let object_words t = t.wpb - 1

let alloc t ~node =
  let head = t.heads.(node) in
  let h = Memeff.load head in
  if h = 0 then None
  else begin
    let next = Memeff.load h in
    Memeff.store head next;
    Some (h + 1)
  end

let check_object t ~node addr =
  let base = addr - 1 in
  let arena = t.arenas.(node) in
  if
    base < arena
    || base >= arena + (t.blocks_per_node * t.wpb)
    || (base - arena) mod t.wpb <> 0
  then invalid_arg "Shalloc.free: not an object of this node's arena"

let free t ~node addr =
  check_object t ~node addr;
  let base = addr - 1 in
  let head = t.heads.(node) in
  let old = Memeff.load head in
  Memeff.store base old;
  Memeff.store head base

let available t ~node =
  (* host-side walk of the free list *)
  let rec walk h acc =
    if h = 0 then acc else walk (Proto.peek t.proto h) (acc + 1)
  in
  walk (Proto.peek t.proto t.heads.(node)) 0
