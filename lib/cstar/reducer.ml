module Proto = Lcm_core.Proto
module Reduction = Lcm_core.Reduction
module Memeff = Lcm_tempest.Memeff
module Machine = Lcm_tempest.Machine
module Gmem = Lcm_mem.Gmem
module Word = Lcm_mem.Word

type t = {
  proto : Proto.t;
  strategy : Agg.strategy;
  op : Reduction.t;
  var : int;  (* global address of the reduction variable *)
  partials : int array;  (* per-node partial addresses (explicit copy) *)
}

let create proto ~strategy ~op ~init =
  let mach = Proto.machine proto in
  let gmem = Machine.gmem mach in
  let wpb = Gmem.words_per_block gmem in
  let var = Gmem.alloc gmem ~dist:(Gmem.On 0) ~nwords:wpb in
  Proto.poke proto var (Word.of_int init);
  let partials =
    match strategy with
    | Agg.Lcm ->
      Proto.register_reduction proto ~base:var ~nwords:wpb op;
      [||]
    | Agg.Double_buffered ->
      Array.init (Machine.nnodes mach) (fun nid ->
          let addr = Gmem.alloc gmem ~dist:(Gmem.On nid) ~nwords:wpb in
          Proto.poke proto addr op.Reduction.identity;
          addr)
  in
  { proto; strategy; op; var; partials }

let add ctx t v =
  match t.strategy with
  | Agg.Lcm ->
    Memeff.directive (Memeff.Mark_modification t.var);
    Memeff.store t.var (t.op.Reduction.apply (Memeff.load t.var) v)
  | Agg.Double_buffered ->
    let partial = t.partials.(ctx.Ctx.node) in
    Memeff.store partial (t.op.Reduction.apply (Memeff.load partial) v)

let addf ctx t v = add ctx t (Word.of_float v)

let read t = Word.to_int (Proto.peek t.proto t.var)

let readf t = Word.to_float (Proto.peek t.proto t.var)

let set t v = Proto.poke t.proto t.var (Word.of_int v)

let setf t v = Proto.poke t.proto t.var (Word.of_float v)

let finalize t =
  match t.strategy with
  | Agg.Lcm -> ()
  | Agg.Double_buffered ->
    (* Sequential fold of the per-node partials, as the hand-written
       baseline would do after the parallel loop. *)
    let acc = ref (Memeff.load t.var) in
    Array.iter
      (fun partial ->
        acc := t.op.Reduction.apply !acc (Memeff.load partial);
        Memeff.store partial t.op.Reduction.identity)
      t.partials;
    Memeff.store t.var !acc

let op t = t.op
