(** Reduction variables — C\*\*'s reduction assignments ([total %+= x]).

    Under the [Lcm] strategy, {!add} compiles exactly as the paper
    describes: the location is marked, the invocation accumulates into its
    private copy, and the registered {!Lcm_core.Reduction.t} combines the
    copies at reconciliation.

    Under the [Double_buffered] (explicit-copy) strategy, {!add} follows
    the hand-coded baseline of Section 7.1: each node accumulates into a
    node-local partial (placed in its own cache block to avoid false
    sharing), and the runtime folds the partials into the global variable
    in a sequential step after the parallel call. *)

type t

val create :
  Lcm_core.Proto.t ->
  strategy:Agg.strategy ->
  op:Lcm_core.Reduction.t ->
  init:int ->
  t
(** Allocate the reduction variable (home: node 0) holding word [init];
    under the explicit-copy strategy also allocate one partial per node. *)

val add : Ctx.t -> t -> int -> unit
(** [add ctx t v] combines [v] into the reduction from an invocation
    (effectful; fiber code only). *)

val addf : Ctx.t -> t -> float -> unit
(** Float variant; the operator must be one of the [f32_*] reductions. *)

val read : t -> int
(** Non-effectful read of the current global value (sequential phases
    only). *)

val readf : t -> float

val set : t -> int -> unit
(** Non-effectful reset of the global value; only sound when no copies are
    outstanding. *)

val setf : t -> float -> unit
(** Float variant of {!set}. *)

val finalize : t -> unit
(** Fold per-node partials into the global variable and reset them (no-op
    under [Lcm]).  Must run from fiber code in a sequential phase; the
    runtime calls this after each parallel apply that names the reducer. *)

val op : t -> Lcm_core.Reduction.t
