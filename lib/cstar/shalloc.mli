(** A block allocator in simulated shared memory.

    Dynamic programs (the paper's adaptive mesh, §6.2) build pointer
    structures at run time.  This allocator carves per-node arenas out of
    the global address space and hands out block-sized objects from free
    lists that themselves live in simulated memory — so allocation costs
    real loads and stores, and allocated objects are homed on the
    allocating node (locality by construction, as a real runtime would
    arrange).

    Each node allocates and frees only on its own arena (the free-list
    words are node-private, so no cross-node synchronisation is needed);
    objects may be {e referenced} from anywhere.  [alloc]/[free] perform
    memory-system effects and must run in fiber code on the arena's node. *)

type t

val create : Lcm_core.Proto.t -> blocks_per_node:int -> t
(** Reserve [blocks_per_node] one-block objects per node and initialise
    the free lists (host-side initialisation, before the program runs).
    @raise Invalid_argument if [blocks_per_node <= 0]. *)

val object_words : t -> int
(** Usable words per object: one block minus the link word.  Word 0 of
    each object is reserved for the allocator's free-list link while the
    object is free; user data starts at [addr], which points at the first
    usable word. *)

val alloc : t -> node:int -> int option
(** [alloc t ~node] pops an object from [node]'s free list and returns the
    address of its first usable word, or [None] when the arena is
    exhausted.  Effectful. *)

val free : t -> node:int -> int -> unit
(** [free t ~node addr] returns an object (by its usable-word address, as
    returned by {!alloc}) to [node]'s free list.  Effectful; must run on
    the owning node.  @raise Invalid_argument if [addr] is not an object
    of [node]'s arena. *)

val available : t -> node:int -> int
(** Objects currently free on [node]'s arena (non-effectful; for tests). *)
