(** Per-invocation context.

    A parallel function invocation receives a {!t} carrying C\*\*'s
    pseudo-variables ([#0], and [#0]/[#1] for two-dimensional applications)
    plus the node it runs on and the current iteration — the pieces of
    ambient state the runtime knows and the function body may need. *)

type t = {
  index : int;  (** flattened invocation index ([#0] for 1-D applies) *)
  node : int;  (** node executing this invocation *)
  iter : int;  (** the caller's iteration counter *)
}

val make : index:int -> node:int -> iter:int -> t
