type t = { index : int; node : int; iter : int }

let make ~index ~node ~iter = { index; node; iter }
