(** Stateless small-scope model checker over the real simulated stack.

    The simulation is deterministic except for the order in which events
    tied at the same timestamp commit — and, under a fault plan, each
    message copy's fate.  {!Lcm_sim.Engine.set_choice_hook} and
    {!Lcm_net.Network.set_fault_chooser} expose exactly those decision
    points, so enumerating them enumerates every behaviour a bounded
    configuration can exhibit: exploration is a stateless DFS over
    forced-choice prefixes (each run replays a recorded prefix and takes
    the FIFO default beyond it), pruned by DPOR-style partial-order
    reduction — a persistent-set heuristic plus sleep sets, both keyed on
    the events' node-ownership footprint.  Every explored schedule drives
    the {e real} stack (machine, network, protocol, barriers) and is
    checked against the {!Spec} abstract-state-machine oracle plus
    {!Lcm_core.Proto.check_invariants}; a violating schedule is a list of
    choice indices that replays deterministically.

    See DESIGN.md § "Small-scope model checking" for the soundness
    argument and the bounds. *)

(** {1 Statistics} *)

type stats = {
  mutable schedules : int;  (** complete interleavings executed *)
  mutable transitions : int;  (** events committed across all runs *)
  mutable choice_points : int;  (** decision points with >= 2 candidates *)
  mutable branches : int;  (** alternatives pushed for later exploration *)
  mutable sleep_prunes : int;  (** alternatives suppressed by sleep sets *)
  mutable pset_prunes : int;  (** alternatives suppressed as independent *)
  mutable fault_points : int;  (** per-copy fault decision points *)
  mutable max_depth : int;  (** deepest choice position seen *)
}
(** Exploration counters, reported as the [check.*] series (see
    COUNTERS.md).  Mutated in place so one record can accumulate across
    configurations. *)

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {1 Verdicts and exploration} *)

type verdict = Pass | Fail of string

type violation = {
  v_label : string;  (** which configuration (scenario/micro name) *)
  v_prog : Lcm_harness.Stress.prog;
  v_schedule : int list;  (** choice indices; replays deterministically *)
  v_report : string;  (** the spec/invariant divergences found *)
  v_fault_budget : int;
  v_dup : bool;
}

type outcome =
  | Exhausted  (** every interleaving within the bounds explored, no bug *)
  | Capped  (** schedule cap hit before the space was exhausted *)
  | Found of violation

val explore :
  ?label:string ->
  ?max_schedules:int ->
  ?fault_budget:int ->
  ?dup:bool ->
  ?reduce:bool ->
  ?stats:stats ->
  Lcm_harness.Stress.prog ->
  outcome * stats
(** Exhaustively explore the schedule space of one bounded configuration
    (up to [max_schedules], default 20_000), stopping at the first
    violation.  [fault_budget] (default 0) composes the space with up to
    that many per-copy fault choices — drop, and also duplicate with
    [dup] — through the network's fate oracle, with the reliable
    envelope's retransmission live so dropped copies must be recovered.
    [reduce] (default true) enables the partial-order reduction; with it
    off, every interleaving is enumerated — cross-checking the reduction
    on tiny configurations.  Reduction only prunes branching, never
    changes what a given schedule executes, so verdicts and recorded
    schedules are identical either way. *)

val replay :
  ?trace:bool ->
  ?fault_budget:int ->
  ?dup:bool ->
  schedule:int list ->
  Lcm_harness.Stress.prog ->
  verdict * (int * Lcm_sim.Trace.event) list
(** Re-execute one schedule: choice point [i] takes candidate
    [schedule.(i)], FIFO default (index 0) beyond the list's end — so
    [[]] is the plain FIFO run.  With [trace], the returned events render
    through {!Lcm_harness.Traceview}. *)

val minimize_schedule :
  fault_budget:int -> dup:bool -> Lcm_harness.Stress.prog -> int list ->
  int list
(** Shrink a violating schedule against a fixed configuration: strip
    trailing defaults, shorten, lower entries toward 0 — each candidate
    validated by a full replay.  Returns the smallest still-failing
    schedule found. *)

val shrink_violation :
  ?max_explore_schedules:int -> ?max_tries:int -> violation -> violation
(** Shrink to a minimal (configuration, schedule) counterexample:
    configuration first via {!Lcm_harness.Stress.shrink_with} (a
    candidate survives only if bounded re-exploration still finds a
    violation, which also refreshes the schedule), then the schedule via
    {!minimize_schedule}. *)

val pp_violation : Format.formatter -> violation -> unit

(** {1 Schedule strings} *)

val schedule_to_string : int list -> string
(** Dot-separated choice indices; the empty schedule prints as ["-"]. *)

val schedule_of_string : string -> (int list, string) result

(** {1 Bounded configurations} *)

val scenarios :
  policy:Lcm_core.Policy.t -> (string * Lcm_harness.Stress.prog) list
(** The fixed bounded scenarios (2–3 nodes, 1–2 blocks, short op
    sequences), one per protocol corner: reader/writer sharing,
    cross-block write exchange, reduction merge, sequential-then-parallel
    handoff, mid-phase flush, capacity eviction, three-node sharing.
    Every scenario respects the stress harness's well-formedness
    contract, so the {!Spec} oracle applies. *)

val gen_micro :
  seed:int -> case:int -> policy:Lcm_core.Policy.t -> Lcm_harness.Stress.prog
(** Deterministic seeded random micro-configuration within the checker's
    bounds (2–3 nodes, 1–2 blocks, <= 3 ops per node per segment) —
    breadth beyond the hand-picked scenarios. *)

(** {1 Driver} *)

type report = {
  rep_label : string;
  rep_policy : Lcm_core.Policy.t;
  rep_outcome : outcome;
  rep_stats : stats;
}

val check_scenarios :
  ?max_schedules:int ->
  ?fault_budget:int ->
  ?dup:bool ->
  ?reduce:bool ->
  ?random:int ->
  ?seed:int ->
  policy:Lcm_core.Policy.t ->
  unit ->
  report list
(** Explore every fixed scenario plus [random] (default 0) seeded
    micro-configurations under one policy, one report per
    configuration. *)
