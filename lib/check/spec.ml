(* Abstract-state-machine consistency spec for the LCM per-epoch
   semantics, in the style of Schewe et al.'s concurrent-ASM
   specification of shared replicated memory: explicit agents, each with
   a private copy-on-write view, stepped one rule application at a time
   by an arbitrary (here: round-robin) scheduler, with a merge rule at
   flush/reconcile.

   This is an independent formulation of the semantics the stress
   harness's golden model implements — same contract, different
   operational structure.  The golden model folds over nodes one at a
   time; the ASM interleaves agents step by step, which makes the
   schedule-independence claim explicit: for well-formed programs (see
   Lcm_harness.Stress's preamble — unique writer per non-reduction word
   per phase, exact integer reduction operators, disjoint per-node word
   partitions in sequential segments) the observations and the
   post-segment state do not depend on the agent interleaving, so any
   one interleaving computes the answer.  The qcheck suite pins this
   module against Stress.golden word-for-word across seeded programs and
   all policies; the model checker uses it as the oracle for every
   explored schedule of the real stack. *)

module Stress = Lcm_harness.Stress
module Policy = Lcm_core.Policy
module Reduction = Lcm_core.Reduction

(* One ASM agent: its remaining program, private view and dirty set
   (parallel phases only), and the observation it records per executed
   op — [Some v] where the spec predicts the loaded value, [None] where
   the value is schedule-dependent and unchecked. *)
type agent = {
  nid : int;
  mutable todo : Stress.op list;
  priv : (int, int) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  mutable obs : int option list;  (* reversed *)
}

let red_of (prog : Stress.prog) w =
  List.assoc_opt (w / prog.words_per_block) prog.reductions

(* Which agents write each word in this segment — the non-LCM
   (coherent) predictability rule needs it: a load is only
   schedule-independent when no *other* agent writes the word. *)
let writers_of nwords ops =
  let writers = Array.make nwords [] in
  Array.iteri
    (fun nid opl ->
      List.iter
        (fun (op : Stress.op) ->
          match op with
          | Store (w, _) | Rmw (w, _) | Accum (w, _) ->
            if not (List.mem nid writers.(w)) then
              writers.(w) <- nid :: writers.(w)
          | Load _ | Mark _ | Flush | Work _ | Yield -> ())
        opl)
    ops;
  writers

(* Round-robin small-step driver: fire one rule of each live agent in
   turn until all programs are exhausted.  The per-op rule is the ASM's
   transition relation; schedule-independence (for well-formed programs)
   means any fair scheduler yields the same observations, so this one
   computes the spec's verdict. *)
let drive agents step =
  let live = ref true in
  while !live do
    live := false;
    Array.iter
      (fun a ->
        match a.todo with
        | [] -> ()
        | op :: rest ->
          a.todo <- rest;
          step a op;
          if a.todo <> [] then live := true)
      agents
  done

let agents_of ops =
  Array.mapi
    (fun nid opl ->
      {
        nid;
        todo = opl;
        priv = Hashtbl.create 8;
        dirty = Hashtbl.create 8;
        obs = [];
      })
    ops

let observations agents = Array.map (fun a -> List.rev a.obs) agents

(* Sequential rule set: ordinary coherent memory.  Each agent owns a
   disjoint word partition (a well-formedness obligation of generated
   programs), so reads and writes go straight to the master state and
   every load is predicted.  Accum outside a parallel phase is outside
   the generation contract; the golden model records no prediction and
   leaves the state untouched, and the spec mirrors that exactly. *)
let run_sequential master ops =
  let agents = agents_of ops in
  drive agents (fun a (op : Stress.op) ->
      match op with
      | Load w -> a.obs <- Some master.(w) :: a.obs
      | Store (w, v) ->
        master.(w) <- v;
        a.obs <- None :: a.obs
      | Rmw (w, k) ->
        master.(w) <- master.(w) + k;
        a.obs <- None :: a.obs
      | Accum _ | Mark _ | Flush | Work _ | Yield -> a.obs <- None :: a.obs);
  observations agents

(* Parallel rule set: the paper's per-epoch semantics.  [master] is the
   immutable phase-start state; each agent's writes land in its private
   copy; FLUSH merges the dirty words into [pending] — last-writer for
   plain words (unique writer by well-formedness), the registered
   reduction operator against the phase-start clean value for reduction
   words — and resets the private view.  The implicit flush at the phase
   end is the reconcile; the caller promotes [pending] to the new
   master.

   Load predictions follow the checkability rule the harness documents:
   under LCM every load is predicted (private copy if present, else
   phase-start) unless capacity is bounded — a mid-phase eviction resets
   a node's private view at a schedule-dependent point; under a coherent
   policy only words no other agent writes are predictable. *)
let run_parallel (prog : Stress.prog) master ops =
  let nwords = Array.length master in
  let pending = Array.copy master in
  let lcm = Policy.is_lcm prog.policy in
  let writers = writers_of nwords ops in
  let agents = agents_of ops in
  let view a w =
    match Hashtbl.find_opt a.priv w with Some v -> v | None -> master.(w)
  in
  let flush a =
    Hashtbl.iter
      (fun w () ->
        let v = view a w in
        match red_of prog w with
        | Some rop ->
          pending.(w) <-
            rop.Reduction.combine ~clean:master.(w) ~current:pending.(w)
              ~incoming:v
        | None -> pending.(w) <- v)
      a.dirty;
    Hashtbl.reset a.dirty;
    (* LCM flush relinquishes the copies (next read refetches the clean
       phase-start version); coherent flush is only a writeback, so the
       writer keeps observing its own stores. *)
    if lcm then Hashtbl.reset a.priv
  in
  let predictable a w =
    if lcm then prog.capacity_blocks = None
    else List.for_all (fun n -> n = a.nid) writers.(w)
  in
  drive agents (fun a (op : Stress.op) ->
      match op with
      | Load w ->
        a.obs <- (if predictable a w then Some (view a w) else None) :: a.obs
      | Store (w, v) ->
        Hashtbl.replace a.priv w v;
        Hashtbl.replace a.dirty w ();
        a.obs <- None :: a.obs
      | Rmw (w, k) ->
        Hashtbl.replace a.priv w (view a w + k);
        Hashtbl.replace a.dirty w ();
        a.obs <- None :: a.obs
      | Accum (w, k) -> (
        match red_of prog w with
        | Some rop ->
          Hashtbl.replace a.priv w (rop.Reduction.apply (view a w) k);
          Hashtbl.replace a.dirty w ();
          a.obs <- None :: a.obs
        | None ->
          failwith
            (Printf.sprintf
               "Spec: accum targets word %d outside every registered \
                reduction region"
               w))
      | Flush ->
        flush a;
        a.obs <- None :: a.obs
      | Mark _ | Work _ | Yield -> a.obs <- None :: a.obs);
  Array.iter flush agents;
  (observations agents, pending)

let run (prog : Stress.prog) =
  let nwords = prog.nblocks * prog.words_per_block in
  let master = Array.make nwords 0 in
  List.iter (fun (w, v) -> master.(w) <- v) prog.init;
  List.map
    (fun (seg : Stress.segment) ->
      match seg with
      | Sequential ops ->
        let expected = run_sequential master ops in
        (expected, Array.copy master)
      | Parallel ops ->
        let expected, pending = run_parallel prog master ops in
        Array.blit pending 0 master 0 nwords;
        (expected, Array.copy master))
    prog.segments
