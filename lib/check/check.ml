(* Stateless small-scope model checker over the real simulated stack.

   The simulation is deterministic except for one thing: the order in
   which events that tie at the same timestamp commit (and, under a
   fault plan, each message copy's fate).  The engine's choice hook
   (Lcm_sim.Engine.set_choice_hook) exposes exactly that nondeterminism,
   so enumerating tie-break choices enumerates every behaviour the
   bounded configuration can exhibit.  Exploration is stateless DFS over
   forced-choice prefixes (Verisoft-style): each run replays a prefix of
   recorded choices and defaults (index 0 = FIFO) beyond it, then pushes
   un-explored alternatives of every choice point past the prefix.

   Partial-order reduction, keyed on the events' ownership footprint
   (the node a delivery/timer/resume belongs to):

   - Persistent-set heuristic: at a choice point, an alternative i needs
     its own branch only if it conflicts with some earlier candidate
     j < i — two events with distinct known owners touch disjoint
     per-node state and commute, so running i before j reaches the same
     state as j before i and is covered by the canonical order.  An
     unknown owner (-1) conservatively conflicts with everything.
     Owner-level footprints subsume block-level ones here: two events at
     the *same* node always conflict (they serialize through the node's
     handler occupancy and local cache state) whatever blocks they
     touch, and events at different nodes touch disjoint node state.

   - Sleep sets (Godefroid): after a branch explores candidate s first,
     sibling branches carry s in a sleep set — s's stamp is pruned from
     later branch lists until an executed event conflicts with it (the
     wake rule, applied at choice-point granularity using the owner of
     each committed event).  Stamps are deterministic for a given
     prefix, which is what lets a stamp name "the same event" across
     replays.

   Both reductions only prune *branching*, never change which event a
   given schedule executes, so a recorded schedule replays identically
   with reduction on or off, and --no-reduce cross-checks the pruned
   exploration against full enumeration on tiny configurations. *)

module Stress = Lcm_harness.Stress
module Machine = Lcm_tempest.Machine
module Memeff = Lcm_tempest.Memeff
module Proto = Lcm_core.Proto
module Policy = Lcm_core.Policy
module Barrier = Lcm_core.Barrier
module Reduction = Lcm_core.Reduction
module Gmem = Lcm_mem.Gmem
module Topology = Lcm_net.Topology
module Network = Lcm_net.Network
module Faults = Lcm_net.Faults
module Engine = Lcm_sim.Engine
module Rng = Lcm_util.Rng

(* ------------------------------------------------------------------ *)
(* Statistics (reported as check.* counters)                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable schedules : int;  (* complete interleavings executed *)
  mutable transitions : int;  (* events committed across all runs *)
  mutable choice_points : int;  (* decision points with >= 2 candidates *)
  mutable branches : int;  (* alternatives pushed for later exploration *)
  mutable sleep_prunes : int;  (* alternatives suppressed by sleep sets *)
  mutable pset_prunes : int;  (* alternatives suppressed as independent *)
  mutable fault_points : int;  (* per-copy fault decision points *)
  mutable max_depth : int;  (* deepest choice position seen *)
}

let fresh_stats () =
  {
    schedules = 0;
    transitions = 0;
    choice_points = 0;
    branches = 0;
    sleep_prunes = 0;
    pset_prunes = 0;
    fault_points = 0;
    max_depth = 0;
  }

let pp_stats ppf st =
  Format.fprintf ppf
    "check.schedules %d@.check.transitions %d@.check.choice_points \
     %d@.check.branches %d@.check.sleep_prunes %d@.check.pset_prunes \
     %d@.check.fault_points %d@.check.max_depth %d"
    st.schedules st.transitions st.choice_points st.branches st.sleep_prunes
    st.pset_prunes st.fault_points st.max_depth

(* ------------------------------------------------------------------ *)
(* The per-run choice controller                                       *)
(* ------------------------------------------------------------------ *)

(* A run replaying a stale forced prefix (possible only while the
   shrinker mutates schedules) can find fewer candidates than the prefix
   expects; that run proves nothing and is discarded. *)
exception Diverged

type verdict = Pass | Fail of string

(* One recorded decision point of one run. *)
type point = {
  pt_fault : bool;
  pt_chosen : int;
  pt_alts : int list;  (* candidate indices still worth exploring *)
  pt_sib : (int * int) list;
      (* (stamp, owner) of this point's candidates, used to seed sibling
         sleep sets: pt_sib for alternative a = sleep-set entries for the
         candidates explored before a (fault points: []) *)
  pt_sleep : (int * int) list;  (* active sleep set at this point *)
}

type ctl = {
  forced : int array;
  c_stats : stats;
  reduce : bool;
  dup : bool;
  faulty : bool;
  mutable budget : int;  (* remaining non-Deliver fault choices *)
  mutable depth : int;
  mutable points : point list;  (* reversed *)
  sleep : (int, int) Hashtbl.t;  (* stamp -> owner *)
  mutable last_owner : int;  (* min_int = nothing committed yet *)
}

let make_ctl ~forced ~seed_sleep ~fault_budget ~dup ~reduce ~stats =
  let sleep = Hashtbl.create 8 in
  List.iter (fun (s, o) -> Hashtbl.replace sleep s o) seed_sleep;
  {
    forced;
    c_stats = stats;
    reduce;
    dup;
    faulty = fault_budget > 0;
    budget = fault_budget;
    depth = 0;
    points = [];
    sleep;
    last_owner = min_int;
  }

(* Two events conflict unless both owners are known and distinct. *)
let conflict a b = a < 0 || b < 0 || a = b

(* Wake rule: an executed event conflicts-out matching sleep entries.
   Over-waking is sound (it only restores branches); the approximation
   here is at commit granularity, driven by the owner of the previously
   committed event. *)
let wake ctl =
  if ctl.last_owner <> min_int && Hashtbl.length ctl.sleep > 0 then begin
    let woken =
      Hashtbl.fold
        (fun s o acc -> if conflict ctl.last_owner o then s :: acc else acc)
        ctl.sleep []
    in
    List.iter (Hashtbl.remove ctl.sleep) woken
  end

let sleep_list ctl = Hashtbl.fold (fun s o acc -> (s, o) :: acc) ctl.sleep []

(* The engine's choice hook: called for every commit; only ties with
   >= 2 candidates become recorded decision points. *)
let on_tie ctl (cands : (int * int) array) =
  wake ctl;
  let st = ctl.c_stats in
  st.transitions <- st.transitions + 1;
  let n = Array.length cands in
  if n = 1 then begin
    ctl.last_owner <- snd cands.(0);
    0
  end
  else begin
    let pos = ctl.depth in
    let chosen = if pos < Array.length ctl.forced then ctl.forced.(pos) else 0 in
    if chosen >= n then raise Diverged;
    st.choice_points <- st.choice_points + 1;
    if pos + 1 > st.max_depth then st.max_depth <- pos + 1;
    (* Alternatives worth a branch of their own: the persistent-set
       heuristic keeps i only when it conflicts with an earlier
       candidate; sleep sets then drop stamps whose first-run subtrees a
       sibling already covered. *)
    let alts = ref [] in
    for i = n - 1 downto 0 do
      if i <> chosen then begin
        let stamp_i, owner_i = cands.(i) in
        let dependent =
          (not ctl.reduce)
          ||
          let dep = ref false in
          for j = 0 to i - 1 do
            if conflict (snd cands.(j)) owner_i then dep := true
          done;
          !dep
        in
        if not dependent then st.pset_prunes <- st.pset_prunes + 1
        else if ctl.reduce && Hashtbl.mem ctl.sleep stamp_i then
          st.sleep_prunes <- st.sleep_prunes + 1
        else alts := i :: !alts
      end
    done;
    ctl.points <-
      {
        pt_fault = false;
        pt_chosen = chosen;
        pt_alts = !alts;
        pt_sib = Array.to_list cands;
        pt_sleep = sleep_list ctl;
      }
      :: ctl.points;
    ctl.depth <- pos + 1;
    ctl.last_owner <- snd cands.(chosen);
    chosen
  end

(* The network's per-copy fate oracle.  Whether a copy is a decision
   point depends only on the remaining budget, itself a deterministic
   function of the choices so far — so replays reproduce the same
   decision positions.  Out of budget, every copy delivers silently. *)
let on_fault ctl ~src:_ ~dst:_ ~tag:_ =
  if ctl.budget <= 0 then Network.Deliver
  else begin
    let st = ctl.c_stats in
    let n = if ctl.dup then 3 else 2 in
    let pos = ctl.depth in
    let chosen = if pos < Array.length ctl.forced then ctl.forced.(pos) else 0 in
    if chosen >= n then raise Diverged;
    st.fault_points <- st.fault_points + 1;
    if pos + 1 > st.max_depth then st.max_depth <- pos + 1;
    let alts = List.filter (fun i -> i <> chosen) (List.init n Fun.id) in
    ctl.points <-
      {
        pt_fault = true;
        pt_chosen = chosen;
        pt_alts = alts;
        pt_sib = [];
        pt_sleep = sleep_list ctl;
      }
      :: ctl.points;
    ctl.depth <- pos + 1;
    if chosen > 0 then ctl.budget <- ctl.budget - 1;
    match chosen with 0 -> Network.Deliver | 1 -> Network.Drop | _ -> Network.Dup
  end

(* ------------------------------------------------------------------ *)
(* Executing one schedule of one configuration                         *)
(* ------------------------------------------------------------------ *)

exception Check_failure of string list

let event_limit = 500_000

let exec_ops prog base mism si nid ops expected () =
  List.iter2
    (fun (op : Stress.op) exp ->
      match op with
      | Load w -> (
        let got = Memeff.load (base + w) in
        match exp with
        | Some want when got <> want ->
          mism :=
            Printf.sprintf
              "segment %d node %d: load of word %d saw %d, spec expects %d"
              si nid w got want
            :: !mism
        | Some _ | None -> ())
      | Store (w, v) -> Memeff.store (base + w) v
      | Rmw (w, k) -> ignore (Memeff.rmw (base + w) (fun x -> x + k))
      | Accum (w, k) -> (
        match List.assoc_opt (w / prog.Stress.words_per_block) prog.reductions with
        | Some rop ->
          ignore (Memeff.rmw (base + w) (fun x -> rop.Reduction.apply x k))
        | None ->
          failwith
            (Printf.sprintf "Check: accum targets word %d outside every \
                             registered reduction region" w))
      | Mark w -> Memeff.directive (Memeff.Mark_modification (base + w))
      | Flush -> Memeff.directive Memeff.Flush_copies
      | Work n -> Memeff.work n
      | Yield -> Memeff.yield ())
    ops expected

(* Run one schedule of [prog] under the controller, checking every load
   against the spec's prediction, every post-segment word against the
   spec's state, and the protocol invariants after every segment.
   [expect] is [Spec.run prog], computed once per configuration. *)
let run_prog ?(trace = false) (prog : Stress.prog) ~expect ~ctl =
  let nwords = prog.nblocks * prog.words_per_block in
  let faults =
    if ctl.faulty then
      (* zero-probability plan: the RSM rides the reliable envelope
         (acks, dedup, retransmission timers) and the fate oracle
         owns every copy's fault decision *)
      Some (Faults.make ~seed:0 ())
    else None
  in
  let m =
    Machine.create ?capacity_blocks:prog.capacity_blocks
      ?hw_cache_blocks:prog.hw_cache_blocks ?faults ~jobs:1
      ~nnodes:prog.nnodes ~words_per_block:prog.words_per_block
      ~topology:prog.topology ~seed:17 ()
  in
  if trace then Machine.enable_trace ~capacity:8192 m;
  Engine.set_choice_hook (Machine.engine m) (Some (fun c -> on_tie ctl c));
  if ctl.faulty then
    Network.set_fault_chooser (Machine.network m)
      (Some (fun ~src ~dst ~tag -> on_fault ctl ~src ~dst ~tag));
  let verdict =
    try
      let p = Proto.install ~barrier:prog.barrier ~policy:prog.policy m in
      let base = Gmem.alloc (Machine.gmem m) ~dist:prog.dist ~nwords in
      List.iter
        (fun (bi, rop) ->
          Proto.register_reduction p
            ~base:(base + (bi * prog.words_per_block))
            ~nwords:prog.words_per_block rop)
        prog.reductions;
      List.iter (fun (w, v) -> Proto.poke p (base + w) v) prog.init;
      let mism = ref [] in
      let run_segment si expected ops =
        Array.iteri
          (fun nid opl ->
            Machine.spawn m (Machine.node m nid)
              (exec_ops prog base mism si nid opl expected.(nid)))
          ops;
        Machine.run_to_quiescence ~limit:event_limit m
      in
      let check_words si golden =
        for w = 0 to nwords - 1 do
          let got = Proto.peek p (base + w) in
          if got <> golden.(w) then
            mism :=
              Printf.sprintf "segment %d: word %d is %d, spec expects %d" si w
                got golden.(w)
              :: !mism
        done
      in
      let check_invariants si =
        match Proto.check_invariants p with
        | Ok () -> ()
        | Error msgs ->
          mism :=
            List.map (Printf.sprintf "segment %d: invariant: %s" si) msgs
            @ !mism
      in
      List.iteri
        (fun si seg ->
          let expected, want = List.nth expect si in
          (match (seg : Stress.segment) with
          | Sequential ops ->
            run_segment si expected ops;
            check_words si want
          | Parallel ops ->
            Proto.begin_parallel p;
            run_segment si expected ops;
            Proto.reconcile p;
            check_words si want);
          check_invariants si;
          if !mism <> [] then raise (Check_failure (List.rev !mism)))
        prog.segments;
      Pass
    with
    | Check_failure msgs -> Fail (String.concat "\n" msgs)
    | Failure msg -> Fail ("exception: " ^ msg)
    | Invalid_argument msg -> Fail ("invalid argument: " ^ msg)
    | Engine.Stalled { clock; pending } ->
      Fail
        (Printf.sprintf
           "stalled: no delivery progress at clock %d (%d pending)" clock
           pending)
    | Network.Net_unreachable { src; dst; tag; attempts } ->
      Fail
        (Printf.sprintf "net unreachable: %s %d->%d gave up after %d attempts"
           tag src dst attempts)
  in
  (verdict, if trace then Machine.trace_events m else [])

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

type violation = {
  v_label : string;
  v_prog : Stress.prog;
  v_schedule : int list;
  v_report : string;
  v_fault_budget : int;
  v_dup : bool;
}

type outcome =
  | Exhausted  (** every interleaving within the bounds explored, no bug *)
  | Capped  (** schedule cap hit before the space was exhausted *)
  | Found of violation

let schedule_to_string = function
  | [] -> "-"
  | l -> String.concat "." (List.map string_of_int l)

let schedule_of_string s =
  match String.trim s with
  | "" | "-" -> Ok []
  | s -> (
    try
      Ok
        (List.map
           (fun part ->
             let i = int_of_string (String.trim part) in
             if i < 0 then failwith "negative" else i)
           (String.split_on_char '.' s))
    with _ ->
      Error
        (Printf.sprintf
           "bad schedule %S: expected dot-separated choice indices (e.g. \
            \"0.2.1\") or \"-\""
           s))

let explore ?(label = "config") ?(max_schedules = 20_000) ?(fault_budget = 0)
    ?(dup = false) ?(reduce = true) ?stats (prog : Stress.prog) =
  let st = match stats with Some s -> s | None -> fresh_stats () in
  let expect = Spec.run prog in
  (* DFS over forced prefixes: each stack entry is (prefix, sleep seed).
     A run's choice points past its prefix length contribute their
     unexplored alternatives; a prefix is pushed exactly once, so the
     enumeration terminates and covers every reachable schedule within
     the bounds. *)
  let stack = ref [ ([||], []) ] in
  let result = ref Exhausted in
  (try
     while !stack <> [] do
       if st.schedules >= max_schedules then begin
         result := Capped;
         raise Exit
       end;
       let forced, seed_sleep = List.hd !stack in
       stack := List.tl !stack;
       let ctl =
         make_ctl ~forced ~seed_sleep ~fault_budget ~dup ~reduce ~stats:st
       in
       match run_prog prog ~expect ~ctl with
       | exception Diverged -> ()
       | Fail report, _ ->
         st.schedules <- st.schedules + 1;
         let points = Array.of_list (List.rev ctl.points) in
         result :=
           Found
             {
               v_label = label;
               v_prog = prog;
               v_schedule =
                 Array.to_list (Array.map (fun p -> p.pt_chosen) points);
               v_report = report;
               v_fault_budget = fault_budget;
               v_dup = dup;
             };
         raise Exit
       | Pass, _ ->
         st.schedules <- st.schedules + 1;
         let points = Array.of_list (List.rev ctl.points) in
         let npoints = Array.length points in
         (* Push alternatives for every decision past the forced prefix.
            Positions inside the prefix were branched by ancestor runs.
            Stack order makes sibling exploration order the reverse of
            the alternative list, so the sibling sleep seed of an
            alternative holds the chosen candidate plus every
            alternative explored before it. *)
         for pos = Array.length forced to npoints - 1 do
           let pt = points.(pos) in
           if pt.pt_alts <> [] then begin
             let prefix =
               Array.init pos (fun k -> points.(k).pt_chosen)
             in
             (* Alternatives are pushed in increasing order, so LIFO
                pops the largest first: the siblings explored before
                alternative [a] are the chosen candidate plus every
                alternative larger than [a] — those form [a]'s sleep
                seed (first-run subtrees a sibling already covers). *)
             List.iter
               (fun a ->
                 let seed =
                   if pt.pt_fault then pt.pt_sleep
                   else
                     pt.pt_sleep
                     @ List.map
                         (fun i -> List.nth pt.pt_sib i)
                         (pt.pt_chosen
                         :: List.filter (fun x -> x > a) pt.pt_alts)
                 in
                 st.branches <- st.branches + 1;
                 stack := (Array.append prefix [| a |], seed) :: !stack)
               pt.pt_alts
           end
         done
     done
   with Exit -> ());
  (!result, st)

(* ------------------------------------------------------------------ *)
(* Replay and shrinking                                                *)
(* ------------------------------------------------------------------ *)

let replay ?(trace = false) ?(fault_budget = 0) ?(dup = false) ~schedule prog =
  let ctl =
    make_ctl
      ~forced:(Array.of_list schedule)
      ~seed_sleep:[] ~fault_budget ~dup ~reduce:true ~stats:(fresh_stats ())
  in
  let expect = Spec.run prog in
  match run_prog ~trace prog ~expect ~ctl with
  | verdict, events -> (verdict, events)
  | exception Diverged -> (Fail "replay diverged: stale schedule", [])

let replay_fails ~fault_budget ~dup prog schedule =
  match replay ~fault_budget ~dup ~schedule prog with
  | Fail r, _ when r <> "replay diverged: stale schedule" -> Some r
  | _ -> None

(* Minimize a violating schedule against a fixed configuration: strip
   trailing default choices, then try progressively shorter prefixes,
   then lower each remaining entry toward the default.  Every candidate
   is validated by a full replay (the choice structure downstream of an
   edit can change, so nothing short of re-running proves it). *)
let minimize_schedule ~fault_budget ~dup prog schedule =
  let strip l =
    let arr = Array.of_list l in
    let n = ref (Array.length arr) in
    while !n > 0 && arr.(!n - 1) = 0 do
      decr n
    done;
    Array.to_list (Array.sub arr 0 !n)
  in
  let fails s = replay_fails ~fault_budget ~dup prog s <> None in
  let best = ref (strip schedule) in
  (* shortest failing prefix *)
  (try
     for k = 0 to List.length !best - 1 do
       let cand = strip (List.filteri (fun i _ -> i < k) !best) in
       if List.length cand < List.length !best && fails cand then begin
         best := cand;
         raise Exit
       end
     done
   with Exit -> ());
  (* lower entries greedily *)
  let changed = ref true in
  let budget = ref 100 in
  while !changed && !budget > 0 do
    changed := false;
    let arr = Array.of_list !best in
    (try
       for i = 0 to Array.length arr - 1 do
         if arr.(i) > 0 && !budget > 0 then
           for v = 0 to arr.(i) - 1 do
             if (not !changed) && !budget > 0 then begin
               decr budget;
               let cand =
                 strip
                   (Array.to_list (Array.mapi (fun j x -> if j = i then v else x) arr))
               in
               if fails cand then begin
                 best := cand;
                 changed := true;
                 raise Exit
               end
             end
           done
       done
     with Exit -> ())
  done;
  !best

(* Shrink a violation to a minimal (config, schedule) counterexample:
   configuration first (each candidate accepted only if a bounded
   re-exploration still finds a violation — which also refreshes the
   schedule), then the schedule against the final configuration. *)
let shrink_violation ?(max_explore_schedules = 400) ?(max_tries = 120) v =
  let best = ref v in
  let still_violates p =
    match
      explore ~label:v.v_label ~max_schedules:max_explore_schedules
        ~fault_budget:v.v_fault_budget ~dup:v.v_dup ~reduce:true p
    with
    | Found v', _ ->
      best := v';
      true
    | _ -> false
  in
  ignore (Stress.shrink_with ~max_tries still_violates v.v_prog);
  let v = !best in
  {
    v with
    v_schedule =
      minimize_schedule ~fault_budget:v.v_fault_budget ~dup:v.v_dup v.v_prog
        v.v_schedule;
  }

let pp_violation ppf v =
  Format.fprintf ppf
    "violation in %s (policy=%s):@.%a@.schedule: %s@.fault choices: \
     budget=%d dup=%b@.%s"
    v.v_label v.v_prog.Stress.policy.Policy.name Stress.pp_prog v.v_prog
    (schedule_to_string v.v_schedule)
    v.v_fault_budget v.v_dup v.v_report

(* ------------------------------------------------------------------ *)
(* Bounded configurations                                              *)
(* ------------------------------------------------------------------ *)

let mk ~policy ?(nnodes = 2) ?(wpb = 2) ~nblocks ?(dist = Gmem.Chunked)
    ?(topology = Topology.Crossbar) ?(barrier = Barrier.Constant) ?capacity
    ?(reductions = []) ?(init = []) segments : Stress.prog =
  {
    seed = 0;
    case = 0;
    policy;
    nnodes;
    words_per_block = wpb;
    nblocks;
    dist;
    topology;
    barrier;
    capacity_blocks = capacity;
    hw_cache_blocks = None;
    reductions;
    init;
    segments;
  }

(* Hand-picked bounded configurations, one family per protocol corner:
   every scenario respects the harness's well-formedness contract (every
   parallel write is explicitly marked; at most one writer per
   non-reduction word per phase; sequential partitions disjoint). *)
let scenarios ~policy : (string * Stress.prog) list =
  let open Stress in
  [
    ( "reader-writer",
      mk ~policy ~nblocks:1
        ~init:[ (0, 7) ]
        [ Parallel [| [ Mark 0; Store (0, 42); Load 1 ]; [ Load 0; Load 1 ] |] ]
    );
    ( "two-writers",
      mk ~policy ~nblocks:2
        ~init:[ (0, 1); (2, 2) ]
        [
          Parallel
            [|
              [ Mark 0; Store (0, 11); Load 2 ];
              [ Mark 2; Store (2, 22); Load 0 ];
            |];
        ] );
    ( "reduction",
      mk ~policy ~nblocks:1
        ~reductions:[ (0, Reduction.int_sum) ]
        ~init:[ (0, 5) ]
        [ Parallel [| [ Mark 0; Accum (0, 3) ]; [ Mark 0; Accum (0, 4) ] |] ]
    );
    ( "seq-then-par",
      mk ~policy ~nblocks:1
        [
          Sequential [| [ Store (0, 3) ]; [] |];
          Parallel [| [ Mark 1; Store (1, 8); Load 0 ]; [ Load 0 ] |];
        ] );
    ( "flush-mid-phase",
      mk ~policy ~nblocks:1
        ~init:[ (0, 10) ]
        [ Parallel [| [ Mark 0; Rmw (0, 5); Flush; Load 0 ]; [ Load 1 ] |] ]
    );
    ( "capacity-evict",
      mk ~policy ~nblocks:2 ~dist:Gmem.Chunked ~capacity:1
        [
          Sequential [| [ Store (2, 99) ]; [] |];
          Parallel [| []; [ Mark 0; Store (0, 5); Load 2 ] |];
        ] );
    ( "three-nodes",
      mk ~policy ~nnodes:3 ~nblocks:2 ~dist:Gmem.Interleaved
        ~init:[ (1, 4) ]
        [
          Parallel
            [|
              [ Mark 0; Store (0, 9) ];
              [ Load 0; Load 1 ];
              [ Mark 3; Store (3, 6); Load 1 ];
            |];
        ] );
  ]

(* Seeded random micro-configurations within the checker's bounds —
   breadth beyond the hand-picked corners.  Mirrors the stress
   generator's well-formedness rules in miniature, with every parallel
   write explicitly marked (always legal, and keeps the program valid
   under every policy). *)
let gen_micro ~seed ~case ~policy : Stress.prog =
  let rng = Rng.create ~seed:(0x51EC + seed + (case * 7_919)) in
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  let nnodes = 2 + Rng.int rng 2 in
  let wpb = 2 in
  let nblocks = 1 + Rng.int rng 2 in
  let nwords = nblocks * wpb in
  let dist =
    match Rng.int rng 3 with
    | 0 -> Gmem.On (Rng.int rng nnodes)
    | 1 -> Gmem.Interleaved
    | _ -> Gmem.Chunked
  in
  let capacity = if Rng.int rng 4 = 0 then Some (1 + Rng.int rng 2) else None in
  let reductions =
    if Rng.int rng 3 = 0 then [ (Rng.int rng nblocks, Reduction.int_sum) ]
    else []
  in
  let is_red w = List.mem_assoc (w / wpb) reductions in
  let all_words = List.init nwords Fun.id in
  let init =
    List.filter_map
      (fun w -> if Rng.bool rng then Some (w, Rng.int rng 100) else None)
      all_words
  in
  let lcm = Policy.is_lcm policy in
  let rmw_ok = (not lcm) || capacity = None in
  let gen_seq () =
    Array.init nnodes (fun nid ->
        let own =
          Array.of_list (List.filter (fun w -> w mod nnodes = nid) all_words)
        in
        if Array.length own = 0 then []
        else
          List.init (Rng.int rng 3) (fun _ : Stress.op ->
              match Rng.int rng 4 with
              | 0 -> Load (pick own)
              | 1 -> Store (pick own, Rng.int rng 100)
              | 2 -> Rmw (pick own, 1 + Rng.int rng 9)
              | _ -> Yield))
  in
  let gen_par () =
    let writer =
      Array.init nwords (fun w ->
          if is_red w then None
          else if Rng.int rng 2 = 0 then Some (Rng.int rng nnodes)
          else None)
    in
    let red_words = Array.of_list (List.filter is_red all_words) in
    Array.init nnodes (fun nid ->
        let owned =
          Array.of_list (List.filter (fun w -> writer.(w) = Some nid) all_words)
        in
        let marked = Hashtbl.create 4 in
        let ensure w (acc : Stress.op list) =
          let b = w / wpb in
          if Hashtbl.mem marked b then acc
          else begin
            Hashtbl.replace marked b ();
            Stress.Mark w :: acc
          end
        in
        let rec build k (acc : Stress.op list) =
          if k = 0 then List.rev acc
          else
            let acc : Stress.op list =
              match Rng.int rng 6 with
              | 0 -> Load (Rng.int rng nwords) :: acc
              | (1 | 2) when Array.length owned > 0 ->
                let w = pick owned in
                Store (w, Rng.int rng 100) :: ensure w acc
              | 3 when Array.length owned > 0 && rmw_ok ->
                let w = pick owned in
                Rmw (w, 1 + Rng.int rng 9) :: ensure w acc
              | 4 when Array.length red_words > 0 ->
                let w = pick red_words in
                Accum (w, 1 + Rng.int rng 9) :: ensure w acc
              | _ -> Yield :: acc
            in
            build (k - 1) acc
        in
        build (1 + Rng.int rng 3) [])
  in
  let nseg = 1 + Rng.int rng 2 in
  let segments =
    List.init nseg (fun _ : Stress.segment ->
        if Rng.int rng 4 = 0 then Sequential (gen_seq ())
        else Parallel (gen_par ()))
  in
  {
    seed;
    case;
    policy;
    nnodes;
    words_per_block = wpb;
    nblocks;
    dist;
    topology = Topology.Crossbar;
    barrier = Barrier.Constant;
    capacity_blocks = capacity;
    hw_cache_blocks = None;
    reductions;
    init;
    segments;
  }

(* ------------------------------------------------------------------ *)
(* Driver: check a policy's bounded configurations                     *)
(* ------------------------------------------------------------------ *)

type report = {
  rep_label : string;
  rep_policy : Policy.t;
  rep_outcome : outcome;
  rep_stats : stats;
}

let check_scenarios ?max_schedules ?fault_budget ?dup ?reduce ?(random = 0)
    ?(seed = 0) ~policy () =
  let configs =
    List.map (fun (n, p) -> ("scenario:" ^ n, p)) (scenarios ~policy)
    @ List.init random (fun case ->
          ( Printf.sprintf "micro:seed=%d:case=%d" seed case,
            gen_micro ~seed ~case ~policy ))
  in
  List.map
    (fun (label, prog) ->
      let outcome, stats =
        explore ~label ?max_schedules ?fault_budget ?dup ?reduce prog
      in
      { rep_label = label; rep_policy = policy; rep_outcome = outcome;
        rep_stats = stats })
    configs
