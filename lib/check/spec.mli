(** Abstract-state-machine consistency spec for the paper's per-epoch
    semantics (§3–§4), in the style of Schewe et al.'s concurrent-ASM
    specification of shared replicated memory.

    Agents carry private copy-on-write views over an immutable
    phase-start state; writes land privately; flush (and the implicit
    flush at reconcile) merges dirty words into the pending next state —
    last-writer for plain words, the registered reduction operator
    against the phase-start clean value for reduction words.  Agents are
    stepped by a round-robin scheduler; for well-formed programs (see
    {!Lcm_harness.Stress}) the result is scheduler-independent, so one
    interleaving computes the verdict.

    This module is the model checker's oracle.  It is an {e independent}
    formulation of the same contract the stress harness's golden model
    implements — the qcheck suite pins the two against each other
    word-for-word across seeded programs and every policy, so the spec
    cannot silently diverge from the oracle it replaces. *)

val run :
  Lcm_harness.Stress.prog -> (int option list array * int array) list
(** [run prog] — one entry per segment: per-node expected load values
    ([None] where the value is schedule-dependent and unchecked: bounded
    capacity under LCM, multi-writer words under coherent policies) and
    the expected master state after the segment (post-reconcile for
    parallel segments).  Output shape and contents match
    {!Lcm_harness.Stress.golden} exactly.
    @raise Failure on a program outside the well-formedness contract
    (e.g. an accum targeting a word outside every reduction region). *)
