(** The global address space: allocation and home-node mapping.

    Addresses are word indices into a single flat global space shared by all
    nodes, mirroring the paper's model ("physically distributed memory is
    addressed through a global address space").  Every cache block has a
    {e home node} that owns its master copy and directory entry.  The home
    of a block is determined by the distribution chosen when its region was
    allocated:

    - [On n] — the whole region lives on node [n];
    - [Interleaved] — consecutive blocks round-robin across nodes;
    - [Chunked] — the region splits into [nnodes] contiguous block runs
      (the distribution C\*\* aggregates use, matching the paper's
      statically-partitioned meshes). *)

type addr = int
(** A global word address. *)

type block = int
(** A global block number ([addr / words_per_block]). *)

type dist = On of int | Interleaved | Chunked

type region = { first_block : int; nblocks : int; dist : dist }
(** One allocated region: a contiguous run of blocks sharing a
    distribution.  Regions are dense — the first starts at block 0 and each
    subsequent region starts where the previous ended. *)

type t

val create : nnodes:int -> words_per_block:int -> t
(** [create ~nnodes ~words_per_block] is an empty address space.
    @raise Invalid_argument unless [nnodes >= 1] and
    [1 <= words_per_block <= Lcm_util.Mask.max_words]. *)

val nnodes : t -> int

val words_per_block : t -> int

val alloc : t -> dist:dist -> nwords:int -> addr
(** [alloc t ~dist ~nwords] reserves a fresh block-aligned region of at
    least [nwords] words (rounded up to whole blocks) and returns its base
    address.  @raise Invalid_argument if [nwords <= 0] or [dist = On n]
    with [n] out of range. *)

val home_of_block : t -> block -> int
(** Home node of a block, read from a per-block table filled at {!alloc}
    time (O(1), no search).  @raise Invalid_argument naming the block for
    never-allocated blocks. *)

val home_of_block_uncached : t -> block -> int
(** Home node recomputed from the region table and the distribution
    formula, bypassing the per-block cache.  Same result and same
    exceptions as {!home_of_block}; exists so tests can check the cache
    against the reference computation. *)

val region_of_block : t -> block -> region
(** The region a block was allocated in (binary search of the region
    table).  @raise Invalid_argument naming the block for never-allocated
    blocks. *)

val home_of_addr : t -> addr -> int

val block_of_addr : t -> addr -> block

val offset_in_block : t -> addr -> int

val base_of_block : t -> block -> addr
(** Address of word 0 of a block. *)

val allocated_words : t -> int
(** Total words allocated so far. *)

val is_allocated : t -> block -> bool
(** [is_allocated t b] — does [b] name a block inside allocated memory?
    The predicate behind the typed lookup failures in
    {!Lcm_tempest.Machine.master} and the directory engine, which turn a
    corrupt block number into a diagnostic naming the block instead of an
    anonymous [Not_found]. *)

val region_blocks : t -> addr -> nwords:int -> block list
(** [region_blocks t base ~nwords] enumerates the blocks overlapping
    [\[base, base+nwords)], in increasing order. *)
