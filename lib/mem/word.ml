type t = int

let zero = 0

let of_float f = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF

let to_float w = Int32.float_of_bits (Int32.of_int (w land 0xFFFFFFFF))

let of_int n = n land 0xFFFFFFFF

let to_int w =
  let w = w land 0xFFFFFFFF in
  if w land 0x80000000 <> 0 then w - (1 lsl 32) else w

let float_add a b = of_float (to_float a +. to_float b)

let float_min a b = of_float (Float.min (to_float a) (to_float b))

let float_max a b = of_float (Float.max (to_float a) (to_float b))

let pp ppf w = Format.fprintf ppf "0x%08x" (w land 0xFFFFFFFF)
