type addr = int
type block = int

type dist = On of int | Interleaved | Chunked

type region = {
  first_block : int;
  nblocks : int;
  dist : dist;
}

type t = {
  nnodes : int;
  words_per_block : int;
  mutable regions : region list; (* most recent first *)
  mutable next_block : int;
}

let create ~nnodes ~words_per_block =
  if nnodes < 1 then invalid_arg "Gmem.create: nnodes must be >= 1";
  if words_per_block < 1 || words_per_block > Lcm_util.Mask.max_words then
    invalid_arg "Gmem.create: invalid words_per_block";
  { nnodes; words_per_block; regions = []; next_block = 0 }

let nnodes t = t.nnodes

let words_per_block t = t.words_per_block

let alloc t ~dist ~nwords =
  if nwords <= 0 then invalid_arg "Gmem.alloc: nwords must be positive";
  (match dist with
  | On n when n < 0 || n >= t.nnodes -> invalid_arg "Gmem.alloc: node out of range"
  | On _ | Interleaved | Chunked -> ());
  let nblocks = (nwords + t.words_per_block - 1) / t.words_per_block in
  let region = { first_block = t.next_block; nblocks; dist } in
  t.regions <- region :: t.regions;
  t.next_block <- t.next_block + nblocks;
  region.first_block * t.words_per_block

let region_of_block t b =
  let in_region r = b >= r.first_block && b < r.first_block + r.nblocks in
  match List.find_opt in_region t.regions with
  | Some r -> r
  | None -> raise Not_found

let home_of_block t b =
  let r = region_of_block t b in
  let index = b - r.first_block in
  match r.dist with
  | On n -> n
  | Interleaved -> index mod t.nnodes
  | Chunked ->
    (* Even contiguous split: node n owns blocks [n*q + min n rem, ...) where
       the first [rem] nodes get one extra block. *)
    let q = r.nblocks / t.nnodes and rem = r.nblocks mod t.nnodes in
    if q = 0 then index mod t.nnodes
    else
      let boundary = (q + 1) * rem in
      if index < boundary then index / (q + 1) else rem + ((index - boundary) / q)

let block_of_addr t a = a / t.words_per_block

let home_of_addr t a = home_of_block t (block_of_addr t a)

let offset_in_block t a = a mod t.words_per_block

let base_of_block t b = b * t.words_per_block

let allocated_words t = t.next_block * t.words_per_block

let region_blocks t base ~nwords =
  if nwords <= 0 then []
  else
    let first = block_of_addr t base in
    let last = block_of_addr t (base + nwords - 1) in
    List.init (last - first + 1) (fun i -> first + i)
