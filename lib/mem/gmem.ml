type addr = int
type block = int

type dist = On of int | Interleaved | Chunked

type region = {
  first_block : int;
  nblocks : int;
  dist : dist;
}

type t = {
  nnodes : int;
  words_per_block : int;
  wpb_shift : int;
      (* log2 words_per_block when it is a power of two, else -1: block and
         offset arithmetic runs on every simulated access, and a shift/mask
         beats the two integer divisions *)
  wpb_mask : int;
  mutable regions : region array;  (* sorted by first_block; dense prefix *)
  mutable nregions : int;
  mutable next_block : int;
  mutable home : int array;
      (* per-block home node, filled at alloc time: the O(1) fast path for
         every simulated access.  Length >= next_block; slots beyond are
         dead. *)
  mutable region_idx : int array;
      (* per-block index into [regions], maintained alongside [home] *)
}

let create ~nnodes ~words_per_block =
  if nnodes < 1 then invalid_arg "Gmem.create: nnodes must be >= 1";
  if words_per_block < 1 || words_per_block > Lcm_util.Mask.max_words then
    invalid_arg "Gmem.create: invalid words_per_block";
  let wpb_shift =
    let rec log2 acc n = if n = 1 then acc else log2 (acc + 1) (n lsr 1) in
    if words_per_block land (words_per_block - 1) = 0 then
      log2 0 words_per_block
    else -1
  in
  {
    nnodes;
    words_per_block;
    wpb_shift;
    wpb_mask = words_per_block - 1;
    regions = [||];
    nregions = 0;
    next_block = 0;
    home = [||];
    region_idx = [||];
  }

let nnodes t = t.nnodes

let words_per_block t = t.words_per_block

let unallocated fn b =
  invalid_arg (Printf.sprintf "Gmem.%s: block %d is not allocated" fn b)

(* Home of the [index]-th block of region [r], from the distribution alone
   — the reference computation the per-block cache is filled from (and
   checked against in tests). *)
let home_in_region t (r : region) ~index =
  match r.dist with
  | On n -> n
  | Interleaved -> index mod t.nnodes
  | Chunked ->
    (* Even contiguous split: node n owns blocks [n*q + min n rem, ...) where
       the first [rem] nodes get one extra block. *)
    let q = r.nblocks / t.nnodes and rem = r.nblocks mod t.nnodes in
    if q = 0 then index mod t.nnodes
    else
      let boundary = (q + 1) * rem in
      if index < boundary then index / (q + 1) else rem + ((index - boundary) / q)

let grow_tables t needed =
  let cap = Array.length t.home in
  if needed > cap then begin
    let new_cap = max needed (max 64 (2 * cap)) in
    let home = Array.make new_cap (-1) in
    Array.blit t.home 0 home 0 t.next_block;
    t.home <- home;
    let idx = Array.make new_cap (-1) in
    Array.blit t.region_idx 0 idx 0 t.next_block;
    t.region_idx <- idx
  end

let alloc t ~dist ~nwords =
  if nwords <= 0 then invalid_arg "Gmem.alloc: nwords must be positive";
  (match dist with
  | On n when n < 0 || n >= t.nnodes -> invalid_arg "Gmem.alloc: node out of range"
  | On _ | Interleaved | Chunked -> ());
  let nblocks = (nwords + t.words_per_block - 1) / t.words_per_block in
  let region = { first_block = t.next_block; nblocks; dist } in
  if t.nregions = Array.length t.regions then begin
    let cap = max 8 (2 * t.nregions) in
    let regions = Array.make cap region in
    Array.blit t.regions 0 regions 0 t.nregions;
    t.regions <- regions
  end;
  t.regions.(t.nregions) <- region;
  let ridx = t.nregions in
  t.nregions <- t.nregions + 1;
  grow_tables t (t.next_block + nblocks);
  for index = 0 to nblocks - 1 do
    let b = region.first_block + index in
    t.home.(b) <- home_in_region t region ~index;
    t.region_idx.(b) <- ridx
  done;
  t.next_block <- t.next_block + nblocks;
  region.first_block * t.words_per_block

(* Cold fallback: binary search the (sorted, disjoint, contiguous) region
   table.  Kept for introspection and as the reference the cached tables
   are tested against. *)
let region_of_block t b =
  if b < 0 || b >= t.next_block then unallocated "region_of_block" b;
  let rec search lo hi =
    (* invariant: regions.(lo).first_block <= b < end of regions.(hi) *)
    if lo = hi then t.regions.(lo)
    else
      let mid = (lo + hi + 1) / 2 in
      if t.regions.(mid).first_block <= b then search mid hi else search lo (mid - 1)
  in
  search 0 (t.nregions - 1)

let home_of_block t b =
  if b < 0 || b >= t.next_block then unallocated "home_of_block" b;
  Array.unsafe_get t.home b

let home_of_block_uncached t b =
  let r = region_of_block t b in
  home_in_region t r ~index:(b - r.first_block)

let block_of_addr t a =
  if t.wpb_shift >= 0 then a lsr t.wpb_shift else a / t.words_per_block

let home_of_addr t a = home_of_block t (block_of_addr t a)

let offset_in_block t a =
  if t.wpb_shift >= 0 then a land t.wpb_mask else a mod t.words_per_block

let base_of_block t b = b * t.words_per_block

let allocated_words t = t.next_block * t.words_per_block
let is_allocated t b = b >= 0 && b < t.next_block

let region_blocks t base ~nwords =
  if nwords <= 0 then []
  else
    let first = block_of_addr t base in
    let last = block_of_addr t (base + nwords - 1) in
    List.init (last - first + 1) (fun i -> first + i)
