(** Memory words and codecs.

    The simulated machine is word-addressed with 32-bit words, like the
    CM-5 nodes the paper measured ("a cache block holds eight
    single-precision floats").  A word is carried in a native OCaml [int];
    floating-point data uses the IEEE-754 single-precision bit pattern so
    that a word round-trips exactly through memory, messages and
    reconciliation. *)

type t = int
(** One memory word. *)

val zero : t

val of_float : float -> t
(** [of_float f] is the single-precision bit pattern of [f] (with the usual
    float32 rounding). *)

val to_float : t -> float
(** Inverse of {!of_float}. *)

val of_int : int -> t
(** [of_int n] truncates [n] to 32 bits (two's complement). *)

val to_int : t -> int
(** Sign-extends the low 32 bits back to an OCaml int. *)

val float_add : t -> t -> t
(** Single-precision [a + b] performed on encoded words. *)

val float_min : t -> t -> t

val float_max : t -> t -> t

val pp : Format.formatter -> t -> unit
