(** Cache-block payloads: fixed-size word arrays with the merge operations
    reconciliation needs.

    A block is the coherence and transfer unit of the machine (default
    8 words = 32 bytes).  LCM reconciliation works word-at-a-time under a
    dirty {!Lcm_util.Mask.t}. *)

type t = Word.t array
(** Mutable block contents.  All blocks in one machine share a length. *)

val make : words:int -> t
(** A zero-filled block. *)

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] overwrites [dst] with [src].
    @raise Invalid_argument on length mismatch. *)

val equal : t -> t -> bool

val merge_masked : src:t -> dst:t -> mask:Lcm_util.Mask.t -> unit
(** [merge_masked ~src ~dst ~mask] copies exactly the masked words of [src]
    into [dst] (last-writer-wins reconciliation). *)

val combine_masked :
  f:(Word.t -> Word.t -> Word.t) ->
  src:t ->
  dst:t ->
  mask:Lcm_util.Mask.t ->
  unit
(** [combine_masked ~f ~src ~dst ~mask] sets [dst.(i) <- f dst.(i) src.(i)]
    for each masked word — the reduction form of reconciliation. *)

val diff_mask : clean:t -> dirty:t -> Lcm_util.Mask.t
(** [diff_mask ~clean ~dirty] is the set of word indices whose values
    differ — the value-diff fallback the paper's implementation used (our
    protocol prefers exact store masks; see DESIGN.md §3). *)

val pp : Format.formatter -> t -> unit
