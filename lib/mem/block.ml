type t = Word.t array

let make ~words = Array.make words Word.zero

let copy = Array.copy

let blit ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Block.blit: length mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let equal a b = a = b

let merge_masked ~src ~dst ~mask =
  Lcm_util.Mask.iter mask (fun i -> dst.(i) <- src.(i))

let combine_masked ~f ~src ~dst ~mask =
  Lcm_util.Mask.iter mask (fun i -> dst.(i) <- f dst.(i) src.(i))

let diff_mask ~clean ~dirty =
  let mask = ref Lcm_util.Mask.empty in
  for i = 0 to Array.length clean - 1 do
    if clean.(i) <> dirty.(i) then mask := Lcm_util.Mask.set !mask i
  done;
  !mask

let pp ppf b =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i w ->
      if i > 0 then Format.fprintf ppf "; ";
      Word.pp ppf w)
    b;
  Format.fprintf ppf "|]"
