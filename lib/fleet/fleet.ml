module Engine = Lcm_sim.Engine

module Budget = struct
  type t = { max_events : int option; wall_s : float option }

  let none = { max_events = None; wall_s = None }

  let make ?max_events ?wall_s () =
    (match max_events with
    | Some n when n <= 0 -> invalid_arg "Fleet.Budget.make: max_events <= 0"
    | Some _ | None -> ());
    (match wall_s with
    | Some s when s <= 0.0 -> invalid_arg "Fleet.Budget.make: wall_s <= 0"
    | Some _ | None -> ());
    { max_events; wall_s }
end

type timeout = Event_budget of { events : int; at_cycle : int } | Wall_clock of { limit_s : float }

type 'a outcome =
  | Done of 'a
  | Failed of { exn : string; backtrace : string }
  | Timed_out of timeout

type 'a cell_result = {
  index : int;
  label : string;
  outcome : 'a outcome;
  host_s : float;
  events : int;
}

let outcome_string = function
  | Done _ -> "done"
  | Failed { exn; _ } -> "failed: " ^ exn
  | Timed_out (Event_budget { events; at_cycle }) ->
    Printf.sprintf "timed-out: event budget %d exhausted at cycle %d" events
      at_cycle
  | Timed_out (Wall_clock { limit_s }) ->
    Printf.sprintf "timed-out: wall clock over %gs" limit_s

let resolve_jobs = function
  | 0 -> max 1 (Domain.recommended_domain_count ())
  | n -> max 1 n

(* ------------------------------------------------------------------ *)
(* Progress                                                            *)
(* ------------------------------------------------------------------ *)

module Progress = struct
  type t = {
    out : out_channel;
    tty : bool;
    min_interval_s : float;
    total : int;
    started : float;
    mutable done_ : int;
    mutable last_draw : float;
    mutable finished : (string * float) list;  (* (label, host_s), any order *)
  }

  let create ?(out = stderr) ?(min_interval_s = 0.1) ~total () =
    {
      out;
      tty = (try Unix.isatty (Unix.descr_of_out_channel out) with Unix.Unix_error _ -> false);
      min_interval_s;
      total;
      started = Unix.gettimeofday ();
      done_ = 0;
      last_draw = 0.0;
      finished = [];
    }

  let slowest k finished =
    List.sort (fun (_, a) (_, b) -> compare b a) finished
    |> List.filteri (fun i _ -> i < k)

  let draw t ~now =
    let elapsed = now -. t.started in
    let eta =
      if t.done_ = 0 then nan
      else elapsed /. float_of_int t.done_ *. float_of_int (t.total - t.done_)
    in
    let slow =
      match slowest 1 t.finished with
      | [ (label, s) ] -> Printf.sprintf "  slowest %s %.2fs" label s
      | _ -> ""
    in
    let line =
      Printf.sprintf "[%d/%d] %3.0f%%  %.1fs elapsed%s%s" t.done_ t.total
        (100.0 *. float_of_int t.done_ /. float_of_int (max 1 t.total))
        elapsed
        (if Float.is_nan eta then "" else Printf.sprintf "  eta %.1fs" eta)
        slow
    in
    if t.tty then Printf.fprintf t.out "\r\027[K%s%!" line
    else Printf.fprintf t.out "%s\n%!" line

  let cell_done t ~label ~host_s =
    t.done_ <- t.done_ + 1;
    t.finished <- (label, host_s) :: t.finished;
    let now = Unix.gettimeofday () in
    if t.done_ = t.total || now -. t.last_draw >= t.min_interval_s then begin
      t.last_draw <- now;
      draw t ~now
    end

  let finish t =
    draw t ~now:(Unix.gettimeofday ());
    if t.tty then output_char t.out '\n';
    let elapsed = Unix.gettimeofday () -. t.started in
    Printf.fprintf t.out "%d cell%s in %.1fs host time\n" t.done_
      (if t.done_ = 1 then "" else "s")
      elapsed;
    (match slowest 3 t.finished with
    | [] -> ()
    | slow ->
      Printf.fprintf t.out "slowest:\n";
      List.iter
        (fun (label, s) -> Printf.fprintf t.out "  %8.2fs  %s\n" s label)
        slow);
    flush t.out
end

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  let run_cell ~(budget : Budget.t) ~index ~label thunk =
    let t0 = Unix.gettimeofday () in
    let guard =
      Option.map
        (fun limit_s ->
          let deadline = t0 +. limit_s in
          fun () ->
            if Unix.gettimeofday () > deadline then
              raise (Engine.Wall_clock_exceeded { limit_s }))
        budget.Budget.wall_s
    in
    let ev0 = Engine.domain_events () in
    let outcome =
      match
        Engine.with_budget ?max_events:budget.Budget.max_events ?guard thunk
      with
      | v -> Done v
      | exception Engine.Budget_exhausted { events; now } ->
        Timed_out (Event_budget { events; at_cycle = now })
      | exception Engine.Wall_clock_exceeded { limit_s } ->
        Timed_out (Wall_clock { limit_s })
      | exception exn ->
        let backtrace = Printexc.get_backtrace () in
        Failed { exn = Printexc.to_string exn; backtrace }
    in
    {
      index;
      label;
      outcome;
      host_s = Unix.gettimeofday () -. t0;
      events = Engine.domain_events () - ev0;
    }

  let run ?(jobs = 1) ?(budget = Budget.none) ?progress cells =
    let jobs = resolve_jobs jobs in
    let n = Array.length cells in
    let results = Array.make n None in
    let progress_mu = Mutex.create () in
    let note_done (r : _ cell_result) =
      match progress with
      | None -> ()
      | Some p ->
        Mutex.protect progress_mu (fun () ->
            Progress.cell_done p ~label:r.label ~host_s:r.host_s)
    in
    let do_cell i =
      let label, thunk = cells.(i) in
      let r = run_cell ~budget ~index:i ~label thunk in
      (* distinct slots: no two domains ever write the same index *)
      results.(i) <- Some r;
      note_done r
    in
    let jobs = min jobs (max 1 n) in
    if jobs <= 1 then
      for i = 0 to n - 1 do
        do_cell i
      done
    else begin
      Printexc.record_backtrace true;
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            do_cell i;
            loop ()
          end
        in
        loop ()
      in
      let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      (* the calling domain is the jobs-th worker *)
      worker ();
      Array.iter Domain.join others
    end;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index 0..n-1 was claimed exactly once *))
      results
end
