(** Domain-parallel experiment orchestration.

    The paper's evaluation is a grid of {e independent} simulations —
    every (benchmark × memory-system × partitioning × scale) cell builds
    its own machine, runs it to quiescence and reads its own counters.
    This module runs such grids across OCaml 5 domains with three
    guarantees the harness relies on:

    - {b determinism}: results are keyed by cell index and returned in
      submission order, so a sweep's output is bit-identical no matter how
      many workers run it or in what order cells finish;
    - {b crash containment}: an exception in one cell is captured (with
      its backtrace) as a {!Failed} outcome and the sweep continues;
    - {b budgets}: a per-cell simulated-event cap (deterministic — it
      fires at the same simulated point at any job count) and a wall-clock
      guard, both surfacing as {!Timed_out} instead of hanging the sweep.

    Cells must be self-contained thunks: each builds its own machine /
    stats registry / trace sink and shares no mutable state with its
    siblings.  Everything in the simulator proper is per-machine, so the
    existing harness cells satisfy this by construction. *)

module Budget : sig
  type t = {
    max_events : int option;
        (** Cap on simulated engine events per cell (all engines the cell
            creates combined).  Deterministic. *)
    wall_s : float option;
        (** Host wall-clock seconds per cell; checked every few thousand
            events.  A safety net — not deterministic. *)
  }

  val none : t

  val make : ?max_events:int -> ?wall_s:float -> unit -> t
  (** @raise Invalid_argument on a non-positive cap. *)
end

type timeout = Event_budget of { events : int; at_cycle : int } | Wall_clock of { limit_s : float }

type 'a outcome =
  | Done of 'a
  | Failed of { exn : string; backtrace : string }
      (** The cell raised: [exn] is [Printexc.to_string] of the exception,
          [backtrace] the raise-point backtrace (possibly empty). *)
  | Timed_out of timeout

type 'a cell_result = {
  index : int;  (** position in the submitted cell array *)
  label : string;
  outcome : 'a outcome;
  host_s : float;  (** host wall-clock seconds the cell took *)
  events : int;  (** simulated engine events the cell executed *)
}

val outcome_string : _ outcome -> string
(** ["done"], ["failed: <exn>"] or ["timed-out: ..."] — one line, no
    backtrace. *)

val resolve_jobs : int -> int
(** Clamp a user-supplied job count: [0] means auto
    ([Domain.recommended_domain_count ()]), negatives are clamped to 1. *)

(** Live sweep progress, rendered to stderr: cells done/total, percent,
    elapsed, ETA and the currently-slowest finished cell, redrawn in place
    on a TTY (line-by-line otherwise).  [finish] prints a summary with the
    slowest cells — host-side observability only, never part of the
    machine-readable results. *)
module Progress : sig
  type t

  val create : ?out:out_channel -> ?min_interval_s:float -> total:int -> unit -> t
  (** [out] defaults to stderr; [min_interval_s] (default 0.1) throttles
      redraws. *)

  val cell_done : t -> label:string -> host_s:float -> unit
  (** Record one finished cell and maybe redraw.  Called by {!Pool.run}
      under its own lock — safe from any domain. *)

  val finish : t -> unit
  (** Final newline + "N cells in S s" summary with the slowest cells. *)
end

module Pool : sig
  val run :
    ?jobs:int ->
    ?budget:Budget.t ->
    ?progress:Progress.t ->
    (string * (unit -> 'a)) array ->
    'a cell_result array
  (** [run cells] executes every [(label, thunk)] cell and returns results
      in submission order.  [jobs] defaults to [1] (run inline on the
      calling domain — deterministic-sequential, no domains spawned); [0]
      means auto.  With [jobs > 1], [jobs - 1] worker domains are spawned
      and the calling domain participates; cells are claimed from a shared
      index so the schedule is work-stealing-ish, but the {e result array}
      is identical at any job count for deterministic cells.  Budget and
      crash outcomes are per-cell; the sweep itself never raises on a
      failing cell. *)
end
