open Lcm_cstar
module Gmem = Lcm_mem.Gmem
module Machine = Lcm_tempest.Machine
module Memeff = Lcm_tempest.Memeff

type mode = [ `Fresh | `Stale of int ]

type params = { bodies : int; iters : int; work_per_body : int }

let default = { bodies = 256; iters = 16; work_per_body = 2 }

let mode_name = function
  | `Fresh -> "fresh"
  | `Stale r -> Printf.sprintf "stale-%d" r

let init_pos i = float_of_int ((i * 13 mod 97) - 48)

(* Block numbers of the aggregate's storage that are NOT homed on [nid]. *)
let remote_blocks rt (a : Agg.t) nid =
  let gmem = Machine.gmem (Runtime.machine rt) in
  let blocks = ref [] in
  let n = Agg.cols a in
  let seen = Hashtbl.create 64 in
  for j = 0 to n - 1 do
    let b = Gmem.block_of_addr gmem (Agg.read_addr a 0 j) in
    if not (Hashtbl.mem seen b) then begin
      Hashtbl.add seen b ();
      if Gmem.home_of_block gmem b <> nid then blocks := b :: !blocks
    end
  done;
  List.rev !blocks

let run rt mode { bodies; iters; work_per_body } =
  let a = Runtime.alloc1d rt ~n:bodies ~dist:Gmem.Chunked in
  for i = 0 to bodies - 1 do
    Agg.pokef a 0 i (init_pos i)
  done;
  let mach = Runtime.machine rt in
  let gmem = Machine.gmem mach in
  let wpb = Gmem.words_per_block gmem in
  let nnodes = Machine.nnodes mach in
  let started = Runtime.elapsed rt in
  (* Pin phase: each node touches and pins every remote block of the
     aggregate so reconciliation leaves its copies in place. *)
  (match mode with
  | `Stale _ ->
    Runtime.parallel_apply rt ~n:nnodes (fun ctx ->
        List.iter
          (fun b ->
            let addr = b * wpb in
            ignore (Memeff.load addr);
            Lcm_core.Stale.pin addr)
          (remote_blocks rt a ctx.Ctx.node))
  | `Fresh -> ());
  for iter = 0 to iters - 1 do
    (* Refresh phase: drop pinned copies every refresh_every iterations so
       the next reads see the latest reconciled positions. *)
    (match mode with
    | `Stale refresh_every when iter > 0 && iter mod refresh_every = 0 ->
      Runtime.parallel_apply rt ~iter ~n:nnodes (fun ctx ->
          List.iter
            (fun b ->
              let addr = b * wpb in
              Lcm_core.Stale.refresh addr;
              ignore (Memeff.load addr);
              Lcm_core.Stale.pin addr)
            (remote_blocks rt a ctx.Ctx.node))
    | `Stale _ | `Fresh -> ());
    Runtime.parallel_apply rt ~iter ~n:bodies (fun ctx ->
        let i = ctx.Ctx.index in
        Memeff.work work_per_body;
        let sum = ref 0.0 in
        for j = 0 to bodies - 1 do
          sum := !sum +. Agg.getf1 a j
        done;
        let mean = !sum /. float_of_int bodies in
        Agg.setf1 a i ((0.9 *. Agg.getf1 a i) +. (0.1 *. mean)))
  done;
  let cycles = Runtime.elapsed rt - started in
  let checksum = ref 0.0 in
  for i = 0 to bodies - 1 do
    checksum := !checksum +. Agg.peekf a 0 i
  done;
  Bench_result.make
    ~name:("nbody-" ^ mode_name mode)
    ~cycles ~checksum:!checksum ~stats:(Runtime.stats rt)
