open Lcm_cstar
module Gmem = Lcm_mem.Gmem
module Machine = Lcm_tempest.Machine

type sharing = [ `Private | `Neighbour | `Random | `Hot of int ]

type params = {
  blocks_per_node : int;
  phases : int;
  invocations_per_node : int;
  ops_per_invocation : int;
  read_fraction : float;
  sharing : sharing;
  seed : int;
}

let default =
  {
    blocks_per_node = 8;
    phases = 4;
    invocations_per_node = 8;
    ops_per_invocation = 16;
    read_fraction = 0.75;
    sharing = `Neighbour;
    seed = 7;
  }

let sharing_of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "private" ] -> Ok `Private
  | [ "neighbour" ] | [ "neighbor" ] -> Ok `Neighbour
  | [ "random" ] -> Ok `Random
  | [ "hot"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (`Hot n)
    | Some _ | None -> Error "hot: expected positive block count")
  | _ -> Error (Printf.sprintf "unknown sharing pattern %S" s)

let sharing_to_string = function
  | `Private -> "private"
  | `Neighbour -> "neighbour"
  | `Random -> "random"
  | `Hot n -> Printf.sprintf "hot:%d" n

let run rt p =
  if p.read_fraction < 0.0 || p.read_fraction > 1.0 then
    invalid_arg "Synthetic.run: read_fraction must be in [0,1]";
  let mach = Runtime.machine rt in
  let nnodes = Machine.nnodes mach in
  let wpb = Gmem.words_per_block (Machine.gmem mach) in
  let total_words = p.blocks_per_node * nnodes * wpb in
  let a = Runtime.alloc1d rt ~n:total_words ~dist:Gmem.Chunked in
  for w = 0 to total_words - 1 do
    Agg.poke a 0 w (w mod 251)
  done;
  let n_inv = nnodes * p.invocations_per_node in
  (* every invocation owns a private write range; the ranges partition the
     whole aggregate, so writes never conflict and results are identical
     under every memory system *)
  let ranges = Schedule.chunks ~n:total_words ~nchunks:n_inv in
  let node_words = p.blocks_per_node * wpb in
  (* read-address generator per pattern, drawn deterministically per
     (phase, invocation, op) *)
  let read_addr rng ~inv =
    match p.sharing with
    | `Private ->
      let lo, hi = ranges.(inv) in
      lo + Lcm_util.Rng.int rng (max 1 (hi - lo))
    | `Neighbour ->
      (* reads span the node's own band and its two neighbours *)
      let node_part = inv mod nnodes in
      let which = Lcm_util.Rng.int rng 3 - 1 in
      let part = (node_part + which + nnodes) mod nnodes in
      (part * node_words) + Lcm_util.Rng.int rng node_words
    | `Random -> Lcm_util.Rng.int rng total_words
    | `Hot hot_blocks ->
      if Lcm_util.Rng.int rng 10 < 8 then
        (* 80% of reads hit the hot set at the front of the space *)
        Lcm_util.Rng.int rng (min total_words (hot_blocks * wpb))
      else Lcm_util.Rng.int rng total_words
  in
  let explicit_copy = Runtime.strategy rt = Runtime.Explicit_copy in
  let started = Runtime.elapsed rt in
  for phase = 0 to p.phases - 1 do
    (* conservative pre-copy under explicit copying: the write sets are
       data-dependent, so every value must move to the new buffer first *)
    if explicit_copy then
      Runtime.parallel_apply rt ~iter:phase ~schedule:Schedule.Static ~n:n_inv
        (fun ctx ->
          let lo, hi = ranges.(ctx.Ctx.index) in
          for w = lo to hi - 1 do
            Agg.set1 a w (Agg.get1 a w)
          done);
    Runtime.parallel_apply rt ~iter:phase ~n:n_inv (fun ctx ->
        let inv = ctx.Ctx.index in
        let rng =
          Lcm_util.Rng.create ~seed:(p.seed + (phase * 7919) + (inv * 104729))
        in
        let lo, hi = ranges.(inv) in
        let span = max 1 (hi - lo) in
        for _ = 1 to p.ops_per_invocation do
          if Lcm_util.Rng.float rng 1.0 < p.read_fraction then
            (* reads drive sharing traffic; written values are independent
               of them so that read-own-write visibility differences
               between the strategies cannot change the data *)
            ignore (Agg.get1 a (read_addr rng ~inv))
          else begin
            let w = lo + Lcm_util.Rng.int rng span in
            Agg.set1 a w (((phase * 31) + w) mod 1009)
          end
        done);
    Agg.swap a
  done;
  let cycles = Runtime.elapsed rt - started in
  let checksum = ref 0.0 in
  for w = 0 to total_words - 1 do
    checksum := !checksum +. float_of_int (Agg.peek a 0 w)
  done;
  Bench_result.make
    ~name:("synthetic-" ^ sharing_to_string p.sharing)
    ~cycles ~checksum:!checksum ~stats:(Runtime.stats rt)
