open Lcm_cstar
module Word = Lcm_mem.Word
module Gmem = Lcm_mem.Gmem

type params = {
  nodes : int;
  edges : int;
  iters : int;
  seed : int;
  work_per_node : int;
}

let default = { nodes = 256; edges = 1024; iters = 32; seed = 11; work_per_node = 6 }

let paper = { nodes = 256; edges = 1024; iters = 512; seed = 11; work_per_node = 6 }

(* Random multigraph-free undirected graph: a Hamiltonian ring for
   connectivity plus random extra edges, deterministic in the seed. *)
let build_graph ~nodes ~edges ~seed =
  let rng = Lcm_util.Rng.create ~seed in
  let seen = Hashtbl.create (edges * 2) in
  let adj = Array.make nodes [] in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v);
      true
    end
    else false
  in
  for u = 0 to nodes - 1 do
    ignore (add u ((u + 1) mod nodes))
  done;
  let remaining = ref (edges - nodes) in
  while !remaining > 0 do
    let u = Lcm_util.Rng.int rng nodes and v = Lcm_util.Rng.int rng nodes in
    if add u v then decr remaining
  done;
  Array.map (fun ns -> Array.of_list (List.rev ns)) adj

let init_value i = float_of_int ((i * 37 mod 101) - 50)

(* Deterministic permutation of value slots: graph nodes are stored in
   construction order, so the partition's write sets straddle cache blocks
   — multiple processors write words of the same block every iteration. *)
let scatter { nodes; seed; _ } u =
  (* multiplicative hash modulo a unit: pick an odd multiplier coprime with
     [nodes] by construction (nodes is a power-of-two-ish size in practice,
     any odd a works when nodes is a power of two; otherwise fall back to a
     full permutation table) *)
  ignore seed;
  if nodes land (nodes - 1) = 0 then (u * 0x9E5) land (nodes - 1)
  else (u * 7919 mod nodes + nodes) mod nodes

let f32 x = Word.to_float (Word.of_float x)

let step_ref adj values =
  Array.mapi
    (fun u v ->
      let sum = Array.fold_left (fun acc n -> acc +. values.(n)) 0.0 adj.(u) in
      let avg = sum /. float_of_int (Array.length adj.(u)) in
      f32 ((0.5 *. v) +. (0.5 *. avg)))
    values

let reference { nodes; edges; iters; seed; _ } =
  let adj = build_graph ~nodes ~edges ~seed in
  let values = ref (Array.init nodes (fun i -> f32 (init_value i))) in
  for _ = 1 to iters do
    values := step_ref adj !values
  done;
  Array.fold_left ( +. ) 0.0 !values

let run rt ({ nodes; edges; iters; seed; work_per_node } as p) =
  let adj = build_graph ~nodes ~edges ~seed in
  let slot = scatter p in
  let proto = Runtime.proto rt in
  let gmem = Lcm_tempest.Machine.gmem (Runtime.machine rt) in
  (* CSR adjacency in read-only shared memory: row offsets + neighbour ids *)
  let degrees = Array.map Array.length adj in
  let total = Array.fold_left ( + ) 0 degrees in
  let offsets_base = Gmem.alloc gmem ~dist:Gmem.Chunked ~nwords:(nodes + 1) in
  let neigh_base = Gmem.alloc gmem ~dist:Gmem.Chunked ~nwords:(max 1 total) in
  let off = ref 0 in
  for u = 0 to nodes - 1 do
    Lcm_core.Proto.poke proto (offsets_base + u) !off;
    Array.iter
      (fun v ->
        Lcm_core.Proto.poke proto (neigh_base + !off) v;
        incr off)
      adj.(u)
  done;
  Lcm_core.Proto.poke proto (offsets_base + nodes) !off;
  let values = Runtime.alloc1d rt ~n:nodes ~dist:Gmem.Chunked in
  for u = 0 to nodes - 1 do
    Agg.pokef values 0 (slot u) (f32 (init_value u))
  done;
  let started = Runtime.elapsed rt in
  for iter = 0 to iters - 1 do
    Runtime.parallel_apply rt ~iter ~n:nodes (fun ctx ->
        let u = ctx.Ctx.index in
        Lcm_tempest.Memeff.work work_per_node;
        let lo = Lcm_tempest.Memeff.load (offsets_base + u) in
        let hi = Lcm_tempest.Memeff.load (offsets_base + u + 1) in
        let sum = ref 0.0 in
        for e = lo to hi - 1 do
          let v = Lcm_tempest.Memeff.load (neigh_base + e) in
          sum := !sum +. Agg.getf1 values (slot v)
        done;
        let avg = !sum /. float_of_int (hi - lo) in
        Agg.setf1 values (slot u) ((0.5 *. Agg.getf1 values (slot u)) +. (0.5 *. avg)));
    Agg.swap values
  done;
  let cycles = Runtime.elapsed rt - started in
  let checksum =
    let acc = ref 0.0 in
    for u = 0 to nodes - 1 do
      acc := !acc +. Agg.peekf values 0 u
    done;
    !acc
  in
  Bench_result.make ~name:"unstructured" ~cycles ~checksum ~stats:(Runtime.stats rt)
