open Lcm_cstar
module Gmem = Lcm_mem.Gmem
module Memeff = Lcm_tempest.Memeff
module Machine = Lcm_tempest.Machine

type params = { blocks : int; rounds : int }

let default = { blocks = 16; rounds = 20 }

let run rt { blocks; rounds } =
  let mach = Runtime.machine rt in
  let gmem = Machine.gmem mach in
  let wpb = Gmem.words_per_block gmem in
  let nnodes = Machine.nnodes mach in
  let base = Gmem.alloc gmem ~dist:(Gmem.On 0) ~nwords:(blocks * wpb) in
  let proto = Runtime.proto rt in
  for w = 0 to (blocks * wpb) - 1 do
    Lcm_core.Proto.poke proto (base + w) 0
  done;
  (* Processor p owns word (p mod wpb) of the blocks whose index is
     congruent to (p / wpb) modulo [stride]: up to wpb processors write
     disjoint words of each block, and no word has two writers. *)
  let stride = (nnodes + wpb - 1) / wpb in
  let started = Runtime.elapsed rt in
  for iter = 0 to rounds - 1 do
    Runtime.parallel_apply rt ~iter ~n:nnodes (fun ctx ->
        let p = ctx.Ctx.index in
        let word = p mod wpb and group = p / wpb in
        for b = 0 to blocks - 1 do
          if b mod stride = group then begin
            let addr = base + (b * wpb) + word in
            (match Runtime.strategy rt with
            | Runtime.Lcm_directives ->
              Memeff.directive (Memeff.Mark_modification addr)
            | Runtime.Explicit_copy -> ());
            Memeff.store addr (Memeff.load addr + p + 1)
          end
        done)
  done;
  let cycles = Runtime.elapsed rt - started in
  let checksum = ref 0.0 in
  for w = 0 to (blocks * wpb) - 1 do
    checksum := !checksum +. float_of_int (Lcm_core.Proto.peek proto (base + w))
  done;
  Bench_result.make ~name:"false-sharing" ~cycles ~checksum:!checksum
    ~stats:(Runtime.stats rt)
