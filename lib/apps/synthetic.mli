(** Synthetic workload generator for protocol exploration.

    Generates phase-structured workloads with a controllable sharing
    pattern: every invocation writes elements of its own partition
    (conflict-free, so all memory systems must compute identical results)
    and reads according to [sharing]:

    - [`Private]: reads stay in the invocation's partition — no
      communication beyond cold misses;
    - [`Neighbour]: reads span the two adjacent partitions — boundary
      sharing, like a stencil;
    - [`Random]: reads scatter uniformly — like an irregular graph code;
    - [`Hot n]: most reads hit a small hot set of [n] blocks — contended
      shared state.

    Useful both as a CLI exploration tool ([lcm_sim synthetic ...]) and as
    a fuzzing substrate for protocol tests. *)

type sharing = [ `Private | `Neighbour | `Random | `Hot of int ]

type params = {
  blocks_per_node : int;  (** partition size, in blocks *)
  phases : int;
  invocations_per_node : int;  (** per phase *)
  ops_per_invocation : int;
  read_fraction : float;  (** probability an op is a read, in [0,1] *)
  sharing : sharing;
  seed : int;
}

val default : params

val sharing_of_string : string -> (sharing, string) result
(** ["private"], ["neighbour"], ["random"], ["hot:<blocks>"]. *)

val sharing_to_string : sharing -> string

val run : Lcm_cstar.Runtime.t -> params -> Bench_result.t
(** Deterministic in [params] and the runtime's schedule; the checksum is
    identical across memory systems. *)
