(** False-sharing demo (paper §7.4).

    [writers] processors repeatedly update disjoint words that share cache
    blocks (processor [p] owns word [p mod wpb] of every block).  Under an
    invalidation protocol each write must acquire the block exclusively, so
    blocks ping-pong; under LCM each processor gets a private copy and
    reconciliation merges the disjoint words — "each process can have its
    own copy of the block and compute without contending for access". *)

type params = {
  blocks : int;  (** shared blocks being falsely shared *)
  rounds : int;  (** update rounds per processor *)
}

val default : params

val run : Lcm_cstar.Runtime.t -> params -> Bench_result.t
(** The checksum sums the final words; identical across protocols. *)
