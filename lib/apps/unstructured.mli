(** The Unstructured benchmark (paper §6.3, Figure 3, Table 1).

    Relaxation over an irregular graph: each graph node's value moves
    toward the mean of its neighbours' values.  The paper builds a graph of
    256 nodes and 1024 edges, statically partitions it, runs 512
    iterations, and keeps an extra copy of the nodes for the baseline (all
    nodes are updated every iteration, so no separate copy phase is
    needed).  Because the edge structure is random, partitions share many
    cross-processor edges and both protocols communicate heavily — LCM wins
    by a modest 19–28%.

    The adjacency structure is immutable and lives in read-only shared
    memory (CSR layout); values are a double-buffered (baseline) or marked
    (LCM) aggregate. *)

type params = {
  nodes : int;
  edges : int;
  iters : int;
  seed : int;  (** graph construction seed *)
  work_per_node : int;
}

val scatter : params -> int -> int
(** [scatter p u] is the storage slot of graph node [u]: values are laid
    out in construction order, which a post-hoc partition does not align to
    cache blocks — so neighbouring invocations write words of shared blocks
    (the irregular-structure behaviour the paper measures). *)

val default : params
(** 256 nodes / 1024 edges / 32 iterations. *)

val paper : params
(** 256 nodes / 1024 edges / 512 iterations. *)

val run : Lcm_cstar.Runtime.t -> params -> Bench_result.t

val reference : params -> float
(** Host-side sequential reference checksum. *)
