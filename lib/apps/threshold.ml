open Lcm_cstar
module Word = Lcm_mem.Word

type params = { n : int; iters : int; threshold : float; work_per_cell : int }

let default = { n = 64; iters = 10; threshold = 0.5; work_per_cell = 4 }

let paper = { n = 512; iters = 50; threshold = 0.5; work_per_cell = 4 }

(* Zero mesh with a few fixed hot sources sprinkled deterministically. *)
let source ~n i j =
  let k = (i * n) + j in
  i > 0 && j > 0 && i < n - 1 && j < n - 1 && k mod (n * n / 8) = (n / 2) + 1

let init_value ~n i j = if source ~n i j then 100.0 else 0.0

let f32 x = Word.to_float (Word.of_float x)

let new_value grid ~n i j =
  if i = 0 || j = 0 || i = n - 1 || j = n - 1 || source ~n i j then grid.(i).(j)
  else
    f32
      (0.25
      *. (grid.(i - 1).(j) +. grid.(i + 1).(j) +. grid.(i).(j - 1) +. grid.(i).(j + 1)))

let step_ref ~threshold ~n grid =
  Array.init n (fun i ->
      Array.init n (fun j ->
          let v = new_value grid ~n i j in
          if abs_float (v -. grid.(i).(j)) > threshold then v else grid.(i).(j)))

let checksum_of_matrix m =
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 m

let reference { n; iters; threshold; _ } =
  let grid = ref (Array.init n (fun i -> Array.init n (fun j -> init_value ~n i j))) in
  for _ = 1 to iters do
    grid := step_ref ~threshold ~n !grid
  done;
  checksum_of_matrix !grid

let run_counting rt { n; iters; threshold; work_per_cell } ~count =
  let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Agg.pokef a i j (init_value ~n i j)
    done
  done;
  let explicit_copy = Runtime.strategy rt = Runtime.Explicit_copy in
  let started = Runtime.elapsed rt in
  for iter = 0 to iters - 1 do
    Runtime.parallel_apply_2d rt ~iter ~rows:n ~cols:n (fun _ctx i j ->
        Lcm_tempest.Memeff.work work_per_cell;
        let old = Agg.getf a i j in
        let v =
          if i = 0 || j = 0 || i = n - 1 || j = n - 1 || source ~n i j then old
          else
            0.25
            *. (Agg.getf a (i - 1) j +. Agg.getf a (i + 1) j +. Agg.getf a i (j - 1)
               +. Agg.getf a i (j + 1))
        in
        let changed = abs_float (f32 v -. old) > threshold in
        if changed then begin
          (match count with Some c -> incr c | None -> ());
          Agg.setf a i j v
        end
        else if explicit_copy then
          (* values must still move from the old buffer to the new one *)
          Agg.setf a i j old);
    Agg.swap a
  done;
  let cycles = Runtime.elapsed rt - started in
  let checksum = checksum_of_matrix (Agg.to_matrix a) in
  Bench_result.make ~name:"threshold" ~cycles ~checksum ~stats:(Runtime.stats rt)

let run rt p = run_counting rt p ~count:None

let modified_fraction rt p =
  let c = ref 0 in
  ignore (run_counting rt p ~count:(Some c));
  float_of_int !c /. float_of_int (p.n * p.n * p.iters)
