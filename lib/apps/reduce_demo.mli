(** Global-reduction demo (paper §7.1).

    Sums a distributed array into a single variable three ways:

    - [`Rsm_reconcile]: every invocation accumulates into the shared
      location through an LCM private copy; RSM reconciliation combines the
      per-processor accumulators ("a compiler that detects the reduction
      could choose a reconciliation function for total's cache block");
    - [`Manual_partials]: the hand-written shared-memory version — each
      processor reduces its portion into a private variable, a sequential
      step sums the partials;
    - [`Serialized]: the naive version that updates the single shared
      location with ordinary coherent writes, making the variable's block
      ping-pong between processors (what a lock around [total] would
      cost). *)

type variant = [ `Rsm_reconcile | `Manual_partials | `Serialized ]

type params = { n : int; per_add_work : int }

val default : params

val run : Lcm_cstar.Runtime.t -> variant -> params -> Bench_result.t
(** The checksum is the final sum; all variants must agree.  Run
    [`Rsm_reconcile] on an LCM-policy runtime with [Lcm_directives], and
    the two baselines on a Stache-policy runtime with [Explicit_copy] (the
    serialized variant relies on coherent exclusive ownership for its
    atomic adds). *)

val variant_name : variant -> string

val expected_sum : params -> int
