(** The Adaptive benchmark (paper §6.2–6.3, Figures 1 & 3, Table 1).

    A stencil over a time-varying mesh: potentials relax over an [n × n]
    base grid, and cells whose value moves sharply are subdivided into
    dynamically-allocated quad-tree cells (up to [max_depth]), which relax
    against their parents.  The mesh structure changes while the program
    runs, so a compiler cannot tell which parts will be modified:

    - under a conventional memory system the program keeps two copies of
      the {e entire} mesh and copies every allocated cell between them
      before each iteration (the conservative baseline);
    - under LCM the memory system's copy-on-write marks copy only the data
      actually modified.

    Each cell occupies exactly one cache block (value, four child links,
    depth, padding).  New cells are allocated from per-node arena slices by
    the invocation that subdivides, so the tree's layout — and therefore
    its communication pattern — follows the schedule, as in a real dynamic
    application. *)

type params = {
  n : int;  (** base mesh edge *)
  iters : int;
  max_depth : int;  (** maximum quad-tree depth below the base grid *)
  subdiv_threshold : float;  (** |Δvalue| that triggers subdivision *)
  arena_per_node : int;  (** spare cells available to each node *)
  work_per_cell : int;
}

val default : params
(** 32×32, 10 iterations, depth ≤ 3. *)

val paper : params
(** 64×64, 100 iterations, depth ≤ 4. *)

val run : Lcm_cstar.Runtime.t -> params -> Bench_result.t
(** The result's checksum sums the values of every allocated cell. *)

val reference : params -> float
(** Host-side sequential reference checksum (same arithmetic, same
    subdivision rule). *)

val cells_allocated : Lcm_cstar.Runtime.t -> params -> int
(** Total cells (base + subdivided) after a run — diagnostic. *)

val refinement_map : Lcm_cstar.Runtime.t -> params -> string
(** Run the benchmark and render the final mesh as ASCII art — one
    character per base cell giving its quad-tree depth ([.] = no
    subdivision), the picture the paper's Figure 1 shows: refinement
    clusters where the potential gradient is steep. *)
