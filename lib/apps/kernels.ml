open Lcm_cstar
module K = Kernel

let four_point_average agg =
  K.Mul
    ( K.Const 0.25,
      K.Add
        ( K.Add
            (K.Add (K.Read (agg, K.Off (-1), K.Self), K.Read (agg, K.Off 1, K.Self)),
              K.Read (agg, K.Self, K.Off (-1)) ),
          K.Read (agg, K.Self, K.Off 1) ) )

let stencil =
  {
    K.name = "stencil";
    body =
      [
        K.Work 4;
        K.If
          ( K.Interior,
            [ K.Assign ("A", K.Self, K.Self, four_point_average "A") ],
            [ K.Assign ("A", K.Self, K.Self, K.Read ("A", K.Self, K.Self)) ] );
      ];
  }

let threshold ~omega =
  {
    K.name = "threshold";
    body =
      [
        K.Work 4;
        K.If
          ( K.And
              ( K.Interior,
                K.FCmp
                  ( K.Gt,
                    K.Abs
                      (K.Sub (four_point_average "A", K.Read ("A", K.Self, K.Self))),
                    K.Const omega ) ),
            [ K.Assign ("A", K.Self, K.Self, four_point_average "A") ],
            [] );
      ];
  }

let sor_half ~colour ~omega =
  {
    K.name = Printf.sprintf "sor_half_%d" colour;
    body =
      [
        K.If
          ( K.And
              ( K.Interior,
                K.ICmp (K.Eq, K.IMod (K.IAdd (K.I, K.J), 2), K.IConst colour) ),
            [
              K.Work 4;
              K.Assign
                ( "A",
                  K.Self,
                  K.Self,
                  K.Add
                    ( K.Mul (K.Const (1.0 -. omega), K.Read ("A", K.Self, K.Self)),
                      K.Mul (K.Const omega, four_point_average "A") ) );
            ],
            [] );
      ];
  }

let run_stencil rt ~n ~iters ~init =
  let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Agg.pokef a i j (init i j)
    done
  done;
  let apply = K.compile rt stencil { K.aggs = [ ("A", a) ]; reducers = [] } ~over:"A" in
  for iter = 0 to iters - 1 do
    apply ~iter ()
  done;
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      sum := !sum +. Agg.peekf a i j
    done
  done;
  !sum

let run_sor rt ~n ~iters ~omega ~init =
  let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Agg.pokef a i j (init i j)
    done
  done;
  let red = K.compile rt (sor_half ~colour:0 ~omega) { K.aggs = [ ("A", a) ]; reducers = [] } ~over:"A" in
  let black = K.compile rt (sor_half ~colour:1 ~omega) { K.aggs = [ ("A", a) ]; reducers = [] } ~over:"A" in
  for iter = 0 to iters - 1 do
    red ~iter:(2 * iter) ();
    black ~iter:((2 * iter) + 1) ()
  done;
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      sum := !sum +. Agg.peekf a i j
    done
  done;
  !sum
