(** Red-black successive over-relaxation — a workload where the compiler
    can omit every directive.

    Each half-iteration updates only one colour of a checkerboard while
    reading the other, so no invocation ever reads a location the phase
    writes: word-level analysis finds no conflicts, the compiler emits
    {e plain stores} (no [mark_modification], no [flush_copies], no double
    buffering — in-place update is semantically correct for red-black).

    What remains is pure memory-system behaviour on the blocks that
    straddle partition boundaries (pick [n] not divisible by the block
    size so rows wrap mid-block): under Stache the falsely-shared blocks
    ping-pong between writers; under LCM the unannotated writes fault into
    implicit marks and reconciliation merges the disjoint words — the
    paper's §7.4 mechanism arising in a real algorithm, with the run-time
    system backstopping the compiler's "expected case" code. *)

type params = {
  n : int;  (** mesh edge; choose n mod words_per_block <> 0 *)
  iters : int;  (** full iterations (two half-sweeps each) *)
  omega : float;  (** over-relaxation factor, in (0, 2) *)
  work_per_cell : int;
}

val default : params

val run : Lcm_cstar.Runtime.t -> params -> Bench_result.t

val reference : params -> float
(** Host-side sequential reference checksum. *)
