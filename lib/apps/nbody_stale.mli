(** Stale-data demo (paper §7.5).

    A toy 1-D N-body-style relaxation in which every body's update reads
    {e all} bodies ("contributions from distant elements are less
    significant than those of closer elements").  Two modes:

    - [`Fresh]: every iteration re-fetches remote bodies after
      reconciliation invalidates them — the conventional coherent
      behaviour;
    - [`Stale refresh_every]: each node pins its read-only copies of
      remote blocks so they survive reconciliation, and refreshes them only
      every [refresh_every] iterations — trading bounded staleness for far
      less communication.

    Stale runs compute slightly different (but converging) values; the
    harness reports the time saved alongside the result drift. *)

type mode = [ `Fresh | `Stale of int ]

type params = { bodies : int; iters : int; work_per_body : int }

val default : params

val run : Lcm_cstar.Runtime.t -> mode -> params -> Bench_result.t
(** Requires an LCM-policy runtime with the [Lcm_directives] strategy. *)

val mode_name : mode -> string
