(** The Stencil benchmark (paper §6.1, Figure 2).

    A four-point stencil over a fixed [n × n] single-precision mesh: every
    invocation reads its four neighbours and writes its own value, the
    canonical C\*\* parallel function.  The paper ran 50 iterations on a
    1024×1024 mesh on 32 processors, in two scheduling variants:

    - {e Stencil-stat}: the mesh is partitioned once ([Schedule.Static]) —
      the case a compiler can analyse, where Stache keeps chunk interiors
      resident and wins;
    - {e Stencil-dyn}: the mesh is re-partitioned every iteration
      ([Schedule.Dynamic_*]) — the case where LCM-mcc matches or beats
      Stache.

    Under the explicit-copy strategy the aggregate is double-buffered and
    swapped per iteration (the pointer-swap code of §6.1); under LCM every
    write is marked and reconciliation merges the new mesh. *)

type params = {
  n : int;  (** mesh edge length *)
  iters : int;
  work_per_cell : int;  (** extra compute cycles charged per invocation *)
}

val default : params
(** 64×64, 10 iterations — quick-run scale. *)

val paper : params
(** 1024×1024, 50 iterations — the paper's configuration. *)

val run : Lcm_cstar.Runtime.t -> params -> Bench_result.t
(** Build, initialise, iterate and fingerprint the mesh.  The result's
    [cycles] covers the iteration loop only (initialisation excluded). *)

val reference : params -> float
(** Checksum of a host-side sequential reference implementation (float32
    arithmetic), for validating simulated runs. *)
