open Lcm_cstar
module Gmem = Lcm_mem.Gmem
module Memeff = Lcm_tempest.Memeff
module Reduction = Lcm_core.Reduction

type variant = [ `Rsm_reconcile | `Manual_partials | `Serialized ]

type params = { n : int; per_add_work : int }

let default = { n = 4096; per_add_work = 2 }

let variant_name = function
  | `Rsm_reconcile -> "rsm-reconcile"
  | `Manual_partials -> "manual-partials"
  | `Serialized -> "serialized"

let element i = ((i * 7) mod 31) + 1

let expected_sum { n; _ } =
  let rec go acc i = if i = n then acc else go (acc + element i) (i + 1) in
  go 0 0

let run rt variant { n; per_add_work } =
  let a = Runtime.alloc1d rt ~n ~dist:Gmem.Chunked in
  for i = 0 to n - 1 do
    Agg.poke a 0 i (element i)
  done;
  let proto = Runtime.proto rt in
  let gmem = Lcm_tempest.Machine.gmem (Runtime.machine rt) in
  let wpb = Gmem.words_per_block gmem in
  let started = Runtime.elapsed rt in
  let total =
    match variant with
    | `Rsm_reconcile ->
      let r = Runtime.reducer rt ~op:Reduction.int_sum ~init:0 in
      (* no inter-invocation flush: nothing reads the marked accumulator,
         so per-node contributions batch until reconciliation *)
      Runtime.parallel_apply rt ~reducers:[ r ] ~flush_between:false ~n
        (fun ctx ->
          Memeff.work per_add_work;
          Reducer.add ctx r (Agg.get1 a ctx.Ctx.index));
      Reducer.read r
    | `Manual_partials ->
      (* force the hand-coded path regardless of the runtime's strategy *)
      let r =
        Reducer.create proto ~strategy:Agg.Double_buffered ~op:Reduction.int_sum
          ~init:0
      in
      Runtime.parallel_apply rt ~n (fun ctx ->
          Memeff.work per_add_work;
          Reducer.add ctx r (Agg.get1 a ctx.Ctx.index));
      Runtime.sequential rt (fun () -> Reducer.finalize r);
      Reducer.read r
    | `Serialized ->
      let var = Gmem.alloc gmem ~dist:(Gmem.On 0) ~nwords:wpb in
      Lcm_core.Proto.poke proto var 0;
      Runtime.parallel_apply rt ~n (fun ctx ->
          Memeff.work per_add_work;
          (* atomic coherent read-modify-write of the shared total: the
             block ping-pongs between all processors *)
          let v = Agg.get1 a ctx.Ctx.index in
          ignore (Memeff.rmw var (fun old -> old + v)));
      Lcm_core.Proto.peek proto var
  in
  let cycles = Runtime.elapsed rt - started in
  Bench_result.make
    ~name:("reduce-" ^ variant_name variant)
    ~cycles ~checksum:(float_of_int total) ~stats:(Runtime.stats rt)
