(** The Threshold benchmark (paper §6.3, Figure 3, Table 1).

    A stencil over a structured [n × n] mesh that only {e updates} a point
    when its new value differs from the old by more than a threshold.  The
    mesh starts at zero except for a few fixed sources, so very few cells
    (the paper reports 2.1%) change per iteration.

    The strategies differ exactly as in the paper:
    - explicit copy: every invocation writes its cell into the new mesh —
      updated or not — because values must move from the old buffer to the
      new one ("the program itself copies values that are not updated");
    - LCM: an invocation writes only when the cell actually changes, so the
      memory system copies only modified blocks. *)

type params = {
  n : int;
  iters : int;
  threshold : float;  (** relative change that triggers an update *)
  work_per_cell : int;
}

val default : params
(** 64×64, 10 iterations. *)

val paper : params
(** 512×512, 50 iterations. *)

val run : Lcm_cstar.Runtime.t -> params -> Bench_result.t

val reference : params -> float
(** Host-side sequential reference checksum. *)

val modified_fraction : Lcm_cstar.Runtime.t -> params -> float
(** Fraction of cells updated across the run (diagnostic; re-runs the
    benchmark counting updates). *)
