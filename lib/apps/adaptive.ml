open Lcm_cstar
module Word = Lcm_mem.Word

type params = {
  n : int;
  iters : int;
  max_depth : int;
  subdiv_threshold : float;
  arena_per_node : int;
  work_per_cell : int;
}

let default =
  {
    n = 32;
    iters = 10;
    max_depth = 3;
    subdiv_threshold = 2.0;
    arena_per_node = 2048;
    work_per_cell = 6;
  }

let paper =
  {
    n = 64;
    iters = 100;
    max_depth = 4;
    subdiv_threshold = 2.0;
    arena_per_node = 16384;
    work_per_cell = 6;
  }

(* Cell layout: one cache block per cell. *)
let f_value = 0
let f_child = 1 (* .. 4: child index + 1, 0 = none *)
let f_depth = 5

let f32 x = Word.to_float (Word.of_float x)

(* Hot left edge plus a point charge off-centre: steep gradients appear
   near the charge, driving subdivision there ("computes electric
   potentials in a box"). *)
let init_value ~n i j =
  if j = 0 then 100.0
  else if i = (2 * n / 3) && j = n / 3 then 200.0
  else 0.0

let is_source ~n i j = i = (2 * n / 3) && j = n / 3

let base_new_value ~n get i j =
  if i = 0 || j = 0 || i = n - 1 || j = n - 1 || is_source ~n i j then get i j
  else 0.25 *. (get (i - 1) j +. get (i + 1) j +. get i (j - 1) +. get i (j + 1))

(* ------------------------------------------------------------------ *)
(* Host reference                                                      *)
(* ------------------------------------------------------------------ *)

type ref_cell = {
  mutable value : float;
  mutable children : ref_cell array;  (* empty or length 4 *)
  depth : int;
}

let reference { n; iters; max_depth; subdiv_threshold; _ } =
  let grid =
    Array.init n (fun i ->
        Array.init n (fun j -> { value = init_value ~n i j; children = [||]; depth = 0 }))
  in
  let rec relax_children cell parent_new =
    Array.iter
      (fun child ->
        let old = child.value in
        let nv = f32 (0.5 *. (parent_new +. old)) in
        child.value <- nv;
        relax_children child nv;
        if
          Array.length child.children = 0
          && child.depth < max_depth
          && abs_float (nv -. old) > subdiv_threshold
        then
          child.children <-
            Array.init 4 (fun _ ->
                { value = nv; children = [||]; depth = child.depth + 1 }))
      cell.children
  in
  for _ = 1 to iters do
    let old = Array.map (Array.map (fun c -> c.value)) grid in
    let get i j = old.(i).(j) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let cell = grid.(i).(j) in
        let prev = cell.value in
        let nv = f32 (base_new_value ~n get i j) in
        cell.value <- nv;
        relax_children cell nv;
        if
          Array.length cell.children = 0
          && cell.depth < max_depth
          && abs_float (nv -. prev) > subdiv_threshold
        then
          cell.children <-
            Array.init 4 (fun _ -> { value = nv; children = [||]; depth = 1 })
      done
    done
  done;
  let rec sum cell =
    cell.value +. Array.fold_left (fun acc c -> acc +. sum c) 0.0 cell.children
  in
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc c -> acc +. sum c) acc row)
    0.0 grid

(* ------------------------------------------------------------------ *)
(* Simulated implementation                                            *)
(* ------------------------------------------------------------------ *)

type state = {
  base_cells : Agg.t;  (* n*n × 8 words, chunked row bands *)
  arena : Agg.t;  (* nnodes*arena_per_node × 8 words; slice per node *)
  arena_per_node : int;
  used : int array;  (* per-node arena cells in use (host bookkeeping) *)
  mutable allocated : int;
  base : int;  (* n*n *)
}

(* Cell ids: [0, base) are base-grid cells; [base, ...) index the arena. *)
let agg_of st c = if c < st.base then (st.base_cells, c) else (st.arena, c - st.base)

let cget st c f =
  let agg, row = agg_of st c in
  Agg.get agg row f

let cset st c f v =
  let agg, row = agg_of st c in
  Agg.set agg row f v

let cgetf st c f =
  let agg, row = agg_of st c in
  Agg.getf agg row f

let csetf st c f v =
  let agg, row = agg_of st c in
  Agg.setf agg row f v

let build rt { n; arena_per_node; _ } =
  let mach = Runtime.machine rt in
  let nnodes = Lcm_tempest.Machine.nnodes mach in
  let base = n * n in
  (* Two chunked regions: the base grid splits into row bands across all
     nodes; the arena gives each node a contiguous slice of spare cells so
     an invocation allocates from memory homed where it runs. *)
  let base_cells = Runtime.alloc2d rt ~rows:base ~cols:8 ~dist:Lcm_mem.Gmem.Chunked in
  let arena =
    Runtime.alloc2d rt ~rows:(nnodes * arena_per_node) ~cols:8
      ~dist:Lcm_mem.Gmem.Chunked
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let c = (i * n) + j in
      Agg.pokef base_cells c f_value (init_value ~n i j);
      Agg.poke base_cells c f_depth 0
    done
  done;
  {
    base_cells;
    arena;
    arena_per_node;
    used = Array.make nnodes 0;
    allocated = base;
    base;
  }

(* Allocate 4 sibling cells from the invoking node's arena slice; returns
   the first cell id, or None when the slice is exhausted. *)
let alloc4 st nid =
  if st.used.(nid) + 4 <= st.arena_per_node then begin
    let row = (nid * st.arena_per_node) + st.used.(nid) in
    st.used.(nid) <- st.used.(nid) + 4;
    st.allocated <- st.allocated + 4;
    Some (st.base + row)
  end
  else None

let subdivide st ~node ~parent ~depth ~value =
  match alloc4 st node with
  | None -> ()
  | Some c0 ->
    for k = 0 to 3 do
      let c = c0 + k in
      csetf st c f_value value;
      cset st c f_depth (depth + 1);
      for f = f_child to f_child + 3 do
        cset st c f 0
      done;
      cset st parent (f_child + k) (c + 1)
    done

(* The conservative baseline's copy phase: every allocated cell's block is
   copied from the old mesh to the new one before the iteration relaxes.
   Partition p copies its own base band and its own arena slice, and the
   copy loop is an ordinary statically-partitioned loop regardless of how
   the parallel function itself is scheduled.  The extra [work] models the
   traversal bookkeeping of walking a dynamic structure to copy it. *)
let copy_phase rt st ~iter =
  let nnodes = Lcm_tempest.Machine.nnodes (Runtime.machine rt) in
  let bands = Lcm_cstar.Schedule.chunks ~n:st.base ~nchunks:nnodes in
  Runtime.parallel_apply rt ~iter ~schedule:Lcm_cstar.Schedule.Static ~n:nnodes
    (fun ctx ->
      let p = ctx.Ctx.index in
      (* The program has no global list of allocated cells: it must walk
         the quad-trees, chasing child pointers through shared memory. *)
      let rec copy_tree c =
        Lcm_tempest.Memeff.work 4;
        for f = 0 to 7 do
          cset st c f (cget st c f)
        done;
        for k = 0 to 3 do
          let child = cget st c (f_child + k) in
          if child <> 0 then copy_tree (child - 1)
        done
      in
      let lo, hi = bands.(p) in
      for c = lo to hi - 1 do
        copy_tree c
      done)

let run_internal rt ({ n; iters; max_depth; subdiv_threshold; work_per_cell; _ } as p) =
  let st = build rt p in
  let explicit_copy = Runtime.strategy rt = Runtime.Explicit_copy in
  let get_child c k = cget st c (f_child + k) in
  let rec relax_children ~node c parent_new =
    for k = 0 to 3 do
      let child = get_child c k in
      if child <> 0 then begin
        let child = child - 1 in
        Lcm_tempest.Memeff.work work_per_cell;
        let old = cgetf st child f_value in
        let nv = f32 (0.5 *. (parent_new +. old)) in
        csetf st child f_value nv;
        relax_children ~node child nv;
        if
          get_child child 0 = 0
          && cget st child f_depth < max_depth
          && abs_float (nv -. old) > subdiv_threshold
        then
          subdivide st ~node ~parent:child ~depth:(cget st child f_depth)
            ~value:nv
      end
    done
  in
  let started = Runtime.elapsed rt in
  for iter = 0 to iters - 1 do
    (* Baseline: copy the whole mesh (values and tree structure) into the
       new buffer first; the relax phase then overwrites the parts that
       change.  LCM needs no copy — marks do it on demand. *)
    if explicit_copy then copy_phase rt st ~iter;
    let value_get i j = cgetf st ((i * n) + j) f_value in
    Runtime.parallel_apply_2d rt ~iter ~rows:n ~cols:n (fun ctx i j ->
        Lcm_tempest.Memeff.work work_per_cell;
        let c = (i * n) + j in
        let old = cgetf st c f_value in
        let nv = f32 (base_new_value ~n value_get i j) in
        csetf st c f_value nv;
        relax_children ~node:ctx.Ctx.node c nv;
        if
          get_child c 0 = 0
          && cget st c f_depth < max_depth
          && abs_float (nv -. old) > subdiv_threshold
        then subdivide st ~node:ctx.Ctx.node ~parent:c ~depth:0 ~value:nv);
    Agg.swap st.base_cells;
    Agg.swap st.arena
  done;
  let cycles = Runtime.elapsed rt - started in
  let checksum = ref 0.0 in
  for c = 0 to st.base - 1 do
    checksum := !checksum +. Agg.peekf st.base_cells c f_value
  done;
  Array.iteri
    (fun nid used ->
      for k = 0 to used - 1 do
        checksum :=
          !checksum +. Agg.peekf st.arena ((nid * st.arena_per_node) + k) f_value
      done)
    st.used;
  ( Bench_result.make ~name:"adaptive" ~cycles ~checksum:!checksum
      ~stats:(Runtime.stats rt),
    st )

let run rt p = fst (run_internal rt p)

let cells_allocated rt p = (snd (run_internal rt p)).allocated

let refinement_map rt ({ n; _ } as p) =
  let _, st = run_internal rt p in
  let peek c f =
    let agg, row = agg_of st c in
    Agg.peek agg row f
  in
  let rec depth_of c =
    let deepest = ref 0 in
    for k = 0 to 3 do
      let child = peek c (f_child + k) in
      if child <> 0 then deepest := max !deepest (1 + depth_of (child - 1))
    done;
    !deepest
  in
  let buf = Buffer.create (n * (n + 1)) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = depth_of ((i * n) + j) in
      Buffer.add_char buf
        (if d = 0 then '.' else Char.chr (Char.code '0' + min 9 d))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
