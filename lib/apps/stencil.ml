open Lcm_cstar
module Word = Lcm_mem.Word

type params = { n : int; iters : int; work_per_cell : int }

let default = { n = 64; iters = 10; work_per_cell = 4 }

let paper = { n = 1024; iters = 50; work_per_cell = 4 }

(* Deterministic initial condition: a hot top edge and a cold interior with
   a few point sources, so the relaxation has visible structure. *)
let init_value ~n i j =
  if i = 0 then 100.0
  else if i = n - 1 || j = 0 || j = n - 1 then 0.0
  else if (i * 31) + (j * 17) mod 257 = 0 then 50.0
  else 0.0

(* One stencil step into a fresh matrix (host reference).  Mirrors the
   simulated arithmetic exactly: loads return float32 values, the average is
   computed in double precision, and the store rounds to float32. *)
let step_ref grid =
  let n = Array.length grid in
  let f32 x = Word.to_float (Word.of_float x) in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = 0 || j = 0 || i = n - 1 || j = n - 1 then grid.(i).(j)
          else
            f32
              (0.25
              *. (grid.(i - 1).(j) +. grid.(i + 1).(j) +. grid.(i).(j - 1)
                 +. grid.(i).(j + 1)))))

let checksum_of_matrix m =
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 m

let reference { n; iters; _ } =
  let grid = ref (Array.init n (fun i -> Array.init n (fun j -> init_value ~n i j))) in
  for _ = 1 to iters do
    grid := step_ref !grid
  done;
  checksum_of_matrix !grid

let run rt { n; iters; work_per_cell } =
  let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Agg.pokef a i j (init_value ~n i j)
    done
  done;
  let started = Runtime.elapsed rt in
  for iter = 0 to iters - 1 do
    Runtime.parallel_apply_2d rt ~iter ~rows:n ~cols:n (fun _ctx i j ->
        Lcm_tempest.Memeff.work work_per_cell;
        if i = 0 || j = 0 || i = n - 1 || j = n - 1 then
          Agg.setf a i j (Agg.getf a i j)
        else
          Agg.setf a i j
            (0.25
            *. (Agg.getf a (i - 1) j +. Agg.getf a (i + 1) j +. Agg.getf a i (j - 1)
               +. Agg.getf a i (j + 1))));
    Agg.swap a
  done;
  let cycles = Runtime.elapsed rt - started in
  let checksum = checksum_of_matrix (Agg.to_matrix a) in
  Bench_result.make ~name:"stencil" ~cycles ~checksum ~stats:(Runtime.stats rt)
