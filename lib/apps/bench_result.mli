(** Uniform result record for benchmark runs.

    [checksum] fingerprints the final data so the harness can assert that
    every protocol/strategy combination computed the same answer —
    the differential test backing every performance comparison. *)

type t = {
  name : string;  (** benchmark plus variant, e.g. ["stencil-stat"] *)
  cycles : int;  (** simulated execution time of the measured loop *)
  checksum : float;  (** fingerprint of the final data *)
  faults : int;  (** access faults (the paper's "cache misses") *)
  remote_fetches : int;  (** block fetches that crossed the network *)
  clean_copies : int;  (** LCM clean copies created (0 for Stache) *)
  messages : int;  (** total network messages *)
  counters : (string * int) list;  (** every counter of the run, sorted *)
  gauges : (string * int) list;
      (** high-water-mark gauges (e.g. ["lcm.peak_clean_copies"]), sorted *)
  samples : (string * Lcm_util.Stats.summary) list;
      (** observation series (e.g. ["cstar.phase_cycles"]), summarized,
          sorted *)
}

val message_breakdown : t -> (string * int) list
(** Per-message-class counts (the ["msg.*"] counters, prefix stripped),
    sorted by descending count. *)

val make :
  name:string -> cycles:int -> checksum:float -> stats:Lcm_util.Stats.t -> t
(** Extract the standard counters from a run's statistics. *)

val close : ?tol:float -> t -> t -> bool
(** [close a b] — checksums agree within relative tolerance [tol]
    (default 1e-4; float32 arithmetic orders differ between protocols only
    through reduction reassociation, which the benchmarks avoid). *)

val pp : Format.formatter -> t -> unit
