type t = {
  name : string;
  cycles : int;
  checksum : float;
  faults : int;
  remote_fetches : int;
  clean_copies : int;
  messages : int;
  counters : (string * int) list;
  gauges : (string * int) list;
  samples : (string * Lcm_util.Stats.summary) list;
}

let make ~name ~cycles ~checksum ~stats =
  let get = Lcm_util.Stats.get stats in
  {
    name;
    cycles;
    checksum;
    faults = get "fault.read" + get "fault.write";
    remote_fetches = get "proto.fetch_remote";
    (* the paper's Table-1 notion counts every clean-copy (re)creation,
       including mcc's per-re-mark snapshot refreshes *)
    clean_copies = get "lcm.clean_copies" + get "lcm.snapshot_refreshes";
    messages = get "net.msgs";
    counters = Lcm_util.Stats.counters stats;
    gauges = Lcm_util.Stats.gauges stats;
    samples = Lcm_util.Stats.samples stats;
  }

let message_breakdown t =
  List.filter_map
    (fun (name, v) ->
      if String.length name > 4 && String.sub name 0 4 = "msg." then
        Some (String.sub name 4 (String.length name - 4), v)
      else None)
    t.counters
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let close ?(tol = 1e-4) a b =
  let denom = max 1.0 (max (abs_float a.checksum) (abs_float b.checksum)) in
  abs_float (a.checksum -. b.checksum) /. denom <= tol

let pp ppf t =
  Format.fprintf ppf
    "%s: %d cycles, checksum %.6g, %d faults, %d remote fetches, %d clean \
     copies, %d msgs"
    t.name t.cycles t.checksum t.faults t.remote_fetches t.clean_copies
    t.messages
