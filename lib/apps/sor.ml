open Lcm_cstar
module Word = Lcm_mem.Word
module Memeff = Lcm_tempest.Memeff

type params = { n : int; iters : int; omega : float; work_per_cell : int }

let default = { n = 50; iters = 8; omega = 1.5; work_per_cell = 4 }

let init_value ~n i j =
  if i = 0 then 100.0 else if i = n - 1 || j = 0 || j = n - 1 then 0.0 else 0.0

let f32 x = Word.to_float (Word.of_float x)

let relaxed ~omega v neighbours =
  f32 (((1.0 -. omega) *. v) +. (omega /. 4.0 *. neighbours))

let reference { n; iters; omega; _ } =
  let grid = Array.init n (fun i -> Array.init n (fun j -> init_value ~n i j)) in
  let half colour =
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        if (i + j) land 1 = colour then
          grid.(i).(j) <-
            relaxed ~omega grid.(i).(j)
              (grid.(i - 1).(j) +. grid.(i + 1).(j) +. grid.(i).(j - 1)
             +. grid.(i).(j + 1))
      done
    done
  in
  for _ = 1 to iters do
    half 0;
    half 1
  done;
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 grid

let run rt { n; iters; omega; work_per_cell } =
  (* a single-buffered mesh under every strategy: red-black updates are
     correct in place, so the "compiled" code has no copies at all *)
  let proto = Runtime.proto rt in
  let gmem = Lcm_tempest.Machine.gmem (Runtime.machine rt) in
  let base = Lcm_mem.Gmem.alloc gmem ~dist:Lcm_mem.Gmem.Chunked ~nwords:(n * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Lcm_core.Proto.poke proto (base + (i * n) + j) (Word.of_float (init_value ~n i j))
    done
  done;
  let load i j = Word.to_float (Memeff.load (base + (i * n) + j)) in
  let started = Runtime.elapsed rt in
  for iter = 0 to iters - 1 do
    List.iter
      (fun colour ->
        (* no marks, no flushes: analysis proved the phase conflict-free *)
        Runtime.parallel_apply_2d rt
          ~iter:((2 * iter) + colour)
          ~flush_between:false ~rows:n ~cols:n
          (fun _ctx i j ->
            if i > 0 && j > 0 && i < n - 1 && j < n - 1 && (i + j) land 1 = colour
            then begin
              Memeff.work work_per_cell;
              let v =
                relaxed ~omega (load i j)
                  (load (i - 1) j +. load (i + 1) j +. load i (j - 1)
                 +. load i (j + 1))
              in
              Memeff.store (base + (i * n) + j) (Word.of_float v)
            end))
      [ 0; 1 ]
  done;
  let cycles = Runtime.elapsed rt - started in
  let checksum = ref 0.0 in
  for w = 0 to (n * n) - 1 do
    checksum := !checksum +. Word.to_float (Lcm_core.Proto.peek proto (base + w))
  done;
  Bench_result.make ~name:"sor" ~cycles ~checksum:!checksum
    ~stats:(Runtime.stats rt)
