(** The paper's analysable benchmarks, written in the miniature C\*\*
    kernel language.

    Stencil, Threshold and red-black SOR have static access patterns, so
    they can be expressed in the {!Lcm_cstar.Kernel} AST and compiled by
    the conflict analysis — the same programs the hand-written modules
    implement.  (Adaptive and Unstructured need dynamic data structures
    and stay hand-written, which is exactly the paper's point about
    analysability.)

    The test suite runs each kernel against its hand-written counterpart's
    reference; the harness uses them to sanity-check the compiler path on
    real workloads. *)

val stencil : Lcm_cstar.Kernel.t
(** Four-point stencil with copy-through borders (paper §6.1). *)

val threshold : omega:float -> Lcm_cstar.Kernel.t
(** Stencil that only updates on change > [omega] (the paper's Threshold,
    expressed with a guarded assignment; the explicit-copy compilation
    pre-copies because not every cell is surely written). *)

val sor_half : colour:int -> omega:float -> Lcm_cstar.Kernel.t
(** One red-black half-sweep: updates cells of [colour] in place reading
    the other colour; the analysis proves no marks are needed. *)

val run_stencil :
  Lcm_cstar.Runtime.t -> n:int -> iters:int -> init:(int -> int -> float) -> float
(** Compile and iterate {!stencil} over an [n × n] mesh initialised by
    [init]; returns the checksum (sum of all cells). *)

val run_sor :
  Lcm_cstar.Runtime.t ->
  n:int ->
  iters:int ->
  omega:float ->
  init:(int -> int -> float) ->
  float
(** Compile and iterate the two half-sweeps of {!sor_half}. *)
