(** Fine-grain access-control tags.

    Every node attaches one tag to each cache block it holds, exactly as
    Blizzard-E attaches ECC-based tags to memory blocks.  Loads require a
    readable tag, stores a writable one; a violation raises an access fault
    that is vectored to the user-level protocol handler registered on the
    node (the Tempest mechanism the whole paper builds on). *)

type t =
  | Invalid  (** no valid copy: any access faults *)
  | Read_only  (** loads hit; stores fault *)
  | Writable  (** loads and stores hit (exclusive, under Stache) *)
  | Lcm_modified
      (** an inconsistent, private writable copy created by
          [mark_modification]; stores additionally record per-word dirty
          bits for reconciliation *)

val readable : t -> bool

val writable : t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
