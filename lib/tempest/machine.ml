module Trace = Lcm_sim.Trace
module Stats = Lcm_util.Stats

type line = {
  mutable data : Lcm_mem.Block.t;
  mutable tag : Tag.t;
  mutable dirty : Lcm_util.Mask.t;
  mutable local_clean : Lcm_mem.Block.t option;
  mutable last_use : int;
  is_home_line : bool;
}

type node = {
  node_id : int;
  mutable node_clock : int;
  mutable handler_free : int;
  lines : (int, line) Hashtbl.t;
  mutable access_stamp : int;
  la_blocks : int array;
      (* small direct-mapped lookaside in front of [lines]: slot
         [b land la_mask] holds the block of the most recent successful
         lookup mapping there (-1 = empty) and [la_lines] its result.
         Memory accesses are highly repetitive over a handful of blocks
         (a stencil cell touches three), so most hits skip the hash. *)
  la_lines : line option array;
  lru : int Lcm_util.Heap.t option;
      (* lazy-deletion min-heap of (last_use stamp, block) for eviction:
         present iff the machine has a finite capacity.  Entries go stale
         when a line is re-touched or dropped; [evict_one] skips them.
         Stamps are unique per node, so the surviving minimum is exactly
         the line the old full-table scan would have picked. *)
  hw_cache : int array option;
      (* optional direct-mapped hardware cache above node memory: slot i
         holds the block number cached there (-1 = empty); a mismatch adds
         the hw-miss penalty to the access *)
  mutable node_machine : t option; (* back-pointer, set once at creation *)
  (* Preallocated effect-handler arms + the scratch slots they read.
     [Effect.Deep.match_with]'s [effc] must return [Some handler] per
     perform; building that pair fresh each time made the effect
     dispatch itself the simulator's biggest allocator.  Instead the
     effect's payload is parked in a scratch slot and a per-node arm —
     one [Some closure] for the node's whole lifetime — picks it up.
     Safe because the arm consumes its scratch synchronously, before any
     other effect on this domain can perform: the handler runs the arm
     immediately after [effc] returns it.  Built lazily on first spawn
     (the arms close over the machine, which outlives node creation). *)
  mutable sc_addr : int;
  mutable sc_val : int;
  mutable sc_rmw : int -> int;
  mutable sc_units : int;
  mutable sc_dir : Memeff.dir;
  mutable arm_load : ((int, unit) Effect.Deep.continuation -> unit) option;
  mutable arm_store : ((unit, unit) Effect.Deep.continuation -> unit) option;
  mutable arm_rmw : ((int, unit) Effect.Deep.continuation -> unit) option;
  mutable arm_work : ((unit, unit) Effect.Deep.continuation -> unit) option;
  mutable arm_yield : ((unit, unit) Effect.Deep.continuation -> unit) option;
  mutable arm_directive :
    ((unit, unit) Effect.Deep.continuation -> unit) option;
}

and t = {
  m_engine : Lcm_sim.Engine.t;
  m_network : Lcm_net.Network.t;
  m_gmem : Lcm_mem.Gmem.t;
  m_costs : Lcm_sim.Costs.t;
  m_stats : Lcm_util.Stats.t;
  m_rng : Lcm_util.Rng.t;
  m_nodes : node array;
  masters : (int, Lcm_mem.Block.t) Hashtbl.t;
  capacity_blocks : int option;
  (* pre-resolved handles for every counter the access path can touch *)
  h_hw_misses : Stats.Handle.counter;
  h_evictions : Stats.Handle.counter;
  h_fault_read : Stats.Handle.counter;
  h_fault_write : Stats.Handle.counter;
  h_live_clean : Stats.Handle.counter;
  h_handler_runs : Stats.Handle.counter;
  mutable home_backing : bool;
      (* install the home node's master-aliasing backing line on first
         master creation (directory protocols); bus protocols disable
         this so home nodes take the bus like everyone else *)
  mutable m_epoch : int;
  mutable m_phase : [ `Sequential | `Parallel ];
  mutable m_active_fibers : int;
  mutable read_fault : node -> addr:int -> retry:(unit -> unit) -> unit;
  mutable write_fault : node -> addr:int -> retry:(unit -> unit) -> unit;
  mutable on_directive : node -> Memeff.dir -> retry:(unit -> unit) -> unit;
  mutable on_evict : node -> int -> line -> unit;
  mutable on_read_hit : (node -> int -> line -> unit) option;
  mutable m_yield_h :
    (unit, unit) Effect.Deep.continuation -> int -> int -> unit;
      (* preallocated engine-event handler for yield resumption:
         payload = the fiber's continuation, i1 = resume time, i2 = node
         id (see Engine.schedule_call); installed right after creation *)
  mutable trace : Trace.t option;
  m_pdes : Lcm_sim.Pdes.t option;
      (* conservative parallel driver, attached when the machine was
         created with (resolved) jobs > 1; None = plain sequential engine *)
  m_msg_pool : msg_cell Lcm_util.Pool.t;
      (* free-list of in-flight protocol-message cells (see [send_call]) *)
}

(* One in-flight [send_call] message: the receive-side handler and its
   payload (an existential pair, same discipline as
   [Engine.schedule_call]) plus two integer riders.  Cells come from
   [m_msg_pool] and are released at delivery, so steady-state protocol
   traffic allocates no per-message record.  [mc_t] is the machine,
   untyped only to give the pool's [make] a value before any machine
   exists. *)
and msg_cell = {
  mutable mc_t : Obj.t;  (* the machine (t) *)
  mutable mc_h : Obj.t;  (* 'a -> node -> int -> int -> int -> unit *)
  mutable mc_p : Obj.t;  (* the 'a payload *)
  mutable mc_dst : int;
  mutable mc_b : int;
  mutable mc_x : int;
}

let no_handler _ = failwith "Machine: no protocol handler registered"

(* The node whose fiber code is executing on this domain, for the Memeff
   fast-path hooks (see [init_arms]): set immediately before every
   [continue] (and before the initial body in [spawn]), cleared the
   moment the fiber suspends back into a handler arm or returns.  Fiber
   code is sequential between a resume and the next suspension, so the
   slot is never stale while anything that reads it can run.  Stored as
   [Obj.t] with a private sentinel so reads and writes never allocate an
   option block. *)
let no_cur = Obj.repr "Machine.cur_node: none"

let cur_node : Obj.t Domain.DLS.key = Domain.DLS.new_key (fun () -> no_cur)

let[@inline] set_cur (n : node) = Domain.DLS.set cur_node (Obj.repr n)

let[@inline] clear_cur () = Domain.DLS.set cur_node no_cur

let unit_obj = Obj.repr ()

let dead_msg_h _ _ _ _ _ =
  failwith "Machine: message cell used after release"

let make_msg_cell () =
  {
    mc_t = unit_obj;
    mc_h = Obj.repr dead_msg_h;
    mc_p = unit_obj;
    mc_dst = 0;
    mc_b = 0;
    mc_x = 0;
  }

let poison_msg_cell c =
  c.mc_t <- unit_obj;
  c.mc_h <- Obj.repr dead_msg_h;
  c.mc_p <- unit_obj

let la_slots = 64
let la_mask = la_slots - 1

let create ?(costs = Lcm_sim.Costs.default)
    ?(topology = Lcm_net.Topology.Fat_tree { arity = 4 }) ?(seed = 42)
    ?capacity_blocks ?hw_cache_blocks ?faults ?jobs ~nnodes ~words_per_block
    () =
  let jobs =
    Lcm_sim.Pdes.resolve_jobs
      (match jobs with Some j -> j | None -> Lcm_sim.Pdes.ambient_jobs ())
  in
  let engine = Lcm_sim.Engine.create () in
  let stats = Lcm_util.Stats.create () in
  let network =
    Lcm_net.Network.create ?faults ~engine ~costs ~stats ~topology ~nnodes ()
  in
  (* A lossy interconnect can livelock (drops outpacing retransmission);
     arm the engine's quiescence watchdog so that surfaces as a typed
     Stalled instead of an unbounded run. *)
  (match faults with
  | Some plan ->
    Lcm_sim.Engine.set_stall_limit engine (Some plan.Lcm_net.Faults.stall_limit)
  | None -> ());
  (* Shard the event queue by owning node when more than one job is asked
     for and the machine has nodes to spread: block partition (node n on
     shard n*shards/nnodes), lookahead from the network's minimum
     cross-node latency.  At jobs = 1 nothing is attached and the engine
     is byte-for-byte the sequential one. *)
  let shards = min jobs nnodes in
  let pdes =
    if shards > 1 then
      Some
        (Lcm_sim.Pdes.attach ~engine ~shards
           ~lookahead:(max 1 (Lcm_net.Network.min_cross_latency network))
           ~shard_of:(fun node ->
             if node < 0 || node >= nnodes then 0 else node * shards / nnodes)
           ())
    else None
  in
  let gmem = Lcm_mem.Gmem.create ~nnodes ~words_per_block in
  (match hw_cache_blocks with
  | Some n when n <= 0 ->
    invalid_arg "Machine.create: hw_cache_blocks must be positive"
  | Some _ | None -> ());
  let nodes =
    Array.init nnodes (fun i ->
        {
          node_id = i;
          node_clock = 0;
          handler_free = 0;
          lines = Hashtbl.create 512;
          access_stamp = 0;
          la_blocks = Array.make la_slots (-1);
          la_lines = Array.make la_slots None;
          lru =
            (match capacity_blocks with
            | Some _ -> Some (Lcm_util.Heap.create ())
            | None -> None);
          hw_cache = Option.map (fun n -> Array.make n (-1)) hw_cache_blocks;
          node_machine = None;
          sc_addr = 0;
          sc_val = 0;
          sc_rmw = (fun v -> v);
          sc_units = 0;
          sc_dir = Memeff.Flush_copies;
          arm_load = None;
          arm_store = None;
          arm_rmw = None;
          arm_work = None;
          arm_yield = None;
          arm_directive = None;
        })
  in
  let m =
    {
      m_engine = engine;
      m_network = network;
      m_gmem = gmem;
      m_costs = costs;
      m_stats = stats;
      m_rng = Lcm_util.Rng.create ~seed;
      m_nodes = nodes;
      masters = Hashtbl.create 4096;
      capacity_blocks;
      h_hw_misses = Stats.counter stats "cache.hw_misses";
      h_evictions = Stats.counter stats "cache.evictions";
      h_fault_read = Stats.counter stats "fault.read";
      h_fault_write = Stats.counter stats "fault.write";
      h_live_clean = Stats.counter stats "lcm.live_clean_copies";
      h_handler_runs = Stats.counter stats "proto.handler_runs";
      home_backing = true;
      m_epoch = 0;
      m_phase = `Sequential;
      m_active_fibers = 0;
      read_fault = (fun _ ~addr:_ ~retry:_ -> no_handler ());
      write_fault = (fun _ ~addr:_ ~retry:_ -> no_handler ());
      on_directive = (fun _ _ ~retry:_ -> no_handler ());
      on_evict = (fun _ _ _ -> no_handler ());
      on_read_hit = None;
      m_yield_h = (fun _ _ _ -> no_handler ());
      trace = None;
      m_pdes = pdes;
      m_msg_pool =
        Lcm_util.Pool.create ~poison:poison_msg_cell ~make:make_msg_cell ();
    }
  in
  Array.iter (fun n -> n.node_machine <- Some m) nodes;
  m.m_yield_h <-
    (fun k at nid ->
      let n = m.m_nodes.(nid) in
      n.node_clock <- max n.node_clock at;
      (* a fiber picking its compute back up is semantic progress for the
         stall watchdog — a yield-heavy phase must not read as a livelock *)
      Lcm_sim.Engine.notify_progress m.m_engine;
      set_cur n;
      Effect.Deep.continue k ());
  m

let engine t = t.m_engine
let pdes t = t.m_pdes
let network t = t.m_network
let gmem t = t.m_gmem
let costs t = t.m_costs
let stats t = t.m_stats
let rng t = t.m_rng
let nnodes t = Array.length t.m_nodes
let node t i = t.m_nodes.(i)
let nodes t = t.m_nodes

let epoch t = t.m_epoch
let incr_epoch t = t.m_epoch <- t.m_epoch + 1

let phase t = t.m_phase
let set_phase t p = t.m_phase <- p

let id n = n.node_id
let clock n = n.node_clock
let set_clock n c = n.node_clock <- c
let advance_clock n d = n.node_clock <- n.node_clock + d

let machine n =
  match n.node_machine with
  | Some m -> m
  | None -> assert false

let[@inline] find_line n b =
  let slot = b land la_mask in
  if Array.unsafe_get n.la_blocks slot = b then Array.unsafe_get n.la_lines slot
  else
    match Hashtbl.find_opt n.lines b with
    | Some _ as r ->
      Array.unsafe_set n.la_blocks slot b;
      Array.unsafe_set n.la_lines slot r;
      r
    | None -> None

let invalidate_lookaside n b =
  let slot = b land la_mask in
  if n.la_blocks.(slot) = b then begin
    n.la_blocks.(slot) <- -1;
    n.la_lines.(slot) <- None
  end

let touch n b line =
  n.access_stamp <- n.access_stamp + 1;
  line.last_use <- n.access_stamp;
  match n.lru with
  | None -> ()
  | Some h ->
    (* Home backing lines are never eviction candidates; keep them out of
       the heap entirely. *)
    if not line.is_home_line then begin
      Lcm_util.Heap.add h ~key:line.last_use b;
      (* Lazy deletion lets stale stamps pile up; rebuild from the live
         table when they dominate. *)
      if Lcm_util.Heap.length h > 64 + (8 * Hashtbl.length n.lines) then begin
        Lcm_util.Heap.clear h;
        Hashtbl.iter
          (fun b line ->
            if not line.is_home_line then
              Lcm_util.Heap.add h ~key:line.last_use b)
          n.lines
      end
    end

(* Direct-mapped hardware-cache check: charges the miss penalty and
   installs the block on a mismatch.  No-op when the machine has no
   hardware cache configured. *)
let[@inline] hw_access t n b =
  match n.hw_cache with
  | None -> ()
  | Some slots ->
    let slot = b mod Array.length slots in
    if slots.(slot) <> b then begin
      slots.(slot) <- b;
      n.node_clock <- n.node_clock + t.m_costs.Lcm_sim.Costs.hw_miss;
      Stats.Handle.incr t.h_hw_misses
    end

(* Track the number of live per-node clean copies (LCM-mcc snapshots) so
   the paper's §5.1 memory-usage discussion can be quantified; the gauge
   decrements whenever a line holding one disappears. *)
let note_clean_copy_gone t (line : line) =
  if line.local_clean <> None then Stats.Handle.add t.h_live_clean (-1)

let scan_victim n =
  (* Reference linear scan, used only when no LRU heap is maintained. *)
  let victim = ref None in
  Hashtbl.iter
    (fun b line ->
      if not line.is_home_line then
        match !victim with
        | Some (_, best) when best.last_use <= line.last_use -> ()
        | Some _ | None -> victim := Some (b, line))
    n.lines;
  !victim

let heap_victim n h =
  (* Pop stamps until one is live: present in the table, evictable, and
     still the line's current stamp.  Stamps are unique, so this is the
     same minimum the scan finds. *)
  let rec go () =
    match Lcm_util.Heap.pop h with
    | None -> None
    | Some (stamp, b) -> (
      match Hashtbl.find_opt n.lines b with
      | Some line when (not line.is_home_line) && line.last_use = stamp ->
        Some (b, line)
      | Some _ | None -> go ())
  in
  go ()

let evict_one t n =
  let victim =
    match n.lru with Some h -> heap_victim n h | None -> scan_victim n
  in
  match victim with
  | None -> () (* nothing evictable: over-capacity with home lines only *)
  | Some (b, line) ->
    Stats.Handle.incr t.h_evictions;
    t.on_evict n b line;
    note_clean_copy_gone t line;
    Hashtbl.remove n.lines b;
    invalidate_lookaside n b

let install_line n b ~data ~tag =
  let t = machine n in
  let is_home_line = Lcm_mem.Gmem.home_of_block t.m_gmem b = n.node_id in
  (match Hashtbl.find_opt n.lines b with
  | Some old -> note_clean_copy_gone t old
  | None -> (
    match t.capacity_blocks with
    | Some cap when (not is_home_line) && Hashtbl.length n.lines >= cap ->
      (* Home backing lines are the node's share of distributed memory,
         not cache fills: they materialise lazily (possibly outside the
         engine loop, e.g. from a debug peek) and must never displace a
         cached copy — an eviction writeback issued then would never be
         delivered. *)
      evict_one t n
    | Some _ | None -> ()));
  let line =
    {
      data;
      tag;
      dirty = Lcm_util.Mask.empty;
      local_clean = None;
      last_use = 0;
      is_home_line;
    }
  in
  touch n b line;
  Hashtbl.replace n.lines b line;
  let slot = b land la_mask in
  n.la_blocks.(slot) <- b;
  n.la_lines.(slot) <- Some line;
  line

let drop_line n b =
  (match Hashtbl.find_opt n.lines b with
  | Some line -> note_clean_copy_gone (machine n) line
  | None -> ());
  Hashtbl.remove n.lines b;
  invalidate_lookaside n b

let iter_lines n f = Hashtbl.iter f n.lines

let lines_snapshot n =
  Hashtbl.fold (fun b line acc -> (b, line) :: acc) n.lines []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let master t b =
  match Hashtbl.find t.masters b with
  | data -> data
  | exception Not_found ->
    (* Master copies materialise lazily, but only for real blocks: under
       snoop policies (no home backing) nothing else validates [b], so a
       corrupt block number in a message would otherwise mint a ghost
       master and corrupt the run silently instead of failing here. *)
    if not (Lcm_mem.Gmem.is_allocated t.m_gmem b) then
      failwith
        (Printf.sprintf
           "Machine.master: block %d is not an allocated block (%d blocks \
            allocated)"
           b
           (Lcm_mem.Gmem.allocated_words t.m_gmem
           / Lcm_mem.Gmem.words_per_block t.m_gmem));
    let data = Lcm_mem.Block.make ~words:(Lcm_mem.Gmem.words_per_block t.m_gmem) in
    Hashtbl.add t.masters b data;
    (if t.home_backing then begin
       let home = t.m_nodes.(Lcm_mem.Gmem.home_of_block t.m_gmem b) in
       (* The home's backing line aliases the master copy and starts
          writable: memory is born coherent and home-owned. *)
       match Hashtbl.find_opt home.lines b with
       | Some _ -> ()
       | None -> ignore (install_line home b ~data ~tag:Tag.Writable)
     end);
    data

let enable_trace ?(capacity = 256) t =
  let tr = Trace.create ~capacity in
  t.trace <- Some tr;
  Lcm_net.Network.set_trace t.m_network (Some tr)

let trace_dump t = match t.trace with Some tr -> Trace.dump tr | None -> []

let trace_events t =
  match t.trace with Some tr -> Trace.events tr | None -> []

let trace_emit t ~time ev =
  match t.trace with Some tr -> Trace.emit tr ~time ev | None -> ()

let tracef t ~time fmt =
  Printf.ksprintf
    (fun s ->
      match t.trace with Some tr -> Trace.record tr ~time s | None -> ())
    fmt

let set_home_backing t enabled = t.home_backing <- enabled

let set_handlers t ~read_fault ~write_fault ~directive =
  t.read_fault <- read_fault;
  t.write_fault <- write_fault;
  t.on_directive <- directive

let set_evict_handler t f = t.on_evict <- f
let set_read_observer t f = t.on_read_hit <- f

let send t ~src ~dst ~words ~tag ~at k =
  (* The network layer records Msg_send/Msg_recv; this layer records the
     protocol-processor occupancy interval the message induces.  Protocol
     traffic always takes the reliable path: without a fault plan it is
     the plain send, with one it gets exactly-once in-order delivery, so
     the protocol handlers never see drops or duplicates. *)
  Lcm_net.Network.send_reliable t.m_network ~src ~dst ~words ~tag ~at
    (fun ~arrival ->
      let dnode = t.m_nodes.(dst) in
      let start = max arrival dnode.handler_free in
      let finish = start + t.m_costs.Lcm_sim.Costs.handler_occupancy in
      dnode.handler_free <- finish;
      Stats.Handle.incr t.h_handler_runs;
      trace_emit t ~time:start (Trace.Handler { node = dst; finish });
      k dnode ~now:finish)

(* [send]'s allocation-free sibling: the receive handler and payload ride
   a pooled message cell through the network's pooled engine event, so an
   untraced fault-free protocol message allocates nothing at all.  The
   cell is recycled at delivery; exactly-once transport (below) is what
   makes that sound — a fire-and-forget path would leak cells on drops
   and double-run them on duplicates. *)

let recv_msg_cell (c : msg_cell) arrival _x =
  let t : t = Obj.obj c.mc_t in
  let dnode = t.m_nodes.(c.mc_dst) in
  let start = max arrival dnode.handler_free in
  let finish = start + t.m_costs.Lcm_sim.Costs.handler_occupancy in
  dnode.handler_free <- finish;
  Stats.Handle.incr t.h_handler_runs;
  trace_emit t ~time:start (Trace.Handler { node = c.mc_dst; finish });
  let h : Obj.t -> node -> int -> int -> int -> unit = Obj.obj c.mc_h in
  let p = c.mc_p and b = c.mc_b and x = c.mc_x in
  poison_msg_cell c;
  Lcm_util.Pool.release t.m_msg_pool c;
  h p dnode finish b x

let send_call (type a) t ~src ~dst ~words ~tag ~at
    (h : a -> node -> int -> int -> int -> unit) (p : a) b x =
  let c = Lcm_util.Pool.acquire t.m_msg_pool in
  c.mc_t <- Obj.repr t;
  c.mc_h <- Obj.repr h;
  c.mc_p <- Obj.repr p;
  c.mc_dst <- dst;
  c.mc_b <- b;
  c.mc_x <- x;
  Lcm_net.Network.send_reliable_call t.m_network ~src ~dst ~words ~tag ~at
    recv_msg_cell c 0

let resume n ~now ~cost retry =
  (* A fiber coming back to life is semantic progress for the quiescence
     watchdog (no-op unless one is armed). *)
  (match n.node_machine with
  | Some m -> Lcm_sim.Engine.notify_progress m.m_engine
  | None -> ());
  n.node_clock <- max n.node_clock now + cost;
  retry ()

(* ------------------------------------------------------------------ *)
(* The memory access path.                                            *)
(* ------------------------------------------------------------------ *)

(* The hit path checks the (lookaside-fronted) line table first and only
   falls back to materialising the home backing line on a miss: [master]'s
   lazy creation is observation-free (zero fill, no counters, no trace), so
   deferring it until something actually reads the master copy is
   unobservable — and the common hit skips a Hashtbl probe. *)

let home_fill t n b =
  if Lcm_mem.Gmem.home_of_block t.m_gmem b = n.node_id then begin
    (* Home blocks materialise lazily so that first-touch at home hits. *)
    ignore (master t b);
    find_line n b
  end
  else None

open Effect.Deep

(* The access path takes the fiber's continuation directly rather than a
   closure wrapping it: one less allocation on every simulated load/store,
   and [continue] is the only thing the wrapper would have done.

   The hit bodies are shared with the Memeff fast-path hooks below, so a
   synchronous hit and an effect-dispatched one are side-effect-identical
   by construction. *)

let[@inline] hit_load t n b off line =
  touch n b line;
  hw_access t n b;
  (match t.on_read_hit with Some f -> f n b line | None -> ());
  line.data.(off)

let[@inline] hit_store t n b off line v =
  touch n b line;
  hw_access t n b;
  line.data.(off) <- v;
  match line.tag with
  | Tag.Lcm_modified -> line.dirty <- Lcm_util.Mask.set line.dirty off
  | Tag.Invalid | Tag.Read_only | Tag.Writable -> ()

let rec do_load t n addr (k : (int, unit) continuation) =
  let b = Lcm_mem.Gmem.block_of_addr t.m_gmem addr in
  let off = Lcm_mem.Gmem.offset_in_block t.m_gmem addr in
  let found =
    match find_line n b with None -> home_fill t n b | some -> some
  in
  match found with
  | Some line when Tag.readable line.tag ->
    let v = hit_load t n b off line in
    set_cur n;
    continue k v
  | Some _ | None ->
    Stats.Handle.incr t.h_fault_read;
    trace_emit t ~time:n.node_clock
      (Trace.Fault { kind = Trace.Read; node = n.node_id; addr; block = b });
    n.node_clock <- n.node_clock + t.m_costs.Lcm_sim.Costs.fault_trap;
    t.read_fault n ~addr ~retry:(fun () -> do_load t n addr k)

let rec do_store t n addr v (k : (unit, unit) continuation) =
  let b = Lcm_mem.Gmem.block_of_addr t.m_gmem addr in
  let off = Lcm_mem.Gmem.offset_in_block t.m_gmem addr in
  let found =
    match find_line n b with None -> home_fill t n b | some -> some
  in
  match found with
  | Some line when Tag.writable line.tag ->
    hit_store t n b off line v;
    set_cur n;
    continue k ()
  | Some _ | None ->
    Stats.Handle.incr t.h_fault_write;
    trace_emit t ~time:n.node_clock
      (Trace.Fault { kind = Trace.Write; node = n.node_id; addr; block = b });
    n.node_clock <- n.node_clock + t.m_costs.Lcm_sim.Costs.fault_trap;
    t.write_fault n ~addr ~retry:(fun () -> do_store t n addr v k)

(* Atomic fetch-and-op: once the line is locally writable the update is a
   single indivisible step. *)
let rec do_rmw t n addr f (k : (int, unit) continuation) =
  let b = Lcm_mem.Gmem.block_of_addr t.m_gmem addr in
  let off = Lcm_mem.Gmem.offset_in_block t.m_gmem addr in
  let found =
    match find_line n b with None -> home_fill t n b | some -> some
  in
  match found with
  | Some line when Tag.writable line.tag ->
    touch n b line;
    hw_access t n b;
    let old = line.data.(off) in
    line.data.(off) <- f old;
    (match line.tag with
    | Tag.Lcm_modified -> line.dirty <- Lcm_util.Mask.set line.dirty off
    | Tag.Invalid | Tag.Read_only | Tag.Writable -> ());
    set_cur n;
    continue k old
  | Some _ | None ->
    Stats.Handle.incr t.h_fault_write;
    trace_emit t ~time:n.node_clock
      (Trace.Fault { kind = Trace.Write; node = n.node_id; addr; block = b });
    n.node_clock <- n.node_clock + t.m_costs.Lcm_sim.Costs.fault_trap;
    t.write_fault n ~addr ~retry:(fun () -> do_rmw t n addr f k)

let active_fibers t = t.m_active_fibers

(* ------------------------------------------------------------------ *)
(* Memeff fast-path hooks.                                            *)
(* ------------------------------------------------------------------ *)

(* Installed once, process-wide: the executing node rides domain-local
   storage and carries its machine, so any number of machines (a fleet
   of cells, one per worker domain) share these three hooks safely.  A
   hook completes the access iff the hit path would have resumed the
   fiber immediately, with the same clock charges, counters, LRU
   touches and observers — so skipping the perform is unobservable to
   the simulation.  Anything else (a miss, a tag violation, a foreign
   effect handler with no installed node) declines and the caller
   performs the effect exactly as before. *)

let fast_load_hook addr =
  let o = Domain.DLS.get cur_node in
  if o == no_cur then Memeff.fast_miss
  else
    let n : node = Obj.obj o in
    match n.node_machine with
    | None -> Memeff.fast_miss
    | Some t -> (
      let b = Lcm_mem.Gmem.block_of_addr t.m_gmem addr in
      let found =
        match find_line n b with None -> home_fill t n b | some -> some
      in
      match found with
      | Some line when Tag.readable line.tag ->
        n.node_clock <- n.node_clock + t.m_costs.Lcm_sim.Costs.cpu_op;
        hit_load t n b (Lcm_mem.Gmem.offset_in_block t.m_gmem addr) line
      | Some _ | None -> Memeff.fast_miss)

let fast_store_hook addr v =
  let o = Domain.DLS.get cur_node in
  if o == no_cur then false
  else
    let n : node = Obj.obj o in
    match n.node_machine with
    | None -> false
    | Some t -> (
      let b = Lcm_mem.Gmem.block_of_addr t.m_gmem addr in
      let found =
        match find_line n b with None -> home_fill t n b | some -> some
      in
      match found with
      | Some line when Tag.writable line.tag ->
        n.node_clock <- n.node_clock + t.m_costs.Lcm_sim.Costs.cpu_op;
        hit_store t n b (Lcm_mem.Gmem.offset_in_block t.m_gmem addr) line v;
        true
      | Some _ | None -> false)

let fast_work_hook units =
  let o = Domain.DLS.get cur_node in
  if o == no_cur then false
  else
    let n : node = Obj.obj o in
    match n.node_machine with
    | None -> false
    | Some t ->
      n.node_clock <-
        n.node_clock + (units * t.m_costs.Lcm_sim.Costs.compute_unit);
      true

let () =
  Memeff.fast_load := fast_load_hook;
  Memeff.fast_store := fast_store_hook;
  Memeff.fast_work := fast_work_hook

(* Build the node's preallocated effect arms (see the [node] type).  Each
   arm is one closure + one [Some] block for the node's lifetime; the
   per-perform payload travels through the scratch slots, which the arm
   reads before anything else can perform on this domain. *)
let init_arms t n =
  let cpu_op = t.m_costs.Lcm_sim.Costs.cpu_op in
  let compute_unit = t.m_costs.Lcm_sim.Costs.compute_unit in
  n.arm_load <-
    Some
      (fun k ->
        clear_cur ();
        n.node_clock <- n.node_clock + cpu_op;
        do_load t n n.sc_addr k);
  n.arm_store <-
    Some
      (fun k ->
        clear_cur ();
        n.node_clock <- n.node_clock + cpu_op;
        do_store t n n.sc_addr n.sc_val k);
  n.arm_rmw <-
    Some
      (fun k ->
        clear_cur ();
        n.node_clock <- n.node_clock + (2 * cpu_op);
        do_rmw t n n.sc_addr n.sc_rmw k);
  n.arm_work <-
    Some
      (fun k ->
        (* only reached when no current node was installed (a foreign
           frame): the fast hook handles every in-fiber Work *)
        clear_cur ();
        n.node_clock <- n.node_clock + (n.sc_units * compute_unit);
        set_cur n;
        continue k ());
  n.arm_yield <-
    Some
      (fun k ->
        clear_cur ();
        let at = max n.node_clock (Lcm_sim.Engine.now t.m_engine) in
        (* allocation-free resume: the continuation rides an engine event
           as the payload, the resume time and node id in the int slots.
           The owner hint marks the resume as node-local work — the choice
           hook's independence heuristic and a sharded engine's routing
           both use it; neither changes execution order. *)
        Lcm_sim.Engine.schedule_call t.m_engine ~owner:n.node_id ~at
          t.m_yield_h k at n.node_id);
  n.arm_directive <-
    Some
      (fun k ->
        clear_cur ();
        t.on_directive n n.sc_dir ~retry:(fun () ->
            set_cur n;
            continue k ()))

let spawn t n ?(on_done = fun () -> ()) f =
  t.m_active_fibers <- t.m_active_fibers + 1;
  (match n.arm_load with None -> init_arms t n | Some _ -> ());
  set_cur n;
  match_with f ()
    {
      retc =
        (fun () ->
          clear_cur ();
          t.m_active_fibers <- t.m_active_fibers - 1;
          on_done ());
      exnc =
        (fun e ->
          clear_cur ();
          raise e);
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Memeff.Load addr ->
            n.sc_addr <- addr;
            (n.arm_load : ((c, unit) continuation -> unit) option)
          | Memeff.Store (addr, v) ->
            n.sc_addr <- addr;
            n.sc_val <- v;
            (n.arm_store : ((c, unit) continuation -> unit) option)
          | Memeff.Rmw (addr, f) ->
            n.sc_addr <- addr;
            n.sc_rmw <- f;
            (n.arm_rmw : ((c, unit) continuation -> unit) option)
          | Memeff.Work units ->
            n.sc_units <- units;
            (n.arm_work : ((c, unit) continuation -> unit) option)
          | Memeff.Yield ->
            (n.arm_yield : ((c, unit) continuation -> unit) option)
          | Memeff.Directive d ->
            n.sc_dir <- d;
            (n.arm_directive : ((c, unit) continuation -> unit) option)
          | _ -> None);
    }

let run_to_quiescence ?limit t =
  Lcm_sim.Engine.run ?limit t.m_engine;
  if
    t.m_active_fibers > 0
    && (match Lcm_net.Network.faults t.m_network with
       | Some plan -> not plan.Lcm_net.Faults.retransmit
       | None -> false)
  then
    (* Under a fault plan without retransmission a drained queue with
       suspended fibers is the expected outcome of a lost message, not a
       protocol bug: report it as the typed stall. *)
    raise
      (Lcm_sim.Engine.Stalled
         {
           clock = Lcm_sim.Engine.now t.m_engine;
           pending = t.m_active_fibers;
         });
  if t.m_active_fibers > 0 then begin
    let tail =
      match t.trace with
      | None ->
        "\n(enable_trace the machine to capture the event tail)"
      | Some tr ->
        "\nlast events:\n  " ^ String.concat "\n  " (Trace.dump tr)
    in
    failwith
      (Printf.sprintf
         "Machine.run_to_quiescence: deadlock — %d fiber(s) still suspended \
          at t=%d%s"
         t.m_active_fibers
         (Lcm_sim.Engine.now t.m_engine)
         tail)
  end

let max_clock t =
  Array.fold_left (fun acc n -> max acc n.node_clock) 0 t.m_nodes

let set_all_clocks t c = Array.iter (fun n -> n.node_clock <- c) t.m_nodes

let barrier_cost t =
  t.m_costs.Lcm_sim.Costs.barrier_base
  + (nnodes t * t.m_costs.Lcm_sim.Costs.barrier_per_node)
