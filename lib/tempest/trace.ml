type t = {
  events : (int * string) array;
  capacity : int;
  mutable next : int;  (* total recorded; next slot = next mod capacity *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { events = Array.make capacity (0, ""); capacity; next = 0 }

let record t ~time event =
  t.events.(t.next mod t.capacity) <- (time, event);
  t.next <- t.next + 1

let recorded t = t.next

let dump t =
  let n = min t.next t.capacity in
  let first = t.next - n in
  List.init n (fun i ->
      let time, event = t.events.((first + i) mod t.capacity) in
      Printf.sprintf "[t=%d] %s" time event)

let clear t = t.next <- 0
