type dir = ..

type dir += Mark_modification of int | Flush_copies

type _ Effect.t +=
  | Load : int -> int Effect.t
  | Store : int * int -> unit Effect.t
  | Rmw : int * (int -> int) -> int Effect.t
  | Work : int -> unit Effect.t
  | Yield : unit Effect.t
  | Directive : dir -> unit Effect.t

(* Fast-path hooks, installed once by the Tempest machine.  A perform
   allocates (the effect value plus the continuation) even when the
   handler resumes immediately, which a cache hit always does; the hooks
   let the machine complete hit accesses synchronously — with side
   effects identical to the handler's hit path — and fall back to the
   effect only on a miss.  The defaults always miss, so code running
   under a foreign handler (or none) behaves exactly as before. *)

let fast_miss = min_int
(* Word values are 32-bit, so a real load can never equal [fast_miss];
   even if some exotic handler returned it, falling through to [perform]
   re-reads the same value — the sentinel is safe, merely slower. *)

let fast_load : (int -> int) ref = ref (fun _ -> fast_miss)
let fast_store : (int -> int -> bool) ref = ref (fun _ _ -> false)
let fast_work : (int -> bool) ref = ref (fun _ -> false)

let load addr =
  let v = !fast_load addr in
  if v = fast_miss then Effect.perform (Load addr) else v

let store addr w =
  if not (!fast_store addr w) then Effect.perform (Store (addr, w))

let rmw addr f = Effect.perform (Rmw (addr, f))

let work n = if not (!fast_work n) then Effect.perform (Work n)

let yield () = Effect.perform Yield

let directive d = Effect.perform (Directive d)
