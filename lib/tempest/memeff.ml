type dir = ..

type dir += Mark_modification of int | Flush_copies

type _ Effect.t +=
  | Load : int -> int Effect.t
  | Store : int * int -> unit Effect.t
  | Rmw : int * (int -> int) -> int Effect.t
  | Work : int -> unit Effect.t
  | Yield : unit Effect.t
  | Directive : dir -> unit Effect.t

let load addr = Effect.perform (Load addr)

let store addr w = Effect.perform (Store (addr, w))

let rmw addr f = Effect.perform (Rmw (addr, f))

let work n = Effect.perform (Work n)

let yield () = Effect.perform Yield

let directive d = Effect.perform (Directive d)
