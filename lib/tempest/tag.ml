type t = Invalid | Read_only | Writable | Lcm_modified

let readable = function
  | Read_only | Writable | Lcm_modified -> true
  | Invalid -> false

let writable = function
  | Writable | Lcm_modified -> true
  | Invalid | Read_only -> false

let to_string = function
  | Invalid -> "Invalid"
  | Read_only -> "ReadOnly"
  | Writable -> "Writable"
  | Lcm_modified -> "LcmModified"

let pp ppf t = Format.pp_print_string ppf (to_string t)
