(** The simulated multiprocessor: nodes, their block tables, fiber
    execution, and Tempest-style fault dispatch.

    A {!t} bundles the event engine, network, global address space and an
    array of nodes.  Each node has:

    - a CPU clock ([clock]), advanced by the computation it runs;
    - a protocol processor whose occupancy ([handler_free]) serializes
      incoming protocol messages (see DESIGN.md §3);
    - a table of cache {!line}s holding tagged block copies — at the home
      node the line for an owned block aliases the block's master copy.

    Computation runs as fibers (OCaml effect handlers).  Loads and stores
    check the local tag: a hit resumes immediately; a violation charges the
    fault-trap cost and calls the protocol hook registered with
    {!set_handlers}, passing a [retry] thunk that re-executes the access
    once the protocol has installed an acceptable copy. *)

type line = {
  mutable data : Lcm_mem.Block.t;  (** current local contents *)
  mutable tag : Tag.t;
  mutable dirty : Lcm_util.Mask.t;  (** words stored-to while [Lcm_modified] *)
  mutable local_clean : Lcm_mem.Block.t option;
      (** LCM-mcc per-node clean copy snapshot *)
  mutable last_use : int;  (** LRU stamp, maintained by the access path *)
  is_home_line : bool;  (** home backing store: never evicted *)
}

type node

type t

val create :
  ?costs:Lcm_sim.Costs.t ->
  ?topology:Lcm_net.Topology.t ->
  ?seed:int ->
  ?capacity_blocks:int ->
  ?hw_cache_blocks:int ->
  ?faults:Lcm_net.Faults.t ->
  ?jobs:int ->
  nnodes:int ->
  words_per_block:int ->
  unit ->
  t
(** [create ~nnodes ~words_per_block ()] builds a machine.  [topology]
    defaults to the CM-5 fat tree of arity 4; [capacity_blocks] bounds each
    node's cache in blocks (default: unbounded, Stache-style main-memory
    cache).  [hw_cache_blocks] adds a direct-mapped per-node hardware cache
    of that many block slots above node memory: accesses that miss it pay
    {!Lcm_sim.Costs.t.hw_miss} extra cycles (default: no hardware cache —
    every local access costs one cycle).  [faults] makes the interconnect
    unreliable per the plan (see {!Lcm_net.Faults}): protocol messaging
    then rides {!Lcm_net.Network.send_reliable} and the engine's quiescence
    watchdog is armed with the plan's stall limit.

    [jobs] selects the engine's parallel drive (default: the ambient
    {!Lcm_sim.Pdes.with_jobs} count, itself defaulting to 1): when the
    resolved count exceeds 1, the event queue is sharded across
    [min jobs nnodes] shards — nodes block-partitioned, lookahead the
    network's {!Lcm_net.Network.min_cross_latency} — and drained by the
    conservative windowed driver.  Event order, and therefore every
    result, counter and trace, is bit-identical at any job count; [0]
    resolves to [Domain.recommended_domain_count ()]. *)

(** {1 Machine accessors} *)

val engine : t -> Lcm_sim.Engine.t

val pdes : t -> Lcm_sim.Pdes.t option
(** The conservative parallel coordinator driving this machine's engine,
    when the machine was created with (resolved) [jobs > 1]. *)

val network : t -> Lcm_net.Network.t
val gmem : t -> Lcm_mem.Gmem.t
val costs : t -> Lcm_sim.Costs.t
val stats : t -> Lcm_util.Stats.t
val rng : t -> Lcm_util.Rng.t
val nnodes : t -> int
val node : t -> int -> node
val nodes : t -> node array

val epoch : t -> int
val incr_epoch : t -> unit

val phase : t -> [ `Sequential | `Parallel ]
val set_phase : t -> [ `Sequential | `Parallel ] -> unit

(** {1 Node accessors} *)

val id : node -> int
val clock : node -> int
val set_clock : node -> int -> unit
val advance_clock : node -> int -> unit
val machine : node -> t

(** {1 Block tables (protocol side)} *)

val master : t -> Lcm_mem.Gmem.block -> Lcm_mem.Block.t
(** [master t b] is the master copy of block [b], created zero-filled on
    first use.  Also installs the home node's writable backing line if not
    present. *)

val set_home_backing : t -> bool -> unit
(** Whether {!master} installs the home node's master-aliasing writable
    backing line on first creation (default [true] — directory protocols
    rely on it; see DESIGN.md §3).  Bus-snooping protocols disable it at
    install so home-node accesses fault and take the bus like everyone
    else's.  Flip it before any block is touched. *)

val find_line : node -> Lcm_mem.Gmem.block -> line option

val install_line :
  node -> Lcm_mem.Gmem.block -> data:Lcm_mem.Block.t -> tag:Tag.t -> line
(** Install (or overwrite) a cached copy.  May trigger an LRU eviction via
    the hook registered with {!set_evict_handler} when the node's capacity
    is bounded. *)

val drop_line : node -> Lcm_mem.Gmem.block -> unit

val iter_lines : node -> (Lcm_mem.Gmem.block -> line -> unit) -> unit

val lines_snapshot : node -> (Lcm_mem.Gmem.block * line) list
(** Sorted by block number — used where deterministic order matters
    (flushes, reconciliation). *)

(** {1 Protocol hooks} *)

val set_handlers :
  t ->
  read_fault:(node -> addr:int -> retry:(unit -> unit) -> unit) ->
  write_fault:(node -> addr:int -> retry:(unit -> unit) -> unit) ->
  directive:(node -> Memeff.dir -> retry:(unit -> unit) -> unit) ->
  unit

val set_evict_handler : t -> (node -> Lcm_mem.Gmem.block -> line -> unit) -> unit
(** Called when a line is about to be evicted by capacity pressure; the
    protocol must write back / notify home as needed.  The line is removed
    from the table after the handler returns. *)

val set_read_observer :
  t -> (node -> Lcm_mem.Gmem.block -> line -> unit) option -> unit
(** Observe loads that {e hit} a readable local line (faulting loads
    already reach the protocol through [read_fault]).  Needed for race
    detection: the home node's backing line is always readable, so home
    reads never fault and would otherwise be invisible to the protocol.
    [None] (the default) keeps the hit path observer-free. *)

(** {1 Messaging} *)

val send :
  t ->
  src:int ->
  dst:int ->
  words:int ->
  tag:string ->
  at:int ->
  (node -> now:int -> unit) ->
  unit
(** [send t ~src ~dst ~words ~tag ~at k] transmits a protocol message.  [k]
    runs on the destination's protocol processor; [now] is the time its
    handler occupancy completes, i.e. the timestamp any reply should carry. *)

val send_call :
  t ->
  src:int ->
  dst:int ->
  words:int ->
  tag:string ->
  at:int ->
  ('a -> node -> int -> int -> int -> unit) ->
  'a ->
  int ->
  int ->
  unit
(** [send_call t ~src ~dst ~words ~tag ~at h p b x] is {!send} for hot
    protocol paths: [h p dnode now b x] runs on the destination's
    protocol processor, where [now] is the occupancy-completion time of
    {!send}'s [k].  [h] is meant to be preallocated (per protocol
    instance, not per message); [p] is its payload and [b]/[x] are
    integer riders (a block number, a packed request descriptor).  The
    four travel in a pooled message cell recycled at delivery, so a
    steady-state message allocates nothing.  Timing, statistics, tracing
    and exactly-once transport are identical to {!send}. *)

val resume : node -> now:int -> cost:int -> (unit -> unit) -> unit
(** [resume n ~now ~cost retry] returns control to a suspended fiber: sets
    the node clock to [max clock now + cost] and runs [retry]. *)

(** {1 Fibers} *)

val spawn : t -> node -> ?on_done:(unit -> unit) -> (unit -> unit) -> unit
(** [spawn t n f] runs [f] as a fiber on node [n], immediately, until its
    first suspension.  [on_done] fires when the fiber finishes. *)

val active_fibers : t -> int

val run_to_quiescence : ?limit:int -> t -> unit
(** Drain the event queue.
    @raise Failure if fibers remain suspended after the queue empties
    (protocol deadlock) or [limit] events are exceeded.
    @raise Lcm_sim.Engine.Stalled instead of the deadlock [Failure] when
    the machine runs a fault plan with retransmission disabled — losing a
    message for good makes suspended fibers the expected outcome, and the
    typed stall identifies it deterministically.  Also propagated from the
    engine watchdog, and {!Lcm_net.Network.Net_unreachable} from an
    exhausted retransmission budget. *)

val max_clock : t -> int
(** Maximum node CPU clock — the phase completion time. *)

val set_all_clocks : t -> int -> unit

val barrier_cost : t -> int
(** [barrier_base + nnodes * barrier_per_node] from the cost model. *)

(** {1 Tracing} *)

module Trace = Lcm_sim.Trace

val enable_trace : ?capacity:int -> t -> unit
(** Start recording typed protocol events (faults, message send/receive,
    handler occupancy, barriers, directives) into a ring of [capacity]
    (default 256) events; also attaches the ring to the network so message
    events are captured, and a deadlock failure dumps the tail. *)

val trace_dump : t -> string list
(** The retained trace rendered as strings, oldest first ([[]] when
    tracing is off). *)

val trace_events : t -> (int * Lcm_sim.Trace.event) list
(** The retained typed events with their timestamps, oldest first ([[]]
    when tracing is off).  Feed to {!Lcm_harness.Traceview} for export. *)

val trace_emit : t -> time:int -> Lcm_sim.Trace.event -> unit
(** Record a typed event (no-op when tracing is off); protocol layers use
    this to annotate barriers, directives and epochs. *)

val tracef :
  t -> time:int -> ('a, unit, string, unit) format4 -> 'a
(** Record a free-form note event (no-op when tracing is off). *)
