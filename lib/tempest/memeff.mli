(** Effects performed by simulated computation.

    Workload code runs as an OCaml fiber; every access to the simulated
    global memory is an effect that the owning node's handler intercepts.
    A hit resumes the fiber immediately (charging CPU cycles); a tag
    violation suspends the fiber until the protocol installs the block.

    [dir] is extensible so that protocol layers can add their own
    directives (the LCM layer adds marking/flushing; the stale-data
    extension adds its own) without the Tempest layer knowing about them. *)

type dir = ..
(** Memory-system directives, dispatched to the node's registered
    directive handler. *)

type dir +=
  | Mark_modification of int
      (** [Mark_modification addr]: create an inconsistent writable copy of
          the block containing [addr] (LCM directive #1). *)
  | Flush_copies
      (** Return this node's modified copies to their homes (LCM
          directive #3); issued between parallel invocations. *)

type _ Effect.t +=
  | Load : int -> int Effect.t  (** [Load addr] reads one word. *)
  | Store : int * int -> unit Effect.t  (** [Store (addr, w)] writes one word. *)
  | Rmw : int * (int -> int) -> int Effect.t
      (** [Rmw (addr, f)] atomically replaces the word with [f old] once the
          block is locally writable, returning [old] — a fetch-and-op
          instruction.  Used by code that would otherwise need a lock. *)
  | Work : int -> unit Effect.t
      (** [Work n] charges [n] units of pure compute time. *)
  | Yield : unit Effect.t
      (** Suspend and resume through the event queue at the node's current
          clock.  Fibers otherwise run ahead of the engine between faults;
          yielding at invocation boundaries interleaves nodes in simulated-
          time order (needed for believable dynamic scheduling). *)
  | Directive : dir -> unit Effect.t

val load : int -> int
(** [load addr] performs the {!Load} effect. *)

val store : int -> int -> unit

val rmw : int -> (int -> int) -> int

val work : int -> unit

val yield : unit -> unit

val directive : dir -> unit

(** {1 Fast-path hooks}

    Installed once by {!Machine}; not for workload code.  Each hook may
    complete the access synchronously (with side effects identical to
    the owning handler's hit path) or decline, in which case the caller
    performs the effect as usual.  The defaults always decline. *)

val fast_miss : int
(** Sentinel returned by {!fast_load} to decline.  Distinct from every
    32-bit word value; a handler that somehow produced it would merely
    fall through to the (equivalent) effect path. *)

val fast_load : (int -> int) ref
(** [!fast_load addr] is the word at [addr], or {!fast_miss} to decline. *)

val fast_store : (int -> int -> bool) ref
(** [!fast_store addr w] returns [true] iff the store completed. *)

val fast_work : (int -> bool) ref
(** [!fast_work n] returns [true] iff the compute charge completed. *)
