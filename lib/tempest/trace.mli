(** Bounded event trace for post-mortem debugging.

    When enabled on a {!Machine.t}, the access-fault, message and fiber
    events stream into a fixed-capacity ring; a deadlocked simulation dumps
    the tail so protocol bugs (a lost retry, a never-acked request) can be
    read off directly.  Disabled by default — recording costs a string
    allocation per event. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val record : t -> time:int -> string -> unit
(** Append an event, evicting the oldest when full. *)

val recorded : t -> int
(** Total events ever recorded (including evicted ones). *)

val dump : t -> string list
(** The retained events, oldest first, each as ["\[t=<time>\] <event>"]. *)

val clear : t -> unit
