(* A single shared split-free bus: one transaction at a time, granted in
   request order.  Arbitration is a timestamp race: a transaction asked
   for at [at] is granted at [max at free_at] and occupies the bus for
   msg_fixed + words * msg_per_word cycles (the same wire costs the
   point-to-point network charges, minus per-hop switching — a bus has no
   switches).  The grant callback runs when the occupancy ends, so every
   transaction's state changes are atomic with respect to the next grant.

   The bus is a reliable medium: fault plans (Lcm_net.Faults) model lossy
   point-to-point links and do not apply here — a snooping transaction is
   observed by every agent by construction. *)

module Stats = Lcm_util.Stats

type kind = Rd | Rdx | Upgr | Flush

let kind_to_string = function
  | Rd -> "bus_rd"
  | Rdx -> "bus_rdx"
  | Upgr -> "bus_upgr"
  | Flush -> "bus_flush"

(* Pooled grant record for [transact_call]: carries the bus, the caller's
   preallocated grant handler, its payload and an int rider through the
   engine's allocation-free scheduling path.  Handler and payload are
   stored as [Obj.t] — [transact_call] pairs them under one type variable,
   the same discipline as [Lcm_sim.Engine.schedule_call]. *)
type grant_cell = {
  mutable g_bus : Obj.t;
  mutable g_h : Obj.t;
  mutable g_p : Obj.t;
  mutable g_x : int;
}

let dead_grant_h _ _ _ = failwith "Bus: grant cell used after release"
let dead_obj = Obj.repr "Bus.grant_cell: released"

let make_grant_cell () =
  { g_bus = dead_obj; g_h = Obj.repr dead_grant_h; g_p = dead_obj; g_x = 0 }

let poison_grant_cell c =
  c.g_bus <- dead_obj;
  c.g_h <- Obj.repr dead_grant_h;
  c.g_p <- dead_obj

type t = {
  engine : Lcm_sim.Engine.t;
  costs : Lcm_sim.Costs.t;
  mutable free_at : int;  (* when the current occupancy ends *)
  gpool : grant_cell Lcm_util.Pool.t;
  h_transactions : Stats.Handle.counter;
  h_rd : Stats.Handle.counter;
  h_rdx : Stats.Handle.counter;
  h_upgr : Stats.Handle.counter;
  h_flush : Stats.Handle.counter;
  h_stall : Stats.Handle.counter;
  h_busy : Stats.Handle.counter;
}

let create ~engine ~costs ~stats () =
  {
    engine;
    costs;
    free_at = 0;
    gpool = Lcm_util.Pool.create ~poison:poison_grant_cell ~make:make_grant_cell ();
    h_transactions = Stats.counter stats "bus.transactions";
    h_rd = Stats.counter stats "bus.rd";
    h_rdx = Stats.counter stats "bus.rdx";
    h_upgr = Stats.counter stats "bus.upgr";
    h_flush = Stats.counter stats "bus.flush";
    h_stall = Stats.counter stats "bus.arb_stall_cycles";
    h_busy = Stats.counter stats "bus.busy_cycles";
  }

let busy_until t = t.free_at

let occupancy t ~words =
  t.costs.Lcm_sim.Costs.msg_fixed + (words * t.costs.Lcm_sim.Costs.msg_per_word)

(* Arbitrate: account the transaction and return its completion cycle. *)
let arbitrate t ~kind ~at ~words =
  let grant = max at t.free_at in
  let finish = grant + occupancy t ~words in
  t.free_at <- finish;
  Stats.Handle.incr t.h_transactions;
  Stats.Handle.incr
    (match kind with
    | Rd -> t.h_rd
    | Rdx -> t.h_rdx
    | Upgr -> t.h_upgr
    | Flush -> t.h_flush);
  Stats.Handle.add t.h_stall (grant - at);
  Stats.Handle.add t.h_busy (finish - grant);
  finish

let transact t ~kind ~at ~words k =
  let finish = arbitrate t ~kind ~at ~words in
  Lcm_sim.Engine.schedule t.engine ~at:finish (fun () ->
      (* a completed bus transaction is semantic progress for the stall
         watchdog armed by fault plans *)
      Lcm_sim.Engine.notify_progress t.engine;
      k ~now:finish)

(* Static grant dispatcher: runs at occupancy end, recycles the cell
   before entering the protocol handler. *)
let run_grant (c : grant_cell) finish _i2 =
  let t : t = Obj.obj c.g_bus in
  Lcm_sim.Engine.notify_progress t.engine;
  let h : Obj.t -> int -> int -> unit = Obj.obj c.g_h in
  let p = c.g_p and x = c.g_x in
  poison_grant_cell c;
  Lcm_util.Pool.release t.gpool c;
  h p finish x

let transact_call (type a) t ~kind ~at ~words (h : a -> int -> int -> unit)
    (p : a) x =
  let finish = arbitrate t ~kind ~at ~words in
  let c = Lcm_util.Pool.acquire t.gpool in
  c.g_bus <- Obj.repr t;
  c.g_h <- Obj.repr h;
  c.g_p <- Obj.repr p;
  c.g_x <- x;
  Lcm_sim.Engine.schedule_call t.engine ~at:finish run_grant c finish 0
