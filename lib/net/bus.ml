(* A single shared split-free bus: one transaction at a time, granted in
   request order.  Arbitration is a timestamp race: a transaction asked
   for at [at] is granted at [max at free_at] and occupies the bus for
   msg_fixed + words * msg_per_word cycles (the same wire costs the
   point-to-point network charges, minus per-hop switching — a bus has no
   switches).  The grant callback runs when the occupancy ends, so every
   transaction's state changes are atomic with respect to the next grant.

   The bus is a reliable medium: fault plans (Lcm_net.Faults) model lossy
   point-to-point links and do not apply here — a snooping transaction is
   observed by every agent by construction. *)

module Stats = Lcm_util.Stats

type kind = Rd | Rdx | Upgr | Flush

let kind_to_string = function
  | Rd -> "bus_rd"
  | Rdx -> "bus_rdx"
  | Upgr -> "bus_upgr"
  | Flush -> "bus_flush"

type t = {
  engine : Lcm_sim.Engine.t;
  costs : Lcm_sim.Costs.t;
  mutable free_at : int;  (* when the current occupancy ends *)
  h_transactions : Stats.Handle.counter;
  h_rd : Stats.Handle.counter;
  h_rdx : Stats.Handle.counter;
  h_upgr : Stats.Handle.counter;
  h_flush : Stats.Handle.counter;
  h_stall : Stats.Handle.counter;
  h_busy : Stats.Handle.counter;
}

let create ~engine ~costs ~stats () =
  {
    engine;
    costs;
    free_at = 0;
    h_transactions = Stats.counter stats "bus.transactions";
    h_rd = Stats.counter stats "bus.rd";
    h_rdx = Stats.counter stats "bus.rdx";
    h_upgr = Stats.counter stats "bus.upgr";
    h_flush = Stats.counter stats "bus.flush";
    h_stall = Stats.counter stats "bus.arb_stall_cycles";
    h_busy = Stats.counter stats "bus.busy_cycles";
  }

let busy_until t = t.free_at

let occupancy t ~words =
  t.costs.Lcm_sim.Costs.msg_fixed + (words * t.costs.Lcm_sim.Costs.msg_per_word)

let transact t ~kind ~at ~words k =
  let grant = max at t.free_at in
  let finish = grant + occupancy t ~words in
  t.free_at <- finish;
  Stats.Handle.incr t.h_transactions;
  Stats.Handle.incr
    (match kind with
    | Rd -> t.h_rd
    | Rdx -> t.h_rdx
    | Upgr -> t.h_upgr
    | Flush -> t.h_flush);
  Stats.Handle.add t.h_stall (grant - at);
  Stats.Handle.add t.h_busy (finish - grant);
  Lcm_sim.Engine.schedule t.engine ~at:finish (fun () ->
      (* a completed bus transaction is semantic progress for the stall
         watchdog armed by fault plans *)
      Lcm_sim.Engine.notify_progress t.engine;
      k ~now:finish)
