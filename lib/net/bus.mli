(** A shared snooping bus: the interconnect model behind the MSI/MESI/MOESI
    policy family.

    One transaction occupies the bus at a time.  A transaction requested at
    cycle [at] is granted at [max at (busy_until t)] — the difference is
    accounted as arbitration stall ([bus.arb_stall_cycles]) — and holds the
    bus for [msg_fixed + words * msg_per_word] cycles, the same wire cost
    the point-to-point network charges minus per-hop switching (a bus has
    no switches).  The completion callback runs when the occupancy ends, so
    each transaction's snoop-side state changes are atomic with respect to
    the next grant: the protocol layer can read and update every cache's
    state inside the callback without intervening traffic.

    The bus is a {e reliable} medium: fault plans ({!Faults}) model lossy
    point-to-point links and deliberately do not apply here — every agent
    observes a snooping transaction by construction.

    Counters: [bus.transactions], [bus.rd]/[bus.rdx]/[bus.upgr]/[bus.flush]
    (per kind), [bus.arb_stall_cycles], [bus.busy_cycles].  Snoop-hit and
    cache-to-cache counters belong to the protocol layer, which knows what
    the snoop found. *)

type kind =
  | Rd  (** read miss: fetch a shared copy *)
  | Rdx  (** write miss: fetch an exclusive copy, invalidating others *)
  | Upgr  (** upgrade a held shared copy to exclusive (no data transfer) *)
  | Flush  (** writeback of a dirty evicted line *)

val kind_to_string : kind -> string

type t

val create :
  engine:Lcm_sim.Engine.t ->
  costs:Lcm_sim.Costs.t ->
  stats:Lcm_util.Stats.t ->
  unit ->
  t

val busy_until : t -> int
(** The cycle at which the bus next becomes free. *)

val occupancy : t -> words:int -> int
(** Cycles a [words]-word transaction holds the bus. *)

val transact : t -> kind:kind -> at:int -> words:int -> (now:int -> unit) -> unit
(** [transact t ~kind ~at ~words k] queues a transaction requested at
    cycle [at]; [k ~now] runs when its bus occupancy completes ([now] is
    that cycle).  Grants are in request order. *)

val transact_call :
  t -> kind:kind -> at:int -> words:int -> ('a -> int -> int -> unit) -> 'a ->
  int -> unit
(** [transact_call t ~kind ~at ~words h p x] is {!transact} for callers
    with a {e preallocated} grant handler: [h p now x] runs when the
    occupancy completes, the triple riding a pooled grant record through
    the engine's allocation-free scheduling path, so a steady-state bus
    transaction allocates nothing.  [p] is the handler's payload and [x]
    an integer rider (a packed requester/block descriptor).  Timing,
    statistics and grant order are exactly {!transact}'s. *)
