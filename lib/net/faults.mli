(** Deterministic network fault plans.

    A plan describes how an unreliable interconnect misbehaves: a
    per-message drop probability, a duplication probability, bounded
    uniform extra-latency jitter, and optional "link down" windows during
    which a channel delivers nothing.  A {!Network.t} created with a plan
    draws every fault decision from one {!Lcm_util.Rng} stream seeded with
    [seed], so a (plan, workload) pair replays bit-identically — same
    drops, same duplicates, same jitter, same [fault.*] counters.

    The plan also configures the reliable transport built on top (see
    {!Network.send_reliable}): whether retransmission is enabled, the
    retry cap, the base retransmission timeout, and the quiescence
    watchdog limit armed on the machine's engine. *)

type window = {
  w_src : int option;  (** [None] = any source *)
  w_dst : int option;  (** [None] = any destination *)
  from_t : int;
  until_t : int;  (** down for engine times in [\[from_t, until_t)] *)
}

type t = private {
  seed : int;
  drop : float;  (** per-copy drop probability in [\[0,1\]] *)
  dup : float;  (** per-message duplication probability *)
  jitter : int;  (** extra injection delay, uniform in [\[0, jitter\]] *)
  down : window list;
  retransmit : bool;
      (** when false, {!Network.send_reliable} degrades to the lossy
          fire-and-forget path — lost messages stay lost *)
  max_retries : int;
      (** retransmissions per message before {!Network.Net_unreachable} *)
  rto : int option;
      (** base retransmission timeout in cycles; default: derived from the
          message's round-trip latency *)
  stall_limit : int;
      (** quiescence watchdog: engine cycles without semantic progress
          before {!Lcm_sim.Engine.Stalled} *)
}

val make :
  ?drop:float ->
  ?dup:float ->
  ?jitter:int ->
  ?down:window list ->
  ?retransmit:bool ->
  ?max_retries:int ->
  ?rto:int ->
  ?stall_limit:int ->
  seed:int ->
  unit ->
  t
(** Defaults: no faults, retransmission on with [max_retries = 12],
    derived rto, [stall_limit = 1_000_000].  Down windows whose channel
    patterns can match the same (src, dst) pair — wildcards intersect
    everything — must be listed in time order and must not overlap.
    @raise Invalid_argument on out-of-range probabilities, negative
    jitter/retries, non-positive rto/stall_limit, a malformed window, or
    intersecting windows that are unsorted or overlapping. *)

val link_down : t -> src:int -> dst:int -> at:int -> bool
(** Is channel [(src, dst)] inside a down window at engine time [at]? *)

val profiles : string list
(** Named profile shapes accepted by {!of_profile}: [drop], [dup],
    [jitter], [flap], [chaos], [drop-noretx] (plus [none]). *)

val of_profile : string -> rate:float -> seed:int -> (t, string) result
(** [of_profile name ~rate ~seed] builds the named plan shape scaled by
    [rate] (the drop/dup probability; jitter and flap-window length scale
    with it).  [drop-noretx] is the diagnostic shape with retransmission
    disabled — runs under it lose messages for good and are expected to
    end in {!Lcm_sim.Engine.Stalled}. *)

val to_string : t -> string
(** One-line rendering, e.g. ["seed=7 drop=0.05 retx<=12"]. *)
