(** Interconnect topologies and their hop counts.

    The network's latency model charges a per-hop switch cost, so the
    topology only needs to answer "how many hops from [src] to [dst]".
    [Fat_tree ~arity] models the CM-5 data network the paper ran on: the
    distance between two leaves is twice the height of their lowest common
    ancestor in an [arity]-ary tree. *)

type t =
  | Crossbar  (** single switch: one hop between any two distinct nodes *)
  | Mesh2d of { cols : int }
      (** 2-D mesh with [cols] columns; hops = Manhattan distance *)
  | Fat_tree of { arity : int }
      (** CM-5-style fat tree with the given switch arity (CM-5: 4) *)

val hops : t -> src:int -> dst:int -> int
(** [hops topo ~src ~dst] is the number of switch traversals between two
    nodes; 0 when [src = dst].
    @raise Invalid_argument on negative node ids or non-positive
    mesh/arity parameters. *)

val of_string : string -> (t, string) result
(** Parses ["crossbar"], ["mesh:<cols>"] or ["fattree:<arity>"]. *)

val to_string : t -> string
