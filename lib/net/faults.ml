type window = {
  w_src : int option;
  w_dst : int option;
  from_t : int;
  until_t : int;
}

type t = {
  seed : int;
  drop : float;
  dup : float;
  jitter : int;
  down : window list;
  retransmit : bool;
  max_retries : int;
  rto : int option;
  stall_limit : int;
}

let default_stall_limit = 1_000_000

let make ?(drop = 0.0) ?(dup = 0.0) ?(jitter = 0) ?(down = [])
    ?(retransmit = true) ?(max_retries = 12) ?rto
    ?(stall_limit = default_stall_limit) ~seed () =
  if drop < 0.0 || drop > 1.0 then invalid_arg "Faults.make: drop not in [0,1]";
  if dup < 0.0 || dup > 1.0 then invalid_arg "Faults.make: dup not in [0,1]";
  if jitter < 0 then invalid_arg "Faults.make: jitter must be >= 0";
  if max_retries < 0 then invalid_arg "Faults.make: max_retries must be >= 0";
  (match rto with
  | Some r when r <= 0 -> invalid_arg "Faults.make: rto must be positive"
  | Some _ | None -> ());
  if stall_limit <= 0 then invalid_arg "Faults.make: stall_limit must be positive";
  List.iter
    (fun w ->
      if w.from_t < 0 || w.until_t < w.from_t then
        invalid_arg "Faults.make: malformed down window")
    down;
  (* Windows whose channel patterns can match the same (src, dst) pair must
     be listed in time order and must not overlap: [link_down] scans the
     list, and a shadowed or out-of-order outage in a hand-written plan is
     almost always a typo — e.g. a window entirely inside an earlier one
     silently adds nothing.  Two patterns intersect unless they pin the
     same field ([w_src] or [w_dst]) to different nodes; a [None] wildcard
     matches everything. *)
  let intersects a b =
    (match (a.w_src, b.w_src) with Some x, Some y -> x = y | _ -> true)
    && match (a.w_dst, b.w_dst) with Some x, Some y -> x = y | _ -> true
  in
  let rec check_order = function
    | [] -> ()
    | w :: rest ->
      List.iter
        (fun w' ->
          if intersects w w' && w.until_t > w'.from_t then
            invalid_arg
              (Printf.sprintf
                 "Faults.make: down windows on the same channel must be \
                  sorted and non-overlapping: [%d,%d) is not before [%d,%d)"
                 w.from_t w.until_t w'.from_t w'.until_t))
        rest;
      check_order rest
  in
  check_order down;
  { seed; drop; dup; jitter; down; retransmit; max_retries; rto; stall_limit }

let link_down t ~src ~dst ~at =
  List.exists
    (fun w ->
      at >= w.from_t && at < w.until_t
      && (match w.w_src with Some s -> s = src | None -> true)
      && (match w.w_dst with Some d -> d = dst | None -> true))
    t.down

let profiles = [ "drop"; "dup"; "jitter"; "flap"; "chaos"; "drop-noretx" ]

(* Profiles map one scalar --fault-rate knob onto a plan shape.  The
   link-flap windows are fixed-position (derived from nothing but the
   rate) so that a (profile, rate, seed) triple is a complete, replayable
   description of the run. *)
let of_profile name ~rate ~seed =
  if rate < 0.0 || rate > 1.0 then
    Error (Printf.sprintf "fault rate %g not in [0,1]" rate)
  else
    let jitter_of rate = 1 + int_of_float (rate *. 200.) in
    let flap_windows rate =
      (* three all-channel outages early in the run, each long enough to
         force retransmission backoff but short enough that the default
         retry cap rides them out *)
      let dur = 200 + int_of_float (rate *. 4_000.) in
      List.map
        (fun t0 ->
          { w_src = None; w_dst = None; from_t = t0; until_t = t0 + dur })
        [ 2_000; 20_000; 90_000 ]
    in
    match String.lowercase_ascii (String.trim name) with
    | "none" -> Ok (make ~seed ())
    | "drop" -> Ok (make ~drop:rate ~seed ())
    | "dup" -> Ok (make ~dup:rate ~seed ())
    | "jitter" -> Ok (make ~jitter:(jitter_of rate) ~seed ())
    | "flap" -> Ok (make ~down:(flap_windows rate) ~seed ())
    | "chaos" ->
      Ok
        (make ~drop:rate ~dup:(rate /. 2.) ~jitter:(jitter_of rate)
           ~down:(flap_windows rate) ~seed ())
    | "drop-noretx" -> Ok (make ~drop:rate ~retransmit:false ~seed ())
    | other ->
      Error
        (Printf.sprintf "unknown fault profile %S; pick one of: %s" other
           (String.concat ", " profiles))

let to_string t =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "seed=%d" t.seed);
  if t.drop > 0.0 then Buffer.add_string b (Printf.sprintf " drop=%g" t.drop);
  if t.dup > 0.0 then Buffer.add_string b (Printf.sprintf " dup=%g" t.dup);
  if t.jitter > 0 then Buffer.add_string b (Printf.sprintf " jitter=%d" t.jitter);
  List.iter
    (fun w ->
      Buffer.add_string b
        (Printf.sprintf " down[%s->%s %d,%d)"
           (match w.w_src with Some s -> string_of_int s | None -> "*")
           (match w.w_dst with Some d -> string_of_int d | None -> "*")
           w.from_t w.until_t))
    t.down;
  Buffer.add_string b
    (if t.retransmit then Printf.sprintf " retx<=%d" t.max_retries
     else " no-retx");
  Buffer.contents b
