type t = {
  engine : Lcm_sim.Engine.t;
  costs : Lcm_sim.Costs.t;
  stats : Lcm_util.Stats.t;
  topology : Topology.t;
  nnodes : int;
  channel_free : (int * int, int) Hashtbl.t;
      (* channel -> time the link is free again: the previous message's
         arrival plus its transmission time *)
  mutable trace : Lcm_sim.Trace.t option;
}

let create ~engine ~costs ~stats ~topology ~nnodes =
  {
    engine;
    costs;
    stats;
    topology;
    nnodes;
    channel_free = Hashtbl.create 64;
    trace = None;
  }

let set_trace t trace = t.trace <- trace

let latency t ~src ~dst ~words =
  let hops = Topology.hops t.topology ~src ~dst in
  t.costs.Lcm_sim.Costs.msg_fixed
  + (hops * t.costs.Lcm_sim.Costs.msg_per_hop)
  + (words * t.costs.Lcm_sim.Costs.msg_per_word)

let transmission_time t ~words =
  max 1 (words * t.costs.Lcm_sim.Costs.msg_per_word)

let send t ~src ~dst ~words ?tag ~at k =
  if src < 0 || src >= t.nnodes then invalid_arg "Network.send: src out of range";
  if dst < 0 || dst >= t.nnodes then invalid_arg "Network.send: dst out of range";
  Lcm_util.Stats.incr t.stats "net.msgs";
  Lcm_util.Stats.add t.stats "net.words" words;
  (match tag with
  | Some tag -> Lcm_util.Stats.incr t.stats ("msg." ^ tag)
  | None -> ());
  let tag_name = Option.value tag ~default:"-" in
  let channel = (src, dst) in
  let earliest =
    (* FIFO with bandwidth: the channel stays occupied for the previous
       message's transmission time, so back-to-back messages arrive spaced
       by at least the earlier message's size — not a fixed 1 cycle. *)
    match Hashtbl.find_opt t.channel_free channel with
    | Some free -> free
    | None -> 0
  in
  let lat = latency t ~src ~dst ~words in
  let raw_arrival = at + lat in
  let arrival =
    (* The engine cannot schedule into the past; a sender's local clock can
       lag the engine when it reacts to an old event, so clamp. *)
    max (max raw_arrival earliest) (Lcm_sim.Engine.now t.engine)
  in
  let stall = arrival - raw_arrival in
  if stall > 0 then
    Lcm_util.Stats.observe t.stats "net.channel_stall_cycles" (float_of_int stall);
  (match t.trace with
  | Some tr ->
    (* Stamp the send at the actual injection time: when the channel (or the
       engine clamp) delays the message, [at] would predate the link being
       free and the trace would show impossible overlaps. *)
    Lcm_sim.Trace.emit tr ~time:(arrival - lat)
      (Lcm_sim.Trace.Msg_send { tag = tag_name; src; dst; words })
  | None -> ());
  Hashtbl.replace t.channel_free channel (arrival + transmission_time t ~words);
  Lcm_sim.Engine.schedule t.engine ~at:arrival (fun () ->
      (match t.trace with
      | Some tr ->
        Lcm_sim.Trace.emit tr ~time:arrival
          (Lcm_sim.Trace.Msg_recv { tag = tag_name; src; dst; words })
      | None -> ());
      k ~arrival)
