module Rng = Lcm_util.Rng
module Stats = Lcm_util.Stats

exception
  Net_unreachable of { src : int; dst : int; tag : string; attempts : int }

type fate = Deliver | Drop | Dup

(* Sender-side state of one in-flight reliable message.  Pooled: a
   record is released back to the free list by the final (stale) timer
   of an acknowledged message.  Ack continuations from duplicate copies
   can outlive that release, so they guard on [gen]: re-acquisition
   bumps it, turning a late ack for the old occupant into a no-op
   instead of a write into the recycled record. *)
type rel_pending = {
  mutable acked : bool;
  mutable attempt : int;
  mutable gen : int;
}

type t = {
  engine : Lcm_sim.Engine.t;
  costs : Lcm_sim.Costs.t;
  stats : Lcm_util.Stats.t;
  topology : Topology.t;
  nnodes : int;
  channel_free : int array;
      (* channel (src * nnodes + dst) -> time the link is free again: the
         previous message's arrival plus its transmission time.  Flat
         array: every message send reads and writes exactly one slot, so a
         hashed pair key would be pure overhead. *)
  msgs : Stats.Handle.counter;
  words_sent : Stats.Handle.counter;
  channel_stall : Stats.Handle.sample;
  tag_counters : (string, Stats.Handle.counter) Hashtbl.t;
      (* memoized "msg.<tag>" handles; tags are a small fixed vocabulary *)
  mutable trace : Lcm_sim.Trace.t option;
  (* --- fault injection + reliable transport (unused without a plan) --- *)
  faults : Faults.t option;
  frng : Rng.t;
      (* one stream for every fault decision; the simulation is
         single-threaded, so draw order — and hence the whole fault
         pattern — is a deterministic function of (workload, plan) *)
  rel_next : int array;  (* per channel: next seq to assign *)
  rel_expected : int array;  (* per channel: next seq to deliver *)
  rel_held : (int, int -> unit) Hashtbl.t;
      (* channel lsl 40 + seq -> application continuation, parked until
         the sequence gap below it is filled.  Packed int key: channels
         are < 2^20 (nnodes^2, nnodes <= 1024) and 2^40 sequence numbers
         per channel outlast any plausible run, so the pair fits one
         immediate — no tuple allocation per lookup. *)
  rel_pool : rel_pending Lcm_util.Pool.t;
  mutable fate_of : (src:int -> dst:int -> tag:string option -> fate) option;
      (* model-checker hook: when installed, every per-copy fault decision
         is delegated to this chooser instead of the plan's RNG stream —
         no RNG is drawn, no jitter applied, and down windows are not
         consulted, so the chooser is the single replayable source of
         fault truth.  Only consulted on paths a fault plan enables. *)
  h_drops : Stats.Handle.counter;
  h_dups : Stats.Handle.counter;
  h_retx : Stats.Handle.counter;
  h_timeouts : Stats.Handle.counter;
  h_dup_suppressed : Stats.Handle.counter;
  retx_backoff : Stats.Handle.sample;
}

let create ?faults ~engine ~costs ~stats ~topology ~nnodes () =
  {
    engine;
    costs;
    stats;
    topology;
    nnodes;
    channel_free = Array.make (nnodes * nnodes) 0;
    msgs = Stats.counter stats "net.msgs";
    words_sent = Stats.counter stats "net.words";
    channel_stall = Stats.sample stats "net.channel_stall_cycles";
    tag_counters = Hashtbl.create 32;
    trace = None;
    faults;
    frng =
      Rng.create
        ~seed:(match faults with Some p -> p.Faults.seed | None -> 0);
    rel_next = Array.make (nnodes * nnodes) 0;
    rel_expected = Array.make (nnodes * nnodes) 0;
    rel_held = Hashtbl.create 16;
    rel_pool =
      Lcm_util.Pool.create
        ~poison:(fun st ->
          st.acked <- false;
          st.attempt <- min_int)
        ~make:(fun () -> { acked = false; attempt = 0; gen = 0 })
        ();
    h_drops = Stats.counter stats "fault.drops";
    h_dups = Stats.counter stats "fault.dups";
    h_retx = Stats.counter stats "fault.retransmits";
    h_timeouts = Stats.counter stats "fault.timeouts";
    h_dup_suppressed = Stats.counter stats "fault.dup_suppressed";
    retx_backoff = Stats.sample stats "net.retx_backoff_cycles";
    fate_of = None;
  }

let faults t = t.faults

let set_fault_chooser t c = t.fate_of <- c

let set_trace t trace = t.trace <- trace

let latency t ~src ~dst ~words =
  if src = dst then t.costs.Lcm_sim.Costs.msg_fixed
  else
    let hops = Topology.hops t.topology ~src ~dst in
    t.costs.Lcm_sim.Costs.msg_fixed
    + (hops * t.costs.Lcm_sim.Costs.msg_per_hop)
    + (words * t.costs.Lcm_sim.Costs.msg_per_word)

let transmission_time t ~words =
  max 1 (words * t.costs.Lcm_sim.Costs.msg_per_word)

(* The conservative lookahead bound: the smallest latency any message
   between two *distinct* nodes can have — msg_fixed plus the cheapest
   hop path in the topology plus one payload word.  No event a node emits
   now can affect another node sooner than this, which is exactly the
   horizon slack the PDES windowed driver may claim.  O(n^2) hop queries,
   computed once at machine construction. *)
let min_cross_latency t =
  if t.nnodes < 2 then t.costs.Lcm_sim.Costs.msg_fixed + 1
  else begin
    let min_hops = ref max_int in
    for src = 0 to t.nnodes - 1 do
      for dst = 0 to t.nnodes - 1 do
        if src <> dst then begin
          let h = Topology.hops t.topology ~src ~dst in
          if h < !min_hops then min_hops := h
        end
      done
    done;
    t.costs.Lcm_sim.Costs.msg_fixed
    + (!min_hops * t.costs.Lcm_sim.Costs.msg_per_hop)
    + t.costs.Lcm_sim.Costs.msg_per_word
  end

let tag_counter t tag =
  match Hashtbl.find_opt t.tag_counters tag with
  | Some h -> h
  | None ->
    let h = Stats.counter t.stats ("msg." ^ tag) in
    Hashtbl.add t.tag_counters tag h;
    h

let validate t ~src ~dst ~words ~at =
  if src < 0 || src >= t.nnodes then invalid_arg "Network.send: src out of range";
  if dst < 0 || dst >= t.nnodes then invalid_arg "Network.send: dst out of range";
  if words <= 0 then invalid_arg "Network.send: words must be positive";
  if at < 0 then invalid_arg "Network.send: at must be >= 0"

let count t ~words tag =
  Stats.Handle.incr t.msgs;
  Stats.Handle.add t.words_sent words;
  match tag with
  | Some tag -> Stats.Handle.incr (tag_counter t tag)
  | None -> ()

(* Preallocated delivery handler for the closure-based entry points: the
   event payload is the caller's continuation, the first int slot its
   arrival time.  One closed function serves every message in the run.
   The generalized [loopback]/[inject] below carry an arbitrary
   (handler, payload, int) triple instead, so callers with a
   preallocated handler (see [send_call]) pay no per-message allocation
   at all; the closure API is [h = deliver_call, p = k, x = 0].
   Tracing decides per message at send time: a traced send falls back to
   a closure that re-reads [t.trace] at delivery (it must emit Msg_recv
   with the message's identity, which the int slots cannot carry). *)
let deliver_call (k : arrival:int -> unit) arrival _unused = k ~arrival

(* Node-local traffic never touches the interconnect: it pays the fixed
   protocol handoff cost and neither occupies a channel nor suffers
   faults.  [h p arrival x] runs at delivery. *)
let loopback t ~src ~words ?tag ~at h p x =
  count t ~words tag;
  let lat = t.costs.Lcm_sim.Costs.msg_fixed in
  let arrival = max (at + lat) (Lcm_sim.Engine.now t.engine) in
  (* owner hint: a loopback delivery is the sender's own work, so under a
     sharded engine it stays on the sender's shard *)
  match t.trace with
  | None ->
    Lcm_sim.Engine.schedule_call t.engine ~owner:src ~at:arrival h p arrival x
  | Some tr ->
    let tag_name = Option.value tag ~default:"-" in
    Lcm_sim.Trace.emit tr ~time:(arrival - lat)
      (Lcm_sim.Trace.Msg_send { tag = tag_name; src; dst = src; words });
    Lcm_sim.Engine.schedule_owned t.engine ~owner:src ~at:arrival (fun () ->
        (match t.trace with
        | Some tr ->
          Lcm_sim.Trace.emit tr ~time:arrival
            (Lcm_sim.Trace.Msg_recv { tag = tag_name; src; dst = src; words })
        | None -> ());
        h p arrival x)

(* One physical copy onto the wire: latency, channel occupancy, trace.
   [h p arrival x] runs at delivery. *)
let inject t ~src ~dst ~words ~tag ~at h p x =
  count t ~words tag;
  let channel = (src * t.nnodes) + dst in
  (* FIFO with bandwidth: the channel stays occupied for the previous
     message's transmission time, so back-to-back messages arrive spaced
     by at least the earlier message's size — not a fixed 1 cycle. *)
  let earliest = Array.unsafe_get t.channel_free channel in
  let lat = latency t ~src ~dst ~words in
  let raw_arrival = at + lat in
  let arrival =
    (* The engine cannot schedule into the past; a sender's local clock can
       lag the engine when it reacts to an old event, so clamp. *)
    max (max raw_arrival earliest) (Lcm_sim.Engine.now t.engine)
  in
  let stall = arrival - raw_arrival in
  if stall > 0 then
    Stats.Handle.observe t.channel_stall (float_of_int stall);
  Array.unsafe_set t.channel_free channel (arrival + transmission_time t ~words);
  (* owner hint: delivery belongs to the destination node — under a sharded
     engine this is the cross-shard mailbox deposit of the conservative
     scheme when dst lives on another shard *)
  match t.trace with
  | None ->
    Lcm_sim.Engine.schedule_call t.engine ~owner:dst ~at:arrival h p arrival x
  | Some tr ->
    let tag_name = Option.value tag ~default:"-" in
    (* Stamp the send at the actual injection time: when the channel (or the
       engine clamp) delays the message, [at] would predate the link being
       free and the trace would show impossible overlaps. *)
    Lcm_sim.Trace.emit tr ~time:(arrival - lat)
      (Lcm_sim.Trace.Msg_send { tag = tag_name; src; dst; words });
    Lcm_sim.Engine.schedule_owned t.engine ~owner:dst ~at:arrival (fun () ->
        (match t.trace with
        | Some tr ->
          Lcm_sim.Trace.emit tr ~time:arrival
            (Lcm_sim.Trace.Msg_recv { tag = tag_name; src; dst; words })
        | None -> ());
        h p arrival x)

(* The lossy layer: decide each copy's fate from the plan's RNG stream,
   then inject the survivors.  Dropped copies are lost at injection — they
   never occupy the channel (the loss is modeled at the sender's network
   interface, keeping the surviving traffic's timing independent of how
   many ghosts preceded it).  Channel occupancy is monotone, so even
   jittered copies keep per-channel FIFO; only drops + retransmission can
   reorder, which the reliable layer's sequence numbers absorb. *)
let drop_copy t ~src ~dst ~words ~tag ~t_decide =
  Stats.Handle.incr t.h_drops;
  match t.trace with
  | Some tr ->
    Lcm_sim.Trace.emit tr ~time:t_decide
      (Lcm_sim.Trace.Msg_drop
         { tag = Option.value tag ~default:"-"; src; dst; words })
  | None -> ()

let faulty_send t (plan : Faults.t) ~src ~dst ~words ~tag ~at k =
  match t.fate_of with
  | Some choose -> (
    (* Deterministic fate injection: the chooser fully owns this copy's
       fate — a Dup injects two identical un-jittered copies (channel
       occupancy still spaces them), a Drop loses the copy at the
       sender's interface exactly like an RNG drop. *)
    let t_decide = max at (Lcm_sim.Engine.now t.engine) in
    match choose ~src ~dst ~tag with
    | Deliver -> inject t ~src ~dst ~words ~tag ~at deliver_call k 0
    | Drop -> drop_copy t ~src ~dst ~words ~tag ~t_decide
    | Dup ->
      Stats.Handle.incr t.h_dups;
      inject t ~src ~dst ~words ~tag ~at deliver_call k 0;
      inject t ~src ~dst ~words ~tag ~at deliver_call k 0)
  | None ->
  (* Straight-line per-copy decisions; the RNG draw order (drop1, dup,
     drop2, jit1, jit2) is part of the replay contract — fault patterns
     are a deterministic function of (workload, plan) and the stress
     fingerprints pin them. *)
  let t_decide = max at (Lcm_sim.Engine.now t.engine) in
  let down = Faults.link_down plan ~src ~dst ~at:t_decide in
  let drop1 = plan.drop > 0.0 && Rng.float t.frng 1.0 < plan.drop in
  let dup = plan.dup > 0.0 && Rng.float t.frng 1.0 < plan.dup in
  let drop2 = dup && plan.drop > 0.0 && Rng.float t.frng 1.0 < plan.drop in
  let jit1 = if plan.jitter > 0 then Rng.int t.frng (plan.jitter + 1) else 0 in
  let jit2 =
    if dup && plan.jitter > 0 then Rng.int t.frng (plan.jitter + 1) else 0
  in
  if drop1 || down then drop_copy t ~src ~dst ~words ~tag ~t_decide
  else inject t ~src ~dst ~words ~tag ~at:(at + jit1) deliver_call k 0;
  if dup then begin
    Stats.Handle.incr t.h_dups;
    if drop2 || down then drop_copy t ~src ~dst ~words ~tag ~t_decide
    else inject t ~src ~dst ~words ~tag ~at:(at + jit2) deliver_call k 0
  end

let send t ~src ~dst ~words ?tag ~at k =
  validate t ~src ~dst ~words ~at;
  if src = dst then loopback t ~src ~words ?tag ~at deliver_call k 0
  else (
    match t.faults with
    | None -> inject t ~src ~dst ~words ~tag ~at deliver_call k 0
    | Some plan -> faulty_send t plan ~src ~dst ~words ~tag ~at k)

(* Allocation-free variant: the caller supplies a preallocated handler
   plus a payload and an int rider, which travel in the pooled engine
   event ([h p arrival x] runs at delivery).  Faulty links fall back to
   a closure — a message can then have several in-flight copies, and
   correctness matters more than allocation on the stress
   configurations. *)
let send_call t ~src ~dst ~words ?tag ~at h p x =
  validate t ~src ~dst ~words ~at;
  if src = dst then loopback t ~src ~words ?tag ~at h p x
  else (
    match t.faults with
    | None -> inject t ~src ~dst ~words ~tag ~at h p x
    | Some plan ->
      faulty_send t plan ~src ~dst ~words ~tag ~at (fun ~arrival ->
          h p arrival x))

(* Reliable transport: sequence-numbered envelopes per channel, an ack per
   received copy (itself lossy), receiver-side dedup + in-order release,
   and sender-side timeout with exponential backoff up to the plan's retry
   cap.  With no fault plan this is exactly [send] — zero envelope
   overhead on the reliable-substrate configuration the paper assumes. *)
let send_reliable t ~src ~dst ~words ?tag ~at k =
  validate t ~src ~dst ~words ~at;
  if src = dst then loopback t ~src ~words ?tag ~at deliver_call k 0
  else
    let tag_name = Option.value tag ~default:"-" in
    match t.faults with
    | None -> inject t ~src ~dst ~words ~tag ~at deliver_call k 0
    | Some plan when not plan.retransmit ->
      (* diagnostic mode: lose messages for good; the engine watchdog (or a
         drained queue with suspended fibers) reports the stall *)
      faulty_send t plan ~src ~dst ~words ~tag ~at k
    | Some plan ->
      let chan = (src * t.nnodes) + dst in
      let seq = t.rel_next.(chan) in
      t.rel_next.(chan) <- seq + 1;
      let st = Lcm_util.Pool.acquire t.rel_pool in
      st.acked <- false;
      st.attempt <- 0;
      st.gen <- st.gen + 1;
      let gen = st.gen in
      let rto0 =
        match plan.rto with
        | Some r -> r
        | None ->
          (* a round trip (envelope + 1-word ack) with headroom for jitter
             and channel occupancy; a spurious retransmit is only wasted
             bandwidth (dedup absorbs it), so err short rather than long *)
          (2 * (latency t ~src ~dst ~words + latency t ~src:dst ~dst:src ~words:1))
          + (4 * plan.jitter)
          + (4 * transmission_time t ~words)
          + 16
      in
      let deliver ~arrival =
        (* Every received copy is acked — a duplicate means the previous
           ack was (or may have been) lost. *)
        faulty_send t plan ~src:dst ~dst:src ~words:1 ~tag:(Some "ack")
          ~at:arrival (fun ~arrival:_ ->
            (* the [gen] guard keeps a late duplicate's ack from writing
               into a recycled record after the stale timer released it *)
            if st.gen = gen then st.acked <- true;
            (* an ack landing is transport-level progress for the stall
               watchdog even when the payload copy was a suppressed dup *)
            Lcm_sim.Engine.notify_progress t.engine);
        let expected = t.rel_expected.(chan) in
        if seq < expected || Hashtbl.mem t.rel_held ((chan lsl 40) + seq) then
          Stats.Handle.incr t.h_dup_suppressed
        else if seq = expected then begin
          t.rel_expected.(chan) <- expected + 1;
          Lcm_sim.Engine.notify_progress t.engine;
          k ~arrival;
          let rec drain () =
            let nxt = t.rel_expected.(chan) in
            match Hashtbl.find_opt t.rel_held ((chan lsl 40) + nxt) with
            | Some run ->
              Hashtbl.remove t.rel_held ((chan lsl 40) + nxt);
              t.rel_expected.(chan) <- nxt + 1;
              run arrival;
              drain ()
            | None -> ()
          in
          drain ()
        end
        else Hashtbl.replace t.rel_held ((chan lsl 40) + seq) (fun a -> k ~arrival:a)
      in
      let rec transmit ~at =
        st.attempt <- st.attempt + 1;
        if st.attempt > 1 then begin
          Stats.Handle.incr t.h_retx;
          match t.trace with
          | Some tr ->
            Lcm_sim.Trace.emit tr
              ~time:(max at (Lcm_sim.Engine.now t.engine))
              (Lcm_sim.Trace.Msg_retx
                 { tag = tag_name; src; dst; words; attempt = st.attempt })
          | None -> ()
        end;
        faulty_send t plan ~src ~dst ~words ~tag ~at deliver;
        let backoff = rto0 lsl min (st.attempt - 1) 16 in
        let t_check =
          max at (Lcm_sim.Engine.now t.engine) + backoff
        in
        (* owner hint: the retransmission timer lives at the sender *)
        Lcm_sim.Engine.schedule_owned t.engine ~owner:src ~at:t_check (fun () ->
            if st.acked then begin
              (* A stale timer of a delivered message is evidence the run is
                 advancing; without this, a long-backoff timer outliving the
                 workload could trip the watchdog during the final drain.
                 Exactly one timer chain exists per message, so this stale
                 timer is the record's last owner-side reference: recycle. *)
              Lcm_sim.Engine.notify_progress t.engine;
              Lcm_util.Pool.release t.rel_pool st
            end
            else begin
              Stats.Handle.incr t.h_timeouts;
              if st.attempt > plan.max_retries then
                raise
                  (Net_unreachable
                     { src; dst; tag = tag_name; attempts = st.attempt })
              else begin
                Stats.Handle.observe t.retx_backoff (float_of_int backoff);
                transmit ~at:(Lcm_sim.Engine.now t.engine)
              end
            end)
      in
      transmit ~at

(* [send_call]'s reliable sibling.  Without a fault plan the reliable
   path IS the plain send, so the preallocated handler rides the pooled
   engine event directly; with one, the envelope machinery needs a
   per-message continuation anyway and the closure fallback costs
   nothing extra in proportion. *)
let send_reliable_call t ~src ~dst ~words ?tag ~at h p x =
  match t.faults with
  | None ->
    validate t ~src ~dst ~words ~at;
    if src = dst then loopback t ~src ~words ?tag ~at h p x
    else inject t ~src ~dst ~words ~tag ~at h p x
  | Some _ ->
    send_reliable t ~src ~dst ~words ?tag ~at (fun ~arrival -> h p arrival x)
