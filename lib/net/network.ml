type t = {
  engine : Lcm_sim.Engine.t;
  costs : Lcm_sim.Costs.t;
  stats : Lcm_util.Stats.t;
  topology : Topology.t;
  nnodes : int;
  last_delivery : (int * int, int) Hashtbl.t; (* channel -> last arrival *)
}

let create ~engine ~costs ~stats ~topology ~nnodes =
  { engine; costs; stats; topology; nnodes; last_delivery = Hashtbl.create 64 }

let latency t ~src ~dst ~words =
  let hops = Topology.hops t.topology ~src ~dst in
  t.costs.Lcm_sim.Costs.msg_fixed
  + (hops * t.costs.Lcm_sim.Costs.msg_per_hop)
  + (words * t.costs.Lcm_sim.Costs.msg_per_word)

let send t ~src ~dst ~words ?tag ~at k =
  if src < 0 || src >= t.nnodes then invalid_arg "Network.send: src out of range";
  if dst < 0 || dst >= t.nnodes then invalid_arg "Network.send: dst out of range";
  Lcm_util.Stats.incr t.stats "net.msgs";
  Lcm_util.Stats.add t.stats "net.words" words;
  (match tag with
  | Some tag -> Lcm_util.Stats.incr t.stats ("msg." ^ tag)
  | None -> ());
  let channel = (src, dst) in
  let earliest =
    match Hashtbl.find_opt t.last_delivery channel with
    | Some last -> last + 1 (* strict FIFO: never deliver two at once *)
    | None -> 0
  in
  let raw_arrival = at + latency t ~src ~dst ~words in
  let arrival =
    (* The engine cannot schedule into the past; a sender's local clock can
       lag the engine when it reacts to an old event, so clamp. *)
    max (max raw_arrival earliest) (Lcm_sim.Engine.now t.engine)
  in
  Hashtbl.replace t.last_delivery channel arrival;
  Lcm_sim.Engine.schedule t.engine ~at:arrival (fun () -> k ~arrival)
