type t = {
  engine : Lcm_sim.Engine.t;
  costs : Lcm_sim.Costs.t;
  stats : Lcm_util.Stats.t;
  topology : Topology.t;
  nnodes : int;
  channel_free : int array;
      (* channel (src * nnodes + dst) -> time the link is free again: the
         previous message's arrival plus its transmission time.  Flat
         array: every message send reads and writes exactly one slot, so a
         hashed pair key would be pure overhead. *)
  msgs : Lcm_util.Stats.Handle.counter;
  words_sent : Lcm_util.Stats.Handle.counter;
  channel_stall : Lcm_util.Stats.Handle.sample;
  tag_counters : (string, Lcm_util.Stats.Handle.counter) Hashtbl.t;
      (* memoized "msg.<tag>" handles; tags are a small fixed vocabulary *)
  mutable trace : Lcm_sim.Trace.t option;
}

let create ~engine ~costs ~stats ~topology ~nnodes =
  {
    engine;
    costs;
    stats;
    topology;
    nnodes;
    channel_free = Array.make (nnodes * nnodes) 0;
    msgs = Lcm_util.Stats.counter stats "net.msgs";
    words_sent = Lcm_util.Stats.counter stats "net.words";
    channel_stall = Lcm_util.Stats.sample stats "net.channel_stall_cycles";
    tag_counters = Hashtbl.create 32;
    trace = None;
  }

let set_trace t trace = t.trace <- trace

let latency t ~src ~dst ~words =
  let hops = Topology.hops t.topology ~src ~dst in
  t.costs.Lcm_sim.Costs.msg_fixed
  + (hops * t.costs.Lcm_sim.Costs.msg_per_hop)
  + (words * t.costs.Lcm_sim.Costs.msg_per_word)

let transmission_time t ~words =
  max 1 (words * t.costs.Lcm_sim.Costs.msg_per_word)

let tag_counter t tag =
  match Hashtbl.find_opt t.tag_counters tag with
  | Some h -> h
  | None ->
    let h = Lcm_util.Stats.counter t.stats ("msg." ^ tag) in
    Hashtbl.add t.tag_counters tag h;
    h

let send t ~src ~dst ~words ?tag ~at k =
  if src < 0 || src >= t.nnodes then invalid_arg "Network.send: src out of range";
  if dst < 0 || dst >= t.nnodes then invalid_arg "Network.send: dst out of range";
  Lcm_util.Stats.Handle.incr t.msgs;
  Lcm_util.Stats.Handle.add t.words_sent words;
  (match tag with
  | Some tag -> Lcm_util.Stats.Handle.incr (tag_counter t tag)
  | None -> ());
  let tag_name = Option.value tag ~default:"-" in
  let channel = (src * t.nnodes) + dst in
  (* FIFO with bandwidth: the channel stays occupied for the previous
     message's transmission time, so back-to-back messages arrive spaced
     by at least the earlier message's size — not a fixed 1 cycle. *)
  let earliest = Array.unsafe_get t.channel_free channel in
  let lat = latency t ~src ~dst ~words in
  let raw_arrival = at + lat in
  let arrival =
    (* The engine cannot schedule into the past; a sender's local clock can
       lag the engine when it reacts to an old event, so clamp. *)
    max (max raw_arrival earliest) (Lcm_sim.Engine.now t.engine)
  in
  let stall = arrival - raw_arrival in
  if stall > 0 then
    Lcm_util.Stats.Handle.observe t.channel_stall (float_of_int stall);
  (match t.trace with
  | Some tr ->
    (* Stamp the send at the actual injection time: when the channel (or the
       engine clamp) delays the message, [at] would predate the link being
       free and the trace would show impossible overlaps. *)
    Lcm_sim.Trace.emit tr ~time:(arrival - lat)
      (Lcm_sim.Trace.Msg_send { tag = tag_name; src; dst; words })
  | None -> ());
  Array.unsafe_set t.channel_free channel (arrival + transmission_time t ~words);
  Lcm_sim.Engine.schedule t.engine ~at:arrival (fun () ->
      (match t.trace with
      | Some tr ->
        Lcm_sim.Trace.emit tr ~time:arrival
          (Lcm_sim.Trace.Msg_recv { tag = tag_name; src; dst; words })
      | None -> ());
      k ~arrival)
