type t =
  | Crossbar
  | Mesh2d of { cols : int }
  | Fat_tree of { arity : int }

let hops topo ~src ~dst =
  if src < 0 || dst < 0 then invalid_arg "Topology.hops: negative node id";
  if src = dst then 0
  else
    match topo with
    | Crossbar -> 1
    | Mesh2d { cols } ->
      if cols <= 0 then invalid_arg "Topology.hops: cols must be positive";
      let sx = src mod cols and sy = src / cols in
      let dx = dst mod cols and dy = dst / cols in
      abs (sx - dx) + abs (sy - dy)
    | Fat_tree { arity } ->
      if arity <= 1 then invalid_arg "Topology.hops: arity must be >= 2";
      (* Height of the lowest common ancestor: divide both leaf ids by the
         arity until they fall into the same subtree. *)
      let rec lca_height a b h = if a = b then h else lca_height (a / arity) (b / arity) (h + 1) in
      2 * lca_height src dst 0

let spellings = "crossbar, mesh:<cols> or fattree:<arity>"

let of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "crossbar" ] -> Ok Crossbar
  | [ "mesh"; c ] -> (
    match int_of_string_opt c with
    | Some cols when cols > 0 -> Ok (Mesh2d { cols })
    | Some _ | None -> Error "mesh: expected positive column count")
  | [ "fattree"; a ] -> (
    match int_of_string_opt a with
    | Some arity when arity > 1 -> Ok (Fat_tree { arity })
    | Some _ | None -> Error "fattree: expected arity >= 2")
  | _ -> Error (Printf.sprintf "unknown topology %S (expected %s)" s spellings)

let to_string = function
  | Crossbar -> "crossbar"
  | Mesh2d { cols } -> Printf.sprintf "mesh:%d" cols
  | Fat_tree { arity } -> Printf.sprintf "fattree:%d" arity
