(** Point-to-point message transport between simulated nodes.

    Messages are delivered as callbacks run at their arrival time on the
    simulation engine.  Delivery preserves FIFO order per (src, dst)
    channel — the property the coherence protocols rely on so that, e.g.,
    a flush followed by a re-fetch from the same node reaches the home in
    order.  There is no global ordering across channels.

    Latency model: [msg_fixed + hops * msg_per_hop + words * msg_per_word]
    cycles (see {!Lcm_sim.Costs}).  Bandwidth model: a channel remains
    occupied for each message's {!transmission_time}, so consecutive
    messages on one channel arrive spaced by at least the earlier
    message's transmission time — back-to-back large messages serialize by
    size, not by a fixed cycle. *)

type t

val create :
  engine:Lcm_sim.Engine.t ->
  costs:Lcm_sim.Costs.t ->
  stats:Lcm_util.Stats.t ->
  topology:Topology.t ->
  nnodes:int ->
  t

val set_trace : t -> Lcm_sim.Trace.t option -> unit
(** Attach (or detach) a trace ring; when set, every send emits
    {!Lcm_sim.Trace.Msg_send} at the {e actual} injection time — the
    arrival minus the uncontended latency, which is later than the
    caller's [at] when the channel is occupied or the engine clock has
    passed [at] — and {!Lcm_sim.Trace.Msg_recv} at arrival. *)

val send :
  t ->
  src:int ->
  dst:int ->
  words:int ->
  ?tag:string ->
  at:int ->
  (arrival:int -> unit) ->
  unit
(** [send n ~src ~dst ~words ~tag ~at k] injects a message of [words]
    payload words at local time [at] (the sender's clock, which may be
    ahead of the engine clock) and runs [k ~arrival] at the computed
    arrival time.  [tag] labels the message class in statistics
    (["msg.<tag>"]); every send also bumps ["net.msgs"] and
    ["net.words"].  When channel occupancy or the engine clamp delays the
    message past its uncontended arrival, the delay is recorded in the
    ["net.channel_stall_cycles"] sample (one observation per stalled
    message).
    @raise Invalid_argument if [src] or [dst] is out of range. *)

val latency : t -> src:int -> dst:int -> words:int -> int
(** The uncontended latency the model assigns to such a message. *)

val transmission_time : t -> words:int -> int
(** [max 1 (words * msg_per_word)] — how long a message of [words] keeps
    its channel occupied after its own arrival. *)
