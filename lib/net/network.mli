(** Point-to-point message transport between simulated nodes.

    Messages are delivered as callbacks run at their arrival time on the
    simulation engine.  Delivery preserves FIFO order per (src, dst)
    channel — the property the coherence protocols rely on so that, e.g.,
    a flush followed by a re-fetch from the same node reaches the home in
    order.  There is no global ordering across channels.

    Latency model: [msg_fixed + hops * msg_per_hop + words * msg_per_word]
    cycles (see {!Lcm_sim.Costs}).  Bandwidth model: a channel remains
    occupied for each message's {!transmission_time}, so consecutive
    messages on one channel arrive spaced by at least the earlier
    message's transmission time — back-to-back large messages serialize by
    size, not by a fixed cycle.

    {b Loopback.}  A message with [src = dst] never touches the
    interconnect: it is delivered at [at + msg_fixed] (clamped to the
    engine clock), modeling the fixed protocol-handoff cost only — no
    per-hop or per-word latency terms, no channel occupancy, and no fault
    injection.  It still counts in ["net.msgs"]/["net.words"]/["msg.<tag>"].

    {b Fault injection.}  A network created with a {!Faults} plan passes
    every non-loopback {!send} through a lossy layer that may drop a
    message, duplicate it, delay it by bounded jitter, or black-hole it
    inside a link-down window — all decided from one {!Lcm_util.Rng}
    stream seeded by the plan, so a (plan, workload) pair replays
    bit-identically.  Dropped copies are lost at the sender's interface:
    they bump ["fault.drops"] and emit {!Lcm_sim.Trace.Msg_drop}, but do
    not occupy the channel or count as sent messages.  {!send_reliable}
    layers exactly-once, in-order delivery on top. *)

type t

exception
  Net_unreachable of { src : int; dst : int; tag : string; attempts : int }
(** Raised (out of the engine loop) when a reliable send exhausted its
    retransmission budget without an acknowledgement. *)

val create :
  ?faults:Faults.t ->
  engine:Lcm_sim.Engine.t ->
  costs:Lcm_sim.Costs.t ->
  stats:Lcm_util.Stats.t ->
  topology:Topology.t ->
  nnodes:int ->
  unit ->
  t
(** [faults] installs a fault plan (default: none — the reliable CM-5-style
    transport the paper assumes, with {!send_reliable} equal to {!send}). *)

val faults : t -> Faults.t option
(** The fault plan this network was created with, if any. *)

type fate = Deliver | Drop | Dup
(** The fate of one physical message copy under {!set_fault_chooser}. *)

val set_fault_chooser :
  t -> (src:int -> dst:int -> tag:string option -> fate) option -> unit
(** [set_fault_chooser n (Some choose)] replaces the fault plan's RNG
    stream with a deterministic per-copy oracle: every copy a fault plan
    would subject to probabilistic drop/dup/jitter instead asks [choose]
    for its fate.  No RNG is drawn, no jitter is applied, and down
    windows are ignored — the chooser is the single source of fault
    truth, which is what makes a model checker's recorded fault choices
    replayable.  [Dup] injects two identical copies (channel occupancy
    still spaces them); [Drop] loses the copy at the sender's interface,
    counting in ["fault.drops"] exactly like an RNG drop.  The chooser
    is only consulted on paths a fault plan enables, i.e. the network
    must still be created with [?faults] (typically a zero-probability
    plan with retransmission on, so the reliable envelope machinery —
    acks, dedup, timers — is live and drops are eventually repaired). *)

val set_trace : t -> Lcm_sim.Trace.t option -> unit
(** Attach (or detach) a trace ring; when set, every send emits
    {!Lcm_sim.Trace.Msg_send} at the {e actual} injection time — the
    arrival minus the uncontended latency, which is later than the
    caller's [at] when the channel is occupied or the engine clock has
    passed [at] — and {!Lcm_sim.Trace.Msg_recv} at arrival.  Under a fault
    plan, dropped copies emit {!Lcm_sim.Trace.Msg_drop} and
    retransmissions {!Lcm_sim.Trace.Msg_retx}. *)

val send :
  t ->
  src:int ->
  dst:int ->
  words:int ->
  ?tag:string ->
  at:int ->
  (arrival:int -> unit) ->
  unit
(** [send n ~src ~dst ~words ~tag ~at k] injects a message of [words]
    payload words at local time [at] (the sender's clock, which may be
    ahead of the engine clock) and runs [k ~arrival] at the computed
    arrival time.  [tag] labels the message class in statistics
    (["msg.<tag>"]); every send also bumps ["net.msgs"] and
    ["net.words"].  When channel occupancy or the engine clamp delays the
    message past its uncontended arrival, the delay is recorded in the
    ["net.channel_stall_cycles"] sample (one observation per stalled
    message).  Under a fault plan this path is fire-and-forget: [k] may
    run zero times (drop, link down) or twice (duplication).
    @raise Invalid_argument if [src] or [dst] is out of range, [words] is
    not positive, or [at] is negative. *)

val send_reliable :
  t ->
  src:int ->
  dst:int ->
  words:int ->
  ?tag:string ->
  at:int ->
  (arrival:int -> unit) ->
  unit
(** Like {!send}, but [k] runs {e exactly once}, and messages on one
    channel are released to the application in send order even when fault
    injection drops or duplicates copies.  Implementation: per-channel
    sequence numbers, a receiver-side dedup/reorder buffer (suppressed
    duplicates bump ["fault.dup_suppressed"]), an acknowledgement (1-word
    ["ack"] message, itself subject to faults) per received copy, and a
    sender-side engine timer with exponential backoff that retransmits
    unacknowledged messages — bumping ["fault.retransmits"] /
    ["fault.timeouts"] and observing the ["net.retx_backoff_cycles"]
    sample — until the plan's retry cap.
    Without a fault plan (or with [src = dst]) this is exactly {!send}: no
    envelopes, no acks, no timers.  With a plan whose [retransmit] is
    false it degrades to the lossy fire-and-forget path.
    @raise Net_unreachable once a message exceeds [max_retries]
    retransmissions (raised inside the engine loop, propagating out of
    {!Lcm_sim.Engine.run}). *)

val send_call :
  t ->
  src:int ->
  dst:int ->
  words:int ->
  ?tag:string ->
  at:int ->
  ('a -> int -> int -> unit) ->
  'a ->
  int ->
  unit
(** [send_call n ~src ~dst ~words ?tag ~at h p x] is {!send} for callers
    with a {e preallocated} delivery handler: [h p arrival x] runs at the
    computed arrival time, the triple riding the pooled engine event, so
    an untraced fault-free message allocates nothing.  [p] is the
    handler's payload, [x] an integer rider (a block number, a node id).
    Tracing or fault injection falls back to an equivalent closure.
    Timing, statistics, delivery multiplicity and error behaviour are
    exactly {!send}'s. *)

val send_reliable_call :
  t ->
  src:int ->
  dst:int ->
  words:int ->
  ?tag:string ->
  at:int ->
  ('a -> int -> int -> unit) ->
  'a ->
  int ->
  unit
(** {!send_reliable} with {!send_call}'s calling convention: exactly-once
    in-order delivery of [h p arrival x].  Allocation-free without a
    fault plan; with one, the envelope machinery wraps the triple in a
    closure (it needs a per-message continuation regardless). *)

val latency : t -> src:int -> dst:int -> words:int -> int
(** The uncontended latency the model assigns to such a message
    ([msg_fixed] alone when [src = dst]). *)

val transmission_time : t -> words:int -> int
(** [max 1 (words * msg_per_word)] — how long a message of [words] keeps
    its channel occupied after its own arrival. *)

val min_cross_latency : t -> int
(** The smallest latency any message between two {e distinct} nodes can
    have under this network's cost model and topology:
    [msg_fixed + min-hops * msg_per_hop + msg_per_word] (one payload word).
    This is the conservative lookahead of the parallel engine
    ({!Lcm_sim.Pdes}): no event a node emits now can affect another node
    sooner.  On a single-node network (no cross traffic possible) it is
    [msg_fixed + 1]. *)
