(** Point-to-point message transport between simulated nodes.

    Messages are delivered as callbacks run at their arrival time on the
    simulation engine.  Delivery preserves FIFO order per (src, dst)
    channel — the property the coherence protocols rely on so that, e.g.,
    a flush followed by a re-fetch from the same node reaches the home in
    order.  There is no global ordering across channels.

    Latency model: [msg_fixed + hops * msg_per_hop + words * msg_per_word]
    cycles (see {!Lcm_sim.Costs}), plus an optional per-channel serial
    occupancy that models link bandwidth contention. *)

type t

val create :
  engine:Lcm_sim.Engine.t ->
  costs:Lcm_sim.Costs.t ->
  stats:Lcm_util.Stats.t ->
  topology:Topology.t ->
  nnodes:int ->
  t

val send :
  t ->
  src:int ->
  dst:int ->
  words:int ->
  ?tag:string ->
  at:int ->
  (arrival:int -> unit) ->
  unit
(** [send n ~src ~dst ~words ~tag ~at k] injects a message of [words]
    payload words at local time [at] (the sender's clock, which may be
    ahead of the engine clock) and runs [k ~arrival] at the computed
    arrival time.  [tag] labels the message class in statistics
    (["msg.<tag>"]); every send also bumps ["net.msgs"] and
    ["net.words"].
    @raise Invalid_argument if [src] or [dst] is out of range. *)

val latency : t -> src:int -> dst:int -> words:int -> int
(** The uncontended latency the model assigns to such a message. *)
