(* lcm_sim — run any benchmark under any memory system.

     lcm_sim stencil --system mcc --schedule random:5 --size 256 --iters 20
     lcm_sim adaptive --system stache --nodes 16 --stats
     lcm_sim reduce --variant serialized
     lcm_sim nbody --refresh 4

   Prints the Bench_result line; --stats dumps every counter. *)

open Cmdliner
open Lcm_harness
open Lcm_apps

let system_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Config.system_of_string s) in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s.Config.label)

let schedule_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Lcm_cstar.Schedule.of_string s)
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Lcm_cstar.Schedule.to_string s))

let topology_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Lcm_net.Topology.of_string s) in
  Arg.conv (parse, fun ppf t -> Format.pp_print_string ppf (Lcm_net.Topology.to_string t))

let system_arg =
  Arg.(value & opt system_conv Config.lcm_mcc
       & info [ "system"; "protocol"; "p" ] ~docv:"SYSTEM"
           ~doc:(Printf.sprintf "Memory system: %s."
                   (String.concat ", " Lcm_core.Policy.names)))

let schedule_arg =
  Arg.(value & opt schedule_conv Lcm_cstar.Schedule.Static
       & info [ "schedule"; "s" ] ~docv:"SCHED"
           ~doc:"Invocation schedule: static, rotate or random:SEED.")

let nodes_arg =
  Arg.(value & opt int 32 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Processor count.")

let topology_arg =
  Arg.(value & opt topology_conv (Lcm_net.Topology.Fat_tree { arity = 4 })
       & info [ "topology" ] ~docv:"TOPO" ~doc:"crossbar, mesh:COLS or fattree:ARITY.")

let size_arg default =
  Arg.(value & opt int default & info [ "size" ] ~docv:"SIZE" ~doc:"Problem size.")

let iters_arg default =
  Arg.(value & opt int default & info [ "iters" ] ~docv:"ITERS" ~doc:"Iterations.")

let capacity_arg =
  Arg.(value & opt (some int) None
       & info [ "capacity" ] ~docv:"BLOCKS" ~doc:"Finite per-node cache, in blocks.")

let barrier_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Lcm_core.Barrier.of_string s) in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Lcm_core.Barrier.to_string b))

let barrier_arg =
  Arg.(value & opt barrier_conv Lcm_core.Barrier.Constant
       & info [ "barrier" ] ~docv:"STYLE"
           ~doc:"Reconciliation barrier: constant, flat or tree:ARITY.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Dump all simulation counters.")

let trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Record a protocol event trace and print the tail.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the recorded trace as Chrome trace_event JSON to \
                 $(docv) — open in chrome://tracing or Perfetto.  Implies \
                 $(b,--trace).")

let trace_cap_arg =
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok n
      | Some _ -> Error (`Msg "trace capacity must be positive")
      | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt positive_int 262144
       & info [ "trace-cap" ] ~docv:"N"
           ~doc:"Trace ring capacity; once full, the oldest events are \
                 evicted.")

let phases_arg =
  Arg.(value & flag
       & info [ "phases" ] ~doc:"Print a per-parallel-phase metrics table.")

let paper_arg =
  Arg.(value & flag & info [ "paper-scale" ] ~doc:"Use the paper's problem sizes.")

(* --fault-rate/--fault-seed/--fault-profile combine into one optional
   fault plan; rate 0 (the default) keeps the interconnect reliable. *)
let fault_rate_arg =
  Arg.(value & opt float 0.0
       & info [ "fault-rate" ] ~docv:"P"
           ~doc:"Inject deterministic network faults at intensity $(docv) \
                 in [0,1] (0 disables).  Shape comes from \
                 $(b,--fault-profile); replay with the same \
                 $(b,--fault-seed).")

let fault_seed_arg =
  Arg.(value & opt int 7
       & info [ "fault-seed" ] ~docv:"S"
           ~doc:"Seed for the fault decision stream — a (profile, rate, \
                 seed) triple replays bit-identically.")

let fault_profile_arg =
  Arg.(value & opt string "drop"
       & info [ "fault-profile" ] ~docv:"NAME"
           ~doc:"Fault plan shape: drop, dup, jitter, flap, chaos, or the \
                 diagnostic drop-noretx (retransmission off — expect a \
                 typed stall instead of silent data loss).")

let faults_term =
  let build rate seed profile =
    if rate < 0.0 then
      `Error (false, Printf.sprintf "fault rate %g not in [0,1]" rate)
    else if rate = 0.0 then `Ok None
    else
      match Lcm_net.Faults.of_profile profile ~rate ~seed with
      | Ok plan -> `Ok (Some plan)
      | Error e -> `Error (false, e)
  in
  Term.(ret (const build $ fault_rate_arg $ fault_seed_arg $ fault_profile_arg))

let make_runtime ?barrier ?faults system schedule nodes topology capacity =
  let machine =
    {
      Config.default_machine with
      Config.nnodes = nodes;
      topology;
      capacity_blocks = capacity;
      faults;
    }
  in
  Config.make_runtime ?barrier machine system ~schedule

let report rt dump_stats (r : Bench_result.t) =
  Format.printf "%a@." Bench_result.pp r;
  if dump_stats then begin
    Format.printf "%a" Lcm_util.Stats.pp (Lcm_cstar.Runtime.stats rt);
    (* PDES window-shape counters live outside the run's stats registry
       (they describe the host-side drive, and the registry digest is
       pinned jobs-invariant); surface them here when sharding is on. *)
    match Lcm_tempest.Machine.pdes (Lcm_cstar.Runtime.machine rt) with
    | None -> ()
    | Some p ->
      let c = Lcm_sim.Pdes.counters p in
      Format.printf
        "pdes: shards=%d lookahead=%d windows=%d null_msgs=%d \
         cross_shard=%d lookahead_violations=%d horizon_stalls=%d \
         max_window=%d avg_window=%.1f@."
        (Lcm_sim.Pdes.shards p) (Lcm_sim.Pdes.lookahead p) c.Lcm_sim.Pdes.windows
        c.Lcm_sim.Pdes.null_msgs c.Lcm_sim.Pdes.cross_shard_msgs
        c.Lcm_sim.Pdes.lookahead_violations c.Lcm_sim.Pdes.horizon_stalls
        c.Lcm_sim.Pdes.max_window_events
        (if c.Lcm_sim.Pdes.windows = 0 then 0.
         else
           float_of_int c.Lcm_sim.Pdes.window_events_total
           /. float_of_int c.Lcm_sim.Pdes.windows)
  end

(* --jobs N on a single benchmark run: shard the simulation itself across
   N domains (conservative windowed PDES; see DESIGN.md §8).  Results are
   bit-identical at any N; 0 = auto (recommended domain count).  Distinct
   from the sweep/stress --jobs, which runs whole cells in parallel. *)
let run_jobs_arg =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ -> Error (`Msg "jobs must be >= 0 (0 = auto)")
    | None -> Error (`Msg "jobs must be an integer")
  in
  let run_jobs_conv = Arg.conv (parse, Format.pp_print_int) in
  Arg.(
    value & opt run_jobs_conv 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard this run's event queue across $(docv) domains with the \
           conservative parallel driver (0 = auto).  Event order — and \
           every result, counter and trace — is bit-identical at any \
           $(docv).")

(* Arm tracing/phase logging before a run; [finish_observability] reports
   or exports what was captured afterwards. *)
let setup_observability rt ~trace ~trace_out ~trace_cap ~phases =
  if trace || trace_out <> None then
    Lcm_tempest.Machine.enable_trace ~capacity:trace_cap
      (Lcm_cstar.Runtime.machine rt);
  if phases then Lcm_cstar.Runtime.enable_phase_log rt

let finish_observability rt ~trace ~trace_out ~phases =
  (if trace || trace_out <> None then
     let events = Lcm_tempest.Machine.trace_events (Lcm_cstar.Runtime.machine rt) in
     let recorded = List.length events in
     match trace_out with
     | Some path ->
       Traceview.export_file ~path events;
       Printf.printf "trace: %d events -> %s\n" recorded path
     | None ->
       let tail =
         let dumped = Lcm_tempest.Machine.trace_dump (Lcm_cstar.Runtime.machine rt) in
         let len = List.length dumped in
         if len <= 20 then dumped
         else List.filteri (fun i _ -> i >= len - 20) dumped
       in
       Printf.printf "trace: %d events retained; tail:\n" recorded;
       List.iter (fun l -> Printf.printf "  %s\n" l) tail);
  if phases then
    print_string (Phases.render (Phases.of_log (Lcm_cstar.Runtime.phase_log rt)))

let simple_bench name ~default_size ~default_iters ~run_fn =
  let run system schedule nodes topology capacity barrier faults jobs size
      iters stats paper trace trace_out trace_cap phases =
    (* The runtime builds its machine internally, so --jobs rides the
       ambient (the same pattern budgets use). *)
    Lcm_sim.Pdes.with_jobs ~jobs (fun () ->
        let rt =
          make_runtime ~barrier ?faults system schedule nodes topology capacity
        in
        setup_observability rt ~trace ~trace_out ~trace_cap ~phases;
        report rt stats (run_fn rt ~size ~iters ~paper);
        finish_observability rt ~trace ~trace_out ~phases)
  in
  let term =
    Term.(
      const run $ system_arg $ schedule_arg $ nodes_arg $ topology_arg
      $ capacity_arg $ barrier_arg $ faults_term $ run_jobs_arg
      $ size_arg default_size $ iters_arg default_iters $ stats_arg
      $ paper_arg $ trace_arg $ trace_out_arg $ trace_cap_arg $ phases_arg)
  in
  Cmd.v (Cmd.info name ~doc:(Printf.sprintf "Run the %s benchmark." name)) term

let stencil_cmd =
  simple_bench "stencil" ~default_size:128 ~default_iters:10
    ~run_fn:(fun rt ~size ~iters ~paper ->
      let p =
        if paper then Stencil.paper
        else { Stencil.n = size; iters; work_per_cell = 4 }
      in
      Stencil.run rt p)

let threshold_cmd =
  simple_bench "threshold" ~default_size:128 ~default_iters:10
    ~run_fn:(fun rt ~size ~iters ~paper ->
      let p =
        if paper then Threshold.paper
        else { Threshold.n = size; iters; threshold = 0.5; work_per_cell = 4 }
      in
      Threshold.run rt p)

let adaptive_cmd =
  simple_bench "adaptive" ~default_size:32 ~default_iters:16
    ~run_fn:(fun rt ~size ~iters ~paper ->
      let p =
        if paper then Adaptive.paper
        else
          {
            Adaptive.n = size;
            iters;
            max_depth = 3;
            subdiv_threshold = 2.0;
            arena_per_node = 4096;
            work_per_cell = 6;
          }
      in
      Adaptive.run rt p)

let sor_cmd =
  simple_bench "sor" ~default_size:50 ~default_iters:8
    ~run_fn:(fun rt ~size ~iters ~paper ->
      ignore paper;
      Sor.run rt { Sor.n = size; iters; omega = 1.5; work_per_cell = 4 })

let unstructured_cmd =
  simple_bench "unstructured" ~default_size:256 ~default_iters:64
    ~run_fn:(fun rt ~size ~iters ~paper ->
      let p =
        if paper then Unstructured.paper
        else
          { Unstructured.nodes = size; edges = size * 4; iters; seed = 11; work_per_node = 6 }
      in
      Unstructured.run rt p)

let reduce_cmd =
  let variant_conv =
    let parse = function
      | "rsm" | "rsm-reconcile" -> Ok `Rsm_reconcile
      | "manual" | "manual-partials" -> Ok `Manual_partials
      | "serialized" -> Ok `Serialized
      | s -> Error (`Msg (Printf.sprintf "unknown variant %S" s))
    in
    Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (Reduce_demo.variant_name v))
  in
  let variant_arg =
    Arg.(value & opt variant_conv `Rsm_reconcile
         & info [ "variant" ] ~docv:"V" ~doc:"rsm, manual or serialized.")
  in
  let run variant nodes topology size stats =
    let system =
      match variant with `Rsm_reconcile -> Config.lcm_mcc | _ -> Config.stache
    in
    let rt = make_runtime system Lcm_cstar.Schedule.Static nodes topology None in
    report rt stats (Reduce_demo.run rt variant { Reduce_demo.n = size; per_add_work = 2 })
  in
  Cmd.v
    (Cmd.info "reduce" ~doc:"Global-reduction demo (paper section 7.1).")
    Term.(const run $ variant_arg $ nodes_arg $ topology_arg $ size_arg 8192 $ stats_arg)

let false_sharing_cmd =
  let run system nodes topology size iters stats =
    let rt = make_runtime system Lcm_cstar.Schedule.Static nodes topology None in
    report rt stats (False_sharing.run rt { False_sharing.blocks = size; rounds = iters })
  in
  Cmd.v
    (Cmd.info "false-sharing" ~doc:"False-sharing demo (paper section 7.4).")
    Term.(
      const run $ system_arg $ nodes_arg $ topology_arg $ size_arg 64
      $ iters_arg 20 $ stats_arg)

let nbody_cmd =
  let refresh_arg =
    Arg.(value & opt (some int) None
         & info [ "refresh" ] ~docv:"K"
             ~doc:"Refresh stale copies every K iterations (omit for fresh).")
  in
  let run refresh nodes topology size iters stats =
    let rt = make_runtime Config.lcm_mcc Lcm_cstar.Schedule.Static nodes topology None in
    let mode = match refresh with None -> `Fresh | Some k -> `Stale k in
    report rt stats
      (Nbody_stale.run rt mode { Nbody_stale.bodies = size; iters; work_per_body = 2 })
  in
  Cmd.v
    (Cmd.info "nbody" ~doc:"Stale-data demo (paper section 7.5).")
    Term.(
      const run $ refresh_arg $ nodes_arg $ topology_arg $ size_arg 512
      $ iters_arg 16 $ stats_arg)

let synthetic_cmd =
  let sharing_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (Lcm_apps.Synthetic.sharing_of_string s) in
    Arg.conv
      (parse, fun ppf s -> Format.pp_print_string ppf (Lcm_apps.Synthetic.sharing_to_string s))
  in
  let sharing_arg =
    Arg.(value & opt sharing_conv `Neighbour
         & info [ "sharing" ] ~docv:"PATTERN"
             ~doc:"private, neighbour, random or hot:BLOCKS.")
  in
  let reads_arg =
    Arg.(value & opt float 0.75
         & info [ "reads" ] ~docv:"FRACTION" ~doc:"Fraction of ops that read.")
  in
  let run system schedule nodes topology faults jobs sharing reads size iters
      stats trace trace_out trace_cap phases =
    Lcm_sim.Pdes.with_jobs ~jobs (fun () ->
        let rt = make_runtime ?faults system schedule nodes topology None in
        setup_observability rt ~trace ~trace_out ~trace_cap ~phases;
        let p =
          {
            Synthetic.default with
            Synthetic.blocks_per_node = size;
            phases = iters;
            sharing;
            read_fraction = reads;
          }
        in
        report rt stats (Synthetic.run rt p);
        finish_observability rt ~trace ~trace_out ~phases)
  in
  Cmd.v
    (Cmd.info "synthetic" ~doc:"Configurable synthetic sharing workload.")
    Term.(
      const run $ system_arg $ schedule_arg $ nodes_arg $ topology_arg
      $ faults_term $ run_jobs_arg $ sharing_arg $ reads_arg $ size_arg 8
      $ iters_arg 4 $ stats_arg $ trace_arg $ trace_out_arg $ trace_cap_arg
      $ phases_arg)

let info_cmd =
  let run () =
    let m = Config.default_machine in
    let c = m.Config.costs in
    Printf.printf "default machine: %d nodes, %d-word blocks, topology %s\n"
      m.Config.nnodes m.Config.words_per_block
      (Lcm_net.Topology.to_string m.Config.topology);
    Printf.printf "systems:\n";
    List.iter
      (fun (i : Lcm_core.Policy.info) ->
        let spellings =
          String.concat "|" (i.Lcm_core.Policy.policy.Lcm_core.Policy.name
                             :: i.Lcm_core.Policy.aliases)
        in
        Printf.printf "  %-28s %s\n" spellings i.Lcm_core.Policy.summary)
      Lcm_core.Policy.all;
    Printf.printf "\n";
    Printf.printf "cost model (cycles):\n";
    List.iter
      (fun (k, v) -> Printf.printf "  %-22s %d\n" k v)
      [
        ("cpu_op", c.Lcm_sim.Costs.cpu_op);
        ("compute_unit", c.Lcm_sim.Costs.compute_unit);
        ("fault_trap", c.Lcm_sim.Costs.fault_trap);
        ("handler_occupancy", c.Lcm_sim.Costs.handler_occupancy);
        ("msg_fixed", c.Lcm_sim.Costs.msg_fixed);
        ("msg_per_hop", c.Lcm_sim.Costs.msg_per_hop);
        ("msg_per_word", c.Lcm_sim.Costs.msg_per_word);
        ("block_install", c.Lcm_sim.Costs.block_install);
        ("hw_miss", c.Lcm_sim.Costs.hw_miss);
        ("local_copy", c.Lcm_sim.Costs.local_copy);
        ("barrier_base", c.Lcm_sim.Costs.barrier_base);
        ("barrier_per_node", c.Lcm_sim.Costs.barrier_per_node);
        ("sched_dequeue", c.Lcm_sim.Costs.sched_dequeue);
        ("invocation_overhead", c.Lcm_sim.Costs.invocation_overhead);
      ]
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print the default machine and cost model.")
    Term.(const run $ const ())

(* --jobs N: worker domains for sweeps.  0 = auto (one per recommended
   domain); clamped to >= 1.  Default 1 keeps runs deterministic-sequential. *)
let jobs_arg =
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | Some _ -> Error (`Msg "jobs must be >= 0 (0 = auto)")
      | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt jobs_conv 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the sweep: 1 (default) runs \
                 deterministic-sequential on the calling domain, 0 picks \
                 one worker per recommended host domain, N>1 uses N \
                 domains.  Results are bit-identical at any job count.")

let experiments_cmd =
  let module Fleet = Lcm_fleet.Fleet in
  let scale_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (Experiments.scale_of_string s) in
    Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Experiments.scale_to_string s))
  in
  let scale_arg =
    Arg.(value & opt scale_conv Experiments.Quick
         & info [ "scale" ] ~docv:"SCALE" ~doc:"tiny, quick or paper.")
  in
  let suite_arg =
    let suite_conv =
      let parse s =
        let s = String.lowercase_ascii (String.trim s) in
        if s = "all" || s = "ablations" || s = "figures"
           || List.mem_assoc s Experiments.families
        then Ok s
        else
          Error
            (`Msg
              (Printf.sprintf "unknown suite %S; pick all, figures, ablations or one of: %s"
                 s
                 (String.concat ", " (List.map fst Experiments.families))))
      in
      Arg.conv (parse, Format.pp_print_string)
    in
    Arg.(value & opt suite_conv "figures"
         & info [ "suite" ] ~docv:"SUITE"
             ~doc:"Which cell families to sweep: $(b,figures) (figure2 + \
                   figure3), $(b,ablations), $(b,all), or a single family \
                   name (e.g. figure2, barrier, topology).")
  in
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok n
      | Some _ -> Error (`Msg "must be positive")
      | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let positive_float =
    let parse s =
      match float_of_string_opt s with
      | Some f when f > 0.0 -> Ok f
      | Some _ -> Error (`Msg "must be positive")
      | None -> Error (`Msg (Printf.sprintf "invalid number %S" s))
    in
    Arg.conv (parse, Format.pp_print_float)
  in
  let max_events_arg =
    Arg.(value & opt (some positive_int) None
         & info [ "max-events" ] ~docv:"N"
             ~doc:"Per-cell simulated-event budget; a cell exceeding it is \
                   reported $(b,timed-out) at a deterministic simulated \
                   point and the sweep continues.")
  in
  let timeout_arg =
    Arg.(value & opt (some positive_float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-cell host wall-clock guard; a cell over it is \
                   reported $(b,timed-out) and the sweep continues.")
  in
  let summary_json_arg =
    Arg.(value & opt (some string) None
         & info [ "summary-json" ] ~docv:"FILE"
             ~doc:"Write the machine-readable sweep summary (lcm-sweep/1 \
                   JSON) to $(docv).")
  in
  let summary_csv_arg =
    Arg.(value & opt (some string) None
         & info [ "summary-csv" ] ~docv:"FILE"
             ~doc:"Write the sweep summary as CSV to $(docv).")
  in
  let progress_arg =
    Arg.(value & vflag None
         [ (Some true, info [ "progress" ] ~doc:"Force live progress on stderr.");
           (Some false, info [ "no-progress" ] ~doc:"Disable live progress.") ])
  in
  let run suite scale jobs nodes topology faults max_events timeout
      summary_json summary_csv progress =
    let machine =
      { Config.default_machine with Config.nnodes = nodes; topology; faults }
    in
    let families =
      match suite with
      | "all" -> Experiments.families
      | "figures" ->
        List.filter (fun (n, _) -> n = "figure2" || n = "figure3") Experiments.families
      | "ablations" ->
        List.filter (fun (n, _) -> n <> "figure2" && n <> "figure3") Experiments.families
      | name -> List.filter (fun (n, _) -> n = name) Experiments.families
    in
    let cells =
      List.concat_map (fun (_, cells_of) -> cells_of ~scale machine) families
    in
    let budget = Fleet.Budget.make ?max_events ?wall_s:timeout () in
    let show_progress =
      match progress with
      | Some b -> b
      | None -> (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)
    in
    let progress =
      if show_progress then
        Some (Fleet.Progress.create ~total:(List.length cells) ())
      else None
    in
    let t0 = Unix.gettimeofday () in
    let results = Sweep.run ~jobs ~budget ?progress cells in
    let wall = Unix.gettimeofday () -. t0 in
    Option.iter Fleet.Progress.finish progress;
    let rows = Sweep.rows results in
    print_string (Report.generic ~title:(Printf.sprintf "sweep %s (%s scale)" suite (Experiments.scale_to_string scale)) rows);
    (if suite = "figures" || suite = "all" then begin
       print_string (Report.agreement rows);
       print_string (Report.claims (Experiments.claims rows))
     end);
    let scale = Experiments.scale_to_string scale in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Sweep.summary_json ~suite ~scale ~jobs results);
        close_out oc;
        Printf.printf "(wrote %s)\n" path)
      summary_json;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Sweep.summary_csv results);
        close_out oc;
        Printf.printf "(wrote %s)\n" path)
      summary_csv;
    let failures = Sweep.failures results in
    Printf.printf
      "sweep: %d cells (%d ok, %d failed, %d timed-out) in %.2fs host time, jobs=%d\n"
      (Array.length results)
      (List.length rows)
      (List.length
         (List.filter
            (fun (r : _ Fleet.cell_result) ->
              match r.Fleet.outcome with Fleet.Failed _ -> true | _ -> false)
            failures))
      (List.length
         (List.filter
            (fun (r : _ Fleet.cell_result) ->
              match r.Fleet.outcome with Fleet.Timed_out _ -> true | _ -> false)
            failures))
      wall (Fleet.resolve_jobs jobs);
    List.iter
      (fun (r : _ Fleet.cell_result) ->
        Printf.eprintf "  cell %d %s: %s\n" r.Fleet.index r.Fleet.label
          (Fleet.outcome_string r.Fleet.outcome))
      failures;
    let failed =
      List.exists
        (fun (r : _ Fleet.cell_result) ->
          match r.Fleet.outcome with Fleet.Failed _ -> true | _ -> false)
        failures
    in
    if failed then `Error (false, "sweep had failed cells") else `Ok ()
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Sweep the paper's experiment grid (figures and/or ablations) \
             across worker domains.  Cells are independent simulations; \
             results are ordered by cell index, so output is bit-identical \
             at any $(b,--jobs) count.  A crashing cell is contained as a \
             $(b,failed) outcome; $(b,--max-events)/$(b,--timeout) turn \
             runaway cells into $(b,timed-out) outcomes.")
    Term.(
      ret
        (const run $ suite_arg $ scale_arg $ jobs_arg $ nodes_arg
       $ topology_arg $ faults_term $ max_events_arg $ timeout_arg
       $ summary_json_arg $ summary_csv_arg $ progress_arg))

let stress_cmd =
  let policy_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (Lcm_core.Policy.of_string s) in
    Arg.conv
      (parse, fun ppf (p : Lcm_core.Policy.t) ->
        Format.pp_print_string ppf p.Lcm_core.Policy.name)
  in
  let policy_arg =
    Arg.(value & opt (some policy_conv) None
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:(Printf.sprintf
                     "Restrict to one policy (%s); default runs every \
                      registered policy."
                     (String.concat ", " Lcm_core.Policy.names)))
  in
  let cases_arg =
    let positive_int =
      let parse s =
        match int_of_string_opt s with
        | Some n when n > 0 -> Ok n
        | Some _ -> Error (`Msg "case count must be positive")
        | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    Arg.(value & opt positive_int 100
         & info [ "cases" ] ~docv:"N" ~doc:"Cases per policy.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S" ~doc:"Generator stream seed.")
  in
  let run cases seed policy faults jobs =
    (match faults with
    | Some plan ->
      Printf.printf "fault plan: %s\n%!" (Lcm_net.Faults.to_string plan)
    | None -> ());
    let policies =
      match policy with Some p -> [ p ] | None -> Stress.all_policies
    in
    let failures =
      List.filter_map
        (fun (p : Lcm_core.Policy.t) ->
          Printf.printf "policy %-14s %!" p.Lcm_core.Policy.name;
          match Stress.run ~policy:p ?faults ~jobs ~cases ~seed () with
          | Ok () ->
            Printf.printf "%d/%d cases OK\n%!" cases cases;
            None
          | Error e ->
            Printf.printf "FAILED\n%s\n%!" e;
            Some p.Lcm_core.Policy.name)
        policies
    in
    match failures with
    | [] -> `Ok ()
    | fs ->
      `Error (false,
              Printf.sprintf "stress failures under: %s" (String.concat ", " fs))
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:"Differential protocol stress test: run seeded random programs \
             through the full simulated stack and check every outcome \
             against a golden per-epoch model plus protocol invariants.  \
             Failures print a shrunk reproducer; rerun it with the printed \
             $(b,--seed)/$(b,--cases)/$(b,--policy).")
    Term.(
      ret
        (const run $ cases_arg $ seed_arg $ policy_arg $ faults_term
       $ jobs_arg))

let check_cmd =
  let module Check = Lcm_check.Check in
  let policy_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (Lcm_core.Policy.of_string s) in
    Arg.conv
      (parse, fun ppf (p : Lcm_core.Policy.t) ->
        Format.pp_print_string ppf p.Lcm_core.Policy.name)
  in
  let policy_arg =
    Arg.(value & opt (some policy_conv) None
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:(Printf.sprintf
                     "Restrict to one policy (%s); default checks every \
                      registered policy."
                     (String.concat ", " Lcm_core.Policy.names)))
  in
  let scenario_arg =
    Arg.(value & opt (some string) None
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:"Restrict to one named bounded scenario (see \
                   $(b,--list-scenarios)); default explores all of them.")
  in
  let list_scenarios_arg =
    Arg.(value & flag
         & info [ "list-scenarios" ]
             ~doc:"List the bounded scenario names and exit.")
  in
  let max_schedules_arg =
    Arg.(value & opt int 20_000
         & info [ "max-schedules" ] ~docv:"N"
             ~doc:"Cap on complete interleavings per configuration; hitting \
                   it reports $(b,capped) instead of $(b,exhausted).")
  in
  let random_arg =
    Arg.(value & opt int 0
         & info [ "random" ] ~docv:"N"
             ~doc:"Also explore N seeded random micro-configurations per \
                   policy (beyond the fixed scenarios).")
  in
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"S"
             ~doc:"Stream seed for $(b,--random) micro-configurations.")
  in
  let fault_budget_arg =
    Arg.(value & opt int 0
         & info [ "fault-budget" ] ~docv:"N"
             ~doc:"Compose the schedule space with up to N per-copy message \
                   fault choices (drop; also duplicate with $(b,--dup)).  0 \
                   checks the reliable network only.")
  in
  let dup_arg =
    Arg.(value & flag
         & info [ "dup" ]
             ~doc:"With $(b,--fault-budget), each in-budget copy may also be \
                   duplicated, not just dropped.")
  in
  let no_reduce_arg =
    Arg.(value & flag
         & info [ "no-reduce" ]
             ~doc:"Disable partial-order reduction (sleep sets + \
                   persistent-set heuristic): enumerate every interleaving.  \
                   For cross-checking the reduction on tiny configurations.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"SCHED"
             ~doc:"Replay one schedule (dot-separated choice indices as \
                   printed in a counterexample, or $(b,-) for the default \
                   FIFO order) against the selected $(b,--scenario) and \
                   $(b,--policy) instead of exploring.")
  in
  let out_arg =
    Arg.(value & opt string "out"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for counterexample artifacts (trace JSON + \
                   report).")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Print the check.* counters per configuration.")
  in
  let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
  let write_artifacts ~out (v : Check.violation) =
    ensure_dir out;
    let slug =
      String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> c | _ -> '-')
        (Printf.sprintf "%s-%s" v.Check.v_prog.Stress.policy.Lcm_core.Policy.name
           v.Check.v_label)
    in
    let report_path = Filename.concat out (slug ^ ".counterexample.txt") in
    let oc = open_out report_path in
    let ppf = Format.formatter_of_out_channel oc in
    Format.fprintf ppf "%a@." Check.pp_violation v;
    Format.fprintf ppf
      "reproduce: lcm_sim check --policy %s --scenario %s --replay %s%s%s@."
      v.Check.v_prog.Stress.policy.Lcm_core.Policy.name
      (let l = v.Check.v_label in
       match String.index_opt l ':' with
       | Some i -> String.sub l (i + 1) (String.length l - i - 1)
       | None -> l)
      (Check.schedule_to_string v.Check.v_schedule)
      (if v.Check.v_fault_budget > 0 then
         Printf.sprintf " --fault-budget %d" v.Check.v_fault_budget
       else "")
      (if v.Check.v_dup then " --dup" else "");
    close_out oc;
    let verdict, events =
      Check.replay ~trace:true ~fault_budget:v.Check.v_fault_budget
        ~dup:v.Check.v_dup ~schedule:v.Check.v_schedule v.Check.v_prog
    in
    let trace_path = Filename.concat out (slug ^ ".trace.json") in
    (match events with
    | [] -> ()
    | evs -> Traceview.export_file ~path:trace_path evs);
    (match verdict with
    | Check.Fail _ -> ()
    | Check.Pass ->
      Printf.eprintf "warning: minimized schedule no longer fails on replay\n");
    Printf.printf "  artifacts: %s%s\n" report_path
      (if events = [] then "" else ", " ^ trace_path)
  in
  let scenario_label s = "scenario:" ^ s in
  let run policy scenario list_scenarios max_schedules random seed fault_budget
      dup no_reduce replay out stats =
    let policies =
      match policy with Some p -> [ p ] | None -> Lcm_core.Policy.policies
    in
    if list_scenarios then begin
      List.iter
        (fun (n, _) -> print_endline n)
        (Check.scenarios ~policy:(List.hd policies));
      `Ok ()
    end
    else
      match replay with
      | Some sched_s -> (
        match (Check.schedule_of_string sched_s, scenario, policy) with
        | Error e, _, _ -> `Error (false, e)
        | Ok _, None, _ | Ok _, _, None ->
          `Error (false, "--replay needs --scenario and --policy")
        | Ok schedule, Some sname, Some p -> (
          match List.assoc_opt sname (Check.scenarios ~policy:p) with
          | None -> `Error (false, Printf.sprintf "unknown scenario %S" sname)
          | Some prog -> (
            let verdict, events =
              Check.replay ~trace:true ~fault_budget ~dup ~schedule prog
            in
            (match events with
            | [] -> ()
            | evs ->
              ensure_dir out;
              let path =
                Filename.concat out
                  (Printf.sprintf "replay-%s-%s.trace.json"
                     p.Lcm_core.Policy.name sname)
              in
              Traceview.export_file ~path evs;
              Printf.printf "trace: %s\n" path);
            match verdict with
            | Check.Pass ->
              Printf.printf "replay %s on %s/%s: PASS\n"
                (Check.schedule_to_string schedule) p.Lcm_core.Policy.name
                sname;
              `Ok ()
            | Check.Fail report ->
              Printf.printf "replay %s on %s/%s: FAIL\n%s\n"
                (Check.schedule_to_string schedule) p.Lcm_core.Policy.name
                sname report;
              `Ok ())))
      | None ->
        let known = Check.scenarios ~policy:(List.hd policies) in
        (match scenario with
        | Some s when not (List.mem_assoc s known) ->
          `Error
            ( false,
              Printf.sprintf "unknown scenario %S (expected one of: %s)" s
                (String.concat ", " (List.map fst known)) )
        | _ ->
        let violations = ref 0 in
        let capped = ref 0 in
        List.iter
          (fun (p : Lcm_core.Policy.t) ->
            let reports =
              Check.check_scenarios ~max_schedules ~fault_budget ~dup
                ~reduce:(not no_reduce) ~random ~seed ~policy:p ()
            in
            let reports =
              match scenario with
              | None -> reports
              | Some s ->
                List.filter
                  (fun r -> r.Check.rep_label = scenario_label s)
                  reports
            in
            List.iter
              (fun (r : Check.report) ->
                let st = r.Check.rep_stats in
                (match r.Check.rep_outcome with
                | Check.Exhausted ->
                  Printf.printf
                    "%-14s %-28s exhausted: %d schedules, %d choice points, \
                     %d+%d pruned\n%!"
                    p.Lcm_core.Policy.name r.Check.rep_label st.Check.schedules
                    st.Check.choice_points st.Check.sleep_prunes
                    st.Check.pset_prunes
                | Check.Capped ->
                  incr capped;
                  Printf.printf
                    "%-14s %-28s CAPPED at %d schedules (raise \
                     --max-schedules to exhaust)\n%!"
                    p.Lcm_core.Policy.name r.Check.rep_label st.Check.schedules
                | Check.Found v ->
                  incr violations;
                  Printf.printf "%-14s %-28s VIOLATION after %d schedules\n%!"
                    p.Lcm_core.Policy.name r.Check.rep_label st.Check.schedules;
                  let v = Check.shrink_violation v in
                  Format.printf "%a@." Check.pp_violation v;
                  Printf.printf
                    "  reproduce: lcm_sim check --policy %s --scenario %s \
                     --replay %s%s%s\n%!"
                    v.Check.v_prog.Stress.policy.Lcm_core.Policy.name
                    (let l = v.Check.v_label in
                     match String.index_opt l ':' with
                     | Some i ->
                       String.sub l (i + 1) (String.length l - i - 1)
                     | None -> l)
                    (Check.schedule_to_string v.Check.v_schedule)
                    (if v.Check.v_fault_budget > 0 then
                       Printf.sprintf " --fault-budget %d"
                         v.Check.v_fault_budget
                     else "")
                    (if v.Check.v_dup then " --dup" else "");
                  write_artifacts ~out v);
                if stats then Format.printf "%a@." Check.pp_stats st)
              reports)
          policies;
        if !violations > 0 then
          `Error (false, Printf.sprintf "%d violation(s) found" !violations)
        else begin
          if !capped > 0 then
            Printf.printf "note: %d configuration(s) capped, not exhausted\n"
              !capped;
          `Ok ()
        end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Exhaustive small-scope model checking: enumerate every \
             message-delivery and same-timestamp handler interleaving of \
             bounded configurations through the engine's choice-point hook, \
             with sleep-set + persistent-set partial-order reduction, \
             checking protocol invariants and an abstract-state-machine \
             consistency spec.  Optionally composes bounded per-copy fault \
             choices ($(b,--fault-budget)).  Violations are shrunk to a \
             minimal (configuration, schedule) counterexample that \
             $(b,--replay) reproduces deterministically.")
    Term.(
      ret
        (const run $ policy_arg $ scenario_arg $ list_scenarios_arg
       $ max_schedules_arg $ random_arg $ seed_arg $ fault_budget_arg
       $ dup_arg $ no_reduce_arg $ replay_arg $ out_arg $ stats_arg))

let trace_validate_cmd =
  let file_arg =
    Arg.(required
         & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Trace JSON file to validate.")
  in
  let run file =
    match Traceview.validate_file file with
    | Ok n ->
      Printf.printf "%s: valid Chrome trace, %d events\n" file n;
      `Ok ()
    | Error e -> `Error (false, Printf.sprintf "%s: %s" file e)
  in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:"Check that a --trace-out file is well-formed (parses as JSON, \
             non-empty traceEvents, monotone timestamps).")
    Term.(ret (const run $ file_arg))

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "lcm_sim" ~version:"1.0"
      ~doc:"Run LCM/RSM paper benchmarks on the simulated multiprocessor."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            stencil_cmd;
            threshold_cmd;
            adaptive_cmd;
            unstructured_cmd;
            sor_cmd;
            reduce_cmd;
            false_sharing_cmd;
            nbody_cmd;
            synthetic_cmd;
            experiments_cmd;
            stress_cmd;
            check_cmd;
            trace_validate_cmd;
            info_cmd;
          ]))
