.PHONY: all build test bench bench-paper perfbench allocbench allocbench-smoke doc clean examples trace-smoke stress sweep-smoke fault-smoke policy-matrix pdes-smoke check-smoke

all: build

build:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-paper:
	@mkdir -p out
	dune exec bench/main.exe -- --paper --no-micro 2>&1 | tee out/bench_output_paper.txt

# Host-side throughput rig: events/sec of the simulator itself, all
# policies x {stencil, unstructured, synthetic, stress}.  See README
# "Performance benchmarking" for the JSON schema and --baseline
# comparisons.
perfbench:
	dune exec bench/perf.exe -- --out BENCH_perf.json

# Host allocation profile: GC minor words / promoted words / major
# collections and minor words per simulated event for the two pinned
# allocation workloads.  See README "Allocation benchmarking" and
# DESIGN.md §"Host allocation discipline".
allocbench:
	@mkdir -p out
	dune exec bench/perf.exe -- --alloc --out out/BENCH_alloc.json

# Same rig with the pinned words-per-event ceilings enforced (non-zero
# exit on regression); also runs as part of `dune runtest`.
allocbench-smoke:
	@mkdir -p out
	dune exec bench/perf.exe -- --alloc --check --out out/BENCH_alloc.json

# Run a small traced stencil and check the emitted Chrome trace JSON
# parses and is non-empty.
trace-smoke:
	dune exec bin/lcm_sim.exe -- stencil --protocol lcm-mcc --nodes 8 \
	  --size 32 --iters 2 --trace-out /tmp/lcm_trace_smoke.json
	dune exec bin/lcm_sim.exe -- trace-validate /tmp/lcm_trace_smoke.json

# Differential protocol stress test: seeded random programs checked
# word-for-word against a golden per-epoch model, every registered policy
# (directory and snooping-bus families alike).
stress:
	dune exec bin/lcm_sim.exe -- stress --cases 100 --seed 1

# Small-scope model checking smoke: exhaustively enumerate the
# message-delivery / tie-break interleavings of every bounded scenario
# under every registered policy (DPOR-pruned), checking the ASM
# consistency spec plus protocol invariants on each schedule, then one
# fault-composed pass (each copy of the two-writers scenario's messages
# may be dropped, retransmission must recover).  A bounded version runs
# as part of `dune runtest` (test_check); counterexample artifacts land
# in out/.
check-smoke:
	dune exec bin/lcm_sim.exe -- check --max-schedules 2000 --out out
	dune exec bin/lcm_sim.exe -- check --policy lcm-mcc --scenario two-writers \
	  --fault-budget 1 --out out

# Policy-matrix smoke: for every policy in the registry, a bounded
# fingerprint determinism check (same seed twice must digest
# bit-identically), a cross-policy checksum agreement check, and a short
# differential stress sweep.  Also runs as part of `dune runtest`.
policy-matrix:
	dune exec test/test_policy_matrix.exe

# Bounded fixed-seed fault sweep: the differential stress harness across
# every registered policy over a deterministically unreliable interconnect
# (chaos profile: drops + duplicates + jitter + link flaps).  A smaller
# fixed-seed version runs as part of `dune runtest` (test_faults).
fault-smoke:
	dune exec bin/lcm_sim.exe -- stress --cases 40 --seed 1 \
	  --fault-rate 0.05 --fault-profile chaos --fault-seed 7

# Parallel-engine smoke: the same benchmark sequentially and sharded
# across 2 domains (--jobs 2, conservative PDES driver) must print
# byte-identical results and stats — the determinism contract of
# DESIGN.md §8.  The full oracle (pinned fingerprints at jobs=4, forced
# worker domains, crash/budget parity) runs as part of `dune runtest`
# (test_pdes, test_equiv).
pdes-smoke:
	dune exec bin/lcm_sim.exe -- stencil --system lcm-mcc --nodes 8 \
	  --size 24 --iters 3 --stats > /tmp/lcm_pdes_j1.txt
	dune exec bin/lcm_sim.exe -- stencil --system lcm-mcc --nodes 8 \
	  --size 24 --iters 3 --stats --jobs 2 | grep -v '^pdes:' \
	  > /tmp/lcm_pdes_j2.txt
	diff /tmp/lcm_pdes_j1.txt /tmp/lcm_pdes_j2.txt
	@echo "pdes-smoke: jobs=1 and jobs=2 byte-identical"

# Tiny parallel sweep through the fleet pool: exercises domain workers,
# progress, and the JSON/CSV summary writers in a few seconds.  Also runs
# as part of `dune runtest`.
sweep-smoke:
	dune exec bin/lcm_sim.exe -- experiments --suite figures --scale tiny \
	  --jobs 2 --summary-json /tmp/lcm_sweep_smoke.json \
	  --summary-csv /tmp/lcm_sweep_smoke.csv

examples:
	@for e in quickstart compiler_demo adaptive_mesh reductions race_detection stale_data dynamic_list; do \
	  echo "== $$e =="; dune exec examples/$$e.exe; echo; done

doc:
	dune build @doc

clean:
	dune clean
