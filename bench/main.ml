(* Full benchmark harness: regenerates every table and figure in the paper's
   evaluation (Section 6.3) from simulation, prints the Section 6.3 claim
   checklist and the Section 7 / design ablations, then (optionally) runs
   Bechamel wall-clock micro-benchmarks of the simulator itself.

     dune exec bench/main.exe            # quick scale (about a minute)
     dune exec bench/main.exe -- --paper # the paper's full problem sizes
     dune exec bench/main.exe -- --jobs 0 # sweep cells across all host cores
     dune exec bench/main.exe -- --no-micro   # skip the Bechamel section *)

open Lcm_harness

let scale =
  if Array.exists (( = ) "--paper") Sys.argv then Experiments.Paper
  else Experiments.Quick

let run_micro = not (Array.exists (( = ) "--no-micro") Sys.argv)

(* --jobs N (0 = auto): spread each section's independent cells over
   worker domains.  Results are bit-identical to the sequential run —
   cells are keyed by index — so only wall-clock changes. *)
let jobs =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then 1
    else if Sys.argv.(i) = "--jobs" then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n -> n
      | None -> failwith "bench: --jobs expects an integer"
    else find (i + 1)
  in
  find 1

(* --fault-rate R [--fault-profile NAME] [--fault-seed S]: run the whole
   evaluation over a deterministically unreliable interconnect.  The
   differential-validation and claims sections then double as an
   end-to-end check that retransmission preserves every result. *)
let faults =
  let value_of flag =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then None
      else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  match value_of "--fault-rate" with
  | None -> None
  | Some r -> (
    let rate =
      match float_of_string_opt r with
      | Some f -> f
      | None -> failwith "bench: --fault-rate expects a number"
    in
    if rate < 0.0 then failwith "bench: --fault-rate must be in [0,1]"
    else if rate = 0.0 then None
    else
      let profile = Option.value (value_of "--fault-profile") ~default:"drop" in
      let seed =
        match value_of "--fault-seed" with
        | None -> 7
        | Some s -> (
          match int_of_string_opt s with
          | Some n -> n
          | None -> failwith "bench: --fault-seed expects an integer")
      in
      match Lcm_net.Faults.of_profile profile ~rate ~seed with
      | Ok plan -> Some plan
      | Error e -> failwith ("bench: " ^ e))

(* Every section is a fleet sweep; crashes/invariant violations in a cell
   must still abort the harness, hence rows_exn. *)
let sweep cells = Sweep.rows_exn (Sweep.run ~jobs cells)

let machine = { Config.default_machine with Config.faults }

let section title = Printf.printf "\n############ %s ############\n%!" title

let () =
  Printf.printf
    "LCM reproduction harness — %d nodes, %d-word blocks, topology %s, scale %s\n"
    machine.Config.nnodes machine.Config.words_per_block
    (Lcm_net.Topology.to_string machine.Config.topology)
    (match scale with
    | Experiments.Paper -> "paper"
    | Experiments.Quick -> "quick"
    | Experiments.Tiny -> "tiny");
  (match faults with
  | Some plan ->
    Printf.printf "fault plan: %s\n" (Lcm_net.Faults.to_string plan)
  | None -> ());

  section "Figure 2: Stencil execution time";
  let fig2 = sweep (Experiments.figure2_cells ~scale machine) in
  print_string (Report.execution_times ~title:"Figure 2" fig2);

  section "Figure 3: Adaptive / Threshold / Unstructured execution time";
  let fig3 = sweep (Experiments.figure3_cells ~scale machine) in
  print_string (Report.execution_times ~title:"Figure 3" fig3);

  let rows = fig2 @ fig3 in
  section "Table 1: cache misses and clean copies";
  print_string (Report.table1 rows);

  section "Clean-copy memory usage (Section 5.1)";
  print_string (Report.memory_usage rows);

  section "Phase-cycle distributions";
  print_string
    (Report.samples
       (List.filter
          (fun (r : Experiments.row) -> r.Experiments.experiment = "stencil-stat")
          rows));

  section "Message breakdown (what the protocols actually send)";
  print_string
    (Report.message_breakdown
       (List.filter
          (fun (r : Experiments.row) ->
            r.Experiments.experiment = "stencil-stat"
            || r.Experiments.experiment = "threshold")
          rows));

  section "Differential validation";
  print_string (Report.agreement rows);

  section "Section 6.3 claims";
  print_string (Report.claims (Experiments.claims rows));

  section "Ablation: reductions (Section 7.1)";
  print_string
    (Report.generic ~title:"global sum, 3 implementations"
       (sweep (Experiments.ablation_reduction_cells machine)));

  section "Ablation: false sharing (Section 7.4)";
  print_string
    (Report.generic ~title:"falsely-shared blocks"
       (sweep (Experiments.ablation_false_sharing_cells machine)));

  section "Ablation: stale data (Section 7.5)";
  print_string
    (Report.generic ~title:"N-body with stale remote bodies"
       (sweep (Experiments.ablation_stale_cells machine)));

  section "Ablation: clean-copy placement vs block reuse (scc vs mcc)";
  print_string
    (Report.generic ~title:"stencil across words-per-block"
       (sweep (Experiments.ablation_block_reuse_cells machine)));

  section "Ablation: scheduling sensitivity";
  print_string
    (Report.generic ~title:"stencil across schedules"
       (sweep (Experiments.ablation_schedule_cells machine)));

  section "Ablation: interconnect topology";
  print_string
    (Report.generic ~title:"dynamic stencil across interconnects"
       (sweep (Experiments.ablation_topology_cells machine)));

  section "Ablation: weak scaling";
  print_string
    (Report.generic ~title:"stencil, fixed per-node band, growing machine"
       (sweep (Experiments.ablation_scaling_cells machine)));

  section "Ablation: cost-model sensitivity";
  print_string
    (Report.generic ~title:"stencil with communication costs scaled"
       (sweep (Experiments.ablation_cost_sensitivity_cells machine)));

  section "Ablation: run-time violation detection cost (Sections 7.2-7.3)";
  print_string
    (Report.generic ~title:"stencil under LCM-mcc with detection modes"
       (sweep (Experiments.ablation_detection_cells machine)));

  section "Ablation: invalidate- vs update-based reconciliation (Section 3)";
  print_string
    (Report.generic ~title:"stencil under LCM-mcc vs LCM-mcc-update"
       (sweep (Experiments.ablation_update_cells machine)));

  section "Ablation: reconciliation barrier organisation (Section 5.1)";
  print_string
    (Report.generic ~title:"flat coordinator vs combining tree"
       (sweep (Experiments.ablation_barrier_cells machine)));

  section "Ablation: cache capacity (Stache, static stencil)";
  print_string
    (Report.generic ~title:"stencil-stat under finite caches"
       (sweep (Experiments.ablation_capacity_cells machine)));

  section "Tracing sample (structured observability)";
  (let rt =
     Config.make_runtime
       { machine with Config.nnodes = 8 }
       Config.lcm_mcc ~schedule:Lcm_cstar.Schedule.Static
   in
   Lcm_tempest.Machine.enable_trace ~capacity:65536 (Lcm_cstar.Runtime.machine rt);
   Lcm_cstar.Runtime.enable_phase_log rt;
   let r =
     Lcm_apps.Stencil.run rt { Lcm_apps.Stencil.n = 32; iters = 3; work_per_cell = 4 }
   in
   let events = Lcm_tempest.Machine.trace_events (Lcm_cstar.Runtime.machine rt) in
   (if not (Sys.file_exists "out") then Sys.mkdir "out" 0o755);
   let path = "out/lcm_trace_sample.json" in
   Traceview.export_file ~path events;
   Printf.printf "stencil 32x32 x3 under lcm-mcc: %d cycles\n"
     r.Lcm_apps.Bench_result.cycles;
   Printf.printf "%d trace events -> %s (open in chrome://tracing / Perfetto)\n"
     (List.length events) path;
   print_string
     (Phases.render (Phases.of_log (Lcm_cstar.Runtime.phase_log rt))));

  if not (Report.all_agree rows) then begin
    prerr_endline "FATAL: protocols disagreed on results";
    exit 1
  end;

  (* machine-readable export, kept out of the repo root *)
  let csv = Report.to_csv rows in
  (if not (Sys.file_exists "out") then Sys.mkdir "out" 0o755);
  let path = "out/lcm_results.csv" in
  let oc = open_out path in
  output_string oc csv;
  close_out oc;
  Printf.printf "\n(wrote %s)\n" path;

  (* ---------------------------------------------------------------- *)
  (* Bechamel wall-clock micro-benchmarks of the simulator itself      *)
  (* ---------------------------------------------------------------- *)
  if run_micro then begin
    section "Bechamel: simulator wall-clock micro-benchmarks";
    let open Bechamel in
    let open Toolkit in
    let small = { machine with Config.nnodes = 8 } in
    let bench_system name system schedule run =
      Test.make ~name
        (Staged.stage (fun () ->
             let rt = Config.make_runtime small system ~schedule in
             ignore (run rt)))
    in
    let sp = { Lcm_apps.Stencil.n = 24; iters = 2; work_per_cell = 4 } in
    let tp = { Lcm_apps.Threshold.n = 24; iters = 2; threshold = 0.5; work_per_cell = 4 } in
    let up =
      { Lcm_apps.Unstructured.nodes = 64; edges = 256; iters = 4; seed = 11; work_per_node = 6 }
    in
    let ap =
      {
        Lcm_apps.Adaptive.n = 8;
        iters = 3;
        max_depth = 2;
        subdiv_threshold = 2.0;
        arena_per_node = 256;
        work_per_cell = 6;
      }
    in
    let tests =
      [
        (* one Test.make per table/figure cell family *)
        bench_system "figure2/stencil-stat-mcc" Config.lcm_mcc
          Lcm_cstar.Schedule.Static (fun rt -> Lcm_apps.Stencil.run rt sp);
        bench_system "figure2/stencil-dyn-stache" Config.stache
          (Lcm_cstar.Schedule.Dynamic_random 5) (fun rt -> Lcm_apps.Stencil.run rt sp);
        bench_system "figure3/adaptive-mcc" Config.lcm_mcc
          Lcm_cstar.Schedule.Static (fun rt -> Lcm_apps.Adaptive.run rt ap);
        bench_system "figure3/threshold-mcc" Config.lcm_mcc
          Lcm_cstar.Schedule.Static (fun rt -> Lcm_apps.Threshold.run rt tp);
        bench_system "figure3/unstructured-scc" Config.lcm_scc
          Lcm_cstar.Schedule.Static (fun rt -> Lcm_apps.Unstructured.run rt up);
        bench_system "table1/stencil-scc" Config.lcm_scc
          Lcm_cstar.Schedule.Static (fun rt -> Lcm_apps.Stencil.run rt sp);
      ]
    in
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
    let instances = Instance.[ monotonic_clock ] in
    let ols =
      Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    List.iter
      (fun test ->
        List.iter
          (fun elt ->
            let raw = Benchmark.run cfg instances elt in
            let est = Analyze.one ols Instance.monotonic_clock raw in
            let ns =
              match Analyze.OLS.estimates est with
              | Some [ e ] -> e
              | Some _ | None -> nan
            in
            Printf.printf "%-32s %12.0f ns/run  (r²=%s)\n%!" (Test.Elt.name elt)
              ns
              (match Analyze.OLS.r_square est with
              | Some r -> Printf.sprintf "%.3f" r
              | None -> "n/a"))
          (Test.elements test))
      tests
  end;
  print_endline "\nbench: done."
