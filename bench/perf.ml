(* perf — host-side throughput rig for the simulator itself.

   Every experiment in the harness is bounded by how fast the host can run
   the simulation stack, so this rig tracks that as a first-class number:
   for each (workload, policy) cell it reports host wall-clock seconds,
   simulated engine events per second, simulated cycles and peak RSS, and
   writes the lot to a machine-readable JSON file (BENCH_perf.json by
   default) so successive PRs accumulate a throughput trajectory.

     dune exec bench/perf.exe                    # full rig -> BENCH_perf.json
     dune exec bench/perf.exe -- --smoke         # seconds-long sanity pass
     dune exec bench/perf.exe -- --jobs 0        # cells across all host cores
     dune exec bench/perf.exe -- --baseline old.json --out BENCH_perf.json

   With --baseline, the previous file's runs are embedded under "before",
   the fresh runs under "after", and per-cell wall-clock speedups are
   computed (matched by workload + policy).  See README "Performance
   benchmarking" for the schema.

   Cells run through Lcm_fleet.Fleet.Pool; --jobs N (0 = auto) spreads
   them over worker domains.  Simulated counters (events, sim_cycles) are
   deterministic and job-count-independent; wall_s is host throughput and
   with jobs > 1 measures *contended* throughput — compare like against
   like when tracking a trajectory. *)

open Lcm_harness
module Fleet = Lcm_fleet.Fleet

type run = {
  workload : string;
  policy : string;
  wall_s : float;
  sim_cycles : int;
  events : int;
  events_per_sec : float;
  peak_rss_kb : int;
  (* Host GC profile of one repeat (allocation is deterministic across
     repeats — the simulator allocates the same records every time). *)
  gc_minor_words : float;
  gc_promoted_words : float;
  gc_major_collections : int;
  gc_words_per_event : float;
}

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

(* VmHWM from /proc/self/status: the process peak-RSS high-water mark in
   kB.  Monotone over the process lifetime, so per-run values record "peak
   so far" — still enough to catch a workload that blows memory up.  0
   where /proc is unavailable. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
        else scan ()
    in
    let v = scan () in
    close_in ic;
    v

let repeat = ref 3

let measure ~workload ~policy f =
  (* Best-of-N: host wall-clock is throughput of the simulator binary, and
     the minimum over a few repeats is the standard noise-robust estimate
     (scheduling hiccups and frequency ramps only ever slow a run down).
     Events and sim_cycles are identical across repeats — the simulator is
     deterministic — so only the timing varies.  Events come from the
     *calling domain's* tally so concurrent cells on other domains don't
     bleed into this cell's count. *)
  let best = ref None in
  let gc = ref (0.0, 0.0, 0) in
  for i = 1 to max 1 !repeat do
    Gc.full_major ();
    let g0 = Gc.quick_stat () in
    let ev0 = Lcm_sim.Engine.domain_events () in
    let t0 = Unix.gettimeofday () in
    let sim_cycles = f () in
    let t1 = Unix.gettimeofday () in
    let g1 = Gc.quick_stat () in
    let events = Lcm_sim.Engine.domain_events () - ev0 in
    let wall_s = t1 -. t0 in
    (* GC deltas are repeat-invariant: record the first repeat's. *)
    if i = 1 then
      gc :=
        ( g1.Gc.minor_words -. g0.Gc.minor_words,
          g1.Gc.promoted_words -. g0.Gc.promoted_words,
          g1.Gc.major_collections - g0.Gc.major_collections );
    match !best with
    | Some (w, _, _) when w <= wall_s -> ()
    | _ -> best := Some (wall_s, sim_cycles, events)
  done;
  let wall_s, sim_cycles, events =
    match !best with Some b -> b | None -> assert false
  in
  let events_per_sec =
    if wall_s > 0.0 then float_of_int events /. wall_s else 0.0
  in
  let gc_minor_words, gc_promoted_words, gc_major_collections = !gc in
  {
    workload;
    policy;
    wall_s;
    sim_cycles;
    events;
    events_per_sec;
    peak_rss_kb = peak_rss_kb ();
    gc_minor_words;
    gc_promoted_words;
    gc_major_collections;
    gc_words_per_event =
      (if events > 0 then gc_minor_words /. float_of_int events else 0.0);
  }

let print_run r =
  Printf.printf "%-28s %-16s %8.3f s %10d ev %12.0f ev/s %9d cyc %8d kB\n%!"
    r.workload r.policy r.wall_s r.events r.events_per_sec r.sim_cycles
    r.peak_rss_kb

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let systems =
  [ Config.stache; Config.lcm_scc; Config.lcm_mcc; Config.lcm_mcc_update ]

let runtime ~nnodes system =
  Config.make_runtime
    { Config.default_machine with Config.nnodes }
    system ~schedule:Lcm_cstar.Schedule.Static

let stencil ~nnodes ~n ~iters system () =
  let rt = runtime ~nnodes system in
  let r =
    Lcm_apps.Stencil.run rt { Lcm_apps.Stencil.n; iters; work_per_cell = 4 }
  in
  r.Lcm_apps.Bench_result.cycles

let unstructured ~nnodes ~nodes ~edges ~iters system () =
  let rt = runtime ~nnodes system in
  let r =
    Lcm_apps.Unstructured.run rt
      { Lcm_apps.Unstructured.nodes; edges; iters; seed = 11; work_per_node = 6 }
  in
  r.Lcm_apps.Bench_result.cycles

let synthetic ~nnodes params system () =
  let rt = runtime ~nnodes system in
  let r = Lcm_apps.Synthetic.run rt params in
  r.Lcm_apps.Bench_result.cycles

let stress ~cases ~seed system () =
  (match Stress.run ~policy:system.Config.policy ~cases ~seed () with
  | Ok () -> ()
  | Error e -> failwith ("perf: stress batch failed:\n" ^ e));
  0

(* One fleet cell per (workload, policy): the thunk performs the whole
   best-of-N measurement on whichever worker domain claims it. *)
let all_cells ~smoke =
  let sn, si, snodes = if smoke then (16, 2, 8) else (128, 25, 32) in
  let un, ue, ui = if smoke then (32, 96, 2) else (256, 1024, 48) in
  let cases = if smoke then 2 else 60 in
  let cell mk name =
    List.map
      (fun sys ->
        ( Printf.sprintf "%s/%s" name sys.Config.label,
          fun () -> measure ~workload:name ~policy:sys.Config.label (mk sys) ))
      systems
  in
  let stencil_cells =
    cell
      (stencil ~nnodes:snodes ~n:sn ~iters:si)
      (Printf.sprintf "stencil-static-%dx%d-i%d-p%d" sn sn si snodes)
  in
  let unstructured_cells =
    cell
      (unstructured ~nnodes:snodes ~nodes:un ~edges:ue ~iters:ui)
      (Printf.sprintf "unstructured-%dn%de-i%d-p%d" un ue ui snodes)
  in
  let stress_cells =
    cell (stress ~cases ~seed:1) (Printf.sprintf "stress-%dcases-seed1" cases)
  in
  let syn_nodes = if smoke then 4 else 16 in
  let synthetic_cells =
    cell
      (synthetic ~nnodes:syn_nodes Lcm_apps.Synthetic.default)
      (Printf.sprintf "synthetic-p%d" syn_nodes)
  in
  Array.of_list
    (stencil_cells @ unstructured_cells @ synthetic_cells @ stress_cells)

let all_runs ~smoke ~jobs () =
  let cells = all_cells ~smoke in
  let progress =
    if Unix.isatty Unix.stderr && Fleet.resolve_jobs jobs > 1 then
      Some (Fleet.Progress.create ~total:(Array.length cells) ())
    else None
  in
  let results = Fleet.Pool.run ~jobs ?progress cells in
  Option.iter Fleet.Progress.finish progress;
  (* The rig is a health check of the simulator itself: a crashed or hung
     cell is a perf bug, not a data point — fail hard. *)
  Array.iter
    (fun (r : run Fleet.cell_result) ->
      match r.Fleet.outcome with
      | Fleet.Done _ -> ()
      | o ->
        Printf.eprintf "perf: FATAL: cell %s: %s\n" r.Fleet.label
          (Fleet.outcome_string o);
        exit 1)
    results;
  let runs =
    Array.to_list results
    |> List.filter_map (fun (r : run Fleet.cell_result) ->
           match r.Fleet.outcome with Fleet.Done run -> Some run | _ -> None)
  in
  List.iter print_run runs;
  runs

(* ------------------------------------------------------------------ *)
(* PDES strong scaling                                                 *)
(* ------------------------------------------------------------------ *)

(* One simulation sharded across domains (--jobs on a single run), as
   opposed to the fleet parallelism above (whole cells per domain).  Runs
   on the calling domain so the cell pool never contends with the drain
   pool.  Doubles as a determinism check: sim_cycles must be identical at
   every job count or the conservative driver is broken.

   Honesty note: on a 1-core container [recommended_domain_count] is 1,
   the drain pool is empty, and jobs > 1 measures pure coordination
   overhead (windowing + k-way merge), not speedup.  The JSON records the
   host's domain count so a trajectory reader can tell the two apart. *)
let pdes_scaling ~smoke () =
  let sn, si, snodes = if smoke then (16, 2, 8) else (64, 10, 32) in
  let base_name = Printf.sprintf "pdes-stencil-%dx%d-i%d-p%d" sn sn si snodes in
  let run_at j =
    measure
      ~workload:(Printf.sprintf "%s/jobs%d" base_name j)
      ~policy:Config.lcm_mcc.Config.label
      (fun () ->
        Lcm_sim.Pdes.with_jobs ~jobs:j
          (stencil ~nnodes:snodes ~n:sn ~iters:si Config.lcm_mcc))
  in
  let rs = List.map run_at [ 1; 2; 4 ] in
  (match rs with
  | base :: rest ->
    List.iter
      (fun r ->
        if r.sim_cycles <> base.sim_cycles || r.events <> base.events then begin
          Printf.eprintf
            "perf: FATAL: pdes scaling diverged: %s got %d cycles / %d \
             events, jobs1 got %d / %d\n"
            r.workload r.sim_cycles r.events base.sim_cycles base.events;
          exit 1
        end)
      rest
  | [] -> ());
  List.iter print_run rs;
  rs

(* ------------------------------------------------------------------ *)
(* Allocation rig                                                      *)
(* ------------------------------------------------------------------ *)

(* The pinned allocation workloads and their minor-words-per-event
   ceilings.  These are regression fences, not aspirations: the measured
   steady state is well below each ceiling (see BENCH_perf.json), and a
   future change that re-introduces per-event closure or record churn
   trips them long before it costs wall-clock.  Sizes are pinned because
   words/event is amortized over fixed startup allocation — changing the
   workload silently moves the number. *)
let alloc_ceilings =
  [ ("stencil-64x64-i10-p32", 87.5); ("synthetic-p16", 41.5) ]

let alloc_runs () =
  let saved = !repeat in
  (* allocation is deterministic across repeats; one is enough *)
  repeat := 1;
  (* The first simulation in a process pays one-time lazy initialization
     (registries, hashtable growth, domain-local state) that must not be
     charged to either pinned cell: burn it on a throwaway run.  The two
     measurements are explicitly sequenced — a list literal would
     evaluate right-to-left and silently reorder the cells. *)
  ignore (stencil ~nnodes:4 ~n:8 ~iters:1 Config.lcm_mcc ());
  let s =
    measure ~workload:"stencil-64x64-i10-p32" ~policy:Config.lcm_mcc.Config.label
      (stencil ~nnodes:32 ~n:64 ~iters:10 Config.lcm_mcc)
  in
  let y =
    measure ~workload:"synthetic-p16" ~policy:Config.lcm_mcc.Config.label
      (synthetic ~nnodes:16 Lcm_apps.Synthetic.default Config.lcm_mcc)
  in
  repeat := saved;
  [ s; y ]

let print_alloc_table ~before rs =
  Printf.printf "%-28s %-12s %9s %13s %10s %7s %8s\n" "workload" "policy"
    "events" "minor-words" "promoted" "majors" "w/ev";
  List.iter
    (fun r ->
      Printf.printf "%-28s %-12s %9d %13.0f %10.0f %7d %8.1f\n" r.workload
        r.policy r.events r.gc_minor_words r.gc_promoted_words
        r.gc_major_collections r.gc_words_per_event;
      match
        List.find_opt
          (fun b -> b.workload = r.workload && b.policy = r.policy)
          before
      with
      | Some b when b.gc_words_per_event > 0.0 && r.gc_words_per_event > 0.0 ->
        Printf.printf "%-28s %-12s %9s %13.0f %10.0f %7d %8.1f  (%.2fx)\n" ""
          "(before)" "" b.gc_minor_words b.gc_promoted_words
          b.gc_major_collections b.gc_words_per_event
          (b.gc_words_per_event /. r.gc_words_per_event)
      | _ -> ())
    rs

let check_ceilings rs =
  List.for_all
    (fun (wl, ceiling) ->
      match List.find_opt (fun r -> r.workload = wl) rs with
      | None ->
        Printf.eprintf "perf: FATAL: alloc cell %s missing\n" wl;
        false
      | Some r when r.gc_words_per_event > ceiling ->
        Printf.eprintf
          "perf: FATAL: %s allocates %.1f minor words per event (ceiling \
           %.1f) — a change re-introduced per-event allocation churn; see \
           DESIGN.md §\"Host allocation discipline\"\n"
          wl r.gc_words_per_event ceiling;
        false
      | Some r ->
        Printf.printf "alloc ceiling ok: %-28s %6.1f w/ev <= %.1f\n" wl
          r.gc_words_per_event ceiling;
        true)
    alloc_ceilings

(* ------------------------------------------------------------------ *)
(* JSON out / baseline in                                              *)
(* ------------------------------------------------------------------ *)

(* Serialized through the shared Report.Json path (same escaping as the
   sweep summaries); key names are load_baseline's contract. *)
let run_json r =
  Report.Json.Obj
    [
      ("workload", Report.Json.Str r.workload);
      ("policy", Report.Json.Str r.policy);
      ("wall_s", Report.Json.Float r.wall_s);
      ("sim_cycles", Report.Json.Int r.sim_cycles);
      ("events", Report.Json.Int r.events);
      ("events_per_sec", Report.Json.Float r.events_per_sec);
      ("peak_rss_kb", Report.Json.Int r.peak_rss_kb);
      ("host.gc_minor_words", Report.Json.Float r.gc_minor_words);
      ("host.gc_promoted_words", Report.Json.Float r.gc_promoted_words);
      ("host.gc_major_collections", Report.Json.Int r.gc_major_collections);
      ("host.gc_words_per_event", Report.Json.Float r.gc_words_per_event);
    ]

let runs_json rs = Report.Json.Arr (List.map run_json rs)

let load_baseline path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Traceview.parse text with
  | Error e -> failwith (Printf.sprintf "perf: cannot parse %s: %s" path e)
  | Ok doc ->
    (* prefer the file's "after" runs (a previous before/after file), else
       its plain "runs" *)
    let runs =
      match (Traceview.member "after" doc, Traceview.member "runs" doc) with
      | Some (Traceview.Arr rs), _ | None, Some (Traceview.Arr rs) -> rs
      | _ -> failwith (Printf.sprintf "perf: no runs array in %s" path)
    in
    List.filter_map
      (fun r ->
        let str k =
          match Traceview.member k r with
          | Some (Traceview.Str s) -> Some s
          | _ -> None
        in
        let num k =
          match Traceview.member k r with
          | Some (Traceview.Num n) -> Some n
          | _ -> None
        in
        match (str "workload", str "policy", num "wall_s") with
        | Some workload, Some policy, Some wall ->
          Some
            {
              workload;
              policy;
              wall_s = wall;
              sim_cycles =
                (match num "sim_cycles" with Some n -> int_of_float n | None -> 0);
              events =
                (match num "events" with Some n -> int_of_float n | None -> 0);
              events_per_sec =
                (match num "events_per_sec" with Some n -> n | None -> 0.0);
              peak_rss_kb =
                (match num "peak_rss_kb" with Some n -> int_of_float n | None -> 0);
              (* absent in pre-allocation-rig files: defaults read as "no
                 GC data", which the printers and comparisons skip *)
              gc_minor_words =
                (match num "host.gc_minor_words" with Some n -> n | None -> 0.0);
              gc_promoted_words =
                (match num "host.gc_promoted_words" with
                | Some n -> n
                | None -> 0.0);
              gc_major_collections =
                (match num "host.gc_major_collections" with
                | Some n -> int_of_float n
                | None -> 0);
              gc_words_per_event =
                (match num "host.gc_words_per_event" with
                | Some n -> n
                | None -> 0.0);
            }
        | _ -> None)
      runs

let comparison_json before after =
  Report.Json.Arr
    (List.filter_map
       (fun a ->
         match
           List.find_opt
             (fun b -> b.workload = a.workload && b.policy = a.policy)
             before
         with
         | Some b when a.wall_s > 0.0 ->
           Some
             (Report.Json.Obj
                ([
                   ("workload", Report.Json.Str a.workload);
                   ("policy", Report.Json.Str a.policy);
                   ("wall_before_s", Report.Json.Float b.wall_s);
                   ("wall_after_s", Report.Json.Float a.wall_s);
                   ("speedup", Report.Json.Float (b.wall_s /. a.wall_s));
                 ]
                @
                if b.gc_words_per_event > 0.0 && a.gc_words_per_event > 0.0
                then
                  [
                    ( "words_per_event_before",
                      Report.Json.Float b.gc_words_per_event );
                    ( "words_per_event_after",
                      Report.Json.Float a.gc_words_per_event );
                    ( "alloc_reduction",
                      Report.Json.Float
                        (b.gc_words_per_event /. a.gc_words_per_event) );
                  ]
                else []))
         | _ -> None)
       after)

let () =
  let smoke = ref false in
  let alloc = ref false in
  let check = ref false in
  let out = ref "BENCH_perf.json" in
  let baseline = ref "" in
  let jobs = ref 1 in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " tiny problem sizes (CI smoke test)");
      ( "--alloc",
        Arg.Set alloc,
        " allocation rig: GC profile of the pinned workloads only" );
      ( "--check",
        Arg.Set check,
        " with --alloc: fail if a pinned words-per-event ceiling is exceeded" );
      ( "--repeat",
        Arg.Set_int repeat,
        "N repeats per cell, best (minimum) wall time kept (default 3)" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N worker domains for the cell sweep (default 1; 0 = auto)" );
      ("--out", Arg.Set_string out, "FILE output JSON path (default BENCH_perf.json)");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE previous BENCH_perf.json to compare against" );
    ]
    (fun a -> raise (Arg.Bad ("unknown argument " ^ a)))
    "perf [--smoke] [--alloc [--check]] [--jobs N] [--out FILE] [--baseline \
     FILE]";
  if !jobs < 0 then begin
    prerr_endline "perf: --jobs must be >= 0";
    exit 2
  end;
  if !smoke then repeat := 1;
  (* Validate the baseline before spending minutes measuring. *)
  let load_baseline_or_die path =
    match load_baseline path with
    | runs -> runs
    | exception (Sys_error msg | Failure msg) ->
      Printf.eprintf "perf: cannot load baseline: %s\n" msg;
      exit 1
  in
  let before = if !baseline = "" then [] else load_baseline_or_die !baseline in
  let write_doc extra after =
    let doc =
      Report.Json.Obj
        ([
           ("schema", Report.Json.Str "lcm-bench-perf/1");
           ("scale", Report.Json.Str (if !smoke then "smoke" else "full"));
         ]
        @ extra
        @
        match before with
        | [] -> [ ("runs", runs_json after) ]
        | before ->
          [
            ("before", runs_json before);
            ("after", runs_json after);
            ("comparison", comparison_json before after);
          ])
    in
    let oc = open_out !out in
    output_string oc (Report.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "(wrote %s)\n" !out;
    (* self-check: the file we just wrote must parse and round-trip
       through the baseline reader *)
    let reread = load_baseline !out in
    if List.length reread <> List.length after then begin
      prerr_endline "perf: FATAL: written JSON did not round-trip";
      exit 1
    end
  in
  if !alloc then begin
    let after = alloc_runs () in
    print_alloc_table ~before after;
    write_doc [ ("mode", Report.Json.Str "alloc") ] after;
    if !check && not (check_ceilings after) then exit 1
  end
  else begin
    Printf.printf "%-28s %-16s %10s %13s %15s %12s %11s\n" "workload" "policy"
      "wall" "events" "events/sec" "sim-cycles" "peak-rss";
    let after = all_runs ~smoke:!smoke ~jobs:!jobs () in
    let pdes_runs = pdes_scaling ~smoke:!smoke () in
    write_doc
      [
        ("jobs", Report.Json.Int (Fleet.resolve_jobs !jobs));
        ("host_domains", Report.Json.Int (Domain.recommended_domain_count ()));
        ("pdes_scaling", runs_json pdes_runs);
        ( "pdes_note",
          Report.Json.Str
            "one simulation sharded across domains; identical sim_cycles \
             at every job count is asserted.  With host_domains = 1 the \
             drain pool is empty and jobs > 1 measures coordination \
             overhead, not speedup." );
      ]
      after
  end
