(* Quickstart: build a simulated multiprocessor, install Loosely Coherent
   Memory, and run a C**-style parallel function over an aggregate.

     dune exec examples/quickstart.exe

   The example demonstrates the core LCM semantics from the paper: during a
   parallel call every invocation sees the phase-start state of memory, all
   modifications stay private until reconcile_copies(), and the new global
   state appears atomically at the end of the call. *)

open Lcm_cstar

let () =
  (* A 8-node machine with CM-5-flavoured costs and an arity-4 fat tree. *)
  let machine =
    Lcm_tempest.Machine.create ~nnodes:8 ~words_per_block:8
      ~topology:(Lcm_net.Topology.Fat_tree { arity = 4 })
      ()
  in
  (* Install the LCM-mcc protocol (clean copies on every caching node). *)
  let proto = Lcm_core.Proto.install ~policy:Lcm_core.Policy.lcm_mcc machine in
  (* The runtime compiles parallel functions with LCM directives. *)
  let rt =
    Runtime.create proto ~strategy:Runtime.Lcm_directives
      ~schedule:Schedule.Static ()
  in

  (* An aggregate: a 1-D array of 64 values distributed across the nodes. *)
  let a = Runtime.alloc1d rt ~n:64 ~dist:Lcm_mem.Gmem.Chunked in
  for i = 0 to 63 do
    Agg.poke a 0 i i
  done;

  (* The parallel function: every element becomes the sum of itself and its
     ring neighbours.  Each invocation READS its neighbours and WRITES its
     own element — under a plain shared memory this would race; under C**
     semantics every invocation sees the phase-start values. *)
  Runtime.parallel_apply rt ~n:64 (fun ctx ->
      let i = ctx.Ctx.index in
      let left = Agg.get1 a ((i + 63) mod 64)
      and self = Agg.get1 a i
      and right = Agg.get1 a ((i + 1) mod 64) in
      Agg.set1 a i (left + self + right));

  (* After the parallel call the merged state is globally visible. *)
  let expect i = ((i + 63) mod 64) + i + ((i + 1) mod 64) in
  let ok = ref true in
  for i = 0 to 63 do
    if Agg.peek a 0 i <> expect i then ok := false
  done;
  Printf.printf "result correct: %b\n" !ok;
  Printf.printf "simulated time: %d cycles\n" (Runtime.elapsed rt);
  let stats = Runtime.stats rt in
  Printf.printf "clean copies created by the memory system: %d\n"
    (Lcm_util.Stats.get stats "lcm.clean_copies");
  Printf.printf "blocks reconciled at the end of the call: %d\n"
    (Lcm_util.Stats.get stats "lcm.reconciled_blocks");

  (* A reduction assignment: total %+= a[#0]  (paper section 4.2). *)
  let total = Runtime.reducer rt ~op:Lcm_core.Reduction.int_sum ~init:0 in
  Runtime.parallel_apply rt ~reducers:[ total ] ~flush_between:false ~n:64
    (fun ctx -> Reducer.add ctx total (Agg.get1 a ctx.Ctx.index));
  Printf.printf "parallel reduction total = %d\n" (Reducer.read total)
