(* The C** compiler's side of the bargain (paper section 6).

   A kernel written in the miniature C** AST is analysed for conflicting
   accesses; the compiler then emits either LCM directives or conservative
   explicit-copying code.  This demo prints both compilations of the
   paper's stencil function, plus the analysis of a pure map, where the
   compiler proves no directives are needed at all.

     dune exec examples/compiler_demo.exe *)

open Lcm_cstar
module K = Kernel

let stencil =
  {
    K.name = "stencil";
    body =
      [
        K.If
          ( K.Interior,
            [
              K.Assign
                ( "A",
                  K.Self,
                  K.Self,
                  K.Mul
                    ( K.Const 0.25,
                      K.Add
                        ( K.Add
                            ( K.Add
                                ( K.Read ("A", K.Off (-1), K.Self),
                                  K.Read ("A", K.Off 1, K.Self) ),
                              K.Read ("A", K.Self, K.Off (-1)) ),
                          K.Read ("A", K.Self, K.Off 1) ) ) );
            ],
            [ K.Assign ("A", K.Self, K.Self, K.Read ("A", K.Self, K.Self)) ] );
      ];
  }

let blur =
  {
    K.name = "blur_into";
    body =
      [
        K.Assign
          ( "B",
            K.Self,
            K.Self,
            K.Mul
              ( K.Const 0.5,
                K.Add (K.Read ("A", K.Self, K.Self), K.Read ("A", K.Off 1, K.Self)) ) );
      ];
  }

let mk strategy =
  let m =
    Lcm_tempest.Machine.create ~nnodes:8 ~words_per_block:8
      ~topology:Lcm_net.Topology.Crossbar ()
  in
  let policy =
    match strategy with
    | Runtime.Lcm_directives -> Lcm_core.Policy.lcm_mcc
    | Runtime.Explicit_copy -> Lcm_core.Policy.stache
  in
  let p = Lcm_core.Proto.install ~policy m in
  Runtime.create p ~strategy ~schedule:Schedule.Static ()

let () =
  print_endline "=== source kernel ===";
  Format.printf "%a@." K.pp stencil;

  print_endline "=== conflict analysis ===";
  Format.printf "stencil: %a@." K.pp_decision (K.analyze stencil);
  Format.printf "blur:    %a@.@." K.pp_decision (K.analyze blur);

  print_endline "=== compiled for LCM (the paper's section 6.1 listing) ===";
  Format.printf "%a@." (K.pp_compiled (mk Runtime.Lcm_directives)) stencil;

  print_endline "=== compiled with explicit copying (the baseline) ===";
  Format.printf "%a@." (K.pp_compiled (mk Runtime.Explicit_copy)) stencil;

  (* And actually run both; they must agree. *)
  let run strategy =
    let rt = mk strategy in
    let a = Runtime.alloc2d rt ~rows:16 ~cols:16 ~dist:Lcm_mem.Gmem.Chunked in
    for i = 0 to 15 do
      for j = 0 to 15 do
        Agg.pokef a i j (if i = 0 then 8.0 else 0.0)
      done
    done;
    let apply = K.compile rt stencil { K.aggs = [ ("A", a) ]; reducers = [] } ~over:"A" in
    for iter = 0 to 4 do
      apply ~iter ()
    done;
    let sum = ref 0.0 in
    for i = 0 to 15 do
      for j = 0 to 15 do
        sum := !sum +. Agg.peekf a i j
      done
    done;
    !sum
  in
  let lcm_sum = run Runtime.Lcm_directives in
  let copy_sum = run Runtime.Explicit_copy in
  Printf.printf "=== execution check ===\nLCM result %.4f  explicit-copy result %.4f  agree: %b\n"
    lcm_sum copy_sum
    (abs_float (lcm_sum -. copy_sum) < 1e-6)
