(* Dynamic data structures under LCM (the theme of paper section 6.2).

   Each partition's invocation filters its slice of a shared array and
   builds a linked list of the selected values from blocks allocated at run
   time — the kind of pointer-based, input-dependent structure no compiler
   can analyse.  The allocator and the lists live entirely in simulated
   shared memory; a sequential pass then walks all the lists.

     dune exec examples/dynamic_list.exe *)

open Lcm_cstar
module Memeff = Lcm_tempest.Memeff

let nnodes = 8
let n = 512

let value i = (i * 37) mod 101
let selected v = v mod 7 = 0

let run policy strategy =
  let machine =
    Lcm_tempest.Machine.create ~nnodes ~words_per_block:8
      ~topology:(Lcm_net.Topology.Fat_tree { arity = 4 })
      ()
  in
  let proto = Lcm_core.Proto.install ~policy machine in
  let rt = Runtime.create proto ~strategy ~schedule:Schedule.Static () in
  let data = Runtime.alloc1d rt ~n ~dist:Lcm_mem.Gmem.Chunked in
  for i = 0 to n - 1 do
    Agg.poke data 0 i (value i)
  done;
  (* one list head per partition, each in its own block to avoid sharing *)
  let gmem = Lcm_tempest.Machine.gmem machine in
  let heads =
    Array.init nnodes (fun nid ->
        Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On nid) ~nwords:8)
  in
  Array.iter (fun h -> Lcm_core.Proto.poke proto h 0) heads;
  let alloc = Shalloc.create proto ~blocks_per_node:128 in
  let ranges = Schedule.chunks ~n ~nchunks:nnodes in
  (* parallel phase: filter own slice into a fresh linked list;
     list node layout: [w0 = value; w1 = next address or 0]  *)
  Runtime.parallel_apply rt ~n:nnodes (fun ctx ->
      let part = ctx.Ctx.index in
      let lo, hi = ranges.(part) in
      for i = lo to hi - 1 do
        let v = Agg.get1 data i in
        if selected v then
          match Shalloc.alloc alloc ~node:ctx.Ctx.node with
          | None -> () (* arena exhausted: drop (counted by the checksum) *)
          | Some obj ->
            Memeff.store obj v;
            Memeff.store (obj + 1) (Memeff.load heads.(part));
            Memeff.store heads.(part) obj
      done);
  (* sequential phase: node 0 walks every partition's list *)
  let total = ref 0 and count = ref 0 in
  Runtime.sequential rt (fun () ->
      Array.iter
        (fun head ->
          let rec walk p =
            if p <> 0 then begin
              total := !total + Memeff.load p;
              incr count;
              walk (Memeff.load (p + 1))
            end
          in
          walk (Memeff.load head))
        heads);
  (!total, !count, Runtime.elapsed rt)

let () =
  let expected_total = ref 0 and expected_count = ref 0 in
  for i = 0 to n - 1 do
    if selected (value i) then begin
      expected_total := !expected_total + value i;
      incr expected_count
    end
  done;
  Printf.printf "expected: %d values summing to %d\n\n" !expected_count !expected_total;
  List.iter
    (fun (name, policy, strategy) ->
      let total, count, cycles = run policy strategy in
      Printf.printf "%-12s count=%d total=%d (%s) cycles=%d\n" name count total
        (if total = !expected_total && count = !expected_count then "ok"
         else "MISMATCH")
        cycles)
    [
      ("stache", Lcm_core.Policy.stache, Runtime.Explicit_copy);
      ("lcm-mcc", Lcm_core.Policy.lcm_mcc, Runtime.Lcm_directives);
    ]
