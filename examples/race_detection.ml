(* Semantic-violation and data-race detection (paper sections 7.2-7.3).

   LCM already tracks which words each processor modified, so
   reconciliation can report (a) two invocations writing the same word and
   (b) a block both read and written during one parallel phase — without
   per-location access histories.

     dune exec examples/race_detection.exe *)

open Lcm_cstar
module Memeff = Lcm_tempest.Memeff

let mk () =
  let machine =
    Lcm_tempest.Machine.create ~nnodes:4 ~words_per_block:8
      ~topology:Lcm_net.Topology.Crossbar ()
  in
  let proto =
    Lcm_core.Proto.install ~detect:true ~policy:Lcm_core.Policy.lcm_mcc machine
  in
  let rt =
    Runtime.create proto ~strategy:Runtime.Lcm_directives
      ~schedule:Schedule.Static ()
  in
  (proto, rt)

let () =
  print_endline "-- write/write conflict --";
  let proto, rt = mk () in
  let a = Runtime.alloc1d rt ~n:8 ~dist:Lcm_mem.Gmem.Chunked in
  (* Both invocations write element 3: under C** semantics exactly one
     value survives, and detection flags the violation. *)
  Runtime.parallel_apply rt ~n:2 (fun ctx ->
      Agg.set1 a 3 (100 + ctx.Ctx.index));
  List.iter
    (fun c -> Format.printf "  %a@." Lcm_core.Detect.pp_conflict c)
    (Lcm_core.Proto.conflicts proto);
  Printf.printf "  surviving value: %d (exactly one write won)\n\n"
    (Agg.peek a 0 3);

  print_endline "-- read/write race --";
  let proto, rt = mk () in
  let a = Runtime.alloc1d rt ~n:32 ~dist:Lcm_mem.Gmem.Chunked in
  (* One invocation reads element 5 while another writes it: a race under
     traditional semantics (C** itself permits it — the read sees the
     phase-start value).  The reader must not be the block's home node:
     home accesses hit local memory without a protocol request, so they
     are invisible to reconcile-time detection (see Detect). *)
  Runtime.parallel_apply rt ~n:4 (fun ctx ->
      match ctx.Ctx.index with
      | 2 -> ignore (Agg.get1 a 5)
      | 1 -> Agg.set1 a 5 9
      | _ -> ());
  List.iter
    (fun r -> Format.printf "  %a@." Lcm_core.Detect.pp_race r)
    (Lcm_core.Proto.races proto);

  print_endline "\n-- clean run: nothing reported --";
  let proto, rt = mk () in
  let a = Runtime.alloc1d rt ~n:8 ~dist:Lcm_mem.Gmem.Chunked in
  Runtime.parallel_apply rt ~n:8 (fun ctx -> Agg.set1 a ctx.Ctx.index ctx.Ctx.index);
  Printf.printf "  conflicts: %d, races: %d\n"
    (List.length (Lcm_core.Proto.conflicts proto))
    (List.length (Lcm_core.Proto.races proto))
