(* Convergence-driven relaxation: a realistic composite of the paper's
   pieces.  Each iteration is one parallel stencil application that ALSO
   accumulates the maximum per-cell change into a reduction variable
   (total %max= |new - old|); the sequential code between parallel calls
   reads the reconciled maximum and decides whether to stop — the
   alternating parallel/sequential structure of real C** programs.

     dune exec examples/convergence.exe *)

open Lcm_cstar
module Reduction = Lcm_core.Reduction

let n = 48
let tolerance = 0.05

let () =
  let machine =
    Lcm_tempest.Machine.create ~nnodes:16 ~words_per_block:8
      ~topology:(Lcm_net.Topology.Fat_tree { arity = 4 })
      ()
  in
  let proto = Lcm_core.Proto.install ~policy:Lcm_core.Policy.lcm_mcc machine in
  let rt =
    Runtime.create proto ~strategy:Runtime.Lcm_directives
      ~schedule:Schedule.Static ()
  in
  let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Agg.pokef a i j (if i = 0 then 100.0 else 0.0)
    done
  done;
  let delta = Runtime.reducer rt ~op:Reduction.f32_max ~init:0 in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < 500 do
    Reducer.setf delta 0.0;
    Runtime.parallel_apply_2d rt ~iter:!iter ~reducers:[ delta ] ~rows:n ~cols:n
      (fun ctx i j ->
        if i > 0 && j > 0 && i < n - 1 && j < n - 1 then begin
          let old = Agg.getf a i j in
          let v =
            0.25
            *. (Agg.getf a (i - 1) j +. Agg.getf a (i + 1) j +. Agg.getf a i (j - 1)
               +. Agg.getf a i (j + 1))
          in
          Agg.setf a i j v;
          Reducer.addf ctx delta (abs_float (v -. old))
        end);
    let d = Reducer.readf delta in
    if !iter mod 20 = 0 then
      Printf.printf "iteration %3d: max change %.4f\n%!" !iter d;
    if d < tolerance then converged := true;
    incr iter
  done;
  Printf.printf "\nconverged after %d iterations (tolerance %.2f)\n" !iter tolerance;
  Printf.printf "simulated time: %d cycles\n" (Runtime.elapsed rt);
  let centre = Agg.peekf a (n / 2) (n / 2) in
  Printf.printf "centre potential: %.3f\n" centre
