(* Stale data (paper section 7.5): an N-body-style computation tolerates
   old values of remote bodies, so consumers pin their read-only copies
   across reconciliations and refresh them only occasionally.

     dune exec examples/stale_data.exe *)

open Lcm_harness
open Lcm_apps

let params = { Nbody_stale.bodies = 512; iters = 12; work_per_body = 2 }

let run mode =
  let rt =
    Config.make_runtime
      { Config.default_machine with Config.nnodes = 16 }
      Config.lcm_mcc ~schedule:Lcm_cstar.Schedule.Static
  in
  Nbody_stale.run rt mode params

let () =
  let fresh = run `Fresh in
  Printf.printf "%d bodies, %d iterations, 16 nodes\n\n" params.Nbody_stale.bodies
    params.Nbody_stale.iters;
  Lcm_util.Tablefmt.print
    ~header:[ "mode"; "cycles"; "remote fetches"; "speedup"; "result drift" ]
    (List.map
       (fun mode ->
         let r = run mode in
         [
           Nbody_stale.mode_name mode;
           string_of_int r.Bench_result.cycles;
           string_of_int r.Bench_result.remote_fetches;
           Printf.sprintf "%.2fx"
             (float_of_int fresh.Bench_result.cycles
             /. float_of_int r.Bench_result.cycles);
           Printf.sprintf "%.4f"
             (abs_float (r.Bench_result.checksum -. fresh.Bench_result.checksum));
         ])
       [ `Fresh; `Stale 2; `Stale 4; `Stale 8 ]);
  print_newline ();
  print_endline "pinned read-only copies survive reconciliation; a refresh drops";
  print_endline "them so the next reference fetches the latest value"
