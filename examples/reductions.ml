(* Global reductions three ways (paper section 7.1).

     dune exec examples/reductions.exe

   The RSM reconciliation mechanism combines per-processor accumulators
   with the registered operator — no lock, no hand-written partial-sum
   code, and no extra compiler analysis to distinguish accumulators. *)

open Lcm_harness
open Lcm_apps

let params = { Reduce_demo.n = 8192; per_add_work = 2 }

let () =
  let machine = { Config.default_machine with Config.nnodes = 16 } in
  let rows =
    List.map
      (fun variant ->
        let system =
          match variant with
          | `Rsm_reconcile -> Config.lcm_mcc
          | `Manual_partials | `Serialized -> Config.stache
        in
        let rt = Config.make_runtime machine system ~schedule:Lcm_cstar.Schedule.Static in
        (variant, Reduce_demo.run rt variant params))
      [ `Rsm_reconcile; `Manual_partials; `Serialized ]
  in
  Printf.printf "summing a %d-element distributed array on %d nodes\n\n"
    params.Reduce_demo.n machine.Config.nnodes;
  Lcm_util.Tablefmt.print
    ~header:[ "implementation"; "cycles"; "messages"; "sum" ]
    (List.map
       (fun (v, (r : Bench_result.t)) ->
         [
           Reduce_demo.variant_name v;
           string_of_int r.cycles;
           string_of_int r.messages;
           Printf.sprintf "%.0f" r.checksum;
         ])
       rows);
  print_newline ();
  print_endline "rsm-reconcile:   reduction assignment through LCM private copies;";
  print_endline "                 reconciliation applies int_sum at the home";
  print_endline "manual-partials: the hand-written per-processor partial sums";
  print_endline "serialized:      atomic adds to one shared location (block ping-pong)"
