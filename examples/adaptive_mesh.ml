(* The paper's motivating scenario (sections 6.2-6.3): a dynamic,
   pointer-based adaptive mesh that a compiler cannot analyse.  Under a
   conventional memory system the program must conservatively copy the
   whole mesh every iteration; under LCM the memory system copies only what
   is actually modified.

     dune exec examples/adaptive_mesh.exe *)

open Lcm_harness
open Lcm_apps

let params =
  {
    Adaptive.n = 24;
    iters = 12;
    max_depth = 3;
    subdiv_threshold = 2.0;
    arena_per_node = 2048;
    work_per_cell = 6;
  }

let run system schedule =
  let machine = { Config.default_machine with Config.nnodes = 16 } in
  let rt = Config.make_runtime machine system ~schedule in
  Adaptive.run rt params

let () =
  print_endline "Adaptive mesh: conventional explicit copying vs LCM";
  print_endline "(dynamically scheduled, 16 nodes)\n";
  let stache = run Config.stache (Lcm_cstar.Schedule.Dynamic_random 5) in
  let mcc = run Config.lcm_mcc (Lcm_cstar.Schedule.Dynamic_random 5) in
  Lcm_util.Tablefmt.print
    ~header:[ "system"; "cycles"; "faults"; "clean copies"; "messages" ]
    [
      [
        "Stache + conservative copy";
        string_of_int stache.Bench_result.cycles;
        string_of_int stache.Bench_result.faults;
        string_of_int stache.Bench_result.clean_copies;
        string_of_int stache.Bench_result.messages;
      ];
      [
        "LCM-mcc (copy-on-write marks)";
        string_of_int mcc.Bench_result.cycles;
        string_of_int mcc.Bench_result.faults;
        string_of_int mcc.Bench_result.clean_copies;
        string_of_int mcc.Bench_result.messages;
      ];
    ];
  Printf.printf "\nresults agree: %b\n" (Bench_result.close stache mcc);
  Printf.printf "speedup from LCM: %.2fx\n"
    (float_of_int stache.Bench_result.cycles /. float_of_int mcc.Bench_result.cycles);
  (* the paper's Figure 1: refinement clusters where the gradient is steep *)
  print_endline "\nfinal mesh refinement (digit = quad-tree depth):";
  let rt =
    Config.make_runtime
      { Config.default_machine with Config.nnodes = 16 }
      Config.lcm_mcc ~schedule:Lcm_cstar.Schedule.Static
  in
  print_string (Adaptive.refinement_map rt params)
