(* Tests for topologies and the network transport. *)

open Lcm_net

let test_crossbar_hops () =
  Alcotest.(check int) "self" 0 (Topology.hops Crossbar ~src:3 ~dst:3);
  Alcotest.(check int) "other" 1 (Topology.hops Crossbar ~src:0 ~dst:31)

let test_mesh_hops () =
  let t = Topology.Mesh2d { cols = 4 } in
  (* node = row*4 + col *)
  Alcotest.(check int) "adjacent" 1 (Topology.hops t ~src:0 ~dst:1);
  Alcotest.(check int) "diagonal" 2 (Topology.hops t ~src:0 ~dst:5);
  Alcotest.(check int) "far corner" 6 (Topology.hops t ~src:0 ~dst:15)

let test_fattree_hops () =
  let t = Topology.Fat_tree { arity = 4 } in
  Alcotest.(check int) "same leaf group" 2 (Topology.hops t ~src:0 ~dst:3);
  Alcotest.(check int) "next group" 4 (Topology.hops t ~src:0 ~dst:4);
  Alcotest.(check int) "across 32 nodes" 6 (Topology.hops t ~src:0 ~dst:31)

let test_fattree_symmetric () =
  let t = Topology.Fat_tree { arity = 4 } in
  for src = 0 to 15 do
    for dst = 0 to 15 do
      Alcotest.(check int) "symmetric"
        (Topology.hops t ~src ~dst)
        (Topology.hops t ~src:dst ~dst:src)
    done
  done

let test_topology_parse () =
  Alcotest.(check bool) "crossbar" true (Topology.of_string "crossbar" = Ok Crossbar);
  Alcotest.(check bool) "mesh" true
    (Topology.of_string "mesh:8" = Ok (Mesh2d { cols = 8 }));
  Alcotest.(check bool) "fattree" true
    (Topology.of_string "FatTree:4" = Ok (Fat_tree { arity = 4 }));
  (match Topology.of_string "ring" with
  | Error e ->
    Alcotest.(check string) "error enumerates accepted spellings"
      "unknown topology \"ring\" (expected crossbar, mesh:<cols> or \
       fattree:<arity>)"
      e
  | Ok _ -> Alcotest.fail "garbage accepted");
  Alcotest.(check bool) "bad mesh" true
    (match Topology.of_string "mesh:0" with Error _ -> true | Ok _ -> false)

let test_topology_roundtrip () =
  List.iter
    (fun t ->
      Alcotest.(check bool) (Topology.to_string t) true
        (Topology.of_string (Topology.to_string t) = Ok t))
    [ Topology.Crossbar; Mesh2d { cols = 8 }; Fat_tree { arity = 4 } ]

let mk_net () =
  let engine = Lcm_sim.Engine.create () in
  let stats = Lcm_util.Stats.create () in
  let net =
    Network.create ~engine ~costs:Lcm_sim.Costs.default ~stats
      ~topology:Topology.Crossbar ~nnodes:4 ()
  in
  (engine, stats, net)

let test_network_latency_model () =
  let _, _, net = mk_net () in
  let c = Lcm_sim.Costs.default in
  Alcotest.(check int) "latency formula"
    (c.Lcm_sim.Costs.msg_fixed + c.Lcm_sim.Costs.msg_per_hop
   + (8 * c.Lcm_sim.Costs.msg_per_word))
    (Network.latency net ~src:0 ~dst:1 ~words:8)

let test_network_delivery () =
  let engine, stats, net = mk_net () in
  let arrived = ref (-1) in
  Network.send net ~src:0 ~dst:1 ~words:8 ~tag:"t" ~at:100 (fun ~arrival ->
      arrived := arrival);
  Lcm_sim.Engine.run engine;
  Alcotest.(check int) "arrival time" (100 + Network.latency net ~src:0 ~dst:1 ~words:8)
    !arrived;
  Alcotest.(check int) "msg counted" 1 (Lcm_util.Stats.get stats "net.msgs");
  Alcotest.(check int) "tag counted" 1 (Lcm_util.Stats.get stats "msg.t");
  Alcotest.(check int) "words counted" 8 (Lcm_util.Stats.get stats "net.words")

let test_network_fifo_per_channel () =
  let engine, _, net = mk_net () in
  let log = ref [] in
  (* Second message is smaller (lower latency) but must not overtake. *)
  Network.send net ~src:0 ~dst:1 ~words:32 ~tag:"big" ~at:0 (fun ~arrival:_ ->
      log := "big" :: !log);
  Network.send net ~src:0 ~dst:1 ~words:1 ~tag:"small" ~at:1 (fun ~arrival:_ ->
      log := "small" :: !log);
  Lcm_sim.Engine.run engine;
  Alcotest.(check (list string)) "fifo" [ "big"; "small" ] (List.rev !log)

let test_network_distinct_channels_independent () =
  let engine, _, net = mk_net () in
  let log = ref [] in
  Network.send net ~src:0 ~dst:1 ~words:32 ~tag:"slow" ~at:0 (fun ~arrival:_ ->
      log := "slow" :: !log);
  Network.send net ~src:2 ~dst:3 ~words:1 ~tag:"fast" ~at:0 (fun ~arrival:_ ->
      log := "fast" :: !log);
  Lcm_sim.Engine.run engine;
  Alcotest.(check (list string)) "no cross-channel ordering" [ "fast"; "slow" ]
    (List.rev !log)

let test_network_bad_node () =
  let _, _, net = mk_net () in
  Alcotest.check_raises "dst range" (Invalid_argument "Network.send: dst out of range")
    (fun () -> Network.send net ~src:0 ~dst:4 ~words:1 ~at:0 (fun ~arrival:_ -> ()))

let test_network_rejects_nonpositive_words () =
  let _, _, net = mk_net () in
  Alcotest.check_raises "zero words"
    (Invalid_argument "Network.send: words must be positive") (fun () ->
      Network.send net ~src:0 ~dst:1 ~words:0 ~at:0 (fun ~arrival:_ -> ()));
  Alcotest.check_raises "negative words"
    (Invalid_argument "Network.send: words must be positive") (fun () ->
      Network.send net ~src:0 ~dst:1 ~words:(-3) ~at:0 (fun ~arrival:_ -> ()))

let test_network_rejects_negative_at () =
  let _, _, net = mk_net () in
  Alcotest.check_raises "negative at"
    (Invalid_argument "Network.send: at must be >= 0") (fun () ->
      Network.send net ~src:0 ~dst:1 ~words:1 ~at:(-1) (fun ~arrival:_ -> ()))

let test_network_loopback_semantics () =
  (* src = dst: delivered at [at + msg_fixed], counted, but no channel
     occupancy — a later loopback is not serialized behind it, and the
     loopback does not delay real channel traffic. *)
  let engine, stats, net = mk_net () in
  let c = Lcm_sim.Costs.default in
  let arrivals = ref [] in
  Network.send net ~src:2 ~dst:2 ~words:8 ~tag:"self" ~at:100 (fun ~arrival ->
      arrivals := ("a", arrival) :: !arrivals);
  Network.send net ~src:2 ~dst:2 ~words:8 ~tag:"self" ~at:100 (fun ~arrival ->
      arrivals := ("b", arrival) :: !arrivals);
  Lcm_sim.Engine.run engine;
  let fixed = c.Lcm_sim.Costs.msg_fixed in
  Alcotest.(check (list (pair string int)))
    "both arrive at at + msg_fixed, no serialization"
    [ ("a", 100 + fixed); ("b", 100 + fixed) ]
    (List.rev !arrivals);
  Alcotest.(check int) "loopback latency is msg_fixed" fixed
    (Network.latency net ~src:2 ~dst:2 ~words:8);
  Alcotest.(check int) "loopback messages counted" 2
    (Lcm_util.Stats.get stats "net.msgs");
  Alcotest.(check int) "loopback words counted" 16
    (Lcm_util.Stats.get stats "net.words")

let test_network_clamps_to_engine_now () =
  let engine, _, net = mk_net () in
  Lcm_sim.Engine.schedule engine ~at:10_000 (fun () ->
      (* a handler reacting to an old message sends "in the past" *)
      Network.send net ~src:0 ~dst:1 ~words:1 ~tag:"late" ~at:0 (fun ~arrival ->
          Alcotest.(check bool) "not before now" true (arrival >= 10_000)));
  Lcm_sim.Engine.run engine

let test_network_bandwidth_serializes () =
  (* Two equal-size back-to-back messages: the second must arrive at least
     the first message's transmission time later, not a fixed 1 cycle. *)
  let engine, _, net = mk_net () in
  let arrivals = ref [] in
  Network.send net ~src:0 ~dst:1 ~words:8 ~tag:"a" ~at:0 (fun ~arrival ->
      arrivals := arrival :: !arrivals);
  Network.send net ~src:0 ~dst:1 ~words:8 ~tag:"b" ~at:0 (fun ~arrival ->
      arrivals := arrival :: !arrivals);
  Lcm_sim.Engine.run engine;
  match List.rev !arrivals with
  | [ a1; a2 ] ->
    Alcotest.(check int) "spaced by transmission time"
      (a1 + Network.transmission_time net ~words:8)
      a2
  | _ -> Alcotest.fail "expected two deliveries"

let prop_network_channel_occupancy =
  (* On any channel, message k+1 arrives no earlier than message k's
     arrival plus message k's transmission time (words * msg_per_word,
     min 1) — FIFO order falls out of the spacing. *)
  QCheck.Test.make ~name:"per-channel arrivals spaced by transmission time"
    ~count:100
    QCheck.(
      list_of_size
        Gen.(1 -- 30)
        (triple (int_bound 3) (int_bound 2) (int_range 1 40)))
    (fun msgs ->
      let engine = Lcm_sim.Engine.create () in
      let stats = Lcm_util.Stats.create () in
      let net =
        Network.create ~engine ~costs:Lcm_sim.Costs.default ~stats
          ~topology:Topology.Crossbar ~nnodes:4 ()
      in
      let log = Hashtbl.create 16 in
      List.iter
        (fun (src, doff, words) ->
          (* loopback channels have no occupancy; keep src <> dst *)
          let dst = (src + 1 + doff) mod 4 in
          Network.send net ~src ~dst ~words ~tag:"p" ~at:0 (fun ~arrival ->
              let chan = (src, dst) in
              let prev = Option.value (Hashtbl.find_opt log chan) ~default:[] in
              Hashtbl.replace log chan ((arrival, words) :: prev)))
        msgs;
      Lcm_sim.Engine.run engine;
      Hashtbl.fold
        (fun _ l acc ->
          let rec spaced = function
            | (a1, w1) :: ((a2, _) :: _ as rest) ->
              a2 >= a1 + Network.transmission_time net ~words:w1
              && spaced rest
            | [ _ ] | [] -> true
          in
          acc && spaced (List.rev l))
        log true)

let prop_network_delivers_everything_fifo =
  (* random message batches: every message delivered exactly once, and
     per-channel delivery order matches send order *)
  QCheck.Test.make ~name:"all messages delivered, FIFO per channel" ~count:60
    QCheck.(list (triple (int_bound 3) (int_bound 3) (int_range 1 40)))
    (fun msgs ->
      let engine = Lcm_sim.Engine.create () in
      let stats = Lcm_util.Stats.create () in
      let net =
        Network.create ~engine ~costs:Lcm_sim.Costs.default ~stats
          ~topology:Topology.Crossbar ~nnodes:4 ()
      in
      let delivered = Hashtbl.create 16 in
      List.iteri
        (fun seq (src, dst, words) ->
          Network.send net ~src ~dst ~words ~tag:"p" ~at:0 (fun ~arrival:_ ->
              let chan = (src, dst) in
              let prev = Option.value (Hashtbl.find_opt delivered chan) ~default:[] in
              Hashtbl.replace delivered chan (seq :: prev)))
        msgs;
      Lcm_sim.Engine.run engine;
      let total = Hashtbl.fold (fun _ l acc -> acc + List.length l) delivered 0 in
      total = List.length msgs
      && Hashtbl.fold
           (fun _ l acc ->
             acc
             && (* seqs per channel must be increasing once un-reversed *)
             let rec increasing = function
               | a :: (b :: _ as rest) -> a < b && increasing rest
               | [ _ ] | [] -> true
             in
             increasing (List.rev l))
           delivered true)

(* Regression: the Msg_send trace event used to be stamped with the
   caller's [at] even when channel occupancy delayed injection; it must
   carry the actual injection time, and the stall must be recorded in the
   net.channel_stall_cycles sample. *)
let test_network_stall_sample_and_send_stamp () =
  let engine, stats, net = mk_net () in
  let tr = Lcm_sim.Trace.create ~capacity:16 in
  Network.set_trace net (Some tr);
  let arrivals = ref [] in
  Network.send net ~src:0 ~dst:1 ~words:8 ~tag:"a" ~at:0 (fun ~arrival ->
      arrivals := arrival :: !arrivals);
  Network.send net ~src:0 ~dst:1 ~words:8 ~tag:"b" ~at:0 (fun ~arrival ->
      arrivals := arrival :: !arrivals);
  Lcm_sim.Engine.run engine;
  let lat = Network.latency net ~src:0 ~dst:1 ~words:8 in
  let second_arrival =
    match List.rev !arrivals with
    | [ _; a2 ] -> a2
    | _ -> Alcotest.fail "expected two deliveries"
  in
  let sends =
    List.filter_map
      (function
        | t, Lcm_sim.Trace.Msg_send { tag; _ } -> Some (tag, t) | _ -> None)
      (Lcm_sim.Trace.events tr)
  in
  Alcotest.(check (list (pair string int)))
    "send events stamped at injection time"
    [ ("a", 0); ("b", second_arrival - lat) ]
    sends;
  let stall = Network.transmission_time net ~words:8 in
  Alcotest.(check int) "one stall observed" 1
    (Lcm_util.Stats.sample_count stats "net.channel_stall_cycles");
  Alcotest.(check (float 1e-9)) "stall magnitude"
    (float_of_int stall)
    (Lcm_util.Stats.sample_sum stats "net.channel_stall_cycles")

let all_topos =
  [ Topology.Crossbar; Topology.Mesh2d { cols = 8 }; Topology.Fat_tree { arity = 4 } ]

let prop_hops_symmetric_zero_iff_self =
  QCheck.Test.make ~name:"hops symmetric; zero iff src = dst" ~count:300
    QCheck.(pair (int_bound 63) (int_bound 63))
    (fun (src, dst) ->
      List.for_all
        (fun t ->
          let h = Topology.hops t ~src ~dst in
          h = Topology.hops t ~src:dst ~dst:src && (h = 0) = (src = dst))
        all_topos)

module Barrier = Lcm_core.Barrier

let barrier_styles = [ Barrier.Constant; Barrier.Flat; Barrier.Tree 2; Barrier.Tree 4 ]

let prop_barrier_release_after_latest_join =
  QCheck.Test.make ~name:"barrier release >= latest join, every style" ~count:200
    QCheck.(list_of_size Gen.(1 -- 32) (int_bound 10_000))
    (fun joins ->
      let join_times = Array.of_list joins in
      let latest = Array.fold_left max 0 join_times in
      List.for_all
        (fun style ->
          Barrier.release_time ~costs:Lcm_sim.Costs.default ~style ~join_times
          >= latest)
        barrier_styles)

let prop_barrier_monotone_in_joins =
  QCheck.Test.make ~name:"barrier release monotone in each join time" ~count:200
    QCheck.(triple
              (list_of_size Gen.(1 -- 16) (int_bound 10_000))
              (int_bound 15) (int_bound 500))
    (fun (joins, idx, bump) ->
      let join_times = Array.of_list joins in
      let idx = idx mod Array.length join_times in
      List.for_all
        (fun style ->
          let base =
            Barrier.release_time ~costs:Lcm_sim.Costs.default ~style ~join_times
          in
          let bumped = Array.copy join_times in
          bumped.(idx) <- bumped.(idx) + bump;
          Barrier.release_time ~costs:Lcm_sim.Costs.default ~style
            ~join_times:bumped
          >= base)
        barrier_styles)

let prop_fattree_hops_bounded =
  QCheck.Test.make ~name:"fat tree hops bounded by 2*height" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (src, dst) ->
      let h = Topology.hops (Fat_tree { arity = 4 }) ~src ~dst in
      h >= 0 && h <= 8 && (h = 0) = (src = dst))

let prop_mesh_triangle =
  QCheck.Test.make ~name:"mesh triangle inequality" ~count:200
    QCheck.(triple (int_bound 63) (int_bound 63) (int_bound 63))
    (fun (a, b, c) ->
      let t = Topology.Mesh2d { cols = 8 } in
      Topology.hops t ~src:a ~dst:c
      <= Topology.hops t ~src:a ~dst:b + Topology.hops t ~src:b ~dst:c)

let () =
  Alcotest.run "lcm_net"
    [
      ( "topology",
        [
          ("crossbar", `Quick, test_crossbar_hops);
          ("mesh", `Quick, test_mesh_hops);
          ("fattree", `Quick, test_fattree_hops);
          ("fattree symmetric", `Quick, test_fattree_symmetric);
          ("parse", `Quick, test_topology_parse);
          ("roundtrip", `Quick, test_topology_roundtrip);
          QCheck_alcotest.to_alcotest prop_fattree_hops_bounded;
          QCheck_alcotest.to_alcotest prop_mesh_triangle;
          QCheck_alcotest.to_alcotest prop_hops_symmetric_zero_iff_self;
        ] );
      ( "barrier",
        [
          QCheck_alcotest.to_alcotest prop_barrier_release_after_latest_join;
          QCheck_alcotest.to_alcotest prop_barrier_monotone_in_joins;
        ] );
      ( "network",
        [
          ("latency model", `Quick, test_network_latency_model);
          ("delivery", `Quick, test_network_delivery);
          ("fifo per channel", `Quick, test_network_fifo_per_channel);
          ("bandwidth serializes", `Quick, test_network_bandwidth_serializes);
          ("channels independent", `Quick, test_network_distinct_channels_independent);
          ("bad node", `Quick, test_network_bad_node);
          ("rejects nonpositive words", `Quick,
           test_network_rejects_nonpositive_words);
          ("rejects negative at", `Quick, test_network_rejects_negative_at);
          ("loopback semantics", `Quick, test_network_loopback_semantics);
          ("clamps to now", `Quick, test_network_clamps_to_engine_now);
          ("stall sample and send stamp", `Quick,
           test_network_stall_sample_and_send_stamp);
          QCheck_alcotest.to_alcotest prop_network_channel_occupancy;
          QCheck_alcotest.to_alcotest prop_network_delivers_everything_fifo;
        ] );
    ]
