(* The policy-matrix smoke: every policy in the registry — directory and
   snooping-bus families alike — gets (a) a bounded fingerprint
   determinism check (same fixed-seed workload twice must digest
   bit-identically), (b) a short differential stress sweep against the
   golden model, and (c) a protocol-invariant audit on the quiescent
   machine.  The suite iterates [Config.all_systems] /
   [Stress.all_policies], so a policy added to [Policy.all] is covered
   here with no test edits — and a policy that bypasses the registry
   simply does not exist as far as the CLI and this matrix are
   concerned.  Run directly via [make policy-matrix] or as part of
   [dune runtest]. *)

open Lcm_harness
module Policy = Lcm_core.Policy

let run_stencil sys =
  let rt =
    Config.make_runtime
      { Config.default_machine with Config.nnodes = 4 }
      sys ~schedule:Lcm_cstar.Schedule.Static
  in
  Lcm_tempest.Machine.enable_trace ~capacity:(1 lsl 16)
    (Lcm_cstar.Runtime.machine rt);
  let sum =
    (Lcm_apps.Stencil.run rt
       { Lcm_apps.Stencil.n = 16; iters = 2; work_per_cell = 3 })
      .Lcm_apps.Bench_result.checksum
  in
  let fp = Fingerprint.of_runtime rt in
  (match Lcm_core.Proto.check_invariants (Lcm_cstar.Runtime.proto rt) with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "%s: invariant violation: %s" sys.Config.label
        (String.concat "; " e));
  (sum, fp)

let test_deterministic sys () =
  let sum1, fp1 = run_stencil sys in
  let sum2, fp2 = run_stencil sys in
  Alcotest.(check (float 0.0))
    (sys.Config.label ^ " checksum repeats") sum1 sum2;
  if not (Fingerprint.equal fp1 fp2) then
    Alcotest.failf "%s: fingerprint drifted between identical runs:\n  %s\n  %s"
      sys.Config.label
      (Fingerprint.to_string fp1)
      (Fingerprint.to_string fp2)

let test_checksums_agree () =
  (* All seven policies are coherent memory systems: the same program must
     compute the same answer under every one of them. *)
  let sums =
    List.map (fun sys -> (sys.Config.label, fst (run_stencil sys)))
      Config.all_systems
  in
  match sums with
  | [] -> Alcotest.fail "empty registry"
  | (_, golden) :: _ ->
      List.iter
        (fun (label, sum) ->
          Alcotest.(check (float 0.0)) (label ^ " agrees") golden sum)
        sums

let test_stress policy () =
  match Stress.run ~policy ~cases:8 ~seed:5 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e

let () =
  Alcotest.run "lcm_policy_matrix"
    [
      ( "fingerprint",
        List.map
          (fun sys ->
            Alcotest.test_case
              (sys.Config.label ^ " deterministic")
              `Quick (test_deterministic sys))
          Config.all_systems
        @ [ Alcotest.test_case "checksums agree" `Quick test_checksums_agree ]
      );
      ( "stress",
        List.map
          (fun (p : Policy.t) ->
            Alcotest.test_case (p.Policy.name ^ " 8 cases") `Quick
              (test_stress p))
          Stress.all_policies );
    ]
