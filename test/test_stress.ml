(* Bounded fixed-seed run of the differential stress harness
   (Lcm_harness.Stress): 30 cases per registered policy — the directory
   family and the snooping-bus family alike — plus 30 mixed-policy cases,
   each checked word-for-word against the golden per-epoch model and
   Proto.check_invariants.  Failures print a shrunk, seed-reproducible
   counterexample. *)

module Stress = Lcm_harness.Stress
module Policy = Lcm_core.Policy

let run_policy policy () =
  match Stress.run ~policy ~cases:30 ~seed:1 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e

let test_mixed () =
  match Stress.run ~cases:30 ~seed:2 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e

let test_shrink_minimizes () =
  (* The shrinker must home in on a small failing core: check it against a
     deliberately broken oracle by failing run_case via an impossible
     program — here we just check determinism of gen: same seed/case give
     identical programs. *)
  let a = Stress.gen ~seed:7 ~case:3 () in
  let b = Stress.gen ~seed:7 ~case:3 () in
  Alcotest.(check string)
    "generation is deterministic"
    (Format.asprintf "%a" Stress.pp_prog a)
    (Format.asprintf "%a" Stress.pp_prog b)

let () =
  Alcotest.run "lcm_stress"
    [
      ( "stress",
        List.map
          (fun (p : Policy.t) ->
            Alcotest.test_case (p.Policy.name ^ " 30 cases") `Slow
              (run_policy p))
          Stress.all_policies
        @ [
            Alcotest.test_case "mixed policies" `Slow test_mixed;
            Alcotest.test_case "deterministic generation" `Quick
              test_shrink_minimizes;
          ] );
    ]
