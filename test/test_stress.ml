(* Bounded fixed-seed run of the differential stress harness
   (Lcm_harness.Stress): 30 cases per registered policy — the directory
   family and the snooping-bus family alike — plus 30 mixed-policy cases,
   each checked word-for-word against the golden per-epoch model and
   Proto.check_invariants.  Failures print a shrunk, seed-reproducible
   counterexample. *)

module Stress = Lcm_harness.Stress
module Policy = Lcm_core.Policy

let run_policy policy () =
  match Stress.run ~policy ~cases:30 ~seed:1 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e

let test_mixed () =
  match Stress.run ~cases:30 ~seed:2 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e

let test_shrink_minimizes () =
  (* The shrinker must home in on a small failing core: check it against a
     deliberately broken oracle by failing run_case via an impossible
     program — here we just check determinism of gen: same seed/case give
     identical programs. *)
  let a = Stress.gen ~seed:7 ~case:3 () in
  let b = Stress.gen ~seed:7 ~case:3 () in
  Alcotest.(check string)
    "generation is deterministic"
    (Format.asprintf "%a" Stress.pp_prog a)
    (Format.asprintf "%a" Stress.pp_prog b)

(* A seeded program guaranteed to carry a reduction region with live
   accums: the regression surface for the shrinker's reduction handling. *)
let seeded_reduction_prog () : Stress.prog =
  {
    seed = 11;
    case = 0;
    policy = Policy.lcm_mcc;
    nnodes = 2;
    words_per_block = 4;
    nblocks = 2;
    dist = Lcm_mem.Gmem.Chunked;
    topology = Lcm_net.Topology.Crossbar;
    barrier = Lcm_core.Barrier.Constant;
    capacity_blocks = None;
    hw_cache_blocks = None;
    reductions = [ (0, Lcm_core.Reduction.int_sum) ];
    init = [ (0, 3); (4, 8) ];
    segments =
      [
        Stress.Parallel
          [|
            [ Stress.Mark 0; Stress.Accum (0, 2); Stress.Load 4 ];
            [ Stress.Mark 0; Stress.Accum (0, 5); Stress.Mark 4;
              Stress.Store (4, 9) ];
          |];
        Stress.Parallel [| [ Stress.Mark 1; Stress.Accum (1, 7) ]; [] |];
      ];
  }

let accum_count (prog : Stress.prog) =
  List.fold_left
    (fun acc seg ->
      let ops =
        match seg with Stress.Sequential o | Stress.Parallel o -> o
      in
      Array.fold_left
        (fun acc opl ->
          acc
          + List.length
              (List.filter
                 (function Stress.Accum _ -> true | _ -> false)
                 opl))
        acc ops)
    0 prog.Stress.segments

let orphan_accums (prog : Stress.prog) =
  List.exists
    (fun seg ->
      let ops =
        match seg with Stress.Sequential o | Stress.Parallel o -> o
      in
      Array.exists
        (List.exists (function
          | Stress.Accum (w, _) ->
            not
              (List.mem_assoc
                 (w / prog.Stress.words_per_block)
                 prog.Stress.reductions)
          | _ -> false))
        ops)
    prog.Stress.segments

(* Regression: shrinking a reduction program must never evaluate a
   candidate whose accums outlived their region — the golden model on
   such a candidate used to die with an anonymous option crash mid-
   shrink; now regions are dropped together with their accums and an
   orphan accum is a typed failure naming the word. *)
let test_shrink_keeps_accums_with_their_region () =
  let prog = seeded_reduction_prog () in
  (* every candidate the shrinker proposes must be well-formed: golden
     evaluates without raising *)
  let shrunk =
    Stress.shrink_with
      (fun p ->
        ignore (Stress.golden p);
        Alcotest.(check bool) "no orphan accums in candidate" false
          (orphan_accums p);
        accum_count p > 0)
      prog
  in
  (* the predicate pins accums, so the region must survive with them *)
  Alcotest.(check bool) "accums survive" true (accum_count shrunk > 0);
  Alcotest.(check bool) "their region survives" true
    (shrunk.Stress.reductions <> []);
  (* ... and when the predicate does NOT pin accums, the region shrinks
     away together with every accum targeting it *)
  let gone = Stress.shrink_with (fun p -> ignore (Stress.golden p); true) prog in
  Alcotest.(check bool) "regions dropped" true (gone.Stress.reductions = []);
  Alcotest.(check int) "accums dropped with them" 0 (accum_count gone)

let test_orphan_accum_is_typed_failure () =
  let prog = seeded_reduction_prog () in
  let orphaned = { prog with Stress.reductions = [] } in
  Alcotest.check_raises "golden names the word"
    (Failure "Stress: accum targets word 0 outside every registered reduction region")
    (fun () -> ignore (Stress.golden orphaned))

let () =
  Alcotest.run "lcm_stress"
    [
      ( "stress",
        List.map
          (fun (p : Policy.t) ->
            Alcotest.test_case (p.Policy.name ^ " 30 cases") `Slow
              (run_policy p))
          Stress.all_policies
        @ [
            Alcotest.test_case "mixed policies" `Slow test_mixed;
            Alcotest.test_case "deterministic generation" `Quick
              test_shrink_minimizes;
            Alcotest.test_case "shrink keeps accums with their region" `Quick
              test_shrink_keeps_accums_with_their_region;
            Alcotest.test_case "orphan accum is a typed failure" `Quick
              test_orphan_accum_is_typed_failure;
          ] );
    ]
