(* Unit and property tests for Lcm_util: heap, rng, mask, stats, tablefmt. *)

open Lcm_util

let check = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair int int))) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "min_key empty" None (Heap.min_key h)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.add h ~key:k k) [ 5; 3; 9; 1; 7; 3 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
      out := k :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 3; 3; 5; 7; 9 ] (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iteri (fun i tag -> Heap.add h ~key:(i mod 2) tag) [ "a"; "b"; "c"; "d"; "e" ];
  (* keys: a=0 b=1 c=0 d=1 e=0; expect a c e (key 0, FIFO) then b d *)
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  let out =
    let rec take n = if n = 0 then [] else let v = pop () in v :: take (n - 1) in
    take 5
  in
  Alcotest.(check (list string)) "fifo among equals" [ "a"; "c"; "e"; "b"; "d" ] out

let test_heap_clear_and_reuse () =
  let h = Heap.create () in
  Heap.add h ~key:1 "x";
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.add h ~key:2 "y";
  Alcotest.(check (option (pair int string))) "reuse" (Some (2, "y")) (Heap.pop h)

(* [clear] keeps capacity: filling past the initial 16-slot chunk, clearing
   and refilling must behave exactly like a fresh heap (ordering, FIFO ties,
   length) — the eviction lookaside rebuilds its heap this way constantly. *)
let test_heap_clear_keeps_working_at_capacity () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.add h ~key:(100 - i) i
  done;
  Heap.clear h;
  check "cleared length" 0 (Heap.length h);
  for i = 0 to 49 do
    Heap.add h ~key:(i mod 5) i
  done;
  check "refilled length" 50 (Heap.length h);
  let prev_key = ref min_int and prev_val = ref min_int and ok = ref true in
  let rec drain () =
    if not (Heap.is_empty h) then begin
      let k = Heap.top_key h in
      let v = Heap.pop_exn h in
      if k < !prev_key then ok := false;
      if k = !prev_key && v < !prev_val then ok := false (* FIFO among ties *);
      prev_key := k;
      prev_val := v;
      drain ()
    end
  in
  drain ();
  Alcotest.(check bool) "sorted, stable after clear+refill" true !ok

let test_heap_top_key_pop_exn () =
  let h = Heap.create () in
  Alcotest.check_raises "top_key empty" (Invalid_argument "Heap.top_key: empty heap")
    (fun () -> ignore (Heap.top_key h));
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h));
  List.iter (fun k -> Heap.add h ~key:k (10 * k)) [ 5; 2; 8 ];
  check "top_key" 2 (Heap.top_key h);
  check "pop_exn min value" 20 (Heap.pop_exn h);
  check "top_key after pop" 5 (Heap.top_key h)

let test_heap_iter_unordered () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.add h ~key:k k) [ 4; 2; 8 ];
  let sum = ref 0 in
  Heap.iter_unordered h (fun ~key _ -> sum := !sum + key);
  check "iter sum" 14 !sum;
  check "length preserved" 3 (Heap.length h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.add h ~key:k ()) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* The FIFO-among-equals guarantee, isolated: keys drawn from a tiny range
   so nearly every insertion ties, values are insertion indices, and the
   drain must equal a *stable* sort — any tie broken by sift accident
   instead of the seq stamp shows up as an index inversion.  This is the
   property the parallel engine's determinism rests on. *)
let prop_heap_fifo_equal_keys =
  QCheck.Test.make ~name:"heap FIFO among equal keys" ~count:300
    QCheck.(list (int_bound 2))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.add h ~key:k i) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, i) -> drain ((k, i) :: acc)
        | None -> List.rev acc
      in
      let expected =
        List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i k -> (k, i)) keys)
      in
      drain [] = expected)

(* Caller-stamped insertion: spraying one stamp-ordered stream across
   several heaps and merging back by (top_key, top_seq) must reproduce the
   single-heap pop order exactly — the invariant the PDES shard queues
   rely on. *)
let prop_heap_stamped_merge =
  QCheck.Test.make ~name:"add_stamped k-way merge ≡ single heap" ~count:300
    QCheck.(pair (int_range 1 4) (list (int_bound 3)))
    (fun (nheaps, keys) ->
      let reference = Heap.create () in
      List.iteri (fun i k -> Heap.add reference ~key:k i) keys;
      let shards = Array.init nheaps (fun _ -> Heap.create ()) in
      List.iteri
        (fun i k -> Heap.add_stamped shards.(i mod nheaps) ~key:k ~seq:i i)
        keys;
      let pick () =
        let best = ref (-1) and bk = ref max_int and bs = ref max_int in
        Array.iteri
          (fun s h ->
            if not (Heap.is_empty h) then
              let k = Heap.top_key h and q = Heap.top_seq h in
              if k < !bk || (k = !bk && q < !bs) then begin
                best := s;
                bk := k;
                bs := q
              end)
          shards;
        if !best < 0 then None else Some (Heap.pop_exn shards.(!best))
      in
      let rec merged acc =
        match pick () with Some v -> merged (v :: acc) | None -> List.rev acc
      in
      let rec ref_order acc =
        match Heap.pop reference with
        | Some (_, v) -> ref_order (v :: acc)
        | None -> List.rev acc
      in
      merged [] = ref_order [])

let test_heap_add_stamped () =
  let h = Heap.create () in
  Alcotest.check_raises "top_seq empty"
    (Invalid_argument "Heap.top_seq: empty heap") (fun () ->
      ignore (Heap.top_seq h));
  (* explicit stamps override insertion order among equal keys *)
  Heap.add_stamped h ~key:5 ~seq:9 "late";
  Heap.add_stamped h ~key:5 ~seq:3 "early";
  check "top seq is the smaller stamp" 3 (Heap.top_seq h);
  Alcotest.(check string) "stamp order wins" "early" (Heap.pop_exn h);
  (* the internal counter advanced past every explicit stamp: a plain add
     at the same key cannot tie ambiguously, it pops after *)
  Heap.add h ~key:5 "plain";
  Alcotest.(check string) "explicit before implicit" "late" (Heap.pop_exn h);
  Alcotest.(check string) "implicit last" "plain" (Heap.pop_exn h)

(* Pop order is unaffected by an earlier clear: add one batch, clear, add a
   second batch — the drain must equal a stable sort of the second batch
   alone (keys ascending, insertion order among equal keys). *)
let prop_heap_clear_then_pop_order =
  QCheck.Test.make ~name:"heap pop order after clear" ~count:200
    QCheck.(pair (list small_int) (list small_int))
    (fun (first, second) ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.add h ~key:k (-1)) first;
      Heap.clear h;
      List.iteri (fun i k -> Heap.add h ~key:k i) second;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, i) -> drain ((k, i) :: acc)
        | None -> List.rev acc
      in
      let expected =
        List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i k -> (k, i)) second)
      in
      drain [] = expected)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_copy_independent () =
  let a = Rng.create ~seed:5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:6 in
  let b = Rng.split a in
  (* The split stream must not mirror the parent. *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 5)

let test_rng_int_distribution () =
  (* Coarse uniformity check: each of 8 buckets within 3x of expectation. *)
  let r = Rng.create ~seed:8 in
  let buckets = Array.make 8 0 in
  let n = 8000 in
  for _ = 1 to n do
    let i = Rng.int r 8 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket sane" true (c > 300 && c < 3000))
    buckets

(* ------------------------------------------------------------------ *)
(* Mask                                                               *)
(* ------------------------------------------------------------------ *)

let test_mask_basics () =
  let m = Mask.of_list [ 0; 3; 7 ] in
  Alcotest.(check bool) "mem 3" true (Mask.mem m 3);
  Alcotest.(check bool) "not mem 4" false (Mask.mem m 4);
  check "cardinal" 3 (Mask.cardinal m);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 3; 7 ] (Mask.to_list m)

let test_mask_full () =
  check "full 8 cardinal" 8 (Mask.cardinal (Mask.full 8));
  check "full 0" 0 (Mask.cardinal (Mask.full 0));
  Alcotest.check_raises "full too big" (Invalid_argument "Mask.full") (fun () ->
      ignore (Mask.full 63))

let test_mask_set_ops () =
  let a = Mask.of_list [ 1; 2; 3 ] and b = Mask.of_list [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Mask.to_list (Mask.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Mask.to_list (Mask.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Mask.to_list (Mask.diff a b));
  Alcotest.(check bool) "overlaps" true (Mask.overlaps a b);
  Alcotest.(check bool) "no overlap" false (Mask.overlaps a (Mask.of_list [ 5 ]))

let test_mask_bounds () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Mask: word index out of range") (fun () ->
      ignore (Mask.singleton (-1)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Mask: word index out of range") (fun () ->
      ignore (Mask.set Mask.empty 62))

let test_mask_pp () =
  let s = Format.asprintf "%a" Mask.pp (Mask.of_list [ 0; 2 ]) in
  Alcotest.(check string) "render" "{0,2}" s

let prop_mask_roundtrip =
  let gen = QCheck.(list_of_size (Gen.int_bound 10) (int_bound 61)) in
  QCheck.Test.make ~name:"mask of_list/to_list roundtrip" ~count:200 gen (fun is ->
      let sorted = List.sort_uniq compare is in
      Mask.to_list (Mask.of_list is) = sorted)

let prop_mask_union_cardinal =
  let gen = QCheck.(pair (list (int_bound 61)) (list (int_bound 61))) in
  QCheck.Test.make ~name:"inclusion-exclusion" ~count:200 gen (fun (a, b) ->
      let ma = Mask.of_list a and mb = Mask.of_list b in
      Mask.cardinal (Mask.union ma mb) + Mask.cardinal (Mask.inter ma mb)
      = Mask.cardinal ma + Mask.cardinal mb)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_counters () =
  let s = Stats.create () in
  check "unset is 0" 0 (Stats.get s "x");
  Stats.incr s "x";
  Stats.add s "x" 4;
  check "incr+add" 5 (Stats.get s "x");
  Stats.set_max s "m" 10;
  Stats.set_max s "m" 3;
  check "set_max keeps max" 10 (Stats.gauge_value s "m");
  check "gauges live apart from counters" 0 (Stats.get s "m");
  Alcotest.(check (list string)) "gauge listing" [ "m" ]
    (List.map fst (Stats.gauges s))

let test_stats_samples () =
  let s = Stats.create () in
  Stats.observe s "lat" 2.0;
  Stats.observe s "lat" 4.0;
  check "count" 2 (Stats.sample_count s "lat");
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.sample_mean s "lat");
  Alcotest.(check (float 1e-9)) "sum" 6.0 (Stats.sample_sum s "lat");
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats.sample_mean s "none")

(* Regression: [Stats.pp] used to print counters and gauges but silently
   drop observe-samples, so --stats never showed e.g. cstar.phase_cycles. *)
let test_stats_pp_includes_samples () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let s = Stats.create () in
  Stats.incr s "ctr";
  Stats.observe s "lat" 2.0;
  Stats.observe s "lat" 4.0;
  let out = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "counter line present" true (contains out "ctr = 1");
  Alcotest.(check bool) "sample line present" true
    (contains out "lat = count=2 mean=3 min=2 max=4 (sample)");
  match Stats.samples s with
  | [ (name, summary) ] ->
    Alcotest.(check string) "sample name" "lat" name;
    check "summary count" 2 summary.Stats.count;
    Alcotest.(check (float 1e-9)) "summary mean" 3.0 summary.Stats.mean;
    Alcotest.(check (float 1e-9)) "summary min" 2.0 summary.Stats.min;
    Alcotest.(check (float 1e-9)) "summary max" 4.0 summary.Stats.max
  | other -> Alcotest.failf "expected one sample, got %d" (List.length other)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a "x" 2;
  Stats.add b "x" 3;
  Stats.add b "y" 1;
  Stats.observe b "s" 5.0;
  Stats.set_max a "peak" 7;
  Stats.set_max b "peak" 4;
  Stats.merge_into ~dst:a b;
  check "merged x" 5 (Stats.get a "x");
  check "merged y" 1 (Stats.get a "y");
  check "merged sample" 1 (Stats.sample_count a "s");
  check "gauges merge by max, not sum" 7 (Stats.gauge_value a "peak");
  let c = Stats.create () in
  Stats.set_max c "peak" 9;
  Stats.merge_into ~dst:a c;
  check "larger source gauge wins" 9 (Stats.gauge_value a "peak")

(* Regression: [merge_into ~dst:s s] must be a checked no-op.  A naive
   fold-over-src-into-dst would double every counter (and, iterating a
   hashtable while inserting into it, is formally undefined). *)
let test_stats_merge_self_noop () =
  let s = Stats.create () in
  Stats.add s "x" 5;
  Stats.set_max s "g" 7;
  Stats.observe s "lat" 2.0;
  Stats.merge_into ~dst:s s;
  check "counter unchanged" 5 (Stats.get s "x");
  check "gauge unchanged" 7 (Stats.gauge_value s "g");
  check "sample count unchanged" 1 (Stats.sample_count s "lat")

(* The handle API is a pure accelerator: any interleaving of handle and
   string-keyed updates on one [Stats.t] must leave it indistinguishable
   from the same updates applied through strings alone.  Ops are drawn over
   a small name vocabulary so handles and strings collide on the same
   underlying cells. *)
let prop_stats_handles_equal_strings =
  let gen = QCheck.(list (pair (int_bound 5) (int_bound 9))) in
  QCheck.Test.make ~name:"stats handle API ≡ string API" ~count:200 gen
    (fun ops ->
      let names = [| "a"; "b"; "c" |] in
      let via_handles = Stats.create () and via_strings = Stats.create () in
      List.iter
        (fun (op, v) ->
          let name = names.(v mod 3) in
          match op with
          | 0 ->
            Stats.Handle.incr (Stats.counter via_handles name);
            Stats.incr via_strings name
          | 1 ->
            Stats.Handle.add (Stats.counter via_handles name) v;
            Stats.add via_strings name v
          | 2 ->
            Stats.Handle.set_max (Stats.gauge via_handles name) v;
            Stats.set_max via_strings name v
          | 3 ->
            Stats.Handle.observe (Stats.sample via_handles name) (float_of_int v);
            Stats.observe via_strings name (float_of_int v)
          | 4 ->
            (* mixed: string write on the handle-side instance *)
            Stats.incr via_handles name;
            Stats.incr via_strings name
          | _ ->
            ignore (Stats.Handle.value (Stats.counter via_handles name));
            ignore (Stats.get via_strings name))
        ops;
      (* merging both into fresh accumulators must also agree *)
      let acc_h = Stats.create () and acc_s = Stats.create () in
      Stats.merge_into ~dst:acc_h via_handles;
      Stats.merge_into ~dst:acc_s via_strings;
      Stats.counters via_handles = Stats.counters via_strings
      && Stats.gauges via_handles = Stats.gauges via_strings
      && Stats.samples via_handles = Stats.samples via_strings
      && Stats.counters acc_h = Stats.counters acc_s
      && Stats.gauges acc_h = Stats.gauges acc_s)

(* ------------------------------------------------------------------ *)
(* Heap capacity hints / Pool                                          *)
(* ------------------------------------------------------------------ *)

(* Growth past the [?hint] capacity must preserve pop order across the
   resize boundary.  The hint is drawn small (1-8) so a few dozen inserts
   cross several doublings, and keys land on a tiny range so nearly every
   insertion ties — the drain must still be the stable sort by
   (key, insertion index), i.e. resizing may not perturb the FIFO stamp
   order the engine's determinism rests on. *)
let prop_heap_hint_resize_order =
  QCheck.Test.make ~name:"heap ?hint growth preserves pop order" ~count:300
    QCheck.(pair (int_range 1 8) (list (int_bound 3)))
    (fun (hint, keys) ->
      let h = Heap.create ~hint () in
      List.iteri (fun i k -> Heap.add h ~key:k i) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some kv -> drain (kv :: acc)
        | None -> List.rev acc
      in
      drain []
      = List.stable_sort
          (fun (k1, _) (k2, _) -> compare (k1 : int) k2)
          (List.mapi (fun i k -> (k, i)) keys))

(* Pool correctness under random acquire/release interleavings, with
   debug poisoning on: an acquire must never hand back a record that is
   still live (physical aliasing), a live record must never carry the
   poison value (use-after-release would), and the live count must track
   exactly. *)
let prop_pool_no_aliasing =
  QCheck.Test.make ~name:"pool acquire/release never aliases live records"
    ~count:300
    QCheck.(list bool)
    (fun ops ->
      let saved = !Pool.debug in
      Pool.debug := true;
      Fun.protect
        ~finally:(fun () -> Pool.debug := saved)
        (fun () ->
          let p =
            Pool.create ~poison:(fun r -> r := -1) ~make:(fun () -> ref 0) ()
          in
          let live = ref [] in
          let next = ref 0 in
          List.iter
            (fun acquire ->
              if acquire || !live = [] then begin
                let r = Pool.acquire p in
                if List.exists (fun l -> l == r) !live then
                  QCheck.Test.fail_report "acquired a still-live record";
                incr next;
                r := !next;
                live := r :: !live
              end
              else
                match !live with
                | r :: rest ->
                  if !r = -1 then
                    QCheck.Test.fail_report "live record was poisoned";
                  Pool.release p r;
                  live := rest
                | [] -> ())
            ops;
          let vals = List.map (fun r -> !r) !live in
          List.length (List.sort_uniq compare vals) = List.length vals
          && Pool.live p = List.length !live))

let test_pool_double_release_detected () =
  let saved = !Pool.debug in
  Pool.debug := true;
  Fun.protect
    ~finally:(fun () -> Pool.debug := saved)
    (fun () ->
      let p = Pool.create ~poison:(fun r -> r := -1) ~make:(fun () -> ref 0) () in
      let r = Pool.acquire p in
      Pool.release p r;
      Alcotest.(check int) "poisoned on release" (-1) !r;
      Alcotest.check_raises "double release"
        (Invalid_argument "Pool.release: value is already on the free list")
        (fun () -> Pool.release p r))

let test_pool_reuse_and_counts () =
  let p = Pool.create ~make:(fun () -> ref 0) () in
  let a = Pool.acquire p in
  Pool.release p a;
  let b = Pool.acquire p in
  Alcotest.(check bool) "free-list reuses the record" true (a == b);
  Alcotest.(check int) "created once" 1 (Pool.created p);
  Alcotest.(check int) "one live" 1 (Pool.live p);
  Alcotest.(check int) "free list empty" 0 (Pool.free_count p)

(* ------------------------------------------------------------------ *)
(* Nodeset                                                            *)
(* ------------------------------------------------------------------ *)

module RefSet = Set.Make (Int)

(* Nodeset against the stdlib reference, over random
   add/remove/union/inter sequences.  Ids range past the bitmask capacity
   (>= Sys.int_size - 1) so the tree spill path and mixed-representation
   unions are exercised, and removal/intersection of the oversized ids
   crosses the spill boundary in the shrinking direction too.  Alongside
   observational equality the property pins the canonical-representation
   invariant: a set is bitmask-backed exactly when every member fits,
   regardless of the operation history that produced it. *)
let prop_nodeset_matches_set =
  let id = QCheck.Gen.(oneof [ int_bound 61; int_range 60 70 ]) in
  let gen = QCheck.make QCheck.Gen.(list (pair (int_bound 3) id)) in
  let max_direct = Sys.int_size - 1 in
  QCheck.Test.make ~name:"nodeset ≡ Set.Make(Int)" ~count:300 gen
    (fun ops ->
      let ns = ref Nodeset.empty and rs = ref RefSet.empty in
      let canonical () =
        Nodeset.is_direct !ns = RefSet.for_all (fun x -> x < max_direct) !rs
      in
      List.for_all
        (fun (op, x) ->
          (match op with
          | 0 ->
            ns := Nodeset.add x !ns;
            rs := RefSet.add x !rs
          | 1 ->
            ns := Nodeset.remove x !ns;
            rs := RefSet.remove x !rs
          | 2 ->
            ns := Nodeset.union !ns (Nodeset.of_list [ x; x + 1 ]);
            rs := RefSet.union !rs (RefSet.of_list [ x; x + 1 ])
          | _ ->
            (* drop everything below x: an intersection that can cross
               the spill boundary downward *)
            let keep = List.filter (fun y -> y >= x) (List.init 72 Fun.id) in
            ns := Nodeset.inter !ns (Nodeset.of_list keep);
            rs := RefSet.inter !rs (RefSet.of_list keep));
          canonical ())
        ops
      &&
      let members = ref [] in
      Nodeset.iter (fun x -> members := x :: !members) !ns;
      Nodeset.elements !ns = RefSet.elements !rs
      && List.rev !members = RefSet.elements !rs
      && Nodeset.cardinal !ns = RefSet.cardinal !rs
      && Nodeset.is_empty !ns = RefSet.is_empty !rs
      && List.for_all
           (fun x -> Nodeset.mem x !ns = RefSet.mem x !rs)
           (List.init 72 Fun.id))

(* The bug this pins: a set spilled to the tree by an oversized id used to
   stay a tree after the id was removed, so every later update paid the
   AVL cost.  Both shrink paths must collapse. *)
let test_nodeset_collapses_on_shrink () =
  let big = Sys.int_size - 1 in
  let spilled = Nodeset.add big (Nodeset.of_list [ 1; 5; 9 ]) in
  Alcotest.(check bool) "spilled to tree" false (Nodeset.is_direct spilled);
  let back = Nodeset.remove big spilled in
  Alcotest.(check bool) "remove collapses" true (Nodeset.is_direct back);
  Alcotest.(check (list int)) "members survive" [ 1; 5; 9 ]
    (Nodeset.elements back);
  let small = Nodeset.inter spilled (Nodeset.of_list [ 5; 9; 12 ]) in
  Alcotest.(check bool) "inter collapses" true (Nodeset.is_direct small);
  Alcotest.(check (list int)) "intersection" [ 5; 9 ] (Nodeset.elements small);
  let gone = Nodeset.remove big (Nodeset.add big Nodeset.empty) in
  Alcotest.(check bool) "empty collapses" true (Nodeset.is_direct gone);
  Alcotest.(check bool) "is empty" true (Nodeset.is_empty gone)

let test_stats_counters_sorted () =
  let s = Stats.create () in
  Stats.incr s "b";
  Stats.incr s "a";
  Alcotest.(check (list string)) "sorted names" [ "a"; "b" ]
    (List.map fst (Stats.counters s))

let test_stats_reset () =
  let s = Stats.create () in
  Stats.incr s "x";
  Stats.reset s;
  check "reset" 0 (Stats.get s "x")

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                           *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let out =
    Tablefmt.render ~header:[ "name"; "v" ] [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    List.exists (fun l -> l = "| name  |  v |") lines)

let test_table_explicit_alignment () =
  let out =
    Tablefmt.render
      ~align:[ Tablefmt.Right; Tablefmt.Left ]
      ~header:[ "n"; "name" ]
      [ [ "1"; "a" ]; [ "22"; "bb" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "right-aligned first column" true
    (List.exists (fun l -> l = "|  1 | a    |") lines)

let test_table_empty_rows () =
  let out = Tablefmt.render ~header:[ "a"; "b" ] [] in
  Alcotest.(check bool) "renders header only" true (String.length out > 0)

let test_stats_sample_min_max_defaults () =
  let s = Stats.create () in
  Alcotest.(check int) "count empty" 0 (Stats.sample_count s "x");
  Stats.observe s "x" (-3.5);
  Alcotest.(check (float 0.0)) "negative sum" (-3.5) (Stats.sample_sum s "x")

let test_heap_many_duplicate_keys () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.add h ~key:7 i
  done;
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "stable across 100 equal keys"
    (List.init 100 Fun.id) (List.rev !out)

let test_table_ragged_rows () =
  let out = Tablefmt.render ~header:[ "a"; "b"; "c" ] [ [ "1" ]; [ "1"; "2"; "3"; "4" ] ] in
  (* Must not raise; all rows padded/truncated to 3 columns. *)
  List.iter
    (fun l ->
      if String.length l > 0 && l.[0] = '|' then
        Alcotest.(check int) "3 separators"
          4
          (List.length (String.split_on_char '|' l) - 1))
    (String.split_on_char '\n' out)

let suite =
  [
    ("heap empty", `Quick, test_heap_empty);
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap fifo ties", `Quick, test_heap_fifo_ties);
    ("heap clear and reuse", `Quick, test_heap_clear_and_reuse);
    ("heap clear keeps capacity", `Quick, test_heap_clear_keeps_working_at_capacity);
    ("heap top_key/pop_exn", `Quick, test_heap_top_key_pop_exn);
    ("heap iter_unordered", `Quick, test_heap_iter_unordered);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng copy independent", `Quick, test_rng_copy_independent);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng distribution", `Quick, test_rng_int_distribution);
    ("mask basics", `Quick, test_mask_basics);
    ("mask full", `Quick, test_mask_full);
    ("mask set ops", `Quick, test_mask_set_ops);
    ("mask bounds", `Quick, test_mask_bounds);
    ("mask pp", `Quick, test_mask_pp);
    ("stats counters", `Quick, test_stats_counters);
    ("stats samples", `Quick, test_stats_samples);
    ("stats pp includes samples", `Quick, test_stats_pp_includes_samples);
    ("stats merge", `Quick, test_stats_merge);
    ("stats merge self no-op", `Quick, test_stats_merge_self_noop);
    ("stats sorted", `Quick, test_stats_counters_sorted);
    ("stats reset", `Quick, test_stats_reset);
    ("table render", `Quick, test_table_render);
    ("table ragged", `Quick, test_table_ragged_rows);
    ("table explicit align", `Quick, test_table_explicit_alignment);
    ("table empty rows", `Quick, test_table_empty_rows);
    ("stats sample defaults", `Quick, test_stats_sample_min_max_defaults);
    ("heap 100 equal keys", `Quick, test_heap_many_duplicate_keys);
    ("heap add_stamped", `Quick, test_heap_add_stamped);
    ("nodeset collapses on shrink", `Quick, test_nodeset_collapses_on_shrink);
    ("pool double release detected", `Quick, test_pool_double_release_detected);
    ("pool reuse and counts", `Quick, test_pool_reuse_and_counts);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_heap_sorted;
        prop_heap_fifo_equal_keys;
        prop_heap_stamped_merge;
        prop_heap_clear_then_pop_order;
        prop_heap_hint_resize_order;
        prop_pool_no_aliasing;
        prop_mask_roundtrip;
        prop_mask_union_cardinal;
        prop_stats_handles_equal_strings;
        prop_nodeset_matches_set;
      ]

let () = Alcotest.run "lcm_util" [ ("util", suite) ]
