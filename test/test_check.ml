(* Tests for the small-scope model checker (Lcm_check): the engine's
   choice-point hook, the ASM spec pinned word-for-word against the
   stress harness's golden model, bounded exhaustive exploration of the
   fixed scenario suite under every policy (with a fleet wall-clock
   budget), partial-order-reduction soundness cross-checks, and the
   violation -> shrink -> replay pipeline. *)

module Check = Lcm_check.Check
module Spec = Lcm_check.Spec
module Stress = Lcm_harness.Stress
module Traceview = Lcm_harness.Traceview
module Policy = Lcm_core.Policy
module Engine = Lcm_sim.Engine
module Fleet = Lcm_fleet.Fleet

(* ------------------------------------------------------------------ *)
(* Engine choice-point hook                                            *)
(* ------------------------------------------------------------------ *)

(* Three thunks tied at t=10: the hook owns the commit order. *)
let test_hook_default_is_fifo () =
  let run hook =
    let order = ref [] in
    let e = Engine.create () in
    List.iter
      (fun (at, id) -> Engine.schedule e ~at (fun () -> order := id :: !order))
      [ (10, 'a'); (10, 'b'); (10, 'c'); (20, 'd') ];
    Engine.set_choice_hook e hook;
    Engine.run e;
    List.rev !order
  in
  let fifo = run None in
  let zeros = run (Some (fun _ -> 0)) in
  Alcotest.(check (list char)) "FIFO order" [ 'a'; 'b'; 'c'; 'd' ] fifo;
  Alcotest.(check (list char)) "index 0 everywhere = FIFO" fifo zeros

let test_hook_reorders_ties () =
  let order = ref [] in
  let e = Engine.create () in
  List.iter
    (fun (at, id) -> Engine.schedule e ~at (fun () -> order := id :: !order))
    [ (10, 'a'); (10, 'b'); (10, 'c'); (20, 'd') ];
  (* always pick the last candidate: ties commit in reverse FIFO order *)
  Engine.set_choice_hook e (Some (fun cands -> Array.length cands - 1));
  Engine.run e;
  Alcotest.(check (list char))
    "last-candidate hook reverses the tie" [ 'c'; 'b'; 'a'; 'd' ]
    (List.rev !order)

let test_hook_sees_all_candidates () =
  let sizes = ref [] in
  let e = Engine.create () in
  List.iter
    (fun at -> Engine.schedule e ~at (fun () -> ()))
    [ 10; 10; 10; 20 ];
  Engine.set_choice_hook e
    (Some
       (fun cands ->
         sizes := Array.length cands :: !sizes;
         0));
  Engine.run e;
  (* 3-way tie, then the two re-inserted, then one, then the singleton *)
  Alcotest.(check (list int)) "candidate counts" [ 3; 2; 1; 1 ]
    (List.rev !sizes)

let test_hook_bad_index_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:5 (fun () -> ());
  Engine.set_choice_hook e (Some (fun _ -> 7));
  Alcotest.check_raises "out-of-range choice"
    (Invalid_argument "Engine: choice hook returned 7 with 1 candidates")
    (fun () -> Engine.run e)

(* ------------------------------------------------------------------ *)
(* Spec agrees with the stress golden model                            *)
(* ------------------------------------------------------------------ *)

(* Word-for-word agreement on full-size generated programs, every
   policy.  Both sides are pure (no simulation), so this runs wide. *)
let prop_spec_matches_golden =
  QCheck.Test.make ~name:"Spec.run = Stress.golden (all policies)" ~count:120
    QCheck.(pair (int_range 0 40) (int_range 0 400))
    (fun (seed, case) ->
      List.for_all
        (fun policy ->
          let prog = Stress.gen ~seed ~case ~policy () in
          Spec.run prog = Stress.golden prog)
        Policy.policies)

(* ... and on the checker's own micro-configurations. *)
let prop_spec_matches_golden_micro =
  QCheck.Test.make ~name:"Spec.run = Stress.golden (micro configs)" ~count:150
    QCheck.(pair (int_range 0 40) (int_range 0 400))
    (fun (seed, case) ->
      List.for_all
        (fun policy ->
          let prog = Check.gen_micro ~seed ~case ~policy in
          Spec.run prog = Stress.golden prog)
        Policy.policies)

(* ------------------------------------------------------------------ *)
(* Bounded exhaustive exploration                                      *)
(* ------------------------------------------------------------------ *)

(* The full fixed-scenario suite for every registered policy, each
   policy one fleet cell under a wall-clock budget.  Every configuration
   must be exhausted (not capped) with no violation. *)
let test_scenarios_exhaust_all_policies () =
  let budget = Fleet.Budget.make ~wall_s:120.0 () in
  let cells =
    Array.of_list
      (List.map
         (fun (p : Policy.t) ->
           ( p.Policy.name,
             fun () -> Check.check_scenarios ~max_schedules:2_000 ~policy:p () ))
         Policy.policies)
  in
  let results = Fleet.Pool.run ~jobs:2 ~budget cells in
  Array.iter
    (fun (r : _ Fleet.cell_result) ->
      match r.Fleet.outcome with
      | Fleet.Done reports ->
        List.iter
          (fun (rep : Check.report) ->
            match rep.Check.rep_outcome with
            | Check.Exhausted -> ()
            | Check.Capped ->
              Alcotest.failf "%s %s: capped, expected exhausted" r.Fleet.label
                rep.Check.rep_label
            | Check.Found v ->
              Alcotest.failf "%s %s: violation:\n%s" r.Fleet.label
                rep.Check.rep_label v.Check.v_report)
          reports
      | Fleet.Failed { exn; _ } ->
        Alcotest.failf "%s: raised %s" r.Fleet.label exn
      | Fleet.Timed_out _ ->
        Alcotest.failf "%s: blew the wall-clock budget" r.Fleet.label)
    results

(* Fault choices composed in: one droppable copy, retransmission must
   recover every drop on a scenario with real cross-node traffic. *)
let test_fault_choices_recovered () =
  let prog = List.assoc "two-writers" (Check.scenarios ~policy:Policy.lcm_mcc) in
  match Check.explore ~max_schedules:2_000 ~fault_budget:1 prog with
  | Check.Exhausted, st ->
    Alcotest.(check bool) "fault points explored" true (st.Check.fault_points > 0);
    Alcotest.(check bool) "more than one schedule" true (st.Check.schedules > 1)
  | Check.Capped, _ -> Alcotest.fail "capped"
  | Check.Found v, _ -> Alcotest.failf "violation:\n%s" v.Check.v_report

(* ------------------------------------------------------------------ *)
(* Partial-order reduction soundness                                   *)
(* ------------------------------------------------------------------ *)

(* Reduction prunes branching but must reach the same verdict; on a tiny
   configuration, cross-check against full enumeration. *)
let test_por_agrees_with_full_enumeration () =
  List.iter
    (fun name ->
      let prog = List.assoc name (Check.scenarios ~policy:Policy.lcm_mcc) in
      let reduced, rst = Check.explore ~max_schedules:5_000 ~reduce:true prog in
      let full, fst_ = Check.explore ~max_schedules:5_000 ~reduce:false prog in
      (match (reduced, full) with
      | Check.Exhausted, Check.Exhausted -> ()
      | _ -> Alcotest.failf "%s: verdicts differ or capped" name);
      Alcotest.(check bool)
        (name ^ ": reduction explores no more schedules")
        true
        (rst.Check.schedules <= fst_.Check.schedules))
    [ "two-writers"; "three-nodes" ]

let test_exploration_deterministic () =
  let prog = List.assoc "three-nodes" (Check.scenarios ~policy:Policy.lcm_mcc) in
  let _, a = Check.explore ~max_schedules:5_000 prog in
  let _, b = Check.explore ~max_schedules:5_000 prog in
  Alcotest.(check (list int))
    "identical exploration counters"
    [ a.Check.schedules; a.Check.transitions; a.Check.choice_points;
      a.Check.branches; a.Check.sleep_prunes; a.Check.pset_prunes ]
    [ b.Check.schedules; b.Check.transitions; b.Check.choice_points;
      b.Check.branches; b.Check.sleep_prunes; b.Check.pset_prunes ]

(* ------------------------------------------------------------------ *)
(* Violation -> shrink -> replay pipeline                              *)
(* ------------------------------------------------------------------ *)

(* A program that violates the paper's compiler contract — an unmarked
   parallel store by the block's home node.  The home holds a writable
   backing line, so the unmarked store writes through to the master
   mid-phase and a remote reader observes a value the per-epoch spec
   says is unobservable.  Deterministic under the default schedule,
   which exercises the whole violation -> shrink -> replay pipeline
   without needing a live protocol bug. *)
let bad_prog () : Stress.prog =
  {
    seed = 0;
    case = 0;
    policy = Policy.lcm_mcc;
    nnodes = 2;
    words_per_block = 2;
    nblocks = 1;
    dist = Lcm_mem.Gmem.Chunked;
    topology = Lcm_net.Topology.Crossbar;
    barrier = Lcm_core.Barrier.Constant;
    capacity_blocks = None;
    hw_cache_blocks = None;
    reductions = [];
    init = [ (0, 1) ];
    segments =
      [
        Stress.Parallel
          [|
            [ Stress.Store (0, 5) ] (* unmarked: contract violation *);
            [ Stress.Work 200; Stress.Load 0 ];
          |];
      ];
  }

let test_violation_shrinks_and_replays () =
  match Check.explore ~max_schedules:100 ~label:"bad-prog" (bad_prog ()) with
  | Check.Exhausted, _ | (Check.Capped, _) ->
    Alcotest.fail "ill-formed program not flagged"
  | Check.Found v, _ ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "report is a spec divergence" true
      (contains v.Check.v_report "spec expects");
    let v = Check.shrink_violation ~max_explore_schedules:50 ~max_tries:50 v in
    (* the shrunk program still contains the offending accum and nothing
       about it is schedule-dependent, so the schedule minimizes away *)
    Alcotest.(check (list int)) "schedule minimized" [] v.Check.v_schedule;
    let verdict, _ =
      Check.replay ~schedule:v.Check.v_schedule v.Check.v_prog
    in
    (match verdict with
    | Check.Fail _ -> ()
    | Check.Pass -> Alcotest.fail "shrunk counterexample no longer replays");
    (* counterexample artifacts: a traced replay renders through Traceview *)
    let _, events = Check.replay ~trace:true ~schedule:[] v.Check.v_prog in
    if events <> [] then begin
      if not (Sys.file_exists "out") then Sys.mkdir "out" 0o755;
      let path = "out/test-check-counterexample.trace.json" in
      Traceview.export_file ~path events;
      match Traceview.validate_file path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "exported trace invalid: %s" e
    end

let test_schedule_strings_roundtrip () =
  List.iter
    (fun sched ->
      match Check.schedule_of_string (Check.schedule_to_string sched) with
      | Ok s -> Alcotest.(check (list int)) "roundtrip" sched s
      | Error e -> Alcotest.fail e)
    [ []; [ 0 ]; [ 0; 2; 1 ]; [ 3; 0; 0; 5 ] ];
  Alcotest.(check bool) "dash parses as empty" true
    (Check.schedule_of_string "-" = Ok []);
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Check.schedule_of_string "0.x.1"))

(* Replaying a schedule that asks for more candidates than a choice
   point offers proves nothing and must be reported, not believed. *)
let test_stale_schedule_diverges () =
  let prog = List.assoc "reader-writer" (Check.scenarios ~policy:Policy.lcm_mcc) in
  let verdict, _ = Check.replay ~schedule:[ 9; 9; 9 ] prog in
  match verdict with
  | Check.Fail r ->
    Alcotest.(check string) "diverged report" "replay diverged: stale schedule" r
  | Check.Pass ->
    (* fine too if the run has no choice points at all: indices beyond
       the recorded points are never consulted *)
    ()

let () =
  Alcotest.run "lcm_check"
    [
      ( "choice-hook",
        [
          ("default is FIFO", `Quick, test_hook_default_is_fifo);
          ("hook reorders ties", `Quick, test_hook_reorders_ties);
          ("hook sees every candidate", `Quick, test_hook_sees_all_candidates);
          ("bad index rejected", `Quick, test_hook_bad_index_rejected);
        ] );
      ( "spec",
        [
          QCheck_alcotest.to_alcotest prop_spec_matches_golden;
          QCheck_alcotest.to_alcotest prop_spec_matches_golden_micro;
        ] );
      ( "explore",
        [
          ("scenario suite exhausts, all policies", `Slow,
           test_scenarios_exhaust_all_policies);
          ("fault choices recovered", `Quick, test_fault_choices_recovered);
          ("POR agrees with full enumeration", `Quick,
           test_por_agrees_with_full_enumeration);
          ("exploration deterministic", `Quick, test_exploration_deterministic);
        ] );
      ( "counterexample",
        [
          ("violation shrinks and replays", `Quick,
           test_violation_shrinks_and_replays);
          ("schedule strings roundtrip", `Quick, test_schedule_strings_roundtrip);
          ("stale schedule diverges", `Quick, test_stale_schedule_diverges);
        ] );
    ]
