(* Tests for the Section-7 extension demos: reductions, false sharing,
   stale data. *)

open Lcm_apps
open Lcm_cstar
module Policy = Lcm_core.Policy
module Machine = Lcm_tempest.Machine

let mk ?(nnodes = 8) policy strategy =
  let m =
    Machine.create ~nnodes ~words_per_block:8
      ~topology:(Lcm_net.Topology.Fat_tree { arity = 4 })
      ()
  in
  let p = Lcm_core.Proto.install ~policy m in
  Runtime.create p ~strategy ~schedule:Schedule.Static ()

let reduce_params = { Reduce_demo.n = 512; per_add_work = 2 }

let run_reduce variant =
  let rt =
    match variant with
    | `Rsm_reconcile -> mk Policy.lcm_mcc Runtime.Lcm_directives
    | `Manual_partials | `Serialized -> mk Policy.stache Runtime.Explicit_copy
  in
  Reduce_demo.run rt variant reduce_params

let test_reduce_all_variants_agree () =
  let expected = float_of_int (Reduce_demo.expected_sum reduce_params) in
  List.iter
    (fun v ->
      let r = run_reduce v in
      Alcotest.(check (float 0.0))
        (Reduce_demo.variant_name v)
        expected r.Bench_result.checksum)
    [ `Rsm_reconcile; `Manual_partials; `Serialized ]

let test_reduce_serialized_slowest () =
  let rsm = run_reduce `Rsm_reconcile
  and manual = run_reduce `Manual_partials
  and serialized = run_reduce `Serialized in
  Alcotest.(check bool)
    (Printf.sprintf "serialized %d slowest (rsm %d, manual %d)"
       serialized.Bench_result.cycles rsm.Bench_result.cycles
       manual.Bench_result.cycles)
    true
    (serialized.Bench_result.cycles > rsm.Bench_result.cycles
    && serialized.Bench_result.cycles > manual.Bench_result.cycles)

let test_reduce_rsm_competitive_with_manual () =
  (* RSM reductions should be in the same league as hand-coded partials
     (the paper argues they can even be cheaper). *)
  let rsm = run_reduce `Rsm_reconcile and manual = run_reduce `Manual_partials in
  Alcotest.(check bool)
    (Printf.sprintf "rsm %d within 4x of manual %d" rsm.Bench_result.cycles
       manual.Bench_result.cycles)
    true
    (rsm.Bench_result.cycles < 4 * manual.Bench_result.cycles)

let fs_params = { False_sharing.blocks = 16; rounds = 10 }

let test_false_sharing_results_agree () =
  let stache = False_sharing.run (mk Policy.stache Runtime.Explicit_copy) fs_params in
  let mcc = False_sharing.run (mk Policy.lcm_mcc Runtime.Lcm_directives) fs_params in
  Alcotest.(check (float 0.0)) "same data" stache.Bench_result.checksum
    mcc.Bench_result.checksum

let test_false_sharing_lcm_faster () =
  let stache = False_sharing.run (mk Policy.stache Runtime.Explicit_copy) fs_params in
  let mcc = False_sharing.run (mk Policy.lcm_mcc Runtime.Lcm_directives) fs_params in
  Alcotest.(check bool)
    (Printf.sprintf "lcm %d < stache %d" mcc.Bench_result.cycles
       stache.Bench_result.cycles)
    true
    (mcc.Bench_result.cycles < stache.Bench_result.cycles)

let nbody_params = { Nbody_stale.bodies = 128; iters = 8; work_per_body = 2 }

let test_nbody_stale_saves_fetches () =
  let fresh = Nbody_stale.run (mk Policy.lcm_mcc Runtime.Lcm_directives) `Fresh nbody_params in
  let stale =
    Nbody_stale.run (mk Policy.lcm_mcc Runtime.Lcm_directives) (`Stale 4) nbody_params
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer remote fetches (%d < %d)" stale.Bench_result.remote_fetches
       fresh.Bench_result.remote_fetches)
    true
    (stale.Bench_result.remote_fetches < fresh.Bench_result.remote_fetches);
  Alcotest.(check bool)
    (Printf.sprintf "faster (%d < %d)" stale.Bench_result.cycles
       fresh.Bench_result.cycles)
    true
    (stale.Bench_result.cycles < fresh.Bench_result.cycles)

let test_nbody_stale_bounded_drift () =
  let fresh = Nbody_stale.run (mk Policy.lcm_mcc Runtime.Lcm_directives) `Fresh nbody_params in
  let stale =
    Nbody_stale.run (mk Policy.lcm_mcc Runtime.Lcm_directives) (`Stale 2) nbody_params
  in
  (* staleness changes values, but the relaxation still converges to the
     same neighbourhood: drift stays small relative to the magnitude *)
  let drift = abs_float (fresh.Bench_result.checksum -. stale.Bench_result.checksum) in
  let scale = max 1.0 (abs_float fresh.Bench_result.checksum) in
  Alcotest.(check bool)
    (Printf.sprintf "drift %.3f bounded" (drift /. scale))
    true
    (drift /. scale < 0.5)

let test_nbody_never_refresh () =
  (* refresh interval beyond the horizon: remote bodies fetched once *)
  let stale =
    Nbody_stale.run (mk Policy.lcm_mcc Runtime.Lcm_directives) (`Stale 1000) nbody_params
  in
  let sometimes =
    Nbody_stale.run (mk Policy.lcm_mcc Runtime.Lcm_directives) (`Stale 2) nbody_params
  in
  Alcotest.(check bool)
    (Printf.sprintf "never-refresh fetches least (%d <= %d)"
       stale.Bench_result.remote_fetches sometimes.Bench_result.remote_fetches)
    true
    (stale.Bench_result.remote_fetches <= sometimes.Bench_result.remote_fetches)

let test_reduce_agrees_under_dynamic_schedule () =
  let expected = float_of_int (Reduce_demo.expected_sum reduce_params) in
  let run variant =
    let policy, strategy =
      match variant with
      | `Rsm_reconcile -> (Policy.lcm_mcc, Runtime.Lcm_directives)
      | _ -> (Policy.stache, Runtime.Explicit_copy)
    in
    let m =
      Machine.create ~nnodes:8 ~words_per_block:8
        ~topology:(Lcm_net.Topology.Fat_tree { arity = 4 })
        ()
    in
    let p = Lcm_core.Proto.install ~policy m in
    let rt =
      Runtime.create p ~strategy ~schedule:(Schedule.Dynamic_random 5) ()
    in
    (Reduce_demo.run rt variant reduce_params).Bench_result.checksum
  in
  List.iter
    (fun v ->
      Alcotest.(check (float 0.0)) (Reduce_demo.variant_name v) expected (run v))
    [ `Rsm_reconcile; `Manual_partials; `Serialized ]

let test_nbody_refresh_restores_freshness () =
  (* refresh every iteration == fresh semantics *)
  let fresh = Nbody_stale.run (mk Policy.lcm_mcc Runtime.Lcm_directives) `Fresh nbody_params in
  let always =
    Nbody_stale.run (mk Policy.lcm_mcc Runtime.Lcm_directives) (`Stale 1) nbody_params
  in
  Alcotest.(check (float 1e-3)) "same result" fresh.Bench_result.checksum
    always.Bench_result.checksum

let () =
  Alcotest.run "lcm_extensions"
    [
      ( "reductions",
        [
          ("variants agree", `Quick, test_reduce_all_variants_agree);
          ("serialized slowest", `Quick, test_reduce_serialized_slowest);
          ("rsm competitive", `Quick, test_reduce_rsm_competitive_with_manual);
        ] );
      ( "false sharing",
        [
          ("results agree", `Quick, test_false_sharing_results_agree);
          ("lcm faster", `Quick, test_false_sharing_lcm_faster);
        ] );
      ( "stale data",
        [
          ("saves fetches", `Quick, test_nbody_stale_saves_fetches);
          ("bounded drift", `Quick, test_nbody_stale_bounded_drift);
          ("refresh restores freshness", `Quick, test_nbody_refresh_restores_freshness);
          ("never refresh", `Quick, test_nbody_never_refresh);
        ] );
      ( "dynamic schedule",
        [ ("reduce variants agree", `Quick, test_reduce_agrees_under_dynamic_schedule) ] );
    ]
