(* Tests for the Tempest layer: tags, the machine, fibers, fault dispatch.

   These use a deliberately trivial test protocol — on any fault, fetch the
   master copy from home and install it writable — to exercise the machinery
   without the real coherence protocols (tested in test_core). *)

open Lcm_tempest

let test_tag_permissions () =
  Alcotest.(check bool) "invalid not readable" false (Tag.readable Tag.Invalid);
  Alcotest.(check bool) "ro readable" true (Tag.readable Tag.Read_only);
  Alcotest.(check bool) "ro not writable" false (Tag.writable Tag.Read_only);
  Alcotest.(check bool) "rw writable" true (Tag.writable Tag.Writable);
  Alcotest.(check bool) "lcm writable" true (Tag.writable Tag.Lcm_modified);
  Alcotest.(check string) "pp" "ReadOnly" (Tag.to_string Tag.Read_only)

(* A minimal protocol: requester sends a request to home, home replies with a
   copy of the master, requester installs it writable and retries.  Writes
   are never sent home — the test protocol is incoherent on purpose. *)
let install_test_protocol m =
  let gmem = Machine.gmem m in
  let costs = Machine.costs m in
  let fetch node ~addr ~retry =
    let b = Lcm_mem.Gmem.block_of_addr gmem addr in
    let home = Lcm_mem.Gmem.home_of_block gmem b in
    let src = Machine.id node in
    Machine.send m ~src ~dst:home ~words:1 ~tag:"req" ~at:(Machine.clock node)
      (fun _home_node ~now ->
        let data = Lcm_mem.Block.copy (Machine.master m b) in
        Machine.send m ~src:home ~dst:src
          ~words:(Lcm_mem.Gmem.words_per_block gmem)
          ~tag:"rep" ~at:now
          (fun requester ~now ->
            ignore (Machine.install_line requester b ~data ~tag:Tag.Writable);
            Machine.resume requester ~now ~cost:costs.Lcm_sim.Costs.block_install
              retry))
  in
  Machine.set_handlers m ~read_fault:fetch ~write_fault:fetch
    ~directive:(fun _ _ ~retry -> retry ())

let mk ?capacity_blocks ?(nnodes = 4) () =
  let m =
    Machine.create ?capacity_blocks ~nnodes ~words_per_block:8
      ~topology:Lcm_net.Topology.Crossbar ()
  in
  install_test_protocol m;
  m

let test_fiber_completes_without_memory () =
  let m = mk () in
  let done_ = ref false in
  Machine.spawn m (Machine.node m 0) ~on_done:(fun () -> done_ := true) (fun () ->
      Memeff.work 100);
  Machine.run_to_quiescence m;
  Alcotest.(check bool) "done" true !done_;
  Alcotest.(check int) "work charged" 100 (Machine.clock (Machine.node m 0));
  Alcotest.(check int) "no active fibers" 0 (Machine.active_fibers m)

let test_local_home_access_hits () =
  let m = mk () in
  let gmem = Machine.gmem m in
  let a = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 0) ~nwords:8 in
  let seen = ref (-1) in
  Machine.spawn m (Machine.node m 0) (fun () ->
      Memeff.store a 42;
      seen := Memeff.load a);
  Machine.run_to_quiescence m;
  Alcotest.(check int) "readback" 42 !seen;
  Alcotest.(check int) "no faults" 0
    (Lcm_util.Stats.get (Machine.stats m) "fault.read"
    + Lcm_util.Stats.get (Machine.stats m) "fault.write");
  (* Home line aliases the master copy. *)
  let b = Lcm_mem.Gmem.block_of_addr gmem a in
  Alcotest.(check int) "master updated" 42 (Machine.master m b).(0)

let test_master_rejects_unallocated_block () =
  let m = mk () in
  let gmem = Machine.gmem m in
  let a = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 0) ~nwords:16 in
  (* 2 allocated blocks (wpb = 8): a corrupt block number must fail with
     a typed message naming the block, not mint a ghost master copy. *)
  ignore (Machine.master m (Lcm_mem.Gmem.block_of_addr gmem a));
  Alcotest.check_raises "unallocated block named"
    (Failure "Machine.master: block 7 is not an allocated block (2 blocks allocated)")
    (fun () -> ignore (Machine.master m 7));
  Alcotest.check_raises "negative block named"
    (Failure "Machine.master: block -1 is not an allocated block (2 blocks allocated)")
    (fun () -> ignore (Machine.master m (-1)))

let test_remote_access_faults_and_suspends () =
  let m = mk () in
  let gmem = Machine.gmem m in
  let a = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 1) ~nwords:8 in
  (Machine.master m (Lcm_mem.Gmem.block_of_addr gmem a)).(2) <- 7;
  let seen = ref (-1) in
  Machine.spawn m (Machine.node m 0) (fun () -> seen := Memeff.load (a + 2));
  Alcotest.(check int) "suspended" 1 (Machine.active_fibers m);
  Machine.run_to_quiescence m;
  Alcotest.(check int) "value fetched" 7 !seen;
  Alcotest.(check int) "one read fault" 1
    (Lcm_util.Stats.get (Machine.stats m) "fault.read");
  Alcotest.(check bool) "time advanced past trap+network" true
    (Machine.clock (Machine.node m 0) > 100)

let test_second_access_hits () =
  let m = mk () in
  let gmem = Machine.gmem m in
  let a = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 1) ~nwords:8 in
  Machine.spawn m (Machine.node m 0) (fun () ->
      ignore (Memeff.load a);
      ignore (Memeff.load (a + 1)));
  Machine.run_to_quiescence m;
  Alcotest.(check int) "only one fault for two loads" 1
    (Lcm_util.Stats.get (Machine.stats m) "fault.read")

let test_store_sets_dirty_mask_on_lcm_line () =
  let m = mk () in
  let gmem = Machine.gmem m in
  let a = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 0) ~nwords:8 in
  let b = Lcm_mem.Gmem.block_of_addr gmem a in
  let node = Machine.node m 1 in
  ignore
    (Machine.install_line node b
       ~data:(Lcm_mem.Block.make ~words:8)
       ~tag:Tag.Lcm_modified);
  Machine.spawn m node (fun () ->
      Memeff.store (a + 3) 9;
      Memeff.store (a + 5) 9);
  Machine.run_to_quiescence m;
  match Machine.find_line node b with
  | None -> Alcotest.fail "line vanished"
  | Some line ->
    Alcotest.(check (list int)) "dirty words" [ 3; 5 ]
      (Lcm_util.Mask.to_list line.Machine.dirty)

let test_plain_writable_store_does_not_track_dirty () =
  let m = mk () in
  let gmem = Machine.gmem m in
  let a = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 0) ~nwords:8 in
  Machine.spawn m (Machine.node m 0) (fun () -> Memeff.store a 1);
  Machine.run_to_quiescence m;
  let b = Lcm_mem.Gmem.block_of_addr gmem a in
  match Machine.find_line (Machine.node m 0) b with
  | None -> Alcotest.fail "no line"
  | Some line ->
    Alcotest.(check (list int)) "no dirty bits" []
      (Lcm_util.Mask.to_list line.Machine.dirty)

let test_many_fibers_interleave () =
  let m = mk () in
  let gmem = Machine.gmem m in
  let a = Lcm_mem.Gmem.alloc gmem ~dist:Lcm_mem.Gmem.Interleaved ~nwords:(8 * 8) in
  let total = ref 0 in
  for i = 0 to 3 do
    Machine.spawn m (Machine.node m i) (fun () ->
        (* every node touches every block *)
        for blk = 0 to 7 do
          ignore (Memeff.load (a + (8 * blk)))
        done;
        incr total)
  done;
  Machine.run_to_quiescence m;
  Alcotest.(check int) "all fibers finished" 4 !total

let test_directive_dispatch () =
  let m = mk () in
  let hits = ref [] in
  Machine.set_handlers m
    ~read_fault:(fun _ ~addr:_ ~retry -> retry ())
    ~write_fault:(fun _ ~addr:_ ~retry -> retry ())
    ~directive:(fun node d ~retry ->
      (match d with
      | Memeff.Mark_modification a -> hits := ("mark", Machine.id node, a) :: !hits
      | Memeff.Flush_copies -> hits := ("flush", Machine.id node, -1) :: !hits
      | _ -> ());
      retry ());
  Machine.spawn m (Machine.node m 2) (fun () ->
      Memeff.directive (Memeff.Mark_modification 40);
      Memeff.directive Memeff.Flush_copies);
  Machine.run_to_quiescence m;
  Alcotest.(check int) "two directives" 2 (List.length !hits);
  Alcotest.(check bool) "mark seen" true (List.mem ("mark", 2, 40) !hits)

let test_capacity_eviction () =
  let m = mk ~capacity_blocks:2 () in
  let evicted = ref [] in
  Machine.set_evict_handler m (fun _node b _line -> evicted := b :: !evicted);
  let gmem = Machine.gmem m in
  (* all blocks homed on node 1; node 0 caches them under capacity 2 *)
  let a = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 1) ~nwords:(8 * 4) in
  Machine.spawn m (Machine.node m 0) (fun () ->
      for blk = 0 to 3 do
        ignore (Memeff.load (a + (8 * blk)))
      done);
  Machine.run_to_quiescence m;
  Alcotest.(check int) "two evictions" 2 (List.length !evicted);
  Alcotest.(check int) "lru order" 0 (List.nth (List.rev !evicted) 0);
  Alcotest.(check int) "eviction stat" 2
    (Lcm_util.Stats.get (Machine.stats m) "cache.evictions")

let test_home_lines_not_evicted () =
  let m = mk ~capacity_blocks:1 () in
  Machine.set_evict_handler m (fun _ _ _ -> ());
  let gmem = Machine.gmem m in
  let local = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 0) ~nwords:(8 * 3) in
  Machine.spawn m (Machine.node m 0) (fun () ->
      for blk = 0 to 2 do
        Memeff.store (local + (8 * blk)) blk
      done;
      (* all three home blocks must still hit *)
      for blk = 0 to 2 do
        ignore (Memeff.load (local + (8 * blk)))
      done);
  Machine.run_to_quiescence m;
  Alcotest.(check int) "no faults on home data" 0
    (Lcm_util.Stats.get (Machine.stats m) "fault.read")

let test_deadlock_detected () =
  let m =
    Machine.create ~nnodes:2 ~words_per_block:8 ~topology:Lcm_net.Topology.Crossbar ()
  in
  (* a protocol that never resumes *)
  Machine.set_handlers m
    ~read_fault:(fun _ ~addr:_ ~retry:_ -> ())
    ~write_fault:(fun _ ~addr:_ ~retry:_ -> ())
    ~directive:(fun _ _ ~retry -> retry ());
  let gmem = Machine.gmem m in
  let a = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 1) ~nwords:8 in
  Machine.spawn m (Machine.node m 0) (fun () -> ignore (Memeff.load a));
  Alcotest.(check bool) "deadlock reported" true
    (try
       Machine.run_to_quiescence m;
       false
     with Failure _ -> true)

let test_rmw_atomic_local () =
  let m = mk () in
  let a = Lcm_mem.Gmem.alloc (Machine.gmem m) ~dist:(Lcm_mem.Gmem.On 0) ~nwords:8 in
  let old = ref (-1) in
  Machine.spawn m (Machine.node m 0) (fun () ->
      Memeff.store a 10;
      old := Memeff.rmw a (fun v -> v + 5));
  Machine.run_to_quiescence m;
  Alcotest.(check int) "returns old value" 10 !old;
  let b = Lcm_mem.Gmem.block_of_addr (Machine.gmem m) a in
  Alcotest.(check int) "applied" 15 (Machine.master m b).(0)

let test_rmw_faults_when_not_writable () =
  let m = mk () in
  let a = Lcm_mem.Gmem.alloc (Machine.gmem m) ~dist:(Lcm_mem.Gmem.On 1) ~nwords:8 in
  Machine.spawn m (Machine.node m 0) (fun () -> ignore (Memeff.rmw a (fun v -> v + 1)));
  Machine.run_to_quiescence m;
  Alcotest.(check int) "write fault raised" 1
    (Lcm_util.Stats.get (Machine.stats m) "fault.write")

let test_rmw_sets_dirty_on_lcm_line () =
  let m = mk () in
  let gmem = Machine.gmem m in
  let a = Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 0) ~nwords:8 in
  let b = Lcm_mem.Gmem.block_of_addr gmem a in
  let node = Machine.node m 1 in
  ignore
    (Machine.install_line node b ~data:(Lcm_mem.Block.make ~words:8)
       ~tag:Tag.Lcm_modified);
  Machine.spawn m node (fun () -> ignore (Memeff.rmw (a + 2) (fun v -> v + 1)));
  Machine.run_to_quiescence m;
  match Machine.find_line node b with
  | Some line ->
    Alcotest.(check (list int)) "dirty bit" [ 2 ]
      (Lcm_util.Mask.to_list line.Machine.dirty)
  | None -> Alcotest.fail "line vanished"

let test_yield_interleaves_by_time () =
  (* two fibers that only yield and work: events interleave in simulated
     time order, so the log alternates according to their work sizes *)
  let m = mk () in
  let log = ref [] in
  let fiber name work =
    fun () ->
      for _ = 1 to 3 do
        Memeff.yield ();
        Memeff.work work;
        log := name :: !log
      done
  in
  Machine.spawn m (Machine.node m 0) (fiber "slow" 100);
  Machine.spawn m (Machine.node m 1) (fiber "fast" 10);
  Machine.run_to_quiescence m;
  (* deterministic: slow's 1st step runs at its t=0 resumption (FIFO before
     fast's), then fast's three steps (t=10,20,30) all precede slow's
     later steps at t=100 and t=200 *)
  Alcotest.(check (list string)) "time-ordered interleave"
    [ "slow"; "fast"; "fast"; "fast"; "slow"; "slow" ]
    (List.rev !log)

let test_epoch_and_phase () =
  let m = mk () in
  Alcotest.(check int) "epoch 0" 0 (Machine.epoch m);
  Machine.incr_epoch m;
  Alcotest.(check int) "epoch 1" 1 (Machine.epoch m);
  Alcotest.(check bool) "sequential" true (Machine.phase m = `Sequential);
  Machine.set_phase m `Parallel;
  Alcotest.(check bool) "parallel" true (Machine.phase m = `Parallel)

let test_clock_utilities () =
  let m = mk () in
  Machine.set_clock (Machine.node m 1) 500;
  Machine.advance_clock (Machine.node m 1) 20;
  Alcotest.(check int) "max clock" 520 (Machine.max_clock m);
  Machine.set_all_clocks m 1000;
  Alcotest.(check int) "sync" 1000 (Machine.clock (Machine.node m 3));
  Alcotest.(check bool) "barrier cost positive" true (Machine.barrier_cost m > 0)

let test_handler_occupancy_serializes () =
  (* two messages arriving together at one node: the second handler's
     completion time reflects the first's occupancy *)
  let m = mk () in
  let times = ref [] in
  Machine.send m ~src:0 ~dst:2 ~words:1 ~tag:"a" ~at:0 (fun _ ~now ->
      times := now :: !times);
  Machine.send m ~src:1 ~dst:2 ~words:1 ~tag:"b" ~at:0 (fun _ ~now ->
      times := now :: !times);
  Machine.run_to_quiescence m;
  match List.rev !times with
  | [ t1; t2 ] ->
    let occ = (Machine.costs m).Lcm_sim.Costs.handler_occupancy in
    Alcotest.(check bool)
      (Printf.sprintf "serialized (%d then %d)" t1 t2)
      true
      (t2 >= t1 + occ)
  | _ -> Alcotest.fail "expected two deliveries"

let test_resume_clock_semantics () =
  let m = mk () in
  let node = Machine.node m 1 in
  Machine.set_clock node 50;
  Machine.resume node ~now:200 ~cost:7 (fun () -> ());
  Alcotest.(check int) "clock jumps to event time + cost" 207 (Machine.clock node);
  Machine.resume node ~now:100 ~cost:3 (fun () -> ());
  (* an old event cannot move the clock backwards *)
  Alcotest.(check int) "monotone" 210 (Machine.clock node)

let test_hw_cache_charges_misses () =
  let run hw =
    let m =
      Machine.create ?hw_cache_blocks:hw ~nnodes:2 ~words_per_block:8
        ~topology:Lcm_net.Topology.Crossbar ()
    in
    install_test_protocol m;
    let a = Lcm_mem.Gmem.alloc (Machine.gmem m) ~dist:(Lcm_mem.Gmem.On 0) ~nwords:(8 * 4) in
    Machine.spawn m (Machine.node m 0) (fun () ->
        (* two sweeps over 4 blocks: all hit node memory, but a 2-slot
           direct-mapped hw cache misses every block on both sweeps *)
        for sweep = 1 to 2 do
          ignore sweep;
          for blk = 0 to 3 do
            ignore (Memeff.load (a + (8 * blk)))
          done
        done);
    Machine.run_to_quiescence m;
    ( Machine.clock (Machine.node m 0),
      Lcm_util.Stats.get (Machine.stats m) "cache.hw_misses" )
  in
  let base_clock, base_misses = run None in
  let small_clock, small_misses = run (Some 2) in
  let big_clock, big_misses = run (Some 64) in
  Alcotest.(check int) "no hw cache: no misses" 0 base_misses;
  Alcotest.(check int) "2-slot: 8 conflict misses" 8 small_misses;
  Alcotest.(check int) "64-slot: 4 cold misses" 4 big_misses;
  Alcotest.(check bool) "misses cost cycles" true (small_clock > base_clock);
  Alcotest.(check bool) "bigger cache cheaper" true (big_clock < small_clock)

let test_hw_cache_validation () =
  Alcotest.(check bool) "zero rejected" true
    (try
       ignore
         (Machine.create ~hw_cache_blocks:0 ~nnodes:2 ~words_per_block:8 ());
       false
     with Invalid_argument _ -> true)

let test_trace_ring () =
  let tr = Lcm_sim.Trace.create ~capacity:3 in
  List.iteri (fun i e -> Lcm_sim.Trace.record tr ~time:(10 * i) e)
    [ "a"; "b"; "c"; "d" ];
  Alcotest.(check int) "recorded total" 4 (Lcm_sim.Trace.recorded tr);
  Alcotest.(check (list string)) "keeps newest, oldest first"
    [ "[t=10] b"; "[t=20] c"; "[t=30] d" ]
    (Lcm_sim.Trace.dump tr);
  Lcm_sim.Trace.clear tr;
  Alcotest.(check (list string)) "cleared" [] (Lcm_sim.Trace.dump tr);
  Alcotest.(check bool) "bad capacity" true
    (try
       ignore (Lcm_sim.Trace.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

let test_machine_trace_captures_events () =
  let m = mk () in
  Machine.enable_trace ~capacity:16 m;
  let a = Lcm_mem.Gmem.alloc (Machine.gmem m) ~dist:(Lcm_mem.Gmem.On 1) ~nwords:8 in
  Machine.spawn m (Machine.node m 0) (fun () -> ignore (Memeff.load a));
  Machine.run_to_quiescence m;
  let events = Machine.trace_dump m in
  Alcotest.(check bool) "fault recorded" true
    (List.exists (fun e -> String.length e > 0 &&
        (let has sub =
           let nl = String.length sub and hl = String.length e in
           let rec go i = i + nl <= hl && (String.sub e i nl = sub || go (i + 1)) in
           go 0
         in
         has "read fault")) events);
  Alcotest.(check bool) "message recorded" true
    (List.exists (fun e ->
         let has sub =
           let nl = String.length sub and hl = String.length e in
           let rec go i = i + nl <= hl && (String.sub e i nl = sub || go (i + 1)) in
           go 0
         in
         has "msg req") events)

let test_deadlock_reports_trace () =
  let m =
    Machine.create ~nnodes:2 ~words_per_block:8 ~topology:Lcm_net.Topology.Crossbar ()
  in
  Machine.enable_trace m;
  Machine.set_handlers m
    ~read_fault:(fun _ ~addr:_ ~retry:_ -> ())
    ~write_fault:(fun _ ~addr:_ ~retry:_ -> ())
    ~directive:(fun _ _ ~retry -> retry ());
  let a = Lcm_mem.Gmem.alloc (Machine.gmem m) ~dist:(Lcm_mem.Gmem.On 1) ~nwords:8 in
  Machine.spawn m (Machine.node m 0) (fun () -> ignore (Memeff.load a));
  Alcotest.(check bool) "failure message has events" true
    (try
       Machine.run_to_quiescence m;
       false
     with Failure msg ->
       let has sub =
         let nl = String.length sub and hl = String.length msg in
         let rec go i = i + nl <= hl && (String.sub msg i nl = sub || go (i + 1)) in
         go 0
       in
       has "last events" && has "read fault")

let test_lines_snapshot_sorted () =
  let m = mk () in
  let gmem = Machine.gmem m in
  ignore (Lcm_mem.Gmem.alloc gmem ~dist:(Lcm_mem.Gmem.On 1) ~nwords:(8 * 10));
  let node = Machine.node m 0 in
  List.iter
    (fun b ->
      ignore
        (Machine.install_line node b ~data:(Lcm_mem.Block.make ~words:8)
           ~tag:Tag.Read_only))
    [ 9; 2; 5 ];
  Alcotest.(check (list int)) "sorted" [ 2; 5; 9 ]
    (List.map fst (Machine.lines_snapshot node))

let () =
  Alcotest.run "lcm_tempest"
    [
      ("tag", [ ("permissions", `Quick, test_tag_permissions) ]);
      ( "machine",
        [
          ("fiber completes", `Quick, test_fiber_completes_without_memory);
          ("home access hits", `Quick, test_local_home_access_hits);
          ("remote faults+suspends", `Quick, test_remote_access_faults_and_suspends);
          ("master rejects unallocated block", `Quick,
           test_master_rejects_unallocated_block);
          ("second access hits", `Quick, test_second_access_hits);
          ("lcm dirty mask", `Quick, test_store_sets_dirty_mask_on_lcm_line);
          ("plain store untracked", `Quick, test_plain_writable_store_does_not_track_dirty);
          ("fibers interleave", `Quick, test_many_fibers_interleave);
          ("directive dispatch", `Quick, test_directive_dispatch);
          ("capacity eviction", `Quick, test_capacity_eviction);
          ("home lines pinned", `Quick, test_home_lines_not_evicted);
          ("deadlock detected", `Quick, test_deadlock_detected);
          ("rmw atomic local", `Quick, test_rmw_atomic_local);
          ("rmw faults", `Quick, test_rmw_faults_when_not_writable);
          ("rmw dirty bit", `Quick, test_rmw_sets_dirty_on_lcm_line);
          ("yield interleaves by time", `Quick, test_yield_interleaves_by_time);
          ("epoch and phase", `Quick, test_epoch_and_phase);
          ("clock utilities", `Quick, test_clock_utilities);
          ("lines snapshot sorted", `Quick, test_lines_snapshot_sorted);
          ("handler occupancy", `Quick, test_handler_occupancy_serializes);
          ("resume clock semantics", `Quick, test_resume_clock_semantics);
          ("hw cache misses", `Quick, test_hw_cache_charges_misses);
          ("hw cache validation", `Quick, test_hw_cache_validation);
          ("trace ring", `Quick, test_trace_ring);
          ("machine trace", `Quick, test_machine_trace_captures_events);
          ("deadlock reports trace", `Quick, test_deadlock_reports_trace);
        ] );
    ]
