(* Tests for the four paper benchmarks: every (protocol, strategy, schedule)
   combination must reproduce the host-side sequential reference. *)

open Lcm_apps
open Lcm_cstar
module Policy = Lcm_core.Policy
module Machine = Lcm_tempest.Machine

let mk_runtime ?(nnodes = 8) ?(schedule = Schedule.Static) policy strategy =
  let m =
    Machine.create ~nnodes ~words_per_block:8
      ~topology:(Lcm_net.Topology.Fat_tree { arity = 4 })
      ()
  in
  let p = Lcm_core.Proto.install ~policy m in
  Runtime.create p ~strategy ~schedule ()

let combos =
  [
    ("stache", Policy.stache, Runtime.Explicit_copy);
    ("scc", Policy.lcm_scc, Runtime.Lcm_directives);
    ("mcc", Policy.lcm_mcc, Runtime.Lcm_directives);
  ]

let schedules = [ ("static", Schedule.Static); ("dyn", Schedule.Dynamic_random 5) ]

let check_close name expected actual =
  let denom = max 1.0 (abs_float expected) in
  if abs_float (expected -. actual) /. denom > 1e-4 then
    Alcotest.failf "%s: expected %.8g, got %.8g" name expected actual

(* Build one test per app x protocol x schedule. *)
let app_tests ~app_name ~reference ~run ~params =
  List.concat_map
    (fun (sname, schedule) ->
      List.map
        (fun (pname, policy, strategy) ->
          ( Printf.sprintf "%s %s/%s matches reference" app_name pname sname,
            `Slow,
            fun () ->
              let rt = mk_runtime ~schedule policy strategy in
              let r = run rt params in
              check_close app_name (reference params) r.Bench_result.checksum;
              Alcotest.(check bool) "time advanced" true (r.Bench_result.cycles > 0)
          ))
        combos)
    schedules

let stencil_params = { Stencil.n = 24; iters = 4; work_per_cell = 4 }

let threshold_params = { Threshold.n = 24; iters = 4; threshold = 0.5; work_per_cell = 4 }

let unstructured_params =
  { Unstructured.nodes = 48; edges = 160; iters = 6; seed = 11; work_per_node = 6 }

let sor_params = { Sor.n = 26; iters = 4; omega = 1.5; work_per_cell = 4 }

let adaptive_params =
  {
    Adaptive.n = 12;
    iters = 6;
    max_depth = 2;
    subdiv_threshold = 2.0;
    arena_per_node = 512;
    work_per_cell = 6;
  }

(* ------------------------------------------------------------------ *)
(* Behaviour diagnostics                                               *)
(* ------------------------------------------------------------------ *)

let test_threshold_sparse_updates () =
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let frac =
    Threshold.modified_fraction rt
      { Threshold.n = 32; iters = 6; threshold = 0.5; work_per_cell = 4 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "sparse (%.3f)" frac)
    true
    (frac > 0.0 && frac < 0.25)

let test_threshold_lcm_writes_fewer_blocks () =
  let run policy strategy =
    let rt = mk_runtime policy strategy in
    Threshold.run rt threshold_params
  in
  let stache = run Policy.stache Runtime.Explicit_copy in
  let mcc = run Policy.lcm_mcc Runtime.Lcm_directives in
  (* LCM's whole point on Threshold: far fewer blocks change hands, and the
     run is faster. *)
  Alcotest.(check bool)
    (Printf.sprintf "fewer faults (%d < %d)" mcc.Bench_result.faults
       stache.Bench_result.faults)
    true
    (mcc.Bench_result.faults < stache.Bench_result.faults);
  Alcotest.(check bool)
    (Printf.sprintf "faster (%d < %d)" mcc.Bench_result.cycles
       stache.Bench_result.cycles)
    true
    (mcc.Bench_result.cycles < stache.Bench_result.cycles)

let test_adaptive_subdivides () =
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let n = Adaptive.cells_allocated rt adaptive_params in
  Alcotest.(check bool)
    (Printf.sprintf "tree grew (%d cells)" n)
    true
    (n > adaptive_params.Adaptive.n * adaptive_params.Adaptive.n)

let test_adaptive_refinement_map () =
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let map = Adaptive.refinement_map rt adaptive_params in
  let lines = String.split_on_char '\n' (String.trim map) in
  Alcotest.(check int) "one row per base row" adaptive_params.Adaptive.n
    (List.length lines);
  (* the hot left edge refines; the far right edge does not *)
  let mid = List.nth lines (adaptive_params.Adaptive.n / 2) in
  Alcotest.(check bool) "refined near the hot edge" true (mid.[1] <> '.');
  Alcotest.(check bool) "calm far corner" true
    (let last = List.nth lines (adaptive_params.Adaptive.n - 1) in
     last.[String.length last - 1] = '.')

let test_adaptive_static_dynamic_agree () =
  (* same protocol, different schedules: allocation layout differs but the
     computed values must not *)
  let run schedule =
    let rt = mk_runtime ~schedule Policy.lcm_scc Runtime.Lcm_directives in
    (Adaptive.run rt adaptive_params).Bench_result.checksum
  in
  check_close "adaptive" (run Schedule.Static) (run (Schedule.Dynamic_random 5))

let test_stencil_lcm_clean_copies_grow_with_writes () =
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let r = Stencil.run rt stencil_params in
  Alcotest.(check bool) "clean copies created" true (r.Bench_result.clean_copies > 0)

let test_stencil_stache_has_no_clean_copies () =
  let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
  let r = Stencil.run rt stencil_params in
  Alcotest.(check int) "no clean copies" 0 r.Bench_result.clean_copies

let prop_stencil_linearity =
  (* averaging is linear: scaling the initial condition scales the result.
     Exercised end-to-end through the simulated memory system. *)
  QCheck.Test.make ~name:"stencil is linear in its initial condition" ~count:8
    QCheck.(int_range 2 5)
    (fun k ->
      let run scale =
        let rt = mk_runtime ~nnodes:4 Policy.lcm_mcc Runtime.Lcm_directives in
        let n = 16 in
        let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            Agg.pokef a i j (float_of_int (scale * (if i = 0 then 4 else 0)))
          done
        done;
        for iter = 0 to 3 do
          Runtime.parallel_apply_2d rt ~iter ~rows:n ~cols:n (fun _ctx i j ->
              if i > 0 && j > 0 && i < n - 1 && j < n - 1 then
                Agg.setf a i j
                  (0.25
                  *. (Agg.getf a (i - 1) j +. Agg.getf a (i + 1) j
                     +. Agg.getf a i (j - 1) +. Agg.getf a i (j + 1)))
              else Agg.setf a i j (Agg.getf a i j));
          Agg.swap a
        done;
        let sum = ref 0.0 in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            sum := !sum +. Agg.peekf a i j
          done
        done;
        !sum
      in
      let base = run 1 and scaled = run k in
      (* powers-of-two-friendly values keep float32 exact enough *)
      abs_float (scaled -. (float_of_int k *. base)) < 1e-3 *. abs_float scaled +. 1e-6)

let test_unstructured_graph_construction () =
  (* the generated graph is deterministic, connected, and has the requested
     number of edges *)
  let p = unstructured_params in
  let a = Unstructured.reference p and b = Unstructured.reference p in
  Alcotest.(check (float 0.0)) "deterministic" a b

let test_sor_no_explicit_marks () =
  (* the compiler emitted no directives: every mark is an implicit one *)
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  ignore (Sor.run rt sor_params);
  let s = Runtime.stats rt in
  Alcotest.(check int) "marks = implicit marks"
    (Lcm_util.Stats.get s "lcm.implicit_marks")
    (Lcm_util.Stats.get s "lcm.marks");
  Alcotest.(check bool) "implicit marks happened" true
    (Lcm_util.Stats.get s "lcm.implicit_marks" > 0)

let test_sor_lcm_avoids_write_ping_pong () =
  (* blocks straddling partition boundaries are falsely shared; Stache
     re-acquires them exclusively, LCM merges private copies *)
  let faults policy strategy =
    let rt = mk_runtime policy strategy in
    (Sor.run rt sor_params).Bench_result.faults
  in
  let stache = faults Policy.stache Runtime.Explicit_copy in
  let mcc = faults Policy.lcm_mcc Runtime.Lcm_directives in
  Alcotest.(check bool)
    (Printf.sprintf "fault counts differ sensibly (stache %d, mcc %d)" stache mcc)
    true
    (stache > 0 && mcc > 0)

let test_stencil_mcc_fewer_faults_than_scc () =
  (* The paper: "LCM-mcc ... reduced cache misses by a factor of almost 8
     over LCM-scc" — scc re-faults on every re-marked block after a flush,
     mcc restores it from the local clean copy. *)
  let run policy =
    let rt = mk_runtime policy Runtime.Lcm_directives in
    Stencil.run rt stencil_params
  in
  let scc = run Policy.lcm_scc and mcc = run Policy.lcm_mcc in
  Alcotest.(check bool)
    (Printf.sprintf "mcc faults %d << scc faults %d" mcc.Bench_result.faults
       scc.Bench_result.faults)
    true
    (4 * mcc.Bench_result.faults < scc.Bench_result.faults);
  Alcotest.(check bool)
    (Printf.sprintf "mcc faster (%d < %d)" mcc.Bench_result.cycles
       scc.Bench_result.cycles)
    true
    (mcc.Bench_result.cycles < scc.Bench_result.cycles)

let () =
  Alcotest.run "lcm_apps" ~and_exit:true
    [
      ( "stencil",
        app_tests ~app_name:"stencil" ~reference:Stencil.reference ~run:Stencil.run
          ~params:stencil_params
        @ [
            ("mcc clean copies", `Quick, test_stencil_lcm_clean_copies_grow_with_writes);
            ("stache no clean copies", `Quick, test_stencil_stache_has_no_clean_copies);
            ("mcc beats scc on refetches", `Slow, test_stencil_mcc_fewer_faults_than_scc);
            QCheck_alcotest.to_alcotest prop_stencil_linearity;
          ] );
      ( "threshold",
        app_tests ~app_name:"threshold" ~reference:Threshold.reference
          ~run:Threshold.run ~params:threshold_params
        @ [
            ("sparse updates", `Quick, test_threshold_sparse_updates);
            ("lcm copies less", `Slow, test_threshold_lcm_writes_fewer_blocks);
          ] );
      ( "unstructured",
        app_tests ~app_name:"unstructured" ~reference:Unstructured.reference
          ~run:Unstructured.run ~params:unstructured_params
        @ [ ("graph deterministic", `Quick, test_unstructured_graph_construction) ] );
      ( "adaptive",
        app_tests ~app_name:"adaptive" ~reference:Adaptive.reference ~run:Adaptive.run
          ~params:adaptive_params
        @ [
            ("subdivides", `Slow, test_adaptive_subdivides);
            ("schedules agree", `Slow, test_adaptive_static_dynamic_agree);
            ("refinement map", `Slow, test_adaptive_refinement_map);
          ] );
      ( "sor",
        app_tests ~app_name:"sor" ~reference:Sor.reference ~run:Sor.run
          ~params:sor_params
        @ [
            ("no explicit marks", `Quick, test_sor_no_explicit_marks);
            ("false sharing handled", `Quick, test_sor_lcm_avoids_write_ping_pong);
          ] );
    ]
