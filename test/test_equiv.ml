(* Before/after equivalence pins for the host-performance work.

   Each fixed-seed workload below was run once on the pre-optimization
   simulator and its Fingerprint recorded verbatim.  The digests cover the
   final memory image word-for-word, every counter/gauge/sample, the full
   trace event sequence and the final clock — so any hot-path "optimization"
   that changes simulated behaviour in any observable way fails here
   bit-for-bit.

   To re-record after an INTENTIONAL semantic change (a protocol fix, a new
   counter), run:

     LCM_EQUIV_RECORD=1 dune exec test/test_equiv.exe 2>&1 | grep 'workload '

   and paste the printed table over [expected]. *)

open Lcm_harness

let trace_capacity = 1 lsl 20

let systems =
  [ Config.stache; Config.lcm_scc; Config.lcm_mcc; Config.lcm_mcc_update ]

let run_stencil sys =
  let rt =
    Config.make_runtime
      { Config.default_machine with Config.nnodes = 8 }
      sys ~schedule:Lcm_cstar.Schedule.Static
  in
  Lcm_tempest.Machine.enable_trace ~capacity:trace_capacity
    (Lcm_cstar.Runtime.machine rt);
  ignore
    (Lcm_apps.Stencil.run rt
       { Lcm_apps.Stencil.n = 24; iters = 3; work_per_cell = 4 });
  Fingerprint.of_runtime rt

let run_unstructured sys =
  let rt =
    Config.make_runtime
      { Config.default_machine with Config.nnodes = 8 }
      sys ~schedule:Lcm_cstar.Schedule.Static
  in
  Lcm_tempest.Machine.enable_trace ~capacity:trace_capacity
    (Lcm_cstar.Runtime.machine rt);
  ignore
    (Lcm_apps.Unstructured.run rt
       {
         Lcm_apps.Unstructured.nodes = 48;
         edges = 128;
         iters = 3;
         seed = 11;
         work_per_node = 6;
       });
  Fingerprint.of_runtime rt

let workloads =
  List.map (fun s -> (Printf.sprintf "stencil24/%s" s.Config.label, fun () -> run_stencil s)) systems
  @ List.map
      (fun s -> (Printf.sprintf "unstructured48/%s" s.Config.label, fun () -> run_unstructured s))
      systems

(* Re-recorded after the loopback bugfix (src = dst messages now cost
   msg_fixed only and skip channel occupancy): cycle/counter/trace digests
   moved for the workloads that self-send; every [mem] digest is
   unchanged — the fix is timing-only. *)
let expected =
  [
    ("workload stencil24/Stache+copy", "cycles=26188 mem=274d3d7a1bd7c09 counters=879e8156f83f27c9 trace=9e90a8e1f7c1e321/1752");
    ("workload stencil24/LCM-scc", "cycles=104640 mem=3a5dbccc5e12b3c5 counters=5b311973d41d11c7 trace=81000cf0ee326505/11904");
    ("workload stencil24/LCM-mcc", "cycles=68730 mem=3a5dbccc5e12b3c5 counters=480383b2591287bf trace=ac8641ee1c9d2677/5124");
    ("workload stencil24/LCM-mcc-update", "cycles=62034 mem=3a5dbccc5e12b3c5 counters=4bece52298a2c81d trace=daaee9872eb4cdfb/4536");
    ("workload unstructured48/Stache+copy", "cycles=27049 mem=148971b3a90edd71 counters=4c2e3e52f447ac67 trace=9803138ffa5aeb3f/2187");
    ("workload unstructured48/LCM-scc", "cycles=31562 mem=708485218d1d7b20 counters=c276579d0212dda6 trace=8b923102f9fb0a35/3559");
    ("workload unstructured48/LCM-mcc", "cycles=23013 mem=708485218d1d7b20 counters=457de1507267e27a trace=f5972616b544234/2809");
    ("workload unstructured48/LCM-mcc-update", "cycles=16209 mem=708485218d1d7b20 counters=9a517cc7bac4722a trace=c00282dd205d1a4f/2235");
  ]

let recording = Sys.getenv_opt "LCM_EQUIV_RECORD" <> None

let test_pinned () =
  List.iter
    (fun (name, run) ->
      let fp = Fingerprint.to_string (run ()) in
      if recording then Printf.printf "    (\"workload %s\", %S);\n%!" name fp
      else
        match List.assoc_opt ("workload " ^ name) expected with
        | Some want -> Alcotest.(check string) name want fp
        | None -> Alcotest.failf "no recorded fingerprint for %s" name)
    workloads

(* The parallel engine is pinned to the *same* table: the conservative
   windowed driver (Pdes) must reproduce the sequential event order stamp
   for stamp, so every cell's memory, counter and trace digests are
   bit-identical at --jobs 4.  This is the refinement oracle — if sharding
   perturbs anything observable, these fail against the sequential pins. *)
let test_pinned_sharded () =
  if not recording then
    List.iter
      (fun (name, run) ->
        let fp =
          Lcm_sim.Pdes.with_jobs ~jobs:4 (fun () ->
              Fingerprint.to_string (run ()))
        in
        match List.assoc_opt ("workload " ^ name) expected with
        | Some want -> Alcotest.(check string) ("jobs=4 " ^ name) want fp
        | None -> Alcotest.failf "no recorded fingerprint for %s" name)
      workloads

(* Same build, run twice: determinism of the digest itself. *)
let test_self_stable () =
  let a = run_stencil Config.lcm_mcc and b = run_stencil Config.lcm_mcc in
  Alcotest.(check bool) "identical reruns" true (Fingerprint.equal a b);
  Alcotest.(check string)
    "identical rendering"
    (Fingerprint.to_string a)
    (Fingerprint.to_string b)

let () =
  Alcotest.run "equiv"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "pinned workloads" `Slow test_pinned;
          Alcotest.test_case "pinned workloads --jobs 4" `Slow
            test_pinned_sharded;
          Alcotest.test_case "self stable" `Quick test_self_stable;
        ] );
    ]
