(* Tests for the miniature C** kernel language: conflict analysis, directive
   insertion, explicit-copy code generation, and end-to-end equivalence with
   the hand-written benchmarks. *)

open Lcm_cstar
module Policy = Lcm_core.Policy
module Machine = Lcm_tempest.Machine
module K = Kernel

let mk_runtime ?(nnodes = 4) policy strategy =
  let m =
    Machine.create ~nnodes ~words_per_block:8 ~topology:Lcm_net.Topology.Crossbar ()
  in
  let p = Lcm_core.Proto.install ~policy m in
  Runtime.create p ~strategy ~schedule:Schedule.Static ()

(* The paper's stencil, in the DSL (section 6.1's generated-code listing). *)
let stencil_kernel =
  {
    K.name = "stencil";
    body =
      [
        K.If
          ( K.Interior,
            [
              K.Assign
                ( "A",
                  K.Self,
                  K.Self,
                  K.Mul
                    ( K.Const 0.25,
                      K.Add
                        ( K.Add
                            ( K.Add
                                ( K.Read ("A", K.Off (-1), K.Self),
                                  K.Read ("A", K.Off 1, K.Self) ),
                              K.Read ("A", K.Self, K.Off (-1)) ),
                          K.Read ("A", K.Self, K.Off 1) ) ) );
            ],
            [ K.Assign ("A", K.Self, K.Self, K.Read ("A", K.Self, K.Self)) ] );
      ];
  }

(* A pure map: B gets a function of A's neighbourhood; B itself is never
   read, so its writes are invocation-private. *)
let map_kernel =
  {
    K.name = "blur_into";
    body =
      [
        K.Assign
          ( "B",
            K.Self,
            K.Self,
            K.Mul
              ( K.Const 0.5,
                K.Add (K.Read ("A", K.Self, K.Self), K.Read ("A", K.Off 1, K.Self)) ) );
      ];
  }

(* A guarded (partial) update: only interior cells are written. *)
let partial_kernel =
  {
    K.name = "interior_only";
    body =
      [
        K.If
          ( K.Interior,
            [ K.Assign ("A", K.Self, K.Self, K.Add (K.Read ("A", K.Self, K.Self), K.Const 1.0)) ],
            [] );
      ];
  }

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let test_analyze_stencil () =
  let d = K.analyze stencil_kernel in
  Alcotest.(check (list string)) "A is marked" [ "A" ] d.K.marked_aggs;
  Alcotest.(check (list string)) "nothing unmarked" [] d.K.unmarked_aggs;
  Alcotest.(check bool) "flush between invocations" true d.K.flush_between;
  Alcotest.(check (list string)) "A double-buffered" [ "A" ] d.K.double_buffered;
  (* both branches assign A[self][self], so no pre-copy is needed *)
  Alcotest.(check (list string)) "no pre-copy" [] d.K.precopied

let test_analyze_map () =
  let d = K.analyze map_kernel in
  Alcotest.(check (list string)) "no marks" [] d.K.marked_aggs;
  Alcotest.(check (list string)) "B unmarked" [ "B" ] d.K.unmarked_aggs;
  Alcotest.(check bool) "no flush needed" false d.K.flush_between

let test_analyze_partial () =
  let d = K.analyze partial_kernel in
  (* A is read and written at Self only — but reading your own element that
     you also write is invocation-private, so no marks are strictly
     required... the analysis is conservative only about cross-invocation
     offsets, and here there are none. *)
  Alcotest.(check (list string)) "self-only access unmarked" [] d.K.marked_aggs;
  Alcotest.(check bool) "self-only needs no flush"
    true d.K.flush_between

let test_analyze_scatter_write () =
  (* writing a neighbour's element always conflicts *)
  let k =
    { K.name = "scatter"; body = [ K.Assign ("A", K.Off 1, K.Self, K.Const 1.0) ] }
  in
  let d = K.analyze k in
  Alcotest.(check (list string)) "marked" [ "A" ] d.K.marked_aggs;
  Alcotest.(check (list string)) "pre-copy needed" [ "A" ] d.K.precopied

let test_validate () =
  Alcotest.(check bool) "stencil ok" true (K.validate stencil_kernel = Ok ());
  let bad =
    { K.name = "bad"; body = [ K.Assign ("A", K.Self, K.Self, K.Div (K.Const 1.0, K.Const 0.0)) ] }
  in
  Alcotest.(check bool) "div by zero rejected" true
    (match K.validate bad with Error _ -> true | Ok () -> false)

(* ------------------------------------------------------------------ *)
(* Compilation and execution                                           *)
(* ------------------------------------------------------------------ *)

let combos =
  [
    ("stache", Policy.stache, Runtime.Explicit_copy);
    ("scc", Policy.lcm_scc, Runtime.Lcm_directives);
    ("mcc", Policy.lcm_mcc, Runtime.Lcm_directives);
  ]

let n = 12

let init_a rt =
  let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Agg.pokef a i j (float_of_int (((i * 7) + (j * 3)) mod 11))
    done
  done;
  a

(* reference stencil step in float32 *)
let f32 x = Lcm_mem.Word.to_float (Lcm_mem.Word.of_float x)

let stencil_ref grid =
  let n = Array.length grid in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = 0 || j = 0 || i = n - 1 || j = n - 1 then grid.(i).(j)
          else
            f32
              (0.25
              *. (grid.(i - 1).(j) +. grid.(i + 1).(j) +. grid.(i).(j - 1)
                 +. grid.(i).(j + 1)))))

let test_kernel_stencil_matches (name, policy, strategy) =
  ( Printf.sprintf "DSL stencil == reference (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let a = init_a rt in
      let before = Agg.to_matrix a in
      let apply =
        K.compile rt stencil_kernel { K.aggs = [ ("A", a) ]; reducers = [] } ~over:"A"
      in
      apply ();
      let expected = stencil_ref before in
      let got = Agg.to_matrix a in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Alcotest.(check (float 1e-5))
            (Printf.sprintf "(%d,%d)" i j)
            expected.(i).(j) got.(i).(j)
        done
      done )

let test_kernel_stencil_iterated (name, policy, strategy) =
  ( Printf.sprintf "DSL stencil x5 == handwritten x5 (%s)" name,
    `Quick,
    fun () ->
      (* DSL-compiled stencil must agree with the handwritten benchmark *)
      let rt = mk_runtime policy strategy in
      let a = init_a rt in
      let apply =
        K.compile rt stencil_kernel { K.aggs = [ ("A", a) ]; reducers = [] } ~over:"A"
      in
      for iter = 0 to 4 do
        apply ~iter ()
      done;
      let got = Agg.to_matrix a in
      (* independent host reference *)
      let reference = ref (Array.init n (fun i -> Array.init n (fun j ->
          float_of_int (((i * 7) + (j * 3)) mod 11)))) in
      for _ = 1 to 5 do
        reference := stencil_ref !reference
      done;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Alcotest.(check (float 1e-4))
            (Printf.sprintf "(%d,%d)" i j)
            !reference.(i).(j) got.(i).(j)
        done
      done )

let test_kernel_map (name, policy, strategy) =
  ( Printf.sprintf "DSL map correct (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let a = init_a rt in
      let b = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
      let apply =
        K.compile rt map_kernel
          { K.aggs = [ ("A", a); ("B", b) ]; reducers = [] }
          ~over:"B"
      in
      apply ();
      (* B's writes are proven private, so the compiler updates it in
         place under both strategies — results are directly visible *)
      ignore strategy;
      let expect i j =
        let get i j = Agg.peekf a (min (n - 1) i) j in
        f32 (0.5 *. (get i j +. get (i + 1) j))
      in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Alcotest.(check (float 1e-5))
            (Printf.sprintf "(%d,%d)" i j)
            (expect i j) (Agg.peekf b i j)
        done
      done )

let test_kernel_partial_update () =
  (* the pre-copy machinery: a guarded scatter-write under explicit copying
     must preserve unwritten elements *)
  List.iter
    (fun (_, policy, strategy) ->
      let rt = mk_runtime policy strategy in
      let a = init_a rt in
      let before = Agg.to_matrix a in
      let k =
        {
          K.name = "bump_right";
          body =
            [
              K.If
                ( K.ICmp (K.Lt, K.J, K.IConst 3),
                  [
                    K.Assign
                      ( "A",
                        K.Self,
                        K.Off 4,
                        K.Add (K.Read ("A", K.Self, K.Off 4), K.Const 1.0) );
                  ],
                  [] );
            ];
        }
      in
      let apply = K.compile rt k { K.aggs = [ ("A", a) ]; reducers = [] } ~over:"A" in
      apply ();
      let got = Agg.to_matrix a in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let expected =
            if j >= 4 && j < 7 then before.(i).(j) +. 1.0 else before.(i).(j)
          in
          Alcotest.(check (float 1e-5))
            (Printf.sprintf "(%d,%d)" i j)
            expected got.(i).(j)
        done
      done)
    combos

let test_kernel_reduction (name, policy, strategy) =
  ( Printf.sprintf "DSL reduction (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let a = init_a rt in
      let total = Runtime.reducer rt ~op:Lcm_core.Reduction.f32_sum ~init:0 in
      let k =
        { K.name = "sum_all"; body = [ K.Reduce ("total", K.Read ("A", K.Self, K.Self)) ] }
      in
      let apply =
        K.compile rt k
          { K.aggs = [ ("A", a) ]; reducers = [ ("total", total) ] }
          ~over:"A"
      in
      apply ();
      let expected = ref 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          expected := !expected +. float_of_int (((i * 7) + (j * 3)) mod 11)
        done
      done;
      Alcotest.(check (float 0.5)) "sum" !expected (Reducer.readf total) )

let test_kernel_unbound_agg () =
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  Alcotest.(check bool) "unbound rejected" true
    (try
       let (_ : ?iter:int -> unit -> unit) =
         K.compile rt map_kernel { K.aggs = []; reducers = [] } ~over:"B"
       in
       false
     with Invalid_argument _ -> true)

let test_kernel_implicit_marks_catch_unmarked () =
  (* The compiler leaves B unmarked.  When a writer is not B's home node,
     its unannotated store faults and the memory system handles it as an
     implicit mark — the paper's run-time fallback.  (Writers that ARE the
     home write their aliased backing line directly: the expected fast
     case.) *)
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let a = init_a rt in
  let b = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:(Lcm_mem.Gmem.On 3) in
  let apply =
    K.compile rt map_kernel { K.aggs = [ ("A", a); ("B", b) ]; reducers = [] } ~over:"B"
  in
  apply ();
  Alcotest.(check bool) "implicit marks happened" true
    (Lcm_util.Stats.get (Runtime.stats rt) "lcm.implicit_marks" > 0);
  (* and no explicit marks were emitted for B *)
  Alcotest.(check int) "marks = implicit marks"
    (Lcm_util.Stats.get (Runtime.stats rt) "lcm.implicit_marks")
    (Lcm_util.Stats.get (Runtime.stats rt) "lcm.marks")

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_kernel_pp () =
  let s = Format.asprintf "%a" K.pp stencil_kernel in
  Alcotest.(check bool) "mentions parallel" true (contains s "parallel");
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let s = Format.asprintf "%a" (K.pp_compiled rt) stencil_kernel in
  Alcotest.(check bool) "directives shown" true
    (contains s "mark_modification" && contains s "flush_copies");
  let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
  let s = Format.asprintf "%a" (K.pp_compiled rt) stencil_kernel in
  Alcotest.(check bool) "swap shown" true (contains s "swap")

(* ------------------------------------------------------------------ *)
(* Fuzzing: random kernels agree across memory systems                 *)
(* ------------------------------------------------------------------ *)

(* Random expression over a read-only aggregate "B" (never written, so
   read-own-write visibility differences cannot arise). *)
let gen_expr : K.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self size ->
         let leaf =
           oneof
             [
               map (fun c -> K.Const (float_of_int c)) (int_range (-5) 5);
               return K.Ivar;
               return K.Jvar;
               map2
                 (fun di dj -> K.Read ("B", K.Off di, K.Off dj))
                 (int_range (-2) 2) (int_range (-2) 2);
             ]
         in
         if size <= 1 then leaf
         else
           let sub = self (size / 2) in
           oneof
             [
               leaf;
               map2 (fun a b -> K.Add (a, b)) sub sub;
               map2 (fun a b -> K.Sub (a, b)) sub sub;
               map2 (fun a b -> K.Min (a, b)) sub sub;
               map2 (fun a b -> K.Max (a, b)) sub sub;
               map (fun a -> K.Abs a) sub;
               map (fun a -> K.Neg a) sub;
             ])

let gen_cond : K.cond QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      return K.Interior;
      map2
        (fun m c -> K.ICmp (K.Eq, K.IMod (K.IAdd (K.I, K.J), m), K.IConst c))
        (int_range 2 4) (int_range 0 1);
      map2 (fun a b -> K.FCmp (K.Lt, a, b)) (gen_expr |> map Fun.id) gen_expr;
    ]

let gen_stmt : K.stmt QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun e -> K.Assign ("A", K.Self, K.Self, e)) gen_expr;
      map3
        (fun c t f -> K.If (c, [ t ], [ f ]))
        gen_cond
        (map (fun e -> K.Assign ("A", K.Self, K.Self, e)) gen_expr)
        (map (fun e -> K.Assign ("A", K.Self, K.Self, e)) gen_expr);
      map3
        (fun c t _f -> K.If (c, [ t ], []))
        gen_cond
        (map (fun e -> K.Assign ("A", K.Self, K.Self, e)) gen_expr)
        (return ());
    ]

let gen_kernel : K.t QCheck.Gen.t =
  let open QCheck.Gen in
  map
    (fun stmts -> { K.name = "fuzz"; body = stmts })
    (list_size (int_range 1 4) gen_stmt)

let run_fuzz_kernel kernel (_, policy, strategy) =
  let n = 10 in
  let rt = mk_runtime policy strategy in
  let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
  let b = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Interleaved in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Agg.pokef a i j 0.0;
      Agg.pokef b i j (float_of_int (((i * 5) + (j * 11)) mod 13))
    done
  done;
  let apply =
    K.compile rt kernel { K.aggs = [ ("A", a); ("B", b) ]; reducers = [] } ~over:"A"
  in
  for iter = 0 to 1 do
    apply ~iter ()
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      out := Agg.peekf a i j :: !out
    done
  done;
  !out

let prop_fuzz_kernels_agree =
  QCheck.Test.make ~name:"random kernels agree across memory systems"
    ~count:40 (QCheck.make gen_kernel) (fun kernel ->
      match K.validate kernel with
      | Error _ -> true (* skip invalid generations *)
      | Ok () -> (
        match List.map (run_fuzz_kernel kernel) combos with
        | [ a; b; c ] -> a = b && b = c
        | _ -> false))

let per_combo f = List.map f combos

let () =
  Alcotest.run "lcm_kernel"
    [
      ( "analysis",
        [
          ("stencil", `Quick, test_analyze_stencil);
          ("map", `Quick, test_analyze_map);
          ("partial self", `Quick, test_analyze_partial);
          ("scatter write", `Quick, test_analyze_scatter_write);
          ("validate", `Quick, test_validate);
        ] );
      ( "execution",
        per_combo test_kernel_stencil_matches
        @ per_combo test_kernel_stencil_iterated
        @ per_combo test_kernel_map
        @ per_combo test_kernel_reduction
        @ [
            ("partial update / pre-copy", `Quick, test_kernel_partial_update);
            ("unbound agg", `Quick, test_kernel_unbound_agg);
            ("implicit marks fallback", `Quick, test_kernel_implicit_marks_catch_unmarked);
            ("pretty printing", `Quick, test_kernel_pp);
            QCheck_alcotest.to_alcotest prop_fuzz_kernels_agree;
          ] );
    ]
