(* Tests for words, blocks and the global address space. *)

open Lcm_mem

(* ------------------------------------------------------------------ *)
(* Word                                                               *)
(* ------------------------------------------------------------------ *)

let test_word_float_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0)) (string_of_float f) f
        (Word.to_float (Word.of_float f)))
    [ 0.0; 1.0; -1.0; 0.5; 1024.0; -3.25 ]

let test_word_float32_rounding () =
  (* 0.1 is not representable in float32: the roundtrip must be stable. *)
  let once = Word.to_float (Word.of_float 0.1) in
  let twice = Word.to_float (Word.of_float once) in
  Alcotest.(check (float 0.0)) "stable after one rounding" once twice;
  Alcotest.(check bool) "rounded" true (once <> 0.1)

let test_word_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (Word.to_int (Word.of_int n)))
    [ 0; 1; -1; 12345; -12345; 0x7FFFFFFF; -0x80000000 ]

let test_word_int_truncates () =
  Alcotest.(check int) "wraps to 32 bits" (-1) (Word.to_int (Word.of_int 0xFFFFFFFF))

let test_word_float_ops () =
  let a = Word.of_float 1.5 and b = Word.of_float 2.25 in
  Alcotest.(check (float 0.0)) "add" 3.75 (Word.to_float (Word.float_add a b));
  Alcotest.(check (float 0.0)) "min" 1.5 (Word.to_float (Word.float_min a b));
  Alcotest.(check (float 0.0)) "max" 2.25 (Word.to_float (Word.float_max a b))

let prop_word_float_roundtrip =
  QCheck.Test.make ~name:"float32 values roundtrip" ~count:500
    QCheck.(float_range (-1e6) 1e6)
    (fun f ->
      let f32 = Word.to_float (Word.of_float f) in
      Word.to_float (Word.of_float f32) = f32)

(* ------------------------------------------------------------------ *)
(* Block                                                              *)
(* ------------------------------------------------------------------ *)

let test_block_make_copy () =
  let b = Block.make ~words:8 in
  Alcotest.(check int) "zeroed" 0 b.(3);
  b.(3) <- 42;
  let c = Block.copy b in
  b.(3) <- 0;
  Alcotest.(check int) "copy is deep" 42 c.(3)

let test_block_blit_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Block.blit: length mismatch")
    (fun () -> Block.blit ~src:(Block.make ~words:4) ~dst:(Block.make ~words:8))

let test_block_merge_masked () =
  let src = [| 1; 2; 3; 4 |] and dst = [| 0; 0; 0; 0 |] in
  Block.merge_masked ~src ~dst ~mask:(Lcm_util.Mask.of_list [ 1; 3 ]);
  Alcotest.(check (array int)) "only masked words" [| 0; 2; 0; 4 |] dst

let test_block_combine_masked () =
  let src = [| 1; 2; 3; 4 |] and dst = [| 10; 10; 10; 10 |] in
  Block.combine_masked ~f:( + ) ~src ~dst ~mask:(Lcm_util.Mask.of_list [ 0; 2 ]);
  Alcotest.(check (array int)) "reduced" [| 11; 10; 13; 10 |] dst

let test_block_diff_mask () =
  let clean = [| 1; 2; 3; 4 |] and dirty = [| 1; 9; 3; 8 |] in
  Alcotest.(check (list int)) "diff" [ 1; 3 ]
    (Lcm_util.Mask.to_list (Block.diff_mask ~clean ~dirty))

let prop_block_merge_idempotent =
  let gen = QCheck.(pair (array_of_size (QCheck.Gen.return 8) small_int) (list (int_bound 7))) in
  QCheck.Test.make ~name:"masked merge idempotent" ~count:200 gen (fun (src, idxs) ->
      let mask = Lcm_util.Mask.of_list idxs in
      let d1 = Block.make ~words:8 and d2 = Block.make ~words:8 in
      Block.merge_masked ~src ~dst:d1 ~mask;
      Block.merge_masked ~src ~dst:d2 ~mask;
      Block.merge_masked ~src ~dst:d2 ~mask;
      d1 = d2)

let prop_block_diff_then_merge =
  (* Merging [dirty] into [clean] under diff_mask reconstructs [dirty]. *)
  let gen =
    QCheck.(
      pair (array_of_size (QCheck.Gen.return 8) small_int)
        (array_of_size (QCheck.Gen.return 8) small_int))
  in
  QCheck.Test.make ~name:"diff+merge reconstructs" ~count:200 gen (fun (clean, dirty) ->
      let mask = Block.diff_mask ~clean ~dirty in
      let out = Block.copy clean in
      Block.merge_masked ~src:dirty ~dst:out ~mask;
      out = dirty)

(* ------------------------------------------------------------------ *)
(* Gmem                                                               *)
(* ------------------------------------------------------------------ *)

let prop_block_disjoint_merges_commute =
  (* reconciliation must not depend on flush arrival order when the dirty
     masks are disjoint (C**'s conflict-free programs) *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 2 4)
          (pair (array_size (return 8) small_int) (list_size (int_range 0 4) (int_bound 7))))
  in
  QCheck.Test.make ~name:"disjoint masked merges commute" ~count:200 gen
    (fun flushes ->
      (* make masks disjoint by assigning each word to its last claimant *)
      let owner = Array.make 8 (-1) in
      List.iteri
        (fun fi (_, idxs) -> List.iter (fun w -> owner.(w) <- fi) idxs)
        flushes;
      let flushes =
        List.mapi
          (fun fi (data, idxs) ->
            let mask =
              Lcm_util.Mask.of_list (List.filter (fun w -> owner.(w) = fi) idxs)
            in
            (data, mask))
          flushes
      in
      let apply order =
        let shadow = Block.make ~words:8 in
        List.iter
          (fun (data, mask) -> Block.merge_masked ~src:data ~dst:shadow ~mask)
          order;
        Array.to_list shadow
      in
      apply flushes = apply (List.rev flushes))

let mk () = Gmem.create ~nnodes:4 ~words_per_block:8

let test_gmem_create_validation () =
  Alcotest.check_raises "nnodes" (Invalid_argument "Gmem.create: nnodes must be >= 1")
    (fun () -> ignore (Gmem.create ~nnodes:0 ~words_per_block:8));
  Alcotest.check_raises "wpb" (Invalid_argument "Gmem.create: invalid words_per_block")
    (fun () -> ignore (Gmem.create ~nnodes:2 ~words_per_block:0))

let test_gmem_alloc_alignment () =
  let g = mk () in
  let a1 = Gmem.alloc g ~dist:Gmem.Interleaved ~nwords:5 in
  let a2 = Gmem.alloc g ~dist:Gmem.Interleaved ~nwords:1 in
  Alcotest.(check int) "first at 0" 0 a1;
  Alcotest.(check int) "rounded to block" 8 a2;
  Alcotest.(check int) "allocated words" 16 (Gmem.allocated_words g)

let test_gmem_on_node () =
  let g = mk () in
  let a = Gmem.alloc g ~dist:(Gmem.On 2) ~nwords:32 in
  List.iter
    (fun b -> Alcotest.(check int) "home" 2 (Gmem.home_of_block g b))
    (Gmem.region_blocks g a ~nwords:32)

let test_gmem_on_node_range () =
  let g = mk () in
  Alcotest.check_raises "bad node" (Invalid_argument "Gmem.alloc: node out of range")
    (fun () -> ignore (Gmem.alloc g ~dist:(Gmem.On 4) ~nwords:8))

let test_gmem_interleaved () =
  let g = mk () in
  let a = Gmem.alloc g ~dist:Gmem.Interleaved ~nwords:(8 * 8) in
  let homes =
    List.map (fun b -> Gmem.home_of_block g b) (Gmem.region_blocks g a ~nwords:(8 * 8))
  in
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 3; 0; 1; 2; 3 ] homes

let test_gmem_chunked_even () =
  let g = mk () in
  let a = Gmem.alloc g ~dist:Gmem.Chunked ~nwords:(8 * 8) in
  let homes =
    List.map (fun b -> Gmem.home_of_block g b) (Gmem.region_blocks g a ~nwords:(8 * 8))
  in
  Alcotest.(check (list int)) "contiguous chunks" [ 0; 0; 1; 1; 2; 2; 3; 3 ] homes

let test_gmem_chunked_uneven () =
  let g = mk () in
  (* 5 blocks over 4 nodes: node 0 gets 2, the rest 1 each. *)
  let a = Gmem.alloc g ~dist:Gmem.Chunked ~nwords:(8 * 5) in
  let homes =
    List.map (fun b -> Gmem.home_of_block g b) (Gmem.region_blocks g a ~nwords:(8 * 5))
  in
  Alcotest.(check (list int)) "uneven chunks" [ 0; 0; 1; 2; 3 ] homes

let test_gmem_addr_math () =
  let g = mk () in
  let a = Gmem.alloc g ~dist:Gmem.Interleaved ~nwords:64 in
  Alcotest.(check int) "block_of_addr" 2 (Gmem.block_of_addr g (a + 16));
  Alcotest.(check int) "offset" 3 (Gmem.offset_in_block g (a + 19));
  Alcotest.(check int) "base" 16 (Gmem.base_of_block g 2)

let test_gmem_unallocated_home () =
  let g = mk () in
  let expects_invalid fn f =
    match f () with
    | (_ : int) -> Alcotest.failf "%s: expected Invalid_argument" fn
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (fn ^ " names the block") true
        (String.length msg > 0
        && String.contains msg '9'
        &&
        let rec mentions i =
          i + 1 < String.length msg
          && ((msg.[i] = '9' && msg.[i + 1] = '9') || mentions (i + 1))
        in
        mentions 0)
  in
  expects_invalid "home_of_block" (fun () -> Gmem.home_of_block g 99);
  expects_invalid "home_of_block_uncached" (fun () ->
      Gmem.home_of_block_uncached g 99);
  expects_invalid "region_of_block" (fun () ->
      (Gmem.region_of_block g 99).Gmem.first_block);
  (* negative block numbers are rejected the same way *)
  (match Gmem.region_of_block g (-1) with
  | _ -> Alcotest.fail "negative block: expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (* allocation extends the valid range *)
  ignore (Gmem.alloc g ~dist:Gmem.Interleaved ~nwords:8);
  Alcotest.(check int) "block 0 valid after alloc" 0 (Gmem.home_of_block g 0)

let test_gmem_mixed_regions () =
  (* three regions with different distributions coexist; each keeps its own
     home mapping and region_blocks stays within bounds *)
  let g = mk () in
  let a = Gmem.alloc g ~dist:(Gmem.On 3) ~nwords:16 in
  let b = Gmem.alloc g ~dist:Gmem.Interleaved ~nwords:32 in
  let c = Gmem.alloc g ~dist:Gmem.Chunked ~nwords:64 in
  Alcotest.(check int) "a home" 3 (Gmem.home_of_addr g a);
  Alcotest.(check int) "b second block home" 1 (Gmem.home_of_addr g (b + 8));
  Alcotest.(check int) "c last chunk home" 3 (Gmem.home_of_addr g (c + 63));
  Alcotest.(check int) "regions do not overlap" (a + 16) b;
  Alcotest.(check int) "and remain contiguous" (b + 32) c

let test_gmem_region_blocks_empty () =
  let g = mk () in
  let a = Gmem.alloc g ~dist:Gmem.Chunked ~nwords:8 in
  Alcotest.(check (list int)) "zero words" [] (Gmem.region_blocks g a ~nwords:0);
  Alcotest.(check int) "one block" 1 (List.length (Gmem.region_blocks g a ~nwords:1))

let test_gmem_alloc_zero_rejected () =
  let g = mk () in
  Alcotest.check_raises "zero" (Invalid_argument "Gmem.alloc: nwords must be positive")
    (fun () -> ignore (Gmem.alloc g ~dist:Gmem.Chunked ~nwords:0))

let prop_gmem_chunked_balanced =
  QCheck.Test.make ~name:"chunked distribution balanced" ~count:100
    QCheck.(pair (int_range 1 16) (int_range 1 200))
    (fun (nnodes, nblocks) ->
      let g = Gmem.create ~nnodes ~words_per_block:8 in
      let a = Gmem.alloc g ~dist:Gmem.Chunked ~nwords:(8 * nblocks) in
      let counts = Array.make nnodes 0 in
      List.iter
        (fun b ->
          let h = Gmem.home_of_block g b in
          counts.(h) <- counts.(h) + 1)
        (Gmem.region_blocks g a ~nwords:(8 * nblocks));
      let mn = Array.fold_left min max_int counts
      and mx = Array.fold_left max 0 counts in
      (* contiguity plus balance within one block *)
      mx - mn <= 1 || nblocks < nnodes)

let prop_gmem_homes_monotone_chunked =
  QCheck.Test.make ~name:"chunked homes non-decreasing" ~count:100
    QCheck.(pair (int_range 1 16) (int_range 1 100))
    (fun (nnodes, nblocks) ->
      let g = Gmem.create ~nnodes ~words_per_block:8 in
      let a = Gmem.alloc g ~dist:Gmem.Chunked ~nwords:(8 * nblocks) in
      let homes =
        List.map (fun b -> Gmem.home_of_block g b)
          (Gmem.region_blocks g a ~nwords:(8 * nblocks))
      in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | [ _ ] | [] -> true
      in
      non_decreasing homes)

(* The per-block home cache filled at alloc time must agree with the
   distribution formulas recomputed from the region table, across random
   multi-region layouts mixing all three distribution modes. *)
let prop_gmem_home_cache_consistent =
  let region_gen =
    QCheck.Gen.(
      pair (int_range 0 2) (int_range 1 40)
      (* (dist selector, nblocks); On-node id derived from nblocks *))
  in
  let gen = QCheck.make QCheck.Gen.(pair (int_range 1 16) (list_size (int_range 1 8) region_gen)) in
  QCheck.Test.make ~name:"gmem home cache ≡ uncached recompute" ~count:200 gen
    (fun (nnodes, regions) ->
      let g = Gmem.create ~nnodes ~words_per_block:8 in
      List.iter
        (fun (sel, nblocks) ->
          let dist =
            match sel with
            | 0 -> Gmem.On (nblocks mod nnodes)
            | 1 -> Gmem.Interleaved
            | _ -> Gmem.Chunked
          in
          ignore (Gmem.alloc g ~dist ~nwords:(8 * nblocks)))
        regions;
      let nblocks_total = Gmem.allocated_words g / 8 in
      let ok = ref true in
      for b = 0 to nblocks_total - 1 do
        if Gmem.home_of_block g b <> Gmem.home_of_block_uncached g b then
          ok := false
      done;
      !ok)

let () =
  Alcotest.run "lcm_mem"
    [
      ( "word",
        [
          ("float roundtrip", `Quick, test_word_float_roundtrip);
          ("float32 rounding", `Quick, test_word_float32_rounding);
          ("int roundtrip", `Quick, test_word_int_roundtrip);
          ("int truncates", `Quick, test_word_int_truncates);
          ("float ops", `Quick, test_word_float_ops);
          QCheck_alcotest.to_alcotest prop_word_float_roundtrip;
        ] );
      ( "block",
        [
          ("make/copy", `Quick, test_block_make_copy);
          ("blit mismatch", `Quick, test_block_blit_mismatch);
          ("merge masked", `Quick, test_block_merge_masked);
          ("combine masked", `Quick, test_block_combine_masked);
          ("diff mask", `Quick, test_block_diff_mask);
          QCheck_alcotest.to_alcotest prop_block_merge_idempotent;
          QCheck_alcotest.to_alcotest prop_block_diff_then_merge;
          QCheck_alcotest.to_alcotest prop_block_disjoint_merges_commute;
        ] );
      ( "gmem",
        [
          ("create validation", `Quick, test_gmem_create_validation);
          ("alloc alignment", `Quick, test_gmem_alloc_alignment);
          ("on-node", `Quick, test_gmem_on_node);
          ("on-node range", `Quick, test_gmem_on_node_range);
          ("interleaved", `Quick, test_gmem_interleaved);
          ("chunked even", `Quick, test_gmem_chunked_even);
          ("chunked uneven", `Quick, test_gmem_chunked_uneven);
          ("addr math", `Quick, test_gmem_addr_math);
          ("unallocated home", `Quick, test_gmem_unallocated_home);
          ("mixed regions", `Quick, test_gmem_mixed_regions);
          ("region_blocks edge cases", `Quick, test_gmem_region_blocks_empty);
          ("alloc zero rejected", `Quick, test_gmem_alloc_zero_rejected);
          QCheck_alcotest.to_alcotest prop_gmem_chunked_balanced;
          QCheck_alcotest.to_alcotest prop_gmem_homes_monotone_chunked;
          QCheck_alcotest.to_alcotest prop_gmem_home_cache_consistent;
        ] );
    ]
