(* Tests for the experiment harness: configuration, row bookkeeping, claim
   evaluation and report rendering. *)

open Lcm_harness
module Bench_result = Lcm_apps.Bench_result

let mk_result ?(cycles = 1000) ?(checksum = 1.0) name =
  Bench_result.make ~name ~cycles ~checksum ~stats:(Lcm_util.Stats.create ())

let row experiment system ?(cycles = 1000) ?(checksum = 1.0) () =
  {
    Experiments.experiment;
    system;
    result = mk_result ~cycles ~checksum (experiment ^ "/" ^ system);
  }

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_system_parse () =
  List.iter
    (fun (s, expected) ->
      match Config.system_of_string s with
      | Ok sys -> Alcotest.(check string) s expected sys.Config.label
      | Error e -> Alcotest.fail e)
    [
      ("stache", "Stache+copy");
      ("copy", "Stache+copy");
      ("scc", "LCM-scc");
      ("mcc", "LCM-mcc");
      ("LCM-MCC", "LCM-mcc");
      ("lcm", "LCM-mcc");
      ("update", "LCM-mcc-update");
      ("msi", "MSI");
      ("MESI", "MESI");
      ("moesi", "MOESI");
    ];
  (match Config.system_of_string "ring" with
  | Error e ->
    Alcotest.(check string) "error enumerates accepted spellings"
      "unknown system \"ring\" (expected one of: stache|stache+copy|copy, \
       lcm-scc|scc, lcm-mcc|mcc|lcm, lcm-mcc-update|mcc-update|update, msi, \
       mesi, moesi)"
      e
  | Ok _ -> Alcotest.fail "junk accepted")

let test_all_systems_follow_registry () =
  Alcotest.(check (list string)) "one system per registered policy"
    (List.map (fun (i : Lcm_core.Policy.info) -> i.Lcm_core.Policy.label)
       Lcm_core.Policy.all)
    (List.map (fun s -> s.Config.label) Config.all_systems);
  List.iter
    (fun s ->
      let expect_lcm = Lcm_core.Policy.is_lcm s.Config.policy in
      Alcotest.(check bool)
        (s.Config.label ^ " strategy follows family")
        expect_lcm
        (s.Config.strategy = Lcm_cstar.Runtime.Lcm_directives))
    Config.all_systems

let test_systems_order () =
  Alcotest.(check (list string)) "paper order"
    [ "LCM-scc"; "LCM-mcc"; "Stache+copy" ]
    (List.map (fun s -> s.Config.label) Config.systems)

let test_default_machine_is_cm5_shaped () =
  let m = Config.default_machine in
  Alcotest.(check int) "32 nodes" 32 m.Config.nnodes;
  Alcotest.(check int) "8-word blocks" 8 m.Config.words_per_block;
  Alcotest.(check bool) "fat tree" true
    (m.Config.topology = Lcm_net.Topology.Fat_tree { arity = 4 })

let test_make_runtime_wires_strategy () =
  let m = { Config.default_machine with Config.nnodes = 4 } in
  let rt = Config.make_runtime m Config.stache ~schedule:Lcm_cstar.Schedule.Static in
  Alcotest.(check bool) "explicit copy" true
    (Lcm_cstar.Runtime.strategy rt = Lcm_cstar.Runtime.Explicit_copy);
  let rt = Config.make_runtime m Config.lcm_scc ~schedule:Lcm_cstar.Schedule.Static in
  Alcotest.(check bool) "lcm" true
    (Lcm_cstar.Runtime.strategy rt = Lcm_cstar.Runtime.Lcm_directives)

(* ------------------------------------------------------------------ *)
(* Experiments bookkeeping                                             *)
(* ------------------------------------------------------------------ *)

let test_group_by_preserves_order () =
  let rows =
    [ row "b" "x" (); row "a" "x" (); row "b" "y" (); row "a" "y" () ]
  in
  let groups = Experiments.group_by_experiment rows in
  Alcotest.(check (list string)) "first-appearance order" [ "b"; "a" ]
    (List.map fst groups);
  Alcotest.(check int) "b has 2 rows" 2 (List.length (List.assoc "b" groups))

let test_agreement_detects_mismatch () =
  let rows =
    [
      row "good" "s1" ~checksum:5.0 ();
      row "good" "s2" ~checksum:5.0 ();
      row "bad" "s1" ~checksum:5.0 ();
      row "bad" "s2" ~checksum:9.0 ();
    ]
  in
  let checks = Experiments.verify_agreement rows in
  Alcotest.(check bool) "good agrees" true (List.assoc "good" checks);
  Alcotest.(check bool) "bad flagged" false (List.assoc "bad" checks);
  Alcotest.(check bool) "all_agree false" false (Report.all_agree rows)

let synthetic_rows =
  (* cycles chosen so every §6.3 claim direction holds *)
  [
    row "stencil-stat" "Stache+copy" ~cycles:100 ();
    row "stencil-stat" "LCM-mcc" ~cycles:500 ();
    row "stencil-stat" "LCM-scc" ~cycles:2000 ();
    row "stencil-dyn" "Stache+copy" ~cycles:1000 ();
    row "stencil-dyn" "LCM-mcc" ~cycles:980 ();
    row "stencil-dyn" "LCM-scc" ~cycles:2500 ();
    row "adaptive-stat" "Stache+copy" ~cycles:1000 ();
    row "adaptive-stat" "LCM-mcc" ~cycles:1130 ();
    row "adaptive-stat" "LCM-scc" ~cycles:1120 ();
    row "adaptive-dyn" "Stache+copy" ~cycles:1900 ();
    row "adaptive-dyn" "LCM-mcc" ~cycles:1000 ();
    row "adaptive-dyn" "LCM-scc" ~cycles:1010 ();
    row "threshold" "Stache+copy" ~cycles:1970 ();
    row "threshold" "LCM-mcc" ~cycles:1000 ();
    row "threshold" "LCM-scc" ~cycles:1130 ();
    row "unstructured" "Stache+copy" ~cycles:1250 ();
    row "unstructured" "LCM-mcc" ~cycles:1000 ();
    row "unstructured" "LCM-scc" ~cycles:1080 ();
  ]

let test_claims_all_hold_on_paper_numbers () =
  let cs = Experiments.claims synthetic_rows in
  Alcotest.(check int) "nine claims" 9 (List.length cs);
  List.iter
    (fun (c : Experiments.claim) ->
      Alcotest.(check bool) c.Experiments.id true c.Experiments.holds)
    cs

let test_claims_detect_inversion () =
  (* make Stache lose stencil-stat: the first claim must fail *)
  let rows =
    List.map
      (fun (r : Experiments.row) ->
        if r.experiment = "stencil-stat" && r.system = "Stache+copy" then
          row "stencil-stat" "Stache+copy" ~cycles:99999 ()
        else r)
      synthetic_rows
  in
  let c = List.hd (Experiments.claims rows) in
  Alcotest.(check bool) "inverted claim fails" false c.Experiments.holds

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_execution_times_render () =
  let out = Report.execution_times ~title:"T" synthetic_rows in
  Alcotest.(check bool) "has title" true (contains out "== T ==");
  Alcotest.(check bool) "has slowdown column" true (contains out "slowdown");
  Alcotest.(check bool) "fastest is 1.00x" true (contains out "1.00x")

let test_table1_render () =
  let out = Report.table1 synthetic_rows in
  Alcotest.(check bool) "kilo formatting" true (contains out "misses")

let test_claims_render () =
  let out = Report.claims (Experiments.claims synthetic_rows) in
  Alcotest.(check bool) "verdict column" true (contains out "HOLDS")

let test_csv_export () =
  let out = Report.to_csv (List.filteri (fun i _ -> i < 2) synthetic_rows) in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check bool) "header" true
    (contains (List.hd lines) "experiment,system,cycles");
  Alcotest.(check bool) "row content" true
    (contains out "stencil-stat,Stache+copy,100")

(* ------------------------------------------------------------------ *)
(* End-to-end (tiny machine)                                           *)
(* ------------------------------------------------------------------ *)

let test_bench_result_close () =
  let a = mk_result ~checksum:100.0 "a" and b = mk_result ~checksum:100.000001 "b" in
  Alcotest.(check bool) "close" true (Bench_result.close a b);
  let c = mk_result ~checksum:101.0 "c" in
  Alcotest.(check bool) "not close" false (Bench_result.close a c)

let test_figure2_pipeline_tiny () =
  (* the exact bench pipeline at tiny scale: rows complete, systems agree,
     claims computable, CSV renders *)
  let machine = { Config.default_machine with Config.nnodes = 8 } in
  let rows = Experiments.figure2 ~scale:Experiments.Tiny machine in
  Alcotest.(check int) "6 rows" 6 (List.length rows);
  Alcotest.(check bool) "systems agree" true (Report.all_agree rows);
  let csv = Report.to_csv rows in
  Alcotest.(check int) "csv lines" 7
    (List.length (String.split_on_char '\n' (String.trim csv)))

let test_figure3_pipeline_tiny () =
  let machine = { Config.default_machine with Config.nnodes = 8 } in
  let rows = Experiments.figure3 ~scale:Experiments.Tiny machine in
  Alcotest.(check int) "12 rows" 12 (List.length rows);
  Alcotest.(check bool) "systems agree" true (Report.all_agree rows);
  (* all nine claims are computable over figure2+figure3 rows *)
  let all = Experiments.figure2 ~scale:Experiments.Tiny machine @ rows in
  List.iter
    (fun (c : Experiments.claim) ->
      Alcotest.(check bool) (c.Experiments.id ^ " finite") true
        (Float.is_finite c.Experiments.measured))
    (Experiments.claims all)

let test_runs_are_bit_deterministic () =
  (* identical config => identical simulated time, identical counters *)
  let run () =
    let m = { Config.default_machine with Config.nnodes = 8 } in
    let rt =
      Config.make_runtime m Config.lcm_mcc
        ~schedule:(Lcm_cstar.Schedule.Dynamic_random 9)
    in
    Lcm_apps.Stencil.run rt { Lcm_apps.Stencil.n = 32; iters = 3; work_per_cell = 4 }
  in
  let a = run () and b = run () in
  Alcotest.(check int) "cycles identical" a.Bench_result.cycles b.Bench_result.cycles;
  Alcotest.(check (float 0.0)) "checksums identical" a.Bench_result.checksum
    b.Bench_result.checksum;
  List.iter2
    (fun (ka, va) (kb, vb) ->
      Alcotest.(check string) "counter name" ka kb;
      Alcotest.(check int) ("counter " ^ ka) va vb)
    a.Bench_result.counters b.Bench_result.counters

let test_ablation_barrier_shapes () =
  (* flat must cost at least as much as tree at the larger machine *)
  let rows = Experiments.ablation_barrier { Config.default_machine with Config.nnodes = 32 } in
  let find exp sys =
    (List.find
       (fun (r : Experiments.row) -> r.experiment = exp && r.system = sys)
       rows)
      .result
      .Bench_result.cycles
  in
  Alcotest.(check bool) "tree <= flat at P=128" true
    (find "stencil P=128" "barrier tree:4" <= find "stencil P=128" "barrier flat")

(* ------------------------------------------------------------------ *)
(* Traceview: Chrome trace export and the mini JSON reader             *)
(* ------------------------------------------------------------------ *)

module Trace = Lcm_sim.Trace

let traced_stencil_events () =
  let rt =
    Config.make_runtime
      { Config.default_machine with Config.nnodes = 4 }
      Config.lcm_mcc ~schedule:Lcm_cstar.Schedule.Static
  in
  Lcm_tempest.Machine.enable_trace ~capacity:65536
    (Lcm_cstar.Runtime.machine rt);
  ignore
    (Lcm_apps.Stencil.run rt { Lcm_apps.Stencil.n = 12; iters = 2; work_per_cell = 2 });
  Lcm_tempest.Machine.trace_events (Lcm_cstar.Runtime.machine rt)

let test_trace_export_valid () =
  let events = traced_stencil_events () in
  Alcotest.(check bool) "events captured" true (events <> []);
  let json = Traceview.to_chrome_json events in
  match Traceview.validate_chrome json with
  | Ok n -> Alcotest.(check int) "all events exported" (List.length events) n
  | Error e -> Alcotest.fail ("export did not validate: " ^ e)

let test_trace_export_contents () =
  let json = Traceview.to_chrome_json (traced_stencil_events ()) in
  let has sub =
    let nl = String.length sub and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "message events" true (has "\"name\":\"send ");
  Alcotest.(check bool) "fault events" true (has "\"name\":\"read fault\"");
  Alcotest.(check bool) "barrier events" true (has "\"name\":\"barrier release\"");
  Alcotest.(check bool) "handler slices" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "epoch counter" true (has "\"ph\":\"C\"")

let test_trace_export_sorted_and_escaped () =
  (* Emission order is not time order; strings need escaping. *)
  let events =
    [
      (20, Trace.Barrier_release { nnodes = 2 });
      (5, Trace.Note "quote \" and backslash \\ and\nnewline");
      (20, Trace.Epoch_advance { epoch = 1 });
    ]
  in
  let json = Traceview.to_chrome_json events in
  match Traceview.validate_chrome json with
  | Ok n -> Alcotest.(check int) "3 events, monotone after sort" 3 n
  | Error e -> Alcotest.fail e

let test_json_parser () =
  (match Traceview.parse "{\"a\": [1, 2.5, \"x\\n\"], \"b\": {\"c\": true, \"d\": null}}" with
  | Ok doc -> (
    match Traceview.member "a" doc with
    | Some (Traceview.Arr [ Traceview.Num 1.0; Traceview.Num 2.5; Traceview.Str "x\n" ]) -> ()
    | _ -> Alcotest.fail "array member mis-parsed")
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Traceview.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" bad))
    [ ""; "{"; "{\"a\":}"; "[1, ]"; "tru"; "{\"a\":1} garbage"; "\"unterminated" ]

let test_validate_rejects_non_traces () =
  List.iter
    (fun (text, why) ->
      match Traceview.validate_chrome text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted " ^ why))
    [
      ("not json", "garbage");
      ("{}", "missing traceEvents");
      ("{\"traceEvents\":[]}", "empty traceEvents");
      ("{\"traceEvents\":[{\"name\":\"a\"}]}", "event without ph/ts");
      ( "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"i\",\"ts\":5},{\"name\":\"b\",\"ph\":\"i\",\"ts\":1}]}",
        "non-monotone timestamps" );
    ]

let test_phase_log_deltas () =
  let rt =
    Config.make_runtime
      { Config.default_machine with Config.nnodes = 4 }
      Config.lcm_mcc ~schedule:Lcm_cstar.Schedule.Static
  in
  Lcm_cstar.Runtime.enable_phase_log rt;
  ignore
    (Lcm_apps.Stencil.run rt { Lcm_apps.Stencil.n = 12; iters = 3; work_per_cell = 2 });
  let rows = Phases.of_log (Lcm_cstar.Runtime.phase_log rt) in
  Alcotest.(check bool) "one row per parallel call" true (List.length rows >= 3);
  List.iter
    (fun (r : Phases.row) ->
      Alcotest.(check bool) "positive phase duration" true (r.Phases.cycles > 0);
      Alcotest.(check bool) "non-negative deltas" true
        (List.for_all (fun (_, d) -> d >= 0) r.Phases.deltas))
    rows;
  let labels = List.map (fun (r : Phases.row) -> r.Phases.label) rows in
  Alcotest.(check bool) "labels numbered from 1" true
    (List.mem "parallel#1" labels);
  let table = Phases.render rows in
  Alcotest.(check bool) "render has header" true
    (String.length table > 0
    && List.exists
         (fun l ->
           String.length l > 0 && String.sub l 0 1 = "|"
           &&
           let has sub =
             let nl = String.length sub and hl = String.length l in
             let rec go i = i + nl <= hl && (String.sub l i nl = sub || go (i + 1)) in
             go 0
           in
           has "phase" && has "barrier wait")
         (String.split_on_char '\n' table))

let () =
  Alcotest.run "lcm_harness"
    [
      ( "config",
        [
          ("system parse", `Quick, test_system_parse);
          ("all systems follow registry", `Quick, test_all_systems_follow_registry);
          ("systems order", `Quick, test_systems_order);
          ("default machine", `Quick, test_default_machine_is_cm5_shaped);
          ("runtime wiring", `Quick, test_make_runtime_wires_strategy);
        ] );
      ( "experiments",
        [
          ("group_by order", `Quick, test_group_by_preserves_order);
          ("agreement mismatch", `Quick, test_agreement_detects_mismatch);
          ("claims hold on paper numbers", `Quick, test_claims_all_hold_on_paper_numbers);
          ("claims detect inversion", `Quick, test_claims_detect_inversion);
        ] );
      ( "report",
        [
          ("execution times", `Quick, test_execution_times_render);
          ("table1", `Quick, test_table1_render);
          ("claims", `Quick, test_claims_render);
          ("csv", `Quick, test_csv_export);
          ("bench_result close", `Quick, test_bench_result_close);
        ] );
      ( "traceview",
        [
          ("export validates", `Quick, test_trace_export_valid);
          ("export contents", `Quick, test_trace_export_contents);
          ("sorting and escaping", `Quick, test_trace_export_sorted_and_escaped);
          ("json parser", `Quick, test_json_parser);
          ("validator rejects", `Quick, test_validate_rejects_non_traces);
        ] );
      ( "phases",
        [ ("phase log deltas", `Quick, test_phase_log_deltas) ] );
      ( "end-to-end",
        [
          ("barrier ablation shape", `Slow, test_ablation_barrier_shapes);
          ("bit determinism", `Quick, test_runs_are_bit_deterministic);
          ("figure 2 pipeline (tiny)", `Slow, test_figure2_pipeline_tiny);
          ("figure 3 pipeline (tiny)", `Slow, test_figure3_pipeline_tiny);
        ] );
    ]
