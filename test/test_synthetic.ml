(* Tests for the synthetic workload generator: determinism, cross-protocol
   agreement, and the expected traffic gradient across sharing patterns. *)

open Lcm_apps
open Lcm_cstar
module Policy = Lcm_core.Policy
module Machine = Lcm_tempest.Machine

let mk ?(nnodes = 8) ?(schedule = Schedule.Static) policy strategy =
  let m =
    Machine.create ~nnodes ~words_per_block:8
      ~topology:(Lcm_net.Topology.Fat_tree { arity = 4 })
      ()
  in
  let p = Lcm_core.Proto.install ~policy m in
  Runtime.create p ~strategy ~schedule ()

let combos =
  [
    ("stache", Policy.stache, Runtime.Explicit_copy);
    ("scc", Policy.lcm_scc, Runtime.Lcm_directives);
    ("mcc", Policy.lcm_mcc, Runtime.Lcm_directives);
  ]

let params sharing = { Synthetic.default with Synthetic.sharing }

let test_parse () =
  Alcotest.(check bool) "private" true
    (Synthetic.sharing_of_string "private" = Ok `Private);
  Alcotest.(check bool) "neighbour" true
    (Synthetic.sharing_of_string "neighbor" = Ok `Neighbour);
  Alcotest.(check bool) "hot" true (Synthetic.sharing_of_string "hot:4" = Ok (`Hot 4));
  Alcotest.(check bool) "roundtrip" true
    (Synthetic.sharing_of_string (Synthetic.sharing_to_string `Random) = Ok `Random);
  Alcotest.(check bool) "junk" true
    (match Synthetic.sharing_of_string "all" with Error _ -> true | Ok _ -> false)

let test_deterministic () =
  let run () =
    let rt = mk Policy.lcm_mcc Runtime.Lcm_directives in
    (Synthetic.run rt (params `Random)).Bench_result.checksum
  in
  Alcotest.(check (float 0.0)) "same checksum" (run ()) (run ())

let test_protocols_agree sharing =
  let results =
    List.map
      (fun (_, policy, strategy) ->
        let rt = mk policy strategy in
        (Synthetic.run rt (params sharing)).Bench_result.checksum)
      combos
  in
  match results with
  | [ a; b; c ] ->
    Alcotest.(check (float 0.0)) "stache = scc" a b;
    Alcotest.(check (float 0.0)) "scc = mcc" b c
  | _ -> assert false

let test_protocols_agree_all_patterns () =
  List.iter test_protocols_agree [ `Private; `Neighbour; `Random; `Hot 2 ]

let test_protocols_agree_dynamic () =
  let run (_, policy, strategy) =
    let rt = mk ~schedule:(Schedule.Dynamic_random 3) policy strategy in
    (Synthetic.run rt (params `Random)).Bench_result.checksum
  in
  match List.map run combos with
  | [ a; b; c ] ->
    Alcotest.(check (float 0.0)) "stache = scc" a b;
    Alcotest.(check (float 0.0)) "scc = mcc" b c
  | _ -> assert false

let test_sharing_gradient () =
  (* remote traffic: private reads stay local under static scheduling, so
     the shared patterns must fetch strictly more (neighbour vs random
     converge once reads saturate the block space, so only private is
     ordered against both) *)
  let fetches sharing =
    let rt = mk Policy.lcm_mcc Runtime.Lcm_directives in
    (Synthetic.run rt (params sharing)).Bench_result.remote_fetches
  in
  let priv = fetches `Private
  and neigh = fetches `Neighbour
  and rand = fetches `Random in
  Alcotest.(check bool)
    (Printf.sprintf "private %d < neighbour %d" priv neigh)
    true (priv < neigh);
  Alcotest.(check bool)
    (Printf.sprintf "private %d < random %d" priv rand)
    true (priv < rand)

let test_invariants_after_run () =
  List.iter
    (fun (name, policy, strategy) ->
      let m =
        Machine.create ~nnodes:8 ~words_per_block:8
          ~topology:Lcm_net.Topology.Crossbar ()
      in
      let p = Lcm_core.Proto.install ~policy m in
      let rt = Runtime.create p ~strategy ~schedule:Schedule.Static () in
      ignore (Synthetic.run rt (params `Random));
      match Lcm_core.Proto.check_invariants p with
      | Ok () -> ()
      | Error es ->
        Alcotest.failf "%s: invariants violated: %s" name (String.concat "; " es))
    combos

let test_bad_read_fraction () =
  let rt = mk Policy.lcm_mcc Runtime.Lcm_directives in
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Synthetic.run rt { Synthetic.default with Synthetic.read_fraction = 1.5 });
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "lcm_synthetic"
    [
      ( "synthetic",
        [
          ("parse", `Quick, test_parse);
          ("deterministic", `Quick, test_deterministic);
          ("protocols agree (all patterns)", `Slow, test_protocols_agree_all_patterns);
          ("protocols agree (dynamic)", `Slow, test_protocols_agree_dynamic);
          ("sharing gradient", `Slow, test_sharing_gradient);
          ("invariants after run", `Slow, test_invariants_after_run);
          ("bad read fraction", `Quick, test_bad_read_fraction);
        ] );
    ]
