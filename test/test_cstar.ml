(* Tests for the C** runtime: scheduling, aggregates, reducers, and the
   semantics of parallel application under every strategy/protocol combo. *)

open Lcm_cstar
module Proto = Lcm_core.Proto
module Policy = Lcm_core.Policy
module Reduction = Lcm_core.Reduction
module Machine = Lcm_tempest.Machine
module Gmem = Lcm_mem.Gmem
module Word = Lcm_mem.Word

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)
(* ------------------------------------------------------------------ *)

let test_chunks_balanced () =
  let ranges = Schedule.chunks ~n:10 ~nchunks:4 in
  Alcotest.(check (list (pair int int)))
    "ranges"
    [ (0, 3); (3, 6); (6, 8); (8, 10) ]
    (Array.to_list ranges)

let test_chunks_more_chunks_than_work () =
  let ranges = Schedule.chunks ~n:2 ~nchunks:4 in
  Alcotest.(check (list (pair int int)))
    "empty tails"
    [ (0, 1); (1, 2); (2, 2); (2, 2) ]
    (Array.to_list ranges)

let test_static_assignment_stable () =
  let a1 = Schedule.assign Schedule.Static ~iter:0 ~nnodes:4 ~nchunks:4 in
  let a2 = Schedule.assign Schedule.Static ~iter:9 ~nnodes:4 ~nchunks:4 in
  Alcotest.(check (list int)) "same every iter" (Array.to_list a1) (Array.to_list a2);
  Alcotest.(check (list int)) "identity" [ 0; 1; 2; 3 ] (Array.to_list a1)

let test_rotate_assignment_moves () =
  let a0 = Schedule.assign Schedule.Dynamic_rotate ~iter:0 ~nnodes:4 ~nchunks:4 in
  let a1 = Schedule.assign Schedule.Dynamic_rotate ~iter:1 ~nnodes:4 ~nchunks:4 in
  Alcotest.(check (list int)) "iter0" [ 0; 1; 2; 3 ] (Array.to_list a0);
  Alcotest.(check (list int)) "iter1 shifted" [ 1; 2; 3; 0 ] (Array.to_list a1)

let test_random_assignment_is_permutation () =
  for iter = 0 to 5 do
    let a = Schedule.assign (Schedule.Dynamic_random 7) ~iter ~nnodes:8 ~nchunks:8 in
    let sorted = List.sort compare (Array.to_list a) in
    Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4; 5; 6; 7 ] sorted
  done

let test_random_assignment_deterministic () =
  let a = Schedule.assign (Schedule.Dynamic_random 7) ~iter:3 ~nnodes:8 ~nchunks:8 in
  let b = Schedule.assign (Schedule.Dynamic_random 7) ~iter:3 ~nnodes:8 ~nchunks:8 in
  Alcotest.(check (list int)) "same" (Array.to_list a) (Array.to_list b)

let prop_chunks_partition =
  QCheck.Test.make ~name:"chunks cover the index space disjointly" ~count:200
    QCheck.(pair (int_bound 200) (int_range 1 17))
    (fun (n, nchunks) ->
      let ranges = Schedule.chunks ~n ~nchunks in
      let covered = Array.make (max 1 n) 0 in
      Array.iter
        (fun (lo, hi) ->
          for i = lo to hi - 1 do
            covered.(i) <- covered.(i) + 1
          done)
        ranges;
      Array.length ranges = nchunks
      && Array.for_all (fun c -> c = 1) (Array.sub covered 0 n)
      && Array.for_all (fun (lo, hi) -> lo <= hi) ranges)

let prop_assign_in_range =
  QCheck.Test.make ~name:"assignments land on valid nodes" ~count:200
    QCheck.(triple (int_range 1 16) (int_range 1 40) (int_bound 50))
    (fun (nnodes, nchunks, iter) ->
      List.for_all
        (fun sched ->
          Array.for_all
            (fun node -> node >= 0 && node < nnodes)
            (Schedule.assign sched ~iter ~nnodes ~nchunks))
        [ Schedule.Static; Schedule.Dynamic_rotate; Schedule.Dynamic_random 3 ])

let test_schedule_parse () =
  Alcotest.(check bool) "static" true (Schedule.of_string "static" = Ok Schedule.Static);
  Alcotest.(check bool) "rotate" true
    (Schedule.of_string "rotate" = Ok Schedule.Dynamic_rotate);
  Alcotest.(check bool) "random" true
    (Schedule.of_string "random:5" = Ok (Schedule.Dynamic_random 5));
  Alcotest.(check bool) "bad" true
    (match Schedule.of_string "work-steal" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let mk_runtime ?(nnodes = 4) ?(schedule = Schedule.Static) policy strategy =
  let m =
    Machine.create ~nnodes ~words_per_block:8 ~topology:Lcm_net.Topology.Crossbar ()
  in
  let p = Proto.install ~policy m in
  Runtime.create p ~strategy ~schedule ()

(* every (policy, strategy) combination used by the experiments *)
let combos =
  [
    ("stache+copy", Policy.stache, Runtime.Explicit_copy);
    ("scc+lcm", Policy.lcm_scc, Runtime.Lcm_directives);
    ("mcc+lcm", Policy.lcm_mcc, Runtime.Lcm_directives);
  ]

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let test_agg_poke_peek () =
  let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
  let a = Runtime.alloc2d rt ~rows:4 ~cols:6 ~dist:Gmem.Chunked in
  Agg.poke a 2 3 42;
  Alcotest.(check int) "peek" 42 (Agg.peek a 2 3);
  Agg.pokef a 1 1 2.5;
  Alcotest.(check (float 0.0)) "float" 2.5 (Agg.peekf a 1 1)

let test_agg_bounds () =
  let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
  let a = Runtime.alloc2d rt ~rows:4 ~cols:4 ~dist:Gmem.Chunked in
  Alcotest.(check bool) "oob" true
    (try
       ignore (Agg.peek a 4 0);
       false
     with Invalid_argument _ -> true)

let test_agg_double_buffer_swap () =
  let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
  let a = Runtime.alloc2d rt ~rows:1 ~cols:8 ~dist:Gmem.Chunked in
  Agg.poke a 0 0 1;
  Alcotest.(check bool) "distinct buffers" true
    (Agg.read_addr a 0 0 <> Agg.write_addr a 0 0);
  Runtime.sequential rt (fun () -> Agg.set a 0 0 99);
  (* the write went to the back buffer: front still has 1 *)
  Alcotest.(check int) "front unchanged" 1 (Agg.peek a 0 0);
  Agg.swap a;
  Alcotest.(check int) "back visible after swap" 99 (Agg.peek a 0 0)

let test_agg_lcm_single_buffer () =
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let a = Runtime.alloc2d rt ~rows:1 ~cols:8 ~dist:Gmem.Chunked in
  Alcotest.(check bool) "same buffer" true
    (Agg.read_addr a 0 0 = Agg.write_addr a 0 0);
  Agg.poke a 0 0 5;
  Agg.swap a;
  Alcotest.(check int) "swap no-op" 5 (Agg.peek a 0 0)

let test_agg_to_matrix () =
  let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
  let a = Runtime.alloc2d rt ~rows:2 ~cols:2 ~dist:Gmem.Chunked in
  Agg.pokef a 0 0 1.0;
  Agg.pokef a 1 1 4.0;
  let m = Agg.to_matrix a in
  Alcotest.(check (float 0.0)) "corner" 4.0 m.(1).(1);
  Alcotest.(check (float 0.0)) "other" 1.0 m.(0).(0)

(* ------------------------------------------------------------------ *)
(* parallel_apply semantics                                            *)
(* ------------------------------------------------------------------ *)

(* Square every element; compare against the sequential spec. *)
let test_parallel_square (name, policy, strategy) =
  ( Printf.sprintf "square elements (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let n = 40 in
      let a = Runtime.alloc1d rt ~n ~dist:Gmem.Chunked in
      for j = 0 to n - 1 do
        Agg.poke a 0 j (j + 1)
      done;
      Runtime.parallel_apply rt ~n (fun ctx ->
          let j = ctx.Ctx.index in
          Agg.set1 a j (Agg.get1 a j * Agg.get1 a j));
      Agg.swap a;
      for j = 0 to n - 1 do
        Alcotest.(check int) (Printf.sprintf "elem %d" j) ((j + 1) * (j + 1))
          (Agg.peek a 0 j)
      done )

(* The C** stencil semantics: every invocation reads neighbours and writes
   its own cell; all reads must observe the PHASE-START state.  A blocked
   sequential in-place update would differ; the runtime must match the
   two-array spec. *)
let stencil_spec grid =
  let n = Array.length grid in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = 0 || j = 0 || i = n - 1 || j = n - 1 then grid.(i).(j)
          else
            0.25 *. (grid.(i - 1).(j) +. grid.(i + 1).(j) +. grid.(i).(j - 1) +. grid.(i).(j + 1))))

let test_parallel_stencil_semantics (name, policy, strategy) =
  ( Printf.sprintf "stencil semantics (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let n = 12 in
      let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Gmem.Chunked in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Agg.pokef a i j (float_of_int (((i * 7) + (j * 3)) mod 11))
        done
      done;
      let before = Agg.to_matrix a in
      Runtime.parallel_apply_2d rt ~rows:n ~cols:n (fun _ctx i j ->
          if i > 0 && j > 0 && i < n - 1 && j < n - 1 then
            Agg.setf a i j
              (0.25
              *. (Agg.getf a (i - 1) j +. Agg.getf a (i + 1) j +. Agg.getf a i (j - 1)
                 +. Agg.getf a i (j + 1)))
          else Agg.setf a i j (Agg.getf a i j));
      Agg.swap a;
      let expected = stencil_spec before in
      let got = Agg.to_matrix a in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          (* float32 arithmetic in the simulated memory vs float64 spec *)
          Alcotest.(check (float 1e-4))
            (Printf.sprintf "(%d,%d)" i j)
            expected.(i).(j) got.(i).(j)
        done
      done )

(* Dynamic scheduling must not change results. *)
let test_dynamic_schedule_same_result (name, policy, strategy) =
  ( Printf.sprintf "dynamic = static result (%s)" name,
    `Quick,
    fun () ->
      let run schedule =
        let rt = mk_runtime ~schedule policy strategy in
        let n = 16 in
        let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Gmem.Chunked in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            Agg.pokef a i j (float_of_int ((i + j) mod 5))
          done
        done;
        for iter = 0 to 2 do
          Runtime.parallel_apply_2d rt ~iter ~rows:n ~cols:n (fun _ctx i j ->
              if i > 0 && j > 0 && i < n - 1 && j < n - 1 then
                Agg.setf a i j
                  (0.25
                  *. (Agg.getf a (i - 1) j +. Agg.getf a (i + 1) j
                     +. Agg.getf a i (j - 1) +. Agg.getf a i (j + 1)))
              else Agg.setf a i j (Agg.getf a i j));
          Agg.swap a
        done;
        Agg.to_matrix a
      in
      let st = run Schedule.Static in
      let dyn = run (Schedule.Dynamic_random 3) in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j v ->
              Alcotest.(check (float 0.0)) (Printf.sprintf "(%d,%d)" i j) v dyn.(i).(j))
            row)
        st )

let test_reducer_sum (name, policy, strategy) =
  ( Printf.sprintf "reducer sum (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let n = 32 in
      let a = Runtime.alloc1d rt ~n ~dist:Gmem.Chunked in
      for j = 0 to n - 1 do
        Agg.poke a 0 j (j + 1)
      done;
      let total = Runtime.reducer rt ~op:Reduction.int_sum ~init:0 in
      Runtime.parallel_apply rt ~reducers:[ total ] ~n (fun ctx ->
          Reducer.add ctx total (Agg.get1 a ctx.Ctx.index));
      Alcotest.(check int) "sum 1..32" (n * (n + 1) / 2) (Reducer.read total) )

let test_reducer_max (name, policy, strategy) =
  ( Printf.sprintf "reducer max (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let n = 20 in
      let a = Runtime.alloc1d rt ~n ~dist:Gmem.Chunked in
      for j = 0 to n - 1 do
        Agg.poke a 0 j ((j * 13) mod 17)
      done;
      let best = Runtime.reducer rt ~op:Reduction.int_max ~init:(-1) in
      Runtime.parallel_apply rt ~reducers:[ best ] ~n (fun ctx ->
          Reducer.add ctx best (Agg.get1 a ctx.Ctx.index));
      Alcotest.(check int) "max" 16 (Reducer.read best) )

let test_reducer_float_sum (name, policy, strategy) =
  ( Printf.sprintf "reducer f32 sum (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let n = 16 in
      let total = Runtime.reducer rt ~op:Reduction.f32_sum ~init:0 in
      Runtime.parallel_apply rt ~reducers:[ total ] ~n (fun ctx ->
          Reducer.addf ctx total (0.5 *. float_of_int (ctx.Ctx.index + 1)));
      Alcotest.(check (float 1e-4)) "sum" (0.5 *. 136.0) (Reducer.readf total) )

let test_reducer_across_calls (name, policy, strategy) =
  ( Printf.sprintf "reducer across calls (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let total = Runtime.reducer rt ~op:Reduction.int_sum ~init:100 in
      for _ = 1 to 3 do
        Runtime.parallel_apply rt ~reducers:[ total ] ~n:8 (fun ctx ->
            Reducer.add ctx total ctx.Ctx.index)
      done;
      (* 100 + 3 * (0+..+7) *)
      Alcotest.(check int) "accumulated" (100 + (3 * 28)) (Reducer.read total) )

let test_sequential_phase (name, policy, strategy) =
  ( Printf.sprintf "sequential phase (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let a = Runtime.alloc1d rt ~n:8 ~dist:Gmem.Chunked in
      Runtime.sequential rt (fun () ->
          for j = 0 to 7 do
            Agg.set1 a j (j * j)
          done);
      Agg.swap a;
      Alcotest.(check int) "written" 49 (Agg.peek a 0 7);
      (* clocks synchronised *)
      let m = Runtime.machine rt in
      let c0 = Machine.clock (Machine.node m 0) in
      for i = 1 to Machine.nnodes m - 1 do
        Alcotest.(check int) "clock sync" c0 (Machine.clock (Machine.node m i))
      done )

let test_phase_advances_time (name, policy, strategy) =
  ( Printf.sprintf "phase advances time (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let a = Runtime.alloc1d rt ~n:16 ~dist:Gmem.Chunked in
      let t0 = Runtime.elapsed rt in
      Runtime.parallel_apply rt ~n:16 (fun ctx -> Agg.set1 a ctx.Ctx.index 1);
      Alcotest.(check bool) "time advanced" true (Runtime.elapsed rt > t0);
      Alcotest.(check int) "stat calls" 1
        (Lcm_util.Stats.get (Runtime.stats rt) "cstar.parallel_calls");
      Alcotest.(check int) "stat invocations" 16
        (Lcm_util.Stats.get (Runtime.stats rt) "cstar.invocations") )

let test_multiple_reducers (name, policy, strategy) =
  ( Printf.sprintf "multiple reducers (%s)" name,
    `Quick,
    fun () ->
      let rt = mk_runtime policy strategy in
      let n = 24 in
      let a = Runtime.alloc1d rt ~n ~dist:Gmem.Chunked in
      for j = 0 to n - 1 do
        Agg.poke a 0 j (j - 10)
      done;
      let total = Runtime.reducer rt ~op:Reduction.int_sum ~init:0 in
      let low = Runtime.reducer rt ~op:Reduction.int_min ~init:max_int in
      let high = Runtime.reducer rt ~op:Reduction.int_max ~init:min_int in
      Runtime.parallel_apply rt ~reducers:[ total; low; high ] ~n (fun ctx ->
          let v = Agg.get1 a ctx.Ctx.index in
          Reducer.add ctx total v;
          Reducer.add ctx low v;
          Reducer.add ctx high v);
      Alcotest.(check int) "sum" (n * (n - 1) / 2 - (10 * n)) (Reducer.read total);
      Alcotest.(check int) "min" (-10) (Reducer.read low);
      Alcotest.(check int) "max" (n - 1 - 10) (Reducer.read high) )

let test_chunks_per_node_oversubscription (name, policy, strategy) =
  ( Printf.sprintf "oversubscribed chunks (%s)" name,
    `Quick,
    fun () ->
      let m =
        Machine.create ~nnodes:4 ~words_per_block:8
          ~topology:Lcm_net.Topology.Crossbar ()
      in
      let p = Proto.install ~policy m in
      let rt =
        Runtime.create p ~strategy ~schedule:(Schedule.Dynamic_random 5)
          ~chunks_per_node:4 ()
      in
      let n = 32 in
      let a = Runtime.alloc1d rt ~n ~dist:Gmem.Chunked in
      Runtime.parallel_apply rt ~n (fun ctx -> Agg.set1 a ctx.Ctx.index ctx.Ctx.index);
      Agg.swap a;
      for j = 0 to n - 1 do
        Alcotest.(check int) (Printf.sprintf "elem %d" j) j (Agg.peek a 0 j)
      done )

let test_sequential_on_other_node () =
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let a = Runtime.alloc1d rt ~n:8 ~dist:(Gmem.On 0) in
  (* run the sequential phase on node 3: remote writes still coherent *)
  Runtime.sequential rt ~node:3 (fun () -> Agg.set1 a 0 77);
  Alcotest.(check int) "remote sequential write" 77 (Agg.peek a 0 0)

let test_dynamic_schedule_charges_dequeue () =
  (* block-aligned chunks: static runs entirely local; rotating the chunks
     makes every write remote and adds the work-queue cost *)
  let run schedule =
    let rt = mk_runtime ~schedule Policy.stache Runtime.Explicit_copy in
    let a = Runtime.alloc1d rt ~n:64 ~dist:Gmem.Chunked in
    Runtime.parallel_apply rt ~iter:1 ~n:64 (fun ctx ->
        Agg.set1 a ctx.Ctx.index 1);
    Runtime.elapsed rt
  in
  let static = run Schedule.Static and rotate = run Schedule.Dynamic_rotate in
  Alcotest.(check bool)
    (Printf.sprintf "rotate %d > static %d" rotate static)
    true (rotate > static)

let test_invalid_chunks_per_node () =
  let m =
    Machine.create ~nnodes:2 ~words_per_block:8 ~topology:Lcm_net.Topology.Crossbar ()
  in
  let p = Proto.install ~policy:Policy.stache m in
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Runtime.create p ~strategy:Runtime.Explicit_copy
            ~schedule:Schedule.Static ~chunks_per_node:0 ());
       false
     with Invalid_argument _ -> true)

let test_nested_parallel_rejected () =
  (* the paper considers only non-nested parallel functions; a nested
     apply must fail loudly rather than corrupt the phase structure *)
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let a = Runtime.alloc1d rt ~n:4 ~dist:Gmem.Chunked in
  let failed = ref false in
  (try
     Runtime.parallel_apply rt ~n:2 (fun _ctx ->
         Runtime.parallel_apply rt ~n:2 (fun ctx -> Agg.set1 a ctx.Ctx.index 1))
   with Failure _ -> failed := true);
  Alcotest.(check bool) "nested apply rejected" true !failed

let test_apply_more_nodes_than_work () =
  (* n < nnodes: some nodes idle, everything still correct *)
  let rt = mk_runtime ~nnodes:8 Policy.lcm_mcc Runtime.Lcm_directives in
  let a = Runtime.alloc1d rt ~n:3 ~dist:Gmem.Chunked in
  Runtime.parallel_apply rt ~n:3 (fun ctx -> Agg.set1 a ctx.Ctx.index (ctx.Ctx.index * 5));
  for j = 0 to 2 do
    Alcotest.(check int) (Printf.sprintf "elem %d" j) (j * 5) (Agg.peek a 0 j)
  done

(* ------------------------------------------------------------------ *)
(* Shared-memory allocator                                             *)
(* ------------------------------------------------------------------ *)

let test_shalloc_alloc_free_cycle () =
  let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
  let alloc = Shalloc.create (Runtime.proto rt) ~blocks_per_node:4 in
  Alcotest.(check int) "object words" 7 (Shalloc.object_words alloc);
  Alcotest.(check int) "all free initially" 4 (Shalloc.available alloc ~node:1);
  let got = ref [] in
  Runtime.sequential rt ~node:1 (fun () ->
      (* exhaust the arena *)
      for _ = 1 to 4 do
        match Shalloc.alloc alloc ~node:1 with
        | Some a -> got := a :: !got
        | None -> Alcotest.fail "premature exhaustion"
      done;
      Alcotest.(check bool) "exhausted" true (Shalloc.alloc alloc ~node:1 = None);
      (* free everything; allocate again *)
      List.iter (fun a -> Shalloc.free alloc ~node:1 a) !got);
  Alcotest.(check int) "all free again" 4 (Shalloc.available alloc ~node:1);
  (* addresses are distinct and block-spaced *)
  let sorted = List.sort_uniq compare !got in
  Alcotest.(check int) "distinct objects" 4 (List.length sorted)

let test_shalloc_objects_usable () =
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let alloc = Shalloc.create (Runtime.proto rt) ~blocks_per_node:2 in
  let seen = ref (-1) in
  Runtime.sequential rt ~node:2 (fun () ->
      match Shalloc.alloc alloc ~node:2 with
      | None -> Alcotest.fail "alloc failed"
      | Some a ->
        (* all usable words writable and independent of the free list *)
        for w = 0 to Shalloc.object_words alloc - 1 do
          Lcm_tempest.Memeff.store (a + w) (100 + w)
        done;
        seen := Lcm_tempest.Memeff.load (a + 3));
  Alcotest.(check int) "data intact" 103 !seen

let test_shalloc_free_validation () =
  let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
  let alloc = Shalloc.create (Runtime.proto rt) ~blocks_per_node:2 in
  Runtime.sequential rt ~node:0 (fun () ->
      Alcotest.(check bool) "bogus free rejected" true
        (try
           Shalloc.free alloc ~node:0 12345;
           false
         with Invalid_argument _ -> true))

let test_shalloc_per_node_isolation () =
  let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
  let alloc = Shalloc.create (Runtime.proto rt) ~blocks_per_node:2 in
  Runtime.sequential rt ~node:0 (fun () ->
      ignore (Shalloc.alloc alloc ~node:0);
      ignore (Shalloc.alloc alloc ~node:0));
  Alcotest.(check int) "node 0 exhausted" 0 (Shalloc.available alloc ~node:0);
  Alcotest.(check int) "node 1 untouched" 2 (Shalloc.available alloc ~node:1)

let test_shalloc_parallel_allocation () =
  (* every node allocates from its own arena during a parallel phase *)
  let rt = mk_runtime Policy.lcm_mcc Runtime.Lcm_directives in
  let alloc = Shalloc.create (Runtime.proto rt) ~blocks_per_node:8 in
  let m = Runtime.machine rt in
  Runtime.parallel_apply rt ~n:(Machine.nnodes m) (fun ctx ->
      for _ = 1 to 3 do
        match Shalloc.alloc alloc ~node:ctx.Ctx.node with
        | Some a -> Lcm_tempest.Memeff.store a ctx.Ctx.node
        | None -> ()
      done);
  for nid = 0 to Machine.nnodes m - 1 do
    Alcotest.(check int)
      (Printf.sprintf "node %d allocated 3" nid)
      5
      (Shalloc.available alloc ~node:nid)
  done

let prop_shalloc_conserves_objects =
  (* random alloc/free interleavings: objects are never duplicated and
     free-count + live-count = capacity throughout *)
  QCheck.Test.make ~name:"shalloc conserves objects" ~count:40
    QCheck.(list (int_bound 2))
    (fun script ->
      let rt = mk_runtime Policy.stache Runtime.Explicit_copy in
      let cap = 6 in
      let alloc = Shalloc.create (Runtime.proto rt) ~blocks_per_node:cap in
      let ok = ref true in
      Runtime.sequential rt ~node:2 (fun () ->
          let live = ref [] in
          List.iter
            (fun op ->
              (match op with
              | 0 | 1 -> (
                (* alloc *)
                match Shalloc.alloc alloc ~node:2 with
                | Some a ->
                  if List.mem a !live then ok := false;
                  live := a :: !live
                | None -> if List.length !live <> cap then ok := false)
              | _ -> (
                (* free most recent *)
                match !live with
                | a :: rest ->
                  Shalloc.free alloc ~node:2 a;
                  live := rest
                | [] -> ()));
              ())
            script;
          if Shalloc.available alloc ~node:2 + List.length !live <> cap then
            ok := false);
      !ok)

(* scc vs mcc vs stache: one multi-iteration workload, identical results *)
let test_all_systems_agree () =
  let run (_, policy, strategy) =
    let rt = mk_runtime policy strategy in
    let n = 10 in
    let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Gmem.Chunked in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Agg.pokef a i j (if i = 0 then 10.0 else 0.0)
      done
    done;
    for iter = 0 to 4 do
      Runtime.parallel_apply_2d rt ~iter ~rows:n ~cols:n (fun _ctx i j ->
          if i > 0 && j > 0 && i < n - 1 && j < n - 1 then
            Agg.setf a i j
              (0.25
              *. (Agg.getf a (i - 1) j +. Agg.getf a (i + 1) j +. Agg.getf a i (j - 1)
                 +. Agg.getf a i (j + 1)))
          else Agg.setf a i j (Agg.getf a i j));
      Agg.swap a
    done;
    Agg.to_matrix a
  in
  match List.map run combos with
  | [ stache; scc; mcc ] ->
    Alcotest.(check bool) "stache = scc" true (stache = scc);
    Alcotest.(check bool) "scc = mcc" true (scc = mcc)
  | _ -> assert false

let per_combo f = List.map f combos

let () =
  Alcotest.run "lcm_cstar"
    [
      ( "schedule",
        [
          ("chunks balanced", `Quick, test_chunks_balanced);
          ("chunks sparse", `Quick, test_chunks_more_chunks_than_work);
          ("static stable", `Quick, test_static_assignment_stable);
          ("rotate moves", `Quick, test_rotate_assignment_moves);
          ("random is permutation", `Quick, test_random_assignment_is_permutation);
          ("random deterministic", `Quick, test_random_assignment_deterministic);
          ("parse", `Quick, test_schedule_parse);
          QCheck_alcotest.to_alcotest prop_chunks_partition;
          QCheck_alcotest.to_alcotest prop_assign_in_range;
        ] );
      ( "agg",
        [
          ("poke/peek", `Quick, test_agg_poke_peek);
          ("bounds", `Quick, test_agg_bounds);
          ("double buffer swap", `Quick, test_agg_double_buffer_swap);
          ("lcm single buffer", `Quick, test_agg_lcm_single_buffer);
          ("to_matrix", `Quick, test_agg_to_matrix);
        ] );
      ("apply", per_combo test_parallel_square @ per_combo test_parallel_stencil_semantics
               @ per_combo test_dynamic_schedule_same_result);
      ( "reducer",
        per_combo test_reducer_sum @ per_combo test_reducer_max
        @ per_combo test_reducer_float_sum @ per_combo test_reducer_across_calls );
      ( "runtime",
        per_combo test_sequential_phase @ per_combo test_phase_advances_time
        @ per_combo test_multiple_reducers
        @ per_combo test_chunks_per_node_oversubscription
        @ [
            ("all systems agree", `Quick, test_all_systems_agree);
            ("sequential on other node", `Quick, test_sequential_on_other_node);
            ("dynamic charges dequeue", `Quick, test_dynamic_schedule_charges_dequeue);
            ("invalid chunks_per_node", `Quick, test_invalid_chunks_per_node);
            ("more nodes than work", `Quick, test_apply_more_nodes_than_work);
            ("nested parallel rejected", `Quick, test_nested_parallel_rejected);
          ] );
      ( "shalloc",
        [
          ("alloc/free cycle", `Quick, test_shalloc_alloc_free_cycle);
          ("objects usable", `Quick, test_shalloc_objects_usable);
          ("free validation", `Quick, test_shalloc_free_validation);
          ("per-node isolation", `Quick, test_shalloc_per_node_isolation);
          ("parallel allocation", `Quick, test_shalloc_parallel_allocation);
          QCheck_alcotest.to_alcotest prop_shalloc_conserves_objects;
        ] );
    ]
