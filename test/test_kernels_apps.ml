(* Differential tests: the DSL-compiled benchmark kernels must produce the
   same results as the hand-written applications' references, under every
   memory system. *)

open Lcm_apps
open Lcm_cstar
module Policy = Lcm_core.Policy
module Machine = Lcm_tempest.Machine
module K = Kernel

let mk policy strategy =
  let m =
    Machine.create ~nnodes:8 ~words_per_block:8
      ~topology:(Lcm_net.Topology.Fat_tree { arity = 4 })
      ()
  in
  let p = Lcm_core.Proto.install ~policy m in
  Runtime.create p ~strategy ~schedule:Schedule.Static ()

let combos =
  [
    ("stache", Policy.stache, Runtime.Explicit_copy);
    ("scc", Policy.lcm_scc, Runtime.Lcm_directives);
    ("mcc", Policy.lcm_mcc, Runtime.Lcm_directives);
  ]

let check_close name expected actual =
  let denom = max 1.0 (abs_float expected) in
  if abs_float (expected -. actual) /. denom > 1e-4 then
    Alcotest.failf "%s: expected %.8g, got %.8g" name expected actual

(* the stencil app's init, reproduced for the DSL run *)
let stencil_init ~n i j =
  if i = 0 then 100.0
  else if i = n - 1 || j = 0 || j = n - 1 then 0.0
  else if (i * 31) + (j * 17) mod 257 = 0 then 50.0
  else 0.0

let test_dsl_stencil_matches_app (name, policy, strategy) =
  ( Printf.sprintf "DSL stencil == app reference (%s)" name,
    `Quick,
    fun () ->
      let n = 24 and iters = 4 in
      let rt = mk policy strategy in
      let got =
        Kernels.run_stencil rt ~n ~iters ~init:(stencil_init ~n)
      in
      let expected =
        Stencil.reference { Stencil.n; iters; work_per_cell = 4 }
      in
      check_close "stencil" expected got )

let test_dsl_sor_matches_app (name, policy, strategy) =
  ( Printf.sprintf "DSL sor == app reference (%s)" name,
    `Quick,
    fun () ->
      let n = 26 and iters = 4 and omega = 1.5 in
      let rt = mk policy strategy in
      let init i _j = if i = 0 then 100.0 else 0.0 in
      let got = Kernels.run_sor rt ~n ~iters ~omega ~init in
      let expected =
        Sor.reference { Sor.n; iters; omega; work_per_cell = 4 }
      in
      check_close "sor" expected got )

let test_sor_half_analysis () =
  (* a half-sweep writes one colour and reads the other colour's words of
     the SAME aggregate at non-self offsets: word-exact analysis is beyond
     the per-aggregate summary, so the compiler conservatively marks *)
  let d = K.analyze (Kernels.sor_half ~colour:0 ~omega:1.5) in
  Alcotest.(check (list string)) "A marked (conservative)" [ "A" ] d.K.marked_aggs;
  (* the guarded write is not definitely-assigned: pre-copy required *)
  Alcotest.(check (list string)) "pre-copied" [ "A" ] d.K.precopied

let test_threshold_kernel_analysis () =
  let d = K.analyze (Kernels.threshold ~omega:0.5) in
  Alcotest.(check (list string)) "A marked" [ "A" ] d.K.marked_aggs;
  Alcotest.(check bool) "flush between" true d.K.flush_between;
  Alcotest.(check (list string)) "guarded write pre-copies" [ "A" ] d.K.precopied

let test_threshold_kernel_runs () =
  (* the DSL threshold behaves like a threshold: values stabilise and all
     systems agree *)
  let run (_, policy, strategy) =
    let n = 16 in
    let rt = mk policy strategy in
    let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Agg.pokef a i j (if i = 0 then 100.0 else 0.0)
      done
    done;
    let apply =
      K.compile rt (Kernels.threshold ~omega:0.5)
        { K.aggs = [ ("A", a) ]; reducers = [] }
        ~over:"A"
    in
    for iter = 0 to 3 do
      apply ~iter ()
    done;
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        sum := !sum +. Agg.peekf a i j
      done
    done;
    !sum
  in
  match List.map run combos with
  | [ a; b; c ] ->
    Alcotest.(check (float 1e-3)) "stache = scc" a b;
    Alcotest.(check (float 1e-3)) "scc = mcc" b c;
    Alcotest.(check bool) "heat spread" true (a > 100.0 *. 16.0)
  | _ -> assert false

let test_imod_atom () =
  (* IMod/IAdd evaluate correctly inside a kernel condition *)
  let rt = mk Policy.lcm_mcc Runtime.Lcm_directives in
  let n = 8 in
  let a = Runtime.alloc2d rt ~rows:n ~cols:n ~dist:Lcm_mem.Gmem.Chunked in
  let k =
    {
      K.name = "checkerboard";
      body =
        [
          K.If
            ( K.ICmp (K.Eq, K.IMod (K.IAdd (K.I, K.J), 2), K.IConst 0),
              [ K.Assign ("A", K.Self, K.Self, K.Const 1.0) ],
              [ K.Assign ("A", K.Self, K.Self, K.Const 2.0) ] );
        ];
    }
  in
  let apply = K.compile rt k { K.aggs = [ ("A", a) ]; reducers = [] } ~over:"A" in
  apply ();
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let expected = if (i + j) mod 2 = 0 then 1.0 else 2.0 in
      Alcotest.(check (float 0.0)) (Printf.sprintf "(%d,%d)" i j) expected
        (Agg.peekf a i j)
    done
  done

let per_combo f = List.map f combos

let () =
  Alcotest.run "lcm_kernels_apps"
    [
      ( "dsl benchmarks",
        per_combo test_dsl_stencil_matches_app
        @ per_combo test_dsl_sor_matches_app
        @ [
            ("sor analysis", `Quick, test_sor_half_analysis);
            ("threshold analysis", `Quick, test_threshold_kernel_analysis);
            ("threshold runs", `Quick, test_threshold_kernel_runs);
            ("imod atom", `Quick, test_imod_atom);
          ] );
    ]
