(* Tests for deterministic network fault injection and the reliable
   (ack/timeout/retransmission) transport layered on top. *)

open Lcm_net
module Engine = Lcm_sim.Engine
module Stats = Lcm_util.Stats

let mk_net ?faults () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let net =
    Network.create ?faults ~engine ~costs:Lcm_sim.Costs.default ~stats
      ~topology:Topology.Crossbar ~nnodes:4 ()
  in
  (engine, stats, net)

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let test_make_validation () =
  let bad msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  bad "Faults.make: drop not in [0,1]" (fun () ->
      ignore (Faults.make ~drop:1.5 ~seed:1 ()));
  bad "Faults.make: dup not in [0,1]" (fun () ->
      ignore (Faults.make ~dup:(-0.1) ~seed:1 ()));
  bad "Faults.make: jitter must be >= 0" (fun () ->
      ignore (Faults.make ~jitter:(-1) ~seed:1 ()));
  bad "Faults.make: max_retries must be >= 0" (fun () ->
      ignore (Faults.make ~max_retries:(-1) ~seed:1 ()));
  bad "Faults.make: rto must be positive" (fun () ->
      ignore (Faults.make ~rto:0 ~seed:1 ()));
  bad "Faults.make: stall_limit must be positive" (fun () ->
      ignore (Faults.make ~stall_limit:0 ~seed:1 ()));
  bad "Faults.make: malformed down window" (fun () ->
      ignore
        (Faults.make
           ~down:[ { Faults.w_src = None; w_dst = None; from_t = 10; until_t = 5 } ]
           ~seed:1 ()))

let test_down_windows_sorted_non_overlapping () =
  let w ?src ?dst from_t until_t =
    { Faults.w_src = src; w_dst = dst; from_t; until_t }
  in
  let bad msg windows =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Faults.make ~down:windows ~seed:1 ()))
  in
  (* overlapping on the same (wildcard) channel *)
  bad
    "Faults.make: down windows on the same channel must be sorted and \
     non-overlapping: [0,20) is not before [10,30)"
    [ w 0 20; w 10 30 ];
  (* out of order: sorted input is part of the contract *)
  bad
    "Faults.make: down windows on the same channel must be sorted and \
     non-overlapping: [50,60) is not before [10,20)"
    [ w 50 60; w 10 20 ];
  (* a wildcard channel intersects every concrete one *)
  bad
    "Faults.make: down windows on the same channel must be sorted and \
     non-overlapping: [0,20) is not before [5,8)"
    [ w 0 20; w ~src:1 ~dst:2 5 8 ];
  (* disjoint channels may overlap freely *)
  let ok windows = ignore (Faults.make ~down:windows ~seed:1 ()) in
  ok [ w ~src:0 0 20; w ~src:1 10 30 ];
  ok [ w ~src:0 ~dst:1 0 20; w ~src:0 ~dst:2 0 20 ];
  (* touching windows ([a,b) then [b,c)) are non-overlapping *)
  ok [ w 0 10; w 10 20 ];
  (* named profiles keep validating across the rate range *)
  List.iter
    (fun rate ->
      List.iter
        (fun name ->
          match Faults.of_profile name ~rate ~seed:3 with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "profile %s at rate %g rejected: %s" name rate e)
        Faults.profiles)
    [ 0.0; 0.5; 1.0 ]

let test_profiles_parse () =
  List.iter
    (fun name ->
      match Faults.of_profile name ~rate:0.1 ~seed:3 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "profile %s rejected: %s" name e)
    ("none" :: Faults.profiles);
  Alcotest.(check bool) "unknown profile rejected" true
    (Result.is_error (Faults.of_profile "gremlins" ~rate:0.1 ~seed:3));
  Alcotest.(check bool) "rate out of range rejected" true
    (Result.is_error (Faults.of_profile "drop" ~rate:1.5 ~seed:3));
  (match Faults.of_profile "drop-noretx" ~rate:0.2 ~seed:3 with
  | Ok plan ->
    Alcotest.(check bool) "noretx profile disables retransmission" false
      plan.Faults.retransmit
  | Error e -> Alcotest.fail e)

let test_link_down_windows () =
  let plan =
    Faults.make
      ~down:
        [
          { Faults.w_src = None; w_dst = Some 2; from_t = 100; until_t = 200 };
          { Faults.w_src = Some 1; w_dst = None; from_t = 300; until_t = 301 };
        ]
      ~seed:1 ()
  in
  let check msg want ~src ~dst ~at =
    Alcotest.(check bool) msg want (Faults.link_down plan ~src ~dst ~at)
  in
  check "inside dst window" true ~src:0 ~dst:2 ~at:150;
  check "window start inclusive" true ~src:3 ~dst:2 ~at:100;
  check "window end exclusive" false ~src:3 ~dst:2 ~at:200;
  check "other dst unaffected" false ~src:0 ~dst:1 ~at:150;
  check "src window" true ~src:1 ~dst:3 ~at:300;
  check "src window other src" false ~src:0 ~dst:3 ~at:300

(* ------------------------------------------------------------------ *)
(* Engine quiescence watchdog                                          *)
(* ------------------------------------------------------------------ *)

let test_engine_stall_watchdog () =
  (* an endless timer chain — events keep executing, nothing advances —
     must trip the watchdog deterministically instead of running forever *)
  let e = Engine.create () in
  Engine.set_stall_limit e (Some 100);
  let rec tick () = Engine.after e ~delay:40 tick in
  tick ();
  (try
     Engine.run e;
     Alcotest.fail "expected Stalled"
   with Engine.Stalled { clock; pending } ->
     (* both arms must hold: > 100 cycles past progress AND >= 64 quiet
        events executed — the chain runs 64 ticks (40 cycles apart), then
        the check before tick 65 fires *)
     Alcotest.(check int) "stall clock" (64 * 40) clock;
     Alcotest.(check int) "pending events" 1 pending);
  (* notify_progress resets both the cycle window and the event count *)
  let e = Engine.create () in
  Engine.set_stall_limit e (Some 100);
  let n = ref 0 in
  let rec tick () =
    incr n;
    if !n mod 50 = 0 then Engine.notify_progress e;
    if !n < 200 then Engine.after e ~delay:40 tick
  in
  tick ();
  Engine.run e;
  Alcotest.(check int) "ran to completion" (199 * 40) (Engine.now e)

let test_engine_sparse_schedule_is_not_a_stall () =
  (* A long silent gap — a node computing locally far past the stall
     limit, then injecting a burst of sends — is not a livelock: the
     watchdog judges the executed clock, not the next pending timestamp,
     and a handful of progress-free events never satisfies its event-count
     arm.  (Regression: the weak-scaling bench tripped a spurious Stalled
     on exactly this shape.) *)
  let e = Engine.create () in
  Engine.set_stall_limit e (Some 100);
  Engine.schedule e ~at:50 (fun () -> ());
  (* burst of progress-free events way beyond the window *)
  for i = 0 to 9 do
    Engine.schedule e ~at:(5000 + i) (fun () -> ())
  done;
  Engine.run e;
  Alcotest.(check int) "jumped the gap" 5009 (Engine.now e)

(* ------------------------------------------------------------------ *)
(* Lossy path: drops are deterministic and counted                     *)
(* ------------------------------------------------------------------ *)

let lossy_workload plan =
  let engine, stats, net = mk_net ~faults:plan () in
  let delivered = ref 0 in
  for i = 0 to 99 do
    Network.send net ~src:(i mod 3) ~dst:3 ~words:4 ~tag:"w" ~at:(i * 7)
      (fun ~arrival:_ -> incr delivered)
  done;
  Engine.run engine;
  (!delivered, Stats.counters stats, Stats.samples stats)

let test_lossy_drops_replay () =
  let plan = Faults.make ~drop:0.2 ~dup:0.1 ~jitter:5 ~seed:11 () in
  let d1, c1, s1 = lossy_workload plan in
  let d2, c2, s2 = lossy_workload plan in
  Alcotest.(check int) "same deliveries" d1 d2;
  Alcotest.(check bool) "some drops happened" true
    (List.assoc "fault.drops" c1 > 0);
  Alcotest.(check bool) "some dups happened" true
    (List.assoc "fault.dups" c1 > 0);
  Alcotest.(check bool) "identical counters" true (c1 = c2);
  Alcotest.(check bool) "identical samples" true (s1 = s2);
  (* a different fault seed gives a different (but still valid) outcome *)
  let _, c3, _ = lossy_workload (Faults.make ~drop:0.2 ~dup:0.1 ~jitter:5 ~seed:12 ()) in
  Alcotest.(check bool) "different seed, different decisions" true (c1 <> c3)

let test_link_down_blackholes () =
  (* all channels down for the whole run: nothing is delivered, and the
     drops are counted *)
  let plan =
    Faults.make
      ~down:[ { Faults.w_src = None; w_dst = None; from_t = 0; until_t = 1_000_000 } ]
      ~seed:1 ()
  in
  let engine, stats, net = mk_net ~faults:plan () in
  let delivered = ref 0 in
  Network.send net ~src:0 ~dst:1 ~words:4 ~tag:"w" ~at:0 (fun ~arrival:_ ->
      incr delivered);
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  Alcotest.(check int) "drop counted" 1 (Stats.get stats "fault.drops");
  Alcotest.(check int) "not counted as sent" 0 (Stats.get stats "net.msgs")

(* ------------------------------------------------------------------ *)
(* Reliable path                                                       *)
(* ------------------------------------------------------------------ *)

let test_reliable_without_plan_is_plain_send () =
  let engine, stats, net = mk_net () in
  let arrived = ref (-1) in
  Network.send_reliable net ~src:0 ~dst:1 ~words:8 ~tag:"t" ~at:100
    (fun ~arrival -> arrived := arrival);
  Engine.run engine;
  Alcotest.(check int) "same arrival as send"
    (100 + Network.latency net ~src:0 ~dst:1 ~words:8)
    !arrived;
  Alcotest.(check int) "no acks" 1 (Stats.get stats "net.msgs");
  Alcotest.(check int) "no retransmits" 0 (Stats.get stats "fault.retransmits")

(* Pooled transport records under fault churn: with Pool.debug on, every
   release poisons the record and rejects double releases, so a transport
   bug that recycles an in-flight message or rel_pending cell while it is
   still in use — across drop → retransmit → late-duplicate-ack cycles —
   fails loudly here instead of corrupting a later message.  Delivery must
   stay exactly-once through the pooled [send_reliable_call] convention. *)
let prop_pooled_transport_under_faults =
  QCheck.Test.make ~name:"pooled transport survives drop/retransmit cycles"
    ~count:40
    QCheck.(triple (int_bound 9999) (int_bound 30) (int_bound 30))
    (fun (seed, drop_pct, dup_pct) ->
      let saved = !Lcm_util.Pool.debug in
      Lcm_util.Pool.debug := true;
      Fun.protect
        ~finally:(fun () -> Lcm_util.Pool.debug := saved)
        (fun () ->
          let plan =
            Faults.make
              ~drop:(float_of_int drop_pct /. 100.)
              ~dup:(float_of_int dup_pct /. 100.)
              ~jitter:3 ~max_retries:50 ~seed ()
          in
          let engine, _stats, net = mk_net ~faults:plan () in
          let n = 40 in
          let counts = Array.make n 0 in
          let deliver (counts : int array) _arrival i =
            counts.(i) <- counts.(i) + 1
          in
          for i = 0 to n - 1 do
            Network.send_reliable_call net ~src:(i mod 3) ~dst:3 ~words:3
              ~tag:"w" ~at:(i * 2) deliver counts i
          done;
          Engine.run engine;
          Array.for_all (fun c -> c = 1) counts))

let test_reliable_exactly_once_under_drops () =
  let plan = Faults.make ~drop:0.25 ~dup:0.15 ~jitter:4 ~seed:5 () in
  let engine, stats, net = mk_net ~faults:plan () in
  let n = 60 in
  let counts = Array.make n 0 in
  let order = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let src = i mod 3 in
    Network.send_reliable net ~src ~dst:3 ~words:4 ~tag:"w" ~at:(i * 3)
      (fun ~arrival:_ ->
        counts.(i) <- counts.(i) + 1;
        let prev = Option.value (Hashtbl.find_opt order src) ~default:[] in
        Hashtbl.replace order src (i :: prev))
  done;
  Engine.run engine;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "message %d delivered once" i) 1 c)
    counts;
  Hashtbl.iter
    (fun src l ->
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | [ _ ] | [] -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "channel %d->3 released in send order" src)
        true
        (increasing (List.rev l)))
    order;
  Alcotest.(check bool) "retransmissions happened" true
    (Stats.get stats "fault.retransmits" > 0)

let test_reliable_rides_out_link_flap () =
  (* the link is down when the message is first sent; retransmission
     backoff must carry it past the window *)
  let plan =
    Faults.make
      ~down:[ { Faults.w_src = None; w_dst = None; from_t = 0; until_t = 400 } ]
      ~rto:50 ~seed:2 ()
  in
  let engine, stats, net = mk_net ~faults:plan () in
  let arrived = ref (-1) in
  Network.send_reliable net ~src:0 ~dst:1 ~words:4 ~tag:"w" ~at:0
    (fun ~arrival -> arrived := arrival);
  Engine.run engine;
  Alcotest.(check bool) "delivered after the window" true (!arrived >= 400);
  Alcotest.(check bool) "timeouts recorded" true
    (Stats.get stats "fault.timeouts" > 0);
  Alcotest.(check bool) "backoff sample recorded" true
    (Stats.sample_count stats "net.retx_backoff_cycles" > 0)

let test_reliable_unreachable_after_retry_cap () =
  let plan = Faults.make ~drop:1.0 ~rto:8 ~max_retries:3 ~seed:1 () in
  let engine, stats, net = mk_net ~faults:plan () in
  Network.send_reliable net ~src:0 ~dst:1 ~words:4 ~tag:"req" ~at:0
    (fun ~arrival:_ -> Alcotest.fail "must never deliver");
  (try
     Engine.run engine;
     Alcotest.fail "expected Net_unreachable"
   with Network.Net_unreachable { src; dst; tag; attempts } ->
     Alcotest.(check int) "src" 0 src;
     Alcotest.(check int) "dst" 1 dst;
     Alcotest.(check string) "tag" "req" tag;
     Alcotest.(check bool) "attempts exceed cap" true (attempts > 3));
  Alcotest.(check int) "every copy dropped" (Stats.get stats "fault.drops")
    (4 (* initial + 3 retries *))

let prop_reliable_exactly_once =
  (* any seeded plan with drop < 1 and retransmission on delivers every
     reliable send exactly once, in per-channel order; replaying the same
     (plan, workload) yields identical fault counters *)
  QCheck.Test.make ~name:"reliable transport: exactly-once under any plan"
    ~count:60
    QCheck.(
      quad (int_bound 1000)
        (pair (int_bound 30) (int_bound 30))
        (int_bound 20)
        (list_of_size Gen.(1 -- 25) (triple (int_bound 3) (int_bound 2) (int_range 1 16))))
    (fun (fseed, (drop_pct, dup_pct), jitter, msgs) ->
      let plan =
        Faults.make
          ~drop:(float_of_int drop_pct /. 100.)
          ~dup:(float_of_int dup_pct /. 100.)
          ~jitter ~max_retries:30 ~seed:fseed ()
      in
      let run () =
        let engine, stats, net = mk_net ~faults:plan () in
        let n = List.length msgs in
        let counts = Array.make n 0 in
        let order = Hashtbl.create 8 in
        List.iteri
          (fun i (src, doff, words) ->
            let dst = (src + 1 + doff) mod 4 in
            Network.send_reliable net ~src ~dst ~words ~tag:"p" ~at:(i * 2)
              (fun ~arrival:_ ->
                counts.(i) <- counts.(i) + 1;
                let chan = (src, dst) in
                let prev =
                  Option.value (Hashtbl.find_opt order chan) ~default:[]
                in
                Hashtbl.replace order chan (i :: prev)))
          msgs;
        Engine.run engine;
        (counts, order, Stats.counters stats)
      in
      let counts, order, ctrs = run () in
      let _, _, ctrs2 = run () in
      Array.for_all (fun c -> c = 1) counts
      && Hashtbl.fold
           (fun _ l acc ->
             let rec increasing = function
               | a :: (b :: _ as rest) -> a < b && increasing rest
               | [ _ ] | [] -> true
             in
             acc && increasing (List.rev l))
           order true
      && ctrs = ctrs2)

(* ------------------------------------------------------------------ *)
(* Full stack: stress harness over an unreliable interconnect          *)
(* ------------------------------------------------------------------ *)

let fault_stress_policy policy () =
  let plan =
    match Lcm_net.Faults.of_profile "chaos" ~rate:0.05 ~seed:7 with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  match
    Lcm_harness.Stress.run ~policy ~faults:plan ~cases:6 ~seed:1 ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_noretx_stalls_deterministically () =
  (* losing messages for good must surface as a typed stall, not a hang,
     and identically on every run *)
  let plan = Faults.make ~drop:0.3 ~retransmit:false ~seed:7 () in
  let outcome () =
    Lcm_harness.Stress.check_case ~seed:1 ~case:0
      ~policy:Lcm_core.Policy.stache ~faults:plan ()
  in
  match (outcome (), outcome ()) with
  | Error e1, Error e2 ->
    Alcotest.(check bool) "reported as a stall" true
      (let has_sub s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       has_sub e1 "stalled" || has_sub e1 "unreachable");
    Alcotest.(check string) "deterministic failure report" e1 e2
  | _ -> Alcotest.fail "expected the lossy no-retx run to fail"

(* ------------------------------------------------------------------ *)
(* Stats.summary option (empty-sample bugfix)                          *)
(* ------------------------------------------------------------------ *)

let test_stats_summary_option () =
  let s = Stats.create () in
  Alcotest.(check bool) "never-observed series has no summary" true
    (Stats.summary s "nope" = None);
  (* resolving a handle without writing must not create a summary *)
  let h = Stats.sample s "resolved_only" in
  ignore h;
  Alcotest.(check bool) "resolved-but-unwritten has no summary" true
    (Stats.summary s "resolved_only" = None);
  Alcotest.(check (list string)) "samples listing omits empty series" []
    (List.map fst (Stats.samples s));
  (* a real all-zero observation is distinguishable from absence *)
  Stats.observe s "zeros" 0.0;
  (match Stats.summary s "zeros" with
  | Some sm ->
    Alcotest.(check int) "count" 1 sm.Stats.count;
    Alcotest.(check (float 0.0)) "min" 0.0 sm.Stats.min;
    Alcotest.(check (float 0.0)) "max" 0.0 sm.Stats.max
  | None -> Alcotest.fail "observed series must have a summary");
  Stats.observe s "xs" 4.0;
  Stats.observe s "xs" 2.0;
  match Stats.summary s "xs" with
  | Some sm ->
    Alcotest.(check int) "count" 2 sm.Stats.count;
    Alcotest.(check (float 1e-9)) "mean" 3.0 sm.Stats.mean;
    Alcotest.(check (float 0.0)) "min" 2.0 sm.Stats.min;
    Alcotest.(check (float 0.0)) "max" 4.0 sm.Stats.max
  | None -> Alcotest.fail "observed series must have a summary"

let () =
  Alcotest.run "lcm_faults"
    [
      ( "plans",
        [
          ("make validation", `Quick, test_make_validation);
          ("down windows sorted/non-overlapping", `Quick,
           test_down_windows_sorted_non_overlapping);
          ("profiles parse", `Quick, test_profiles_parse);
          ("link-down windows", `Quick, test_link_down_windows);
        ] );
      ( "watchdog",
        [
          ("engine stall watchdog", `Quick, test_engine_stall_watchdog);
          ("sparse schedule is not a stall", `Quick,
           test_engine_sparse_schedule_is_not_a_stall);
        ] );
      ( "lossy",
        [
          ("drops replay bit-identically", `Quick, test_lossy_drops_replay);
          ("link down blackholes", `Quick, test_link_down_blackholes);
        ] );
      ( "reliable",
        [
          ("no plan = plain send", `Quick, test_reliable_without_plan_is_plain_send);
          ("exactly once under drops", `Quick, test_reliable_exactly_once_under_drops);
          ("rides out link flap", `Quick, test_reliable_rides_out_link_flap);
          ("unreachable after retry cap", `Quick,
           test_reliable_unreachable_after_retry_cap);
          QCheck_alcotest.to_alcotest prop_reliable_exactly_once;
          QCheck_alcotest.to_alcotest prop_pooled_transport_under_faults;
        ] );
      ( "full stack",
        [
          ("stache under chaos", `Quick, fault_stress_policy Lcm_core.Policy.stache);
          ("lcm-scc under chaos", `Quick, fault_stress_policy Lcm_core.Policy.lcm_scc);
          ("lcm-mcc under chaos", `Quick, fault_stress_policy Lcm_core.Policy.lcm_mcc);
          ("lcm-mcc-update under chaos", `Quick,
           fault_stress_policy Lcm_core.Policy.lcm_mcc_update);
          ("msi under chaos", `Quick, fault_stress_policy Lcm_core.Policy.msi);
          ("mesi under chaos", `Quick, fault_stress_policy Lcm_core.Policy.mesi);
          ("moesi under chaos", `Quick, fault_stress_policy Lcm_core.Policy.moesi);
          ("no-retx stalls deterministically", `Quick,
           test_noretx_stalls_deterministically);
        ] );
      ( "stats",
        [ ("summary is optional", `Quick, test_stats_summary_option) ] );
    ]
