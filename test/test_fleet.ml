(* Fleet orchestration tests: the three guarantees ISSUE'd for the pool —
   deterministic result ordering (parallel ≡ sequential, bit-for-bit),
   crash containment, and per-cell budgets — plus the shared JSON/CSV
   serialization path the sweep summaries ride on.

   Everything here runs at Tiny scale; the full-grid parallel-equivalence
   sweep covers every experiment family in Experiments.families. *)

open Lcm_harness
module Fleet = Lcm_fleet.Fleet

let systems =
  [ Config.stache; Config.lcm_scc; Config.lcm_mcc; Config.lcm_mcc_update ]

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_ordering () =
  let cells =
    Array.init 23 (fun i ->
        (Printf.sprintf "cell-%d" i, fun () -> (i, i * i + 7)))
  in
  let check jobs =
    let results = Fleet.Pool.run ~jobs cells in
    Alcotest.(check int) "result count" 23 (Array.length results);
    Array.iteri
      (fun i (r : _ Fleet.cell_result) ->
        Alcotest.(check int) "index" i r.Fleet.index;
        Alcotest.(check string)
          "label"
          (Printf.sprintf "cell-%d" i)
          r.Fleet.label;
        match r.Fleet.outcome with
        | Fleet.Done v ->
          Alcotest.(check (pair int int)) "value" (i, (i * i) + 7) v
        | o -> Alcotest.failf "cell %d: %s" i (Fleet.outcome_string o))
      results
  in
  check 1;
  check 4;
  check 0 (* auto *)

let test_resolve_jobs () =
  Alcotest.(check int) "1 is 1" 1 (Fleet.resolve_jobs 1);
  Alcotest.(check int) "negative clamps" 1 (Fleet.resolve_jobs (-3));
  Alcotest.(check bool) "auto is positive" true (Fleet.resolve_jobs 0 >= 1)

(* ------------------------------------------------------------------ *)
(* Satellite 1: parallel ≡ sequential, for every experiment family     *)
(* ------------------------------------------------------------------ *)

let rows_equal (a : Experiments.row) (b : Experiments.row) =
  (* Bench_result.t is pure immutable data, so structural equality is the
     bit-exactness oracle for a row. *)
  a = b

let test_families_parallel_identical () =
  let machine = Config.default_machine in
  List.iter
    (fun (name, cells_of) ->
      let cells = cells_of ~scale:Experiments.Tiny machine in
      let seq = Experiments.run_cells cells in
      let par = Sweep.rows_exn (Sweep.run ~jobs:4 cells) in
      Alcotest.(check int)
        (name ^ ": row count")
        (List.length seq) (List.length par);
      List.iter2
        (fun (s : Experiments.row) (p : Experiments.row) ->
          if not (rows_equal s p) then
            Alcotest.failf "%s: row %s/%s differs between jobs=1 and jobs=4"
              name s.Experiments.experiment s.Experiments.system)
        seq par)
    Experiments.families

(* Concurrent *identical* cells: the sharpest domain-safety probe.  If any
   state is shared across cell instances (a global stats registry, a
   shared trace sink, the old Engine.total ref), four copies of the same
   simulation racing on four domains will perturb each other's
   fingerprints.  The digest covers memory, every counter, and the full
   trace event sequence. *)
let test_concurrent_identical_fingerprints () =
  let run_one () =
    let rt =
      Config.make_runtime
        { Config.default_machine with Config.nnodes = 8 }
        Config.lcm_mcc ~schedule:Lcm_cstar.Schedule.Static
    in
    Lcm_tempest.Machine.enable_trace ~capacity:(1 lsl 16)
      (Lcm_cstar.Runtime.machine rt);
    ignore
      (Lcm_apps.Stencil.run rt
         { Lcm_apps.Stencil.n = 16; iters = 2; work_per_cell = 4 });
    Fingerprint.to_string (Fingerprint.of_runtime rt)
  in
  let expected = run_one () in
  let cells = Array.init 8 (fun i -> (Printf.sprintf "copy-%d" i, run_one)) in
  let results = Fleet.Pool.run ~jobs:4 cells in
  Array.iter
    (fun (r : string Fleet.cell_result) ->
      match r.Fleet.outcome with
      | Fleet.Done fp ->
        Alcotest.(check string)
          (r.Fleet.label ^ " fingerprint")
          expected fp
      | o -> Alcotest.failf "%s: %s" r.Fleet.label (Fleet.outcome_string o))
    results

(* ------------------------------------------------------------------ *)
(* Satellite 2: crash containment                                      *)
(* ------------------------------------------------------------------ *)

exception Boom of string

let test_crash_containment () =
  let cells =
    Array.init 9 (fun i ->
        ( Printf.sprintf "cell-%d" i,
          fun () ->
            if i = 4 then raise (Boom "deliberate failure in cell 4")
            else i * 10 ))
  in
  let check jobs =
    let results = Fleet.Pool.run ~jobs cells in
    let failed =
      Array.to_list results
      |> List.filter (fun (r : _ Fleet.cell_result) ->
             match r.Fleet.outcome with Fleet.Failed _ -> true | _ -> false)
    in
    Alcotest.(check int)
      (Printf.sprintf "jobs=%d: exactly one Failed" jobs)
      1 (List.length failed);
    (match (List.hd failed).Fleet.outcome with
    | Fleet.Failed { exn; _ } ->
      Alcotest.(check bool)
        "exception text captured" true
        (let needle = "deliberate failure in cell 4" in
         let rec contains i =
           i + String.length needle <= String.length exn
           && (String.sub exn i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0)
    | _ -> assert false);
    Array.iteri
      (fun i (r : int Fleet.cell_result) ->
        if i <> 4 then
          match r.Fleet.outcome with
          | Fleet.Done v -> Alcotest.(check int) "survivor value" (i * 10) v
          | o ->
            Alcotest.failf "jobs=%d cell %d: %s" jobs i
              (Fleet.outcome_string o))
      results
  in
  check 1;
  check 4

(* ------------------------------------------------------------------ *)
(* Satellite 3: budgets                                                *)
(* ------------------------------------------------------------------ *)

(* The event cap must fire at the same simulated point at any job count:
   same event count, same cycle. *)
let test_event_budget_deterministic () =
  let mk_cells () =
    Array.init 4 (fun i ->
        ( Printf.sprintf "stencil-%d" i,
          fun () ->
            let rt =
              Config.make_runtime
                { Config.default_machine with Config.nnodes = 8 }
                Config.lcm_mcc ~schedule:Lcm_cstar.Schedule.Static
            in
            ignore
              (Lcm_apps.Stencil.run rt
                 { Lcm_apps.Stencil.n = 16; iters = 4; work_per_cell = 4 });
            () ))
  in
  let budget = Fleet.Budget.make ~max_events:150 () in
  let timeouts jobs =
    Fleet.Pool.run ~jobs ~budget (mk_cells ())
    |> Array.map (fun (r : unit Fleet.cell_result) ->
           match r.Fleet.outcome with
           | Fleet.Timed_out (Fleet.Event_budget { events; at_cycle }) ->
             (events, at_cycle)
           | o ->
             Alcotest.failf "%s: expected event-budget timeout, got %s"
               r.Fleet.label (Fleet.outcome_string o))
  in
  let seq = timeouts 1 in
  let par = timeouts 4 in
  Array.iteri
    (fun i (events, at_cycle) ->
      Alcotest.(check int) "capped event count" 150 events;
      let pe, pc = par.(i) in
      Alcotest.(check int) "same events at jobs=4" events pe;
      Alcotest.(check int) "same cycle at jobs=4" at_cycle pc)
    seq;
  (* a generous cap must not fire *)
  let ok =
    Fleet.Pool.run ~jobs:2
      ~budget:(Fleet.Budget.make ~max_events:10_000_000 ())
      (mk_cells ())
  in
  Array.iter
    (fun (r : unit Fleet.cell_result) ->
      match r.Fleet.outcome with
      | Fleet.Done () -> ()
      | o -> Alcotest.failf "%s under large cap: %s" r.Fleet.label
               (Fleet.outcome_string o))
    ok

(* Wall-clock guard: a self-rescheduling engine never drains its queue, so
   only the guard can stop it. *)
let test_wall_clock_guard () =
  let cells =
    [|
      ( "spinner",
        fun () ->
          let e = Lcm_sim.Engine.create () in
          let rec respawn () = Lcm_sim.Engine.after e ~delay:1 respawn in
          Lcm_sim.Engine.after e ~delay:1 respawn;
          Lcm_sim.Engine.run e );
    |]
  in
  let budget = Fleet.Budget.make ~wall_s:0.05 () in
  let results = Fleet.Pool.run ~jobs:1 ~budget cells in
  match results.(0).Fleet.outcome with
  | Fleet.Timed_out (Fleet.Wall_clock { limit_s }) ->
    Alcotest.(check (float 1e-9)) "limit recorded" 0.05 limit_s
  | o -> Alcotest.failf "spinner: expected wall-clock timeout, got %s"
           (Fleet.outcome_string o)

(* ------------------------------------------------------------------ *)
(* Satellite 6: shared JSON/CSV serialization path                     *)
(* ------------------------------------------------------------------ *)

let test_json_escaping () =
  let open Report.Json in
  Alcotest.(check string)
    "quotes and backslashes" {|say \"hi\" \\ done|}
    (escape {|say "hi" \ done|});
  Alcotest.(check string)
    "control chars" {|tab\tnewline\nbell\u0007|}
    (escape "tab\tnewline\nbell\007");
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "non-finite floats are null" "null"
    (to_string (Float nan));
  let doc =
    Obj
      [
        ("s", Str "a\"b");
        ("n", Int 42);
        ("f", Float 1.5);
        ("l", Arr [ Bool true; Null ]);
      ]
  in
  (* must parse back with the in-repo JSON reader *)
  match Traceview.parse (to_string doc) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok v ->
    (match Traceview.member "s" v with
    | Some (Traceview.Str s) -> Alcotest.(check string) "string survives" "a\"b" s
    | _ -> Alcotest.fail "missing s");
    (match Traceview.member "n" v with
    | Some (Traceview.Num n) -> Alcotest.(check (float 0.0)) "int survives" 42.0 n
    | _ -> Alcotest.fail "missing n")

let test_csv_escaping () =
  Alcotest.(check string) "plain passes through" "abc" (Report.csv_field "abc");
  Alcotest.(check string)
    "comma quoted" {|"a,b"|} (Report.csv_field "a,b");
  Alcotest.(check string)
    "quote doubled" {|"say ""hi"""|} (Report.csv_field {|say "hi"|});
  Alcotest.(check string)
    "newline quoted" "\"a\nb\"" (Report.csv_field "a\nb");
  Alcotest.(check string)
    "line joins and terminates" "a,\"b,c\",d\n"
    (Report.csv_line [ "a"; "b,c"; "d" ])

let test_sweep_summaries () =
  let machine = Config.default_machine in
  let cells =
    Experiments.figure2_cells ~scale:Experiments.Tiny machine
    |> fun c -> List.filteri (fun i _ -> i < 2) c
  in
  let results = Sweep.run ~jobs:2 cells in
  let json = Sweep.summary_json ~suite:"figure2" ~scale:"tiny" ~jobs:2 results in
  (match Traceview.parse json with
  | Error e -> Alcotest.failf "summary JSON does not parse: %s" e
  | Ok doc ->
    (match Traceview.member "schema" doc with
    | Some (Traceview.Str s) ->
      Alcotest.(check string) "schema" "lcm-sweep/1" s
    | _ -> Alcotest.fail "summary JSON lacks schema");
    (match Traceview.member "cells" doc with
    | Some (Traceview.Arr cs) ->
      Alcotest.(check int) "cell count" 2 (List.length cs)
    | _ -> Alcotest.fail "summary JSON lacks cells"));
  let csv = Sweep.summary_csv results in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "csv: header + one line per cell" 3 (List.length lines);
  Alcotest.(check string)
    "csv header" "index,label,outcome,host_s,events,cycles,error"
    (List.hd lines)

(* ------------------------------------------------------------------ *)
(* Stress harness through the pool                                     *)
(* ------------------------------------------------------------------ *)

let test_stress_parallel () =
  List.iter
    (fun policy ->
      match
        Stress.run ~policy:policy.Config.policy ~jobs:2 ~cases:3 ~seed:7 ()
      with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "stress --jobs 2 (%s) failed:\n%s" policy.Config.label e)
    [ List.nth systems 0; List.nth systems 2 ]

let () =
  Alcotest.run "fleet"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering and identity" `Quick test_pool_ordering;
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
        ] );
      ( "parallel-equivalence",
        [
          Alcotest.test_case "every family, jobs=4 vs sequential" `Slow
            test_families_parallel_identical;
          Alcotest.test_case "concurrent identical cells fingerprint" `Quick
            test_concurrent_identical_fingerprints;
        ] );
      ( "containment",
        [ Alcotest.test_case "one crash, sweep survives" `Quick
            test_crash_containment ] );
      ( "budgets",
        [
          Alcotest.test_case "event cap deterministic across job counts"
            `Quick test_event_budget_deterministic;
          Alcotest.test_case "wall-clock guard stops a spinner" `Quick
            test_wall_clock_guard;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "json escaping + round-trip" `Quick
            test_json_escaping;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "sweep summaries" `Quick test_sweep_summaries;
        ] );
      ( "stress",
        [ Alcotest.test_case "parallel batch matches sequential Ok" `Quick
            test_stress_parallel ] );
    ]
