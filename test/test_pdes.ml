(* Determinism suite for the conservative parallel driver (Pdes).

   The contract under test: a sharded engine executes every event in
   exactly the sequential engine's (timestamp, seq) order, at any shard
   count, on any pool shape — so logs, fingerprints, exception points and
   budget accounting are bit-identical to --jobs 1.  The workloads here
   are deliberately tie-heavy (barrier-release bursts, loopback storms,
   equal-timestamp cascades): ties are where a sloppy merge diverges. *)

open Lcm_harness

exception Boom

(* ------------------------------------------------------------------ *)
(* Raw-engine programs                                                 *)
(* ------------------------------------------------------------------ *)

(* A storm with heavy timestamp collisions: [width] "nodes" each schedule
   bursts at the same instants, every event re-arms children at equal and
   near-equal times (loopback: at = now), and cross-node sends target
   (i + 1) mod width.  Returns the execution log. *)
let storm_program ~width ~rounds engine =
  let log = ref [] in
  let emit tag = log := tag :: !log in
  let rec node_event i r () =
    emit (Printf.sprintf "n%d.r%d@%d" i r (Lcm_sim.Engine.now engine));
    if r < rounds then begin
      let now = Lcm_sim.Engine.now engine in
      (* loopback at the same timestamp: commits inside the same window *)
      Lcm_sim.Engine.schedule_owned engine ~owner:i ~at:now (fun () ->
          emit (Printf.sprintf "n%d.loop%d@%d" i r now));
      (* cross-node burst: every node fires at the identical instant *)
      Lcm_sim.Engine.schedule_owned engine
        ~owner:((i + 1) mod width)
        ~at:(now + 3)
        (node_event ((i + 1) mod width) (r + 1));
      (* ambient-attributed tie at the same future instant *)
      Lcm_sim.Engine.schedule engine ~at:(now + 3) (fun () ->
          emit (Printf.sprintf "n%d.amb%d@%d" i r (now + 3)))
    end
  in
  (* barrier-release shape: all nodes released at t=10 simultaneously *)
  for i = 0 to width - 1 do
    Lcm_sim.Engine.schedule_owned engine ~owner:i ~at:10 (node_event i 0)
  done;
  log

let run_plain ?limit ~width ~rounds () =
  let e = Lcm_sim.Engine.create () in
  let log = storm_program ~width ~rounds e in
  Lcm_sim.Engine.run ?limit e;
  (List.rev !log, Lcm_sim.Engine.now e, Lcm_sim.Engine.events_processed e)

let run_sharded ?limit ~shards ~lookahead ~width ~rounds () =
  let e = Lcm_sim.Engine.create () in
  let _p =
    Lcm_sim.Pdes.attach ~engine:e ~shards ~lookahead
      ~shard_of:(fun n -> n mod shards)
      ()
  in
  let log = storm_program ~width ~rounds e in
  Lcm_sim.Engine.run ?limit e;
  (List.rev !log, Lcm_sim.Engine.now e, Lcm_sim.Engine.events_processed e)

let check_log = Alcotest.(check (list string))

let test_storm_order_matches () =
  let plain, now_p, n_p = run_plain ~width:6 ~rounds:8 () in
  List.iter
    (fun (shards, lookahead) ->
      let sharded, now_s, n_s =
        run_sharded ~shards ~lookahead ~width:6 ~rounds:8 ()
      in
      let label = Printf.sprintf "shards=%d la=%d" shards lookahead in
      check_log (label ^ " log") plain sharded;
      Alcotest.(check int) (label ^ " clock") now_p now_s;
      Alcotest.(check int) (label ^ " processed") n_p n_s)
    [ (1, 1); (2, 3); (3, 1); (4, 7); (6, 100) ]

(* Repeated sharded runs are identical to each other (no hidden host
   state leaks into the order). *)
let test_storm_repeat_stable () =
  let a, _, _ = run_sharded ~shards:4 ~lookahead:3 ~width:5 ~rounds:10 () in
  let b, _, _ = run_sharded ~shards:4 ~lookahead:3 ~width:5 ~rounds:10 () in
  check_log "identical reruns" a b

(* An event limit must trip at the same event, with the same message
   shape and the same restored pending count, at any shard count. *)
let test_limit_parity () =
  let fail_of f = try f (); "no failure" with Failure m -> m in
  let plain =
    fail_of (fun () -> ignore (run_plain ~limit:40 ~width:6 ~rounds:8 ()))
  in
  let sharded =
    fail_of (fun () ->
        ignore (run_sharded ~limit:40 ~shards:3 ~lookahead:4 ~width:6 ~rounds:8 ()))
  in
  Alcotest.(check string) "limit failure identical" plain sharded

(* A budget must be exhausted at the same (event count, clock) point. *)
let test_budget_parity () =
  let trip run =
    Lcm_sim.Engine.with_budget ~max_events:55 (fun () ->
        try
          ignore (run ());
          Alcotest.fail "budget never tripped"
        with Lcm_sim.Engine.Budget_exhausted { events; now } -> (events, now))
  in
  let p = trip (fun () -> run_plain ~width:6 ~rounds:9 ()) in
  let s =
    trip (fun () -> run_sharded ~shards:4 ~lookahead:3 ~width:6 ~rounds:9 ())
  in
  Alcotest.(check (pair int int)) "budget trip point" p s

(* Crash containment: one event (mid-window, among a burst of equal-time
   events on other shards) raises.  The sharded engine must stop at the
   same committed prefix as the sequential one, restore everything
   uncommitted, and resume deterministically. *)
let test_crash_mid_window () =
  let crash_program engine =
    let log = ref [] in
    for i = 0 to 5 do
      Lcm_sim.Engine.schedule_owned engine ~owner:i ~at:10 (fun () ->
          if i = 3 then raise Boom;
          log := Printf.sprintf "n%d@10" i :: !log)
    done;
    for i = 0 to 5 do
      Lcm_sim.Engine.schedule_owned engine ~owner:i ~at:20 (fun () ->
          log := Printf.sprintf "n%d@20" i :: !log)
    done;
    log
  in
  let run attach =
    let e = Lcm_sim.Engine.create () in
    if attach then
      ignore
        (Lcm_sim.Pdes.attach ~engine:e ~shards:3 ~lookahead:5
           ~shard_of:(fun n -> n mod 3)
           ());
    let log = crash_program e in
    let crashed = (try Lcm_sim.Engine.run e; false with Boom -> true) in
    let state1 =
      ( (crashed, Lcm_sim.Engine.events_processed e),
        (Lcm_sim.Engine.pending e, Lcm_sim.Engine.now e) )
    in
    (* the crash consumed its event and nothing else: resuming completes
       the run in the original order *)
    Lcm_sim.Engine.run e;
    (state1, List.rev !log)
  in
  let plain = run false and sharded = run true in
  Alcotest.(check (pair (pair (pair bool int) (pair int int)) (list string)))
    "crash point, restored state, and resumed order" plain sharded

(* Step refuses sharded engines; attach validates its arguments. *)
let test_guards () =
  let e = Lcm_sim.Engine.create () in
  ignore
    (Lcm_sim.Pdes.attach ~engine:e ~shards:2 ~lookahead:1
       ~shard_of:(fun n -> n land 1)
       ());
  Alcotest.check_raises "step on sharded engine"
    (Invalid_argument "Engine.step: sharded engine — drive it with Engine.run")
    (fun () -> ignore (Lcm_sim.Engine.step e));
  let e2 = Lcm_sim.Engine.create () in
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Pdes.attach: shards must be positive") (fun () ->
      ignore
        (Lcm_sim.Pdes.attach ~engine:e2 ~shards:0 ~lookahead:1
           ~shard_of:Fun.id ()));
  Alcotest.check_raises "zero lookahead"
    (Invalid_argument "Pdes.attach: lookahead must be positive") (fun () ->
      ignore
        (Lcm_sim.Pdes.attach ~engine:e2 ~shards:2 ~lookahead:0
           ~shard_of:Fun.id ()));
  Alcotest.check_raises "negative jobs"
    (Invalid_argument "Pdes.with_jobs: jobs < 0") (fun () ->
      Lcm_sim.Pdes.with_jobs ~jobs:(-1) (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Full-machine fingerprints                                           *)
(* ------------------------------------------------------------------ *)

let machine_fp ~jobs sys =
  Lcm_sim.Pdes.with_jobs ~jobs (fun () ->
      let rt =
        Config.make_runtime
          { Config.default_machine with Config.nnodes = 8 }
          sys ~schedule:Lcm_cstar.Schedule.Static
      in
      Lcm_tempest.Machine.enable_trace ~capacity:(1 lsl 18)
        (Lcm_cstar.Runtime.machine rt);
      ignore
        (Lcm_apps.Stencil.run rt
           { Lcm_apps.Stencil.n = 16; iters = 3; work_per_cell = 4 });
      (Fingerprint.to_string (Fingerprint.of_runtime rt), Lcm_cstar.Runtime.machine rt))

let test_machine_fingerprints () =
  List.iter
    (fun sys ->
      let base, _ = machine_fp ~jobs:1 sys in
      List.iter
        (fun jobs ->
          let fp, _ = machine_fp ~jobs sys in
          Alcotest.(check string)
            (Printf.sprintf "%s jobs=%d" sys.Config.label jobs)
            base fp)
        [ 2; 4; 8 ])
    [ Config.stache; Config.lcm_mcc ]

let test_machine_repeat_stable () =
  let a, _ = machine_fp ~jobs:4 Config.lcm_mcc in
  let b, _ = machine_fp ~jobs:4 Config.lcm_mcc in
  Alcotest.(check string) "jobs=4 reruns identical" a b

(* Window accounting invariants: every committed event went through
   exactly one window, null messages are shards-per-window, and the
   machine's lookahead (min cross latency) is honoured by this workload
   (violations possible in principle, but the counter must stay sane). *)
let test_counters_sanity () =
  let _, m = machine_fp ~jobs:4 Config.lcm_mcc in
  match Lcm_tempest.Machine.pdes m with
  | None -> Alcotest.fail "jobs=4 machine has no pdes coordinator"
  | Some p ->
    let c = Lcm_sim.Pdes.counters p in
    let processed =
      Lcm_sim.Engine.events_processed (Lcm_tempest.Machine.engine m)
    in
    Alcotest.(check int) "shards" 4 (Lcm_sim.Pdes.shards p);
    Alcotest.(check bool) "windows > 0" true (c.Lcm_sim.Pdes.windows > 0);
    Alcotest.(check int) "null msgs = windows * shards"
      (c.Lcm_sim.Pdes.windows * 4)
      c.Lcm_sim.Pdes.null_msgs;
    Alcotest.(check int) "window totals = events processed" processed
      c.Lcm_sim.Pdes.window_events_total;
    Alcotest.(check bool) "max window <= total" true
      (c.Lcm_sim.Pdes.max_window_events <= c.Lcm_sim.Pdes.window_events_total);
    Alcotest.(check bool) "stalls <= windows" true
      (c.Lcm_sim.Pdes.horizon_stalls <= c.Lcm_sim.Pdes.windows);
    Alcotest.(check bool) "cross-shard traffic exists" true
      (c.Lcm_sim.Pdes.cross_shard_msgs > 0)

(* The 1-core container resolves to an empty drain pool (inline drains);
   force two worker domains so the cross-domain drain protocol — job
   handoff, slot stealing, completion barrier, batch visibility — is
   exercised regardless of host shape.  The pool is global, so every
   sharded run after this point also uses the workers. *)
let test_forced_workers () =
  Lcm_sim.Pdes.reserve_drain_workers 2;
  let base, _ = machine_fp ~jobs:1 Config.lcm_mcc in
  let fp, _ = machine_fp ~jobs:4 Config.lcm_mcc in
  Alcotest.(check string) "jobs=4 on 2 worker domains" base fp;
  let plain, _, _ = run_plain ~width:6 ~rounds:8 () in
  let sharded, _, _ = run_sharded ~shards:4 ~lookahead:3 ~width:6 ~rounds:8 () in
  check_log "storm on 2 worker domains" plain sharded

let () =
  Alcotest.run "lcm_pdes"
    [
      ( "engine",
        [
          ("equal-timestamp storm", `Quick, test_storm_order_matches);
          ("repeat stable", `Quick, test_storm_repeat_stable);
          ("limit parity", `Quick, test_limit_parity);
          ("budget parity", `Quick, test_budget_parity);
          ("crash mid-window", `Quick, test_crash_mid_window);
          ("guards", `Quick, test_guards);
        ] );
      ( "machine",
        [
          ("fingerprints jobs 1=2=4=8", `Slow, test_machine_fingerprints);
          ("jobs=4 repeat stable", `Quick, test_machine_repeat_stable);
          ("counters sanity", `Quick, test_counters_sanity);
          ("forced 2-domain pool", `Quick, test_forced_workers);
        ] );
    ]
